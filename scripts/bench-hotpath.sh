#!/usr/bin/env bash
# bench-hotpath.sh [COUNT] — run the hot-path benchmark set COUNT times
# (default 1) in benchstat-consumable form.
#
# This is the single definition of "the hot paths" for both CI and
# `make bench`: the zero-allocation text pipeline, index add/search
# (with and without tombstones), the snapshot save/load vs cold-surface
# startup pair, the incremental refresh pass, the serving tier's
# cached/uncached/parallel Search triple, end-to-end surfacing, and
# the bulk-ingest ladder (10k/100k rungs; 1M only under INGEST_FULL=1).
# CI runs it on the PR head and on the merge base and diffs the two
# with benchstat, so keep the set additive — a benchmark that exists
# only on one side simply shows up as new/deleted in the table.
set -euo pipefail

count="${1:-1}"

go test -run '^$' -bench . -benchmem -benchtime 100x -count "$count" \
  ./internal/textutil ./internal/index
go test -run '^$' -bench 'Snapshot|ColdSurface|Refresh' -benchmem -benchtime 3x -count "$count" \
  ./internal/engine
go test -run '^$' -bench 'BenchmarkSearch(Uncached|Cached|Parallel)$' -benchmem -benchtime 500x -count "$count" .
go test -run '^$' -bench BenchmarkSurfaceAll -benchmem -benchtime 1x -count "$count" .
go test -run '^$' -bench 'BenchmarkBulk(Ingest|Build)' -benchmem -benchtime 1x -count "$count" \
  ./internal/engine
