// Command deepsearch builds a synthetic deep web, surfaces it into a
// search index, and serves a minimal search engine over HTTP: an HTML
// page at / and JSON at /api/search?q=...&k=10. Deep-web documents are
// served "like any other page" (§3.2); each result notes the form that
// surfaced it.
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// With -snapshot it skips world building and surfacing entirely and
// warm-starts from a directory written by `deepcrawl -out`, answering
// its first query in milliseconds. Startup logs each phase's duration
// either way, so the warm-start win is visible in the logs.
//
// Usage:
//
//	deepsearch [-addr :8080] [-sites N] [-rows N] [-seed N] [-workers N]
//	deepsearch [-addr :8080] [-snapshot DIR]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/htmlx"
	"deepweb/internal/httpx"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers")
	annotated := flag.Bool("annotated", false, "rank with §5.1 surfacing-time annotations (see E13)")
	snapshot := flag.String("snapshot", "", "warm-start from a snapshot directory (skips build + surfacing)")
	flag.Parse()
	log.SetFlags(0)

	begin := time.Now()
	var e *engine.Engine
	if *snapshot != "" {
		engine.DefaultWorkers = *workers
		start := time.Now()
		var err error
		e, err = engine.Load(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase load-snapshot: %d docs from %s in %v", e.Index.Len(), *snapshot, time.Since(start).Round(time.Microsecond))
	} else {
		start := time.Now()
		var err error
		e, err = engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
		if err != nil {
			log.Fatal(err)
		}
		e.Workers = *workers
		log.Printf("phase build-world: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		e.IndexSurfaceWeb()
		log.Printf("phase index-surface-web: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		if err := e.SurfaceAll(core.DefaultConfig(), 5); err != nil {
			log.Fatal(err)
		}
		log.Printf("phase surface: %v (%d workers)", time.Since(start).Round(time.Millisecond), *workers)
	}
	log.Printf("ready: %d documents indexed, startup %v", e.Index.Len(), time.Since(begin).Round(time.Microsecond))

	search := e.Index.Search
	if *annotated {
		search = e.Index.AnnotatedSearch
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/api/search", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(search(q, k))
	})
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(rw, `<html><body><h1>deepsearch</h1>
<form action="/" method="get"><input type="text" name="q" value="%s"><input type="submit" value="Search"></form>`,
			htmlx.EscapeAttr(q))
		if q != "" {
			fmt.Fprint(rw, "<ol>")
			for _, hit := range search(q, 10) {
				src := ""
				if hit.Source != "" {
					src = " <em>(deep web via " + htmlx.EscapeText(hit.Source) + ")</em>"
				}
				fmt.Fprintf(rw, `<li><a href="%s">%s</a> score %.2f%s</li>`,
					htmlx.EscapeAttr(hit.URL), htmlx.EscapeText(hit.Title), hit.Score, src)
			}
			fmt.Fprint(rw, "</ol>")
		}
		fmt.Fprint(rw, "</body></html>")
	})

	if err := httpx.Serve(context.Background(), *addr, mux); err != nil {
		log.Fatal(err)
	}
}
