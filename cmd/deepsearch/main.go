// Command deepsearch builds a synthetic deep web, surfaces it into a
// search index, and serves a minimal search engine over HTTP: an HTML
// page at / and JSON at /api/search?q=...&k=10. Deep-web documents are
// served "like any other page" (§3.2); each result notes the form that
// surfaced it.
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// With -snapshot it skips world building and surfacing entirely and
// warm-starts from a directory written by `deepcrawl -out`, answering
// its first query in milliseconds. Startup logs each phase's duration
// either way, so the warm-start win is visible in the logs. A running
// -snapshot server also reloads on SIGHUP: after `deepcrawl -refresh`
// replaces the snapshot (segment writes are atomic), SIGHUP swaps the
// new index in behind an atomic pointer — in-flight queries finish
// against the engine they started on, new queries see the fresh one,
// and a failed reload keeps the current index serving.
//
// Usage:
//
//	deepsearch [-addr :8080] [-sites N] [-rows N] [-seed N] [-workers N]
//	deepsearch [-addr :8080] [-snapshot DIR]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync/atomic"
	"syscall"
	"time"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/htmlx"
	"deepweb/internal/httpx"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers")
	annotated := flag.Bool("annotated", false, "rank with §5.1 surfacing-time annotations (see E13)")
	snapshot := flag.String("snapshot", "", "warm-start from a snapshot directory (skips build + surfacing)")
	flag.Parse()
	log.SetFlags(0)

	begin := time.Now()
	var e *engine.Engine
	if *snapshot != "" {
		engine.DefaultWorkers = *workers
		start := time.Now()
		var err error
		e, err = engine.Load(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase load-snapshot: %d docs from %s in %v", e.Index.Len(), *snapshot, time.Since(start).Round(time.Microsecond))
	} else {
		start := time.Now()
		var err error
		e, err = engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
		if err != nil {
			log.Fatal(err)
		}
		e.Workers = *workers
		log.Printf("phase build-world: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		e.IndexSurfaceWeb()
		log.Printf("phase index-surface-web: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		if err := e.SurfaceAll(core.DefaultConfig(), 5); err != nil {
			log.Fatal(err)
		}
		log.Printf("phase surface: %v (%d workers)", time.Since(start).Round(time.Millisecond), *workers)
	}
	log.Printf("ready: %d documents indexed, startup %v", e.Index.Len(), time.Since(begin).Round(time.Microsecond))

	// Queries resolve the engine through an atomic pointer so a SIGHUP
	// reload swaps snapshots without dropping in-flight requests: a
	// request keeps the engine it loaded for its whole lifetime.
	var current atomic.Pointer[engine.Engine]
	current.Store(e)
	if *snapshot != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				start := time.Now()
				ne, err := engine.Load(*snapshot)
				if err != nil {
					log.Printf("reload: %v (keeping current index)", err)
					continue
				}
				current.Store(ne)
				log.Printf("reload: %d docs from %s in %v", ne.Index.Len(), *snapshot, time.Since(start).Round(time.Microsecond))
			}
		}()
	}
	search := func(q string, k int) []index.Result {
		ix := current.Load().Index
		if *annotated {
			return ix.AnnotatedSearch(q, k)
		}
		return ix.Search(q, k)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/api/search", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(search(q, k))
	})
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(rw, `<html><body><h1>deepsearch</h1>
<form action="/" method="get"><input type="text" name="q" value="%s"><input type="submit" value="Search"></form>`,
			htmlx.EscapeAttr(q))
		if q != "" {
			fmt.Fprint(rw, "<ol>")
			for _, hit := range search(q, 10) {
				src := ""
				if hit.Source != "" {
					src = " <em>(deep web via " + htmlx.EscapeText(hit.Source) + ")</em>"
				}
				fmt.Fprintf(rw, `<li><a href="%s">%s</a> score %.2f%s</li>`,
					htmlx.EscapeAttr(hit.URL), htmlx.EscapeText(hit.Title), hit.Score, src)
			}
			fmt.Fprint(rw, "</ol>")
		}
		fmt.Fprint(rw, "</body></html>")
	})

	if err := httpx.Serve(context.Background(), *addr, mux); err != nil {
		log.Fatal(err)
	}
}
