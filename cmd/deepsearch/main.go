// Command deepsearch builds a synthetic deep web, surfaces it into a
// search index, and serves it over HTTP: an HTML page at / and the
// versioned JSON API of internal/api under /v1. Deep-web documents are
// served "like any other page" (§3.2); each result notes the form that
// surfaced it.
//
//	GET  /v1/search?q=...&k=10&offset=0&annotated=true&host=...
//	GET  /v1/admin/stats
//	POST /v1/admin/reload
//	GET  /healthz
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// Deprecated: the pre-/v1 /api/search alias is retired and answers
// 410 Gone (with the /v1/search replacement in the envelope) unless
// the server is started with -legacy, which restores the forwarding
// alias temporarily for unmigrated clients.
//
// With -snapshot it skips world building and surfacing entirely and
// warm-starts from a directory written by `deepcrawl -out`, answering
// its first query in milliseconds. Startup logs each phase's duration
// either way, so the warm-start win is visible in the logs. A running
// -snapshot server also reloads on SIGHUP or POST /v1/admin/reload:
// after `deepcrawl -refresh` replaces the snapshot (segment writes are
// atomic), the reload swaps the new index in behind an atomic pointer
// — in-flight queries finish against the engine they started on, new
// queries see the fresh one, and a failed reload keeps the current
// index serving. /v1/admin/stats (generation id + last-reload time) is
// how an operator verifies the swap happened.
//
// Search responses are served through a generation-keyed result cache
// (-cache N entries, 0 disables); X-Cache on each /v1/search response
// says HIT or MISS, and /v1/admin/stats exposes the running counters.
// -debugaddr mounts net/http/pprof on its own localhost listener for
// profiling under load.
//
// Usage:
//
//	deepsearch [-addr :8080] [-sites N] [-rows N] [-seed N] [-workers N]
//	deepsearch [-addr :8080] [-snapshot DIR] [-cache 4096] [-debugaddr localhost:6060]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"deepweb/internal/api"
	"deepweb/internal/cliutil"
	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/htmlx"
	"deepweb/internal/httpx"
	"deepweb/internal/index"
	"deepweb/internal/query"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers")
	annotated := flag.Bool("annotated", false, "rank the HTML page with §5.1 annotations (the /v1 API takes ?annotated=true per request)")
	snapshot := flag.String("snapshot", "", "warm-start from a snapshot directory (skips build + surfacing)")
	cacheCap := flag.Int("cache", 4096, "result cache capacity in entries (0 disables caching)")
	legacy := flag.Bool("legacy", false, "serve the deprecated pre-/v1 /api/search alias (default: answer it 410 Gone)")
	debugAddr := flag.String("debugaddr", "", "listen address for the pprof debug mux (e.g. localhost:6060; empty disables)")
	flag.Parse()
	log.SetFlags(0)
	// Fail bad sizes loudly at startup — a zero or negative world size
	// used to surface as an obscure failure deep inside world building.
	cliutil.RequirePositive("deepsearch",
		cliutil.IntFlag{Name: "-sites", Value: *sites},
		cliutil.IntFlag{Name: "-rows", Value: *rows},
		cliutil.IntFlag{Name: "-workers", Value: *workers},
	)

	begin := time.Now()
	var e *engine.Engine
	if *snapshot != "" {
		engine.DefaultWorkers = *workers
		start := time.Now()
		var err error
		e, err = engine.Load(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase load-snapshot: %d docs (generation %d) from %s in %v",
			e.Index.Len(), e.Generation, *snapshot, time.Since(start).Round(time.Microsecond))
	} else {
		start := time.Now()
		var err error
		e, err = engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
		if err != nil {
			log.Fatal(err)
		}
		e.Workers = *workers
		log.Printf("phase build-world: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		e.IndexSurfaceWeb(context.Background())
		log.Printf("phase index-surface-web: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		if _, err := e.Surface(context.Background(), engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 5}); err != nil {
			log.Fatal(err)
		}
		log.Printf("phase surface: %v (%d workers)", time.Since(start).Round(time.Millisecond), *workers)
	}
	e.EnableResultCache(*cacheCap)
	log.Printf("ready: %d documents indexed, startup %v", e.Index.Len(), time.Since(begin).Round(time.Microsecond))
	httpx.ServeDebug(*debugAddr)

	// Queries resolve the engine through an atomic pointer so a reload
	// (SIGHUP or POST /v1/admin/reload) swaps snapshots without
	// dropping in-flight requests: a request keeps the engine it loaded
	// for its whole lifetime.
	var current atomic.Pointer[engine.Engine]
	current.Store(e)
	var lastReload atomic.Int64 // UnixNano of the last successful swap; 0 = never

	var reload func() error
	if *snapshot != "" {
		reload = func() error {
			start := time.Now()
			ne, err := engine.Load(*snapshot)
			if err != nil {
				log.Printf("reload: %v (keeping current index)", err)
				return err
			}
			// Arm the new engine's cache BEFORE publishing it: the swap
			// must install engine and cache together, so no request ever
			// sees the new index through the old engine's cache (the
			// cache lives on the engine — one atomic store swaps both).
			ne.EnableResultCache(*cacheCap)
			current.Store(ne)
			lastReload.Store(time.Now().UnixNano())
			log.Printf("reload: %d docs (generation %d) from %s in %v",
				ne.Index.Len(), ne.Generation, *snapshot, time.Since(start).Round(time.Microsecond))
			return nil
		}
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				reload()
			}
		}()
	}

	apiSrv := api.New(api.Options{
		Engine: func() *engine.Engine { return current.Load() },
		Reload: reload,
		Stats: func(st api.Stats) api.Stats {
			if ns := lastReload.Load(); ns != 0 {
				st.LastReload = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
			}
			return st
		},
	})

	// The HTML page speaks the same in-query DSL as /v1/search: filter
	// terms typed into the box ("used ford price<10000") become
	// structured predicates, the rest ranks as keywords.
	search := func(r *http.Request, q string, k int) []index.Result {
		text, preds := query.Extract(q)
		resp, err := current.Load().Search(r.Context(), engine.SearchRequest{
			Query: text, K: k, Annotated: *annotated, Filters: preds,
		})
		if err != nil {
			return nil
		}
		return resp.Results
	}

	mux := http.NewServeMux()
	mux.Handle("/v1/", apiSrv)
	mux.Handle("/healthz", apiSrv)
	// The pre-/v1 /api/search alias is retired: by default it answers
	// 410 Gone pointing at /v1/search. -legacy restores the old
	// forwarding behavior (the response is the richer /v1 shape; the
	// old endpoint ranked with the -annotated flag, so the alias
	// carries it over unless the caller asks explicitly) for clients
	// that have not migrated yet.
	if *legacy {
		mux.HandleFunc("/api/search", func(rw http.ResponseWriter, r *http.Request) {
			r2 := r.Clone(r.Context())
			r2.URL.Path = "/v1/search"
			if *annotated && r2.URL.Query().Get("annotated") == "" {
				qs := r2.URL.Query()
				qs.Set("annotated", "true")
				r2.URL.RawQuery = qs.Encode()
			}
			apiSrv.ServeHTTP(rw, r2)
		})
	} else {
		mux.Handle("/api/search", api.LegacyGone(map[string]string{"/api/search": "/v1/search"}))
	}
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(rw, `<html><body><h1>deepsearch</h1>
<form action="/" method="get"><input type="text" name="q" value="%s"><input type="submit" value="Search"></form>`,
			htmlx.EscapeAttr(q))
		if q != "" {
			fmt.Fprint(rw, "<ol>")
			for _, hit := range search(r, q, 10) {
				src := ""
				if hit.Source != "" {
					src = " <em>(deep web via " + htmlx.EscapeText(hit.Source) + ")</em>"
				}
				fmt.Fprintf(rw, `<li><a href="%s">%s</a> score %.2f%s</li>`,
					htmlx.EscapeAttr(hit.URL), htmlx.EscapeText(hit.Title), hit.Score, src)
			}
			fmt.Fprint(rw, "</ol>")
		}
		fmt.Fprint(rw, "</body></html>")
	})

	if err := httpx.Serve(context.Background(), *addr, mux); err != nil {
		log.Fatal(err)
	}
}
