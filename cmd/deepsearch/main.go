// Command deepsearch builds a synthetic deep web, surfaces it into a
// search index, and serves a minimal search engine over HTTP: an HTML
// page at / and JSON at /api/search?q=...&k=10. Deep-web documents are
// served "like any other page" (§3.2); each result notes the form that
// surfaced it.
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	deepsearch [-addr :8080] [-sites N] [-rows N] [-seed N] [-workers N]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/htmlx"
	"deepweb/internal/httpx"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers")
	annotated := flag.Bool("annotated", false, "rank with §5.1 surfacing-time annotations (see E13)")
	flag.Parse()
	log.SetFlags(0)

	e, err := engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
	if err != nil {
		log.Fatal(err)
	}
	e.Workers = *workers
	log.Printf("indexing surface web…")
	e.IndexSurfaceWeb()
	log.Printf("surfacing deep web (%d workers)…", *workers)
	if err := e.SurfaceAll(core.DefaultConfig(), 5); err != nil {
		log.Fatal(err)
	}
	log.Printf("ready: %d documents indexed", e.Index.Len())

	search := e.Index.Search
	if *annotated {
		search = e.Index.AnnotatedSearch
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/api/search", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		k, _ := strconv.Atoi(r.URL.Query().Get("k"))
		if k <= 0 {
			k = 10
		}
		rw.Header().Set("Content-Type", "application/json")
		json.NewEncoder(rw).Encode(search(q, k))
	})
	mux.HandleFunc("/", func(rw http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		rw.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprintf(rw, `<html><body><h1>deepsearch</h1>
<form action="/" method="get"><input type="text" name="q" value="%s"><input type="submit" value="Search"></form>`,
			htmlx.EscapeAttr(q))
		if q != "" {
			fmt.Fprint(rw, "<ol>")
			for _, hit := range search(q, 10) {
				src := ""
				if hit.Source != "" {
					src = " <em>(deep web via " + htmlx.EscapeText(hit.Source) + ")</em>"
				}
				fmt.Fprintf(rw, `<li><a href="%s">%s</a> score %.2f%s</li>`,
					htmlx.EscapeAttr(hit.URL), htmlx.EscapeText(hit.Title), hit.Score, src)
			}
			fmt.Fprint(rw, "</ol>")
		}
		fmt.Fprint(rw, "</body></html>")
	})

	if err := httpx.Serve(context.Background(), *addr, mux); err != nil {
		log.Fatal(err)
	}
}
