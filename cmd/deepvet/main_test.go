package main

import (
	"testing"

	"deepweb/internal/analysis"
)

// TestSelectAnalyzers pins the -run flag's behavior: known names
// select, unknown names error.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers("")
	if err != nil || len(all) != len(All) {
		t.Fatalf("empty -run: got %d analyzers, err=%v; want all %d", len(all), err, len(All))
	}
	two, err := selectAnalyzers("errcmp,ctxflow")
	if err != nil || len(two) != 2 {
		t.Fatalf("-run errcmp,ctxflow: got %d analyzers, err=%v", len(two), err)
	}
	if _, err := selectAnalyzers("nosuch"); err == nil {
		t.Fatal("-run nosuch: want an error naming the unknown analyzer")
	}
}

// TestRepoIsClean is the gate's own regression test: the full suite
// must run clean over the entire repository. A failure here means a
// new in-tree violation (fix it, or carry a reasoned //deepvet:allow)
// — exactly what CI's deepvet step would report.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module; skipped in -short")
	}
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages; pattern or loader regression")
	}
	for _, d := range analysis.Run(pkgs, All) {
		t.Errorf("%s: %s (%s)", position(pkgs, d), d.Message, d.Analyzer)
	}
}
