// Command deepvet is the project's domain-specific vet tool: a
// multichecker mounting the five invariant analyzers from
// internal/analysis over any package pattern, exiting non-zero when
// anything is flagged. CI runs it as a hard lint gate (`make deepvet`,
// folded into `make lint`); run it locally the same way:
//
//	go run ./cmd/deepvet ./...
//	go run ./cmd/deepvet -run errcmp,ctxflow ./internal/...
//
// The analyzers (see each package's doc for the invariant and its
// provenance):
//
//	epochsafe   — index mutations flow through epoch-bumping engine
//	              passes, so the result cache can never serve stale
//	              results (engine.EnableResultCache's warning).
//	clockinject — internal/resilient and internal/webgen touch time
//	              and randomness only through injected hooks or seeded
//	              generators, keeping chaos and backoff deterministic.
//	envelope    — /v1 handlers (internal/api, internal/semserv) write
//	              through httpx.WriteJSON/WriteError only: one error
//	              dialect on the wire.
//	ctxflow     — exported I/O paths take a leading context.Context
//	              and never store one in a struct.
//	errcmp      — sentinel errors are matched with errors.Is and
//	              wrapped with %w, never == or %v.
//
// The stock x/tools passes (nilness, unusedwrite) this suite would
// normally also mount require the golang.org/x/tools dependency; this
// repository builds offline with a zero-dependency go.mod, so their
// ground stays covered by staticcheck in the same lint job (SA5011,
// SA4006 et al.) until the dependency lands.
//
// Sanctioned exceptions are written in the code, next to what they
// exempt, with a mandatory reason:
//
//	//deepvet:allow <name>[,<name>...] -- <reason>
//
// on the flagged line or the line above it. A malformed directive is
// itself a diagnostic.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"deepweb/internal/analysis"
	"deepweb/internal/analysis/clockinject"
	"deepweb/internal/analysis/ctxflow"
	"deepweb/internal/analysis/envelope"
	"deepweb/internal/analysis/epochsafe"
	"deepweb/internal/analysis/errcmp"
)

// All is the mounted suite, in the order findings are attributed.
var All = []*analysis.Analyzer{
	epochsafe.Analyzer,
	clockinject.Analyzer,
	envelope.Analyzer,
	ctxflow.Analyzer,
	errcmp.Analyzer,
}

func main() {
	runList := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list the mounted analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: deepvet [-run name,...] package...\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "deepvet checks the project's correctness contracts; see the\npackage docs under internal/analysis for each invariant.\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepvet:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "deepvet:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)
	for _, d := range diags {
		fmt.Printf("%s: %s (%s)\n", position(pkgs, d), d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "deepvet: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func position(pkgs []*analysis.Package, d analysis.Diagnostic) string {
	for _, pkg := range pkgs {
		if f := pkg.Fset.File(d.Pos); f != nil {
			return f.Position(d.Pos).String()
		}
	}
	return "-"
}

func selectAnalyzers(runList string) ([]*analysis.Analyzer, error) {
	if runList == "" {
		return All, nil
	}
	byName := map[string]*analysis.Analyzer{}
	for _, a := range All {
		byName[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, name := range strings.Split(runList, ",") {
		a, ok := byName[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (have: epochsafe, clockinject, envelope, ctxflow, errcmp)", name)
		}
		out = append(out, a)
	}
	return out, nil
}
