package main

// The bulk-ingest path: -bulk N sidesteps surfacing entirely and
// pushes N generated records through the engine's streaming ingest,
// either in RAM (no -out) or as a memory-bounded spill-to-disk
// snapshot build (-out DIR). It exists to answer the scaling question
// the per-site report cannot: what does a million-row world cost in
// wall clock and peak memory? The run writes a JSON report
// (-ingestout) and exits non-zero when the -min-docs-per-sec or
// -max-peak-mb gates fail — CI's ingest ladder is this command at
// 10k/100k (and 1M under `make ingest-full`).

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"time"

	"deepweb/internal/bulkgen"
	"deepweb/internal/engine"
	"deepweb/internal/index"
	"deepweb/internal/memwatch"
)

// IngestReport is the JSON artifact of one -bulk run (-ingestout).
// Field names are a contract: the CI ingest-ladder job and the README
// scaling table read them.
type IngestReport struct {
	Mode       string  `json:"mode"` // "ram" or "spill"
	Docs       int     `json:"docs"`
	Sites      int     `json:"sites"`
	Shards     int     `json:"shards"`
	Batch      int     `json:"batch"`
	SpillDocs  int     `json:"spill_docs"`
	Workers    int     `json:"workers"`
	ElapsedSec float64 `json:"elapsed_sec"`
	DocsPerSec float64 `json:"docs_per_sec"`
	PeakHeapMB float64 `json:"peak_heap_mb"`
	SpillRuns  int     `json:"spill_runs"`
	Postings   int64   `json:"postings"`
}

// runBulk generates a docs-row world and ingests it end to end,
// reporting throughput and peak heap. With outDir it runs the
// spill-to-disk snapshot build and Load-verifies the result; without,
// the batched in-RAM ingest.
func runBulk(docs, sites int, seed int64, batch, spill, shards, workers int,
	outDir, ingestOut string, minDocsPerSec, maxPeakMB float64) {
	world, err := bulkgen.NewWorld(bulkgen.Spec{Seed: seed, Docs: docs, Sites: sites})
	if err != nil {
		log.Fatalf("deepcrawl: %v", err)
	}
	rep := IngestReport{
		Mode:      "ram",
		Docs:      docs,
		Sites:     world.NumSites(),
		Shards:    shards,
		Batch:     batch,
		SpillDocs: spill,
		Workers:   workers,
	}
	if rep.Shards <= 0 {
		rep.Shards = index.DefaultShards
	}
	if rep.Batch <= 0 {
		rep.Batch = engine.DefaultBulkBatch
	}
	if rep.SpillDocs <= 0 {
		rep.SpillDocs = engine.DefaultSpillDocs
	}
	fmt.Printf("bulk: %d docs over %d sites (%d workers, batch %d)\n",
		docs, rep.Sites, workers, rep.Batch)

	src := world.Source(workers)
	defer src.Close()
	watch := memwatch.Start(10 * time.Millisecond)
	start := time.Now()
	var stats engine.BulkStats
	if outDir != "" {
		rep.Mode = "spill"
		stats, err = engine.BulkBuild(context.Background(), src, outDir, engine.BulkBuildOptions{
			Docs: docs, Shards: shards, Batch: batch, SpillDocs: spill, Workers: workers,
		})
	} else {
		e := engine.NewEmpty()
		e.Workers = workers
		stats, err = e.BulkIngest(context.Background(), src, engine.BulkOptions{Batch: batch})
	}
	elapsed := time.Since(start)
	peak := watch.Stop()
	if err != nil {
		log.Fatalf("deepcrawl: bulk ingest: %v", err)
	}

	rep.ElapsedSec = elapsed.Seconds()
	rep.DocsPerSec = float64(stats.Docs) / elapsed.Seconds()
	rep.PeakHeapMB = memwatch.PeakMB(peak)
	rep.SpillRuns = stats.Runs
	rep.Postings = stats.Postings
	fmt.Printf("bulk: %d docs in %v — %.0f docs/s, peak heap %.1f MB",
		stats.Docs, elapsed.Round(time.Millisecond), rep.DocsPerSec, rep.PeakHeapMB)
	if rep.Mode == "spill" {
		fmt.Printf(", %d spill runs, %d postings merged", stats.Runs, stats.Postings)
	}
	fmt.Println()

	if outDir != "" {
		// The snapshot must round-trip: a build that cannot Load is a
		// failure now, not at serving time.
		loaded, err := engine.Load(outDir)
		if err != nil {
			log.Fatalf("deepcrawl: built snapshot does not load: %v", err)
		}
		if loaded.Index.Len() != docs {
			log.Fatalf("deepcrawl: snapshot loads %d docs, built %d", loaded.Index.Len(), docs)
		}
		fmt.Printf("bulk: snapshot verified — %d docs load from %s (generation %08x)\n",
			loaded.Index.Len(), outDir, loaded.Generation)
	}

	if ingestOut != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(ingestOut, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("bulk: wrote %s\n", ingestOut)
	}

	// CI gates.
	if minDocsPerSec > 0 && rep.DocsPerSec < minDocsPerSec {
		log.Fatalf("deepcrawl: %.0f docs/s below -min-docs-per-sec %.0f", rep.DocsPerSec, minDocsPerSec)
	}
	if maxPeakMB > 0 && rep.PeakHeapMB > maxPeakMB {
		log.Fatalf("deepcrawl: peak heap %.1f MB exceeds -max-peak-mb %.1f", rep.PeakHeapMB, maxPeakMB)
	}
}
