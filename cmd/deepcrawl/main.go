// Command deepcrawl generates a synthetic deep web, runs the surfacing
// engine over every site, and prints a per-site report: recognized
// input types, detected correlations, emitted URLs, exact coverage and
// analysis load. It is the whole pipeline of the paper in one command.
//
// With -out the surfaced world is persisted as a snapshot directory
// (index segments + semantic tables + refresh metadata), which
// deepsearch -snapshot and semserver -snapshot warm-start from —
// surface once, serve many times.
//
// With -refresh DIR it applies a delta instead of re-surfacing the
// world: the world is rebuilt from the same flags, aged with -churn
// random row mutations per site, and the snapshot's per-site content
// signatures decide which sites are re-surfaced. Only those sites'
// documents are retired and re-ingested; everything else is untouched.
// The refreshed snapshot is written back to DIR (or to -out when
// given), and a SIGHUP makes a running `deepsearch -snapshot` pick it
// up without restarting.
//
// With -chaos the run goes through a deterministic fault-injecting
// transport (seeded by -chaosseed): hosts flap, rate-limit, reset
// connections, truncate and garble bodies. The resilient fetch stack
// retries and classifies; the report gains a per-site failure table,
// and the exit code is non-zero when any site failed permanently.
//
// With -bulk N it skips surfacing and streams N generated records
// (internal/bulkgen) through the ingest pipeline — in RAM, or as a
// memory-bounded spill-to-disk snapshot build when -out is given —
// reporting docs/sec and peak heap, with optional CI gates. See
// bulk.go.
//
// Usage:
//
//	deepcrawl [-sites N] [-rows N] [-seed N] [-workers N] [-naive] [-post N] [-out DIR]
//	deepcrawl [world flags] -refresh DIR [-churn N] [-churnseed N] [-out DIR]
//	deepcrawl [world flags] -chaos [-chaosseed N]
//	deepcrawl -bulk N [-bulksites N] [-batch N] [-spill N] [-shards N] [-out DIR] \
//	          [-ingestout BENCH_ingest.json] [-min-docs-per-sec N] [-max-peak-mb N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"deepweb/internal/cliutil"
	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers")
	naive := flag.Bool("naive", false, "disable all semantics (ablation arm)")
	post := flag.Int("post", 0, "make one in N sites POST-only (0 = none)")
	out := flag.String("out", "", "write a snapshot of the surfaced world to this directory")
	refresh := flag.String("refresh", "", "refresh an existing snapshot directory instead of surfacing from scratch")
	churn := flag.Int("churn", 5, "with -refresh: random row mutations applied per site before refreshing")
	churnSeed := flag.Int64("churnseed", 1, "with -refresh: seed of the churn mutation stream")
	refreshBudget := flag.Float64("refreshbudget", 0, "with -refresh: probe-budget fraction (0,1] for re-surfacing a changed site (0 = full budget)")
	hostCap := flag.Int("hostcap", 0, "with -refresh: max requests per host during the refresh pass (0 = uncapped)")
	chaos := flag.Bool("chaos", false, "inject deterministic per-host faults (flaps, 5xx, 429s, resets, truncation, garbling)")
	chaosSeed := flag.Int64("chaosseed", 1, "with -chaos: seed of the fault streams")
	bulk := flag.Int("bulk", 0, "bulk-ingest this many generated records instead of surfacing (0 = off; -out DIR switches to the spill-to-disk snapshot build)")
	bulkSites := flag.Int("bulksites", 0, "with -bulk: spread records over this many sites (0 = one per vertical)")
	batch := flag.Int("batch", 0, "with -bulk: documents per ordered-commit batch (0 = default)")
	spill := flag.Int("spill", 0, "with -bulk -out: flush in-RAM postings to a sorted on-disk run every N docs (0 = default)")
	bulkShards := flag.Int("shards", 0, "with -bulk -out: index shard count of the built snapshot (0 = default)")
	ingestOut := flag.String("ingestout", "", "with -bulk: write the ingest report JSON here (\"\" disables)")
	minDocsPerSec := flag.Float64("min-docs-per-sec", 0, "with -bulk: exit non-zero below this throughput (0 = no gate)")
	maxPeakMB := flag.Float64("max-peak-mb", 0, "with -bulk: exit non-zero above this peak heap in MB (0 = no gate)")
	flag.Parse()
	log.SetFlags(0)
	// Fail bad sizes loudly at startup — a zero or negative world size
	// used to surface as an obscure failure deep inside world building.
	cliutil.RequirePositive("deepcrawl",
		cliutil.IntFlag{Name: "-sites", Value: *sites},
		cliutil.IntFlag{Name: "-rows", Value: *rows},
		cliutil.IntFlag{Name: "-workers", Value: *workers},
	)
	if *refreshBudget < 0 || *refreshBudget > 1 {
		fmt.Fprintf(os.Stderr, "deepcrawl: -refreshbudget must lie in [0, 1], 0 = full budget (got %v)\n\n", *refreshBudget)
		flag.Usage()
		os.Exit(2)
	}

	if *bulk > 0 {
		runBulk(*bulk, *bulkSites, *seed, *batch, *spill, *bulkShards, *workers,
			*out, *ingestOut, *minDocsPerSec, *maxPeakMB)
		return
	}

	cfg := core.DefaultConfig()
	if *naive {
		cfg = core.NaiveConfig()
	}
	worldCfg := webgen.WorldConfig{
		Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows, PostFraction: *post,
	}

	if *refresh != "" {
		runRefresh(worldCfg, engine.RefreshRequest{
			Config:         cfg,
			FollowNext:     3,
			BudgetFraction: *refreshBudget,
			PerHostCap:     *hostCap,
		}, *refresh, *out, *workers, *churn, *churnSeed)
		return
	}

	e, err := engine.Build(worldCfg)
	if err != nil {
		log.Fatal(err)
	}
	e.Workers = *workers
	var storm *webgen.Chaos
	if *chaos {
		storm = webgen.NewChaos(e.Web, *chaosSeed)
		hosts := make([]string, 0, len(e.Web.Sites()))
		for _, site := range e.Web.Sites() {
			hosts = append(hosts, site.Spec.Host)
		}
		storm.ApplyDefaultProfiles(hosts)
		e.UseTransport(storm)
		fmt.Printf("chaos: fault injection armed over %d hosts (seed %d)\n", len(hosts), *chaosSeed)
	}
	fmt.Printf("surfacing %d sites (%d rows each, %d workers, naive=%v)\n\n",
		len(e.Web.Sites()), *rows, *workers, *naive)
	resp, err := e.Surface(context.Background(), engine.SurfaceRequest{Config: cfg, FollowNext: 3})
	if err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tURLS\tSETS\tCOVERAGE\tPROBES\tTYPED\tRANGES\tDBSEL\tNOTE")
	hosts := make([]string, 0, len(e.Results))
	for h := range e.Results {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	totalDocs := 0
	for _, host := range hosts {
		res := e.Results[host]
		note := ""
		if res.Analysis.PostOnly {
			note = "POST-only: not surfaceable"
		}
		cov := e.SiteCoverage(host)
		totalDocs += len(res.URLs)
		// SETS: distinct ground-truth result sets the emitted URLs
		// retrieve — how much of URLS is genuinely different content.
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f%%\t%d\t%d\t%d\t%v\t%s\n",
			host, len(res.URLs), e.SiteDistinctSets(host), 100*cov.Fraction(), res.ProbesUsed,
			len(res.Analysis.TypedInputs), len(res.Analysis.RangePairs),
			res.Analysis.DBSel != nil, note)
	}
	tw.Flush()
	fmt.Printf("\n%d URLs surfaced, %d documents indexed, mean coverage %.0f%%\n",
		totalDocs, e.Index.Len(), 100*e.MeanCoverage())

	permanentFailures := printOutcomes(resp.Sites, storm)

	if *out != "" {
		// Index the surface web too, so the snapshot covers crawled
		// pages as well as surfaced ones. (The corpus is deepcrawl's —
		// a cold deepsearch run differs in crawl order and follow
		// depth, so ids and counts need not match a cold start.)
		e.IndexSurfaceWeb(context.Background())
		start := time.Now()
		if err := e.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot: index (%d docs, %d shards) saved to %s in %v\n",
			e.Index.Len(), e.Index.NumShards(), *out, time.Since(start).Round(time.Millisecond))
		start = time.Now()
		sem := e.BuildSemantics(context.Background(), 10000)
		if err := sem.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot: semantics (%d pages → %d tables) saved in %v\n",
			sem.PagesCrawled, len(sem.Tables), time.Since(start).Round(time.Millisecond))
	}

	if permanentFailures > 0 {
		fmt.Fprintf(os.Stderr, "deepcrawl: %d site(s) failed permanently\n", permanentFailures)
		os.Exit(1)
	}
}

// printOutcomes renders the per-site failure table (sites that retried,
// degraded or failed) plus the fetch-stack totals, and returns how many
// sites failed permanently.
func printOutcomes(reports map[string]engine.SiteReport, storm *webgen.Chaos) int {
	var troubled []string
	permanent := 0
	for host, rep := range reports {
		if rep.Status == engine.SiteFailedPermanent {
			permanent++
		}
		if rep.Status != engine.SiteOK || rep.Retries > 0 {
			troubled = append(troubled, host)
		}
	}
	if len(troubled) == 0 {
		return permanent
	}
	sort.Strings(troubled)
	fmt.Println("\nper-site fetch outcomes (sites with retries or failures):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tOUTCOME\tATTEMPTS\tRETRIES\tTIMEOUTS\tINJECTED\tERROR")
	for _, host := range troubled {
		rep := reports[host]
		injected := 0
		if storm != nil {
			injected = storm.Injected(host)
		}
		errText := rep.Err
		if len(errText) > 60 {
			errText = errText[:57] + "..."
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%s\n",
			host, rep.Status, rep.Attempts, rep.Retries, rep.Timeouts, injected, errText)
	}
	tw.Flush()
	return permanent
}

// runRefresh rebuilds the world the snapshot was surfaced from, ages
// it with deterministic churn, and re-surfaces only the changed sites.
func runRefresh(worldCfg webgen.WorldConfig, req engine.RefreshRequest, dir, out string, workers, churn int, churnSeed int64) {
	if out == "" {
		out = dir
	}
	web, err := webgen.BuildWorld(worldCfg)
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	engine.DefaultWorkers = workers
	e, err := engine.LoadWith(web, dir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded snapshot: %d docs (generation %d) from %s in %v\n",
		e.Index.Len(), e.Generation, dir, time.Since(start).Round(time.Millisecond))

	webgen.Churn(web, churn, churnSeed)
	fmt.Printf("churn: %d row mutations per site (seed %d)\n", churn, churnSeed)

	start = time.Now()
	st, err := e.Refresh(context.Background(), req)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refresh: %d/%d sites changed, %d docs retired, %d added, %d surface pages refetched, compacted=%v in %v\n",
		st.SitesChanged, st.SitesChecked, st.DocsDeleted, st.DocsAdded, st.SurfacePages,
		st.Compacted, time.Since(start).Round(time.Millisecond))
	if n := printOutcomes(st.Sites, nil); n > 0 {
		fmt.Fprintf(os.Stderr, "deepcrawl: %d site(s) failed permanently during refresh\n", n)
		os.Exit(1)
	}

	start = time.Now()
	if err := e.Save(out); err != nil {
		log.Fatal(err)
	}
	sem := e.BuildSemantics(context.Background(), 10000)
	if err := sem.Save(out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("snapshot: %d docs (%d tombstoned) + %d semantic tables saved to %s in %v\n",
		e.Index.Len(), e.Index.Deleted(), len(sem.Tables), out, time.Since(start).Round(time.Millisecond))
	fmt.Println("signal a running `deepsearch -snapshot` with SIGHUP to pick it up")
}
