// Command deepcrawl generates a synthetic deep web, runs the surfacing
// engine over every site, and prints a per-site report: recognized
// input types, detected correlations, emitted URLs, exact coverage and
// analysis load. It is the whole pipeline of the paper in one command.
//
// With -out the surfaced world is persisted as a snapshot directory
// (index segments + semantic tables), which deepsearch -snapshot and
// semserver -snapshot warm-start from — surface once, serve many times.
//
// Usage:
//
//	deepcrawl [-sites N] [-rows N] [-seed N] [-workers N] [-naive] [-post N] [-out DIR]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"sort"
	"text/tabwriter"
	"time"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers")
	naive := flag.Bool("naive", false, "disable all semantics (ablation arm)")
	post := flag.Int("post", 0, "make one in N sites POST-only (0 = none)")
	out := flag.String("out", "", "write a snapshot of the surfaced world to this directory")
	flag.Parse()
	log.SetFlags(0)

	e, err := engine.Build(webgen.WorldConfig{
		Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows, PostFraction: *post,
	})
	if err != nil {
		log.Fatal(err)
	}
	e.Workers = *workers
	cfg := core.DefaultConfig()
	if *naive {
		cfg = core.NaiveConfig()
	}
	fmt.Printf("surfacing %d sites (%d rows each, %d workers, naive=%v)\n\n",
		len(e.Web.Sites()), *rows, *workers, *naive)
	if err := e.SurfaceAll(cfg, 3); err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tURLS\tSETS\tCOVERAGE\tPROBES\tTYPED\tRANGES\tDBSEL\tNOTE")
	hosts := make([]string, 0, len(e.Results))
	for h := range e.Results {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	totalDocs := 0
	for _, host := range hosts {
		res := e.Results[host]
		note := ""
		if res.Analysis.PostOnly {
			note = "POST-only: not surfaceable"
		}
		cov := e.SiteCoverage(host)
		totalDocs += len(res.URLs)
		// SETS: distinct ground-truth result sets the emitted URLs
		// retrieve — how much of URLS is genuinely different content.
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f%%\t%d\t%d\t%d\t%v\t%s\n",
			host, len(res.URLs), e.SiteDistinctSets(host), 100*cov.Fraction(), res.ProbesUsed,
			len(res.Analysis.TypedInputs), len(res.Analysis.RangePairs),
			res.Analysis.DBSel != nil, note)
	}
	tw.Flush()
	fmt.Printf("\n%d URLs surfaced, %d documents indexed, mean coverage %.0f%%\n",
		totalDocs, e.Index.Len(), 100*e.MeanCoverage())

	if *out != "" {
		// Index the surface web too, so the snapshot covers crawled
		// pages as well as surfaced ones. (The corpus is deepcrawl's —
		// a cold deepsearch run differs in crawl order and follow
		// depth, so ids and counts need not match a cold start.)
		e.IndexSurfaceWeb()
		start := time.Now()
		if err := e.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot: index (%d docs, %d shards) saved to %s in %v\n",
			e.Index.Len(), e.Index.NumShards(), *out, time.Since(start).Round(time.Millisecond))
		start = time.Now()
		sem := e.BuildSemantics(10000)
		if err := sem.Save(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot: semantics (%d pages → %d tables) saved in %v\n",
			sem.PagesCrawled, len(sem.Tables), time.Since(start).Round(time.Millisecond))
	}
}
