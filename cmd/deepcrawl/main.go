// Command deepcrawl generates a synthetic deep web, runs the surfacing
// engine over every site, and prints a per-site report: recognized
// input types, detected correlations, emitted URLs, exact coverage and
// analysis load. It is the whole pipeline of the paper in one command.
//
// Usage:
//
//	deepcrawl [-sites N] [-rows N] [-seed N] [-naive] [-post N]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"text/tabwriter"

	"deepweb/internal/core"
	"deepweb/internal/coverage"
	"deepweb/internal/experiments"
	"deepweb/internal/webgen"
)

func main() {
	sites := flag.Int("sites", 1, "sites per domain")
	rows := flag.Int("rows", 300, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	naive := flag.Bool("naive", false, "disable all semantics (ablation arm)")
	post := flag.Int("post", 0, "make one in N sites POST-only (0 = none)")
	flag.Parse()
	log.SetFlags(0)

	w, err := experiments.NewWorld(webgen.WorldConfig{
		Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows, PostFraction: *post,
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	if *naive {
		cfg = core.NaiveConfig()
	}
	fmt.Printf("surfacing %d sites (%d rows each, naive=%v)\n\n", len(w.Web.Sites()), *rows, *naive)
	if err := w.SurfaceAll(cfg, 3); err != nil {
		log.Fatal(err)
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SITE\tURLS\tCOVERAGE\tPROBES\tTYPED\tRANGES\tDBSEL\tNOTE")
	hosts := make([]string, 0, len(w.Results))
	for h := range w.Results {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	totalDocs := 0
	for _, host := range hosts {
		res := w.Results[host]
		site := w.Web.Site(host)
		note := ""
		if res.Analysis.PostOnly {
			note = "POST-only: not surfaceable"
		}
		cov := coverage.ExactOf(site, res.URLs)
		totalDocs += len(res.URLs)
		fmt.Fprintf(tw, "%s\t%d\t%.0f%%\t%d\t%d\t%d\t%v\t%s\n",
			host, len(res.URLs), 100*cov.Fraction(), res.ProbesUsed,
			len(res.Analysis.TypedInputs), len(res.Analysis.RangePairs),
			res.Analysis.DBSel != nil, note)
	}
	tw.Flush()
	fmt.Printf("\n%d URLs surfaced, %d documents indexed, mean coverage %.0f%%\n",
		totalDocs, w.Index.Len(), 100*w.MeanCoverage())
}
