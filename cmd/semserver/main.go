// Command semserver builds the §6 semantic server: it crawls a
// synthetic web (following links into record pages), aggregates HTML
// tables into an ACSDb and a value store, and serves the semantic
// services over HTTP JSON — both the versioned /v1 surface shared with
// deepsearch and the legacy flat paths:
//
//	GET /v1/semantics/synonyms?attr=make        (legacy: /synonyms)
//	GET /v1/semantics/autocomplete?attrs=make   (legacy: /autocomplete)
//	GET /v1/semantics/values?attr=city          (legacy: /values)
//	GET /v1/semantics/properties?entity=seattle (legacy: /properties)
//	GET /v1/semantics/tables?q=population       (legacy: /tablesearch)
//	GET /v1/admin/stats
//	GET /healthz
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// With -snapshot it warm-starts from the tables segment of a directory
// written by `deepcrawl -out`, skipping the deep crawl. Startup logs
// each phase's duration (build/crawl vs load vs listen) either way, so
// the warm-start win is visible in the logs.
//
// Usage:
//
//	semserver [-addr :8081] [-sites N] [-rows N] [-seed N]
//	semserver [-addr :8081] [-snapshot DIR] [-debugaddr localhost:6061]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"time"

	"deepweb/internal/api"
	"deepweb/internal/cliutil"
	"deepweb/internal/engine"
	"deepweb/internal/httpx"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	sites := flag.Int("sites", 2, "sites per domain")
	rows := flag.Int("rows", 150, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	snapshot := flag.String("snapshot", "", "warm-start from a snapshot directory (skips build + crawl)")
	debugAddr := flag.String("debugaddr", "", "listen address for the pprof debug mux (e.g. localhost:6061; empty disables)")
	flag.Parse()
	log.SetFlags(0)
	cliutil.RequirePositive("semserver",
		cliutil.IntFlag{Name: "-sites", Value: *sites},
		cliutil.IntFlag{Name: "-rows", Value: *rows},
	)

	begin := time.Now()
	var sem *engine.SemanticStore
	if *snapshot != "" {
		start := time.Now()
		var err error
		sem, err = engine.LoadSemantics(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase load-snapshot: %v (from %s)", time.Since(start).Round(time.Microsecond), *snapshot)
	} else {
		start := time.Now()
		e, err := engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase build-world: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		sem = e.BuildSemantics(10000)
		log.Printf("phase crawl-aggregate: %v", time.Since(start).Round(time.Millisecond))
	}
	log.Printf("aggregated %d pages → %d tables (%d relational), %d schemas, %d attributes",
		sem.PagesCrawled, sem.RawTables, len(sem.Tables), sem.ACS.Schemas, len(sem.ACS.Freq))
	log.Printf("phase listen: serving on %s after %v startup", *addr, time.Since(begin).Round(time.Microsecond))

	httpx.ServeDebug(*debugAddr)
	legacy := sem.Server()
	apiSrv := api.New(api.Options{Semantics: legacy})
	mux := http.NewServeMux()
	mux.Handle("/v1/", apiSrv)
	mux.Handle("/healthz", apiSrv)
	// Legacy flat paths keep serving the same handlers (same envelope,
	// same method enforcement) for pre-/v1 clients.
	mux.Handle("/", legacy)

	if err := httpx.Serve(context.Background(), *addr, mux); err != nil {
		log.Fatal(err)
	}
}
