// Command semserver builds the §6 semantic server: it crawls a
// synthetic web (following links into record pages), aggregates HTML
// tables into an ACSDb and a value store, and serves the four semantic
// services over HTTP JSON:
//
//	GET /synonyms?attr=make
//	GET /autocomplete?attrs=make,model
//	GET /values?attr=city
//	GET /properties?entity=seattle
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// Usage:
//
//	semserver [-addr :8081] [-sites N] [-rows N] [-seed N]
package main

import (
	"context"
	"flag"
	"log"

	"deepweb/internal/engine"
	"deepweb/internal/httpx"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	sites := flag.Int("sites", 2, "sites per domain")
	rows := flag.Int("rows", 150, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()
	log.SetFlags(0)

	e, err := engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("crawling…")
	sem := e.BuildSemantics(10000)
	log.Printf("aggregated %d pages → %d tables (%d relational), %d schemas, %d attributes",
		sem.PagesCrawled, sem.RawTables, len(sem.Tables), sem.ACS.Schemas, len(sem.ACS.Freq))

	if err := httpx.Serve(context.Background(), *addr, sem.Server()); err != nil {
		log.Fatal(err)
	}
}
