// Command semserver builds the §6 semantic server: it crawls a
// synthetic web (following links into record pages), aggregates HTML
// tables into an ACSDb and a value store, and serves the four semantic
// services over HTTP JSON:
//
//	GET /synonyms?attr=make
//	GET /autocomplete?attrs=make,model
//	GET /values?attr=city
//	GET /properties?entity=seattle
//
// Usage:
//
//	semserver [-addr :8081] [-sites N] [-rows N] [-seed N]
package main

import (
	"flag"
	"log"
	"net/http"

	"deepweb/internal/semserv"
	"deepweb/internal/webgen"
	"deepweb/internal/webtables"
	"deepweb/internal/webx"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	sites := flag.Int("sites", 2, "sites per domain")
	rows := flag.Int("rows", 150, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	flag.Parse()
	log.SetFlags(0)

	web, err := webgen.BuildWorld(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("crawling…")
	c := &webx.Crawler{Fetcher: webx.NewFetcher(web), FollowQuery: true, MaxPages: 10000}
	pages := c.Crawl("http://" + webgen.HubHost + "/")
	raw := webtables.ExtractFromPages(pages)
	good := webtables.QualityFilter(raw)
	acs := webtables.BuildACSDb(good)
	vals := webtables.NewValueStore()
	vals.AddTables(good)
	log.Printf("aggregated %d pages → %d tables (%d relational), %d schemas, %d attributes",
		len(pages), len(raw), len(good), acs.Schemas, len(acs.Freq))

	srv := semserv.New(acs, vals, good)
	log.Printf("serving on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
