// Command semserver builds the §6 semantic server: it crawls a
// synthetic web (following links into record pages), aggregates HTML
// tables into an ACSDb and a value store, and serves the four semantic
// services over HTTP JSON:
//
//	GET /synonyms?attr=make
//	GET /autocomplete?attrs=make,model
//	GET /values?attr=city
//	GET /properties?entity=seattle
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// With -snapshot it warm-starts from the tables segment of a directory
// written by `deepcrawl -out`, skipping the deep crawl. Startup logs
// each phase's duration (build/crawl vs load vs listen) either way, so
// the warm-start win is visible in the logs.
//
// Usage:
//
//	semserver [-addr :8081] [-sites N] [-rows N] [-seed N]
//	semserver [-addr :8081] [-snapshot DIR]
package main

import (
	"context"
	"flag"
	"log"
	"time"

	"deepweb/internal/engine"
	"deepweb/internal/httpx"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	sites := flag.Int("sites", 2, "sites per domain")
	rows := flag.Int("rows", 150, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	snapshot := flag.String("snapshot", "", "warm-start from a snapshot directory (skips build + crawl)")
	flag.Parse()
	log.SetFlags(0)

	begin := time.Now()
	var sem *engine.SemanticStore
	if *snapshot != "" {
		start := time.Now()
		var err error
		sem, err = engine.LoadSemantics(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase load-snapshot: %v (from %s)", time.Since(start).Round(time.Microsecond), *snapshot)
	} else {
		start := time.Now()
		e, err := engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase build-world: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		sem = e.BuildSemantics(10000)
		log.Printf("phase crawl-aggregate: %v", time.Since(start).Round(time.Millisecond))
	}
	log.Printf("aggregated %d pages → %d tables (%d relational), %d schemas, %d attributes",
		sem.PagesCrawled, sem.RawTables, len(sem.Tables), sem.ACS.Schemas, len(sem.ACS.Freq))
	log.Printf("phase listen: serving on %s after %v startup", *addr, time.Since(begin).Round(time.Microsecond))

	if err := httpx.Serve(context.Background(), *addr, sem.Server()); err != nil {
		log.Fatal(err)
	}
}
