// Command semserver builds the §6 semantic server: it crawls a
// synthetic web (following links into record pages), aggregates HTML
// tables into an ACSDb and a value store, and serves the semantic
// services over HTTP JSON through the versioned /v1 surface shared
// with deepsearch:
//
//	GET /v1/semantics/synonyms?attr=make
//	GET /v1/semantics/autocomplete?attrs=make
//	GET /v1/semantics/values?attr=city
//	GET /v1/semantics/properties?entity=seattle
//	GET /v1/semantics/tables?q=population
//	GET /v1/admin/stats
//	GET /healthz
//
// Deprecated: the pre-/v1 flat paths (/synonyms, /autocomplete,
// /values, /properties, /tablesearch) are retired and answer 410 Gone
// naming their /v1/semantics replacements, unless the server is
// started with -legacy, which restores them temporarily for
// unmigrated clients.
//
// The server carries production manners (via internal/httpx):
// read/write timeouts and graceful shutdown on SIGINT/SIGTERM.
//
// With -snapshot it warm-starts from the tables segment of a directory
// written by `deepcrawl -out`, skipping the deep crawl. Startup logs
// each phase's duration (build/crawl vs load vs listen) either way, so
// the warm-start win is visible in the logs.
//
// Usage:
//
//	semserver [-addr :8081] [-sites N] [-rows N] [-seed N]
//	semserver [-addr :8081] [-snapshot DIR] [-debugaddr localhost:6061]
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"time"

	"deepweb/internal/api"
	"deepweb/internal/cliutil"
	"deepweb/internal/engine"
	"deepweb/internal/httpx"
	"deepweb/internal/webgen"
)

func main() {
	addr := flag.String("addr", ":8081", "listen address")
	sites := flag.Int("sites", 2, "sites per domain")
	rows := flag.Int("rows", 150, "rows per site")
	seed := flag.Int64("seed", 42, "world seed")
	snapshot := flag.String("snapshot", "", "warm-start from a snapshot directory (skips build + crawl)")
	legacy := flag.Bool("legacy", false, "serve the deprecated pre-/v1 flat paths (/synonyms, …; default: answer them 410 Gone)")
	debugAddr := flag.String("debugaddr", "", "listen address for the pprof debug mux (e.g. localhost:6061; empty disables)")
	flag.Parse()
	log.SetFlags(0)
	cliutil.RequirePositive("semserver",
		cliutil.IntFlag{Name: "-sites", Value: *sites},
		cliutil.IntFlag{Name: "-rows", Value: *rows},
	)

	begin := time.Now()
	var sem *engine.SemanticStore
	if *snapshot != "" {
		start := time.Now()
		var err error
		sem, err = engine.LoadSemantics(*snapshot)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase load-snapshot: %v (from %s)", time.Since(start).Round(time.Microsecond), *snapshot)
	} else {
		start := time.Now()
		e, err := engine.Build(webgen.WorldConfig{Seed: *seed, SitesPerDom: *sites, RowsPerSite: *rows})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("phase build-world: %v", time.Since(start).Round(time.Millisecond))
		start = time.Now()
		sem = e.BuildSemantics(context.Background(), 10000)
		log.Printf("phase crawl-aggregate: %v", time.Since(start).Round(time.Millisecond))
	}
	log.Printf("aggregated %d pages → %d tables (%d relational), %d schemas, %d attributes",
		sem.PagesCrawled, sem.RawTables, len(sem.Tables), sem.ACS.Schemas, len(sem.ACS.Freq))
	log.Printf("phase listen: serving on %s after %v startup", *addr, time.Since(begin).Round(time.Microsecond))

	httpx.ServeDebug(*debugAddr)
	flat := sem.Server()
	apiSrv := api.New(api.Options{Semantics: flat})
	mux := http.NewServeMux()
	mux.Handle("/v1/", apiSrv)
	mux.Handle("/healthz", apiSrv)
	// The pre-/v1 flat paths are retired: by default each answers 410
	// Gone naming its /v1/semantics replacement. -legacy restores the
	// old handlers (same envelope, same method enforcement) for
	// clients that have not migrated yet.
	if *legacy {
		mux.Handle("/", flat)
	} else {
		mux.Handle("/", api.LegacyGone(map[string]string{
			"/synonyms":     "/v1/semantics/synonyms",
			"/autocomplete": "/v1/semantics/autocomplete",
			"/values":       "/v1/semantics/values",
			"/properties":   "/v1/semantics/properties",
			"/tablesearch":  "/v1/semantics/tables",
		}))
	}

	if err := httpx.Serve(context.Background(), *addr, mux); err != nil {
		log.Fatal(err)
	}
}
