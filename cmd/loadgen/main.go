// Command loadgen replays a Zipfian query workload against the serving
// tier and reports the latency distribution the hot path actually
// delivers: p50/p95/p99/max, throughput, error rate and cache hit
// ratio, as a human table on stdout and a JSON artifact for CI trend
// lines. The workload is the traffic shape of §3.2 pointed at serving —
// a seeded pool of vocabulary-derived queries (internal/workload)
// drawn under Zipfian popularity, so the result cache sees a realistic
// head-heavy mix rather than uniform cache-busting noise.
//
// Two modes:
//
//	loadgen -target http://localhost:8080   # live /v1 over HTTP
//	loadgen -sites 1 -rows 300              # in-process engine, no network
//
// HTTP mode measures the full serving stack (handler, JSON encoding,
// transport) and classifies hits by the X-Cache response header;
// in-process mode isolates engine.Search and uses the response's own
// Cached bit. Every worker owns a distinctly seeded sampler, so a run
// is deterministic in its flags apart from wall-clock jitter.
//
// Exit status is the CI gate: non-zero if the error rate exceeds
// -max-error-rate (default: any error fails) or the observed cache hit
// ratio falls below -min-hit-ratio.
//
// -filtered mixes a fraction of structured queries into the pool: the
// query strings carry typed predicates in the /v1 in-query DSL
// ("used ford price<9900"), exercising the filter path end to end in
// both modes; filter values draw Zipfian from the typed-value ladders.
//
// -admission (in-process mode) arms the result cache's second-chance
// doorkeeper with that many slots (-1 = off, 0 = default sizing), and
// the report gains the admitted/rejected counters.
//
// The JSON artifact also carries a "timeline" array — one entry per
// elapsed second with that second's request count, errors and
// p50/p95/p99 — so a run shows warmup, cache fill and steady state
// over time rather than one end-of-run aggregate.
//
// Usage:
//
//	loadgen [-target URL | -sites N -rows N [-snapshot DIR]] \
//	        [-c 8] [-duration 10s] [-zipf 1.1] [-pool 500] [-k 10] \
//	        [-filtered 0.25] [-cache 4096] [-admission -1] \
//	        [-out BENCH_load.json] [-min-hit-ratio 0.5]
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/url"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"deepweb/internal/cliutil"
	"deepweb/internal/core"
	"deepweb/internal/dist"
	"deepweb/internal/engine"
	"deepweb/internal/query"
	"deepweb/internal/webgen"
	"deepweb/internal/workload"
)

// Report is the JSON artifact one run writes (-out). Field names are a
// contract: CI trend lines and the README table read them.
type Report struct {
	Mode        string  `json:"mode"` // "http" or "inprocess"
	Target      string  `json:"target,omitempty"`
	Concurrency int     `json:"concurrency"`
	DurationSec float64 `json:"duration_sec"`
	Zipf        float64 `json:"zipf"`
	PoolSize    int     `json:"pool_size"`
	// FilteredFrac is the -filtered fraction of the pool carrying a
	// typed predicate (0 for a pure keyword workload).
	FilteredFrac float64 `json:"filtered_frac"`
	K            int     `json:"k"`

	Requests  uint64  `json:"requests"`
	Errors    uint64  `json:"errors"`
	ErrorRate float64 `json:"error_rate"`
	QPS       float64 `json:"qps"`

	// The error breakdown: where the failures came from — requests that
	// timed out, 5xx answers from the server, and everything else at the
	// transport/client layer (including non-5xx error statuses).
	ErrorsTimeout   uint64 `json:"errors_timeout"`
	Errors5xx       uint64 `json:"errors_5xx"`
	ErrorsTransport uint64 `json:"errors_transport"`

	LatencyMS struct {
		P50 float64 `json:"p50"`
		P95 float64 `json:"p95"`
		P99 float64 `json:"p99"`
		Max float64 `json:"max"`
	} `json:"latency_ms"`

	CacheHits   uint64  `json:"cache_hits"`
	CacheMisses uint64  `json:"cache_misses"`
	HitRatio    float64 `json:"hit_ratio"`

	// Doorkeeper counters, present only when -admission armed it
	// (in-process mode).
	AdmissionSlots int    `json:"admission_slots,omitempty"`
	CacheAdmitted  uint64 `json:"cache_admitted,omitempty"`
	CacheRejected  uint64 `json:"cache_rejected,omitempty"`

	// Timeline is the run second by second: how latency and load moved
	// through warmup, cache fill and steady state.
	Timeline []Interval `json:"timeline"`
}

// Interval is one elapsed second of the run.
type Interval struct {
	Second   int     `json:"second"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	P50      float64 `json:"p50_ms"`
	P95      float64 `json:"p95_ms"`
	P99      float64 `json:"p99_ms"`
}

// workerResult is one worker's private tally, merged after the run so
// the hot loop shares nothing. Latencies live in per-second buckets
// (index = elapsed second) so the merge can build both the whole-run
// distribution and the timeline from one record.
type workerResult struct {
	seconds   []secBucket
	errors    uint64
	timeouts  uint64
	http5xx   uint64
	transport uint64
	hits      uint64
	misses    uint64
}

// secBucket is one worker's view of one elapsed second.
type secBucket struct {
	latencies []float64 // milliseconds
	errors    uint64
}

// bucket returns the bucket for elapsed second sec, growing the slice
// so every earlier (possibly idle) second exists too.
func (r *workerResult) bucket(sec int) *secBucket {
	for len(r.seconds) <= sec {
		r.seconds = append(r.seconds, secBucket{})
	}
	return &r.seconds[sec]
}

// statusErr carries a non-200 HTTP status as an error, so the merge
// loop can split 5xx (the server buckling) from everything else.
type statusErr int

func (s statusErr) Error() string { return fmt.Sprintf("status %d", int(s)) }

// tally classifies one failed request into the worker's breakdown.
func (r *workerResult) tally(err error) {
	r.errors++
	var se statusErr
	var ne net.Error
	switch {
	case errors.As(err, &se) && se >= 500:
		r.http5xx++
	case errors.Is(err, context.DeadlineExceeded) || (errors.As(err, &ne) && ne.Timeout()):
		r.timeouts++
	default:
		r.transport++
	}
}

func main() {
	target := flag.String("target", "", "base URL of a live server (e.g. http://localhost:8080); empty = in-process engine")
	sites := flag.Int("sites", 1, "in-process mode: sites per domain")
	rows := flag.Int("rows", 300, "in-process mode: rows per site")
	seed := flag.Int64("seed", 42, "in-process mode: world seed")
	workers := flag.Int("workers", runtime.NumCPU(), "in-process mode: surfacing workers")
	snapshot := flag.String("snapshot", "", "in-process mode: warm-start from a snapshot directory")
	cacheCap := flag.Int("cache", 4096, "in-process mode: result cache capacity (0 disables)")
	admission := flag.Int("admission", -1, "in-process mode: arm the cache's second-chance doorkeeper with this many slots (-1 off, 0 default sizing)")

	conc := flag.Int("c", 8, "concurrent load workers")
	duration := flag.Duration("duration", 10*time.Second, "how long to fire queries")
	zipf := flag.Float64("zipf", 1.1, "Zipf exponent of query popularity (0 = uniform)")
	poolSize := flag.Int("pool", 500, "distinct queries in the pool")
	filtered := flag.Float64("filtered", 0, "fraction of the pool carrying a typed filter predicate (0..1; in-query DSL like price<9900)")
	k := flag.Int("k", 10, "page size per query")
	qseed := flag.Int64("qseed", 1, "workload seed (query pool + per-worker samplers)")

	out := flag.String("out", "BENCH_load.json", "JSON artifact path (\"\" disables)")
	minHitRatio := flag.Float64("min-hit-ratio", 0, "exit non-zero if cache hit ratio falls below this")
	maxErrorRate := flag.Float64("max-error-rate", 0, "exit non-zero if error rate exceeds this (default: any error fails)")
	flag.Parse()
	log.SetFlags(0)
	cliutil.RequirePositive("loadgen",
		cliutil.IntFlag{Name: "-c", Value: *conc},
		cliutil.IntFlag{Name: "-pool", Value: *poolSize},
		cliutil.IntFlag{Name: "-k", Value: *k},
	)
	if *zipf < 0 {
		log.Fatal("loadgen: -zipf must be >= 0")
	}
	if *filtered < 0 || *filtered > 1 {
		log.Fatal("loadgen: -filtered must be in [0, 1]")
	}

	pool := workload.QueryPoolFiltered(*qseed, *poolSize, *filtered)

	// fire issues one query and reports (latency, served-from-cache,
	// error). Both modes implement it; everything downstream is shared.
	var fire func(w int, sampler *workload.Sampler) (time.Duration, bool, error)
	rep := Report{
		Mode: "inprocess", Concurrency: *conc, DurationSec: duration.Seconds(),
		Zipf: *zipf, PoolSize: *poolSize, FilteredFrac: *filtered, K: *k,
	}
	var eng *engine.Engine // in-process mode only; nil over HTTP
	if *target != "" {
		rep.Mode, rep.Target = "http", *target
		fire = httpFirer(*target, *k)
	} else {
		e := buildEngine(*snapshot, *seed, *sites, *rows, *workers, *cacheCap)
		if *admission >= 0 && *cacheCap > 0 {
			e.EnableCacheAdmission(*admission)
			rep.AdmissionSlots = *admission
			if rep.AdmissionSlots == 0 {
				rep.AdmissionSlots = 8 * *cacheCap // rescache's default sizing
			}
		}
		eng = e
		fire = func(_ int, sampler *workload.Sampler) (time.Duration, bool, error) {
			// Same split the /v1 handler does: in-query DSL tokens become
			// structured predicates, the rest ranks as keywords.
			text, preds := query.Extract(sampler.Next())
			start := time.Now()
			resp, err := e.Search(context.Background(), engine.SearchRequest{Query: text, K: *k, Filters: preds})
			return time.Since(start), err == nil && resp.Cached, err
		}
	}

	log.Printf("loadgen: %s mode, %d workers, %v, pool %d, zipf %.2f, filtered %.2f",
		rep.Mode, *conc, *duration, *poolSize, *zipf, *filtered)
	results := make([]workerResult, *conc)
	runStart := time.Now()
	deadline := runStart.Add(*duration)
	var wg sync.WaitGroup
	for w := 0; w < *conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker sampler: an independent deterministic stream.
			sampler := workload.NewSampler(*qseed+int64(w)+1, *zipf, pool)
			res := &results[w]
			for time.Now().Before(deadline) {
				elapsed, cached, err := fire(w, sampler)
				// Bucket by completion second: a request straddling a
				// boundary counts where its latency was observed.
				b := res.bucket(int(time.Since(runStart) / time.Second))
				b.latencies = append(b.latencies, float64(elapsed)/float64(time.Millisecond))
				if err != nil {
					b.errors++
					res.tally(err)
					continue
				}
				if cached {
					res.hits++
				} else {
					res.misses++
				}
			}
		}(w)
	}
	wg.Wait()

	var all []float64
	var perSec []secBucket
	for i := range results {
		for s := range results[i].seconds {
			b := &results[i].seconds[s]
			for len(perSec) <= s {
				perSec = append(perSec, secBucket{})
			}
			perSec[s].latencies = append(perSec[s].latencies, b.latencies...)
			perSec[s].errors += b.errors
			all = append(all, b.latencies...)
		}
		rep.Errors += results[i].errors
		rep.ErrorsTimeout += results[i].timeouts
		rep.Errors5xx += results[i].http5xx
		rep.ErrorsTransport += results[i].transport
		rep.CacheHits += results[i].hits
		rep.CacheMisses += results[i].misses
	}
	for s := range perSec {
		b := &perSec[s]
		rep.Timeline = append(rep.Timeline, Interval{
			Second:   s,
			Requests: uint64(len(b.latencies)),
			Errors:   b.errors,
			P50:      dist.Percentile(b.latencies, 0.50),
			P95:      dist.Percentile(b.latencies, 0.95),
			P99:      dist.Percentile(b.latencies, 0.99),
		})
	}
	rep.Requests = uint64(len(all))
	if rep.Requests > 0 {
		rep.ErrorRate = float64(rep.Errors) / float64(rep.Requests)
	}
	rep.QPS = float64(rep.Requests) / duration.Seconds()
	rep.LatencyMS.P50 = dist.Percentile(all, 0.50)
	rep.LatencyMS.P95 = dist.Percentile(all, 0.95)
	rep.LatencyMS.P99 = dist.Percentile(all, 0.99)
	rep.LatencyMS.Max = dist.Percentile(all, 1)
	if served := rep.CacheHits + rep.CacheMisses; served > 0 {
		rep.HitRatio = float64(rep.CacheHits) / float64(served)
	}
	if eng != nil {
		if st, ok := eng.CacheStats(); ok {
			rep.CacheAdmitted, rep.CacheRejected = st.Admitted, st.Rejected
		}
	}

	fmt.Printf(`
mode         %s %s
requests     %d (%d errors, %.2f%% error rate)
errors       %d timeout / %d 5xx / %d transport
throughput   %.1f qps
latency ms   p50 %.3f   p95 %.3f   p99 %.3f   max %.3f
cache        %d hits / %d misses, hit ratio %.3f
`, rep.Mode, rep.Target, rep.Requests, rep.Errors, rep.ErrorRate*100,
		rep.ErrorsTimeout, rep.Errors5xx, rep.ErrorsTransport,
		rep.QPS, rep.LatencyMS.P50, rep.LatencyMS.P95, rep.LatencyMS.P99, rep.LatencyMS.Max,
		rep.CacheHits, rep.CacheMisses, rep.HitRatio)
	if rep.AdmissionSlots > 0 {
		fmt.Printf("admission    %d slots, %d admitted / %d rejected\n",
			rep.AdmissionSlots, rep.CacheAdmitted, rep.CacheRejected)
	}

	if *out != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *out)
	}

	// CI gates.
	if rep.Requests == 0 {
		log.Fatal("loadgen: no requests completed")
	}
	if rep.ErrorRate > *maxErrorRate {
		log.Fatalf("loadgen: error rate %.4f exceeds -max-error-rate %.4f", rep.ErrorRate, *maxErrorRate)
	}
	if rep.HitRatio < *minHitRatio {
		log.Fatalf("loadgen: hit ratio %.3f below -min-hit-ratio %.3f", rep.HitRatio, *minHitRatio)
	}
}

// httpFirer returns a fire function hitting target's /v1/search. Hits
// are classified by the X-Cache response header; any non-200 (or
// transport error) counts as an error.
func httpFirer(target string, k int) func(int, *workload.Sampler) (time.Duration, bool, error) {
	base, err := url.Parse(target)
	if err != nil {
		log.Fatalf("loadgen: -target: %v", err)
	}
	client := &http.Client{
		Timeout: 10 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        256,
			MaxIdleConnsPerHost: 256,
		},
	}
	kStr := strconv.Itoa(k)
	return func(_ int, sampler *workload.Sampler) (time.Duration, bool, error) {
		u := *base
		u.Path = "/v1/search"
		u.RawQuery = url.Values{"q": {sampler.Next()}, "k": {kStr}}.Encode()
		start := time.Now()
		resp, err := client.Get(u.String())
		if err != nil {
			return time.Since(start), false, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		elapsed := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			return elapsed, false, statusErr(resp.StatusCode)
		}
		return elapsed, resp.Header.Get("X-Cache") == "HIT", nil
	}
}

// buildEngine assembles the in-process engine exactly as deepsearch
// does: warm-start from a snapshot, or build + index + surface a
// synthetic world — then arm the result cache.
func buildEngine(snapshot string, seed int64, sites, rows, workers, cacheCap int) *engine.Engine {
	cliutil.RequirePositive("loadgen",
		cliutil.IntFlag{Name: "-sites", Value: sites},
		cliutil.IntFlag{Name: "-rows", Value: rows},
		cliutil.IntFlag{Name: "-workers", Value: workers},
	)
	start := time.Now()
	var e *engine.Engine
	if snapshot != "" {
		engine.DefaultWorkers = workers
		var err error
		e, err = engine.Load(snapshot)
		if err != nil {
			log.Fatal(err)
		}
	} else {
		var err error
		e, err = engine.Build(webgen.WorldConfig{Seed: seed, SitesPerDom: sites, RowsPerSite: rows})
		if err != nil {
			log.Fatal(err)
		}
		e.Workers = workers
		e.IndexSurfaceWeb(context.Background())
		if _, err := e.Surface(context.Background(), engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 5}); err != nil {
			log.Fatal(err)
		}
	}
	e.EnableResultCache(cacheCap)
	log.Printf("loadgen: engine ready, %d docs in %v (cache capacity %d)",
		e.Index.Len(), time.Since(start).Round(time.Millisecond), cacheCap)
	return e
}
