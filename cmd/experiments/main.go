// Command experiments runs every experiment in the reproduction's
// index (DESIGN.md §3) and prints paper-vs-measured reports. The output
// of a full run is recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-quick] [-seed N] [-only E7] [-workers N]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"deepweb/internal/engine"
	"deepweb/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "smaller workloads (CI-sized)")
	seed := flag.Int64("seed", 7, "experiment seed")
	only := flag.String("only", "", "run only the named experiment (e.g. E7)")
	workers := flag.Int("workers", runtime.NumCPU(), "concurrent surfacing workers per world")
	flag.Parse()
	log.SetFlags(0)
	// Parallel surfacing is bit-identical to sequential, so the reports
	// are unaffected; this only buys wall-clock.
	engine.DefaultWorkers = *workers

	scale := 1
	if *quick {
		scale = 4
	}
	run := func(name string, f func() (fmt.Stringer, error)) {
		if *only != "" && !strings.EqualFold(*only, name) {
			return
		}
		start := time.Now()
		rep, err := f()
		if err != nil {
			log.Printf("%s FAILED: %v", name, err)
			os.Exit(1)
		}
		fmt.Println(rep.String() + fmt.Sprintf("  [%s in %v]", name, time.Since(start).Round(time.Millisecond)))
	}

	run("E1", func() (fmt.Stringer, error) {
		cfg := experiments.DefaultE1()
		cfg.Seed = *seed
		cfg.Queries /= scale
		return experiments.E1LongTail(cfg), nil
	})
	run("E2", func() (fmt.Stringer, error) {
		return wrap(experiments.E2SiteLoad(context.Background(), *seed, 2, 600/scale, 200/scale))
	})
	run("E3", func() (fmt.Stringer, error) {
		return wrap(experiments.E3Fortuitous(context.Background(), *seed, 1600/scale))
	})
	run("E4", func() (fmt.Stringer, error) {
		sizes := []int{50, 200, 800, 3200}
		if *quick {
			sizes = []int{50, 200, 800}
		}
		return wrap(experiments.E4URLScaling(context.Background(), *seed, sizes))
	})
	run("E5", func() (fmt.Stringer, error) {
		return wrap(experiments.E5TypedInputs(context.Background(), *seed, 20000/scale, 400/scale))
	})
	run("E6", func() (fmt.Stringer, error) {
		budgets := []int{20, 50, 100, 200, 400}
		if *quick {
			budgets = []int{20, 80, 200}
		}
		return wrap(experiments.E6Probing(context.Background(), *seed, 1000/scale, budgets))
	})
	run("E7", func() (fmt.Stringer, error) {
		return wrap(experiments.E7Ranges(context.Background(), *seed, 800/scale))
	})
	run("E8", func() (fmt.Stringer, error) {
		return wrap(experiments.E8DBSelection(context.Background(), *seed, 1200/scale))
	})
	run("E9", func() (fmt.Stringer, error) {
		return wrap(experiments.E9Indexability(context.Background(), *seed, 1600/scale))
	})
	run("E10", func() (fmt.Stringer, error) {
		sizes := []int{100, 400, 1600}
		if *quick {
			sizes = []int{100, 400}
		}
		return wrap(experiments.E10Coverage(context.Background(), *seed, sizes))
	})
	run("E11", func() (fmt.Stringer, error) {
		return wrap(experiments.E11Semantics(context.Background(), *seed, 2, 240/scale))
	})
	run("E12", func() (fmt.Stringer, error) {
		return wrap(experiments.E12GetPost(context.Background(), *seed, 2, 320/scale, 3))
	})
	run("E13", func() (fmt.Stringer, error) {
		return wrap(experiments.E13LostSemantics(context.Background(), *seed, 2000/scale))
	})
	run("E14", func() (fmt.Stringer, error) {
		return wrap(experiments.E14Extraction(context.Background(), *seed, 1200/scale))
	})
}

// wrap adapts (report, error) pairs to the runner's signature.
func wrap[T fmt.Stringer](rep T, err error) (fmt.Stringer, error) { return rep, err }
