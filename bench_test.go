// Package deepweb's benchmark harness: one benchmark per experiment in
// the reproduction index (DESIGN.md §3, EXPERIMENTS.md). Each bench
// runs the corresponding experiment end-to-end and reports its headline
// quantities as custom benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// regenerates every number the paper reports. Absolute wall-clock is a
// property of the in-process simulator, not of the claims; the custom
// metrics are the experiment outputs.
package deepweb

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/experiments"
	"deepweb/internal/webgen"
	"deepweb/internal/workload"
)

// BenchmarkSurfaceAll tracks the sequential-vs-parallel wall-clock of
// the engine pipeline over a multi-site world (9 sites: one per
// vertical). The world is generated once — surfacing never mutates it —
// and each iteration runs a fresh engine, so the measured work is
// exactly discovery + analysis/probing + URL generation + fetch+ingest.
// Speedup tracks available cores; on a single-core machine the worker
// counts tie.
func BenchmarkSurfaceAll(b *testing.B) {
	web, err := webgen.BuildWorld(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 150})
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			docs := 0
			for i := 0; i < b.N; i++ {
				e := engine.New(web)
				e.Workers = workers
				if _, err := e.Surface(context.Background(), engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
					b.Fatal(err)
				}
				docs = e.Index.Len()
			}
			b.ReportMetric(float64(docs), "docs")
		})
	}
}

// Serving-tier hot path: the same surfaced engine answers one query
// uncached (a full BM25 scan per call), cached (the O(copy) hit path),
// and under parallel Zipfian load. Built once and shared — surfacing
// dominates setup, and Search never mutates the engine (each benchmark
// arms or disarms the result cache itself). The world is deliberately
// larger than the experiment worlds: the uncached cost of a query
// scales with its matched postings, and the queries worth caching are
// exactly the broad head queries that touch many of them, so the
// cached-vs-uncached gap is only honest at realistic index sizes.
var servingBench struct {
	once sync.Once
	e    *engine.Engine
	err  error
}

func servingEngine(b *testing.B) *engine.Engine {
	servingBench.once.Do(func() {
		e, err := engine.Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 2, RowsPerSite: 500})
		if err != nil {
			servingBench.err = err
			return
		}
		e.Workers = 4
		e.IndexSurfaceWeb(context.Background())
		if _, err := e.Surface(context.Background(), engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
			servingBench.err = err
			return
		}
		servingBench.e = e
	})
	if servingBench.err != nil {
		b.Fatal(servingBench.err)
	}
	return servingBench.e
}

// servingQuery is a broad head query: NoteWords pad free-text columns
// across every vertical, so it scores thousands of postings while the
// cached path still only copies K results.
var servingQuery = engine.SearchRequest{Query: "excellent condition", K: 10}

func BenchmarkSearchUncached(b *testing.B) {
	e := servingEngine(b)
	e.EnableResultCache(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(context.Background(), servingQuery); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchCached(b *testing.B) {
	e := servingEngine(b)
	e.EnableResultCache(4096)
	if _, err := e.Search(context.Background(), servingQuery); err != nil { // prime
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Search(context.Background(), servingQuery); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSearchParallel replays the loadgen workload shape in-process:
// every goroutine draws from its own Zipfian sampler over a shared
// vocabulary-derived pool, so the cache sees head-heavy traffic with a
// live tail of misses — the contention profile the sharded LRU and
// singleflight exist for.
func BenchmarkSearchParallel(b *testing.B) {
	e := servingEngine(b)
	e.EnableResultCache(4096)
	pool := workload.QueryPool(1, 200)
	var workerSeed atomic.Int64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		sampler := workload.NewSampler(workerSeed.Add(1), 1.1, pool)
		for pb.Next() {
			if _, err := e.Search(context.Background(), engine.SearchRequest{Query: sampler.Next(), K: 10}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkE1LongTail(b *testing.B) {
	var rep experiments.E1Report
	for i := 0; i < b.N; i++ {
		rep = experiments.E1LongTail(experiments.E1Config{NForms: 200000, Queries: 200000, Seed: 1})
	}
	b.ReportMetric(rep.Top10kShare, "top10k-share")
	b.ReportMetric(rep.Top100kShr, "top100k-share")
	b.ReportMetric(rep.Exponent, "zipf-exponent")
}

func BenchmarkE2SiteLoad(b *testing.B) {
	var rep experiments.E2Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E2SiteLoad(context.Background(), 7, 1, 150, 50)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.OfflineReqPerSite, "offline-reqs/site")
	b.ReportMetric(rep.MediatorReqPerQry, "mediator-reqs/query")
	b.ReportMetric(100*rep.MeanCoverage, "coverage-pct")
}

func BenchmarkE3Fortuitous(b *testing.B) {
	var rep experiments.E3Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E3Fortuitous(context.Background(), 7, 400)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.SurfacingHits), "surfacing-hits")
	b.ReportMetric(float64(rep.MediatorHits), "mediator-hits")
	b.ReportMetric(float64(rep.Queries), "queries")
}

func BenchmarkE4URLScaling(b *testing.B) {
	var rep experiments.E4Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E4URLScaling(context.Background(), 7, []int{100, 400})
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rep.Points[len(rep.Points)-1]
	b.ReportMetric(float64(last.URLs), "urls-at-max")
	b.ReportMetric(last.QuerySpace/float64(last.URLs), "queryspace/urls")
}

func BenchmarkE5TypedInputs(b *testing.B) {
	var rep experiments.E5Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E5TypedInputs(context.Background(), 7, 10000, 150)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*float64(rep.PlantedTyped)/float64(rep.PopulationForms), "typed-prevalence-pct")
	b.ReportMetric(100*rep.PopPrecision, "precision-pct")
	b.ReportMetric(100*rep.SiteRecall(), "site-recall-pct")
}

func BenchmarkE6Probing(b *testing.B) {
	var rep experiments.E6Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E6Probing(context.Background(), 7, 300, []int{100})
		if err != nil {
			b.Fatal(err)
		}
	}
	p := rep.Points[0]
	b.ReportMetric(100*p.IterCoverage, "iterative-coverage-pct")
	b.ReportMetric(100*p.DictCoverage, "dictionary-coverage-pct")
}

func BenchmarkE7Ranges(b *testing.B) {
	var rep experiments.E7Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E7Ranges(context.Background(), 7, 300)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.NaiveURLs), "naive-urls")
	b.ReportMetric(float64(rep.AwareURLs), "fused-urls")
	b.ReportMetric(100*rep.AwareCoverage, "fused-coverage-pct")
}

func BenchmarkE8DBSelection(b *testing.B) {
	var rep experiments.E8Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E8DBSelection(context.Background(), 7, 400)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.GlobalMean, "global-coverage-pct")
	b.ReportMetric(100*rep.PerDBMean, "percatalog-coverage-pct")
}

func BenchmarkE9Indexability(b *testing.B) {
	var rep experiments.E9Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E9Indexability(context.Background(), 7, 600)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rep.OnP95Items, "p95-items-on")
	b.ReportMetric(rep.OffP95Items, "p95-items-off")
	b.ReportMetric(float64(rep.OnRejected), "rejected-pages")
}

func BenchmarkE10Coverage(b *testing.B) {
	var rep experiments.E10Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E10Coverage(context.Background(), 7, []int{300})
		if err != nil {
			b.Fatal(err)
		}
	}
	p := rep.Points[0]
	b.ReportMetric(100*p.TrueFrac, "true-coverage-pct")
	b.ReportMetric(100*p.PointEst, "estimated-coverage-pct")
	b.ReportMetric(100*p.LowerBound, "lower-bound-pct")
}

func BenchmarkE11Semantics(b *testing.B) {
	var rep experiments.E11Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E11Semantics(context.Background(), 7, 2, 80)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.SynonymHits), "synonyms-recovered")
	b.ReportMetric(float64(rep.SynonymPairs), "synonyms-planted")
	b.ReportMetric(100*rep.ValueFillLift, "value-fill-coverage-pct")
}

func BenchmarkE12GetPost(b *testing.B) {
	var rep experiments.E12Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E12GetPost(context.Background(), 7, 2, 100, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*float64(rep.SurfaceableRecords)/float64(rep.TotalRecords), "surfaceable-pct")
	b.ReportMetric(100*float64(rep.PostRecords)/float64(rep.TotalRecords), "post-hidden-pct")
	b.ReportMetric(float64(rep.MediatorPostAnswers), "mediator-post-answers")
}

func BenchmarkE13Annotations(b *testing.B) {
	var rep experiments.E13Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E13LostSemantics(context.Background(), 7, 700)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rep.PlainDecoyTop3), "plain-decoy-queries")
	b.ReportMetric(float64(rep.AnnotDecoyTop3), "annotated-decoy-queries")
	b.ReportMetric(100*rep.AnnotPrecision3, "annotated-precision3-pct")
}

func BenchmarkE14Extraction(b *testing.B) {
	var rep experiments.E14Report
	for i := 0; i < b.N; i++ {
		var err error
		rep, err = experiments.E14Extraction(context.Background(), 7, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*rep.MeanAccuracy, "mean-field-accuracy-pct")
	b.ReportMetric(float64(rep.RecordsSeen), "records")
}
