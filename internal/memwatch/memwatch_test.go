package memwatch

import (
	"testing"
	"time"
)

func TestWatchObservesAllocations(t *testing.T) {
	w := Start(time.Millisecond)
	// The final sample at Stop sees the live ballast even if the
	// ticker never fired.
	ballast := make([]byte, 8<<20)
	for i := range ballast {
		ballast[i] = byte(i)
	}
	peak := w.Stop()
	if peak < 8<<20 {
		t.Fatalf("peak %d below the 8MB ballast", peak)
	}
	_ = ballast[0]
	if mb := PeakMB(16 << 20); mb != 16 {
		t.Fatalf("PeakMB(16MiB) = %v", mb)
	}
	// Stop is idempotent.
	if again := w.Stop(); again < peak {
		t.Fatalf("second Stop lowered the peak: %d < %d", again, peak)
	}
}
