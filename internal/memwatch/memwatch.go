// Package memwatch samples the Go heap during a measured run so bulk
// builds and benchmarks can report peak memory alongside throughput.
// It watches HeapAlloc (live heap bytes), the figure the ingest
// ladder's memory gates bound: RSS proper includes allocator overhead
// and OS accounting noise that varies across machines, while HeapAlloc
// moves with the working set the spill budget actually controls.
package memwatch

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Watch samples the heap on a fixed interval until stopped.
type Watch struct {
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	peak     atomic.Uint64
}

// Start begins sampling every interval (≤0 means 10ms).
func Start(interval time.Duration) *Watch {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	w := &Watch{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				w.sample()
			case <-w.stop:
				return
			}
		}
	}()
	return w
}

func (w *Watch) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	for {
		cur := w.peak.Load()
		if ms.HeapAlloc <= cur || w.peak.CompareAndSwap(cur, ms.HeapAlloc) {
			return
		}
	}
}

// Stop halts sampling (idempotent) and returns the peak HeapAlloc in
// bytes observed, including one final sample taken at Stop.
func (w *Watch) Stop() uint64 {
	w.stopOnce.Do(func() {
		close(w.stop)
	})
	<-w.done
	w.sample()
	return w.peak.Load()
}

// PeakMB converts a Stop result to mebibytes.
func PeakMB(bytes uint64) float64 { return float64(bytes) / (1 << 20) }
