package textutil

import (
	"sync"
	"unicode"
	"unicode/utf8"
)

// Token length bounds, in runes. Single characters carry no retrieval
// signal; over-long runs are almost always markup noise.
const (
	minTokenRunes = 2
	maxTokenRunes = 40
)

// maxInternEntries bounds each Tokenizer's intern table. Real page text
// draws from a bounded vocabulary, so the table converges; the cap only
// guards against adversarial input (random strings) pinning memory.
const maxInternEntries = 1 << 16

// Tokenizer is the allocation-conscious core of the text pipeline. It
// owns every piece of scratch state tokenization needs — a byte arena
// for the token under construction, an intern table that deduplicates
// token strings across calls, and a signature accumulator — so the hot
// loops (tokenize every fetched page, fingerprint every probe result)
// run without per-call heap traffic.
//
// The zero value is ready to use. A Tokenizer is not safe for
// concurrent use; give each goroutine its own (they are cheap) or use
// the package-level convenience functions, which draw from an internal
// pool.
type Tokenizer struct {
	buf    []byte // arena for the token currently being scanned
	intern map[string]string
	signer Signer
}

// scan splits s into tokens and calls emit for each one that passes the
// rune-length bounds. The token is lower-cased bytes in tz's arena,
// valid only until emit returns. The loop runs byte-at-a-time with an
// ASCII fast path; only bytes ≥ 0x80 pay for UTF-8 decoding and Unicode
// tables.
func (tz *Tokenizer) scan(s string, emit func(tok []byte)) {
	buf := tz.buf[:0]
	runes := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c < utf8.RuneSelf {
			i++
			switch {
			case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
				// Past the rune cap the token is dropped at flush anyway;
				// stop buffering so a pathological unbroken run (base64
				// blob, minified markup) cannot pin an arbitrarily large
				// arena in a pooled Tokenizer.
				if runes < maxTokenRunes {
					buf = append(buf, c)
				}
				runes++
			case c >= 'A' && c <= 'Z':
				if runes < maxTokenRunes {
					buf = append(buf, c+('a'-'A'))
				}
				runes++
			default:
				if runes >= minTokenRunes && runes <= maxTokenRunes {
					emit(buf)
				}
				buf = buf[:0]
				runes = 0
			}
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		i += size
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			if runes < maxTokenRunes {
				buf = utf8.AppendRune(buf, unicode.ToLower(r))
			}
			runes++
		} else if runes > 0 {
			if runes >= minTokenRunes && runes <= maxTokenRunes {
				emit(buf)
			}
			buf = buf[:0]
			runes = 0
		}
	}
	if runes >= minTokenRunes && runes <= maxTokenRunes {
		emit(buf)
	}
	tz.buf = buf[:0]
}

// internToken returns tok as a string, reusing a previously allocated
// copy when the token has been seen before. Map lookup with a
// string(tok) key compiles without allocating; only first sightings
// copy.
func (tz *Tokenizer) internToken(tok []byte) string {
	if s, ok := tz.intern[string(tok)]; ok {
		return s
	}
	s := string(tok)
	if tz.intern == nil {
		tz.intern = make(map[string]string, 256)
	}
	if len(tz.intern) < maxInternEntries {
		tz.intern[s] = s
	}
	return s
}

// TokenizeInto appends s's tokens to dst and returns it. Tokens are
// maximal runs of letters or digits, lower-cased, between 2 and 40
// runes long. dst is typically a reused buffer (dst[:0]); the appended
// strings are interned and safe to retain.
func (tz *Tokenizer) TokenizeInto(dst []string, s string) []string {
	tz.scan(s, func(tok []byte) {
		dst = append(dst, tz.internToken(tok))
	})
	return dst
}

// ContentTokensInto appends s's content tokens — tokens that are
// neither stopwords nor pure ASCII digits — to dst. It is the candidate
// pool used for seed-keyword extraction.
func (tz *Tokenizer) ContentTokensInto(dst []string, s string) []string {
	tz.scan(s, func(tok []byte) {
		if isStopword(tok) || isDigits(tok) {
			return
		}
		dst = append(dst, tz.internToken(tok))
	})
	return dst
}

// StemmedTokensInto appends the index's term pipeline — tokenize, drop
// stopwords, stem — to dst. Stemming happens in place in the arena
// before the token is interned.
func (tz *Tokenizer) StemmedTokensInto(dst []string, s string) []string {
	tz.scan(s, func(tok []byte) {
		if isStopword(tok) {
			return
		}
		dst = append(dst, tz.internToken(stemBytes(tok)))
	})
	return dst
}

// SignContent adds s's content tokens to an external signature
// accumulator — the streaming form of SignatureOf, used to fingerprint
// multi-part content (e.g. a ground-truth record set) without
// concatenating it.
func (tz *Tokenizer) SignContent(sg *Signer, s string) {
	tz.scan(s, func(tok []byte) {
		if isStopword(tok) || isDigits(tok) {
			return
		}
		sg.AddBytes(tok)
	})
}

// Signature fingerprints s's content-token set using the tokenizer's
// internal accumulator. Equivalent to SignatureOf without pool traffic.
func (tz *Tokenizer) Signature(s string) Signature {
	tz.signer.Reset()
	tz.SignContent(&tz.signer, s)
	return tz.signer.Sum()
}

// tokenizerPool backs the package-level convenience functions.
var tokenizerPool = sync.Pool{New: func() any { return new(Tokenizer) }}

func getTokenizer() *Tokenizer   { return tokenizerPool.Get().(*Tokenizer) }
func putTokenizer(tz *Tokenizer) { tokenizerPool.Put(tz) }
