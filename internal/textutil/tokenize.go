// Package textutil provides the text-processing primitives shared by the
// crawler, the IR index and the surfacing engine: tokenization, stopword
// filtering, light stemming, tf-idf vectors, similarity measures and
// content signatures.
//
// Everything here is deterministic and allocation-conscious: the
// surfacing engine fingerprints every fetched result page and the index
// tokenizes every document it ingests, so the hot paths are built around
// a reusable Tokenizer (byte-level scanning with an ASCII fast path, an
// internal arena, and a token intern table) and a commutative signature
// accumulator. The package-level functions are convenience wrappers over
// a pooled Tokenizer; pipelines that tokenize in a loop should hold
// their own Tokenizer and use the *Into variants with a reused
// destination slice.
package textutil

// Tokenize splits s into lower-cased word tokens. A token is a maximal
// run of letters or digits; everything else separates tokens. Tokens
// shorter than 2 runes or longer than 40 runes are dropped (single
// characters carry no retrieval signal; over-long runs are almost
// always markup noise).
func Tokenize(s string) []string {
	tz := getTokenizer()
	out := tz.TokenizeInto(nil, s)
	putTokenizer(tz)
	return out
}

// StemmedTokens runs the index's full term pipeline — tokenize, drop
// stopwords, stem — over s. Two strings with equal StemmedTokens are
// the same query to BM25, which is what makes it the result cache's
// normalization.
func StemmedTokens(s string) []string {
	tz := getTokenizer()
	out := tz.StemmedTokensInto(nil, s)
	putTokenizer(tz)
	return out
}

// ContentTokens tokenizes s and removes stopwords and pure-digit
// tokens. It is the candidate pool used for seed-keyword extraction.
func ContentTokens(s string) []string {
	tz := getTokenizer()
	out := tz.ContentTokensInto(nil, s)
	putTokenizer(tz)
	return out
}

// Stem applies a deliberately light suffix-stripping stem: plural
// -s/-es, -ies→y, -ing and -ed with a guard on stem length. It trades
// linguistic fidelity for predictability; the index only needs
// plural/verb-form conflation, and an aggressive stemmer would merge
// probe keywords the surfacing engine must keep distinct.
//
// The rules live in stemBytes (the in-place form the hot pipeline
// uses); Stem is the convenience wrapper, so the two can never diverge.
func Stem(t string) string {
	n := len(t)
	// Only -ies rewrites a byte; handle it here so every remaining rule
	// is a pure reslice and the result is always a prefix of t.
	if n > 4 && t[n-3:] == "ies" {
		return t[:n-3] + "y"
	}
	return t[:len(stemBytes([]byte(t)))]
}

// stemBytes is the stemmer's single rule set, operating in place on a
// token in the tokenizer arena: the -ies→y rewrite mutates the buffer
// instead of concatenating, every other rule is a reslice.
func stemBytes(t []byte) []byte {
	n := len(t)
	switch {
	case n > 4 && string(t[n-3:]) == "ies":
		t[n-3] = 'y'
		return t[:n-2]
	case n > 4 && string(t[n-4:]) == "sses":
		return t[:n-2]
	case n > 3 && string(t[n-2:]) == "es" && string(t[n-3:]) != "ses":
		return t[:n-1] // "makes"→"make", keep "buses"→"buse" out via ses guard above
	case n > 3 && t[n-1] == 's' && string(t[n-2:]) != "ss" && string(t[n-2:]) != "us":
		return t[:n-1]
	case n > 5 && string(t[n-3:]) == "ing":
		return t[:n-3]
	case n > 4 && string(t[n-2:]) == "ed":
		return t[:n-2]
	}
	return t
}
