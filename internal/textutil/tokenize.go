// Package textutil provides the text-processing primitives shared by the
// crawler, the IR index and the surfacing engine: tokenization, stopword
// filtering, light stemming, tf-idf vectors, similarity measures and
// content signatures.
//
// Everything here is deterministic and allocation-conscious: the surfacing
// engine calls Signature on every fetched result page, and the index
// tokenizes every document it ingests.
package textutil

import (
	"strings"
	"unicode"
)

// Tokenize splits s into lower-cased word tokens. A token is a maximal run
// of letters or digits; everything else separates tokens. Tokens shorter
// than 2 runes and longer than 40 runes are dropped (single letters carry
// no retrieval signal; over-long runs are almost always markup noise).
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			t := b.String()
			if n := len(t); n >= 2 && n <= 40 {
				tokens = append(tokens, t)
			}
			b.Reset()
		}
	}
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// stopwords is the closed set of English function words excluded from
// term vectors and keyword candidates. It intentionally stays small: the
// iterative prober relies on content words surviving.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "he": true, "in": true, "is": true,
	"it": true, "its": true, "of": true, "on": true, "or": true,
	"that": true, "the": true, "this": true, "to": true, "was": true,
	"were": true, "will": true, "with": true, "we": true, "you": true,
	"your": true, "our": true, "all": true, "any": true, "can": true,
	"not": true, "no": true, "if": true, "so": true, "do": true,
	"does": true, "their": true, "there": true, "they": true, "been": true,
	"more": true, "other": true, "new": true, "one": true, "two": true,
	"about": true, "into": true, "over": true, "per": true, "than": true,
}

// IsStopword reports whether the (already lower-cased) token is an English
// function word that should not be used as a probe keyword or index term
// weight anchor.
func IsStopword(t string) bool { return stopwords[t] }

// ContentTokens tokenizes s and removes stopwords and pure-digit tokens.
// It is the candidate pool used for seed-keyword extraction.
func ContentTokens(s string) []string {
	toks := Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if IsStopword(t) || isDigits(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

func isDigits(s string) bool {
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Stem applies a deliberately light suffix-stripping stem: plural -s/-es,
// -ies→y, -ing and -ed with a guard on stem length. It trades linguistic
// fidelity for predictability; the index only needs plural/verb-form
// conflation, and an aggressive stemmer would merge probe keywords the
// surfacing engine must keep distinct.
func Stem(t string) string {
	n := len(t)
	switch {
	case n > 4 && strings.HasSuffix(t, "ies"):
		return t[:n-3] + "y"
	case n > 4 && strings.HasSuffix(t, "sses"):
		return t[:n-2]
	case n > 3 && strings.HasSuffix(t, "es") && !strings.HasSuffix(t, "ses"):
		return t[:n-1] // "makes"→"make", keep "buses"→"buse" out via ses guard above
	case n > 3 && strings.HasSuffix(t, "s") && !strings.HasSuffix(t, "ss") && !strings.HasSuffix(t, "us"):
		return t[:n-1]
	case n > 5 && strings.HasSuffix(t, "ing"):
		return t[:n-3]
	case n > 4 && strings.HasSuffix(t, "ed"):
		return t[:n-2]
	}
	return t
}
