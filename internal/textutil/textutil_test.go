package textutil

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Used Ford Focus, 1993 — $2,500!")
	want := []string{"used", "ford", "focus", "1993", "500"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropsExtremes(t *testing.T) {
	long := strings.Repeat("x", 41)
	got := Tokenize("a b " + long + " ok")
	want := []string{"ok"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Tokenize("!!! --- ???"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v, want empty", got)
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("HONDA Civic EX") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lower-cased", tok)
		}
	}
}

func TestContentTokensFiltersStopwordsAndDigits(t *testing.T) {
	got := ContentTokens("the price of the car is 12500 dollars")
	want := []string{"price", "car", "dollars"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"cars":      "car",
		"cities":    "city",
		"makes":     "make",
		"listing":   "list",
		"listed":    "list",
		"glass":     "glass",
		"bus":       "bus",
		"price":     "price",
		"addresses": "address",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

// Stem and the pipeline's in-place stemBytes share one rule set; pin
// the equivalence so they cannot silently diverge.
func TestStemMatchesStemBytes(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if Stem(tok) != string(stemBytes([]byte(tok))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
	for _, tok := range []string{"cities", "glasses", "sses", "ies", "buses", "bus", "misses", "es"} {
		if got, want := Stem(tok), string(stemBytes([]byte(tok))); got != want {
			t.Errorf("Stem(%q) = %q, stemBytes = %q", tok, got, want)
		}
	}
}

func TestCosine(t *testing.T) {
	a := NewTermVector([]string{"ford", "focus"})
	b := NewTermVector([]string{"ford", "focus"})
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine(identical) = %v, want 1", got)
	}
	c := NewTermVector([]string{"honda", "civic"})
	if got := Cosine(a, c); got != 0 {
		t.Errorf("Cosine(disjoint) = %v, want 0", got)
	}
	if got := Cosine(a, TermVector{}); got != 0 {
		t.Errorf("Cosine(with empty) = %v, want 0", got)
	}
}

func TestJaccard(t *testing.T) {
	a := NewTermVector([]string{"ford", "focus", "1993"})
	b := NewTermVector([]string{"ford", "escort", "1993"})
	if got, want := Jaccard(a, b), 2.0/4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := Jaccard(TermVector{}, TermVector{}); got != 1 {
		t.Errorf("Jaccard(empty,empty) = %v, want 1", got)
	}
}

func TestTopTermsDeterministicTieBreak(t *testing.T) {
	v := TermVector{"beta": 2, "alpha": 2, "gamma": 1}
	got := v.TopTerms(2)
	if got[0].Term != "alpha" || got[1].Term != "beta" {
		t.Errorf("TopTerms tie-break = %v, want alpha,beta", got)
	}
}

func TestTopTermsKLargerThanVector(t *testing.T) {
	v := TermVector{"a2": 1}
	if got := v.TopTerms(10); len(got) != 1 {
		t.Errorf("TopTerms len = %d, want 1", len(got))
	}
}

func TestTFIDFRareTermsWeighHigher(t *testing.T) {
	tf := TermVector{"common": 1, "rare": 1}
	df := map[string]int{"common": 90, "rare": 2}
	w := TFIDF(tf, df, 100)
	if w["rare"] <= w["common"] {
		t.Errorf("tf-idf: rare %v should outweigh common %v", w["rare"], w["common"])
	}
}

func TestSignatureIgnoresOrderAndMultiplicity(t *testing.T) {
	a := SignatureOf("honda civic 1999 blue sedan")
	b := SignatureOf("blue sedan honda honda civic 1999")
	if a != b {
		t.Errorf("signatures of permuted/multiplied content differ: %v vs %v", a, b)
	}
	c := SignatureOf("honda accord 1999 blue sedan")
	if a == c {
		t.Errorf("signatures of different content collide")
	}
}

func TestSignatureIgnoresStopwordChrome(t *testing.T) {
	a := SignatureOf("results for the query: honda civic")
	b := SignatureOf("honda civic results query")
	if a != b {
		t.Errorf("stopword chrome changed the signature")
	}
}

func TestDistinctSignatures(t *testing.T) {
	sigs := []Signature{1, 2, 2, 3, 1}
	if got := DistinctSignatures(sigs); got != 3 {
		t.Errorf("DistinctSignatures = %d, want 3", got)
	}
	if got := DistinctSignatures(nil); got != 0 {
		t.Errorf("DistinctSignatures(nil) = %d, want 0", got)
	}
}

// Property: tokenization output only contains runes that are letters or
// digits, lower-cased, within the length bounds (counted in runes).
func TestTokenizePropertyWellFormed(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if n := utf8.RuneCountInString(tok); n < 2 || n > 40 {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The 2–40 length bounds are rune counts, not byte counts: a one-rune
// multibyte token is dropped even though it is 2+ bytes, and a 15-rune
// CJK token is kept even though it is 45 bytes.
func TestTokenizeBoundsCountRunes(t *testing.T) {
	if got := Tokenize("é x"); len(got) != 0 {
		t.Errorf("Tokenize(one-rune tokens) = %v, want empty", got)
	}
	cjk := strings.Repeat("日", 15) // 45 bytes, 15 runes
	if got := Tokenize("ok " + cjk); !reflect.DeepEqual(got, []string{"ok", cjk}) {
		t.Errorf("Tokenize = %v, want [ok %s]", got, cjk)
	}
	over := strings.Repeat("日", 41) // over the rune bound
	if got := Tokenize(over + " ok"); !reflect.DeepEqual(got, []string{"ok"}) {
		t.Errorf("Tokenize(41-rune token) = %v, want [ok]", got)
	}
	if got := Tokenize("café naïve"); !reflect.DeepEqual(got, []string{"café", "naïve"}) {
		t.Errorf("Tokenize = %v, want [café naïve]", got)
	}
}

// The ASCII fast path and the Unicode slow path agree on mixed input,
// including case folding on both sides of the boundary.
func TestTokenizeMixedScripts(t *testing.T) {
	got := Tokenize("ŠKODA Octavia, Ζαγόρι-2024 БМВ")
	want := []string{"škoda", "octavia", "ζαγόρι", "2024", "бмв"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

// TokenizeInto appends into a caller-supplied buffer without clobbering
// what is already there, and a reused Tokenizer keeps yielding correct
// results.
func TestTokenizeInto(t *testing.T) {
	var tz Tokenizer
	buf := make([]string, 0, 8)
	buf = append(buf, "prefix")
	buf = tz.TokenizeInto(buf, "Ford Focus")
	if want := []string{"prefix", "ford", "focus"}; !reflect.DeepEqual(buf, want) {
		t.Fatalf("TokenizeInto = %v, want %v", buf, want)
	}
	for i := 0; i < 3; i++ {
		out := tz.TokenizeInto(buf[:0], "honda CIVIC 1999")
		if want := []string{"honda", "civic", "1999"}; !reflect.DeepEqual(out, want) {
			t.Fatalf("round %d: TokenizeInto = %v, want %v", i, out, want)
		}
	}
}

// StemmedTokensInto is the index pipeline: stopwords dropped, stems
// applied, digits kept.
func TestStemmedTokensInto(t *testing.T) {
	var tz Tokenizer
	got := tz.StemmedTokensInto(nil, "the listings of used cars from 1993")
	want := []string{"listing", "used", "car", "1993"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("StemmedTokensInto = %v, want %v", got, want)
	}
}

// A Signer accumulates the same fingerprint as SignatureOfTokens, and
// SignContent streams the same fingerprint as SignatureOf.
func TestSignerMatchesPackageFunctions(t *testing.T) {
	tokens := []string{"honda", "civic", "1999", "honda"}
	var sg Signer
	sg.Reset()
	for _, tok := range tokens {
		sg.Add(tok)
	}
	if sg.Sum() != SignatureOfTokens(tokens) {
		t.Error("Signer sum differs from SignatureOfTokens")
	}

	text := "used Honda Civic for sale in the city of Seattle"
	var tz Tokenizer
	sg.Reset()
	tz.SignContent(&sg, text)
	if sg.Sum() != SignatureOf(text) {
		t.Error("streamed SignContent differs from SignatureOf")
	}

	// Streaming parts must equal signing the concatenation.
	sg.Reset()
	tz.SignContent(&sg, "used Honda Civic")
	tz.SignContent(&sg, "for sale in Seattle")
	if sg.Sum() != SignatureOf("used Honda Civic for sale in Seattle") {
		t.Error("part-wise SignContent differs from whole-text SignatureOf")
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosinePropertySymmetricBounded(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := NewTermVector(xs), NewTermVector(ys)
		c1, c2 := Cosine(a, b), Cosine(b, a)
		return math.Abs(c1-c2) < 1e-9 && c1 >= 0 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a signature is invariant under shuffling of tokens.
func TestSignaturePropertyPermutationInvariant(t *testing.T) {
	f := func(xs []string, seed int64) bool {
		if len(xs) == 0 {
			return true
		}
		perm := make([]string, len(xs))
		copy(perm, xs)
		sort.Strings(perm) // any fixed permutation suffices
		return SignatureOfTokens(xs) == SignatureOfTokens(perm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
