package textutil

import (
	"math"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("Used Ford Focus, 1993 — $2,500!")
	want := []string{"used", "ford", "focus", "1993", "500"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeDropsExtremes(t *testing.T) {
	long := strings.Repeat("x", 41)
	got := Tokenize("a b " + long + " ok")
	want := []string{"ok"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v, want empty", got)
	}
	if got := Tokenize("!!! --- ???"); len(got) != 0 {
		t.Errorf("Tokenize(punct) = %v, want empty", got)
	}
}

func TestTokenizeLowercases(t *testing.T) {
	for _, tok := range Tokenize("HONDA Civic EX") {
		if tok != strings.ToLower(tok) {
			t.Errorf("token %q not lower-cased", tok)
		}
	}
}

func TestContentTokensFiltersStopwordsAndDigits(t *testing.T) {
	got := ContentTokens("the price of the car is 12500 dollars")
	want := []string{"price", "car", "dollars"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentTokens = %v, want %v", got, want)
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"cars":      "car",
		"cities":    "city",
		"makes":     "make",
		"listing":   "list",
		"listed":    "list",
		"glass":     "glass",
		"bus":       "bus",
		"price":     "price",
		"addresses": "address",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCosine(t *testing.T) {
	a := NewTermVector([]string{"ford", "focus"})
	b := NewTermVector([]string{"ford", "focus"})
	if got := Cosine(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("Cosine(identical) = %v, want 1", got)
	}
	c := NewTermVector([]string{"honda", "civic"})
	if got := Cosine(a, c); got != 0 {
		t.Errorf("Cosine(disjoint) = %v, want 0", got)
	}
	if got := Cosine(a, TermVector{}); got != 0 {
		t.Errorf("Cosine(with empty) = %v, want 0", got)
	}
}

func TestJaccard(t *testing.T) {
	a := NewTermVector([]string{"ford", "focus", "1993"})
	b := NewTermVector([]string{"ford", "escort", "1993"})
	if got, want := Jaccard(a, b), 2.0/4.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("Jaccard = %v, want %v", got, want)
	}
	if got := Jaccard(TermVector{}, TermVector{}); got != 1 {
		t.Errorf("Jaccard(empty,empty) = %v, want 1", got)
	}
}

func TestTopTermsDeterministicTieBreak(t *testing.T) {
	v := TermVector{"beta": 2, "alpha": 2, "gamma": 1}
	got := v.TopTerms(2)
	if got[0].Term != "alpha" || got[1].Term != "beta" {
		t.Errorf("TopTerms tie-break = %v, want alpha,beta", got)
	}
}

func TestTopTermsKLargerThanVector(t *testing.T) {
	v := TermVector{"a2": 1}
	if got := v.TopTerms(10); len(got) != 1 {
		t.Errorf("TopTerms len = %d, want 1", len(got))
	}
}

func TestTFIDFRareTermsWeighHigher(t *testing.T) {
	tf := TermVector{"common": 1, "rare": 1}
	df := map[string]int{"common": 90, "rare": 2}
	w := TFIDF(tf, df, 100)
	if w["rare"] <= w["common"] {
		t.Errorf("tf-idf: rare %v should outweigh common %v", w["rare"], w["common"])
	}
}

func TestSignatureIgnoresOrderAndMultiplicity(t *testing.T) {
	a := SignatureOf("honda civic 1999 blue sedan")
	b := SignatureOf("blue sedan honda honda civic 1999")
	if a != b {
		t.Errorf("signatures of permuted/multiplied content differ: %v vs %v", a, b)
	}
	c := SignatureOf("honda accord 1999 blue sedan")
	if a == c {
		t.Errorf("signatures of different content collide")
	}
}

func TestSignatureIgnoresStopwordChrome(t *testing.T) {
	a := SignatureOf("results for the query: honda civic")
	b := SignatureOf("honda civic results query")
	if a != b {
		t.Errorf("stopword chrome changed the signature")
	}
}

func TestDistinctSignatures(t *testing.T) {
	sigs := []Signature{1, 2, 2, 3, 1}
	if got := DistinctSignatures(sigs); got != 3 {
		t.Errorf("DistinctSignatures = %d, want 3", got)
	}
	if got := DistinctSignatures(nil); got != 0 {
		t.Errorf("DistinctSignatures(nil) = %d, want 0", got)
	}
}

// Property: tokenization output only contains runes that are letters or
// digits, lower-cased, within the length bounds.
func TestTokenizePropertyWellFormed(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if len(tok) < 2 || len(tok) > 40 {
				return false
			}
			if tok != strings.ToLower(tok) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosinePropertySymmetricBounded(t *testing.T) {
	f := func(xs, ys []string) bool {
		a, b := NewTermVector(xs), NewTermVector(ys)
		c1, c2 := Cosine(a, b), Cosine(b, a)
		return math.Abs(c1-c2) < 1e-9 && c1 >= 0 && c1 <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a signature is invariant under shuffling of tokens.
func TestSignaturePropertyPermutationInvariant(t *testing.T) {
	f := func(xs []string, seed int64) bool {
		if len(xs) == 0 {
			return true
		}
		perm := make([]string, len(xs))
		copy(perm, xs)
		sort.Strings(perm) // any fixed permutation suffices
		return SignatureOfTokens(xs) == SignatureOfTokens(perm)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
