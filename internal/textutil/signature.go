package textutil

import (
	"hash/fnv"
	"sort"
)

// Signature is a compact content fingerprint of a result page. The
// surfacing engine's informativeness test (paper §3.2, algorithms in
// Madhavan et al. PVLDB'08) distinguishes query templates by how many
// *distinct* result pages they produce; pages differing only in
// navigation chrome or the echoed query must collapse to the same
// signature, so the fingerprint is computed over the sorted set of
// content tokens rather than the raw bytes.
type Signature uint64

// SignatureOf fingerprints the visible text of a page. Token order and
// multiplicity are discarded: a page listing the same records in a
// different order, or echoing the submitted query string, signs the same.
func SignatureOf(text string) Signature {
	toks := ContentTokens(text)
	seen := make(map[string]struct{}, len(toks))
	uniq := toks[:0]
	for _, t := range toks {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		uniq = append(uniq, t)
	}
	sort.Strings(uniq)
	h := fnv.New64a()
	for _, t := range uniq {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return Signature(h.Sum64())
}

// SignatureOfTokens fingerprints an already-tokenized record set. Used by
// tests and by the site generator to compute ground-truth signatures.
func SignatureOfTokens(tokens []string) Signature {
	uniq := make([]string, 0, len(tokens))
	seen := make(map[string]struct{}, len(tokens))
	for _, t := range tokens {
		if _, ok := seen[t]; ok {
			continue
		}
		seen[t] = struct{}{}
		uniq = append(uniq, t)
	}
	sort.Strings(uniq)
	h := fnv.New64a()
	for _, t := range uniq {
		h.Write([]byte(t))
		h.Write([]byte{0})
	}
	return Signature(h.Sum64())
}

// DistinctSignatures counts the distinct signatures in sigs; it is the
// quantity the informativeness test thresholds on.
func DistinctSignatures(sigs []Signature) int {
	set := make(map[Signature]struct{}, len(sigs))
	for _, s := range sigs {
		set[s] = struct{}{}
	}
	return len(set)
}
