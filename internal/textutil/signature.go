package textutil

// Signature is a compact content fingerprint of a result page. The
// surfacing engine's informativeness test (paper §3.2, algorithms in
// Madhavan et al. PVLDB'08) distinguishes query templates by how many
// *distinct* result pages they produce; pages differing only in
// navigation chrome or the echoed query must collapse to the same
// signature, so the fingerprint is computed over the *set* of content
// tokens rather than the raw bytes: order and multiplicity are
// discarded by construction.
type Signature uint64

// FNV-1a 64-bit constants, used to hash individual tokens inline (no
// hash.Hash allocation, no Write call per token).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64a[T ~string | ~[]byte](t T) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(t); i++ {
		h ^= uint64(t[i])
		h *= fnvPrime64
	}
	return h
}

// mix64 is the splitmix64 finalizer: a cheap avalanche so that summing
// per-token hashes commutatively still mixes every input bit into every
// output bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Signer accumulates a Signature token by token: each distinct token's
// 64-bit hash is mixed and summed, so the result is independent of
// token order and multiplicity with no sorting and no per-token string
// retention. Deduplication runs over an internal open-addressing set of
// token hashes that is reused across Reset calls. The zero value is
// ready to use; a Signer is not safe for concurrent use.
type Signer struct {
	set hashSet
	acc uint64
}

// Reset clears the accumulator for a new fingerprint.
func (sg *Signer) Reset() {
	sg.set.reset()
	sg.acc = 0
}

// Add folds one token into the signature.
func (sg *Signer) Add(token string) {
	if h := fnv64a(token); sg.set.add(h) {
		sg.acc += mix64(h)
	}
}

// AddBytes is Add for a token in a transient byte buffer.
func (sg *Signer) AddBytes(token []byte) {
	if h := fnv64a(token); sg.set.add(h) {
		sg.acc += mix64(h)
	}
}

// Sum returns the signature of the tokens added since the last Reset.
func (sg *Signer) Sum() Signature {
	return Signature(mix64(sg.acc + uint64(sg.set.count())))
}

// SignatureOf fingerprints the visible text of a page over its content
// tokens (stopwords and pure-digit tokens excluded). A page listing the
// same records in a different order, or echoing the submitted query
// string, signs the same.
func SignatureOf(text string) Signature {
	tz := getTokenizer()
	sig := tz.Signature(text)
	putTokenizer(tz)
	return sig
}

// SignatureOfTokens fingerprints an already-tokenized record set (no
// stopword filtering — the caller chose the tokens). Used by tests and
// by the site generator to compute ground-truth signatures.
func SignatureOfTokens(tokens []string) Signature {
	tz := getTokenizer()
	sg := &tz.signer
	sg.Reset()
	for _, t := range tokens {
		sg.Add(t)
	}
	sig := sg.Sum()
	putTokenizer(tz)
	return sig
}

// DistinctSignatures counts the distinct signatures in sigs; it is the
// quantity the informativeness test thresholds on.
func DistinctSignatures(sigs []Signature) int {
	var set hashSet
	set.reset()
	n := 0
	for _, s := range sigs {
		if set.add(uint64(s)) {
			n++
		}
	}
	return n
}

// hashSet is a small open-addressing set of uint64 hashes with linear
// probing. Zero is handled out of band so empty slots need no metadata.
type hashSet struct {
	slots   []uint64
	n       int
	hasZero bool
}

// baseSlots is the table size a hashSet starts from (and shrinks back
// to); maxRetainedSlots bounds what a reset keeps. Like the tokenizer's
// intern cap, this stops one pathological page from permanently pinning
// a huge table — and from taxing every later reset with a clear() over
// capacity the typical page never uses.
const (
	baseSlots        = 128
	maxRetainedSlots = 1 << 15
)

func (hs *hashSet) reset() {
	if hs.slots == nil || len(hs.slots) > maxRetainedSlots {
		hs.slots = make([]uint64, baseSlots)
	} else {
		clear(hs.slots)
	}
	hs.n = 0
	hs.hasZero = false
}

func (hs *hashSet) count() int {
	if hs.hasZero {
		return hs.n + 1
	}
	return hs.n
}

// add inserts h and reports whether it was absent.
func (hs *hashSet) add(h uint64) bool {
	if len(hs.slots) == 0 {
		hs.reset()
	}
	if h == 0 {
		if hs.hasZero {
			return false
		}
		hs.hasZero = true
		return true
	}
	if !hs.insert(h) {
		return false
	}
	if hs.n > len(hs.slots)*3/4 {
		hs.grow()
	}
	return true
}

// insert places h unless present; the caller maintains the load factor.
func (hs *hashSet) insert(h uint64) bool {
	mask := uint64(len(hs.slots) - 1)
	for i := mix64(h) & mask; ; i = (i + 1) & mask {
		switch hs.slots[i] {
		case 0:
			hs.slots[i] = h
			hs.n++
			return true
		case h:
			return false
		}
	}
}

func (hs *hashSet) grow() {
	old := hs.slots
	hs.slots = make([]uint64, 2*len(old))
	hs.n = 0
	for _, h := range old {
		if h != 0 {
			hs.insert(h)
		}
	}
}
