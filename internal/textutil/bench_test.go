package textutil

import (
	"strings"
	"testing"
)

var benchText = strings.Repeat(
	"quality used cars for sale in seattle, ford focus 1993 clean title $2,500 low miles; ", 40)

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchText)
	}
}

func BenchmarkSignatureOf(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SignatureOf(benchText)
	}
}

func BenchmarkCosine(b *testing.B) {
	v1 := NewTermVector(ContentTokens(benchText))
	v2 := NewTermVector(ContentTokens(benchText + " honda civic portland"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cosine(v1, v2)
	}
}
