package textutil

import (
	"strings"
	"testing"
)

var benchText = strings.Repeat(
	"quality used cars for sale in seattle, ford focus 1993 clean title $2,500 low miles; ", 40)

func BenchmarkTokenize(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(benchText)
	}
}

// BenchmarkTokenizeInto is the pipeline-shaped call: one Tokenizer, one
// reused destination buffer. This is the loop the index and the prober
// actually run.
func BenchmarkTokenizeInto(b *testing.B) {
	var tz Tokenizer
	buf := make([]string, 0, 1024)
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = tz.TokenizeInto(buf[:0], benchText)
	}
	_ = buf
}

// BenchmarkSignature fingerprints a result page — the per-probe hot
// path of the informativeness test.
func BenchmarkSignature(b *testing.B) {
	b.SetBytes(int64(len(benchText)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		SignatureOf(benchText)
	}
}

func BenchmarkCosine(b *testing.B) {
	v1 := NewTermVector(ContentTokens(benchText))
	v2 := NewTermVector(ContentTokens(benchText + " honda civic portland"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Cosine(v1, v2)
	}
}
