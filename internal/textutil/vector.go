package textutil

import (
	"math"
	"sort"
)

// TermVector is a sparse bag-of-words with float weights, keyed by term.
type TermVector map[string]float64

// NewTermVector builds a term-frequency vector from tokens.
func NewTermVector(tokens []string) TermVector {
	v := make(TermVector, len(tokens))
	for _, t := range tokens {
		v[t]++
	}
	return v
}

// Norm returns the Euclidean norm of v.
func (v TermVector) Norm() float64 {
	var s float64
	for _, w := range v {
		s += w * w
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine similarity of a and b in [0,1]; zero vectors
// have similarity 0.
func Cosine(a, b TermVector) float64 {
	if len(a) > len(b) {
		a, b = b, a
	}
	var dot float64
	for t, w := range a {
		dot += w * b[t]
	}
	na, nb := a.Norm(), b.Norm()
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// Jaccard returns |a∩b| / |a∪b| over the key sets of a and b. Two empty
// vectors have similarity 1 (they are identical).
func Jaccard(a, b TermVector) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) > len(b) {
		a, b = b, a
	}
	inter := 0
	for t := range a {
		if _, ok := b[t]; ok {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	return float64(inter) / float64(union)
}

// WeightedTerm pairs a term with a weight, for ranked keyword lists.
type WeightedTerm struct {
	Term   string
	Weight float64
}

// TopTerms returns the k highest-weighted terms of v, ties broken
// alphabetically so the output is deterministic.
func (v TermVector) TopTerms(k int) []WeightedTerm {
	terms := make([]WeightedTerm, 0, len(v))
	for t, w := range v {
		terms = append(terms, WeightedTerm{t, w})
	}
	sort.Slice(terms, func(i, j int) bool {
		if terms[i].Weight != terms[j].Weight {
			return terms[i].Weight > terms[j].Weight
		}
		return terms[i].Term < terms[j].Term
	})
	if k < len(terms) {
		terms = terms[:k]
	}
	return terms
}

// TFIDF converts raw term frequencies into tf-idf weights given document
// frequencies df and corpus size n. Terms absent from df get the maximal
// idf (they appeared in no other document).
func TFIDF(tf TermVector, df map[string]int, n int) TermVector {
	out := make(TermVector, len(tf))
	for t, f := range tf {
		d := df[t]
		if d < 1 {
			d = 1
		}
		out[t] = f * math.Log(float64(n+1)/float64(d))
	}
	return out
}
