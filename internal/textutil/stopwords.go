package textutil

// The closed set of English function words excluded from term vectors
// and keyword candidates. It intentionally stays small: the iterative
// prober relies on content words surviving. The set is encoded as a
// switch rather than a map so the hot tokenization loops test
// membership with length dispatch + constant comparisons — no hashing,
// no map overhead, and (for the []byte instantiation) no conversion
// allocation.
func isStopword[T ~string | ~[]byte](t T) bool {
	switch len(t) {
	case 1:
		return string(t) == "a"
	case 2:
		switch string(t) {
		case "an", "as", "at", "be", "by", "do", "he", "if", "in", "is",
			"it", "no", "of", "on", "or", "so", "to", "we":
			return true
		}
	case 3:
		switch string(t) {
		case "all", "and", "any", "are", "but", "can", "for", "has", "its",
			"new", "not", "one", "our", "per", "the", "two", "was", "you":
			return true
		}
	case 4:
		switch string(t) {
		case "been", "does", "from", "have", "into", "more", "over", "than",
			"that", "they", "this", "were", "will", "with", "your":
			return true
		}
	case 5:
		switch string(t) {
		case "about", "other", "their", "there":
			return true
		}
	}
	return false
}

// IsStopword reports whether the (already lower-cased) token is an
// English function word that should not be used as a probe keyword or
// index term weight anchor.
func IsStopword(t string) bool { return isStopword(t) }

// isDigits reports whether t is a non-empty run of ASCII digits.
// Non-ASCII digit runes intentionally do not count (they never appear
// in the numeric fields this filter exists for).
func isDigits[T ~string | ~[]byte](t T) bool {
	for i := 0; i < len(t); i++ {
		if t[i] < '0' || t[i] > '9' {
			return false
		}
	}
	return len(t) > 0
}
