package textutil

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"
	"unicode"
)

// naiveTokenize is the reference implementation of the documented
// tokenization contract, written for obviousness rather than speed:
// decode runes one at a time, accumulate letter/digit runs lower-cased,
// keep runs of 2–40 runes. The production tokenizer (byte-level ASCII
// fast path, arena, interning) must match it on every input.
func naiveTokenize(s string) []string {
	var tokens []string
	var runes []rune
	flush := func() {
		if len(runes) >= 2 && len(runes) <= 40 {
			tokens = append(tokens, string(runes))
		}
		runes = runes[:0]
	}
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			runes = append(runes, unicode.ToLower(r))
		} else {
			flush()
		}
	}
	flush()
	return tokens
}

func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"",
		"Used Ford Focus, 1993 — $2,500!",
		"a b cc ddd",
		"é x café naïve Ζαγόρι",
		"日本語データベース 検索",
		"\xff\xfe invalid \x80 utf8",
		"ŠKODA Octavia-2024 БМВ X5",
		"0123456789 9876543210",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		got := Tokenize(s)
		want := naiveTokenize(s)
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Tokenize(%q) = %q, want %q", s, got, want)
		}
	})
}

// Property: the production tokenizer matches the naive reference on
// arbitrary strings (quick.Check drives different generation than the
// fuzzer's corpus mutation, so keep both).
func TestTokenizeMatchesNaiveReference(t *testing.T) {
	f := func(s string) bool {
		return reflect.DeepEqual(naiveTokenize(s), naiveOrNil(Tokenize(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func naiveOrNil(toks []string) []string {
	if len(toks) == 0 {
		return nil
	}
	return toks
}

// Property: ContentTokensInto equals filtering Tokenize's output, and a
// reused buffer does not change results.
func TestContentTokensMatchesFilteredTokenize(t *testing.T) {
	var tz Tokenizer
	buf := make([]string, 0, 32)
	f := func(s string) bool {
		var want []string
		for _, tok := range Tokenize(s) {
			if IsStopword(tok) || isDigits(tok) {
				continue
			}
			want = append(want, tok)
		}
		buf = tz.ContentTokensInto(buf[:0], s)
		return reflect.DeepEqual(naiveOrNil(buf), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: SignatureOf depends only on the content-token set — sound
// (equal sets sign equal) against a naive set-building reference, and
// the tokens' byte lengths never leak in (rune bounds, satellite fix).
func TestSignatureMatchesTokenSetReference(t *testing.T) {
	setOf := func(s string) map[string]bool {
		set := map[string]bool{}
		for _, tok := range naiveTokenize(s) {
			if IsStopword(tok) || isDigits(tok) {
				continue
			}
			set[tok] = true
		}
		return set
	}
	f := func(a, b string) bool {
		sameSet := reflect.DeepEqual(setOf(a), setOf(b))
		sameSig := SignatureOf(a) == SignatureOf(b)
		if sameSet {
			return sameSig
		}
		// Different sets must almost surely differ; a 64-bit collision
		// in a quick.Check run would be astonishing.
		return !sameSig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// The intern table caps its growth but tokenization stays correct past
// the cap: new tokens are simply allocated per call instead of cached.
func TestInternCapCorrectness(t *testing.T) {
	var tz Tokenizer
	tz.intern = make(map[string]string, maxInternEntries)
	for i := 0; len(tz.intern) < maxInternEntries; i++ {
		s := fmt.Sprintf("filler%d", i)
		tz.intern[s] = s
	}
	got := tz.TokenizeInto(nil, "alpha beta alpha")
	if !reflect.DeepEqual(got, []string{"alpha", "beta", "alpha"}) {
		t.Errorf("TokenizeInto past intern cap = %v", got)
	}
	if len(tz.intern) != maxInternEntries {
		t.Errorf("intern table grew past its cap: %d", len(tz.intern))
	}
}

// A Signer's dedup table shrinks back to its baseline after
// fingerprinting one pathological page, instead of pinning the grown
// table (and its clear() cost) for every later signature — and the
// shrink does not change any signature value.
func TestSignerShrinksAfterHugeInput(t *testing.T) {
	var sg Signer
	sg.Reset()
	for i := 0; i < maxRetainedSlots; i++ {
		sg.Add(fmt.Sprintf("tok%d", i))
	}
	if len(sg.set.slots) <= maxRetainedSlots {
		t.Fatalf("table did not grow past the retention cap: %d slots", len(sg.set.slots))
	}
	sg.Reset()
	if len(sg.set.slots) != baseSlots {
		t.Errorf("reset retained %d slots, want baseline %d", len(sg.set.slots), baseSlots)
	}
	sg.Add("honda")
	sg.Add("civic")
	sg.Add("honda")
	want := SignatureOfTokens([]string{"civic", "honda"})
	if got := sg.Sum(); got != want {
		t.Errorf("post-shrink signature = %v, want %v", got, want)
	}
}
