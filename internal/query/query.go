// Package query is the structured-predicate half of the search API:
// a small query DSL — `attr:value` equality terms, numeric comparisons
// (`price<10000`) and inclusive ranges (`year:2005..2009`) — plus the
// matcher that evaluates parsed predicates against a document's
// surfacing-time annotations (§5.1) and, failing those, against typed
// tokens extracted from the document text (§4.1). The package is what
// lets the vertical-search scenarios the paper motivates ("used cars
// under $10k") run against the surfaced corpus through the same
// serving path as any keyword query.
//
// Resolution order per predicate mirrors how much the engine knows
// about a document:
//
//  1. An annotation on the queried attribute is authoritative: it is
//     the binding that generated the page, so a contradicting value
//     rejects the document no matter what its text says (the paper's
//     "used ford focus 1993" example, inverted into filtering).
//  2. For numeric predicates, annotations on *type-compatible*
//     attributes also answer: a `price<10000` filter is satisfied by a
//     `minprice=3800` annotation because both hypothesize to the price
//     type (core.HypothesizeType).
//  3. With no relevant annotation, typed tokens from the document text
//     stand in — surfaced result pages render their records' numbers
//     as plain tokens, so a price filter scans the page's numbers.
//
// Predicates AND together. Parsing and matching are deterministic pure
// functions, so a predicate list can participate in cache keys via
// Key, which serializes the canonical (sorted, deduplicated) form.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/textutil"
)

// Op is a predicate's comparison operator.
type Op uint8

const (
	// OpEq is `attr:value` equality.
	OpEq Op = iota
	// OpLt / OpLe / OpGt / OpGe are the numeric comparisons
	// `attr<n`, `attr<=n`, `attr>n`, `attr>=n`.
	OpLt
	OpLe
	OpGt
	OpGe
	// OpRange is the inclusive numeric range `attr:lo..hi`.
	OpRange
)

// String returns the operator as it appears in the DSL.
func (op Op) String() string {
	switch op {
	case OpEq:
		return ":"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpRange:
		return ".."
	}
	return "?"
}

// Predicate is one parsed filter term. Attr and Value are stored
// lower-cased (annotations are stored lower-cased too). For numeric
// operators, Lo and/or Hi carry the parsed bounds: Lo for OpGt/OpGe,
// Hi for OpLt/OpLe, both for OpRange; OpEq uses only Value.
type Predicate struct {
	Attr  string
	Op    Op
	Value string
	Lo    float64
	Hi    float64
}

// Eq builds an equality predicate, the common programmatic case
// (mediator bindings, tests). Inputs are lower-cased to match Parse.
func Eq(attr, value string) Predicate {
	return Predicate{Attr: strings.ToLower(attr), Op: OpEq, Value: strings.ToLower(value)}
}

// String renders the predicate back in DSL form; Parse(p.String())
// round-trips.
func (p Predicate) String() string {
	switch p.Op {
	case OpEq:
		return p.Attr + ":" + p.Value
	case OpRange:
		return p.Attr + ":" + formatNum(p.Lo) + ".." + formatNum(p.Hi)
	default:
		return p.Attr + p.Op.String() + p.Value
	}
}

// formatNum renders a bound the way a user would type it: integers
// without a decimal point.
func formatNum(v float64) string {
	return strconv.FormatFloat(v, 'f', -1, 64)
}

// validAttr reports whether s is a legal attribute name: a letter
// followed by letters, digits or underscores. The shape matches form
// input names, which is where annotation attributes come from.
func validAttr(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z':
		case i > 0 && (r >= '0' && r <= '9' || r == '_'):
		default:
			return false
		}
	}
	return true
}

// IsNumber reports whether s is a plain unsigned integer token — the
// shape numeric values take after tokenization. Shared with the
// mediator's token binding so there is one definition of "numeric
// token" across the query surface.
func IsNumber(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}

// Parse parses one predicate term:
//
//	attr:value      equality ("make:ford")
//	attr:lo..hi     inclusive numeric range ("year:2005..2009")
//	attr<n attr<=n  numeric comparisons ("price<10000")
//	attr>n attr>=n
//
// Attribute names are lower-cased and must be a letter followed by
// letters/digits/underscores; comparison and range bounds must be
// numbers. Anything else is an error spelling out what was wrong.
func Parse(s string) (Predicate, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if s == "" {
		return Predicate{}, fmt.Errorf("empty predicate")
	}
	// Comparison operators first: "<=" and ">=" before their one-char
	// prefixes.
	for _, c := range []struct {
		tok string
		op  Op
	}{{"<=", OpLe}, {">=", OpGe}, {"<", OpLt}, {">", OpGt}} {
		if i := strings.Index(s, c.tok); i >= 0 {
			attr, val := s[:i], s[i+len(c.tok):]
			if !validAttr(attr) {
				return Predicate{}, fmt.Errorf("%q: attribute must be a letter followed by letters, digits or underscores", attr)
			}
			n, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Predicate{}, fmt.Errorf("%q: %s needs a numeric bound, got %q", s, c.tok, val)
			}
			p := Predicate{Attr: attr, Op: c.op, Value: val}
			if c.op == OpLt || c.op == OpLe {
				p.Hi = n
			} else {
				p.Lo = n
			}
			return p, nil
		}
	}
	i := strings.IndexByte(s, ':')
	if i < 0 {
		return Predicate{}, fmt.Errorf("%q: no operator (want attr:value, attr:lo..hi, or attr<n / attr<=n / attr>n / attr>=n)", s)
	}
	attr, val := s[:i], s[i+1:]
	if !validAttr(attr) {
		return Predicate{}, fmt.Errorf("%q: attribute must be a letter followed by letters, digits or underscores", attr)
	}
	if val == "" {
		return Predicate{}, fmt.Errorf("%q: empty value", s)
	}
	if j := strings.Index(val, ".."); j >= 0 {
		lo, errLo := strconv.ParseFloat(val[:j], 64)
		hi, errHi := strconv.ParseFloat(val[j+2:], 64)
		if errLo != nil || errHi != nil {
			return Predicate{}, fmt.Errorf("%q: range bounds must be numbers, got %q..%q", s, val[:j], val[j+2:])
		}
		if lo > hi {
			return Predicate{}, fmt.Errorf("%q: range is empty (%v > %v)", s, lo, hi)
		}
		return Predicate{Attr: attr, Op: OpRange, Value: val, Lo: lo, Hi: hi}, nil
	}
	return Predicate{Attr: attr, Op: OpEq, Value: val}, nil
}

// Extract splits a free-text query into its keyword part and any
// embedded DSL predicates, so `used cars price<10000` works with zero
// client changes. A whitespace-delimited token becomes a predicate
// only when it parses cleanly; a token that merely looks like one
// ("re:invent", "3:2") stays keyword text, so no previously-valid
// query becomes an error through this path.
func Extract(q string) (rest string, preds []Predicate) {
	fields := strings.Fields(q)
	kept := make([]string, 0, len(fields))
	for _, f := range fields {
		if strings.ContainsAny(f, ":<>") {
			if p, err := Parse(f); err == nil {
				preds = append(preds, p)
				continue
			}
		}
		kept = append(kept, f)
	}
	return strings.Join(kept, " "), preds
}

// Canonical returns the canonical form of a predicate list: sorted
// and deduplicated, so lists that differ only in order or repetition
// compare (and cache) equal. The input is not modified; an empty or
// nil list returns nil.
func Canonical(preds []Predicate) []Predicate {
	if len(preds) == 0 {
		return nil
	}
	out := append([]Predicate(nil), preds...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Attr != b.Attr {
			return a.Attr < b.Attr
		}
		if a.Op != b.Op {
			return a.Op < b.Op
		}
		if a.Value != b.Value {
			return a.Value < b.Value
		}
		if a.Lo != b.Lo {
			return a.Lo < b.Lo
		}
		return a.Hi < b.Hi
	})
	dedup := out[:1]
	for _, p := range out[1:] {
		if p != dedup[len(dedup)-1] {
			dedup = append(dedup, p)
		}
	}
	return dedup
}

// Key serializes a predicate list canonically for use inside cache
// keys: two lists produce the same key iff they are the same filter
// (order- and duplicate-insensitive). Empty and nil lists produce "".
func Key(preds []Predicate) string {
	if len(preds) == 0 {
		return ""
	}
	var b strings.Builder
	for i, p := range Canonical(preds) {
		if i > 0 {
			b.WriteByte('\x01')
		}
		b.WriteString(p.String())
	}
	return b.String()
}

// compiled is one predicate plus everything derivable at compile time:
// its hypothesized value type, tokenized equality value, and parsed
// numeric equality value if any.
type compiled struct {
	p       Predicate
	typ     string   // core.HypothesizeType(attr, ""); "" = untyped
	valToks []string // OpEq: the value's tokens, for text containment
}

// Matcher evaluates a fixed predicate list against documents. Compile
// once per query with NewMatcher, then call Match once per candidate
// document; a Matcher is read-only after construction and safe for
// concurrent use.
type Matcher struct {
	preds []compiled
}

// NewMatcher compiles a predicate list. An empty or nil list returns
// nil, and a nil *Matcher matches every document — callers can wire
// `m.Match` unconditionally.
func NewMatcher(preds []Predicate) *Matcher {
	if len(preds) == 0 {
		return nil
	}
	m := &Matcher{preds: make([]compiled, 0, len(preds))}
	for _, p := range preds {
		c := compiled{p: p, typ: core.HypothesizeType(p.Attr, "")}
		if p.Op == OpEq {
			c.valToks = textutil.Tokenize(p.Value)
		}
		m.preds = append(m.preds, c)
	}
	return m
}

// Match reports whether a document satisfies every predicate, given
// its annotations (nil when it has none) and its title and text. The
// per-document text tokenization is done lazily and at most once, and
// only when some predicate actually needs the text fallback.
func (m *Matcher) Match(anns map[string]string, title, text string) bool {
	if m == nil {
		return true
	}
	var doc *docTokens
	lazy := func() *docTokens {
		if doc == nil {
			doc = newDocTokens(title, text)
		}
		return doc
	}
	for i := range m.preds {
		if !m.preds[i].match(anns, lazy) {
			return false
		}
	}
	return true
}

// docTokens is the lazily-built per-document text view: the padded
// token string for phrase containment and the document's numeric
// tokens for typed extraction.
type docTokens struct {
	padded string
	nums   []float64
	years  []float64
}

func newDocTokens(title, text string) *docTokens {
	toks := textutil.Tokenize(title + " " + text)
	d := &docTokens{padded: " " + strings.Join(toks, " ") + " "}
	for _, t := range toks {
		if !IsNumber(t) {
			continue
		}
		v, err := strconv.ParseFloat(t, 64)
		if err != nil {
			continue
		}
		d.nums = append(d.nums, v)
		if v >= 1500 && v <= 2200 {
			d.years = append(d.years, v)
		}
	}
	return d
}

// match evaluates one compiled predicate.
func (c *compiled) match(anns map[string]string, lazy func() *docTokens) bool {
	if c.p.Op == OpEq {
		// The exact attribute's annotation is authoritative either way:
		// agreement admits, contradiction rejects.
		if have, ok := anns[c.p.Attr]; ok {
			return have == c.p.Value
		}
		// No annotation: fall back to phrase containment over the
		// document's tokens (multi-token values match as a phrase,
		// like annStore.valuesMentioned).
		if len(c.valToks) == 0 {
			return false
		}
		return strings.Contains(lazy().padded, " "+strings.Join(c.valToks, " ")+" ")
	}

	// Numeric predicate: candidate values come from annotations on the
	// attribute itself or any type-compatible attribute (minprice and
	// maxprice both hypothesize to price), else from the document's
	// typed tokens. Any satisfying candidate admits the document.
	found := false
	for attr, val := range anns {
		if attr != c.p.Attr && (c.typ == "" || core.HypothesizeType(attr, "") != c.typ) {
			continue
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			continue
		}
		found = true
		if c.inBounds(v) {
			return true
		}
	}
	if found {
		// Relevant annotations existed and all contradicted the bound:
		// the page is about values outside the filter.
		return false
	}
	d := lazy()
	nums := d.nums
	if c.typ == core.TypeDate {
		nums = d.years
	}
	for _, v := range nums {
		if c.inBounds(v) {
			return true
		}
	}
	return false
}

// inBounds applies the predicate's comparison to one candidate value.
func (c *compiled) inBounds(v float64) bool {
	switch c.p.Op {
	case OpLt:
		return v < c.p.Hi
	case OpLe:
		return v <= c.p.Hi
	case OpGt:
		return v > c.p.Lo
	case OpGe:
		return v >= c.p.Lo
	case OpRange:
		return v >= c.p.Lo && v <= c.p.Hi
	}
	return false
}
