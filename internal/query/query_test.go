package query

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in   string
		want Predicate
	}{
		{"make:ford", Predicate{Attr: "make", Op: OpEq, Value: "ford"}},
		{"Make:Ford", Predicate{Attr: "make", Op: OpEq, Value: "ford"}},
		{"price<10000", Predicate{Attr: "price", Op: OpLt, Value: "10000", Hi: 10000}},
		{"price<=9999", Predicate{Attr: "price", Op: OpLe, Value: "9999", Hi: 9999}},
		{"year>2003", Predicate{Attr: "year", Op: OpGt, Value: "2003", Lo: 2003}},
		{"salary>=50000", Predicate{Attr: "salary", Op: OpGe, Value: "50000", Lo: 50000}},
		{"year:2005..2009", Predicate{Attr: "year", Op: OpRange, Value: "2005..2009", Lo: 2005, Hi: 2009}},
		{"zip:98101", Predicate{Attr: "zip", Op: OpEq, Value: "98101"}},
		{"min_price<3.5", Predicate{Attr: "min_price", Op: OpLt, Value: "3.5", Hi: 3.5}},
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("Parse(%q) = %+v, want %+v", c.in, got, c.want)
		}
		// DSL round-trip: String re-parses to the same predicate.
		back, err := Parse(got.String())
		if err != nil || back.Attr != got.Attr || back.Op != got.Op || back.Lo != got.Lo || back.Hi != got.Hi {
			t.Errorf("round-trip %q -> %q -> %+v (err %v)", c.in, got.String(), back, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"", ":", "make:", ":ford", "price<", "price<abc", "<10",
		"3:2", "year:2009..2005", "year:abc..2009", "pri ce:x",
		"price<<10", "-x:1", "привет:1",
	} {
		if p, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %+v, want error", in, p)
		}
	}
}

func TestExtract(t *testing.T) {
	rest, preds := Extract("used cars price<10000 year:2005..2009")
	if rest != "used cars" {
		t.Errorf("rest = %q", rest)
	}
	if len(preds) != 2 || preds[0].Attr != "price" || preds[1].Op != OpRange {
		t.Errorf("preds = %+v", preds)
	}

	// Tokens that merely look like predicates stay keyword text: a
	// numeric-looking attr, a comparison with a non-numeric bound, a
	// dangling colon.
	rest, preds = Extract("3:2 a<b x: plain")
	if len(preds) != 0 || rest != "3:2 a<b x: plain" {
		t.Errorf("malformed DSL leaked: rest=%q preds=%+v", rest, preds)
	}

	if rest, preds := Extract(""); rest != "" || preds != nil {
		t.Errorf("empty query: %q %+v", rest, preds)
	}
}

func TestCanonicalAndKey(t *testing.T) {
	a := []Predicate{mustParse(t, "price<10000"), Eq("make", "ford"), Eq("make", "ford")}
	b := []Predicate{Eq("make", "ford"), mustParse(t, "price<10000")}
	if Key(a) != Key(b) {
		t.Errorf("order/dup-insensitive keys differ: %q vs %q", Key(a), Key(b))
	}
	if Key(a) == "" {
		t.Error("non-empty filter produced empty key")
	}
	if got := Key(nil); got != "" {
		t.Errorf("Key(nil) = %q", got)
	}
	if Key([]Predicate{Eq("make", "ford")}) == Key([]Predicate{Eq("make", "honda")}) {
		t.Error("distinct filters share a key")
	}
	if Key([]Predicate{mustParse(t, "price<10000")}) == Key([]Predicate{mustParse(t, "price<=10000")}) {
		t.Error("lt and le share a key")
	}
	if got := Canonical(a); len(got) != 2 {
		t.Errorf("Canonical kept duplicates: %+v", got)
	}
	if len(a) != 3 {
		t.Error("Canonical mutated its input")
	}
}

func mustParse(t *testing.T, s string) Predicate {
	t.Helper()
	p, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestMatcherEquality(t *testing.T) {
	m := NewMatcher([]Predicate{Eq("make", "ford")})
	// Annotation agreement admits, contradiction rejects even when the
	// text mentions the value (the paper's Honda-page-mentioning-Ford
	// failure mode).
	if !m.Match(map[string]string{"make": "ford"}, "t", "") {
		t.Error("agreeing annotation rejected")
	}
	if m.Match(map[string]string{"make": "honda"}, "used ford focus", "a ford in the text") {
		t.Error("contradicting annotation admitted on text evidence")
	}
	// No annotation: text containment decides.
	if !m.Match(nil, "used ford focus", "for sale") {
		t.Error("text fallback missed the value")
	}
	if m.Match(nil, "used honda civic", "for sale") {
		t.Error("text fallback matched an absent value")
	}
	// Multi-token values match as a phrase.
	mm := NewMatcher([]Predicate{Eq("city", "san francisco")})
	if !mm.Match(nil, "", "homes in san francisco bay") {
		t.Error("phrase value missed")
	}
	if mm.Match(nil, "", "san diego and francisco street") {
		t.Error("split phrase matched")
	}
}

func TestMatcherNumeric(t *testing.T) {
	lt := NewMatcher([]Predicate{mustParse(t, "price<10000")})
	// Exact-attribute annotation.
	if !lt.Match(map[string]string{"price": "8500"}, "", "") {
		t.Error("in-bound price annotation rejected")
	}
	if lt.Match(map[string]string{"price": "12000"}, "", "") {
		t.Error("out-of-bound price annotation admitted")
	}
	// Type-compatible annotation: minprice hypothesizes to price.
	if !lt.Match(map[string]string{"minprice": "3800"}, "", "") {
		t.Error("type-compatible annotation rejected")
	}
	// All relevant annotations out of bounds: no text fallback.
	if lt.Match(map[string]string{"minprice": "15000", "maxprice": "20000"}, "", "8500 in text") {
		t.Error("contradicting annotations fell back to text")
	}
	// No relevant annotation: numeric tokens from the text decide.
	if !lt.Match(map[string]string{"city": "seattle"}, "sedan", "2004 sedan 8500 miles") {
		t.Error("text number in bounds rejected")
	}
	if lt.Match(nil, "sedan", "no numbers here") {
		t.Error("numberless doc admitted by numeric predicate")
	}

	// Date-typed predicates only consider year-shaped numbers in text,
	// so a price token cannot satisfy a year range.
	yr := NewMatcher([]Predicate{mustParse(t, "year:2005..2009")})
	if !yr.Match(nil, "", "2007 sedan 85000 miles") {
		t.Error("year in range rejected")
	}
	if yr.Match(nil, "", "sedan 2050000 miles") {
		t.Error("non-year number satisfied a year range")
	}
	if !yr.Match(map[string]string{"year": "2006"}, "", "") {
		t.Error("year annotation in range rejected")
	}
	if yr.Match(map[string]string{"year": "1999"}, "", "2007 in text") {
		t.Error("contradicting year annotation fell back to text")
	}

	ge := NewMatcher([]Predicate{mustParse(t, "salary>=50000")})
	if !ge.Match(map[string]string{"minsalary": "60000"}, "", "") {
		t.Error("ge bound rejected")
	}
}

func TestMatcherConjunction(t *testing.T) {
	m := NewMatcher([]Predicate{Eq("make", "ford"), mustParse(t, "price<10000")})
	anns := map[string]string{"make": "ford", "maxprice": "9000"}
	if !m.Match(anns, "", "") {
		t.Error("both-satisfied doc rejected")
	}
	if m.Match(map[string]string{"make": "ford", "maxprice": "20000"}, "", "") {
		t.Error("half-satisfied doc admitted")
	}
}

func TestNilMatcherMatchesAll(t *testing.T) {
	if NewMatcher(nil) != nil {
		t.Error("empty predicate list compiled to a non-nil matcher")
	}
	var m *Matcher
	if !m.Match(nil, "anything", "at all") {
		t.Error("nil matcher rejected a document")
	}
}

func TestIsNumber(t *testing.T) {
	for _, s := range []string{"0", "98101", "2005"} {
		if !IsNumber(s) {
			t.Errorf("IsNumber(%q) = false", s)
		}
	}
	for _, s := range []string{"", "12a", "-5", "3.5", "ford"} {
		if IsNumber(s) {
			t.Errorf("IsNumber(%q) = true", s)
		}
	}
}

func TestKeyUsesCanonicalOrder(t *testing.T) {
	// Key must not contain unsorted surprises: a reversed list keys
	// identically and the rendered form round-trips through Parse.
	preds := []Predicate{mustParse(t, "year:2005..2009"), Eq("make", "ford")}
	rev := []Predicate{preds[1], preds[0]}
	if Key(preds) != Key(rev) {
		t.Fatal("key depends on order")
	}
	for _, part := range strings.Split(Key(preds), "\x01") {
		if _, err := Parse(part); err != nil {
			t.Errorf("key part %q does not re-parse: %v", part, err)
		}
	}
}
