package experiments

import (
	"context"
	"sort"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/coverage"
	"deepweb/internal/dist"
	"deepweb/internal/engine"
	"deepweb/internal/index"
	"deepweb/internal/virtual"
	"deepweb/internal/webgen"
	webxpkg "deepweb/internal/webx"
)

// ---------------------------------------------------------------------
// E9 — indexability (§5.2): surfaced pages "should neither have too
// many results on a single surfaced page nor too few"; minimize pages
// while maximizing coverage.

// E9Report compares index admission with and without the §5.2
// criterion on a site that dumps all matches on one page (no paging) —
// where an unconstraining submission yields enormous pages.
type E9Report struct {
	Rows        int
	OnIndexed   int
	OffIndexed  int
	OnRejected  int
	OnP95Items  float64 // p95 results-per-page over *indexed* pages
	OffP95Items float64
	OnCoverage  float64 // rows visible through indexed pages
	OffCoverage float64
	MaxAllowed  int
}

// E9Indexability surfaces once, then ingests with and without the
// admission filter (the criterion operates on fetched pages, where the
// result count is observable).
func E9Indexability(ctx context.Context, seed int64, rows int) (E9Report, error) {
	rep := E9Report{Rows: rows, MaxAllowed: 50}
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, seed, rows)
	if err != nil {
		return rep, err
	}
	site.Spec.PageSize = 0 // render every match on one page
	web.AddSite(site)
	fetch := webxpkg.NewFetcher(web)
	// Surface with template-level filtering off so both arms see the
	// same URL set; the admission criterion is the treatment.
	cfg := core.DefaultConfig()
	cfg.Indexability = false
	s := core.NewSurfacer(fetch, cfg)
	res, err := s.SurfaceSite(ctx, site.HomeURL())
	if err != nil {
		return rep, err
	}
	measure := func(filt core.IngestFilter) (int, int, float64, float64) {
		ix := index.New()
		st := core.IngestURLsFiltered(ctx, fetch, ix, "f", res.URLs, 0, filt)
		covered := map[int]bool{}
		var sizes []float64
		for _, u := range res.URLs {
			if !ix.Has(u) {
				continue
			}
			matches := site.MatchingRows(parseQueryOf(u))
			if len(matches) == 0 {
				continue
			}
			sizes = append(sizes, float64(len(matches)))
			for _, id := range matches {
				covered[id] = true
			}
		}
		return st.Indexed, st.Rejected, dist.Percentile(sizes, 0.95), float64(len(covered)) / float64(rows)
	}
	rep.OnIndexed, rep.OnRejected, rep.OnP95Items, rep.OnCoverage =
		measure(core.IngestFilter{MinItems: 1, MaxItems: rep.MaxAllowed})
	rep.OffIndexed, _, rep.OffP95Items, rep.OffCoverage = measure(core.IngestFilter{})
	return rep, nil
}

func (r E9Report) String() string {
	var b strings.Builder
	line(&b, "E9 indexability criterion (no-paging site, %d rows, admission band [1,%d] results/page)", r.Rows, r.MaxAllowed)
	line(&b, "  criterion on:  %4d pages indexed (%d rejected), p95 results/page %.0f, coverage %s",
		r.OnIndexed, r.OnRejected, r.OnP95Items, pct(r.OnCoverage))
	line(&b, "  criterion off: %4d pages indexed, p95 results/page %.0f, coverage %s",
		r.OffIndexed, r.OffP95Items, pct(r.OffCoverage))
	return b.String()
}

// ---------------------------------------------------------------------
// E10 — coverage estimation (§5.2): "with probability M% more than N%
// of the site's content has been exposed".

// E10Point is one site size.
type E10Point struct {
	Rows       int
	TrueFrac   float64
	PointEst   float64
	LowerBound float64
	BoundHolds bool // LowerBound ≤ TrueFrac (the guarantee's validity)
}

// E10Report sweeps site sizes.
type E10Report struct {
	Confidence float64
	Points     []E10Point
}

// E10Coverage surfaces sites of several sizes and scores the
// capture–recapture bootstrap against ground truth.
func E10Coverage(ctx context.Context, seed int64, sizes []int) (E10Report, error) {
	rep := E10Report{Confidence: 0.95}
	for _, rows := range sizes {
		web := webgen.NewWeb()
		site, err := webgen.BuildSite("usedcars", 0, seed, rows)
		if err != nil {
			return rep, err
		}
		web.AddSite(site)
		s := core.NewSurfacer(webxpkg.NewFetcher(web), core.DefaultConfig())
		res, err := s.SurfaceSite(ctx, site.HomeURL())
		if err != nil {
			return rep, err
		}
		rowSets := coverage.RowSets(site, res.URLs)
		exact := coverage.ExactOf(site, res.URLs)
		est := coverage.EstimateFromRowSets(rowSets, rep.Confidence, 300, seed)
		rep.Points = append(rep.Points, E10Point{
			Rows:       rows,
			TrueFrac:   exact.Fraction(),
			PointEst:   est.Point,
			LowerBound: est.LowerBound,
			BoundHolds: est.LowerBound <= exact.Fraction()+1e-9,
		})
	}
	return rep, nil
}

func (r E10Report) String() string {
	var b strings.Builder
	line(&b, "E10 coverage estimation (confidence %.0f%%)", 100*r.Confidence)
	for _, p := range r.Points {
		line(&b, "  rows=%5d  true %s   estimate %s   bound 'more than %s'   holds=%v",
			p.Rows, pct(p.TrueFrac), pct(p.PointEst), pct(p.LowerBound), p.BoundHolds)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// E11 — aggregate semantics (§6): mine crawled tables into an ACSDb and
// value store; score the synonym, auto-complete and value services
// against generator ground truth.

// E11Report scores the three services.
type E11Report struct {
	PagesCrawled int
	RawTables    int
	GoodTables   int
	Schemas      int

	SynonymPairs int // planted alias pairs occurring in the corpus
	SynonymHits  int // recovered in the top-3 suggestions

	AutoQueries int // schema-autocomplete probes
	AutoHits    int // suggestion contains a true co-attribute

	CityValues    int     // city values the value service serves
	ValueFillLift float64 // coverage of a city input filled from the service
}

// E11Semantics crawls the whole world (following links into record
// pages), aggregates, and scores services.
func E11Semantics(ctx context.Context, seed int64, sitesPerDom, rows int) (E11Report, error) {
	var rep E11Report
	w, err := NewWorld(webgen.WorldConfig{Seed: seed, SitesPerDom: sitesPerDom, RowsPerSite: rows})
	if err != nil {
		return rep, err
	}
	// Deep crawl through the engine façade: follow query links so record
	// pages (with tables) are reached — the post-surfacing state of the
	// index.
	sem := w.BuildSemantics(ctx, 4000)
	rep.PagesCrawled = sem.PagesCrawled
	rep.RawTables = sem.RawTables
	rep.GoodTables = len(sem.Tables)
	acs, vals := sem.ACS, sem.Values
	rep.Schemas = acs.Schemas

	// Synonym service vs planted alias pairs.
	for _, pair := range webgen.AliasPairs() {
		canon, alias := pair[0], pair[1]
		if acs.Freq[canon] == 0 || acs.Freq[alias] == 0 {
			continue // the crawl didn't reach both variants
		}
		rep.SynonymPairs++
		for _, s := range acs.Synonyms(canon, 3) {
			if s.Name == alias {
				rep.SynonymHits++
				break
			}
		}
	}

	// Auto-complete: for each domain's lead attribute, the suggestions
	// must include another attribute of the same vertical.
	autoProbes := map[string][]string{
		"make":   {"model", "price", "year", "mileage"},
		"city":   {"state", "zip"},
		"title":  {"company", "salary"},
		"agency": {"topic", "year", "body"},
		"dish":   {"cuisine", "minutes", "ingredients"},
	}
	for given, wants := range autoProbes {
		if acs.Freq[given] == 0 {
			continue
		}
		rep.AutoQueries++
		got := acs.SchemaAutocomplete([]string{given}, 4)
		for _, g := range got {
			for _, w := range wants {
				if g.Name == w {
					rep.AutoHits++
					goto next
				}
			}
		}
	next:
	}

	// Value service → form filling: fill a realestate city input with
	// the service's city values and measure coverage achieved.
	cities := vals.Values("city", 30)
	rep.CityValues = len(cities)
	var re *webgen.Site
	for _, s := range w.Web.Sites() {
		if s.Spec.Domain == "realestate" {
			re = s
			break
		}
	}
	if re != nil && len(cities) > 0 {
		covered := map[int]bool{}
		for _, city := range cities {
			for _, id := range re.MatchingRows(map[string][]string{"city": {city}}) {
				covered[id] = true
			}
		}
		rep.ValueFillLift = float64(len(covered)) / float64(re.Table.Len())
	}
	return rep, nil
}

func (r E11Report) String() string {
	var b strings.Builder
	line(&b, "E11 aggregate semantics (crawled %d pages → %d tables, %d relational)",
		r.PagesCrawled, r.RawTables, r.GoodTables)
	line(&b, "  synonyms:     %d/%d planted alias pairs recovered in top-3", r.SynonymHits, r.SynonymPairs)
	line(&b, "  autocomplete: %d/%d probes suggest a true co-attribute", r.AutoHits, r.AutoQueries)
	line(&b, "  value fill:   %d city values surface %s of a city-keyed site", r.CityValues, pct(r.ValueFillLift))
	return b.String()
}

// ---------------------------------------------------------------------
// E12 — GET vs POST (§3.2): "surfacing cannot be applied to HTML forms
// that use the POST method"; the mediator can still query them.

// E12Report compares reach over a mixed GET/POST population.
type E12Report struct {
	GetSites  int
	PostSites int
	// Record-weighted reach.
	SurfaceableRecords int
	PostRecords        int
	TotalRecords       int
	// Mediator answers on POST sites (proof it reaches them).
	MediatorPostAnswers int
}

// E12GetPost builds a mixed world and measures reach both ways.
func E12GetPost(ctx context.Context, seed int64, sitesPerDom, rows, postFraction int) (E12Report, error) {
	var rep E12Report
	w, err := NewWorld(webgen.WorldConfig{
		Seed: seed, SitesPerDom: sitesPerDom, RowsPerSite: rows, PostFraction: postFraction,
	})
	if err != nil {
		return rep, err
	}
	if _, err := w.Surface(ctx, engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 0}); err != nil {
		return rep, err
	}
	m := virtual.NewMediator(w.Fetch)
	var postHosts []string
	for _, site := range w.Web.Sites() {
		rep.TotalRecords += site.Table.Len()
		if site.Spec.Method == "get" {
			rep.GetSites++
		} else {
			rep.PostSites++
			rep.PostRecords += site.Table.Len()
			postHosts = append(postHosts, site.Spec.Host)
		}
		if f, err := engine.FormOf(ctx, w.Fetch, site); err == nil {
			m.Register(f)
		}
	}
	for host, res := range w.Results {
		if len(res.URLs) == 0 {
			continue
		}
		site := w.Web.Site(host)
		ex := coverage.ExactOf(site, res.URLs)
		rep.SurfaceableRecords += ex.Covered
	}
	// Mediator reaches POST content: one keyword probe per POST host,
	// built from the domain's routing vocabulary plus a value the site
	// actually holds.
	sort.Strings(postHosts)
	for _, host := range postHosts {
		site := w.Web.Site(host)
		var q string
		switch site.Spec.Domain {
		case "govdocs":
			q = "public records " + site.Table.DistinctStrings("topic")[0]
		case "usedcars":
			q = "used cars " + site.Table.DistinctStrings("make")[0]
		case "library":
			q = "books about " + site.Table.DistinctStrings("subject")[0]
		case "realestate":
			q = "homes in " + site.Table.DistinctStrings("city")[0]
		case "jobs":
			q = site.Table.DistinctStrings("title")[0] + " jobs"
		case "stores":
			q = "store locations " + site.Table.DistinctStrings("state")[0]
		case "media":
			q = site.Table.DistinctStrings("category")[0]
		case "faculty":
			q = "professor " + site.Table.DistinctStrings("department")[0]
		case "recipes":
			q = site.Table.DistinctStrings("cuisine")[0] + " recipes"
		default:
			continue
		}
		if answers, _ := m.Answer(ctx, q, 5); len(answers) > 0 {
			for _, a := range answers {
				if a.Site == host {
					rep.MediatorPostAnswers++
					break
				}
			}
		}
	}
	return rep, nil
}

func (r E12Report) String() string {
	var b strings.Builder
	line(&b, "E12 GET vs POST (%d GET sites, %d POST sites)", r.GetSites, r.PostSites)
	line(&b, "  surfacing reaches %d/%d records (%s); %d records (%s) sit behind POST, invisible to it",
		r.SurfaceableRecords, r.TotalRecords, pct(float64(r.SurfaceableRecords)/float64(r.TotalRecords)),
		r.PostRecords, pct(float64(r.PostRecords)/float64(r.TotalRecords)))
	line(&b, "  mediator answered live from %d POST sites (paper: POST usable by mediation, not surfacing)", r.MediatorPostAnswers)
	return b.String()
}
