// Package experiments reproduces every quantitative claim of the paper
// as a runnable experiment (the index lives in DESIGN.md §3). Each
// experiment returns a typed report whose String() prints the paper's
// figure next to the measured one; cmd/experiments runs them all and
// bench_test.go wraps each in a benchmark.
//
// Orchestration — world building, surfacing, ingestion — lives in
// internal/engine; this package only measures.
package experiments

import (
	"fmt"
	"net/url"
	"strings"

	"deepweb/internal/engine"
	"deepweb/internal/webgen"
)

// World is the per-experiment bundle of a generated virtual internet
// with fetcher, index and per-site results. It is the engine façade
// under its historical name.
type World = engine.Engine

// NewWorld generates a world.
func NewWorld(cfg webgen.WorldConfig) (*World, error) {
	return engine.Build(cfg)
}

// parseQueryOf extracts the query parameters of a surfaced URL.
func parseQueryOf(raw string) url.Values {
	u, err := url.Parse(raw)
	if err != nil {
		return nil
	}
	return u.Query()
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func line(b *strings.Builder, format string, args ...any) {
	fmt.Fprintf(b, format+"\n", args...)
}
