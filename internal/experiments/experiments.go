// Package experiments reproduces every quantitative claim of the paper
// as a runnable experiment (the index lives in DESIGN.md §3). Each
// experiment returns a typed report whose String() prints the paper's
// figure next to the measured one; cmd/experiments runs them all and
// bench_test.go wraps each in a benchmark.
package experiments

import (
	"fmt"
	"net/url"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/coverage"
	"deepweb/internal/form"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

// World bundles a generated virtual internet with the machinery every
// experiment needs: a fetcher, a search index, and per-site surfacing
// results.
type World struct {
	Web   *webgen.Web
	Fetch *webx.Fetcher
	Index *index.Index
	// Results holds each site's surfacing outcome, keyed by host.
	Results map[string]*core.Result
	// OfflineRequests is each host's request count during surfacing
	// analysis + ingestion — the one-time "off-line analysis" load.
	OfflineRequests map[string]int
}

// NewWorld generates a world.
func NewWorld(cfg webgen.WorldConfig) (*World, error) {
	web, err := webgen.BuildWorld(cfg)
	if err != nil {
		return nil, err
	}
	return &World{
		Web:             web,
		Fetch:           webx.NewFetcher(web),
		Index:           index.New(),
		Results:         map[string]*core.Result{},
		OfflineRequests: map[string]int{},
	}, nil
}

// IndexSurfaceWeb crawls the pre-surfacing web (no query URLs) and
// indexes it — the baseline a search engine has before deep-web
// surfacing.
func (w *World) IndexSurfaceWeb() int {
	c := &webx.Crawler{Fetcher: w.Fetch}
	n := 0
	for _, p := range c.Crawl("http://" + webgen.HubHost + "/") {
		if _, added := w.Index.Add(index.Doc{URL: p.URL, Title: p.Title(), Text: p.Text()}); added {
			n++
		}
	}
	return n
}

// SurfaceAll runs the surfacing engine over every site and ingests the
// emitted URLs, attributing each document to its site's form.
func (w *World) SurfaceAll(cfg core.Config, followNext int) error {
	for _, site := range w.Web.Sites() {
		host := site.Spec.Host
		before := w.Web.Requests(host)
		s := core.NewSurfacer(w.Fetch, cfg)
		res, err := s.SurfaceSite(site.HomeURL())
		if err != nil {
			return fmt.Errorf("surface %s: %w", host, err)
		}
		w.Results[host] = res
		source := host
		if res.Analysis.Form != nil {
			source = res.Analysis.Form.ID
		}
		core.IngestURLs(w.Fetch, w.Index, source, res.URLs, followNext)
		w.OfflineRequests[host] = w.Web.Requests(host) - before
	}
	return nil
}

// SiteCoverage returns ground-truth coverage of one surfaced site.
func (w *World) SiteCoverage(host string) coverage.Exact {
	site := w.Web.Site(host)
	res := w.Results[host]
	if site == nil || res == nil {
		return coverage.Exact{}
	}
	return coverage.ExactOf(site, res.URLs)
}

// MeanCoverage averages exact coverage over surfaceable (GET) sites.
func (w *World) MeanCoverage() float64 {
	var sum float64
	n := 0
	for _, site := range w.Web.Sites() {
		if site.Spec.Method != "get" {
			continue
		}
		sum += w.SiteCoverage(site.Spec.Host).Fraction()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// parseQueryOf extracts the query parameters of a surfaced URL.
func parseQueryOf(raw string) url.Values {
	u, err := url.Parse(raw)
	if err != nil {
		return nil
	}
	return u.Query()
}

// formOf fetches and parses a site's form — mediator registration path.
func formOf(fetch *webx.Fetcher, site *webgen.Site) (*form.Form, error) {
	page, err := fetch.Get(site.FormURL())
	if err != nil {
		return nil, err
	}
	decls := page.Forms()
	if len(decls) == 0 {
		return nil, fmt.Errorf("no form on %s", site.FormURL())
	}
	base, err := url.Parse(page.URL)
	if err != nil {
		return nil, err
	}
	return form.FromDecl(base, decls[0], 0)
}

func pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

func line(b *strings.Builder, format string, args ...any) {
	fmt.Fprintf(b, format+"\n", args...)
}
