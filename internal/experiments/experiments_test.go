package experiments

import (
	"context"
	"strings"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/webgen"
)

func TestE1SharesMatchPaper(t *testing.T) {
	rep := E1LongTail(E1Config{NForms: 200000, Queries: 500000, Seed: 1})
	if rep.Top10kShare < 0.47 || rep.Top10kShare > 0.53 {
		t.Errorf("analytic top-10k share = %.3f, want ≈0.50", rep.Top10kShare)
	}
	if rep.Top100kShr < 0.78 || rep.Top100kShr > 0.92 {
		t.Errorf("analytic top-100k share = %.3f, want ≈0.85", rep.Top100kShr)
	}
	if d := rep.SampledTop10k - rep.Top10kShare; d > 0.05 || d < -0.05 {
		t.Errorf("sampled arm diverges from analytic: %.3f vs %.3f", rep.SampledTop10k, rep.Top10kShare)
	}
	if !strings.Contains(rep.String(), "paper 50%") {
		t.Error("report must cite the paper number")
	}
}

func TestE2SurfacingLoadBounded(t *testing.T) {
	rep, err := E2SiteLoad(context.Background(), 7, 1, 120, 30)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SurfacingReqPerQry != 0 {
		t.Errorf("index queries hit sites: %.2f reqs/query", rep.SurfacingReqPerQry)
	}
	if rep.MediatorReqPerQry <= 0 {
		t.Errorf("mediator issued no live requests: %+v", rep)
	}
	if rep.MeanCoverage < 0.4 {
		t.Errorf("mean coverage = %.2f, too low", rep.MeanCoverage)
	}
	if rep.OfflineReqPerSite <= 0 || rep.OfflineReqPerSite > float64(core.DefaultConfig().ProbeBudget+core.DefaultConfig().URLBudget) {
		t.Errorf("offline reqs/site = %.0f implausible", rep.OfflineReqPerSite)
	}
}

func TestE3SurfacingBeatsMediator(t *testing.T) {
	rep, err := E3Fortuitous(context.Background(), 7, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries == 0 {
		t.Fatal("no award queries generated")
	}
	if rep.SurfacingHits <= rep.MediatorHits {
		t.Errorf("surfacing (%d) should beat mediator (%d) on %d fortuitous queries",
			rep.SurfacingHits, rep.MediatorHits, rep.Queries)
	}
	if rep.SurfacingHits < rep.Queries/2 {
		t.Errorf("surfacing answered only %d/%d", rep.SurfacingHits, rep.Queries)
	}
}

func TestE4URLsTrackRows(t *testing.T) {
	rep, err := E4URLScaling(context.Background(), 7, []int{100, 400})
	if err != nil {
		t.Fatal(err)
	}
	small, large := rep.Points[0], rep.Points[1]
	// URLs grow sublinearly in query space: ratio of URL growth must be
	// far below ratio of query-space growth, and coverage must hold.
	if large.URLs < small.URLs {
		t.Errorf("URLs shrank with database size: %+v", rep.Points)
	}
	for _, p := range rep.Points {
		if float64(p.URLs) > 0.9*p.QuerySpace && p.QuerySpace > 100 {
			t.Errorf("URLs ≈ query space at rows=%d: %+v", p.Rows, p)
		}
		if p.Coverage < 0.7 {
			t.Errorf("coverage %.2f at rows=%d", p.Coverage, p.Rows)
		}
	}
}

func TestE5Accuracy(t *testing.T) {
	rep, err := E5TypedInputs(context.Background(), 7, 5000, 150)
	if err != nil {
		t.Fatal(err)
	}
	planted := float64(rep.PlantedTyped) / float64(rep.PopulationForms)
	if planted < 0.05 || planted > 0.09 {
		t.Errorf("planted rate %.3f, want ≈0.067", planted)
	}
	if rep.PopPrecision < 0.9 || rep.PopRecall < 0.9 {
		t.Errorf("population recognizer weak: precision %.2f recall %.2f", rep.PopPrecision, rep.PopRecall)
	}
	if rep.SitePrecision() < 0.8 {
		t.Errorf("behavioural precision %.2f", rep.SitePrecision())
	}
	if rep.SiteRecall() < 0.6 {
		t.Errorf("behavioural recall %.2f", rep.SiteRecall())
	}
}

func TestE6IterativeBeatsDictionary(t *testing.T) {
	rep, err := E6Probing(context.Background(), 7, 300, []int{30, 120})
	if err != nil {
		t.Fatal(err)
	}
	last := rep.Points[len(rep.Points)-1]
	if last.IterCoverage <= last.DictCoverage {
		t.Errorf("iterative (%.2f) should beat dictionary (%.2f)", last.IterCoverage, last.DictCoverage)
	}
	if last.IterCoverage < 0.5 {
		t.Errorf("iterative coverage %.2f too low", last.IterCoverage)
	}
	if rep.Points[0].IterCoverage > last.IterCoverage+1e-9 {
		t.Error("coverage decreased with budget")
	}
}

func TestE7RangeShape(t *testing.T) {
	rep, err := E7Ranges(context.Background(), 7, 300)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's shape: naive ≫ fused, with no coverage loss.
	if rep.NaiveURLs < 3*rep.AwareURLs {
		t.Errorf("naive %d vs fused %d: expected ≳10x, got <3x", rep.NaiveURLs, rep.AwareURLs)
	}
	if rep.AwareCoverage < rep.NaiveCoverage-0.05 {
		t.Errorf("fusion lost coverage: %.2f vs %.2f", rep.AwareCoverage, rep.NaiveCoverage)
	}
	if rep.FormsWithRange == 0 || rep.FormsWithRange == rep.FormsTotal {
		t.Errorf("range prevalence degenerate: %d/%d", rep.FormsWithRange, rep.FormsTotal)
	}
	if rep.NaiveInvalid == 0 {
		t.Error("naive arm should emit some empty-result range URLs")
	}
}

func TestE8PerDBBeatsGlobal(t *testing.T) {
	rep, err := E8DBSelection(context.Background(), 7, 400)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerDBMean <= rep.GlobalMean {
		t.Errorf("per-catalog (%.2f) should beat global (%.2f)", rep.PerDBMean, rep.GlobalMean)
	}
	if len(rep.PerCatalog) < 4 {
		t.Errorf("catalogs measured: %d", len(rep.PerCatalog))
	}
}

func TestE9FilterBoundsPageSizes(t *testing.T) {
	rep, err := E9Indexability(context.Background(), 7, 600)
	if err != nil {
		t.Fatal(err)
	}
	// Admission enforces the band exactly over indexed pages.
	if rep.OnP95Items > float64(rep.MaxAllowed) {
		t.Errorf("criterion on: p95 %.0f exceeds band %d", rep.OnP95Items, rep.MaxAllowed)
	}
	if rep.OffP95Items <= rep.OnP95Items {
		t.Errorf("criterion off (p95 %.0f) should exceed on (p95 %.0f)", rep.OffP95Items, rep.OnP95Items)
	}
	if rep.OnRejected == 0 {
		t.Error("criterion rejected nothing on a no-paging site")
	}
	if rep.OnIndexed >= rep.OffIndexed {
		t.Errorf("on indexed %d should be < off %d", rep.OnIndexed, rep.OffIndexed)
	}
	if rep.OnCoverage <= 0.2 {
		t.Errorf("filtered coverage %.2f collapsed", rep.OnCoverage)
	}
}

func TestE10BoundsHold(t *testing.T) {
	rep, err := E10Coverage(context.Background(), 7, []int{150, 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range rep.Points {
		if !p.BoundHolds {
			t.Errorf("lower bound %.2f above truth %.2f at rows=%d", p.LowerBound, p.TrueFrac, p.Rows)
		}
		if p.PointEst <= 0 {
			t.Errorf("no estimate at rows=%d", p.Rows)
		}
	}
}

func TestE11ServicesWork(t *testing.T) {
	rep, err := E11Semantics(context.Background(), 7, 2, 60)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GoodTables == 0 || rep.GoodTables > rep.RawTables {
		t.Fatalf("table pipeline wrong: %+v", rep)
	}
	if rep.SynonymPairs == 0 {
		t.Fatal("no planted synonym pairs reached the corpus")
	}
	if float64(rep.SynonymHits) < 0.5*float64(rep.SynonymPairs) {
		t.Errorf("synonyms recovered %d/%d", rep.SynonymHits, rep.SynonymPairs)
	}
	if rep.AutoHits < rep.AutoQueries-1 {
		t.Errorf("autocomplete hits %d/%d", rep.AutoHits, rep.AutoQueries)
	}
	if rep.CityValues == 0 || rep.ValueFillLift <= 0.2 {
		t.Errorf("value service weak: %d values, lift %.2f", rep.CityValues, rep.ValueFillLift)
	}
}

func TestE12PostInvisibleToSurfacing(t *testing.T) {
	rep, err := E12GetPost(context.Background(), 7, 2, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PostSites == 0 {
		t.Fatal("no POST sites in world")
	}
	surfFrac := float64(rep.SurfaceableRecords) / float64(rep.TotalRecords)
	postFrac := float64(rep.PostRecords) / float64(rep.TotalRecords)
	if surfFrac > 1-postFrac+0.01 {
		t.Errorf("surfacing reached POST content: %.2f reachable with %.2f behind POST", surfFrac, postFrac)
	}
	if rep.MediatorPostAnswers == 0 {
		t.Error("mediator answered nothing from POST sites")
	}
}

func TestWorldHelpers(t *testing.T) {
	w, err := NewWorld(webgen.WorldConfig{Seed: 1, SitesPerDom: 1, RowsPerSite: 30})
	if err != nil {
		t.Fatal(err)
	}
	if n := w.IndexSurfaceWeb(context.Background()); n == 0 {
		t.Error("surface-web crawl indexed nothing")
	}
	if cov := w.SiteCoverage("nosuch.example"); cov.Total != 0 {
		t.Error("unknown host coverage should be zero-valued")
	}
}

func TestE13AnnotationsFixDecoys(t *testing.T) {
	rep, err := E13LostSemantics(context.Background(), 7, 700)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Queries < 10 {
		t.Fatalf("only %d decoy queries generated", rep.Queries)
	}
	if rep.PlainDecoyTop3 == 0 {
		t.Error("plain BM25 showed no decoys — the §5.1 failure mode did not manifest")
	}
	if rep.AnnotDecoyTop3 >= rep.PlainDecoyTop3 {
		t.Errorf("annotations did not reduce decoys: %d vs %d", rep.AnnotDecoyTop3, rep.PlainDecoyTop3)
	}
	if rep.AnnotPrecision3 <= rep.PlainPrecision3 {
		t.Errorf("annotation precision %.2f not above plain %.2f", rep.AnnotPrecision3, rep.PlainPrecision3)
	}
}

func TestE14ExtractionAccuracy(t *testing.T) {
	rep, err := E14Extraction(context.Background(), 7, 500)
	if err != nil {
		t.Fatal(err)
	}
	if rep.PagesUsed == 0 || rep.RecordsSeen == 0 {
		t.Fatalf("no extraction input: %+v", rep)
	}
	if len(rep.FieldsLearned) < 2 {
		t.Fatalf("learned only %v", rep.FieldsLearned)
	}
	if rep.FieldAccuracy["make"] < 0.9 {
		t.Errorf("make accuracy %.2f, want ≥0.9", rep.FieldAccuracy["make"])
	}
	if rep.MeanAccuracy < 0.7 {
		t.Errorf("mean accuracy %.2f, want ≥0.7", rep.MeanAccuracy)
	}
}
