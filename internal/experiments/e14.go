package experiments

import (
	"context"
	"sort"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/extract"
	"deepweb/internal/htmlx"
	"deepweb/internal/webgen"
	webxpkg "deepweb/internal/webx"
)

// ---------------------------------------------------------------------
// E14 — relational extraction from surfaced pages (§5.1, extension):
// "extract rows of data from pages that were generated from deep-web
// sites where the inputs that were filled in order to generate the
// pages are known." Wrapper induction anchors on the known bindings;
// no manual markup is involved.

// E14Report scores induced-wrapper extraction against ground truth.
type E14Report struct {
	PagesUsed     int
	RecordsSeen   int
	FieldsLearned []string
	// Accuracy per learned field: extracted value equals the backing
	// row's true value.
	FieldAccuracy map[string]float64
	MeanAccuracy  float64
}

// E14Extraction surfaces a used-car site, fetches its surfaced pages,
// induces a wrapper from (binding, records) observations, extracts
// every record, and scores fields against the site's ground truth.
func E14Extraction(ctx context.Context, seed int64, rows int) (E14Report, error) {
	rep := E14Report{FieldAccuracy: map[string]float64{}}
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, seed, rows)
	if err != nil {
		return rep, err
	}
	web.AddSite(site)
	fetch := webxpkg.NewFetcher(web)
	s := core.NewSurfacer(fetch, core.DefaultConfig())
	res, err := s.SurfaceSite(ctx, site.HomeURL())
	if err != nil {
		return rep, err
	}

	// Assemble extraction pages from surfaced URLs.
	var pages []extract.Page
	for _, u := range res.URLs {
		page, err := fetch.GetCtx(ctx, u)
		if err != nil || page.Status != 200 {
			continue
		}
		binding := map[string]string{}
		for k, vs := range parseQueryOf(u) {
			if k == "start" || len(vs) == 0 || vs[0] == "" {
				continue
			}
			binding[k] = vs[0]
		}
		var recs []string
		for _, li := range htmlx.Find(page.Doc, "li") {
			if txt := strings.TrimSpace(htmlx.VisibleText(li)); txt != "" {
				recs = append(recs, txt)
			}
		}
		if len(binding) > 0 && len(recs) > 0 {
			pages = append(pages, extract.Page{Binding: binding, Records: recs})
		}
	}
	rep.PagesUsed = len(pages)

	w := extract.Induce(pages)
	rep.FieldsLearned = w.Fields()

	// Ground truth: record text → row id.
	rowByText := map[string]int{}
	for i := 0; i < site.Table.Len(); i++ {
		rowByText[strings.ToLower(site.Table.RowText(i))] = i
	}
	colOf := map[string]string{ // input name → backing column
		"make": "make", "model": "model", "zip": "zip",
		// Range endpoints anchor on records whose price equals the
		// bound exactly — rare but enough to learn the price column.
		"minprice": "price", "maxprice": "price",
	}
	correct := map[string]int{}
	seen := map[string]int{}
	for _, p := range pages {
		for _, rec := range p.Records {
			rep.RecordsSeen++
			rowID, ok := rowByText[strings.ToLower(rec)]
			if !ok {
				continue
			}
			got := w.Extract(rec)
			for field, val := range got {
				col, ok := colOf[field]
				if !ok {
					continue
				}
				ci := site.Table.ColIndex(col)
				if ci < 0 {
					continue
				}
				seen[field]++
				truth := strings.ToLower(site.Table.Row(rowID)[ci].String())
				if val == truth {
					correct[field]++
				}
			}
		}
	}
	var sum float64
	var fields []string
	for f := range seen {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		acc := float64(correct[f]) / float64(seen[f])
		rep.FieldAccuracy[f] = acc
		sum += acc
	}
	if len(fields) > 0 {
		rep.MeanAccuracy = sum / float64(len(fields))
	}
	return rep, nil
}

func (r E14Report) String() string {
	var b strings.Builder
	line(&b, "E14 relational extraction from surfaced pages (§5.1 extension)")
	line(&b, "  induced from %d pages / %d records; fields learned: %v", r.PagesUsed, r.RecordsSeen, r.FieldsLearned)
	var fields []string
	for f := range r.FieldAccuracy {
		fields = append(fields, f)
	}
	sort.Strings(fields)
	for _, f := range fields {
		line(&b, "  field %-7s accuracy %s", f, pct(r.FieldAccuracy[f]))
	}
	line(&b, "  mean field accuracy %s (no manual markup: labels come from the known bindings)", pct(r.MeanAccuracy))
	return b.String()
}
