package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"net/url"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/form"
	"deepweb/internal/webgen"
	webxpkg "deepweb/internal/webx"
)

// ---------------------------------------------------------------------
// E5 — typed inputs (§4.1): "as many as 6.7% of English forms in the US
// contain inputs of common types like zip codes, city names, prices,
// and dates", and such inputs can be recognized "with high accuracy".

// E5Report has two halves: prevalence over a synthetic form-name
// population with the paper's planted rate, and behavioural
// precision/recall of the full recognizer over the generated sites.
type E5Report struct {
	// Population half.
	PopulationForms int
	PlantedTyped    int
	RecognizedTyped int
	PopPrecision    float64
	PopRecall       float64
	// Behavioural half (hypothesis + probe confirmation on live sites).
	SiteInputs    int
	TruePositives int
	FalsePositive int
	FalseNegative int
}

// typedNameVariants are realistic input names per type, and decoyNames
// are untyped names a recognizer must not fire on.
var typedNameVariants = map[string][]string{
	core.TypeZip:   {"zip", "zipcode", "zip_code", "postalcode"},
	core.TypeCity:  {"city", "cityname", "town"},
	core.TypePrice: {"price", "maxprice", "min_price", "salary", "cost"},
	core.TypeDate:  {"year", "date", "pubdate", "modelyear"},
}

var decoyNames = []string{
	"q", "query", "search", "keywords", "name", "title", "author",
	"model", "company", "isbn", "category", "department", "agency",
	"topic", "dish", "cuisine", "state", "type", "bedrooms", "notes",
}

// E5TypedInputs measures both halves.
func E5TypedInputs(ctx context.Context, seed int64, populationForms, rows int) (E5Report, error) {
	var rep E5Report
	// --- population prevalence: plant the paper's 6.7% rate.
	r := rand.New(rand.NewSource(seed))
	rep.PopulationForms = populationForms
	tp, fp, fn := 0, 0, 0
	kinds := []string{core.TypeZip, core.TypeCity, core.TypePrice, core.TypeDate}
	for i := 0; i < populationForms; i++ {
		var name, truth string
		if r.Float64() < 0.067 {
			truth = kinds[r.Intn(len(kinds))]
			variants := typedNameVariants[truth]
			name = variants[r.Intn(len(variants))]
			rep.PlantedTyped++
		} else {
			name = decoyNames[r.Intn(len(decoyNames))]
		}
		got := core.HypothesizeType(name, "")
		switch {
		case got != "" && got == truth:
			tp++
			rep.RecognizedTyped++
		case got != "" && got != truth:
			fp++
			rep.RecognizedTyped++
		case got == "" && truth != "":
			fn++
		}
	}
	if tp+fp > 0 {
		rep.PopPrecision = float64(tp) / float64(tp+fp)
	}
	if tp+fn > 0 {
		rep.PopRecall = float64(tp) / float64(tp+fn)
	}

	// --- behavioural: run the surfacer on one site per domain and
	// compare confirmed types against site ground truth.
	web, err := webgen.BuildWorld(webgen.WorldConfig{Seed: seed, SitesPerDom: 1, RowsPerSite: rows})
	if err != nil {
		return rep, err
	}
	fetch := webxpkg.NewFetcher(web)
	for _, site := range web.Sites() {
		s := core.NewSurfacer(fetch, core.DefaultConfig())
		res, err := s.SurfaceSite(ctx, site.HomeURL())
		if err != nil || res.Analysis.Form == nil {
			continue
		}
		truth := site.Spec.TypedInputs()
		rep.SiteInputs += len(truth)
		for name, typ := range res.Analysis.TypedInputs {
			if truth[name] == typ {
				rep.TruePositives++
			} else {
				rep.FalsePositive++
			}
		}
		for name := range truth {
			if _, ok := res.Analysis.TypedInputs[name]; !ok {
				rep.FalseNegative++
			}
		}
	}
	return rep, nil
}

// SitePrecision is behavioural precision.
func (r E5Report) SitePrecision() float64 {
	if r.TruePositives+r.FalsePositive == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalsePositive)
}

// SiteRecall is behavioural recall.
func (r E5Report) SiteRecall() float64 {
	if r.TruePositives+r.FalseNegative == 0 {
		return 0
	}
	return float64(r.TruePositives) / float64(r.TruePositives+r.FalseNegative)
}

func (r E5Report) String() string {
	var b strings.Builder
	line(&b, "E5 typed inputs")
	line(&b, "  population: planted %s typed (paper 6.7%%), recognizer precision %s recall %s",
		pct(float64(r.PlantedTyped)/float64(r.PopulationForms)), pct(r.PopPrecision), pct(r.PopRecall))
	line(&b, "  live sites: %d typed inputs, precision %s recall %s (paper: 'high accuracy')",
		r.SiteInputs, pct(r.SitePrecision()), pct(r.SiteRecall()))
	return b.String()
}

// ---------------------------------------------------------------------
// E6 — iterative probing (§4.1): seed keywords from indexed site pages,
// refined by probing, versus a generic dictionary baseline.

// E6Point is coverage after a given probe budget.
type E6Point struct {
	ProbeBudget  int
	IterCoverage float64
	DictCoverage float64
	IterKeywords int
	DictKeywords int
}

// E6Report is the budget sweep.
type E6Report struct {
	Rows   int
	Points []E6Point
}

// E6Probing compares iterative probing against a generic-dictionary
// prober on a library (text database) site across probe budgets.
func E6Probing(ctx context.Context, seed int64, rows int, budgets []int) (E6Report, error) {
	rep := E6Report{Rows: rows}
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("library", 0, seed, rows)
	if err != nil {
		return rep, err
	}
	web.AddSite(site)
	fetch := webxpkg.NewFetcher(web)

	// Seeds for the iterative arm: homepage + form page text, like the
	// surfacer's own pipeline.
	home, err := fetch.GetCtx(ctx, site.HomeURL())
	if err != nil {
		return rep, err
	}
	formPage, err := fetch.GetCtx(ctx, site.FormURL())
	if err != nil {
		return rep, err
	}
	f, err := formOfPage(formPage)
	if err != nil {
		return rep, err
	}
	seeds := core.SeedKeywords([]string{home.Text(), formPage.Text()}, 12)

	// Generic dictionary: vocabulary from *other* domains — plausible
	// English, mostly wrong for this site.
	dict := genericDictionary(seed)

	for _, budget := range budgets {
		cfg := core.DefaultConfig()
		cfg.ProbeBudget = budget
		cfg.MaxValuesPerInput = budget // let the sweep see all finds
		iterKWs := core.ProbeKeywords(ctx, fetch, f, "q", seeds, cfg)

		var dictKWs []string
		for i, w := range dict {
			if i >= budget {
				break
			}
			if len(site.MatchingRows(map[string][]string{"q": {w}})) > 0 {
				dictKWs = append(dictKWs, w)
			}
		}
		rep.Points = append(rep.Points, E6Point{
			ProbeBudget:  budget,
			IterCoverage: keywordCoverage(site, "q", iterKWs),
			DictCoverage: keywordCoverage(site, "q", dictKWs),
			IterKeywords: len(iterKWs),
			DictKeywords: len(dictKWs),
		})
	}
	return rep, nil
}

// keywordCoverage is the fraction of rows retrieved by submitting each
// keyword to the input.
func keywordCoverage(site *webgen.Site, input string, kws []string) float64 {
	covered := map[int]bool{}
	for _, kw := range kws {
		for _, id := range site.MatchingRows(map[string][]string{input: {kw}}) {
			covered[id] = true
		}
	}
	return float64(len(covered)) / float64(site.Table.Len())
}

// genericDictionary builds the baseline prober's word list from other
// domains' vocabularies, deterministically shuffled.
func genericDictionary(seed int64) []string {
	var dict []string
	dict = append(dict, "computer", "window", "bottle", "garden", "engine",
		"purple", "market", "planet", "bridge", "circle", "filter", "hammer")
	for _, w := range decoyNames {
		dict = append(dict, w)
	}
	dict = append(dict, "seattle", "portland", "chicago", "ford", "honda",
		"nurse", "teacher", "tacos", "ramen", "permits", "zoning",
		"history", "science", "poetry", "medicine", "biography")
	r := rand.New(rand.NewSource(seed))
	r.Shuffle(len(dict), func(i, j int) { dict[i], dict[j] = dict[j], dict[i] })
	return dict
}

func (r E6Report) String() string {
	var b strings.Builder
	line(&b, "E6 iterative probing vs dictionary (library site, %d rows)", r.Rows)
	for _, p := range r.Points {
		line(&b, "  budget=%4d  iterative %s (%d kws)   dictionary %s (%d kws)",
			p.ProbeBudget, pct(p.IterCoverage), p.IterKeywords, pct(p.DictCoverage), p.DictKeywords)
	}
	return b.String()
}

// ---------------------------------------------------------------------
// E7 — ranges (§4.2): 20% of forms have likely range pairs; fusing a
// 10×10 min/max pair turns ~120 URLs (many invalid) into 10 with no
// coverage loss.

// E7Report compares the two arms on a range-heavy vertical.
type E7Report struct {
	FormsTotal     int
	FormsWithRange int
	AwareURLs      int // URLs touching the range inputs, fused arm
	NaiveURLs      int // same, naive arm
	AwareCoverage  float64
	NaiveCoverage  float64
	AwareInvalid   int // URLs selecting nothing (e.g. inverted ranges)
	NaiveInvalid   int
}

// E7Ranges surfaces one usedcars site with range fusion on and off.
func E7Ranges(ctx context.Context, seed int64, rows int) (E7Report, error) {
	var rep E7Report
	// Prevalence over the standard world's form population.
	world, err := webgen.BuildWorld(webgen.WorldConfig{Seed: seed, SitesPerDom: 2, RowsPerSite: 10})
	if err != nil {
		return rep, err
	}
	for _, s := range world.Sites() {
		rep.FormsTotal++
		if len(s.Spec.RangePairs()) > 0 {
			rep.FormsWithRange++
		}
	}

	run := func(cfg core.Config) (int, int, float64, error) {
		web := webgen.NewWeb()
		site, err := webgen.BuildSite("usedcars", 0, seed, rows)
		if err != nil {
			return 0, 0, 0, err
		}
		web.AddSite(site)
		s := core.NewSurfacer(webxpkg.NewFetcher(web), cfg)
		res, err := s.SurfaceSite(ctx, site.HomeURL())
		if err != nil {
			return 0, 0, 0, err
		}
		urls, invalid := 0, 0
		covered := map[int]bool{}
		for _, u := range res.URLs {
			q := parseQueryOf(u)
			rows := site.MatchingRows(q)
			for _, id := range rows {
				covered[id] = true
			}
			// Count URLs binding *only* the price inputs — the exact
			// population of the paper's 120-vs-10 arithmetic.
			priceBound := q.Get("minprice") != "" || q.Get("maxprice") != ""
			otherBound := false
			for key, vals := range q {
				if key == "minprice" || key == "maxprice" {
					continue
				}
				if len(vals) > 0 && vals[0] != "" {
					otherBound = true
				}
			}
			if priceBound && !otherBound {
				urls++
				if len(rows) == 0 {
					invalid++
				}
			}
		}
		return urls, invalid, float64(len(covered)) / float64(site.Table.Len()), nil
	}

	// 10 values per input reproduces the paper's arithmetic exactly:
	// two independent 10-value inputs yield 10+10+100 = "as many as 120
	// URLs"; the fused range yields "the 10 URLs".
	aware := core.DefaultConfig()
	aware.MaxValuesPerInput = 10
	naive := aware
	naive.RangeAware = false
	naive.StrictExtension = false
	var err2 error
	rep.AwareURLs, rep.AwareInvalid, rep.AwareCoverage, err2 = run(aware)
	if err2 != nil {
		return rep, err2
	}
	rep.NaiveURLs, rep.NaiveInvalid, rep.NaiveCoverage, err2 = run(naive)
	return rep, err2
}

func (r E7Report) String() string {
	var b strings.Builder
	line(&b, "E7 range correlations")
	line(&b, "  prevalence: %d/%d forms have range pairs = %s (paper: ~20%%)",
		r.FormsWithRange, r.FormsTotal, pct(float64(r.FormsWithRange)/float64(r.FormsTotal)))
	line(&b, "  range URLs: naive %d (%d retrieve nothing)  vs  fused %d (%d empty)  — paper: ~120 vs 10",
		r.NaiveURLs, r.NaiveInvalid, r.AwareURLs, r.AwareInvalid)
	line(&b, "  coverage:   naive %s  fused %s (paper: no loss)", pct(r.NaiveCoverage), pct(r.AwareCoverage))
	return b.String()
}

// ---------------------------------------------------------------------
// E8 — database selection (§4.2): per-catalog keyword sets versus one
// global keyword set on a multi-catalog site.

// E8Report compares coverage per catalog.
type E8Report struct {
	PerCatalog map[string]E8Arm
	GlobalMean float64
	PerDBMean  float64
}

// E8Arm is coverage under each strategy for one catalog.
type E8Arm struct {
	Global float64
	PerDB  float64
}

// E8DBSelection surfaces a media site with and without per-database
// keyword handling and scores coverage within each catalog.
func E8DBSelection(ctx context.Context, seed int64, rows int) (E8Report, error) {
	rep := E8Report{PerCatalog: map[string]E8Arm{}}
	run := func(cfg core.Config) (map[string]float64, error) {
		web := webgen.NewWeb()
		site, err := webgen.BuildSite("media", 0, seed, rows)
		if err != nil {
			return nil, err
		}
		web.AddSite(site)
		s := core.NewSurfacer(webxpkg.NewFetcher(web), cfg)
		res, err := s.SurfaceSite(ctx, site.HomeURL())
		if err != nil {
			return nil, err
		}
		// Coverage per catalog value, counting only keyword-bearing
		// URLs: the category select alone trivially retrieves whole
		// catalogs; §4.2 is about whether the *keywords* chosen for
		// the text box work inside each catalog.
		catCol := site.Table.ColIndex("category")
		totals := map[string]int{}
		for i := 0; i < site.Table.Len(); i++ {
			totals[site.Table.Row(i)[catCol].Str]++
		}
		covered := map[string]map[int]bool{}
		for _, u := range res.URLs {
			q := parseQueryOf(u)
			if q.Get("q") == "" {
				continue
			}
			for _, id := range site.MatchingRows(q) {
				cat := site.Table.Row(id)[catCol].Str
				if covered[cat] == nil {
					covered[cat] = map[int]bool{}
				}
				covered[cat][id] = true
			}
		}
		out := map[string]float64{}
		for cat, tot := range totals {
			out[cat] = float64(len(covered[cat])) / float64(tot)
		}
		return out, nil
	}
	// A tight keyword budget is what separates the arms: with unlimited
	// keywords even a global set eventually spans every catalog.
	perdb := core.DefaultConfig()
	perdb.MaxValuesPerInput = 12
	global := perdb
	global.PerDBKeywords = false
	pd, err := run(perdb)
	if err != nil {
		return rep, err
	}
	gl, err := run(global)
	if err != nil {
		return rep, err
	}
	var sumG, sumP float64
	for cat := range pd {
		arm := E8Arm{Global: gl[cat], PerDB: pd[cat]}
		rep.PerCatalog[cat] = arm
		sumG += arm.Global
		sumP += arm.PerDB
	}
	rep.GlobalMean = sumG / float64(len(pd))
	rep.PerDBMean = sumP / float64(len(pd))
	return rep, nil
}

func (r E8Report) String() string {
	var b strings.Builder
	line(&b, "E8 database-selection keyword sets (media site)")
	for _, cat := range []string{"movies", "music", "software", "games"} {
		if arm, ok := r.PerCatalog[cat]; ok {
			line(&b, "  %-9s global %s   per-catalog %s", cat, pct(arm.Global), pct(arm.PerDB))
		}
	}
	line(&b, "  mean:      global %s   per-catalog %s (paper: per-catalog keywords needed)",
		pct(r.GlobalMean), pct(r.PerDBMean))
	return b.String()
}

// formOfPage converts the first form on an already-fetched page.
func formOfPage(p *webxpkg.Page) (*form.Form, error) {
	decls := p.Forms()
	if len(decls) == 0 {
		return nil, fmt.Errorf("no form on %s", p.URL)
	}
	base, err := url.Parse(p.URL)
	if err != nil {
		return nil, err
	}
	return form.FromDecl(base, decls[0], 0)
}
