package experiments

import (
	"context"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/engine"
	"deepweb/internal/virtual"
	"deepweb/internal/webgen"
	webxpkg "deepweb/internal/webx"
	"deepweb/internal/workload"
)

// ---------------------------------------------------------------------
// E1 — long-tail impact (§3.2): "top 10,000 forms … accounted for only
// 50% of deep-web results, while even the top 100,000 forms only
// accounted for 85%".

// E1Config sizes the experiment.
type E1Config struct {
	NForms  int // form population (paper-scale default 200k)
	Queries int // sampled queries for the noisy arm
	Seed    int64
}

// DefaultE1 returns paper-scale parameters.
func DefaultE1() E1Config { return E1Config{NForms: 200000, Queries: 2000000, Seed: 1} }

// E1Report holds analytic and sampled cumulative shares.
type E1Report struct {
	Cfg            E1Config
	Exponent       float64 // Zipf exponent calibrated to the paper's 50% point
	Top10kShare    float64
	Top100kShr     float64
	SampledTop10k  float64
	SampledTop100k float64
	Gini           float64
}

// E1LongTail calibrates the traffic exponent against the paper's first
// data point and checks the second falls out, analytically and with
// sampled query traffic.
func E1LongTail(cfg E1Config) E1Report {
	r := E1Report{Cfg: cfg}
	r.Exponent = workload.CalibrateExponent(cfg.NForms, cfg.NForms/20, workload.PaperShares.Top10kOf200k)
	weights := workload.FormImpact(r.Exponent, cfg.NForms)
	shares := workload.SharesAt(weights, []int{cfg.NForms / 20, cfg.NForms / 2})
	r.Top10kShare, r.Top100kShr = shares[0], shares[1]
	sampled := workload.SampleImpacts(cfg.Seed, r.Exponent, cfg.NForms, cfg.Queries)
	sshares := workload.SharesAt(sampled, []int{cfg.NForms / 20, cfg.NForms / 2})
	r.SampledTop10k, r.SampledTop100k = sshares[0], sshares[1]
	r.Gini = workload.GiniCoefficient(weights)
	return r
}

func (r E1Report) String() string {
	var b strings.Builder
	line(&b, "E1 long-tail impact (%d forms, exponent %.3f, gini %.2f)", r.Cfg.NForms, r.Exponent, r.Gini)
	line(&b, "  top-%d forms:  paper 50%%   analytic %s   sampled %s", r.Cfg.NForms/20, pct(r.Top10kShare), pct(r.SampledTop10k))
	line(&b, "  top-%d forms: paper 85%%   analytic %s   sampled %s", r.Cfg.NForms/2, pct(r.Top100kShr), pct(r.SampledTop100k))
	return b.String()
}

// ---------------------------------------------------------------------
// E2 — site load (§3.1–3.2): surfacing's off-line analysis imposes a
// bounded one-time load and then zero per-query load; the mediator
// pays live submissions on every query.

// E2Report compares the two architectures' load on form sites.
type E2Report struct {
	Sites              int
	OfflineReqPerSite  float64 // one-time surfacing cost
	MeanCoverage       float64 // what that one-time cost bought
	Queries            int
	MediatorReqPerQry  float64 // live submissions per user query
	SurfacingReqPerQry float64 // always 0: queries hit the index
}

// E2SiteLoad surfaces a world, then runs the same query stream through
// the index and through a mediator over the same sites.
func E2SiteLoad(ctx context.Context, seed int64, sitesPerDom, rows, queries int) (E2Report, error) {
	w, err := NewWorld(webgen.WorldConfig{Seed: seed, SitesPerDom: sitesPerDom, RowsPerSite: rows})
	if err != nil {
		return E2Report{}, err
	}
	w.IndexSurfaceWeb(ctx)
	if _, err := w.Surface(ctx, engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		return E2Report{}, err
	}
	var rep E2Report
	rep.Sites = len(w.Web.Sites())
	total := 0
	for _, n := range w.OfflineRequests {
		total += n
	}
	rep.OfflineReqPerSite = float64(total) / float64(rep.Sites)
	rep.MeanCoverage = w.MeanCoverage()

	// Build the mediator over the same forms.
	m := virtual.NewMediator(w.Fetch)
	for _, site := range w.Web.Sites() {
		f, err := engine.FormOf(ctx, w.Fetch, site)
		if err != nil {
			continue
		}
		m.Register(f) // unmappable forms are simply not mediated
	}
	// Query stream: one query per domain routing vocabulary, cycled.
	queriesList := []string{
		"used ford cars", "homes in seattle", "nurse jobs",
		"history books", "public records permits", "store hours",
		"movies catalog", "professor biography", "thai recipes",
	}
	w.Web.ResetCounts()
	m.Requests = 0
	for i := 0; i < queries; i++ {
		q := queriesList[i%len(queriesList)]
		m.Answer(ctx, q, 10)
	}
	rep.Queries = queries
	rep.MediatorReqPerQry = float64(m.Requests) / float64(queries)
	// Surfacing serves the same stream from the index: no site traffic.
	before := w.Web.TotalRequests()
	for i := 0; i < queries; i++ {
		w.Index.Search(queriesList[i%len(queriesList)], 10)
	}
	rep.SurfacingReqPerQry = float64(w.Web.TotalRequests()-before) / float64(queries)
	return rep, nil
}

func (r E2Report) String() string {
	var b strings.Builder
	line(&b, "E2 site load (%d sites)", r.Sites)
	line(&b, "  surfacing: %.0f reqs/site once (coverage %s), then %.2f reqs/query", r.OfflineReqPerSite, pct(r.MeanCoverage), r.SurfacingReqPerQry)
	line(&b, "  mediator:  %.1f live reqs/query, forever (paper: risks 'unreasonable load')", r.MediatorReqPerQry)
	return b.String()
}

// ---------------------------------------------------------------------
// E3 — fortuitous answering (§3.2): the award-query example. Surfacing
// answers cross-attribute keyword queries the mediator cannot express.

// E3Report compares recall on award queries.
type E3Report struct {
	Queries       int
	SurfacingHits int // queries answered by a surfaced page naming the award
	MediatorHits  int // queries the mediator answered at all
}

// E3Fortuitous builds faculty sites, surfaces them, and asks
// "<award> professor" for every award in the data.
func E3Fortuitous(ctx context.Context, seed int64, rows int) (E3Report, error) {
	w, err := NewWorld(webgen.WorldConfig{Seed: seed, SitesPerDom: 1, RowsPerSite: rows})
	if err != nil {
		return E3Report{}, err
	}
	w.IndexSurfaceWeb(ctx)
	if _, err := w.Surface(ctx, engine.SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 5}); err != nil {
		return E3Report{}, err
	}
	m := virtual.NewMediator(w.Fetch)
	for _, site := range w.Web.Sites() {
		if f, err := engine.FormOf(ctx, w.Fetch, site); err == nil {
			m.Register(f)
		}
	}
	// Which awards actually occur in the faculty data?
	var site *webgen.Site
	for _, s := range w.Web.Sites() {
		if s.Spec.Domain == "faculty" {
			site = s
		}
	}
	var rep E3Report
	bi := site.Table.ColIndex("bio")
	present := map[string]bool{}
	for i := 0; i < site.Table.Len(); i++ {
		bio := site.Table.Row(i)[bi].Str
		for _, aw := range awardsIn(bio) {
			present[aw] = true
		}
	}
	for aw := range present {
		rep.Queries++
		q := aw + " professor"
		// Surfacing arm: any top-10 index hit containing the award.
		for _, hit := range w.Index.Search(q, 10) {
			doc := w.Index.Doc(hit.DocID)
			if strings.Contains(strings.ToLower(doc.Text), aw) {
				rep.SurfacingHits++
				break
			}
		}
		// Mediator arm: any answer whose record names the award.
		answers, _ := m.Answer(ctx, q, 10)
		for _, a := range answers {
			if strings.Contains(strings.ToLower(a.Record), aw) {
				rep.MediatorHits++
				break
			}
		}
	}
	return rep, nil
}

// awardsIn extracts known award names from a bio.
func awardsIn(bio string) []string {
	var out []string
	low := strings.ToLower(bio)
	for _, aw := range awardNames {
		if strings.Contains(low, aw) {
			out = append(out, aw)
		}
	}
	return out
}

var awardNames = []string{
	"sigmod innovations award", "turing award", "fields medal",
	"dijkstra prize", "godel prize", "knuth prize", "nobel prize",
	"abel prize", "von neumann medal", "kyoto prize",
}

func (r E3Report) String() string {
	var b strings.Builder
	line(&b, "E3 fortuitous query answering (%d award queries)", r.Queries)
	line(&b, "  surfacing answered %d/%d; mediator answered %d/%d (paper: mediator cannot route such queries)",
		r.SurfacingHits, r.Queries, r.MediatorHits, r.Queries)
	return b.String()
}

// ---------------------------------------------------------------------
// E4 — URL scaling (§3.2): "the number of URLs our algorithms generate
// is proportional to the size of the underlying database, rather than
// the number of possible queries".

// E4Point is one sweep point.
type E4Point struct {
	Domain     string
	Rows       int
	URLs       int
	QuerySpace float64 // cross-product of candidate value spaces
	Coverage   float64
}

// E4Report is the sweep.
type E4Report struct {
	Points []E4Point
}

// E4URLScaling sweeps database size on two verticals — a select-driven
// one (usedcars) and a text-database (library), whose probed keyword
// count tracks content — and counts emitted URLs against the naive
// cross-product query space.
func E4URLScaling(ctx context.Context, seed int64, rowSizes []int) (E4Report, error) {
	var rep E4Report
	for _, domain := range []string{"usedcars", "library"} {
		for _, rows := range rowSizes {
			web := webgen.NewWeb()
			site, err := webgen.BuildSite(domain, 0, seed, rows)
			if err != nil {
				return rep, err
			}
			web.AddSite(site)
			cfg := core.DefaultConfig()
			// Generous caps so URL counts are limited by the content
			// the engine finds, not by configuration.
			cfg.MaxValuesPerInput = 250
			cfg.ProbeBudget = 2500
			cfg.URLBudget = 20000
			s := core.NewSurfacer(webxpkg.NewFetcher(web), cfg)
			res, err := s.SurfaceSite(ctx, site.HomeURL())
			if err != nil {
				return rep, err
			}
			space := 1.0
			for _, d := range res.Analysis.Dimensions {
				space *= float64(len(d.Values) + 1)
			}
			covered := map[int]bool{}
			for _, u := range res.URLs {
				for _, id := range site.MatchingRows(parseQueryOf(u)) {
					covered[id] = true
				}
			}
			rep.Points = append(rep.Points, E4Point{
				Domain:     domain,
				Rows:       rows,
				URLs:       len(res.URLs),
				QuerySpace: space,
				Coverage:   float64(len(covered)) / float64(rows),
			})
		}
	}
	return rep, nil
}

func (r E4Report) String() string {
	var b strings.Builder
	line(&b, "E4 URLs ∝ database size, not query space")
	for _, p := range r.Points {
		line(&b, "  %-8s rows=%6d  urls=%5d  urls/rows=%.3f  query-space=%.0f  coverage=%s",
			p.Domain, p.Rows, p.URLs, float64(p.URLs)/float64(p.Rows), p.QuerySpace, pct(p.Coverage))
	}
	return b.String()
}
