package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
	webxpkg "deepweb/internal/webx"
)

// ---------------------------------------------------------------------
// E13 — lost semantics of surfaced content (§5.1, extension): the
// "used ford focus 1993" example. Surfaced pages are plain text to the
// IR index, so a Honda listings page whose free text mentions the Ford
// Focus can rank as a "good result" for a Ford Focus query. The paper
// proposes attaching annotations (the form binding that generated the
// page is known at surfacing time) and letting the index exploit them;
// internal/index.AnnotatedSearch implements that.

// E13Report compares plain BM25 against annotation-aware ranking.
type E13Report struct {
	Queries         int
	PlainDecoyTop3  int // queries with a contradicted-make page in the top 3
	AnnotDecoyTop3  int
	PlainPrecision3 float64 // fraction of annotated top-3 hits whose make matches
	AnnotPrecision3 float64
}

// E13LostSemantics surfaces a used-car site whose listings carry §5.1
// cross-reference decoys, then issues "used «make» «model» «year»"
// queries built from the decoy rows — the exact adversarial shape of
// the paper's example.
func E13LostSemantics(ctx context.Context, seed int64, rows int) (E13Report, error) {
	var rep E13Report
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, seed, rows)
	if err != nil {
		return rep, err
	}
	web.AddSite(site)
	fetch := webxpkg.NewFetcher(web)
	s := core.NewSurfacer(fetch, core.DefaultConfig())
	res, err := s.SurfaceSite(ctx, site.HomeURL())
	if err != nil {
		return rep, err
	}
	ix := index.New()
	core.IngestURLs(ctx, fetch, ix, res.Analysis.Form.ID, res.URLs, 5)

	// Build queries from decoy rows: the decoy page contains the
	// referenced make+model (in text) plus the decoy row's year.
	yi := site.Table.ColIndex("year")
	ni := site.Table.ColIndex("notes")
	type q struct {
		text string
		make string // the make the query is genuinely about
	}
	var queries []q
	for i := 0; i < site.Table.Len(); i++ {
		row := site.Table.Row(i)
		note := row[ni].Str
		idx := strings.Index(note, "better mileage than the ")
		if idx < 0 {
			continue
		}
		ref := strings.Fields(note[idx+len("better mileage than the "):])
		if len(ref) < 2 {
			continue
		}
		refMake, refModel := ref[0], ref[1]
		queries = append(queries, q{
			text: fmt.Sprintf("used %s %s %d", refMake, refModel, row[yi].Int),
			make: refMake,
		})
	}
	sort.Slice(queries, func(i, j int) bool { return queries[i].text < queries[j].text })
	if len(queries) > 40 {
		queries = queries[:40]
	}
	rep.Queries = len(queries)

	score := func(search func(string, int) []index.Result) (decoyTop3 int, precision float64) {
		annotated, matching := 0, 0
		for _, query := range queries {
			sawDecoy := false
			for _, hit := range search(query.text, 3) {
				anns := ix.AnnotationsOf(hit.DocID)
				mk, ok := anns["make"]
				if !ok {
					continue
				}
				annotated++
				if mk == query.make {
					matching++
				} else {
					sawDecoy = true
				}
			}
			if sawDecoy {
				decoyTop3++
			}
		}
		if annotated > 0 {
			precision = float64(matching) / float64(annotated)
		}
		return decoyTop3, precision
	}
	rep.PlainDecoyTop3, rep.PlainPrecision3 = score(ix.Search)
	rep.AnnotDecoyTop3, rep.AnnotPrecision3 = score(ix.AnnotatedSearch)
	return rep, nil
}

func (r E13Report) String() string {
	var b strings.Builder
	line(&b, "E13 lost semantics of surfaced pages (§5.1 extension, %d decoy queries)", r.Queries)
	line(&b, "  plain BM25:       decoy page in top-3 for %d/%d queries (make-precision@3 %s)",
		r.PlainDecoyTop3, r.Queries, pct(r.PlainPrecision3))
	line(&b, "  annotation-aware: decoy page in top-3 for %d/%d queries (make-precision@3 %s)",
		r.AnnotDecoyTop3, r.Queries, pct(r.AnnotPrecision3))
	return b.String()
}
