// Package webx is the crawling substrate: a fetcher that parses pages as
// it retrieves them, and a breadth-first crawler with page and per-host
// budgets. The surfacing engine uses the fetcher to probe forms; the
// search engine uses the crawler to ingest the surface web and, after
// surfacing, to pursue links out of deep-web result pages (paper §3.2:
// "the web crawler will discover more content over time by pursuing
// links from deep-web pages").
package webx

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"deepweb/internal/htmlx"
)

// Page is a fetched, parsed page.
type Page struct {
	URL    string
	Status int
	HTML   string
	Doc    *htmlx.Node
}

// Text returns the page's visible text.
func (p *Page) Text() string { return htmlx.VisibleText(p.Doc) }

// Title returns the <title> text, or "".
func (p *Page) Title() string {
	if t := htmlx.Find(p.Doc, "title"); len(t) > 0 {
		return strings.TrimSpace(htmlx.VisibleText(t[0]))
	}
	return ""
}

// Links returns the page's out-links resolved against its own URL.
func (p *Page) Links() []string {
	base, err := url.Parse(p.URL)
	if err != nil {
		return nil
	}
	return htmlx.ExtractLinks(p.Doc, base)
}

// Forms returns the page's forms as semantic declarations.
func (p *Page) Forms() []htmlx.FormDecl { return htmlx.ExtractForms(p.Doc) }

// Fetcher retrieves and parses pages over a transport (in production the
// network; in experiments the virtual internet).
type Fetcher struct {
	client *http.Client
	// Timeout bounds each fetch (0 = none). It composes with the
	// caller's context: whichever deadline is earlier wins.
	Timeout time.Duration
	// MaxBodyBytes caps how much of a response body is read (0 = no
	// cap). Bodies past the cap fail the fetch rather than silently
	// truncating the parse.
	MaxBodyBytes int64
}

// NewFetcher wraps a transport.
func NewFetcher(rt http.RoundTripper) *Fetcher {
	return &Fetcher{client: &http.Client{Transport: rt}}
}

// do runs one request: applies the per-fetch timeout, reads the
// (capped) body, parses.
func (f *Fetcher) do(req *http.Request, u string, cancel context.CancelFunc) (*Page, error) {
	defer cancel()
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("webx: %s %s: %w", strings.ToLower(req.Method), u, err)
	}
	defer resp.Body.Close()
	var r io.Reader = resp.Body
	if f.MaxBodyBytes > 0 {
		r = io.LimitReader(resp.Body, f.MaxBodyBytes+1)
	}
	body, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("webx: read %s: %w", u, err)
	}
	if f.MaxBodyBytes > 0 && int64(len(body)) > f.MaxBodyBytes {
		return nil, fmt.Errorf("webx: read %s: body exceeds %d-byte cap", u, f.MaxBodyBytes)
	}
	html := string(body)
	return &Page{URL: u, Status: resp.StatusCode, HTML: html, Doc: htmlx.Parse(html)}, nil
}

// fetchCtx derives the request context: the caller's ctx, tightened by
// the per-fetch timeout when one is set.
func (f *Fetcher) fetchCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(ctx, f.Timeout)
	}
	return ctx, func() {}
}

// GetCtx fetches and parses one page under ctx. Non-2xx statuses are
// returned as pages, not errors: error pages are real observations the
// surfacer reasons about.
func (f *Fetcher) GetCtx(ctx context.Context, u string) (*Page, error) {
	rctx, cancel := f.fetchCtx(ctx)
	req, err := http.NewRequestWithContext(rctx, http.MethodGet, u, nil)
	if err != nil {
		cancel()
		return nil, fmt.Errorf("webx: get %s: %w", u, err)
	}
	return f.do(req, u, cancel)
}

// PostCtx submits a form body under ctx and parses the response; the
// mediator's path to POST forms (the surfacer never calls this).
func (f *Fetcher) PostCtx(ctx context.Context, u, body string) (*Page, error) {
	rctx, cancel := f.fetchCtx(ctx)
	req, err := http.NewRequestWithContext(rctx, http.MethodPost, u, strings.NewReader(body))
	if err != nil {
		cancel()
		return nil, fmt.Errorf("webx: post %s: %w", u, err)
	}
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	return f.do(req, u, cancel)
}

// Crawler walks the link graph breadth-first.
type Crawler struct {
	Fetcher *Fetcher
	// MaxPages bounds the total pages fetched (0 = unlimited).
	MaxPages int
	// PerHostCap bounds pages fetched per host (0 = unlimited) — the
	// politeness budget of §3.2.
	PerHostCap int
	// FollowQuery controls whether URLs with query strings are followed.
	// The pre-surfacing crawl keeps this false: query URLs are exactly
	// the deep-web space the crawler cannot enumerate on its own.
	FollowQuery bool
}

// Crawl BFS-walks from the seeds and returns fetched pages in crawl
// order. Duplicate URLs are fetched once; fetch errors skip the URL. A
// canceled ctx stops the walk at the next fetch and returns the pages
// crawled so far.
func (c *Crawler) Crawl(ctx context.Context, seeds ...string) []*Page {
	type qItem struct{ u string }
	var (
		queue   []qItem
		seen    = map[string]bool{}
		perHost = map[string]int{}
		pages   []*Page
	)
	for _, s := range seeds {
		if !seen[s] {
			seen[s] = true
			queue = append(queue, qItem{s})
		}
	}
	for len(queue) > 0 {
		if ctx.Err() != nil {
			break
		}
		if c.MaxPages > 0 && len(pages) >= c.MaxPages {
			break
		}
		item := queue[0]
		queue = queue[1:]
		host := hostOf(item.u)
		if c.PerHostCap > 0 && perHost[host] >= c.PerHostCap {
			continue
		}
		page, err := c.Fetcher.GetCtx(ctx, item.u)
		if err != nil {
			continue
		}
		perHost[host]++
		if page.Status != http.StatusOK {
			continue
		}
		pages = append(pages, page)
		for _, l := range page.Links() {
			if seen[l] {
				continue
			}
			if !c.FollowQuery && strings.Contains(l, "?") {
				continue
			}
			seen[l] = true
			queue = append(queue, qItem{l})
		}
	}
	return pages
}

func hostOf(u string) string {
	parsed, err := url.Parse(u)
	if err != nil {
		return ""
	}
	return parsed.Host
}
