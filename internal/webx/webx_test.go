package webx

import (
	"context"
	"strings"
	"testing"

	"deepweb/internal/webgen"
)

func testWorld(t *testing.T) *webgen.Web {
	t.Helper()
	web, err := webgen.BuildWorld(webgen.WorldConfig{Seed: 5, SitesPerDom: 1, RowsPerSite: 40})
	if err != nil {
		t.Fatal(err)
	}
	return web
}

func TestFetcherGetParses(t *testing.T) {
	web := testWorld(t)
	f := NewFetcher(web)
	site := web.Sites()[0]
	p, err := f.GetCtx(context.Background(), site.FormURL())
	if err != nil {
		t.Fatal(err)
	}
	if p.Status != 200 {
		t.Errorf("status = %d", p.Status)
	}
	if len(p.Forms()) != 1 {
		t.Errorf("forms = %d, want 1", len(p.Forms()))
	}
	if p.Title() == "" {
		t.Error("no title extracted")
	}
	if !strings.Contains(p.Text(), "search") {
		t.Errorf("visible text wrong: %q", p.Text())
	}
}

func TestFetcherGet404IsPageNotError(t *testing.T) {
	web := testWorld(t)
	f := NewFetcher(web)
	p, err := f.GetCtx(context.Background(), "http://nosuch.example/")
	if err != nil {
		t.Fatalf("404 should not be a transport error: %v", err)
	}
	if p.Status != 404 {
		t.Errorf("status = %d", p.Status)
	}
}

func TestCrawlerReachesAllSitesFromHub(t *testing.T) {
	web := testWorld(t)
	c := &Crawler{Fetcher: NewFetcher(web)}
	pages := c.Crawl(context.Background(), "http://"+webgen.HubHost+"/")
	hosts := map[string]bool{}
	for _, p := range pages {
		hosts[hostOf(p.URL)] = true
	}
	for _, s := range web.Sites() {
		if !hosts[s.Spec.Host] {
			t.Errorf("crawl missed host %s", s.Spec.Host)
		}
	}
}

func TestCrawlerSkipsQueryURLsByDefault(t *testing.T) {
	web := testWorld(t)
	c := &Crawler{Fetcher: NewFetcher(web)}
	pages := c.Crawl(context.Background(), "http://"+webgen.HubHost+"/")
	for _, p := range pages {
		if strings.Contains(p.URL, "?") {
			t.Fatalf("pre-surfacing crawl fetched query URL %s", p.URL)
		}
	}
	// With FollowQuery it must reach record pages linked from homepages.
	c2 := &Crawler{Fetcher: NewFetcher(web), FollowQuery: true}
	sawRecord := false
	for _, p := range c2.Crawl(context.Background(), "http://"+webgen.HubHost+"/") {
		if strings.Contains(p.URL, "/record?id=") {
			sawRecord = true
			break
		}
	}
	if !sawRecord {
		t.Error("FollowQuery crawl reached no record pages")
	}
}

func TestCrawlerMaxPages(t *testing.T) {
	web := testWorld(t)
	c := &Crawler{Fetcher: NewFetcher(web), MaxPages: 3}
	pages := c.Crawl(context.Background(), "http://"+webgen.HubHost+"/")
	if len(pages) > 3 {
		t.Errorf("MaxPages violated: %d", len(pages))
	}
}

func TestCrawlerPerHostCap(t *testing.T) {
	web := testWorld(t)
	c := &Crawler{Fetcher: NewFetcher(web), PerHostCap: 1, FollowQuery: true}
	pages := c.Crawl(context.Background(), "http://"+webgen.HubHost+"/")
	perHost := map[string]int{}
	for _, p := range pages {
		perHost[hostOf(p.URL)]++
	}
	for h, n := range perHost {
		if n > 1 {
			t.Errorf("host %s fetched %d times, cap 1", h, n)
		}
	}
}

func TestCrawlerDedupes(t *testing.T) {
	web := testWorld(t)
	c := &Crawler{Fetcher: NewFetcher(web)}
	seed := web.Sites()[0].HomeURL()
	pages := c.Crawl(context.Background(), seed, seed, seed)
	seen := map[string]int{}
	for _, p := range pages {
		seen[p.URL]++
		if seen[p.URL] > 1 {
			t.Fatalf("URL fetched twice: %s", p.URL)
		}
	}
}

func TestPostFetch(t *testing.T) {
	web := testWorld(t)
	f := NewFetcher(web)
	var post *webgen.Site
	for _, s := range web.Sites() {
		if s.Spec.Domain == "govdocs" {
			ps := webgen.AsPost(s)
			web.AddSite(ps)
			post = ps
			break
		}
	}
	topic := post.Table.DistinctStrings("topic")[0]
	p, err := f.PostCtx(context.Background(), "http://"+post.Spec.Host+"/results", "topic="+topic)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.Text(), "results found") {
		t.Errorf("POST results page wrong: %q", p.Text()[:80])
	}
}
