package httpx

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxServesPprof(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index missing profile listing: %.200s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("goroutine profile: status %d", resp.StatusCode)
	}
}
