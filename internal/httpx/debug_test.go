package httpx

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestDebugMuxServesPprof(t *testing.T) {
	srv := httptest.NewServer(DebugMux())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index missing profile listing: %.200s", body)
	}

	resp, err = http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("goroutine profile: status %d", resp.StatusCode)
	}
}

// The debug listener is hardened against slow-loris and idle-connection
// pileups, but must keep streaming profiles indefinitely (no write
// timeout).
func TestDebugServerHardened(t *testing.T) {
	srv := DebugServer("localhost:0")
	if srv.ReadHeaderTimeout <= 0 {
		t.Error("debug server accepts unbounded header reads")
	}
	if srv.IdleTimeout <= 0 {
		t.Error("debug server never reclaims idle connections")
	}
	if srv.WriteTimeout != 0 {
		t.Errorf("debug server write timeout %v would cut off long profile streams", srv.WriteTimeout)
	}
	if srv.Handler == nil {
		t.Fatal("debug server has no handler")
	}
}
