package httpx

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestServerHasTimeouts(t *testing.T) {
	srv := Server(":0", http.NewServeMux())
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.ReadHeaderTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("default-ish server escaped: %+v", srv)
	}
}

// Serve must answer requests and return nil on a context-driven
// graceful shutdown.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	})
	// Grab a free port so parallel runs cannot collide.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, addr, mux) }()

	// Wait for the listener, then exercise it.
	var body string
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/ping")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
		break
	}
	if body != "pong" {
		t.Fatalf("no response from server: %q", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
}
