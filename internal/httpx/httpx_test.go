package httpx

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestServerHasTimeouts(t *testing.T) {
	srv := Server(":0", http.NewServeMux())
	if srv.ReadTimeout <= 0 || srv.WriteTimeout <= 0 || srv.ReadHeaderTimeout <= 0 || srv.IdleTimeout <= 0 {
		t.Errorf("default-ish server escaped: %+v", srv)
	}
}

// Serve must answer requests and return nil on a context-driven
// graceful shutdown.
func TestServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	mux := http.NewServeMux()
	mux.HandleFunc("/ping", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "pong")
	})
	// Grab a free port so parallel runs cannot collide.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, addr, mux) }()

	// Wait for the listener, then exercise it.
	var body string
	for i := 0; i < 100; i++ {
		resp, err := http.Get("http://" + addr + "/ping")
		if err != nil {
			time.Sleep(10 * time.Millisecond)
			continue
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		body = string(b)
		break
	}
	if body != "pong" {
		t.Fatalf("no response from server: %q", body)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
}

// WriteJSON must surface encoder failures as a 500 envelope and return
// the error — not swallow it behind a truncated 200.
func TestWriteJSONReportsEncodeErrors(t *testing.T) {
	rec := httptest.NewRecorder()
	err := WriteJSON(rec, http.StatusOK, math.NaN()) // json.UnsupportedValueError
	if err == nil {
		t.Fatal("WriteJSON returned nil for an unencodable value")
	}
	if rec.Code != 500 {
		t.Errorf("status %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"code":"internal"`) ||
		!strings.Contains(rec.Body.String(), "encoding response") {
		t.Errorf("body %q is not the error envelope", rec.Body.String())
	}

	// The happy path: JSON body, JSON content type, chosen status, nil error.
	rec = httptest.NewRecorder()
	if err := WriteJSON(rec, http.StatusCreated, map[string]int{"n": 1}); err != nil {
		t.Fatalf("WriteJSON(valid) = %v", err)
	}
	if rec.Code != http.StatusCreated || rec.Header().Get("Content-Type") != "application/json" {
		t.Errorf("status %d content-type %q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var out map[string]int
	if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil || out["n"] != 1 {
		t.Errorf("round-trip failed: %v %v", out, err)
	}
}

// The envelope is exactly {"error":{"code":...,"message":...}}.
func TestWriteErrorEnvelopeShape(t *testing.T) {
	rec := httptest.NewRecorder()
	WriteError(rec, http.StatusNotFound, CodeNotFound, "no such endpoint")
	if rec.Code != 404 {
		t.Fatalf("status %d, want 404", rec.Code)
	}
	var env map[string]map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatalf("bad envelope JSON: %v", err)
	}
	e := env["error"]
	if e["code"] != CodeNotFound || e["message"] != "no such endpoint" || len(env) != 1 || len(e) != 2 {
		t.Errorf("envelope = %v", env)
	}
}

func TestRequireMethod(t *testing.T) {
	rec := httptest.NewRecorder()
	req := httptest.NewRequest("POST", "/v1/search", nil)
	if RequireMethod(rec, req, http.MethodGet) {
		t.Fatal("POST passed a GET gate")
	}
	if rec.Code != 405 || rec.Header().Get("Allow") != "GET" {
		t.Errorf("status %d Allow %q", rec.Code, rec.Header().Get("Allow"))
	}
	rec = httptest.NewRecorder()
	req = httptest.NewRequest("GET", "/v1/search", nil)
	if !RequireMethod(rec, req, http.MethodGet) {
		t.Fatal("GET failed its own gate")
	}
	if rec.Code != 200 || rec.Body.Len() != 0 {
		t.Errorf("passing gate wrote a response: %d %q", rec.Code, rec.Body.String())
	}
}
