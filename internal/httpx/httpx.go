// Package httpx is the serving counterpart of webx: the hardened
// http.Server wiring shared by every binary that listens — sane
// timeouts and context-based graceful shutdown — so no command ships
// Go's unbounded default server. It also owns the one JSON wire
// discipline every HTTP surface speaks: buffered JSON writes, the
// shared error envelope, and method enforcement.
package httpx

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

// Server returns an http.Server with production timeouts.
func Server(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// Serve runs a hardened server until SIGINT/SIGTERM (or ctx ends), then
// drains in-flight requests before returning. It returns nil on a clean
// shutdown.
func Serve(ctx context.Context, addr string, h http.Handler) error {
	srv := Server(addr, h)
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("shutting down…")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

// ErrorBody is the one JSON error shape every endpoint returns,
// wrapped as {"error": {"code": ..., "message": ...}} so clients can
// switch on a stable machine code and log the human message.
type ErrorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// Stable error codes of the shared envelope.
const (
	CodeBadRequest       = "bad_request"
	CodeNotFound         = "not_found"
	CodeMethodNotAllowed = "method_not_allowed"
	CodeUnavailable      = "unavailable"
	CodeInternal         = "internal"
	// CodeGone marks a retired legacy endpoint: the 410 message names
	// the /v1 replacement.
	CodeGone = "gone"
)

// WriteJSON encodes v into a buffer first, so an encoding failure (an
// unmarshalable value such as NaN) can still become a 500 envelope
// instead of a silently truncated 200, and reports the error to the
// caller. status is the success status (http.StatusOK for most
// endpoints).
func WriteJSON(w http.ResponseWriter, status int, v any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		WriteError(w, http.StatusInternalServerError, CodeInternal, "encoding response: "+err.Error())
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteError writes the shared JSON error envelope with the given
// status, machine code and human message.
func WriteError(w http.ResponseWriter, status int, code, message string) {
	var buf bytes.Buffer
	// The envelope contains only strings; this encode cannot fail.
	json.NewEncoder(&buf).Encode(errorEnvelope{Error: ErrorBody{Code: code, Message: message}})
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(buf.Bytes())
}

// RequireMethod enforces the endpoint's verb: a mismatch answers 405
// with an Allow header and the shared envelope, and returns false so
// the handler can bail with a bare `if !RequireMethod(...) { return }`.
// A GET gate also admits HEAD (load balancers probe liveness with it;
// the net/http server discards the body itself), matching HTTP's
// GET-without-body semantics.
func RequireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method == method || (method == http.MethodGet && r.Method == http.MethodHead) {
		return true
	}
	w.Header().Set("Allow", method)
	WriteError(w, http.StatusMethodNotAllowed, CodeMethodNotAllowed,
		fmt.Sprintf("%s requires %s, got %s", r.URL.Path, method, r.Method))
	return false
}
