// Package httpx is the serving counterpart of webx: the hardened
// http.Server wiring shared by every binary that listens — sane
// timeouts and context-based graceful shutdown — so no command ships
// Go's unbounded default server.
package httpx

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"
)

// Server returns an http.Server with production timeouts.
func Server(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadTimeout:       5 * time.Second,
		ReadHeaderTimeout: 2 * time.Second,
		WriteTimeout:      10 * time.Second,
		IdleTimeout:       60 * time.Second,
	}
}

// Serve runs a hardened server until SIGINT/SIGTERM (or ctx ends), then
// drains in-flight requests before returning. It returns nil on a clean
// shutdown.
func Serve(ctx context.Context, addr string, h http.Handler) error {
	srv := Server(addr, h)
	ctx, stop := signal.NotifyContext(ctx, syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s", addr)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		log.Printf("shutting down…")
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}
