package httpx

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
)

// Debug/profiling surface. pprof never mounts on a serving mux — the
// binaries use explicit muxes precisely so net/http/pprof's
// DefaultServeMux registration can't leak heap dumps and symbol tables
// through the public listener. Profiling is its own listener, opt-in
// via each binary's -debugaddr flag, and typically bound to localhost.

// DebugMux returns a mux exposing the standard net/http/pprof
// endpoints under /debug/pprof/.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the pprof listener on addr in a goroutine; "" is a
// no-op, so binaries can pass their -debugaddr flag through unchecked.
// It also arms mutex and block profiling at sampling rates cheap
// enough to leave on while load-testing (the contention profiles are
// the interesting ones for a sharded cache). The listener deliberately
// skips Server's write timeout: a 30-second CPU profile
// (/debug/pprof/profile?seconds=30) streams longer than any sane
// serving timeout.
func ServeDebug(addr string) {
	if addr == "" {
		return
	}
	runtime.SetMutexProfileFraction(16)
	runtime.SetBlockProfileRate(int(1e6)) // sample blocking events ≥ ~1ms
	go func() {
		log.Printf("debug: pprof on http://%s/debug/pprof/", addr)
		if err := http.ListenAndServe(addr, DebugMux()); err != nil {
			log.Printf("debug: %v", err)
		}
	}()
}
