package httpx

import (
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"time"
)

// Debug/profiling surface. pprof never mounts on a serving mux — the
// binaries use explicit muxes precisely so net/http/pprof's
// DefaultServeMux registration can't leak heap dumps and symbol tables
// through the public listener. Profiling is its own listener, opt-in
// via each binary's -debugaddr flag, and typically bound to localhost.

// DebugMux returns a mux exposing the standard net/http/pprof
// endpoints under /debug/pprof/.
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugServer returns the hardened server the pprof listener runs:
// slow-loris requests are cut off at the header-read stage and idle
// keep-alive connections are reclaimed, but there is deliberately no
// write timeout — a 30-second CPU profile
// (/debug/pprof/profile?seconds=30) streams longer than any sane
// serving timeout.
func DebugServer(addr string) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           DebugMux(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
}

// ServeDebug starts the pprof listener on addr in a goroutine; "" is a
// no-op, so binaries can pass their -debugaddr flag through unchecked.
// It also arms mutex and block profiling at sampling rates cheap
// enough to leave on while load-testing (the contention profiles are
// the interesting ones for a sharded cache).
func ServeDebug(addr string) {
	if addr == "" {
		return
	}
	runtime.SetMutexProfileFraction(16)
	runtime.SetBlockProfileRate(int(1e6)) // sample blocking events ≥ ~1ms
	go func() {
		log.Printf("debug: pprof on http://%s/debug/pprof/", addr)
		if err := DebugServer(addr).ListenAndServe(); err != nil {
			log.Printf("debug: %v", err)
		}
	}()
}
