package dist

import (
	"math"
	"testing"
)

func TestZipfWeightsShape(t *testing.T) {
	w := ZipfWeights(0.8, 100)
	if len(w) != 100 || w[0] != 1 {
		t.Fatalf("bad head: len=%d w0=%v", len(w), w[0])
	}
	for i := 1; i < len(w); i++ {
		if w[i] >= w[i-1] || w[i] <= 0 {
			t.Fatalf("not strictly decreasing positive at %d: %v vs %v", i, w[i], w[i-1])
		}
	}
}

func TestCumulativeShare(t *testing.T) {
	shares := CumulativeShare([]float64{1, 2, 3, 4}, []int{0, 1, 4, 9})
	want := []float64{0, 0.4, 1, 1}
	for i := range want {
		if math.Abs(shares[i]-want[i]) > 1e-12 {
			t.Errorf("share[%d] = %v, want %v", i, shares[i], want[i])
		}
	}
	// Unsorted input: "top k" is by weight, not position.
	if s := CumulativeShare([]float64{1, 9}, []int{1})[0]; s != 0.9 {
		t.Errorf("top-1 of unsorted = %v, want 0.9", s)
	}
}

// The sampler must reproduce the analytic distribution it was built
// from — including exponents below 1, where math/rand's Zipf gives up.
func TestZipfSamplerMatchesAnalytic(t *testing.T) {
	const n, draws = 1000, 200000
	s := 0.7
	z := NewZipf(1, s, n)
	counts := make([]float64, n)
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r < 0 || r >= n {
			t.Fatalf("rank %d out of range", r)
		}
		counts[r]++
	}
	analytic := CumulativeShare(ZipfWeights(s, n), []int{50, 500})
	sampled := CumulativeShare(counts, []int{50, 500})
	for i := range analytic {
		if math.Abs(analytic[i]-sampled[i]) > 0.02 {
			t.Errorf("share %d: sampled %.3f vs analytic %.3f", i, sampled[i], analytic[i])
		}
	}
}

func TestZipfSamplerDeterministic(t *testing.T) {
	a, b := NewZipf(7, 1.1, 50), NewZipf(7, 1.1, 50)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestPercentile(t *testing.T) {
	if p := Percentile(nil, 0.5); p != 0 {
		t.Errorf("empty percentile = %v", p)
	}
	xs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {1. / 3, 2},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Input must not be reordered.
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
}
