// Package dist is the small distribution toolbox behind the workload
// model and the experiments' statistics: Zipf weight vectors and their
// cumulative shares (the long-tail arithmetic of E1), a seeded
// inverse-CDF Zipf sampler, and percentiles. The sampler exists because
// math/rand's Zipf requires exponent s > 1, while the traffic skew the
// paper implies calibrates to s < 1.
package dist

import (
	"math"
	"math/rand"
	"sort"
)

// ZipfWeights returns the unnormalized Zipf weight of each rank:
// weight[i] = 1/(i+1)^s, descending by construction.
func ZipfWeights(s float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Pow(float64(i+1), -s)
	}
	return out
}

// CumulativeShare returns, for each k in tops, the fraction of total
// weight held by the k heaviest entries. Weights need not be sorted;
// "top k" means by weight, so observed (noisy) impact counts and
// analytic rank-ordered weights are treated uniformly.
func CumulativeShare(weights []float64, tops []int) []float64 {
	sorted := append([]float64(nil), weights...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var total float64
	prefix := make([]float64, len(sorted)+1)
	for i, w := range sorted {
		total += w
		prefix[i+1] = total
	}
	out := make([]float64, len(tops))
	for i, k := range tops {
		if k < 0 {
			k = 0
		}
		if k > len(sorted) {
			k = len(sorted)
		}
		if total > 0 {
			out[i] = prefix[k] / total
		}
	}
	return out
}

// Zipf draws ranks from a Zipf distribution by inverse-CDF lookup.
type Zipf struct {
	rng *rand.Rand
	cdf []float64 // cdf[i] = cumulative weight through rank i
}

// NewZipf returns a sampler over ranks [0, n) with exponent s, seeded
// deterministically. Any s > 0 is valid.
func NewZipf(seed int64, s float64, n uint64) *Zipf {
	w := ZipfWeights(s, int(n))
	cdf := make([]float64, len(w))
	var total float64
	for i, x := range w {
		total += x
		cdf[i] = total
	}
	return &Zipf{rng: rand.New(rand.NewSource(seed)), cdf: cdf}
}

// Next draws one rank; rank 0 is the heaviest.
func (z *Zipf) Next() int {
	u := z.rng.Float64() * z.cdf[len(z.cdf)-1]
	return sort.SearchFloat64s(z.cdf, u)
}

// Percentile returns the p-quantile (p in [0,1]) of xs by linear
// interpolation between order statistics; 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
