package htmlx

import (
	"net/url"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

const carFormPage = `<!DOCTYPE html>
<html><head><title>Find Used Cars</title>
<script>var x = "<td>not a cell</td>";</script>
<style>.a { color: red }</style>
</head>
<body>
<h1>Search our inventory</h1>
<form action="/results" method="GET" id="carsearch">
  <label for="make">Make</label>
  <select name="make">
    <option value="">any make</option>
    <option value="ford" selected>Ford</option>
    <option>honda</option>
  </select>
  <label for="minprice">Min Price</label>
  <input type="text" name="minprice">
  <label for="maxprice">Max Price</label>
  <input type="text" name="maxprice" value="5000">
  <input type="hidden" name="lang" value="en">
  <input type="submit" value="Search">
</form>
<form action="/buy" method="post">
  <input type="text" name="cardnumber">
</form>
<a href="/about">About</a>
<a href="http://other.example.com/x?y=1&amp;z=2">other</a>
<a href="#frag">skip</a>
<a href="mailto:a@b.c">skip</a>
<a href="javascript:void(0)">skip</a>
<table>
  <tr><th>Make</th><th>Price</th></tr>
  <tr><td>ford</td><td>2500</td></tr>
  <tr><td>honda</td><td>3100</td></tr>
</table>
</body></html>`

func TestTokenizeBasics(t *testing.T) {
	toks := Tokenize(`<p class="x">hi &amp; bye</p>`)
	if len(toks) != 3 {
		t.Fatalf("got %d tokens: %+v", len(toks), toks)
	}
	if toks[0].Type != TokenStartTag || toks[0].Tag != "p" || toks[0].Attrs["class"] != "x" {
		t.Errorf("start tag wrong: %+v", toks[0])
	}
	if toks[1].Type != TokenText || toks[1].Text != "hi & bye" {
		t.Errorf("text wrong: %+v", toks[1])
	}
	if toks[2].Type != TokenEndTag || toks[2].Tag != "p" {
		t.Errorf("end tag wrong: %+v", toks[2])
	}
}

func TestTokenizeQuotedGT(t *testing.T) {
	toks := Tokenize(`<input value="a>b" name=x>`)
	if len(toks) != 1 || toks[0].Attrs["value"] != "a>b" || toks[0].Attrs["name"] != "x" {
		t.Fatalf("quoted > mishandled: %+v", toks)
	}
}

func TestTokenizeScriptRawText(t *testing.T) {
	toks := Tokenize(`<script>if (a<b) { x = "<td>"; }</script><p>ok</p>`)
	var sawScriptText bool
	for _, tok := range toks {
		if tok.Type == TokenText && strings.Contains(tok.Text, "<td>") {
			sawScriptText = true
		}
		if tok.Type == TokenStartTag && tok.Tag == "td" {
			t.Fatal("script content leaked as markup")
		}
	}
	if !sawScriptText {
		t.Error("script raw text lost")
	}
}

func TestTokenizeSelfClosingAndComments(t *testing.T) {
	toks := Tokenize(`<br/><!-- note --><hr />`)
	if toks[0].Type != TokenSelfClosing || toks[0].Tag != "br" {
		t.Errorf("self-closing br wrong: %+v", toks[0])
	}
	if toks[1].Type != TokenComment || strings.TrimSpace(toks[1].Text) != "note" {
		t.Errorf("comment wrong: %+v", toks[1])
	}
	if toks[2].Type != TokenSelfClosing || toks[2].Tag != "hr" {
		t.Errorf("self-closing hr wrong: %+v", toks[2])
	}
}

func TestTokenizeMalformedIsText(t *testing.T) {
	toks := Tokenize(`a < b and c > d`)
	for _, tok := range toks {
		if tok.Type != TokenText {
			t.Fatalf("malformed markup should degrade to text, got %+v", tok)
		}
	}
}

func TestParseAutoCloseOptions(t *testing.T) {
	doc := Parse(`<select name="s"><option value="1">one<option value="2">two</select>`)
	sel := Find(doc, "select")[0]
	opts := Find(sel, "option")
	if len(opts) != 2 {
		t.Fatalf("want 2 options, got %d", len(opts))
	}
	// Options must be siblings, not nested.
	if opts[1].Parent == opts[0] {
		t.Error("second option nested inside first")
	}
}

func TestParseTableAutoClose(t *testing.T) {
	doc := Parse(`<table><tr><td>a<td>b<tr><td>c</table>`)
	trs := Find(doc, "tr")
	if len(trs) != 2 {
		t.Fatalf("want 2 rows, got %d", len(trs))
	}
	if tds := Find(trs[0], "td"); len(tds) != 2 {
		t.Errorf("row 0: want 2 cells, got %d", len(tds))
	}
}

func TestParseStrayEndTagIgnored(t *testing.T) {
	doc := Parse(`<div>a</span>b</div>`)
	if txt := VisibleText(doc); txt != "a b" {
		t.Errorf("VisibleText = %q, want %q", txt, "a b")
	}
}

func TestVisibleTextSkipsScriptStyle(t *testing.T) {
	doc := Parse(carFormPage)
	txt := VisibleText(doc)
	if strings.Contains(txt, "not a cell") || strings.Contains(txt, "color: red") {
		t.Errorf("script/style text leaked: %q", txt)
	}
	if !strings.Contains(txt, "Search our inventory") {
		t.Errorf("body text missing: %q", txt)
	}
}

func TestExtractForms(t *testing.T) {
	doc := Parse(carFormPage)
	forms := ExtractForms(doc)
	if len(forms) != 2 {
		t.Fatalf("want 2 forms, got %d", len(forms))
	}
	f := forms[0]
	if f.Action != "/results" || f.Method != "get" || f.ID != "carsearch" {
		t.Errorf("form header wrong: %+v", f)
	}
	if len(f.Inputs) != 5 {
		t.Fatalf("want 5 inputs, got %d: %+v", len(f.Inputs), f.Inputs)
	}
	sel := f.Inputs[0]
	if sel.Kind != "select" || sel.Name != "make" || len(sel.Options) != 3 {
		t.Fatalf("select wrong: %+v", sel)
	}
	if sel.Options[1].Value != "ford" || !sel.Options[1].Selected {
		t.Errorf("option attrs wrong: %+v", sel.Options[1])
	}
	if sel.Options[2].Value != "honda" { // value defaults to label
		t.Errorf("valueless option wrong: %+v", sel.Options[2])
	}
	if sel.Label != "Make" {
		t.Errorf("label binding wrong: %q", sel.Label)
	}
	if f.Inputs[2].Name != "maxprice" || f.Inputs[2].Value != "5000" {
		t.Errorf("default value lost: %+v", f.Inputs[2])
	}
	if f.Inputs[3].Kind != "hidden" || f.Inputs[3].Value != "en" {
		t.Errorf("hidden input wrong: %+v", f.Inputs[3])
	}
	if forms[1].Method != "post" {
		t.Errorf("POST form method = %q", forms[1].Method)
	}
}

func TestExtractLinks(t *testing.T) {
	doc := Parse(carFormPage)
	base, _ := url.Parse("http://cars.example.com/search")
	links := ExtractLinks(doc, base)
	want := []string{
		"http://cars.example.com/about",
		"http://other.example.com/x?y=1&z=2",
	}
	if !reflect.DeepEqual(links, want) {
		t.Errorf("links = %v, want %v", links, want)
	}
}

func TestExtractTables(t *testing.T) {
	doc := Parse(carFormPage)
	tables := ExtractTables(doc)
	if len(tables) != 1 {
		t.Fatalf("want 1 table, got %d", len(tables))
	}
	tb := tables[0]
	if !reflect.DeepEqual(tb.Headers, []string{"Make", "Price"}) {
		t.Errorf("headers = %v", tb.Headers)
	}
	if len(tb.Rows) != 2 || tb.Rows[0][0] != "ford" || tb.Rows[1][1] != "3100" {
		t.Errorf("rows = %v", tb.Rows)
	}
}

func TestExtractTablesNoHeader(t *testing.T) {
	doc := Parse(`<table><tr><td>1</td><td>2</td></tr></table>`)
	tables := ExtractTables(doc)
	if len(tables) != 1 || tables[0].Headers != nil || len(tables[0].Rows) != 1 {
		t.Fatalf("headerless table wrong: %+v", tables)
	}
}

func TestEscapeRoundTrip(t *testing.T) {
	raw := `a & b <c> "d"`
	if got := UnescapeEntities(EscapeText(raw)); got != raw {
		t.Errorf("text round trip = %q, want %q", got, raw)
	}
}

func TestParseAttrsForms(t *testing.T) {
	toks := Tokenize(`<input type=text name=q value>`)
	a := toks[0].Attrs
	if a["type"] != "text" || a["name"] != "q" {
		t.Errorf("unquoted attrs wrong: %v", a)
	}
	if _, ok := a["value"]; !ok {
		t.Error("bare attribute missing")
	}
}

func TestAttrFirstWins(t *testing.T) {
	toks := Tokenize(`<input name="a" name="b">`)
	if toks[0].Attrs["name"] != "a" {
		t.Errorf("first-wins violated: %v", toks[0].Attrs)
	}
}

// Property: Parse never panics and VisibleText never contains '<' on
// arbitrary input.
func TestParsePropertyTotal(t *testing.T) {
	f := func(s string) bool {
		doc := Parse(s)
		_ = VisibleText(doc)
		_ = ExtractForms(doc)
		_ = ExtractTables(doc)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: parsing escaped text yields the original text back.
func TestEscapePropertyRoundTrip(t *testing.T) {
	f := func(s string) bool {
		// Strip control chars that the tokenizer's whitespace trim eats.
		clean := strings.Map(func(r rune) rune {
			if r < 0x20 {
				return -1
			}
			return r
		}, s)
		clean = strings.TrimSpace(clean)
		if clean == "" {
			return true
		}
		doc := Parse("<p>" + EscapeText(clean) + "</p>")
		texts := Find(doc, "p")
		if len(texts) != 1 {
			return false
		}
		norm := func(s string) string { return strings.Join(strings.Fields(s), " ") }
		return norm(VisibleText(texts[0])) == norm(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
