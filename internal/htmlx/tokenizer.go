// Package htmlx is a small, dependency-free HTML parser sufficient for
// the deep-web pipeline: it tokenizes tag soup, builds a forgiving
// element tree, and extracts the four artifacts the system consumes —
// forms with their inputs (the surfacing engine's raw material), links
// (the crawler's frontier), tables (the WebTables aggregator's input)
// and visible text (the IR index's input).
//
// It is not a spec-complete HTML5 parser; it implements the subset real
// form pages exercise, with auto-closing rules for the usual offenders
// (<option>, <li>, <tr>, <td>, <p>) and raw-text handling for <script>
// and <style>.
package htmlx

import (
	"strings"
)

// TokenType discriminates tokenizer output.
type TokenType uint8

// Token types.
const (
	TokenText TokenType = iota
	TokenStartTag
	TokenEndTag
	TokenSelfClosing
	TokenComment
	TokenDoctype
)

// Token is one lexical unit of an HTML document.
type Token struct {
	Type  TokenType
	Tag   string            // lower-cased tag name, for tag tokens
	Attrs map[string]string // lower-cased attribute names
	Text  string            // raw text, for text/comment tokens
}

var entityReplacer = strings.NewReplacer(
	"&amp;", "&", "&lt;", "<", "&gt;", ">",
	"&quot;", `"`, "&#39;", "'", "&apos;", "'", "&nbsp;", " ",
)

// UnescapeEntities decodes the handful of entities the generator and
// ordinary pages emit.
func UnescapeEntities(s string) string {
	if !strings.Contains(s, "&") {
		return s
	}
	return entityReplacer.Replace(s)
}

// EscapeText encodes text for safe embedding in an HTML text node.
var EscapeText = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;").Replace

// EscapeAttr encodes text for embedding in a double-quoted attribute.
var EscapeAttr = strings.NewReplacer("&", "&amp;", `"`, "&quot;", "<", "&lt;").Replace

// Tokenize lexes an HTML document. It never fails: malformed markup
// degrades to text tokens, matching browser behaviour closely enough for
// crawling.
func Tokenize(src string) []Token {
	var toks []Token
	i := 0
	n := len(src)
	for i < n {
		lt := strings.IndexByte(src[i:], '<')
		if lt < 0 {
			toks = appendText(toks, src[i:])
			break
		}
		if lt > 0 {
			toks = appendText(toks, src[i:i+lt])
			i += lt
		}
		// src[i] == '<'
		if strings.HasPrefix(src[i:], "<!--") {
			end := strings.Index(src[i+4:], "-->")
			if end < 0 {
				toks = append(toks, Token{Type: TokenComment, Text: src[i+4:]})
				break
			}
			toks = append(toks, Token{Type: TokenComment, Text: src[i+4 : i+4+end]})
			i += 4 + end + 3
			continue
		}
		if strings.HasPrefix(src[i:], "<!") {
			end := strings.IndexByte(src[i:], '>')
			if end < 0 {
				break
			}
			toks = append(toks, Token{Type: TokenDoctype, Text: src[i+2 : i+end]})
			i += end + 1
			continue
		}
		// A '<' not followed by a letter or '/' is literal text ("a < b").
		if i+1 >= n || !isTagStart(src[i+1]) {
			toks = appendText(toks, "<")
			i++
			continue
		}
		gt := findTagEnd(src, i)
		if gt < 0 {
			toks = appendText(toks, src[i:])
			break
		}
		raw := src[i+1 : gt]
		i = gt + 1
		tok, ok := parseTag(raw)
		if !ok {
			toks = appendText(toks, "<"+raw+">")
			continue
		}
		toks = append(toks, tok)
		// Raw-text elements: consume until the matching close tag.
		if tok.Type == TokenStartTag && (tok.Tag == "script" || tok.Tag == "style" || tok.Tag == "textarea") {
			closer := "</" + tok.Tag
			idx := indexFold(src[i:], closer)
			if idx < 0 {
				toks = appendText(toks, src[i:])
				break
			}
			if idx > 0 {
				toks = append(toks, Token{Type: TokenText, Text: src[i : i+idx]})
			}
			i += idx
			gt2 := strings.IndexByte(src[i:], '>')
			if gt2 < 0 {
				break
			}
			toks = append(toks, Token{Type: TokenEndTag, Tag: tok.Tag})
			i += gt2 + 1
		}
	}
	return toks
}

func appendText(toks []Token, text string) []Token {
	if text == "" {
		return toks
	}
	return append(toks, Token{Type: TokenText, Text: UnescapeEntities(text)})
}

// findTagEnd locates the '>' terminating the tag opened at src[start],
// skipping '>' inside quoted attribute values.
func findTagEnd(src string, start int) int {
	inQuote := byte(0)
	for j := start + 1; j < len(src); j++ {
		c := src[j]
		switch {
		case inQuote != 0:
			if c == inQuote {
				inQuote = 0
			}
		case c == '"' || c == '\'':
			inQuote = c
		case c == '>':
			return j
		}
	}
	return -1
}

// indexFold is a case-insensitive strings.Index for ASCII needles.
func indexFold(s, needle string) int {
	ls, ln := strings.ToLower(s), strings.ToLower(needle)
	return strings.Index(ls, ln)
}

// parseTag parses the inside of <...> into a tag token.
func parseTag(raw string) (Token, bool) {
	raw = strings.TrimSpace(raw)
	if raw == "" {
		return Token{}, false
	}
	end := false
	if raw[0] == '/' {
		end = true
		raw = strings.TrimSpace(raw[1:])
	}
	selfClose := false
	if strings.HasSuffix(raw, "/") {
		selfClose = true
		raw = strings.TrimSpace(raw[:len(raw)-1])
	}
	// Tag name.
	j := 0
	for j < len(raw) && !isSpace(raw[j]) {
		j++
	}
	name := strings.ToLower(raw[:j])
	if name == "" || !isTagName(name) {
		return Token{}, false
	}
	tok := Token{Tag: name}
	switch {
	case end:
		tok.Type = TokenEndTag
		return tok, true
	case selfClose:
		tok.Type = TokenSelfClosing
	default:
		tok.Type = TokenStartTag
	}
	tok.Attrs = parseAttrs(raw[j:])
	return tok, true
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

// isTagStart reports whether c can begin a tag name (or close/decl).
func isTagStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '/' || c == '!'
}

func isTagName(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-'
		if !ok {
			return false
		}
	}
	return true
}

// parseAttrs parses `a="b" c d='e'` into a map. Later duplicates lose,
// matching the HTML spec's first-wins rule.
func parseAttrs(s string) map[string]string {
	attrs := map[string]string{}
	i := 0
	n := len(s)
	for i < n {
		for i < n && isSpace(s[i]) {
			i++
		}
		if i >= n {
			break
		}
		// Attribute name.
		start := i
		for i < n && s[i] != '=' && !isSpace(s[i]) {
			i++
		}
		name := strings.ToLower(s[start:i])
		for i < n && isSpace(s[i]) {
			i++
		}
		val := ""
		if i < n && s[i] == '=' {
			i++
			for i < n && isSpace(s[i]) {
				i++
			}
			if i < n && (s[i] == '"' || s[i] == '\'') {
				q := s[i]
				i++
				vstart := i
				for i < n && s[i] != q {
					i++
				}
				val = s[vstart:i]
				if i < n {
					i++
				}
			} else {
				vstart := i
				for i < n && !isSpace(s[i]) {
					i++
				}
				val = s[vstart:i]
			}
		}
		if name != "" {
			if _, exists := attrs[name]; !exists {
				attrs[name] = UnescapeEntities(val)
			}
		}
	}
	return attrs
}
