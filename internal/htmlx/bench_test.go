package htmlx

import (
	"strings"
	"testing"
)

func benchPage() string {
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html><html><head><title>bench</title></head><body>`)
	b.WriteString(`<form action="/results" method="get">`)
	b.WriteString(`<select name="make">`)
	for i := 0; i < 20; i++ {
		b.WriteString(`<option value="v`)
		b.WriteByte(byte('a' + i%26))
		b.WriteString(`">opt</option>`)
	}
	b.WriteString(`</select><input type="text" name="q"></form><ul>`)
	for i := 0; i < 100; i++ {
		b.WriteString(`<li><a href="/record?id=`)
		b.WriteByte(byte('0' + i%10))
		b.WriteString(`">ford focus 1993 2500 98000 seattle 98101 clean title</a></li>`)
	}
	b.WriteString(`</ul><table>`)
	for i := 0; i < 50; i++ {
		b.WriteString(`<tr><td>ford</td><td>focus</td><td>1993</td></tr>`)
	}
	b.WriteString(`</table></body></html>`)
	return b.String()
}

func BenchmarkParse(b *testing.B) {
	page := benchPage()
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Parse(page)
	}
}

func BenchmarkVisibleText(b *testing.B) {
	doc := Parse(benchPage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		VisibleText(doc)
	}
}

func BenchmarkExtractForms(b *testing.B) {
	doc := Parse(benchPage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractForms(doc)
	}
}

func BenchmarkExtractTables(b *testing.B) {
	doc := Parse(benchPage())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractTables(doc)
	}
}
