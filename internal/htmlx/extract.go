package htmlx

import (
	"net/url"
	"strings"
)

// FormDecl is a declaratively-extracted HTML form, before any semantic
// interpretation (that happens in internal/form).
type FormDecl struct {
	Action string // as written in the markup
	Method string // "get" or "post" (lower-cased; default "get")
	ID     string
	Inputs []InputDecl
}

// InputDecl is one form control.
type InputDecl struct {
	Kind    string // "text", "select", "hidden", "submit", "checkbox", "radio", "textarea", "number"
	Name    string
	Value   string       // default value
	Options []OptionDecl // for selects
	Label   string       // nearest preceding/enclosing label text, if any
}

// OptionDecl is one <option> of a select menu.
type OptionDecl struct {
	Value    string
	Label    string
	Selected bool
}

// ExtractForms returns every form declared in the document.
func ExtractForms(doc *Node) []FormDecl {
	var forms []FormDecl
	for _, f := range Find(doc, "form") {
		fd := FormDecl{
			Action: f.Attr("action"),
			Method: strings.ToLower(f.Attr("method")),
			ID:     f.Attr("id"),
		}
		if fd.Method == "" {
			fd.Method = "get"
		}
		labels := labelTexts(f)
		Walk(f, func(n *Node) bool {
			if n.Type != NodeElement {
				return true
			}
			switch n.Tag {
			case "input":
				kind := strings.ToLower(n.Attr("type"))
				if kind == "" {
					kind = "text"
				}
				fd.Inputs = append(fd.Inputs, InputDecl{
					Kind:  kind,
					Name:  n.Attr("name"),
					Value: n.Attr("value"),
					Label: labels[n.Attr("name")],
				})
			case "textarea":
				fd.Inputs = append(fd.Inputs, InputDecl{
					Kind:  "textarea",
					Name:  n.Attr("name"),
					Value: strings.TrimSpace(VisibleText(n)),
					Label: labels[n.Attr("name")],
				})
			case "select":
				in := InputDecl{Kind: "select", Name: n.Attr("name"), Label: labels[n.Attr("name")]}
				for _, opt := range Find(n, "option") {
					val, hasVal := opt.Attrs["value"]
					lbl := strings.TrimSpace(VisibleText(opt))
					if !hasVal {
						val = lbl // per HTML, a valueless option submits its label
					}
					_, selected := opt.Attrs["selected"]
					in.Options = append(in.Options, OptionDecl{Value: val, Label: lbl, Selected: selected})
				}
				fd.Inputs = append(fd.Inputs, in)
			}
			return true
		})
		forms = append(forms, fd)
	}
	return forms
}

// labelTexts maps input names to label text for <label for="..."> inside
// the form. The generator names ids after input names, which is also the
// dominant real-world convention.
func labelTexts(form *Node) map[string]string {
	m := map[string]string{}
	for _, l := range Find(form, "label") {
		if target := l.Attr("for"); target != "" {
			m[target] = strings.TrimSpace(VisibleText(l))
		}
	}
	return m
}

// ExtractLinks returns the absolute URLs of every <a href> in the
// document, resolved against base. Fragment-only, mailto and javascript
// links are dropped; order is preserved and duplicates are kept (the
// crawler dedupes).
func ExtractLinks(doc *Node, base *url.URL) []string {
	var out []string
	for _, a := range Find(doc, "a") {
		href := strings.TrimSpace(a.Attr("href"))
		if href == "" || strings.HasPrefix(href, "#") ||
			strings.HasPrefix(href, "mailto:") || strings.HasPrefix(href, "javascript:") {
			continue
		}
		u, err := url.Parse(href)
		if err != nil {
			continue
		}
		if base != nil {
			u = base.ResolveReference(u)
		}
		out = append(out, u.String())
	}
	return out
}

// TableDecl is a raw extracted HTML table.
type TableDecl struct {
	Headers []string   // from <th> cells of the first row, may be empty
	Rows    [][]string // data rows
}

// ExtractTables returns every <table> in the document as text cells.
// The first row is treated as a header row iff it contains <th> cells —
// the same heuristic the WebTables work starts from before its quality
// classifier runs.
func ExtractTables(doc *Node) []TableDecl {
	var out []TableDecl
	for _, t := range Find(doc, "table") {
		var td TableDecl
		for ri, tr := range Find(t, "tr") {
			var cells []string
			hasTH := false
			for _, c := range tr.Children {
				if c.Type != NodeElement {
					continue
				}
				switch c.Tag {
				case "th":
					hasTH = true
					cells = append(cells, strings.TrimSpace(VisibleText(c)))
				case "td":
					cells = append(cells, strings.TrimSpace(VisibleText(c)))
				}
			}
			if len(cells) == 0 {
				continue
			}
			if ri == 0 && hasTH {
				td.Headers = cells
			} else {
				td.Rows = append(td.Rows, cells)
			}
		}
		if td.Headers != nil || td.Rows != nil {
			out = append(out, td)
		}
	}
	return out
}
