package htmlx

import "strings"

// NodeType discriminates tree nodes.
type NodeType uint8

// Node types.
const (
	NodeElement NodeType = iota
	NodeText
	NodeDocument
)

// Node is one node in the parsed tree.
type Node struct {
	Type     NodeType
	Tag      string            // for elements
	Attrs    map[string]string // for elements
	Text     string            // for text nodes
	Children []*Node
	Parent   *Node
}

// Attr returns the named attribute (lower-case key) or "".
func (n *Node) Attr(name string) string {
	if n.Attrs == nil {
		return ""
	}
	return n.Attrs[name]
}

// voidElements never take children.
var voidElements = map[string]bool{
	"area": true, "base": true, "br": true, "col": true, "embed": true,
	"hr": true, "img": true, "input": true, "link": true, "meta": true,
	"param": true, "source": true, "track": true, "wbr": true,
}

// autoClose maps a tag to the set of open tags it implicitly closes:
// a new <option> closes a pending <option>, <tr> closes <tr>/<td>/<th>,
// and so on. This is the minimal recovery real-world form pages need.
var autoClose = map[string][]string{
	"option": {"option"},
	"li":     {"li"},
	"tr":     {"td", "th", "tr"},
	"td":     {"td", "th"},
	"th":     {"td", "th"},
	"p":      {"p"},
	"thead":  {"tr", "td", "th"},
	"tbody":  {"tr", "td", "th", "thead"},
}

// Parse builds a tree from HTML source. It never fails; unclosed tags
// are closed at EOF and stray end tags are ignored, like browsers do.
func Parse(src string) *Node {
	doc := &Node{Type: NodeDocument}
	stack := []*Node{doc}
	top := func() *Node { return stack[len(stack)-1] }

	appendChild := func(child *Node) {
		parent := top()
		child.Parent = parent
		parent.Children = append(parent.Children, child)
	}

	for _, tok := range Tokenize(src) {
		switch tok.Type {
		case TokenText:
			if strings.TrimSpace(tok.Text) == "" {
				continue
			}
			appendChild(&Node{Type: NodeText, Text: tok.Text})
		case TokenComment, TokenDoctype:
			// Dropped: nothing downstream consumes them.
		case TokenSelfClosing:
			appendChild(&Node{Type: NodeElement, Tag: tok.Tag, Attrs: tok.Attrs})
		case TokenStartTag:
			if closes := autoClose[tok.Tag]; closes != nil {
				for len(stack) > 1 && contains(closes, top().Tag) {
					stack = stack[:len(stack)-1]
				}
			}
			el := &Node{Type: NodeElement, Tag: tok.Tag, Attrs: tok.Attrs}
			appendChild(el)
			if !voidElements[tok.Tag] {
				stack = append(stack, el)
			}
		case TokenEndTag:
			// Pop to the nearest matching open element, if any.
			for j := len(stack) - 1; j >= 1; j-- {
				if stack[j].Tag == tok.Tag {
					stack = stack[:j]
					break
				}
			}
		}
	}
	return doc
}

func contains(xs []string, x string) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// Walk visits every node under n in document order, root first. The
// visitor returns false to prune the subtree.
func Walk(n *Node, visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		Walk(c, visit)
	}
}

// Find returns every element with the given tag under n, in document
// order.
func Find(n *Node, tag string) []*Node {
	var out []*Node
	Walk(n, func(m *Node) bool {
		if m.Type == NodeElement && m.Tag == tag {
			out = append(out, m)
		}
		return true
	})
	return out
}

// VisibleText concatenates the text nodes under n, space-separated,
// skipping script and style subtrees. It is what the IR index and the
// page signature see.
func VisibleText(n *Node) string {
	var b strings.Builder
	Walk(n, func(m *Node) bool {
		if m.Type == NodeElement && (m.Tag == "script" || m.Tag == "style") {
			return false
		}
		if m.Type == NodeText {
			if b.Len() > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(strings.TrimSpace(m.Text))
		}
		return true
	})
	return b.String()
}
