package form

import (
	"net/url"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"deepweb/internal/htmlx"
)

func parseForm(t *testing.T, page, base string) *Form {
	t.Helper()
	doc := htmlx.Parse(page)
	decls := htmlx.ExtractForms(doc)
	if len(decls) == 0 {
		t.Fatal("no forms in page")
	}
	u, err := url.Parse(base)
	if err != nil {
		t.Fatal(err)
	}
	f, err := FromDecl(u, decls[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

const searchPage = `<form action="/results" method="get">
<select name="make"><option value="">any</option><option value="ford">Ford</option><option value="honda">Honda</option></select>
<input type="text" name="minprice">
<input type="text" name="maxprice">
<input type="hidden" name="lang" value="en">
<input type="submit" value="Go">
<input type="text">
</form>`

func TestFromDeclClassification(t *testing.T) {
	f := parseForm(t, searchPage, "http://cars.example.com/search")
	if f.Site != "cars.example.com" || f.Method != "get" {
		t.Errorf("form meta wrong: %+v", f)
	}
	if f.Action.String() != "http://cars.example.com/results" {
		t.Errorf("action = %v", f.Action)
	}
	kinds := map[string]InputKind{}
	for _, in := range f.Inputs {
		kinds[in.Name] = in.Kind
	}
	if kinds["make"] != SelectMenu || kinds["minprice"] != TextBox || kinds["lang"] != Hidden {
		t.Errorf("classification wrong: %v", kinds)
	}
	mk, _ := f.Input("make")
	if !mk.HasEmpty || !reflect.DeepEqual(mk.Options, []string{"ford", "honda"}) {
		t.Errorf("select options wrong: %+v", mk)
	}
	if got := len(f.Bindable()); got != 3 {
		t.Errorf("Bindable = %d, want 3 (make, minprice, maxprice)", got)
	}
}

func TestUnnamedInputUnbindable(t *testing.T) {
	f := parseForm(t, searchPage, "http://cars.example.com/search")
	last := f.Inputs[len(f.Inputs)-1]
	if last.Kind != Unbindable {
		t.Errorf("unnamed text input should be unbindable, got %v", last.Kind)
	}
}

func TestSubmitURLCanonical(t *testing.T) {
	f := parseForm(t, searchPage, "http://cars.example.com/search")
	u1 := f.SubmitURL(Binding{"make": "ford", "minprice": "1000"})
	u2 := f.SubmitURL(Binding{"minprice": "1000", "make": "ford"})
	if u1 != u2 {
		t.Errorf("binding order changed URL: %q vs %q", u1, u2)
	}
	if !strings.Contains(u1, "lang=en") {
		t.Errorf("hidden input missing from URL: %q", u1)
	}
	if !strings.Contains(u1, "maxprice=") {
		t.Errorf("unbound input should be submitted empty: %q", u1)
	}
}

func TestSubmitURLDistinctBindingsDistinctURLs(t *testing.T) {
	f := parseForm(t, searchPage, "http://cars.example.com/search")
	a := f.SubmitURL(Binding{"make": "ford"})
	b := f.SubmitURL(Binding{"make": "honda"})
	if a == b {
		t.Error("different bindings produced the same URL")
	}
}

func TestPostFormHasNoSubmitURL(t *testing.T) {
	page := `<form action="/buy" method="POST"><input type="text" name="q"></form>`
	f := parseForm(t, page, "http://shop.example.com/")
	if got := f.SubmitURL(Binding{"q": "x"}); got != "" {
		t.Errorf("POST form yielded URL %q, want empty", got)
	}
	body := f.PostBody(Binding{"q": "x"})
	if body != "q=x" {
		t.Errorf("PostBody = %q", body)
	}
}

func TestRelativeActionResolution(t *testing.T) {
	page := `<form action="results.cgi"><input type="text" name="q"></form>`
	f := parseForm(t, page, "http://site.example.com/dir/search.html")
	if f.Action.String() != "http://site.example.com/dir/results.cgi" {
		t.Errorf("action = %v", f.Action)
	}
	if f.Method != "get" {
		t.Errorf("default method = %q, want get", f.Method)
	}
}

func TestFromDeclNilBase(t *testing.T) {
	if _, err := FromDecl(nil, htmlx.FormDecl{}, 0); err == nil {
		t.Error("want error for nil base")
	}
}

func TestBindingNamesSorted(t *testing.T) {
	b := Binding{"zeta": "1", "alpha": "2", "mid": "3"}
	got := b.BindingNames()
	want := []string{"alpha", "mid", "zeta"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BindingNames = %v, want %v", got, want)
	}
}

func TestBindingClone(t *testing.T) {
	b := Binding{"a": "1"}
	c := b.Clone()
	c["a"] = "2"
	if b["a"] != "1" {
		t.Error("Clone aliases original")
	}
}

func TestInputKindString(t *testing.T) {
	if TextBox.String() != "textbox" || SelectMenu.String() != "select" ||
		Hidden.String() != "hidden" || Unbindable.String() != "unbindable" {
		t.Error("InputKind.String wrong")
	}
}

// Property: SubmitURL is deterministic and parses back to the same
// query values that were bound.
func TestSubmitURLPropertyRoundTrip(t *testing.T) {
	f := parseForm(t, searchPage, "http://cars.example.com/search")
	check := func(mk uint8, lo, hi uint16) bool {
		makes := []string{"ford", "honda"}
		b := Binding{
			"make":     makes[int(mk)%2],
			"minprice": url.QueryEscape(strings.Repeat("9", int(lo)%4+1)),
			"maxprice": strings.Repeat("8", int(hi)%4+1),
		}
		u, err := url.Parse(f.SubmitURL(b))
		if err != nil {
			return false
		}
		q := u.Query()
		return q.Get("make") == b["make"] && q.Get("maxprice") == b["maxprice"] && q.Get("lang") == "en"
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}
