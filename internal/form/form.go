// Package form turns syntactic form declarations (internal/htmlx) into
// the semantic model the surfacing engine and the mediator both consume:
// which controls are bindable, what their value domains are, and how a
// concrete binding becomes a submission URL.
//
// The model deliberately stops short of interpreting what inputs *mean* —
// per the paper (§4), surfacing needs input data types and input
// correlations, not form semantics; those analyses live in internal/core.
package form

import (
	"fmt"
	"net/url"
	"sort"
	"strings"

	"deepweb/internal/htmlx"
)

// InputKind classifies a form control by how it can be bound.
type InputKind uint8

// Input kinds. TextBox covers <input type=text|search|number> and
// <textarea>; SelectMenu covers <select>; Hidden inputs are submitted
// with their fixed value; Unbindable covers submit/button/checkbox
// controls the surfacer leaves alone.
const (
	TextBox InputKind = iota
	SelectMenu
	Hidden
	Unbindable
)

func (k InputKind) String() string {
	switch k {
	case TextBox:
		return "textbox"
	case SelectMenu:
		return "select"
	case Hidden:
		return "hidden"
	default:
		return "unbindable"
	}
}

// Input is one named control of a form.
type Input struct {
	Name    string
	Kind    InputKind
	Label   string   // human label, when the page provided one
	Options []string // select-menu values, excluding the empty "any" option
	// HasEmpty records whether the select offered an empty/wildcard
	// option; submitting it means "unconstrained".
	HasEmpty bool
	Default  string // default/hidden value
}

// Form is a fully-resolved, submittable form.
type Form struct {
	// ID uniquely identifies the form within an experiment run
	// (host + action path + index on page).
	ID     string
	Site   string // host that served the page
	Action *url.URL
	Method string // "get" or "post"
	Inputs []Input
}

// FromDecl resolves a declaration extracted at base into a Form.
// Unnamed controls and buttons are classified Unbindable but retained so
// indices line up with the page.
func FromDecl(base *url.URL, d htmlx.FormDecl, idx int) (*Form, error) {
	if base == nil {
		return nil, fmt.Errorf("form: nil base URL")
	}
	actionURL, err := url.Parse(d.Action)
	if err != nil {
		return nil, fmt.Errorf("form: bad action %q: %w", d.Action, err)
	}
	f := &Form{
		ID:     fmt.Sprintf("%s%s#%d", base.Host, base.ResolveReference(actionURL).Path, idx),
		Site:   base.Host,
		Action: base.ResolveReference(actionURL),
		Method: strings.ToLower(d.Method),
	}
	if f.Method == "" {
		f.Method = "get"
	}
	for _, in := range d.Inputs {
		f.Inputs = append(f.Inputs, classify(in))
	}
	return f, nil
}

func classify(in htmlx.InputDecl) Input {
	out := Input{Name: in.Name, Label: in.Label, Default: in.Value}
	switch in.Kind {
	case "select":
		out.Kind = SelectMenu
		for _, o := range in.Options {
			if strings.TrimSpace(o.Value) == "" {
				out.HasEmpty = true
				continue
			}
			out.Options = append(out.Options, o.Value)
		}
	case "text", "search", "number", "textarea", "":
		out.Kind = TextBox
	case "hidden":
		out.Kind = Hidden
	default: // submit, button, checkbox, radio, reset, image...
		out.Kind = Unbindable
	}
	if in.Name == "" {
		out.Kind = Unbindable
	}
	return out
}

// Bindable returns the inputs a surfacer may assign values to: named
// text boxes and select menus.
func (f *Form) Bindable() []Input {
	var out []Input
	for _, in := range f.Inputs {
		if in.Kind == TextBox || in.Kind == SelectMenu {
			out = append(out, in)
		}
	}
	return out
}

// Input returns the named input and whether it exists.
func (f *Form) Input(name string) (Input, bool) {
	for _, in := range f.Inputs {
		if in.Name == name {
			return in, true
		}
	}
	return Input{}, false
}

// Binding assigns concrete values to a subset of a form's inputs.
// Inputs absent from the binding are submitted empty (text boxes) or as
// their wildcard option (selects) — exactly what a browser sends when a
// user leaves them untouched.
type Binding map[string]string

// SubmitURL renders the GET submission URL for a binding: hidden inputs
// carry their fixed values, bound inputs their assigned values, unbound
// bindable inputs empty strings. Parameter order is canonicalized
// (url.Values.Encode sorts by key) so URL equality is binding equality.
// POST forms have no surfaceable URL; SubmitURL returns "" for them
// (paper §3.2: "surfacing cannot be applied to HTML forms that use the
// POST method").
func (f *Form) SubmitURL(b Binding) string {
	if f.Method != "get" {
		return ""
	}
	q := f.values(b)
	u := *f.Action
	u.RawQuery = q.Encode()
	return u.String()
}

// PostBody renders the application/x-www-form-urlencoded body for a POST
// submission with the given binding; the mediator uses this (it can
// query POST forms even though the surfacer cannot index them).
func (f *Form) PostBody(b Binding) string {
	return f.values(b).Encode()
}

func (f *Form) values(b Binding) url.Values {
	q := url.Values{}
	for _, in := range f.Inputs {
		switch in.Kind {
		case Hidden:
			q.Set(in.Name, in.Default)
		case TextBox, SelectMenu:
			if v, ok := b[in.Name]; ok {
				q.Set(in.Name, v)
			} else {
				q.Set(in.Name, "")
			}
		}
	}
	return q
}

// BindingNames returns the sorted input names bound in b; two bindings
// over the same names belong to the same query template.
func (b Binding) BindingNames() []string {
	names := make([]string, 0, len(b))
	for n := range b {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Clone returns an independent copy of the binding.
func (b Binding) Clone() Binding {
	c := make(Binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}
