// Package resilient is the fetch path's fault armor. The paper's
// surfacing system probed millions of real deep-web forms, where slow,
// flaky, rate-limiting and garbage-emitting sites are the norm — so
// every fetch the engine issues flows through this package's
// RoundTripper, which adds what a bare transport lacks:
//
//   - an error taxonomy (transient vs. permanent, typed wrapped errors
//     testable with errors.Is), so callers can tell "retry later and it
//     may heal" from "this will never work";
//   - bounded retries with capped exponential backoff + full jitter,
//     per-attempt timeouts carved from the request deadline, and
//     ctx-aware sleeps (a canceled caller never waits out a backoff);
//   - a per-host three-state circuit breaker (closed → open →
//     half-open), so a host that is down stops soaking up attempts and
//     is re-probed with a single trial request after a cooldown;
//   - atomic counters, global and per host, so the engine can attribute
//     every fault to the site that suffered it and the admin API can
//     report the fetch stack's health.
//
// The transport buffers each response body (bounded by MaxBodyBytes),
// which is what makes truncated bodies retryable: a mid-body read error
// surfaces here, inside the retry loop, instead of at some distant
// io.ReadAll. Responses with retryable statuses (408/429/5xx) are
// retried too; when attempts run out the last response is returned, not
// an error — error pages are real observations the layers above reason
// about.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"
)

// Class partitions fetch failures by what a caller should do about
// them: transient failures may heal on retry (now, or on the next
// refresh pass); permanent ones will not.
type Class int

const (
	// ClassTransient marks failures worth retrying: timeouts, resets,
	// truncated bodies, 5xx/429 statuses, open circuits — and, by
	// default, anything unrecognized (retrying something permanent
	// wastes a little budget; not retrying something transient loses
	// corpus).
	ClassTransient Class = iota
	// ClassPermanent marks failures no retry can fix: non-retryable 4xx
	// statuses and oversized bodies.
	ClassPermanent
)

func (c Class) String() string {
	if c == ClassPermanent {
		return "permanent"
	}
	return "transient"
}

// Sentinels for errors.Is tests against the taxonomy.
var (
	// ErrTransient matches any *Error of ClassTransient.
	ErrTransient = errors.New("resilient: transient failure")
	// ErrPermanent matches any *Error of ClassPermanent.
	ErrPermanent = errors.New("resilient: permanent failure")
	// ErrCircuitOpen marks a request refused locally because the host's
	// circuit breaker is open (cooling down after consecutive failures).
	ErrCircuitOpen = errors.New("resilient: circuit open")
	// ErrBodyTooLarge marks a response body that exceeded MaxBodyBytes.
	ErrBodyTooLarge = errors.New("resilient: response body exceeds cap")
)

// NoRetryHeader marks a response that must not be retried regardless of
// its status — set by layers that answer requests locally on purpose
// (the engine's politeness cap serves 429s this way; backing off and
// re-asking would just burn the very budget the cap protects).
const NoRetryHeader = "X-Resilient-No-Retry"

// Error is a classified fetch failure: the taxonomy class, the host it
// happened against, how many attempts were spent, and the underlying
// cause. errors.Is(err, ErrTransient/ErrPermanent) tests the class;
// Unwrap exposes the cause (so context.Canceled etc. stay testable).
type Error struct {
	Class    Class
	Host     string
	Attempts int
	Err      error
}

func (e *Error) Error() string {
	return fmt.Sprintf("resilient: %s: %s failure after %d attempt(s): %v", e.Host, e.Class, e.Attempts, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Is matches the class sentinels, so the taxonomy is testable without
// reaching into the struct.
func (e *Error) Is(target error) bool {
	switch target {
	case ErrTransient:
		return e.Class == ClassTransient
	case ErrPermanent:
		return e.Class == ClassPermanent
	}
	return false
}

// ClassOf classifies any error against the taxonomy. Explicitly typed
// errors answer for themselves; everything else defaults to transient —
// the safe default, because a transiently-classified site is left
// unrecorded and healed by the next refresh, while a permanent
// misclassification would freeze a recoverable failure.
func ClassOf(err error) Class {
	var re *Error
	if errors.As(err, &re) {
		return re.Class
	}
	if errors.Is(err, ErrBodyTooLarge) {
		return ClassPermanent
	}
	return ClassTransient
}

// RetryableStatus reports whether an HTTP status is worth retrying:
// rate limiting (429), request timeout (408) and server errors (5xx).
// Other 4xx are the server answering definitively — permanent.
func RetryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusRequestTimeout || code >= 500
}

// StatusError wraps a failing HTTP status as a classified error —
// the bridge for callers that treat a non-2xx page as a failure (the
// prober, the surfacer's homepage fetch).
func StatusError(host string, code int) error {
	class := ClassPermanent
	if RetryableStatus(code) {
		class = ClassTransient
	}
	return &Error{Class: class, Host: host, Attempts: 1, Err: fmt.Errorf("status %d", code)}
}

// isTimeout reports whether err is a timeout: a deadline-exceeded
// context or a net.Error that says so.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// sleepCtx is the default Sleep: a timer that a canceled context
// interrupts promptly, returning the context's error.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}
