package resilient

import (
	"bytes"
	"context"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Options tunes the retrying transport. The zero value of any field
// falls back to a sane default at construction; the func fields exist
// so tests can pin time and randomness (deterministic backoff, instant
// sleeps, a fake clock for breaker cooldowns).
type Options struct {
	// MaxAttempts bounds total tries per request (1 = no retries).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff: the delay cap before
	// attempt n+1 is min(MaxDelay, BaseDelay << (n-1)).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth.
	MaxDelay time.Duration
	// PerAttemptTimeout bounds each individual attempt, carved from the
	// request's own deadline (whichever expires first wins).
	PerAttemptTimeout time.Duration
	// MaxBodyBytes caps the buffered response body; larger bodies fail
	// permanently with ErrBodyTooLarge. <= 0 means unlimited.
	MaxBodyBytes int64
	// BreakerThreshold is the consecutive-failure count that opens a
	// host's circuit. <= 0 disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit refuses requests
	// before letting one probe through (half-open).
	BreakerCooldown time.Duration

	// Rand returns a float64 in [0,1) for full-jitter backoff. Must be
	// safe for concurrent use. Defaults to math/rand's global source.
	Rand func() float64
	// Sleep waits out a backoff delay; it must return the context's
	// error promptly if ctx is canceled mid-sleep. Defaults to a
	// timer-based ctx-aware sleep.
	Sleep func(ctx context.Context, d time.Duration) error
	// Now is the breaker's clock. Defaults to time.Now.
	Now func() time.Time
}

// Defaults are the production settings: three attempts with 50ms..2s
// full-jitter backoff, 10s per attempt, 8MB bodies, and a breaker that
// opens after 5 consecutive failures for a 15s cooldown.
func Defaults() Options {
	return Options{
		MaxAttempts:       3,
		BaseDelay:         50 * time.Millisecond,
		MaxDelay:          2 * time.Second,
		PerAttemptTimeout: 10 * time.Second,
		MaxBodyBytes:      8 << 20,
		BreakerThreshold:  5,
		BreakerCooldown:   15 * time.Second,
	}
}

// Stats are the transport's cumulative counters. Attempts counts every
// wire try; Retries the tries after the first; Timeouts the attempts
// that died on a deadline; BreakerTrips the closed→open and
// half-open→open transitions; TransientFailures and PermanentFailures
// count logical fetches (not attempts) that ended in each class —
// including retryable-status responses handed back after exhaustion.
type Stats struct {
	Attempts          uint64 `json:"attempts"`
	Retries           uint64 `json:"retries"`
	Timeouts          uint64 `json:"timeouts"`
	BreakerTrips      uint64 `json:"breaker_trips"`
	TransientFailures uint64 `json:"transient_failures"`
	PermanentFailures uint64 `json:"permanent_failures"`
}

// HostStats are one host's counters plus its breaker state
// ("closed", "open" or "half-open").
type HostStats struct {
	Stats
	Breaker string `json:"breaker"`
}

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// hostState is one host's counters and circuit breaker. Counters are
// atomics (read by stats endpoints while fetches run); the breaker's
// state machine is guarded by mu.
type hostState struct {
	attempts  atomic.Uint64
	retries   atomic.Uint64
	timeouts  atomic.Uint64
	trips     atomic.Uint64
	transient atomic.Uint64
	permanent atomic.Uint64

	mu          sync.Mutex
	state       int
	consecFails int
	openedUntil time.Time
	probing     bool
}

// allow reports whether a request may proceed under the breaker. An
// open circuit past its cooldown flips to half-open and admits exactly
// one probe; concurrent requests during the probe are refused.
func (h *hostState) allow(threshold int, cooldown time.Duration, now time.Time) bool {
	if threshold <= 0 {
		return true
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if now.Before(h.openedUntil) {
			return false
		}
		h.state = breakerHalfOpen
		h.probing = true
		return true
	default: // half-open
		if h.probing {
			return false
		}
		h.probing = true
		return true
	}
}

// onSuccess records a healthy exchange: resets the failure streak and
// closes a half-open circuit whose probe just succeeded.
func (h *hostState) onSuccess(threshold int) {
	if threshold <= 0 {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails = 0
	h.probing = false
	h.state = breakerClosed
}

// onFailure records a failed exchange; returns true when it tripped
// the circuit open (closed past threshold, or a failed half-open probe).
func (h *hostState) onFailure(threshold int, cooldown time.Duration, now time.Time) bool {
	if threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.consecFails++
	h.probing = false
	switch h.state {
	case breakerHalfOpen:
		h.state = breakerOpen
		h.openedUntil = now.Add(cooldown)
		return true
	case breakerClosed:
		if h.consecFails >= threshold {
			h.state = breakerOpen
			h.openedUntil = now.Add(cooldown)
			return true
		}
	}
	return false
}

func (h *hostState) breakerName() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	switch h.state {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// Transport is the retrying RoundTripper. It owns the per-host breaker
// and counter state; wrap any base transport (the virtual web, a chaos
// transport, a real http.Transport) with NewTransport.
type Transport struct {
	base http.RoundTripper
	opts Options

	attempts  atomic.Uint64
	retries   atomic.Uint64
	timeouts  atomic.Uint64
	trips     atomic.Uint64
	transient atomic.Uint64
	permanent atomic.Uint64

	mu    sync.Mutex
	hosts map[string]*hostState
}

// NewTransport wraps base with retries, per-attempt timeouts, body
// capping and a per-host circuit breaker per opts.
func NewTransport(base http.RoundTripper, opts Options) *Transport {
	if opts.MaxAttempts < 1 {
		opts.MaxAttempts = 1
	}
	if opts.Rand == nil {
		opts.Rand = rand.Float64
	}
	if opts.Sleep == nil {
		opts.Sleep = sleepCtx
	}
	if opts.Now == nil {
		opts.Now = time.Now
	}
	return &Transport{base: base, opts: opts, hosts: make(map[string]*hostState)}
}

func (t *Transport) host(name string) *hostState {
	t.mu.Lock()
	defer t.mu.Unlock()
	h := t.hosts[name]
	if h == nil {
		h = &hostState{}
		t.hosts[name] = h
	}
	return h
}

// Stats snapshots the global counters.
func (t *Transport) Stats() Stats {
	return Stats{
		Attempts:          t.attempts.Load(),
		Retries:           t.retries.Load(),
		Timeouts:          t.timeouts.Load(),
		BreakerTrips:      t.trips.Load(),
		TransientFailures: t.transient.Load(),
		PermanentFailures: t.permanent.Load(),
	}
}

// HostStats snapshots one host's counters (zero value for a host the
// transport has never fetched from).
func (t *Transport) HostStats(host string) HostStats {
	t.mu.Lock()
	h := t.hosts[host]
	t.mu.Unlock()
	if h == nil {
		return HostStats{Breaker: "closed"}
	}
	return HostStats{
		Stats: Stats{
			Attempts:          h.attempts.Load(),
			Retries:           h.retries.Load(),
			Timeouts:          h.timeouts.Load(),
			BreakerTrips:      h.trips.Load(),
			TransientFailures: h.transient.Load(),
			PermanentFailures: h.permanent.Load(),
		},
		Breaker: h.breakerName(),
	}
}

// AllHostStats snapshots every host the transport has seen.
func (t *Transport) AllHostStats() map[string]HostStats {
	t.mu.Lock()
	names := make([]string, 0, len(t.hosts))
	for name := range t.hosts {
		names = append(names, name)
	}
	t.mu.Unlock()
	out := make(map[string]HostStats, len(names))
	for _, name := range names {
		out[name] = t.HostStats(name)
	}
	return out
}

// markTimeout bumps the timeout counters when an attempt died on a
// deadline.
func (t *Transport) markTimeout(h *hostState, err error) {
	if isTimeout(err) {
		t.timeouts.Add(1)
		h.timeouts.Add(1)
	}
}

// failTransient finalizes a logical fetch as a transient failure.
func (t *Transport) failTransient(h *hostState, host string, attempts int, err error) error {
	t.transient.Add(1)
	h.transient.Add(1)
	return &Error{Class: ClassTransient, Host: host, Attempts: attempts, Err: err}
}

// failPermanent finalizes a logical fetch as a permanent failure.
func (t *Transport) failPermanent(h *hostState, host string, attempts int, err error) error {
	t.permanent.Add(1)
	h.permanent.Add(1)
	return &Error{Class: ClassPermanent, Host: host, Attempts: attempts, Err: err}
}

// backoffFor returns the full-jitter delay before the attempt after
// attempt n (1-based): rand() * min(MaxDelay, BaseDelay << (n-1)).
func (t *Transport) backoffFor(attempt int) time.Duration {
	if t.opts.BaseDelay <= 0 {
		return 0
	}
	ceil := t.opts.BaseDelay
	for i := 1; i < attempt; i++ {
		ceil *= 2
		if t.opts.MaxDelay > 0 && ceil >= t.opts.MaxDelay {
			ceil = t.opts.MaxDelay
			break
		}
	}
	return time.Duration(t.opts.Rand() * float64(ceil))
}

// bufferBody drains body into memory (bounded by cap), closes it, and
// returns a replayable reader. A mid-read error surfaces here — inside
// the retry loop — instead of at a distant io.ReadAll; a body past the
// cap returns ErrBodyTooLarge.
func bufferBody(body io.ReadCloser, capBytes int64) (io.ReadCloser, error) {
	if body == nil {
		return http.NoBody, nil
	}
	defer body.Close()
	var r io.Reader = body
	if capBytes > 0 {
		r = io.LimitReader(body, capBytes+1)
	}
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if capBytes > 0 && int64(len(buf)) > capBytes {
		return nil, ErrBodyTooLarge
	}
	return io.NopCloser(bytes.NewReader(buf)), nil
}

// RoundTrip runs the retry loop: breaker gate, per-attempt timeout,
// body buffering, classification, jittered backoff. Retryable-status
// responses (408/429/5xx) that survive all attempts are returned as
// responses, not errors — an error page is a real observation for the
// layers above; errors are reserved for exchanges that produced no
// response at all. A response carrying NoRetryHeader is never retried
// and never counts against the breaker.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	h := t.host(host)
	ctx := req.Context()

	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, t.failTransient(h, host, attempt-1, err)
		}
		if !h.allow(t.opts.BreakerThreshold, t.opts.BreakerCooldown, t.opts.Now()) {
			return nil, t.failTransient(h, host, attempt-1, ErrCircuitOpen)
		}

		resp, err := t.attempt(ctx, req, h, attempt)

		if err == nil {
			if !RetryableStatus(resp.StatusCode) {
				// Success or a definitive 4xx — either way the host
				// answered; the breaker cares about reachability, not
				// application-level rejection.
				h.onSuccess(t.opts.BreakerThreshold)
				return resp, nil
			}
			if resp.Header.Get(NoRetryHeader) != "" {
				// A layer below answered locally and on purpose (e.g.
				// the politeness cap's 429); retrying would burn the
				// very budget it protects, and it says nothing about
				// the real host's health.
				t.transient.Add(1)
				h.transient.Add(1)
				return resp, nil
			}
			if tripped := h.onFailure(t.opts.BreakerThreshold, t.opts.BreakerCooldown, t.opts.Now()); tripped {
				t.trips.Add(1)
				h.trips.Add(1)
			}
			if attempt >= t.opts.MaxAttempts || !rewindable(req) {
				t.transient.Add(1)
				h.transient.Add(1)
				return resp, nil
			}
		} else {
			// The original request's context ending takes precedence
			// over any classification: the caller is gone.
			if ctxErr := ctx.Err(); ctxErr != nil {
				return nil, t.failTransient(h, host, attempt, ctxErr)
			}
			t.markTimeout(h, err)
			if errors.Is(err, ErrBodyTooLarge) {
				// The host delivered fine; the body is just over our
				// cap. Not a breaker failure, and no retry can shrink it.
				h.onSuccess(t.opts.BreakerThreshold)
				return nil, t.failPermanent(h, host, attempt, err)
			}
			if tripped := h.onFailure(t.opts.BreakerThreshold, t.opts.BreakerCooldown, t.opts.Now()); tripped {
				t.trips.Add(1)
				h.trips.Add(1)
			}
			if attempt >= t.opts.MaxAttempts || !rewindable(req) {
				return nil, t.failTransient(h, host, attempt, err)
			}
		}

		if serr := t.opts.Sleep(ctx, t.backoffFor(attempt)); serr != nil {
			return nil, t.failTransient(h, host, attempt, serr)
		}
	}
}

// attempt runs one wire try: clone the request under a per-attempt
// timeout, rewind the body if this is a retry, and buffer the response
// body so truncation errors surface here.
func (t *Transport) attempt(ctx context.Context, req *http.Request, h *hostState, attempt int) (*http.Response, error) {
	t.attempts.Add(1)
	h.attempts.Add(1)
	if attempt > 1 {
		t.retries.Add(1)
		h.retries.Add(1)
	}

	attemptReq := req
	cancel := func() {}
	if t.opts.PerAttemptTimeout > 0 {
		var actx context.Context
		actx, cancel = context.WithTimeout(ctx, t.opts.PerAttemptTimeout)
		attemptReq = req.Clone(actx)
	} else if attempt > 1 {
		attemptReq = req.Clone(ctx)
	}
	if attempt > 1 && req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			cancel()
			return nil, err
		}
		attemptReq.Body = body
	}

	resp, err := t.base.RoundTrip(attemptReq)
	if err == nil {
		resp.Body, err = bufferBody(resp.Body, t.opts.MaxBodyBytes)
		if err != nil {
			resp = nil
		}
	}
	// The body (if any) is fully in memory by now, so releasing the
	// attempt context cannot interrupt a read.
	cancel()
	return resp, err
}

// rewindable reports whether the request can be re-sent: bodyless
// requests always can; requests with a body need GetBody to replay it.
func rewindable(req *http.Request) bool {
	return req.Body == nil || req.GetBody != nil
}
