package resilient

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeRT scripts the base transport: fn sees the 1-based call number.
type fakeRT struct {
	mu    sync.Mutex
	calls int
	fn    func(call int, req *http.Request) (*http.Response, error)
}

func (f *fakeRT) RoundTrip(req *http.Request) (*http.Response, error) {
	f.mu.Lock()
	f.calls++
	n := f.calls
	f.mu.Unlock()
	return f.fn(n, req)
}

func (f *fakeRT) callCount() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.calls
}

func respOf(status int, body string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(body)),
	}
}

// instant returns options with no real sleeping and pinned randomness,
// so retry tests run in microseconds.
func instant(attempts int) Options {
	return Options{
		MaxAttempts: attempts,
		BaseDelay:   time.Nanosecond,
		MaxDelay:    time.Nanosecond,
		Rand:        func() float64 { return 0.5 },
		Sleep:       func(ctx context.Context, d time.Duration) error { return ctx.Err() },
	}
}

func getReq(t *testing.T, url string) *http.Request {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return req
}

func TestErrorTaxonomy(t *testing.T) {
	cause := errors.New("boom")
	tr := &Error{Class: ClassTransient, Host: "a.example", Attempts: 3, Err: cause}
	pe := &Error{Class: ClassPermanent, Host: "a.example", Attempts: 1, Err: cause}

	if !errors.Is(tr, ErrTransient) || errors.Is(tr, ErrPermanent) {
		t.Fatalf("transient error misclassified by errors.Is: %v", tr)
	}
	if !errors.Is(pe, ErrPermanent) || errors.Is(pe, ErrTransient) {
		t.Fatalf("permanent error misclassified by errors.Is: %v", pe)
	}
	if !errors.Is(tr, cause) {
		t.Fatalf("wrapped cause not reachable via errors.Is")
	}
	if ClassOf(tr) != ClassTransient || ClassOf(pe) != ClassPermanent {
		t.Fatalf("ClassOf disagrees with the typed error's class")
	}
	if ClassOf(errors.New("mystery")) != ClassTransient {
		t.Fatalf("unknown errors must default to transient (the healable class)")
	}
	if ClassOf(fmt.Errorf("wrap: %w", ErrBodyTooLarge)) != ClassPermanent {
		t.Fatalf("body-too-large must classify permanent")
	}
	if !errors.Is(StatusError("a", 503), ErrTransient) {
		t.Fatalf("503 must classify transient")
	}
	if !errors.Is(StatusError("a", 404), ErrPermanent) {
		t.Fatalf("404 must classify permanent")
	}
}

func TestRetryOn5xxThenSuccess(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		if call < 3 {
			return respOf(503, "down"), nil
		}
		return respOf(200, "ok"), nil
	}}
	tr := NewTransport(base, instant(3))
	resp, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, want 200 after retries", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "ok" {
		t.Fatalf("body = %q, want replayable buffered body", b)
	}
	st := tr.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.TransientFailures != 0 {
		t.Fatalf("stats = %+v, want 3 attempts / 2 retries / 0 transient failures", st)
	}
	hs := tr.HostStats("a.example")
	if hs.Attempts != 3 || hs.Retries != 2 {
		t.Fatalf("host stats = %+v, want attempts/retries attributed to a.example", hs)
	}
}

func TestExhaustedRetriesReturnLastResponse(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		return respOf(503, "still down"), nil
	}}
	tr := NewTransport(base, instant(3))
	resp, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if err != nil {
		t.Fatalf("exhausted retryable status must return the response, got err %v", err)
	}
	if resp.StatusCode != 503 {
		t.Fatalf("status = %d, want the last 503", resp.StatusCode)
	}
	st := tr.Stats()
	if st.Attempts != 3 || st.TransientFailures != 1 {
		t.Fatalf("stats = %+v, want 3 attempts and exactly 1 transient failure (logical fetch, not per attempt)", st)
	}
}

func TestNoRetryHeaderShortCircuits(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		r := respOf(429, "cap reached")
		r.Header.Set(NoRetryHeader, "1")
		return r, nil
	}}
	opts := instant(5)
	opts.BreakerThreshold = 1
	opts.BreakerCooldown = time.Hour
	tr := NewTransport(base, opts)
	resp, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if err != nil || resp.StatusCode != 429 {
		t.Fatalf("resp=%v err=%v, want the 429 back unretried", resp, err)
	}
	if base.callCount() != 1 {
		t.Fatalf("base saw %d calls, want 1: NoRetryHeader responses must not be retried", base.callCount())
	}
	if hs := tr.HostStats("a.example"); hs.Breaker != "closed" || hs.BreakerTrips != 0 {
		t.Fatalf("breaker = %+v, want untouched by locally-answered 429s", hs)
	}
}

func TestPermanent4xxNotRetried(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		return respOf(404, "nope"), nil
	}}
	tr := NewTransport(base, instant(5))
	resp, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if err != nil || resp.StatusCode != 404 {
		t.Fatalf("resp=%v err=%v, want the 404 back", resp, err)
	}
	if base.callCount() != 1 {
		t.Fatalf("base saw %d calls, want 1: definitive 4xx must not be retried", base.callCount())
	}
}

func TestPerAttemptTimeoutRetries(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		if call == 1 {
			<-req.Context().Done()
			return nil, req.Context().Err()
		}
		return respOf(200, "ok"), nil
	}}
	opts := instant(3)
	opts.PerAttemptTimeout = 5 * time.Millisecond
	tr := NewTransport(base, opts)
	resp, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("resp=%v err=%v, want a timed-out attempt to be retried to success", resp, err)
	}
	if st := tr.Stats(); st.Timeouts != 1 || st.Retries != 1 {
		t.Fatalf("stats = %+v, want 1 timeout and 1 retry", st)
	}
}

func TestBodyCapIsPermanent(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		return respOf(200, strings.Repeat("x", 100)), nil
	}}
	opts := instant(5)
	opts.MaxBodyBytes = 10
	tr := NewTransport(base, opts)
	_, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if !errors.Is(err, ErrBodyTooLarge) || !errors.Is(err, ErrPermanent) {
		t.Fatalf("err = %v, want permanent ErrBodyTooLarge", err)
	}
	if base.callCount() != 1 {
		t.Fatalf("base saw %d calls, want 1: an oversized body cannot shrink on retry", base.callCount())
	}
	if st := tr.Stats(); st.PermanentFailures != 1 {
		t.Fatalf("stats = %+v, want 1 permanent failure", st)
	}
}

// errReader yields some bytes then fails, like a connection dying
// mid-body.
type errReader struct{ n int }

func (e *errReader) Read(p []byte) (int, error) {
	if e.n > 0 {
		e.n--
		p[0] = 'x'
		return 1, nil
	}
	return 0, io.ErrUnexpectedEOF
}

func (e *errReader) Close() error { return nil }

func TestTruncatedBodyRetries(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		if call == 1 {
			return &http.Response{StatusCode: 200, Header: http.Header{}, Body: &errReader{n: 3}}, nil
		}
		return respOf(200, "whole"), nil
	}}
	tr := NewTransport(base, instant(3))
	resp, err := tr.RoundTrip(getReq(t, "http://a.example/"))
	if err != nil {
		t.Fatalf("RoundTrip: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != "whole" {
		t.Fatalf("body = %q: a truncated body must be retried inside the transport, not surface at io.ReadAll", b)
	}
}

func TestPostRetriesRewindBody(t *testing.T) {
	var seen []string
	var mu sync.Mutex
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		b, _ := io.ReadAll(req.Body)
		mu.Lock()
		seen = append(seen, string(b))
		mu.Unlock()
		if call == 1 {
			return respOf(503, "down"), nil
		}
		return respOf(200, "ok"), nil
	}}
	tr := NewTransport(base, instant(3))
	req, err := http.NewRequest(http.MethodPost, "http://a.example/search", strings.NewReader("q=ford"))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := tr.RoundTrip(req)
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("resp=%v err=%v", resp, err)
	}
	if len(seen) != 2 || seen[0] != "q=ford" || seen[1] != "q=ford" {
		t.Fatalf("bodies seen = %q, want the POST body replayed intact on retry", seen)
	}
}

func TestBreakerOpensRefusesAndRecovers(t *testing.T) {
	var failing = true
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		if failing {
			return nil, errors.New("connection refused")
		}
		return respOf(200, "ok"), nil
	}}
	now := time.Unix(1000, 0)
	opts := instant(1) // one attempt per fetch so failures map 1:1
	opts.BreakerThreshold = 3
	opts.BreakerCooldown = 10 * time.Second
	opts.Now = func() time.Time { return now }
	tr := NewTransport(base, opts)

	req := func() *http.Request { return getReq(t, "http://a.example/") }
	for i := 0; i < 3; i++ {
		if _, err := tr.RoundTrip(req()); err == nil {
			t.Fatalf("fetch %d should fail", i)
		}
	}
	if hs := tr.HostStats("a.example"); hs.Breaker != "open" || hs.BreakerTrips != 1 {
		t.Fatalf("after threshold failures breaker = %+v, want open with 1 trip", hs)
	}

	// While open, requests are refused locally without touching base.
	calls := base.callCount()
	_, err := tr.RoundTrip(req())
	if !errors.Is(err, ErrCircuitOpen) || !errors.Is(err, ErrTransient) {
		t.Fatalf("open-circuit err = %v, want transient ErrCircuitOpen", err)
	}
	if base.callCount() != calls {
		t.Fatalf("open circuit leaked a request to the base transport")
	}

	// Past the cooldown a single probe goes through; its success closes
	// the circuit.
	failing = false
	now = now.Add(11 * time.Second)
	if _, err := tr.RoundTrip(req()); err != nil {
		t.Fatalf("half-open probe: %v", err)
	}
	if hs := tr.HostStats("a.example"); hs.Breaker != "closed" {
		t.Fatalf("after successful probe breaker = %+v, want closed", hs)
	}
	if _, err := tr.RoundTrip(req()); err != nil {
		t.Fatalf("closed circuit: %v", err)
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		return nil, errors.New("connection refused")
	}}
	now := time.Unix(1000, 0)
	opts := instant(1)
	opts.BreakerThreshold = 2
	opts.BreakerCooldown = 10 * time.Second
	opts.Now = func() time.Time { return now }
	tr := NewTransport(base, opts)

	for i := 0; i < 2; i++ {
		tr.RoundTrip(getReq(t, "http://a.example/")) //nolint:errcheck // driving the breaker open
	}
	now = now.Add(11 * time.Second)
	if _, err := tr.RoundTrip(getReq(t, "http://a.example/")); err == nil {
		t.Fatalf("failing probe should error")
	}
	hs := tr.HostStats("a.example")
	if hs.Breaker != "open" || hs.BreakerTrips != 2 {
		t.Fatalf("after failed probe breaker = %+v, want re-opened with 2 trips", hs)
	}
}

// TestCancelInterruptsBackoff pins the satellite requirement: a
// canceled context interrupts the retry sleep promptly (bounded
// wall-clock) and surfaces as the wrapped ctx error, not a
// retry-exhausted error.
func TestCancelInterruptsBackoff(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		return respOf(503, "down"), nil
	}}
	opts := Options{
		MaxAttempts: 5,
		BaseDelay:   30 * time.Second, // a sleep the test must never wait out
		MaxDelay:    30 * time.Second,
		Rand:        func() float64 { return 0.999 },
	}
	tr := NewTransport(base, opts)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://a.example/", nil)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = tr.RoundTrip(req)
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v to interrupt the backoff sleep", elapsed)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want the wrapped ctx error, not a retry-exhausted error", err)
	}
	if !errors.Is(err, ErrTransient) {
		t.Fatalf("err = %v, want it classified in the taxonomy", err)
	}
	var re *Error
	if !errors.As(err, &re) || re.Host != "a.example" {
		t.Fatalf("err = %v, want a typed *Error carrying the host", err)
	}
}

func TestBackoffDeterministicWithInjectedRand(t *testing.T) {
	opts := Defaults()
	opts.Rand = func() float64 { return 1.0 } // upper edge: delay == ceiling
	tr := NewTransport(http.DefaultTransport, opts)
	want := []time.Duration{50 * time.Millisecond, 100 * time.Millisecond, 200 * time.Millisecond}
	for i, w := range want {
		if got := tr.backoffFor(i + 1); got != w {
			t.Fatalf("backoffFor(%d) = %v, want %v", i+1, got, w)
		}
	}
	// And the cap holds far out.
	if got := tr.backoffFor(20); got != opts.MaxDelay {
		t.Fatalf("backoffFor(20) = %v, want MaxDelay %v", got, opts.MaxDelay)
	}
}

func TestOriginalDeadlinePreemptsAttempts(t *testing.T) {
	base := &fakeRT{fn: func(call int, req *http.Request) (*http.Response, error) {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}}
	opts := instant(5)
	opts.PerAttemptTimeout = time.Hour // attempt timeout far beyond the request's own deadline
	tr := NewTransport(base, opts)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://a.example/", nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tr.RoundTrip(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the request's own deadline error", err)
	}
	if base.callCount() != 1 {
		t.Fatalf("base saw %d calls, want 1: a dead request must not be retried", base.callCount())
	}
}
