package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"reflect"
	"testing"
)

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in     string
		names  []string
		reason string
		ok     bool
	}{
		{"errcmp -- documented migration shim", []string{"errcmp"}, "documented migration shim", true},
		{"errcmp, ctxflow -- shared exemption", []string{"errcmp", "ctxflow"}, "shared exemption", true},
		{"epochsafe — em-dash separator", []string{"epochsafe"}, "em-dash separator", true},
		{"errcmp", nil, "", false},         // no separator
		{"errcmp --", nil, "", false},      // no reason
		{"-- reason only", nil, "", false}, // no names
		{"a,, b -- hole in list", nil, "", false},
	}
	for _, c := range cases {
		names, reason, ok := splitDirective(c.in)
		if ok != c.ok || reason != c.reason || !reflect.DeepEqual(names, c.names) {
			t.Errorf("splitDirective(%q) = %v, %q, %v; want %v, %q, %v",
				c.in, names, reason, ok, c.names, c.reason, c.ok)
		}
	}
}

func TestPkgIs(t *testing.T) {
	cases := []struct {
		path, name string
		want       bool
	}{
		{"deepweb/internal/engine", "engine", true},
		{"engine", "engine", true}, // testdata stand-in
		{"deepweb/internal/webgen", "engine", false},
		{"deepweb/internal/xengine", "engine", false}, // suffix must be a path element
		{"deepweb/internal/engine/sub", "engine", false},
	}
	for _, c := range cases {
		if got := PkgIs(c.path, c.name); got != c.want {
			t.Errorf("PkgIs(%q, %q) = %v, want %v", c.path, c.name, got, c.want)
		}
	}
}

// TestMalformedDirective checks that a directive without a reason is
// itself reported, attributed to the pseudo-analyzer "deepvet".
func TestMalformedDirective(t *testing.T) {
	src := `package p

func f() {
	//deepvet:allow errcmp
	_ = 1
}
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &Package{Path: "p", Fset: fset, Files: []*ast.File{file}, Types: types.NewPackage("p", "p"), Info: NewInfo()}
	diags := Run([]*Package{pkg}, nil)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1 malformed-directive report: %v", len(diags), diags)
	}
	if diags[0].Analyzer != "deepvet" {
		t.Errorf("malformed directive attributed to %q, want %q", diags[0].Analyzer, "deepvet")
	}
}
