package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Load type-checks the packages matched by patterns (e.g. "./...")
// in the module rooted at dir, returning one Package per match,
// dependencies excluded. It shells out to `go list -export`, which
// compiles dependencies just far enough to produce export data, then
// re-parses the matched packages from source (with comments, so allow
// directives survive) and type-checks them against that export data —
// the same shape `go vet` builds for its analyzers, using only the
// standard library.
//
// Test files are not loaded: the invariants deepvet enforces are
// serving-path contracts, and tests legitimately reach around them
// (mutating a bare index to set up a scenario, pinning fake clocks).
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-export",
		"-deps",
		"-json=ImportPath,Dir,GoFiles,Export,DepOnly,Standard,Error,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list -export: %w\n%s", err, errb.String())
	}

	type listError struct {
		Err string
	}
	type listPkg struct {
		ImportPath string
		Dir        string
		GoFiles    []string
		Export     string
		DepOnly    bool
		Standard   bool
		Incomplete bool
		Error      *listError
	}

	exports := map[string]string{}
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -export: decoding output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list -export: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	})

	var pkgs []*Package
	for _, p := range targets {
		if len(p.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range p.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(p.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  p.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}

// NewInfo allocates the types.Info maps every Pass expects populated.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// PkgIs reports whether an import path denotes the named project
// package: an exact match, or any path ending in "/<name>". The suffix
// form lets the analyzers apply identically to the real module layout
// ("deepweb/internal/api") and to the flat stand-in packages under an
// analyzer's testdata tree ("api").
func PkgIs(path, name string) bool {
	return path == name || strings.HasSuffix(path, "/"+name)
}
