// Package analysistest runs a deepvet analyzer over golden packages
// under a testdata/src tree and checks its diagnostics against
// expectations written in the source itself, mirroring
// golang.org/x/tools/go/analysis/analysistest:
//
//	httpError(w, 400)        // want `use httpx\.WriteError`
//
// A `// want "re1" "re2"` comment expects exactly those diagnostics
// (as unanchored regexps) on its line; every diagnostic must be
// wanted and every want must be matched, so each golden package pins
// both the flagged and the allowed cases.
//
// Golden packages are plain GOPATH-style trees: testdata/src/a
// imports "a"'s sibling testdata/src/index as "index", and the
// analyzers match project packages by path suffix (analysis.PkgIs),
// so the stand-ins exercise the same code paths as the real module.
// Standard-library imports are resolved with export data from
// `go list -export`, exactly like the main loader.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"deepweb/internal/analysis"
)

// Run loads each named golden package from testdata/src, applies the
// analyzer, and reports mismatches against the // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgNames ...string) {
	t.Helper()
	l := &loader{
		testdata: testdata,
		fset:     token.NewFileSet(),
		loaded:   map[string]*analysis.Package{},
	}
	var pkgs []*analysis.Package
	for _, name := range pkgNames {
		pkg, err := l.load(name)
		if err != nil {
			t.Fatalf("loading golden package %q: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := analysis.Run(pkgs, []*analysis.Analyzer{a})
	wants := collectWants(t, l.fset, pkgs)

	for _, d := range diags {
		pos := l.fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		if !wants.match(key, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", pos, d.Message, d.Analyzer)
		}
	}
	wants.reportUnmatched(t)
}

// loader resolves golden packages recursively, falling back to
// `go list -export` data for everything outside testdata/src.
type loader struct {
	testdata string
	fset     *token.FileSet
	loaded   map[string]*analysis.Package
	std      types.Importer
}

func (l *loader) load(path string) (*analysis.Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	dir := filepath.Join(l.testdata, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := analysis.NewInfo()
	conf := types.Config{Importer: (*testImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck: %w", err)
	}
	pkg := &analysis.Package{Path: path, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	return pkg, nil
}

// testImporter resolves sibling golden packages from testdata and
// everything else through stdlib export data.
type testImporter loader

func (imp *testImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(imp)
	if _, err := os.Stat(filepath.Join(l.testdata, "src", filepath.FromSlash(path))); err == nil {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.std == nil {
		std, err := stdImporter(l.fset, path)
		if err != nil {
			return nil, err
		}
		l.std = std
	}
	return l.std.Import(path)
}

// stdImporter builds a gc importer over export data for root and its
// dependency closure. Later Import calls for packages outside that
// closure re-list lazily via the lookup function's second chance.
func stdImporter(fset *token.FileSet, root string) (types.Importer, error) {
	exports := map[string]string{}
	if err := listExports(exports, root); err != nil {
		return nil, err
	}
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if _, ok := exports[path]; !ok {
			if err := listExports(exports, path); err != nil {
				return nil, err
			}
		}
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}), nil
}

func listExports(exports map[string]string, pkgs ...string) error {
	args := append([]string{"list", "-export", "-deps", "-f", `{{.ImportPath}} {{.Export}}`}, pkgs...)
	cmd := exec.Command("go", args...)
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("go list -export %v: %w", pkgs, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		path, file, ok := strings.Cut(line, " ")
		if ok && file != "" {
			exports[path] = file
		}
	}
	return nil
}

// wantSet maps "file:line" to the not-yet-matched expectations there.
type wantSet map[string][]*want

type want struct {
	pos     string
	re      *regexp.Regexp
	matched bool
}

func (ws wantSet) match(key, message string) bool {
	for _, w := range ws[key] {
		if !w.matched && w.re.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws wantSet) reportUnmatched(t *testing.T) {
	t.Helper()
	var missing []string
	for _, list := range ws {
		for _, w := range list {
			if !w.matched {
				missing = append(missing, fmt.Sprintf("%s: expected diagnostic matching %q, got none", w.pos, w.re))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Error(m)
	}
}

// wantRE pulls the quoted regexps off a want comment: both "..." and
// `...` forms, in order.
var wantRE = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

func collectWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.Package) wantSet {
	t.Helper()
	ws := wantSet{}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					for _, q := range wantRE.FindAllString(rest, -1) {
						pat := q
						if strings.HasPrefix(q, `"`) {
							unq, err := strconv.Unquote(q)
							if err != nil {
								t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
							}
							pat = unq
						} else {
							pat = strings.Trim(q, "`")
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
						}
						ws[key] = append(ws[key], &want{pos: pos.String(), re: re})
					}
				}
			}
		}
	}
	return ws
}
