// Package a exercises ctxflow: exported I/O surfaces, parameter order,
// and stored contexts.
package a

import (
	"context"
	"net/http"
)

// BadHolder squirrels a context into state.
type BadHolder struct {
	name string
	ctx  context.Context // want `context\.Context stored in a struct field`
}

// GoodHolder carries only per-call state.
type GoodHolder struct {
	hc *http.Client
}

// Fetch does HTTP I/O with no way for callers to cancel it.
func Fetch(url string) (*http.Response, error) {
	return http.Get(url) // want `exported Fetch performs HTTP I/O via http\.Get`
}

// Conjure strands its callers on an uncancelable context.
func Conjure() context.Context {
	return context.Background() // want `exported Conjure constructs context\.Background`
}

// Todo is the same hazard spelled differently.
func Todo() context.Context {
	return context.TODO() // want `exported Todo constructs context\.TODO`
}

// Misplaced hides the context mid-signature.
func Misplaced(name string, ctx context.Context) {} // want `context\.Context must be the first parameter`

// Good threads a leading context; the Do call inside is fine.
func Good(ctx context.Context, hc *http.Client, url string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return hc.Do(req) // ok: leading ctx present
}

// GoodFallback shows the sanctioned nil-ctx fallback inside a function
// that does take a leading ctx.
func GoodFallback(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.Background() // ok: fallback under a leading ctx
	}
	return ctx
}

// RoundTrip-shaped functions carry the context inside *http.Request.
func (h *GoodHolder) RoundTrip(req *http.Request) (*http.Response, error) {
	return h.hc.Do(req) // ok: *http.Request delivers the context
}

// HeaderValue is I/O-free: http.Header.Get shares a name with the
// client call but has the wrong receiver.
func HeaderValue(h http.Header) string {
	return h.Get("X-Generation") // ok: not an http.Client call
}

// unexported helpers own their context choices.
func helper() context.Context {
	return context.Background() // ok: not exported surface
}

// Suppressed is the escape hatch with a reason.
func Suppressed() context.Context {
	//deepvet:allow ctxflow -- golden test for the suppression path
	return context.Background()
}
