// Command cmdmain proves package main is exempt: binaries own their
// root context.
package main

import (
	"context"
	"net/http"
)

func Run() error {
	ctx := context.Background() // ok: package main
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://localhost/", nil)
	if err != nil {
		return err
	}
	_, err = http.DefaultClient.Do(req)
	return err
}

func main() {
	_ = Run()
}
