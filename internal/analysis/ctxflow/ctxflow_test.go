package ctxflow_test

import (
	"testing"

	"deepweb/internal/analysis/analysistest"
	"deepweb/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "a", "cmdmain")
}
