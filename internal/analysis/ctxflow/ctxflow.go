// Package ctxflow enforces the context discipline the PR-5 API v2
// migration established: cancellation flows through every I/O path as
// an explicit leading parameter, never out of band.
//
// The engine, fetch stack and serving tier all promise that a dead
// client stops costing work (request cancellation reaches BM25 term
// loops and retry backoffs). That chain is only as strong as its
// weakest exported function: one wrapper that conjures
// context.Background() strands every caller above it with no way to
// cancel, and a ctx squirreled into a struct outlives the request it
// belonged to. ctxflow flags, in every non-main package:
//
//   - an exported function or method whose context.Context parameter
//     is not first,
//   - an exported function or method with no leading ctx that calls
//     context.Background()/context.TODO() or performs HTTP I/O
//     (net/http Client/Transport calls) — it is swallowing
//     cancellation its callers can never supply,
//   - a struct field of type context.Context (contexts are
//     per-request values, not state).
//
// Unexported helpers and nil-ctx fallbacks inside functions that do
// take a leading ctx stay legal: the contract is about the exported
// surface callers are stuck with.
package ctxflow

import (
	"go/ast"
	"go/types"

	"deepweb/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "exported I/O paths take a leading context.Context; contexts are never stored",
	Run:  run,
}

// httpIOFuncs are net/http entry points that open a network exchange:
// the package-level convenience functions and http.Client's methods.
// (http.Header.Get and friends share names but have receivers other
// than Client, so the check below keys on the receiver type.)
var httpIOFuncs = map[string]bool{
	"Do": true, "Get": true, "Post": true, "PostForm": true, "Head": true,
}

func run(pass *analysis.Pass) {
	if pass.Types.Name() == "main" {
		return // binaries own their root context
	}
	for _, f := range pass.Files {
		checkStructFields(pass, f)
	}
	analysis.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		fn, ok := pass.Info.Defs[fd.Name].(*types.Func)
		if !ok || !fd.Name.IsExported() {
			return
		}
		sig := fn.Type().(*types.Signature)
		checkParamOrder(pass, fd, sig)
		if !analysis.HasLeadingContext(sig) && !carriesRequestContext(sig) {
			checkBodyIO(pass, fd)
		}
	})
}

// checkParamOrder flags a ctx parameter hiding anywhere but first.
func checkParamOrder(pass *analysis.Pass, fd *ast.FuncDecl, sig *types.Signature) {
	params := sig.Params()
	for i := 1; i < params.Len(); i++ {
		if analysis.IsContextType(params.At(i).Type()) {
			pass.Reportf(params.At(i).Pos(),
				"%s takes context.Context as parameter %d; context.Context must be the first parameter", fd.Name.Name, i+1)
		}
	}
}

// checkBodyIO walks the body of an exported no-ctx function for calls
// that need a context: conjuring one, or doing HTTP I/O without one.
func checkBodyIO(pass *analysis.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := analysis.Callee(pass.Info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch {
		case fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO"):
			pass.Reportf(call.Pos(),
				"exported %s constructs context.%s, so callers can never cancel it; take a leading context.Context instead",
				fd.Name.Name, fn.Name())
		case fn.Pkg().Path() == "net/http" && httpIOFuncs[fn.Name()] && isClientCall(fn):
			pass.Reportf(call.Pos(),
				"exported %s performs HTTP I/O via http.%s without a leading context.Context; the request outlives its caller's cancellation",
				fd.Name.Name, fn.Name())
		}
		return true
	})
}

// carriesRequestContext reports whether a parameter already delivers
// the caller's context by another sanctioned road: an *http.Request
// (RoundTrippers and handlers read req.Context()).
func carriesRequestContext(sig *types.Signature) bool {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if analysis.IsNamedType(params.At(i).Type(), "net/http", "Request") {
			return true
		}
	}
	return false
}

// isClientCall reports whether fn is a package-level net/http function
// or an http.Client method — the forms that actually open an exchange.
func isClientCall(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return true
	}
	return analysis.IsNamedType(sig.Recv().Type(), "net/http", "Client")
}

// checkStructFields flags context.Context struct fields.
func checkStructFields(pass *analysis.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		st, ok := n.(*ast.StructType)
		if !ok {
			return true
		}
		for _, field := range st.Fields.List {
			tv, ok := pass.Info.Types[field.Type]
			if ok && analysis.IsContextType(tv.Type) {
				pass.Reportf(field.Pos(),
					"context.Context stored in a struct field outlives the request it belongs to; pass ctx per call (see https://go.dev/blog/context-and-structs)")
			}
		}
		return true
	})
}
