package clockinject_test

import (
	"testing"

	"deepweb/internal/analysis/analysistest"
	"deepweb/internal/analysis/clockinject"
)

func TestClockinject(t *testing.T) {
	analysistest.Run(t, "testdata", clockinject.Analyzer, "resilient", "webgen", "other")
}
