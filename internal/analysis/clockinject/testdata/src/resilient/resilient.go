// Package resilient exercises clockinject in the first scoped package:
// hook defaults are legal, stray wall-clock and global-rand calls are
// not.
package resilient

import (
	"math/rand"
	"time"
)

// Options mirrors the real package's injection points.
type Options struct {
	Rand  func() float64
	Sleep func(time.Duration)
	Now   func() time.Time
}

// NewTransport wires the real clock into the hooks — the one
// sanctioned place these references appear.
func NewTransport(opts Options) *Options {
	if opts.Rand == nil {
		opts.Rand = rand.Float64 // ok: hook default wiring (assignment)
	}
	if opts.Sleep == nil {
		opts.Sleep = time.Sleep // ok: hook default wiring
	}
	if opts.Now == nil {
		opts.Now = time.Now // ok: hook default wiring
	}
	return &opts
}

// Defaults wires hooks through a composite literal instead.
func Defaults() Options {
	return Options{
		Rand:  rand.Float64, // ok: hook default wiring (literal)
		Sleep: time.Sleep,   // ok
		Now:   time.Now,     // ok
	}
}

func backoff(o *Options) time.Duration {
	jitter := o.Rand()                   // ok: injected hook
	o.Sleep(time.Duration(jitter * 1e6)) // ok: injected hook
	deadline := o.Now().Add(time.Second) // ok: injected hook
	_ = deadline
	time.Sleep(time.Millisecond)          // want `time\.Sleep reaches the wall clock`
	_ = time.Now()                        // want `time\.Now reaches the wall clock`
	_ = time.Since(o.Now())               // want `time\.Since reaches the wall clock`
	<-time.After(time.Millisecond)        // want `time\.After reaches the wall clock`
	return time.Duration(rand.Int63n(10)) // want `rand\.Int63n reaches the process-global rand source`
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicitly seeded constructor
	if r.Float64() < 0.5 {              // ok: method on a seeded *rand.Rand
		return r.Intn(10) // ok
	}
	return rand.Intn(10) // want `rand\.Intn reaches the process-global rand source`
}

func suppressed() time.Time {
	//deepvet:allow clockinject -- golden test for the suppression path
	return time.Now()
}
