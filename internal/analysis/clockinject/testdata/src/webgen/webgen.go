// Package webgen proves the second scoped package is held to the same
// determinism contract.
package webgen

import "math/rand"

// Chaos mirrors the real package: per-host fault streams come from
// seeded generators, never the process-global source.
func faults(hostSeed int64) []float64 {
	r := rand.New(rand.NewSource(hostSeed)) // ok: seeded
	out := make([]float64, 3)
	for i := range out {
		out[i] = r.Float64() // ok: seeded generator method
	}
	out[0] += rand.Float64() // want `rand\.Float64 reaches the process-global rand source`
	return out
}

// zipf shows the seeded distribution constructor staying legal.
func zipf(seed int64) uint64 {
	r := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(r, 1.1, 1, 1000) // ok: constructor over a seeded source
	return z.Uint64()
}
