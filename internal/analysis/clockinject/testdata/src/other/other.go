// Package other is outside the determinism scope: wall-clock use is
// legal here (e.g. the load harness timestamps real measurements).
package other

import (
	"math/rand"
	"time"
)

func stamp() (time.Time, int) {
	return time.Now(), rand.Intn(10) // ok: not a scoped package
}
