// Package clockinject keeps the chaos and resilience stacks
// deterministic by construction.
//
// The PR-7 convergence property — a chaos-injected surfacing pass plus
// bounded refreshes equals the fault-free corpus bit for bit — only
// holds because every source of nondeterminism in internal/resilient
// and internal/webgen is injected: backoff jitter through
// Options.Rand, waiting through Options.Sleep, the breaker clock
// through Options.Now, and fault streams through per-host seeded
// rand.Rand instances. One stray time.Now() or global-source
// rand.Float64() reintroduces wall-clock and process-global state,
// and the property tests (and `make chaos`) turn flaky in ways that
// reproduce on no one's machine. clockinject flags, inside those two
// packages:
//
//   - calls to time.Now, time.Sleep, time.Since, time.After, time.Tick
//   - package-level math/rand functions (the process-global source:
//     rand.Intn, rand.Float64, rand.Shuffle, …)
//
// Explicitly seeded generators (rand.New(rand.NewSource(seed)), and
// methods on a *rand.Rand value) are the sanctioned mechanism and stay
// legal, as does wiring the real clock into a hook default — an
// assignment or composite-literal entry whose target is a field named
// Rand, Sleep or Now (e.g. `opts.Now = time.Now` in NewTransport).
package clockinject

import (
	"go/ast"
	"go/token"
	"go/types"

	"deepweb/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "clockinject",
	Doc:  "resilient/webgen must use injected Rand/Sleep/Now hooks, not the wall clock or global rand",
	Run:  run,
}

// scope lists the packages whose determinism contract is enforced.
var scope = []string{"resilient", "webgen"}

// timeFuncs are the wall-clock entry points.
var timeFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "After": true, "Tick": true,
}

// hookFields are the injection points; references on the right-hand
// side of an assignment into one of these are default wiring, not a
// violation.
var hookFields = map[string]bool{"Rand": true, "Sleep": true, "Now": true}

func run(pass *analysis.Pass) {
	ok := false
	for _, name := range scope {
		if analysis.PkgIs(pass.Path, name) {
			ok = true
		}
	}
	if !ok {
		return
	}
	for _, f := range pass.Files {
		sanctioned := hookWiringRanges(f)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id := sel.Sel
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. on a seeded *rand.Rand) are fine
			}
			var what string
			switch fn.Pkg().Path() {
			case "time":
				if timeFuncs[fn.Name()] {
					what = "the wall clock"
				}
			case "math/rand", "math/rand/v2":
				if fn.Name() != "New" && fn.Name() != "NewSource" && fn.Name() != "NewZipf" && fn.Name() != "NewPCG" {
					what = "the process-global rand source"
				}
			}
			if what == "" {
				return true
			}
			if inRanges(sanctioned, id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(),
				"%s.%s reaches %s directly; chaos/backoff determinism requires the injectable Rand/Sleep/Now hooks (or an explicitly seeded rand.New)",
				fn.Pkg().Name(), fn.Name(), what)
			return true
		})
	}
}

type posRange struct{ lo, hi token.Pos }

// hookWiringRanges collects the RHS spans of assignments and
// composite-literal entries whose target is a hook field, e.g.
//
//	opts.Now = time.Now
//	Options{Rand: rand.Float64}
//
// References inside those spans are the one sanctioned way the real
// clock enters the package.
func hookWiringRanges(f *ast.File) []posRange {
	var ranges []posRange
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				if hookFields[targetName(lhs)] {
					ranges = append(ranges, posRange{n.Rhs[i].Pos(), n.Rhs[i].End()})
				}
			}
		case *ast.KeyValueExpr:
			if key, ok := n.Key.(*ast.Ident); ok && hookFields[key.Name] {
				ranges = append(ranges, posRange{n.Value.Pos(), n.Value.End()})
			}
		}
		return true
	})
	return ranges
}

func targetName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

func inRanges(ranges []posRange, pos token.Pos) bool {
	for _, r := range ranges {
		if pos >= r.lo && pos < r.hi {
			return true
		}
	}
	return false
}
