// Package epochsafe closes the stale-result-cache hazard that
// engine.EnableResultCache can only document:
//
//	"Mutating the exported Index directly bypasses the bump, and with
//	 no TTL the cache would serve pre-mutation results indefinitely."
//
// Cached search results are keyed on (generation, mutation epoch,
// query); correctness rests entirely on every index mutation bumping
// the epoch. The compiler cannot see that invariant — any package
// holding an *index.Index (engine exports its Index field) can call
// Add/Delete/Compact and silently freeze the cache. epochsafe makes
// the contract mechanical:
//
//   - Outside internal/engine, any call to a mutating index.Index
//     method (Add, AddPrepared, Annotate, Delete, Compact, ImportDocs,
//     ImportTerms) is flagged: mutations route through Engine methods,
//     which bump the epoch. Bare indexes that no engine ever wraps
//     (pre-engine experiment paths) opt out with
//     //deepvet:allow epochsafe -- <why no cache can be armed>.
//
//   - Inside internal/engine, a function that mutates the index must
//     either call bumpEpoch itself or carry a
//     //deepvet:epoch -- <which caller bumps>
//     marker in its doc comment, naming the epoch-bumping pass it runs
//     under. Reviewer memory becomes a build-breaking annotation.
package epochsafe

import (
	"go/ast"
	"strings"

	"deepweb/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "epochsafe",
	Doc:  "index mutations must flow through epoch-bumping engine passes (result-cache coherence)",
	Run:  run,
}

// mutators are the index.Index methods that change what a search can
// observe; each one invalidates every cached result.
var mutators = map[string]bool{
	"Add": true, "AddPrepared": true, "AddPreparedBatch": true,
	"Annotate": true, "Delete": true,
	"Compact": true, "ImportDocs": true, "ImportTerms": true,
}

const marker = "//deepvet:epoch"

func run(pass *analysis.Pass) {
	if analysis.PkgIs(pass.Path, "index") {
		return // the index implementation itself
	}
	inEngine := analysis.PkgIs(pass.Path, "engine")
	analysis.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		exempt := inEngine && (callsBumpEpoch(pass, fd) || hasEpochMarker(pass, fd))
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.Info, call)
			if fn == nil || !mutators[fn.Name()] {
				return true
			}
			if analysis.ReceiverTypeName(fn) != "Index" || fn.Pkg() == nil || !analysis.PkgIs(fn.Pkg().Path(), "index") {
				return true
			}
			switch {
			case !inEngine:
				pass.Reportf(call.Pos(),
					"index.Index.%s called outside internal/engine: a result-cache-armed engine would serve stale results indefinitely (see engine.EnableResultCache); mutate through an Engine method",
					fn.Name())
			case !exempt:
				pass.Reportf(call.Pos(),
					"%s mutates the index but neither calls bumpEpoch nor carries a \"//deepvet:epoch -- <which caller bumps>\" marker; cached results minted before this mutation would never be retired",
					fd.Name.Name)
			}
			return true
		})
	})
}

// callsBumpEpoch reports whether the function itself retires the cache.
func callsBumpEpoch(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.Info, call); fn != nil && fn.Name() == "bumpEpoch" {
			found = true
		}
		return !found
	})
	return found
}

// hasEpochMarker reports whether the function's doc comment carries a
// well-formed //deepvet:epoch marker. A marker without a reason does
// not count — the annotation's value is naming the pass that bumps.
func hasEpochMarker(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		rest, ok := strings.CutPrefix(c.Text, marker)
		if !ok {
			continue
		}
		for _, sep := range []string{"--", "—"} {
			if i := strings.Index(rest, sep); i >= 0 && strings.TrimSpace(rest[i+len(sep):]) != "" {
				return true
			}
		}
		pass.Reportf(c.Pos(), `malformed epoch marker: want "//deepvet:epoch -- <which caller bumps>"`)
	}
	return false
}
