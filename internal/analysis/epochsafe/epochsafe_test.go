package epochsafe_test

import (
	"testing"

	"deepweb/internal/analysis/analysistest"
	"deepweb/internal/analysis/epochsafe"
)

func TestEpochsafe(t *testing.T) {
	analysistest.Run(t, "testdata", epochsafe.Analyzer, "index", "engine", "outside")
}
