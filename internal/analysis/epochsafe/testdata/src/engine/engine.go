// Package engine exercises the in-engine half of epochsafe: a mutation
// is legal when the function bumps the epoch itself or carries a
// //deepvet:epoch marker naming the pass that bumps.
package engine

import "index"

type Engine struct {
	Index *index.Index
	epoch uint64
}

func (e *Engine) bumpEpoch() { e.epoch++ }

// AddDoc bumps the epoch itself.
func (e *Engine) AddDoc(d index.Doc) {
	e.Index.Add(d) // ok: bumpEpoch called below
	e.bumpEpoch()
}

// Remove shows call order does not matter — the bump anywhere in the
// function satisfies the contract.
func (e *Engine) Remove(url string) {
	e.bumpEpoch()
	e.Index.Delete(url) // ok: bumpEpoch called above
}

// commit drains a staging buffer into the index.
//
//deepvet:epoch -- only called from commitOutcome, which bumps after every commit
func (e *Engine) commit(docs []index.Doc) {
	for _, d := range docs {
		e.Index.Add(d) // ok: marker names the bumping caller
	}
}

// sneaky mutates with neither a bump nor a marker.
func (e *Engine) sneaky(d index.Doc) {
	e.Index.Add(d)      // want `sneaky mutates the index but neither calls bumpEpoch`
	e.Index.Search("q") // ok: read-only
}

// reindex shows every mutator is covered, not just Add.
func (e *Engine) reindex(docs []index.Doc) {
	e.Index.Compact()            // want `reindex mutates the index but neither calls bumpEpoch`
	_ = e.Index.ImportDocs(docs) // want `reindex mutates the index but neither calls bumpEpoch`
}
