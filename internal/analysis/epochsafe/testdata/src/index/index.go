// Package index is a stand-in for the real inverted index: the same
// mutator surface, none of the implementation. The analyzer skips this
// package itself — the implementation mutates freely.
package index

type Doc struct {
	URL  string
	Text string
}

type Index struct {
	docs map[string]int
}

func New() *Index { return &Index{docs: map[string]int{}} }

func (ix *Index) Add(d Doc) (id int, added bool) {
	if _, ok := ix.docs[d.URL]; ok {
		return ix.docs[d.URL], false
	}
	id = len(ix.docs)
	ix.docs[d.URL] = id
	return id, true
}

func (ix *Index) Annotate(id int, anns map[string]string) {}

func (ix *Index) Delete(url string) bool {
	_, ok := ix.docs[url]
	delete(ix.docs, url)
	return ok
}

func (ix *Index) Compact() {}

func (ix *Index) ImportDocs(docs []Doc) error { return nil }

// Search is read-only: callable from anywhere.
func (ix *Index) Search(q string) []int { return nil }

// Has is read-only.
func (ix *Index) Has(url string) bool { _, ok := ix.docs[url]; return ok }
