// Package outside exercises the out-of-engine half of epochsafe: any
// mutator call is flagged, reads are not, and a bare never-cached index
// can opt out with a reasoned allow directive.
package outside

import "index"

func Mutate(ix *index.Index, d index.Doc) {
	ix.Add(d)           // want `index\.Index\.Add called outside internal/engine`
	ix.Annotate(0, nil) // want `index\.Index\.Annotate called outside internal/engine`
	ix.Delete(d.URL)    // want `index\.Index\.Delete called outside internal/engine`
}

func Read(ix *index.Index) bool {
	_ = ix.Search("q")       // ok: read-only
	return ix.Has("http://") // ok: read-only
}

func BareExperiment(d index.Doc) {
	ix := index.New()
	//deepvet:allow epochsafe -- bare pre-engine index; no result cache can ever be armed on it
	ix.Add(d)
}
