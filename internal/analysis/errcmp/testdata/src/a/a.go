// Package a exercises errcmp: sentinel comparisons and wrap verbs.
package a

import (
	"errors"
	"fmt"
)

// ErrNotFound is a package-level sentinel (the store.ErrCorrupt shape).
var ErrNotFound = errors.New("a: not found")

// errSmall is unexported and not Err-prefixed by the analyzer's rule
// (prefix check is on the spelled name "Err", case-sensitive).
var errSmall = errors.New("a: small")

// NotAnError is Err-prefixed by spelling but not an error value.
var ErrCount = 3

func compare(err error) bool {
	if err == ErrNotFound { // want `ErrNotFound compared with ==`
		return true
	}
	if err != ErrNotFound { // want `ErrNotFound compared with !=`
		return false
	}
	if ErrNotFound == err { // want `ErrNotFound compared with ==`
		return true
	}
	if errors.Is(err, ErrNotFound) { // ok: the sanctioned form
		return true
	}
	if err == nil { // ok: nil check is not a sentinel match
		return false
	}
	if err == errSmall { // ok: not an Err* sentinel
		return true
	}
	return ErrCount == 3 // ok: not an error value
}

func localShadow(err error) bool {
	// A function-local Err* is not a package-level sentinel.
	ErrLocal := errors.New("local")
	return err == ErrLocal // ok: not package scope
}

func wrap(err error, n int) error {
	if err != nil {
		return fmt.Errorf("op failed: %v", err) // want `severing the wrap chain`
	}
	_ = fmt.Errorf("op failed: %s", err)     // want `severing the wrap chain`
	_ = fmt.Errorf("op failed: %q", err)     // want `severing the wrap chain`
	_ = fmt.Errorf("%*d then %v", n, n, err) // want `severing the wrap chain`
	_ = fmt.Errorf("n=%d 100%%: %v", n, err) // want `severing the wrap chain`
	_ = fmt.Errorf("indexed %[1]v", err)     // ok: indexed formats are skipped, not guessed
	_ = fmt.Errorf("count %v", n)            // ok: not an error argument
	return fmt.Errorf("op failed: %w", err)  // ok: the chain survives
}

func suppressed(err error) bool {
	//deepvet:allow errcmp -- golden test for the suppression path
	return err == ErrNotFound
}
