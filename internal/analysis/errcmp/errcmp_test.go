package errcmp_test

import (
	"testing"

	"deepweb/internal/analysis/analysistest"
	"deepweb/internal/analysis/errcmp"
)

func TestErrcmp(t *testing.T) {
	analysistest.Run(t, "testdata", errcmp.Analyzer, "a")
}
