// Package errcmp enforces the project's error-matching discipline.
//
// The resilience and persistence layers communicate failure classes
// through typed sentinels (resilient.ErrTransient, store.ErrCorrupt,
// …) that arrive wrapped — resilient.Error.Unwrap maps classes to
// sentinels, store decorates ErrCorrupt with segment context via %w.
// Matching them with == therefore silently never matches, and
// re-wrapping with %v instead of %w severs the chain so downstream
// errors.Is checks (retry classification, corrupt-snapshot recovery)
// stop working. Both bugs type-check and pass code review on a good
// day; errcmp makes them build failures:
//
//   - comparing any package-level `Err*` sentinel with == or != (use
//     errors.Is),
//   - fmt.Errorf formatting an error value with %v/%s/%q instead of
//     %w (use %w so the chain survives).
package errcmp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"deepweb/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcmp",
	Doc:  "sentinel errors must be matched with errors.Is and wrapped with %w",
	Run:  run,
}

func run(pass *analysis.Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkComparison(pass, n)
			case *ast.CallExpr:
				checkErrorf(pass, n)
			}
			return true
		})
	}
}

// checkComparison flags x == pkg.ErrSentinel (and !=). Comparing to
// nil stays legal: that is the idiomatic "did it fail at all" check.
func checkComparison(pass *analysis.Pass, cmp *ast.BinaryExpr) {
	if cmp.Op != token.EQL && cmp.Op != token.NEQ {
		return
	}
	for _, side := range [2]ast.Expr{cmp.X, cmp.Y} {
		if name := sentinelName(pass, side); name != "" {
			pass.Reportf(cmp.OpPos,
				"%s compared with %s: wrapped errors never match; use errors.Is(err, %s)",
				name, cmp.Op, name)
			return
		}
	}
}

// sentinelName resolves an expression to a package-level error
// variable named Err*, returning its printable name ("store.ErrCorrupt").
func sentinelName(pass *analysis.Pass, e ast.Expr) string {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	v, ok := pass.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	if v.Parent() != v.Pkg().Scope() || !analysis.IsErrorType(v.Type()) {
		return ""
	}
	if v.Pkg() == pass.Types {
		return v.Name()
	}
	return v.Pkg().Name() + "." + v.Name()
}

// checkErrorf flags fmt.Errorf("...: %v", err): the %v stringifies the
// error and drops the chain that errors.Is/As walk.
func checkErrorf(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.Info, call)
	if !analysis.IsFuncNamed(fn, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	format, ok := constantString(pass, call.Args[0])
	if !ok {
		return
	}
	verbs, ok := formatVerbs(format)
	if !ok {
		return
	}
	args := call.Args[1:]
	for i, verb := range verbs {
		if i >= len(args) {
			break
		}
		switch verb {
		case 'v', 's', 'q':
			t := pass.Info.Types[args[i]].Type
			if analysis.IsErrorType(t) {
				pass.Reportf(args[i].Pos(),
					"fmt.Errorf formats an error with %%%c, severing the wrap chain; use %%w so errors.Is/As keep working", verb)
			}
		}
	}
}

func constantString(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// formatVerbs returns the verb rune consuming each successive argument
// of a Printf-style format. A '*' width or precision consumes an
// argument of its own (recorded as '*'). Formats using explicit
// argument indexes (%[1]v) return ok=false: the pairing is no longer
// positional, so the check skips the call rather than guess.
func formatVerbs(format string) (verbs []rune, ok bool) {
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) && strings.ContainsRune("+-# 0", rune(format[i])) {
			i++
		}
		for i < len(format) && (format[i] == '*' || format[i] == '.' || (format[i] >= '0' && format[i] <= '9')) {
			if format[i] == '*' {
				verbs = append(verbs, '*')
			}
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '[' {
			return nil, false
		}
		if format[i] == '%' {
			continue
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs, true
}
