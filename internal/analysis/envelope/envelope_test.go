package envelope_test

import (
	"testing"

	"deepweb/internal/analysis/analysistest"
	"deepweb/internal/analysis/envelope"
)

func TestEnvelope(t *testing.T) {
	analysistest.Run(t, "testdata", envelope.Analyzer, "api", "semserv", "other")
}
