// Package api exercises envelope inside a scoped handler package.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"httpx"
)

func handler(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "bad request", 400)           // want `use httpx\.WriteError`
	fmt.Fprintf(w, "oops: %d", 400)             // want `fmt\.Fprintf writes an unenveloped body`
	fmt.Fprint(w, "oops")                       // want `fmt\.Fprint writes an unenveloped body`
	fmt.Fprintln(w, "oops")                     // want `fmt\.Fprintln writes an unenveloped body`
	io.WriteString(w, "oops")                   // want `io\.WriteString writes an unenveloped body`
	json.NewEncoder(w).Encode(map[string]int{}) // want `use httpx\.WriteJSON`
	w.Write([]byte("raw"))                      // want `ResponseWriter\.Write bypasses the envelope`
	w.WriteHeader(204)                          // want `ResponseWriter\.WriteHeader bypasses the envelope`
}

func clean(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("X-Cache", "HIT") // ok: headers are part of the contract
	httpx.WriteJSON(w, 200, map[string]int{"n": 1})
	httpx.WriteError(w, 404, "not_found", "no such document")

	var buf bytes.Buffer
	buf.Write([]byte("scratch"))       // ok: not a ResponseWriter
	fmt.Fprintf(&buf, "scratch %d", 1) // ok: not a ResponseWriter
	json.NewEncoder(&buf).Encode("x")  // ok: not a ResponseWriter
	io.WriteString(io.Discard, "x")    // ok: not a ResponseWriter
}

func suppressed(w http.ResponseWriter) {
	//deepvet:allow envelope -- golden test for the suppression path
	w.WriteHeader(204)
}
