// Package httpx is a stand-in for the project's envelope helpers: the
// sanctioned way /v1 handlers write bodies.
package httpx

import "net/http"

func WriteJSON(w http.ResponseWriter, status int, v interface{}) {}

func WriteError(w http.ResponseWriter, status int, code, msg string) {}
