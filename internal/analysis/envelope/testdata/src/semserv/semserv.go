// Package semserv proves the second scoped package is held to the same
// contract.
package semserv

import "net/http"

func handle(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", 500) // want `use httpx\.WriteError`
}
