// Package other is outside the envelope scope: the same constructs are
// legal here (e.g. the webgen virtual sites write raw HTML bodies).
package other

import (
	"fmt"
	"net/http"
)

func handle(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "fine here", 500) // ok: not a /v1 package
	fmt.Fprintf(w, "<html>%s</html>", "body")
	w.WriteHeader(204)
}
