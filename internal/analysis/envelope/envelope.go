// Package envelope keeps /v1 speaking exactly one error dialect.
//
// The versioned HTTP layer (internal/api, internal/semserv) promises
// every response body is either the endpoint's JSON document or the
// httpx error envelope {"error":{"code","message"}} — the golden
// contract tests and every client depend on it. One handler calling
// http.Error, printing straight to the ResponseWriter, or encoding
// ad hoc JSON quietly forks the wire format. envelope flags, inside
// those two packages:
//
//   - http.Error(w, ...)                     → httpx.WriteError
//   - fmt.Fprint*/io.WriteString to a ResponseWriter → httpx.WriteJSON/WriteError
//   - json.NewEncoder(w) on a ResponseWriter → httpx.WriteJSON
//     (which buffers, so a mid-encode failure cannot emit half a body)
//   - w.Write / w.WriteHeader                → the httpx helpers
//
// Header manipulation (w.Header().Set(...)) stays legal: headers like
// X-Cache are part of the contract, the body discipline is what the
// envelope protects.
package envelope

import (
	"go/ast"

	"deepweb/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "envelope",
	Doc:  "/v1 handlers must write responses through httpx.WriteJSON/WriteError",
	Run:  run,
}

// scope lists the handler packages held to the envelope contract.
var scope = []string{"api", "semserv"}

func run(pass *analysis.Pass) {
	inScope := false
	for _, name := range scope {
		if analysis.PkgIs(pass.Path, name) {
			inScope = true
		}
	}
	if !inScope {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkCall(pass, call)
			return true
		})
	}
}

func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.Info, call)
	if fn == nil {
		return
	}
	switch {
	case analysis.IsFuncNamed(fn, "net/http", "Error"):
		pass.Reportf(call.Pos(),
			"http.Error writes a text/plain body, not the /v1 JSON envelope; use httpx.WriteError")

	case analysis.IsFuncNamed(fn, "fmt", "Fprint"),
		analysis.IsFuncNamed(fn, "fmt", "Fprintf"),
		analysis.IsFuncNamed(fn, "fmt", "Fprintln"),
		analysis.IsFuncNamed(fn, "io", "WriteString"):
		if len(call.Args) > 0 && isRW(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"%s.%s writes an unenveloped body to the ResponseWriter; use httpx.WriteJSON or httpx.WriteError",
				fn.Pkg().Name(), fn.Name())
		}

	case analysis.IsFuncNamed(fn, "encoding/json", "NewEncoder"):
		if len(call.Args) > 0 && isRW(pass, call.Args[0]) {
			pass.Reportf(call.Pos(),
				"json.NewEncoder on a ResponseWriter streams unbuffered (a mid-encode error truncates the body mid-status); use httpx.WriteJSON")
		}

	case fn.Name() == "Write" || fn.Name() == "WriteHeader":
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && isRW(pass, sel.X) {
			pass.Reportf(call.Pos(),
				"direct ResponseWriter.%s bypasses the envelope and status discipline; use httpx.WriteJSON or httpx.WriteError", fn.Name())
		}
	}
}

func isRW(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && analysis.IsResponseWriter(tv.Type)
}
