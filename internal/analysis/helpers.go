package analysis

import (
	"go/ast"
	"go/types"
)

// Callee resolves a call expression's static callee, or nil for
// indirect calls (function values, conversions, builtins).
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsFuncNamed reports whether fn is the function or method `name`
// declared in the project package PkgIs-matching pkgName (for methods,
// the receiver's package).
func IsFuncNamed(fn *types.Func, pkgName, name string) bool {
	if fn == nil || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return PkgIs(fn.Pkg().Path(), pkgName)
}

// ReceiverTypeName returns the name of fn's receiver's named type
// ("Index" for func (ix *Index) Add), or "" for non-methods.
func ReceiverTypeName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return named.Obj().Name()
}

// IsNamedType reports whether t (or the type it points to) is the
// named type `name` from the project package PkgIs-matching pkgName.
func IsNamedType(t types.Type, pkgName, name string) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return PkgIs(obj.Pkg().Path(), pkgName)
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	return IsNamedType(t, "context", "Context")
}

// IsResponseWriter reports whether t is net/http.ResponseWriter.
func IsResponseWriter(t types.Type) bool {
	return IsNamedType(t, "net/http", "ResponseWriter")
}

// IsErrorType reports whether t implements the error interface (i.e.
// a value of type t can be passed where an error is expected).
func IsErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.Implements(t, types.Universe.Lookup("error").Type().Underlying().(*types.Interface))
}

// HasLeadingContext reports whether the signature's first parameter is
// a context.Context.
func HasLeadingContext(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && IsContextType(sig.Params().At(0).Type())
}

// FuncDecls visits every function declaration in the package that has
// a body.
func FuncDecls(files []*ast.File, fn func(decl *ast.FuncDecl)) {
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
