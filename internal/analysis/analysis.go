// Package analysis is a minimal, dependency-free clone of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package and reports Diagnostics through a Pass.
//
// The real x/tools module is the obvious foundation for a project vet
// suite, but this repository builds offline with a zero-dependency
// go.mod, so the framework is reimplemented here on the standard
// library alone: packages are loaded with `go list -export` plus
// go/importer (see load.go), and the analyzers in the subpackages
// (epochsafe, clockinject, envelope, ctxflow, errcmp) consume the same
// (Fset, Files, TypesInfo) shape they would get from a real
// analysis.Pass, so they can migrate to x/tools mechanically if the
// dependency ever lands.
//
// Suppression: a diagnostic is dropped when the flagged line, or the
// comment line directly above it, carries
//
//	//deepvet:allow <name>[,<name>...] -- <reason>
//
// naming the analyzer. The reason is mandatory — an allow directive
// without one is itself reported — so every sanctioned exception to a
// project invariant documents why it is safe, in the code, where the
// next reader will look.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the short lowercase identifier used in diagnostics and
	// allow directives.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string
	// Run inspects pass's package and reports findings via pass.Report.
	Run func(pass *Pass)
}

// Package is one loaded, type-checked package: syntax plus types.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	*Package
	report func(Diagnostic)
}

// Diagnostic is one finding, positioned in the package's FileSet.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer string
}

// Report records a finding at the given position.
func (p *Pass) Report(pos token.Pos, message string) {
	p.report(Diagnostic{Pos: pos, Message: message, Analyzer: p.Analyzer.Name})
}

// Reportf records a formatted finding at the given position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// Run applies every analyzer to every package, applies allow
// directives, and returns the surviving diagnostics ordered by file
// position. Malformed directives (no analyzer list, or no reason) are
// reported as findings of the pseudo-analyzer "deepvet".
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range pkgs {
		allow, malformed := directives(pkg)
		out = append(out, malformed...)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Package: pkg}
			pass.report = func(d Diagnostic) {
				if allow.suppresses(pkg.Fset, d.Pos, a.Name) {
					return
				}
				out = append(out, d)
			}
			a.Run(pass)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := pkgPosition(pkgs, out[i]), pkgPosition(pkgs, out[j])
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// Position resolves a diagnostic's position against the FileSet of the
// package it was found in.
func pkgPosition(pkgs []*Package, d Diagnostic) token.Position {
	for _, pkg := range pkgs {
		if f := pkg.Fset.File(d.Pos); f != nil {
			return f.Position(d.Pos)
		}
	}
	return token.Position{}
}

// allowSet maps file name → line → analyzer names sanctioned there.
type allowSet map[string]map[int]map[string]bool

// suppresses reports whether an allow directive covers the diagnostic:
// one on the same line, or on the line directly above it.
func (s allowSet) suppresses(fset *token.FileSet, pos token.Pos, name string) bool {
	p := fset.Position(pos)
	lines := s[p.Filename]
	if lines == nil {
		return false
	}
	for _, line := range [2]int{p.Line, p.Line - 1} {
		if names := lines[line]; names[name] || names["all"] {
			return true
		}
	}
	return false
}

const directivePrefix = "//deepvet:allow"

// directives collects every allow directive in the package, and a
// diagnostic for each malformed one.
func directives(pkg *Package) (allowSet, []Diagnostic) {
	set := allowSet{}
	var bad []Diagnostic
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, directivePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, directivePrefix)
				names, reason, ok := splitDirective(rest)
				if !ok {
					bad = append(bad, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "deepvet",
						Message:  `malformed directive: want "//deepvet:allow <name>[,<name>...] -- <reason>"`,
					})
					continue
				}
				_ = reason
				p := pkg.Fset.Position(c.Pos())
				lines := set[p.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					set[p.Filename] = lines
				}
				if lines[p.Line] == nil {
					lines[p.Line] = map[string]bool{}
				}
				for _, n := range names {
					lines[p.Line][n] = true
				}
			}
		}
	}
	return set, bad
}

// splitDirective parses "<names> -- <reason>" (an em dash — also
// separates). Both halves must be non-empty.
func splitDirective(rest string) (names []string, reason string, ok bool) {
	for _, sep := range []string{"--", "—"} {
		i := strings.Index(rest, sep)
		if i < 0 {
			continue
		}
		nameField := strings.TrimSpace(rest[:i])
		reason = strings.TrimSpace(rest[i+len(sep):])
		if nameField == "" || reason == "" {
			return nil, "", false
		}
		for _, n := range strings.Split(nameField, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				return nil, "", false
			}
			names = append(names, n)
		}
		return names, reason, true
	}
	return nil, "", false
}
