package virtual

import (
	"context"
	"net/url"
	"strings"
	"testing"

	"deepweb/internal/form"
	"deepweb/internal/htmlx"
	"deepweb/internal/query"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

// mediatorOver builds a world, registers every GET+POST form with the
// mediator, and returns both.
func mediatorOver(t *testing.T, cfg webgen.WorldConfig) (*webgen.Web, *Mediator) {
	t.Helper()
	web, err := webgen.BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fetch := webx.NewFetcher(web)
	m := NewMediator(fetch)
	for _, site := range web.Sites() {
		page, err := fetch.GetCtx(context.Background(), site.FormURL())
		if err != nil {
			t.Fatal(err)
		}
		decls := page.Forms()
		if len(decls) == 0 {
			t.Fatalf("no form on %s", site.FormURL())
		}
		base := mustURL(t, page.URL)
		f, err := form.FromDecl(base, decls[0], 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Register(f); err != nil {
			t.Fatalf("register %s: %v", f.ID, err)
		}
	}
	return web, m
}

func mustURL(t *testing.T, raw string) *url.URL {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func formFromHTMLT(t *testing.T, html string) *form.Form {
	t.Helper()
	decls := htmlx.ExtractForms(htmlx.Parse(html))
	if len(decls) == 0 {
		t.Fatal("no form")
	}
	f, err := form.FromDecl(mustURL(t, "http://x.example/"), decls[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestRegisterClassifiesDomains(t *testing.T) {
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 60})
	if len(m.Sources) != len(webgen.Domains) {
		t.Fatalf("registered %d sources, want %d", len(m.Sources), len(webgen.Domains))
	}
	for _, src := range m.Sources {
		if !strings.HasPrefix(src.Form.Site, src.Schema.Domain+"-") {
			t.Errorf("form %s classified as %s", src.Form.Site, src.Schema.Domain)
		}
	}
}

func TestMappingsCoverFormInputs(t *testing.T) {
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 60})
	for _, src := range m.Sources {
		if src.Schema.Domain == "usedcars" {
			if src.Mappings["make"] != "make" {
				t.Errorf("usedcars make mapping = %v", src.Mappings)
			}
			if src.Mappings["zip"] != "zip" {
				t.Errorf("usedcars zip mapping = %v", src.Mappings)
			}
			// minprice/maxprice: price maps to one of them.
			if in := src.Mappings["price"]; in != "minprice" && in != "maxprice" {
				t.Errorf("price mapped to %q", in)
			}
		}
	}
}

func TestRouteDomainQueries(t *testing.T) {
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 2, RowsPerSite: 60})
	srcs := m.Route("used ford cars")
	if len(srcs) == 0 {
		t.Fatal("car query routed nowhere")
	}
	if srcs[0].Schema.Domain != "usedcars" {
		t.Errorf("top routed domain = %s", srcs[0].Schema.Domain)
	}
	if srcs := m.Route("qwzzk nonsense blarg"); len(srcs) != 0 {
		t.Errorf("nonsense query routed to %d sources", len(srcs))
	}
}

func TestReformulateBindsValues(t *testing.T) {
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 60})
	var cars *Source
	for _, s := range m.Sources {
		if s.Schema.Domain == "usedcars" {
			cars = s
		}
	}
	b, ok := m.Reformulate("used ford cars", cars)
	if !ok || b["make"] != "ford" {
		t.Errorf("binding = %v ok=%v", b, ok)
	}
	// Un-expressible query: no bindable tokens.
	if b, ok := m.Reformulate("sigmod innovations award", cars); ok {
		t.Errorf("unexpressible query bound: %v", b)
	}
}

func TestAnswerLiveQuery(t *testing.T) {
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 200})
	answers, st := m.Answer(context.Background(), "used ford cars", 10)
	if st.Unroutable || st.Submitted == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if len(answers) == 0 {
		t.Fatal("no answers for a head query")
	}
	for _, a := range answers {
		if !strings.Contains(strings.ToLower(a.Record), "ford") {
			t.Errorf("answer does not mention ford: %q", a.Record)
		}
	}
}

func TestAnswerFortuitousQueryFails(t *testing.T) {
	// The §3.2 example: the mediator understands the faculty form
	// (department → bios) but cannot route an award query into it.
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 400})
	answers, st := m.Answer(context.Background(), "sigmod innovations award professor", 10)
	// "professor" routes to the faculty domain, but the award tokens
	// bind to nothing: the source is skipped, zero answers come back.
	if len(answers) != 0 {
		t.Errorf("mediator fortuitously answered: %+v (stats %+v)", answers[:1], st)
	}
	if st.Routed > 0 && st.NoBindings == 0 {
		t.Errorf("expected routed-but-unbindable, got %+v", st)
	}
}

func TestAnswerCountsRequests(t *testing.T) {
	web, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 3, RowsPerSite: 100})
	web.ResetCounts()
	m.Requests = 0
	_, st := m.Answer(context.Background(), "homes in seattle", 10)
	if m.Requests != st.Submitted {
		t.Errorf("request meter %d != submitted %d", m.Requests, st.Submitted)
	}
	if got := web.TotalRequests(); got != st.Submitted {
		t.Errorf("web saw %d requests, mediator claims %d", got, st.Submitted)
	}
}

func TestStructuredQueryVertical(t *testing.T) {
	web, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 2, RowsPerSite: 200})
	// Pick a make that exists in site 0's data.
	var mk string
	for _, s := range web.Sites() {
		if s.Spec.Domain == "usedcars" {
			mk = s.Table.DistinctStrings("make")[0]
			break
		}
	}
	answers := m.StructuredQuery(context.Background(), "usedcars", []query.Predicate{query.Eq("make", mk)}, 50)
	if len(answers) == 0 {
		t.Fatalf("structured query for make=%s found nothing", mk)
	}
	for _, a := range answers {
		if !strings.Contains(a.Record, mk) {
			t.Errorf("record lacks make %s: %q", mk, a.Record)
		}
	}
}

func TestBindPredicates(t *testing.T) {
	src := &Source{Mappings: map[string]string{
		"make": "mk", "price": "maxprice", "year": "yr",
	}}
	parse := func(s string) query.Predicate {
		p, err := query.Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		return p
	}
	b := src.bindPredicates([]query.Predicate{
		query.Eq("make", "santa"),
		query.Eq("make", "fe"), // same input: concatenates in order
		parse("price<=9000"),
		parse("year:2004..2007"),
		query.Eq("color", "red"), // unmapped: skipped
	})
	want := map[string]string{"mk": "santa fe", "maxprice": "9000", "yr": "2004"}
	if len(b) != len(want) {
		t.Fatalf("binding = %v, want %v", b, want)
	}
	for in, v := range want {
		if b[in] != v {
			t.Errorf("binding[%s] = %q, want %q", in, b[in], v)
		}
	}
}

func TestMediatorQueriesPOSTSites(t *testing.T) {
	// E12's flip side: POST forms are invisible to the surfacer but
	// fully usable by the mediator.
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("govdocs", 0, 11, 150)
	if err != nil {
		t.Fatal(err)
	}
	post := webgen.AsPost(site)
	web.AddSite(post)
	fetch := webx.NewFetcher(web)
	m := NewMediator(fetch)
	page, err := fetch.GetCtx(context.Background(), post.FormURL())
	if err != nil {
		t.Fatal(err)
	}
	base := mustURL(t, page.URL)
	f, err := form.FromDecl(base, page.Forms()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if f.Method != "post" {
		t.Fatalf("method = %s", f.Method)
	}
	if _, err := m.Register(f); err != nil {
		t.Fatal(err)
	}
	topic := post.Table.DistinctStrings("topic")[0]
	answers, st := m.Answer(context.Background(), "public records about "+topic, 10)
	if st.Submitted == 0 || len(answers) == 0 {
		t.Fatalf("POST mediation failed: stats=%+v answers=%d", st, len(answers))
	}
}

func TestRegisterUnmappableForm(t *testing.T) {
	m := NewMediator(nil)
	f := formFromHTMLT(t, `<form action="/x"><input type="text" name="frobnicator"></form>`)
	if _, err := m.Register(f); err == nil {
		t.Error("unmappable form registered")
	}
}

func TestMaxRoutedCap(t *testing.T) {
	_, m := mediatorOver(t, webgen.WorldConfig{Seed: 3, SitesPerDom: 4, RowsPerSite: 50})
	m.MaxRouted = 2
	srcs := m.Route("homes houses apartments in seattle denver")
	if len(srcs) > 2 {
		t.Errorf("MaxRouted violated: %d", len(srcs))
	}
}
