// Package virtual implements the virtual-integration (mediator)
// approach of §3.1: per-domain mediated schemas, semantic mappings from
// form inputs to mediated attributes, query-time routing of keyword
// queries to relevant sources, and reformulation of those queries into
// form submissions.
//
// It exists as the paper's counterpoint to surfacing: excellent inside
// a vertical (richer queries, live results, POST forms, result
// merging), but dependent on schemas and mappings that must exist per
// domain, and unable to answer queries its schemas cannot express —
// the behaviours experiments E2, E3 and E12 measure.
package virtual

import (
	"strings"

	"deepweb/internal/query"
)

// Attribute is one element of a mediated schema.
type Attribute struct {
	Name string
	// Synonyms are alternative names seen on real forms; the mapper
	// matches input names/labels against them.
	Synonyms []string
	// Values is the attribute's known value vocabulary (the domain
	// knowledge a vertical search engine curates). Query tokens are
	// bound to attributes through it.
	Values []string
	// Numeric marks attributes whose values are numbers (prices,
	// years); numeric query tokens can bind to them.
	Numeric bool
}

// Schema is the mediated schema of one domain.
type Schema struct {
	Domain string
	// RoutingWords are domain-indicative query words (beyond attribute
	// values) used to decide a keyword query belongs to this domain.
	RoutingWords []string
	Attributes   []Attribute
}

// attrByToken returns the attribute a (lower-case) query token binds
// to, if any: a value-vocabulary hit, or a numeric token for a numeric
// attribute.
func (s *Schema) attrByToken(tok string) (string, bool) {
	for _, a := range s.Attributes {
		for _, v := range a.Values {
			if v == tok {
				return a.Name, true
			}
		}
	}
	if query.IsNumber(tok) {
		for _, a := range s.Attributes {
			if a.Numeric {
				return a.Name, true
			}
		}
	}
	return "", false
}

// matchScore scores how well a form input (name+label) maps to the
// attribute: 2 for an exact name match, 1 for a substring or synonym
// match, 0 for none. The weighting keeps a form's own vocabulary ahead
// of cross-domain synonym collisions when classifying domains.
func (a Attribute) matchScore(name, label string) int {
	n := strings.ToLower(name)
	if n == strings.ToLower(a.Name) {
		return 2
	}
	hay := n + " " + strings.ToLower(label)
	if strings.Contains(hay, strings.ToLower(a.Name)) {
		return 1
	}
	for _, syn := range a.Synonyms {
		if strings.Contains(hay, strings.ToLower(syn)) {
			return 1
		}
	}
	return 0
}
