package virtual

import (
	"strconv"

	"deepweb/internal/datagen"
)

// BuiltinSchemas returns mediated schemas for the verticals of the
// synthetic web. In the real system each of these is weeks of curation
// per domain — the paper's core scaling objection to virtual
// integration ("creating a mediated schema for the web would be an epic
// challenge"); here they are code, but code that must be written per
// domain, which is exactly the point.
func BuiltinSchemas() []*Schema {
	years := make([]string, 0, 120)
	for y := 1900; y <= 2009; y++ {
		years = append(years, strconv.Itoa(y))
	}
	states := dedupe(datagen.USStates)
	var models []string
	for _, ms := range datagen.CarModels {
		models = append(models, ms...)
	}
	return []*Schema{
		{
			Domain:       "usedcars",
			RoutingWords: []string{"car", "cars", "used", "auto", "vehicle", "mileage"},
			Attributes: []Attribute{
				{Name: "make", Values: datagen.CarMakes},
				{Name: "model", Values: models},
				{Name: "year", Synonyms: []string{"yr"}, Numeric: true, Values: years},
				{Name: "price", Synonyms: []string{"cost", "amount"}, Numeric: true},
				{Name: "zip", Synonyms: []string{"zipcode", "postal"}, Numeric: true},
				{Name: "city", Synonyms: []string{"town"}, Values: datagen.USCities},
			},
		},
		{
			Domain:       "realestate",
			RoutingWords: []string{"home", "homes", "house", "apartment", "condo", "rental", "bedroom", "bedrooms", "loft", "townhouse", "estate"},
			Attributes: []Attribute{
				{Name: "city", Synonyms: []string{"town"}, Values: datagen.USCities},
				{Name: "type", Synonyms: []string{"property"}, Values: []string{"house", "condo", "apartment", "townhouse", "loft"}},
				{Name: "bedrooms", Synonyms: []string{"beds", "br"}, Numeric: true, Values: []string{"1", "2", "3", "4", "5", "6"}},
				{Name: "price", Synonyms: []string{"cost"}, Numeric: true},
			},
		},
		{
			Domain:       "jobs",
			RoutingWords: []string{"job", "jobs", "hiring", "career", "position", "employment"},
			Attributes: []Attribute{
				{Name: "title", Synonyms: []string{"job title", "position"}, Values: datagen.JobTitles},
				{Name: "company", Synonyms: []string{"employer"}, Values: datagen.Companies},
				{Name: "city", Values: datagen.USCities},
				{Name: "state", Values: states},
				{Name: "salary", Synonyms: []string{"pay", "wage"}, Numeric: true},
			},
		},
		{
			Domain:       "library",
			RoutingWords: []string{"book", "books", "library", "catalog", "author", "isbn"},
			Attributes: []Attribute{
				{Name: "subject", Synonyms: []string{"topic", "category"}, Values: datagen.BookSubjects},
				{Name: "year", Synonyms: []string{"published"}, Numeric: true, Values: years},
				{Name: "keywords", Synonyms: []string{"q", "query", "search", "terms"}},
			},
		},
		{
			Domain:       "govdocs",
			RoutingWords: []string{"permit", "regulation", "regulations", "notice", "agency", "public", "records"},
			Attributes: []Attribute{
				{Name: "agency", Synonyms: []string{"office", "department"}, Values: datagen.Agencies},
				{Name: "topic", Synonyms: []string{"subject"}, Values: datagen.GovTopics},
				{Name: "year", Numeric: true, Values: years},
				{Name: "keywords", Synonyms: []string{"q", "search"}},
			},
		},
		{
			Domain:       "stores",
			RoutingWords: []string{"store", "stores", "outlet", "locator", "hours"},
			Attributes: []Attribute{
				{Name: "zip", Synonyms: []string{"zipcode", "postal"}, Numeric: true},
				{Name: "state", Values: states},
				{Name: "city", Values: datagen.USCities},
			},
		},
		{
			Domain:       "media",
			RoutingWords: []string{"movie", "movies", "music", "software", "game", "games", "dvd", "album"},
			Attributes: []Attribute{
				{Name: "category", Synonyms: []string{"catalog", "section"}, Values: datagen.MediaCategories},
				{Name: "keywords", Synonyms: []string{"q", "search", "title"}},
			},
		},
		{
			Domain:       "faculty",
			RoutingWords: []string{"professor", "faculty", "university", "department", "bio", "biography"},
			Attributes: []Attribute{
				{Name: "department", Values: datagen.Departments},
				{Name: "name", Synonyms: []string{"person"}},
			},
		},
		{
			Domain:       "recipes",
			RoutingWords: []string{"recipe", "recipes", "cook", "cooking", "cuisine", "dish", "ingredients"},
			Attributes: []Attribute{
				{Name: "cuisine", Values: datagen.Cuisines},
				{Name: "dish", Synonyms: []string{"meal"}, Values: datagen.Dishes},
				{Name: "minutes", Synonyms: []string{"time", "duration"}, Numeric: true},
			},
		},
	}
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}
