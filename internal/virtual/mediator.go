package virtual

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"deepweb/internal/form"
	"deepweb/internal/htmlx"
	"deepweb/internal/query"
	"deepweb/internal/textutil"
	"deepweb/internal/webx"
)

// Source is a deep-web form registered with the mediator: the form plus
// its semantic mapping into a mediated schema.
type Source struct {
	Form   *form.Form
	Schema *Schema
	// Mappings maps mediated attribute name → form input name.
	Mappings map[string]string
}

// Mediator is a multi-domain virtual-integration system: schemas,
// mapped sources, routing and reformulation. One mediator instance is
// "a vertical search engine per domain" glued together — which the
// paper argues does not scale past a handful of domains; experiments
// hold it to a handful.
type Mediator struct {
	Fetch   *webx.Fetcher
	Schemas []*Schema
	Sources []*Source
	// MaxRouted caps sources queried per keyword query; beyond it the
	// mediator is imposing the "unreasonable load" of §3.1.
	MaxRouted int

	// Requests counts live form submissions issued at query time.
	Requests int
}

// NewMediator builds a mediator over the builtin schemas.
func NewMediator(f *webx.Fetcher) *Mediator {
	return &Mediator{Fetch: f, Schemas: BuiltinSchemas(), MaxRouted: 25}
}

// Register classifies a form into a domain and builds its semantic
// mapping. It fails when no schema maps at least one input — the
// paper's boundary case: "forms cannot be classified into a small set
// of domains".
func (m *Mediator) Register(f *form.Form) (*Source, error) {
	var best *Source
	bestScore := 0
	for _, schema := range m.Schemas {
		mappings := map[string]string{}
		score := 0
		for _, attr := range schema.Attributes {
			bestIn, bestInScore := "", 0
			for _, in := range f.Bindable() {
				if s := attr.matchScore(in.Name, in.Label); s > bestInScore {
					bestIn, bestInScore = in.Name, s
				}
			}
			if bestInScore > 0 {
				mappings[attr.Name] = bestIn
				score += bestInScore
			}
		}
		if len(mappings) > 0 && score > bestScore {
			best = &Source{Form: f, Schema: schema, Mappings: mappings}
			bestScore = score
		}
	}
	if best == nil || bestScore == 0 {
		return nil, fmt.Errorf("virtual: no schema maps form %s", f.ID)
	}
	m.Sources = append(m.Sources, best)
	return best, nil
}

// Route returns the sources whose domain a keyword query plausibly
// belongs to, most relevant first. The score combines routing-word hits
// and value-vocabulary hits; zero-score domains are never queried.
func (m *Mediator) Route(query string) []*Source {
	toks := textutil.Tokenize(query) // Tokenize lower-cases
	type scored struct {
		src   *Source
		score int
	}
	var out []scored
	for _, src := range m.Sources {
		score := 0
		for _, t := range toks {
			for _, rw := range src.Schema.RoutingWords {
				if t == rw {
					score += 2
				}
			}
			if _, ok := src.Schema.attrByToken(t); ok {
				score++
			}
		}
		if score > 0 {
			out = append(out, scored{src, score})
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].score > out[j].score })
	srcs := make([]*Source, 0, len(out))
	for _, s := range out {
		srcs = append(srcs, s.src)
	}
	if len(srcs) > m.MaxRouted {
		srcs = srcs[:m.MaxRouted]
	}
	return srcs
}

// Reformulate translates a keyword query into a binding for one
// source: tokens bind to mediated attributes through value
// vocabularies — becoming equality predicates on the mediated schema —
// then predicates translate to form inputs through bindPredicates.
// Leftover content tokens go to a mapped free-keyword attribute if one
// exists. ok is false when nothing binds — the query is outside what
// the schema can express (the §3.2 fortuitous-query failure mode).
func (m *Mediator) Reformulate(kw string, src *Source) (form.Binding, bool) {
	toks := textutil.Tokenize(kw) // Tokenize lower-cases
	var preds []query.Predicate
	var leftover []string
	for _, t := range toks {
		if attr, ok := src.Schema.attrByToken(t); ok {
			if _, mapped := src.Mappings[attr]; mapped {
				preds = append(preds, query.Eq(attr, t))
				continue
			}
		}
		if !textutil.IsStopword(t) && !isRoutingWord(src.Schema, t) {
			leftover = append(leftover, t)
		}
	}
	b := src.bindPredicates(preds)
	if kwInput, ok := src.Mappings["keywords"]; ok && len(leftover) > 0 {
		b[kwInput] = strings.Join(leftover, " ")
	}
	return b, len(b) > 0
}

// bindPredicates translates mediated-schema predicates into one form
// binding through the source's attribute→input mapping: equality
// predicates bind their value, comparisons bind their bound, ranges
// bind their lower end (a single text input can carry one value; the
// form's own semantics do the rest). Predicates on unmapped attributes
// are skipped — the source simply can't express them. Multiple values
// binding the same input concatenate in predicate order, so multi-token
// values ("santa" "fe") reassemble.
func (src *Source) bindPredicates(preds []query.Predicate) form.Binding {
	b := form.Binding{}
	for _, p := range preds {
		input, ok := src.Mappings[p.Attr]
		if !ok {
			continue
		}
		val := p.Value
		if p.Op == query.OpRange {
			val = strconv.FormatFloat(p.Lo, 'f', -1, 64)
		}
		if prev, exists := b[input]; exists {
			b[input] = prev + " " + val
		} else {
			b[input] = val
		}
	}
	return b
}

func isRoutingWord(s *Schema, t string) bool {
	for _, rw := range s.RoutingWords {
		if t == rw {
			return true
		}
	}
	return false
}

// Answer is one mediated result record.
type Answer struct {
	Site   string
	Record string
	Score  float64
}

// AnswerStats meters one Answer call.
type AnswerStats struct {
	Routed      int // sources the query was routed to
	Submitted   int // live form submissions issued
	Unroutable  bool
	NoBindings  int // routed sources the query could not be reformulated for
	RecordsSeen int
}

// Answer routes, reformulates, submits live, extracts records and
// merges them ranked by overlap with the query. This is the full
// query-time pipeline whose per-query source load E2 meters.
func (m *Mediator) Answer(ctx context.Context, query string, k int) ([]Answer, AnswerStats) {
	var st AnswerStats
	srcs := m.Route(query)
	st.Routed = len(srcs)
	if len(srcs) == 0 {
		st.Unroutable = true
		return nil, st
	}
	qv := textutil.NewTermVector(textutil.ContentTokens(query))
	var answers []Answer
	for _, src := range srcs {
		b, ok := m.Reformulate(query, src)
		if !ok {
			st.NoBindings++
			continue
		}
		recs := m.submit(ctx, src, b)
		st.Submitted++
		for _, rec := range recs {
			rv := textutil.NewTermVector(textutil.ContentTokens(rec))
			score := textutil.Cosine(qv, rv)
			if score > 0 {
				answers = append(answers, Answer{Site: src.Form.Site, Record: rec, Score: score})
			}
		}
	}
	st.RecordsSeen = len(answers)
	sort.SliceStable(answers, func(i, j int) bool {
		if answers[i].Score != answers[j].Score {
			return answers[i].Score > answers[j].Score
		}
		return answers[i].Record < answers[j].Record
	})
	if k < len(answers) {
		answers = answers[:k]
	}
	return answers, st
}

// StructuredQuery is the vertical-search entry point (§3.1): typed
// predicates over the mediated schema of one domain, fanned out to
// every source of that domain and merged. Unlike keyword Answer, all
// attribute semantics are preserved — this is where virtual integration
// genuinely shines. Predicates share the internal/query DSL the search
// surface speaks, so the same []Predicate drives either backend.
func (m *Mediator) StructuredQuery(ctx context.Context, domain string, preds []query.Predicate, k int) []Answer {
	var answers []Answer
	for _, src := range m.Sources {
		if src.Schema.Domain != domain {
			continue
		}
		b := src.bindPredicates(preds)
		if len(b) == 0 {
			continue
		}
		for _, rec := range m.submit(ctx, src, b) {
			answers = append(answers, Answer{Site: src.Form.Site, Record: rec, Score: 1})
		}
	}
	sort.SliceStable(answers, func(i, j int) bool { return answers[i].Record < answers[j].Record })
	if k < len(answers) {
		answers = answers[:k]
	}
	return answers
}

// submit issues one live form submission (GET or POST — the mediator
// is not limited to GET the way the surfacer is, §3.2) and extracts
// result records as the text of repeated list items.
func (m *Mediator) submit(ctx context.Context, src *Source, b form.Binding) []string {
	m.Requests++
	var page *webx.Page
	var err error
	if src.Form.Method == "get" {
		page, err = m.Fetch.GetCtx(ctx, src.Form.SubmitURL(b))
	} else {
		page, err = m.Fetch.PostCtx(ctx, src.Form.Action.String(), src.Form.PostBody(b))
	}
	if err != nil || page.Status != 200 {
		return nil
	}
	var recs []string
	for _, li := range htmlx.Find(page.Doc, "li") {
		if txt := strings.TrimSpace(htmlx.VisibleText(li)); txt != "" {
			recs = append(recs, txt)
		}
	}
	return recs
}
