package datagen

import (
	"testing"

	"deepweb/internal/reldb"
)

func TestVocabularyAlignment(t *testing.T) {
	if len(USCities) != len(USStates) {
		t.Fatalf("cities (%d) and states (%d) misaligned", len(USCities), len(USStates))
	}
	if len(USCities) != len(zipBases) {
		t.Fatalf("cities (%d) and zip bases (%d) misaligned", len(USCities), len(zipBases))
	}
	if len(CarMakes) != len(CarModels) {
		t.Fatalf("makes (%d) and model lists (%d) misaligned", len(CarMakes), len(CarModels))
	}
	for i, models := range CarModels {
		if len(models) == 0 {
			t.Errorf("make %q has no models", CarMakes[i])
		}
	}
	if len(MediaCategories) != len(MediaTitles) {
		t.Fatalf("media categories and title lists misaligned")
	}
}

func TestZipForCityFiveDigits(t *testing.T) {
	for c := range USCities {
		for i := 0; i < 100; i += 13 {
			z := ZipForCity(c, i)
			if z < 1000 || z > 99999 {
				t.Errorf("zip %d for city %d out of range", z, c)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	gens := map[string]func(int64, int) *reldb.Table{
		"usedcars": UsedCars, "realestate": RealEstate, "jobs": Jobs,
		"library": Library, "govdocs": GovDocs, "media": MediaCatalog,
		"faculty": Faculty, "stores": Stores, "recipes": Recipes,
	}
	for name, gen := range gens {
		a, b := gen(99, 50), gen(99, 50)
		if a.Len() != 50 || b.Len() != 50 {
			t.Fatalf("%s: wrong row count", name)
		}
		for i := 0; i < a.Len(); i++ {
			if a.RowText(i) != b.RowText(i) {
				t.Errorf("%s: row %d differs across same-seed runs", name, i)
				break
			}
		}
		c := gen(100, 50)
		same := true
		for i := 0; i < a.Len(); i++ {
			if a.RowText(i) != c.RowText(i) {
				same = false
				break
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical tables", name)
		}
	}
}

func TestUsedCarsModelMatchesMake(t *testing.T) {
	tbl := UsedCars(7, 500)
	makeIdx := map[string]int{}
	for i, m := range CarMakes {
		makeIdx[m] = i
	}
	mi, mo := tbl.ColIndex("make"), tbl.ColIndex("model")
	for i := 0; i < tbl.Len(); i++ {
		r := tbl.Row(i)
		models := CarModels[makeIdx[r[mi].Str]]
		found := false
		for _, m := range models {
			if m == r[mo].Str {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("row %d: model %q not a %q model", i, r[mo].Str, r[mi].Str)
		}
	}
}

func TestUsedCarsValueRanges(t *testing.T) {
	tbl := UsedCars(7, 300)
	min, max, _ := tbl.MinMaxInt("price")
	if min < 500 || max > 25000 {
		t.Errorf("price out of spec: [%d,%d]", min, max)
	}
	ymin, ymax, _ := tbl.MinMaxInt("year")
	if ymin < 1990 || ymax > 2009 {
		t.Errorf("year out of spec: [%d,%d]", ymin, ymax)
	}
}

func TestUsedCarsZipfSkew(t *testing.T) {
	tbl := UsedCars(11, 2000)
	counts := map[string]int{}
	mi := tbl.ColIndex("make")
	for i := 0; i < tbl.Len(); i++ {
		counts[tbl.Row(i)[mi].Str]++
	}
	// Head make must dominate: more than 3x the mean.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if mean := 2000 / len(CarMakes); maxC < 3*mean {
		t.Errorf("no head skew: max make count %d vs mean %d", maxC, mean)
	}
}

func TestFacultyAwardFraction(t *testing.T) {
	tbl := Faculty(5, 2000)
	bi := tbl.ColIndex("bio")
	withAward := 0
	for i := 0; i < tbl.Len(); i++ {
		if len(tbl.Row(i)[bi].Str) > 0 && containsAny(tbl.Row(i)[bi].Str, Awards) {
			withAward++
		}
	}
	frac := float64(withAward) / 2000
	if frac < 0.05 || frac > 0.18 {
		t.Errorf("award fraction %.3f outside ~10%% band", frac)
	}
}

func containsAny(s string, subs []string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) && index(s, sub) {
			return true
		}
	}
	return false
}

func index(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestMediaCatalogCategoriesCovered(t *testing.T) {
	tbl := MediaCatalog(3, 400)
	got := tbl.DistinctStrings("category")
	if len(got) != len(MediaCategories) {
		t.Errorf("categories present = %v, want all of %v", got, MediaCategories)
	}
}

func TestStoresZipConsistentWithCity(t *testing.T) {
	tbl := Stores(9, 200)
	ci, zi := tbl.ColIndex("city"), tbl.ColIndex("zip")
	cityIdx := map[string]int{}
	for i, c := range USCities {
		cityIdx[c] = i
	}
	for i := 0; i < tbl.Len(); i++ {
		r := tbl.Row(i)
		base := zipBases[cityIdx[r[ci].Str]]
		if z := int(r[zi].Int); z < base || z >= base+40 {
			t.Fatalf("row %d: zip %d outside city band [%d,%d)", i, z, base, base+40)
		}
	}
}

func TestRecipesCuisineAligned(t *testing.T) {
	tbl := Recipes(13, 100)
	di, ci := tbl.ColIndex("dish"), tbl.ColIndex("cuisine")
	dishIdx := map[string]int{}
	for i, d := range Dishes {
		dishIdx[d] = i
	}
	for i := 0; i < tbl.Len(); i++ {
		r := tbl.Row(i)
		want := Cuisines[dishIdx[r[di].Str]%len(Cuisines)]
		if r[ci].Str != want {
			t.Fatalf("dish %q has cuisine %q, want %q", r[di].Str, r[ci].Str, want)
		}
	}
}

func TestGovDocsTitlesUnique(t *testing.T) {
	tbl := GovDocs(21, 300)
	ti := tbl.ColIndex("title")
	seen := map[string]bool{}
	for i := 0; i < tbl.Len(); i++ {
		title := tbl.Row(i)[ti].Str
		if seen[title] {
			t.Fatalf("duplicate gov doc title %q", title)
		}
		seen[title] = true
	}
}
