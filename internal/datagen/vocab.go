// Package datagen generates the synthetic structured data behind every
// deep-web site in the reproduction: per-domain record tables with
// Zipf-skewed value frequencies, drawn from fixed vocabularies. All
// generation is seeded and deterministic, so experiments are
// reproducible and ground truth is always available.
package datagen

// Vocabularies. These are fixed, ordinary-English word lists; the point
// is not realism of individual values but realistic *structure*: typed
// values (zips, cities, prices, dates), correlated pairs (make→model),
// small categorical domains served by select menus and large ones served
// by text boxes (paper §4.1).

// USCities are city names used by city-typed inputs. Paired positionally
// with USStates and ZipBases.
var USCities = []string{
	"seattle", "portland", "san francisco", "los angeles", "san diego",
	"phoenix", "denver", "dallas", "houston", "austin",
	"chicago", "detroit", "minneapolis", "st louis", "kansas city",
	"atlanta", "miami", "orlando", "charlotte", "nashville",
	"boston", "new york", "philadelphia", "pittsburgh", "baltimore",
	"washington", "richmond", "raleigh", "columbus", "cleveland",
	"cincinnati", "indianapolis", "milwaukee", "memphis", "new orleans",
	"oklahoma city", "salt lake city", "las vegas", "sacramento", "fresno",
	"tucson", "albuquerque", "omaha", "tulsa", "wichita",
	"boise", "spokane", "anchorage", "honolulu", "tampa",
}

// USStates are two-letter state codes aligned with USCities.
var USStates = []string{
	"wa", "or", "ca", "ca", "ca",
	"az", "co", "tx", "tx", "tx",
	"il", "mi", "mn", "mo", "mo",
	"ga", "fl", "fl", "nc", "tn",
	"ma", "ny", "pa", "pa", "md",
	"dc", "va", "nc", "oh", "oh",
	"oh", "in", "wi", "tn", "la",
	"ok", "ut", "nv", "ca", "ca",
	"az", "nm", "ne", "ok", "ks",
	"id", "wa", "ak", "hi", "fl",
}

// zipBases gives each city a 5-digit zip prefix region; individual zips
// are base + offset. Aligned with USCities.
var zipBases = []int{
	98100, 97200, 94100, 90000, 92100,
	85000, 80200, 75200, 77000, 78700,
	60600, 48200, 55400, 63100, 64100,
	30300, 33100, 32800, 28200, 37200,
	2100, 10000, 19100, 15200, 21200,
	20000, 23200, 27600, 43200, 44100,
	45200, 46200, 53200, 38100, 70100,
	73100, 84100, 89100, 95800, 93700,
	85700, 87100, 68100, 74100, 67200,
	83700, 99200, 99500, 96800, 33600,
}

// CarMakes lists car manufacturers; CarModels[i] are the models of
// CarMakes[i] — the canonical correlated input pair of §4.2.
var CarMakes = []string{
	"ford", "honda", "toyota", "chevrolet", "nissan",
	"volkswagen", "bmw", "subaru", "hyundai", "mazda",
	"jeep", "dodge", "kia", "audi", "volvo",
}

// CarModels are the models per make, aligned with CarMakes.
var CarModels = [][]string{
	{"focus", "escort", "taurus", "mustang", "explorer", "ranger", "fiesta"},
	{"civic", "accord", "crv", "pilot", "odyssey", "fit"},
	{"corolla", "camry", "prius", "rav4", "tacoma", "sienna", "yaris"},
	{"impala", "malibu", "cavalier", "silverado", "tahoe", "cruze"},
	{"altima", "sentra", "maxima", "pathfinder", "frontier", "versa"},
	{"jetta", "golf", "passat", "beetle", "tiguan"},
	{"325i", "328i", "530i", "x3", "x5", "z4"},
	{"outback", "forester", "impreza", "legacy", "crosstrek"},
	{"elantra", "sonata", "santa fe", "tucson suv", "accent"},
	{"mazda3", "mazda6", "cx5", "miata", "protege"},
	{"wrangler", "cherokee", "liberty", "compass", "patriot"},
	{"ram", "caravan", "charger", "durango", "neon"},
	{"optima", "sorento", "sportage", "rio", "soul"},
	{"a4", "a6", "q5", "tt", "allroad"},
	{"s60", "v70", "xc90", "s40", "850"},
}

// JobTitles are used by the jobs vertical.
var JobTitles = []string{
	"software engineer", "data analyst", "project manager", "nurse",
	"accountant", "electrician", "plumber", "teacher", "librarian",
	"chemist", "biologist", "paralegal", "chef", "barista",
	"mechanic", "welder", "carpenter", "architect", "surveyor",
	"pharmacist", "dental hygienist", "radiology technician",
	"truck driver", "dispatcher", "warehouse supervisor",
	"marketing coordinator", "sales representative", "graphic designer",
	"technical writer", "systems administrator",
}

// Companies employ job records.
var Companies = []string{
	"acme corp", "globex", "initech", "umbrella logistics", "stark industries",
	"wayne enterprises", "wonka foods", "tyrell systems", "cyberdyne labs",
	"aperture science", "hooli", "pied piper", "vandelay industries",
	"dunder mifflin", "sterling cooper", "oscorp", "massive dynamic",
	"soylent foods", "virtucon", "zorin industries",
}

// BookSubjects classify library records.
var BookSubjects = []string{
	"history", "biography", "science", "mathematics", "poetry",
	"philosophy", "economics", "geography", "astronomy", "chemistry",
	"botany", "zoology", "medicine", "law", "architecture",
	"music theory", "painting", "sculpture", "linguistics", "archaeology",
}

// FirstNames and LastNames combine into person names (authors, faculty).
var FirstNames = []string{
	"james", "mary", "robert", "patricia", "john", "jennifer", "michael",
	"linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
	"joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
	"yuki", "priya", "omar", "fatima", "carlos", "maria", "ivan", "olga",
	"chen",
}

// LastNames pair with FirstNames.
var LastNames = []string{
	"smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
	"davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
	"wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
	"lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
	"ramirez", "lewis", "nakamura",
}

// Agencies are the government/NGO portals of the paper's long-tail
// discussion ("governmental and NGO portals … rules and regulations,
// survey results", §3.2).
var Agencies = []string{
	"environmental protection bureau", "county health department",
	"state transportation authority", "fisheries commission",
	"rural electrification board", "historic preservation office",
	"water resources council", "public records division",
	"consumer safety agency", "forestry service",
	"housing assistance program", "small farms institute",
	"coastal management council", "air quality district",
	"veterans affairs office",
}

// GovTopics classify government documents.
var GovTopics = []string{
	"permits", "regulations", "grants", "inspections", "licensing",
	"zoning", "easements", "water rights", "emissions", "recycling",
	"food safety", "immunization", "land survey", "floodplain",
	"noise ordinance", "well drilling", "septic systems", "burn bans",
}

// Cuisines classify restaurant/recipe records; a typical small
// select-menu domain (§4.1).
var Cuisines = []string{
	"italian", "mexican", "thai", "indian", "japanese", "french",
	"greek", "ethiopian", "vietnamese", "korean", "spanish", "lebanese",
}

// Dishes are recipe names seeded per cuisine by index arithmetic.
var Dishes = []string{
	"lasagna", "tacos", "pad thai", "butter chicken", "ramen", "cassoulet",
	"moussaka", "injera platter", "pho", "bibimbap", "paella", "kibbeh",
	"risotto", "enchiladas", "green curry", "biryani", "udon", "ratatouille",
	"souvlaki", "doro wat", "banh mi", "bulgogi", "gazpacho", "tabbouleh",
}

// MediaCategories are the catalogs of the database-selection form (§4.2):
// one select menu chooses the catalog, one text box searches it.
var MediaCategories = []string{"movies", "music", "software", "games"}

// MediaTitles per category; the §4.2 point is that good keywords differ
// per catalog ("microsoft" works for software, not for movies).
var MediaTitles = [][]string{
	{ // movies
		"the long harvest", "midnight ferry", "glass mountain",
		"the cartographer", "seven lanterns", "river of ash",
		"the last projectionist", "winter circus", "paper sails",
		"the violet hour", "stolen meridian", "the quiet engine",
	},
	{ // music
		"blue delta sessions", "northern lights suite", "tin roof blues",
		"harmonic drift", "the velvet metronome", "cedar canyon songs",
		"electric prairie", "nocturnes for two", "brass parade",
		"the hollow choir", "saltwater hymns", "analog heart",
	},
	{ // software
		"microsoft office", "turbotax deluxe", "photoshop elements",
		"norton antivirus", "quickbooks pro", "autocad lite",
		"dreamweaver studio", "visual basic toolkit", "linux mandrake",
		"winzip utilities", "realplayer plus", "netscape composer",
	},
	{ // games
		"dungeon of the crystal king", "starfleet tactics", "kart frenzy",
		"puzzle harbor", "dragon orchard", "mech arena", "pixel pirates",
		"tower alchemist", "rally legends", "galaxy trader",
		"castle siege II", "chess master gold",
	},
}

// Departments for the faculty-bio site of the fortuitous-query
// experiment (§3.2's "SIGMOD Innovations Award MIT professor" example).
var Departments = []string{
	"computer science", "electrical engineering", "mathematics",
	"physics", "chemistry", "biology", "economics", "linguistics",
	"mechanical engineering", "civil engineering",
}

// Awards appear inside faculty biography text — reachable by keyword
// search over surfaced pages, invisible to a department-keyed mediator.
var Awards = []string{
	"sigmod innovations award", "turing award", "fields medal",
	"dijkstra prize", "godel prize", "knuth prize", "nobel prize",
	"abel prize", "von neumann medal", "kyoto prize",
}

// NoteWords pad free-text columns so result pages have realistic,
// diverse vocabulary.
var NoteWords = []string{
	"excellent", "condition", "rare", "vintage", "certified", "original",
	"restored", "updated", "spacious", "sunny", "quiet", "corner",
	"downtown", "suburban", "remodeled", "hardwood", "garage", "garden",
	"waterfront", "mountain", "view", "furnished", "heated", "insulated",
}

// ZipForCity returns the i-th zip code of the city at cityIdx. Offsets
// cycle within a 40-zip band so zips stay 5 digits and city-consistent.
func ZipForCity(cityIdx, i int) int {
	return zipBases[cityIdx%len(zipBases)] + (i % 40)
}

// CityCount returns the number of cities in the vocabulary.
func CityCount() int { return len(USCities) }
