package datagen

import (
	"fmt"
	"math/rand"
	"strings"

	"deepweb/internal/reldb"
)

// Generators return fully-populated tables for each vertical the paper's
// examples mention: used cars, real estate, jobs (§3.1 classifieds),
// store locators and government portals (§3.2), library catalogs and
// media catalogs (§4), and faculty biographies (the fortuitous-query
// example). Value frequencies are Zipf-skewed: real classified data is
// head-heavy, which is exactly what makes informativeness testing and
// keyword probing non-trivial.

// zipfIdx draws a Zipf-skewed index in [0,n) from r with mild skew.
func zipfIdx(r *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	z := rand.NewZipf(r, 1.3, 1, uint64(n-1))
	return int(z.Uint64())
}

// noteText builds a short descriptive phrase from NoteWords.
func noteText(r *rand.Rand, n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = NoteWords[r.Intn(len(NoteWords))]
	}
	return strings.Join(parts, " ")
}

// UsedCars generates a used-car classified table: the running example of
// the paper (ranges over price/mileage/year, make→model correlation).
//
// Columns: make, model (string); year, price, mileage, zip (int);
// city (string); notes (text).
func UsedCars(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("usedcars", []reldb.Column{
		{Name: "make", Kind: reldb.KindString},
		{Name: "model", Kind: reldb.KindString},
		{Name: "year", Kind: reldb.KindInt},
		{Name: "price", Kind: reldb.KindInt},
		{Name: "mileage", Kind: reldb.KindInt},
		{Name: "city", Kind: reldb.KindString},
		{Name: "zip", Kind: reldb.KindInt},
		{Name: "notes", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		mk := zipfIdx(r, len(CarMakes))
		models := CarModels[mk]
		city := zipfIdx(r, len(USCities))
		note := noteText(r, 3)
		// ~15% of listings name a *different* make and model in free
		// text ("better mileage than the ford focus") — the §5.1
		// lost-semantics decoys that confuse a plain IR index (E13).
		if r.Intn(7) == 0 {
			omk := (mk + 1 + r.Intn(len(CarMakes)-1)) % len(CarMakes)
			om := CarModels[omk]
			note += " better mileage than the " + CarMakes[omk] + " " + om[r.Intn(len(om))]
		}
		t.MustInsert(reldb.Row{
			reldb.S(CarMakes[mk]),
			reldb.S(models[r.Intn(len(models))]),
			reldb.I(int64(1990 + r.Intn(20))),
			reldb.I(int64(500 + 250*r.Intn(98))), // $500..$25,000 in $250 steps
			reldb.I(int64(1000 * (5 + r.Intn(195)))),
			reldb.S(USCities[city]),
			reldb.I(int64(ZipForCity(city, i))),
			reldb.T(note),
		})
	}
	return t
}

// RealEstate generates property listings.
//
// Columns: city, state, type (string); zip, bedrooms, price (int);
// notes (text).
func RealEstate(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	types := []string{"house", "condo", "apartment", "townhouse", "loft"}
	t := reldb.MustNewTable("realestate", []reldb.Column{
		{Name: "city", Kind: reldb.KindString},
		{Name: "state", Kind: reldb.KindString},
		{Name: "type", Kind: reldb.KindString},
		{Name: "zip", Kind: reldb.KindInt},
		{Name: "bedrooms", Kind: reldb.KindInt},
		{Name: "price", Kind: reldb.KindInt},
		{Name: "notes", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		city := zipfIdx(r, len(USCities))
		t.MustInsert(reldb.Row{
			reldb.S(USCities[city]),
			reldb.S(USStates[city]),
			reldb.S(types[zipfIdx(r, len(types))]),
			reldb.I(int64(ZipForCity(city, i))),
			reldb.I(int64(1 + r.Intn(6))),
			reldb.I(int64(50000 + 5000*r.Intn(191))), // $50k..$1M
			reldb.T(noteText(r, 4)),
		})
	}
	return t
}

// Jobs generates job listings.
//
// Columns: title, company, city, state (string); salary (int);
// description (text).
func Jobs(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("jobs", []reldb.Column{
		{Name: "title", Kind: reldb.KindString},
		{Name: "company", Kind: reldb.KindString},
		{Name: "city", Kind: reldb.KindString},
		{Name: "state", Kind: reldb.KindString},
		{Name: "salary", Kind: reldb.KindInt},
		{Name: "description", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		city := zipfIdx(r, len(USCities))
		t.MustInsert(reldb.Row{
			reldb.S(JobTitles[zipfIdx(r, len(JobTitles))]),
			reldb.S(Companies[zipfIdx(r, len(Companies))]),
			reldb.S(USCities[city]),
			reldb.S(USStates[city]),
			reldb.I(int64(25000 + 1000*r.Intn(150))),
			reldb.T(noteText(r, 4)),
		})
	}
	return t
}

// Library generates a book catalog: a large-value-space domain whose
// titles and authors are reachable only via text-box probing (§4.1).
//
// Columns: title, author, subject (string); year (int); summary (text).
func Library(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("library", []reldb.Column{
		{Name: "title", Kind: reldb.KindString},
		{Name: "author", Kind: reldb.KindString},
		{Name: "subject", Kind: reldb.KindString},
		{Name: "year", Kind: reldb.KindInt},
		{Name: "summary", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		subj := zipfIdx(r, len(BookSubjects))
		title := fmt.Sprintf("the %s of %s",
			NoteWords[r.Intn(len(NoteWords))], BookSubjects[subj])
		author := FirstNames[r.Intn(len(FirstNames))] + " " + LastNames[r.Intn(len(LastNames))]
		t.MustInsert(reldb.Row{
			reldb.S(title),
			reldb.S(author),
			reldb.S(BookSubjects[subj]),
			reldb.I(int64(1900 + r.Intn(109))),
			reldb.T(noteText(r, 5)),
		})
	}
	return t
}

// GovDocs generates a government/NGO document portal — the paper's
// example of long-tail content that surfacing helps most (§3.2).
//
// Columns: agency, topic (string); year (int); title, body (text).
func GovDocs(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("govdocs", []reldb.Column{
		{Name: "agency", Kind: reldb.KindString},
		{Name: "topic", Kind: reldb.KindString},
		{Name: "year", Kind: reldb.KindInt},
		{Name: "title", Kind: reldb.KindText},
		{Name: "body", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		topic := GovTopics[zipfIdx(r, len(GovTopics))]
		t.MustInsert(reldb.Row{
			reldb.S(Agencies[zipfIdx(r, len(Agencies))]),
			reldb.S(topic),
			reldb.I(int64(1995 + r.Intn(14))),
			reldb.T(fmt.Sprintf("notice %04d regarding %s", i, topic)),
			reldb.T(noteText(r, 6)),
		})
	}
	return t
}

// MediaCatalog generates the four-catalog site of the database-selection
// experiment (§4.2): one table, category column selecting the catalog.
//
// Columns: category, title (string); year (int); description (text).
func MediaCatalog(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("media", []reldb.Column{
		{Name: "category", Kind: reldb.KindString},
		{Name: "title", Kind: reldb.KindString},
		{Name: "year", Kind: reldb.KindInt},
		{Name: "description", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		// Catalog sizes are Zipf-skewed: the dominant catalog's
		// vocabulary crowds a global keyword budget, which is what
		// makes per-catalog keyword sets matter (§4.2, E8).
		cat := zipfIdx(r, len(MediaCategories))
		titles := MediaTitles[cat]
		title := titles[zipfIdx(r, len(titles))]
		// Description vocabulary is category-specific on purpose: the
		// §4.2 claim is that good probe keywords differ per catalog
		// ("microsoft" works for software, not movies). Each catalog
		// draws adjectives from its own disjoint slice of NoteWords.
		per := len(NoteWords) / len(MediaCategories)
		adj1 := NoteWords[cat*per+r.Intn(per)]
		adj2 := NoteWords[cat*per+r.Intn(per)]
		t.MustInsert(reldb.Row{
			reldb.S(MediaCategories[cat]),
			reldb.S(title),
			reldb.I(int64(1985 + r.Intn(24))),
			reldb.T(adj1 + " " + adj2),
		})
	}
	return t
}

// Faculty generates university faculty biographies. A small fraction of
// bios mention a major award by name, reproducing §3.2's fortuitous
// query: the award is findable by keyword search over surfaced bio
// pages, but no mediated schema attribute exposes it.
//
// Columns: name, department (string); bio (text).
func Faculty(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("faculty", []reldb.Column{
		{Name: "name", Kind: reldb.KindString},
		{Name: "department", Kind: reldb.KindString},
		{Name: "bio", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		name := FirstNames[r.Intn(len(FirstNames))] + " " + LastNames[r.Intn(len(LastNames))]
		dept := Departments[r.Intn(len(Departments))]
		bio := fmt.Sprintf("professor of %s, research in %s", dept, noteText(r, 3))
		if r.Intn(10) == 0 { // ~10% of faculty carry a named award
			bio += ", recipient of the " + Awards[r.Intn(len(Awards))]
		}
		t.MustInsert(reldb.Row{reldb.S(name), reldb.S(dept), reldb.T(bio)})
	}
	return t
}

// Stores generates a store-locator table: the archetypal zip-code-typed
// form of §4.1 ("retrieves store locations by zip-code").
//
// Columns: name, city, state (string); zip (int); hours (text).
func Stores(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("stores", []reldb.Column{
		{Name: "name", Kind: reldb.KindString},
		{Name: "city", Kind: reldb.KindString},
		{Name: "state", Kind: reldb.KindString},
		{Name: "zip", Kind: reldb.KindInt},
		{Name: "hours", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		city := r.Intn(len(USCities))
		t.MustInsert(reldb.Row{
			reldb.S(fmt.Sprintf("%s outlet %d", Companies[zipfIdx(r, len(Companies))], i%7)),
			reldb.S(USCities[city]),
			reldb.S(USStates[city]),
			reldb.I(int64(ZipForCity(city, i))),
			reldb.T("open 9am to 9pm weekdays"),
		})
	}
	return t
}

// Recipes generates a recipe site keyed by cuisine (small select-menu
// domain) and dish keyword.
//
// Columns: dish, cuisine (string); minutes (int); ingredients (text).
func Recipes(seed int64, n int) *reldb.Table {
	r := rand.New(rand.NewSource(seed))
	t := reldb.MustNewTable("recipes", []reldb.Column{
		{Name: "dish", Kind: reldb.KindString},
		{Name: "cuisine", Kind: reldb.KindString},
		{Name: "minutes", Kind: reldb.KindInt},
		{Name: "ingredients", Kind: reldb.KindText},
	})
	for i := 0; i < n; i++ {
		d := zipfIdx(r, len(Dishes))
		t.MustInsert(reldb.Row{
			reldb.S(Dishes[d]),
			reldb.S(Cuisines[d%len(Cuisines)]),
			reldb.I(int64(10 + 5*r.Intn(23))),
			reldb.T(noteText(r, 4)),
		})
	}
	return t
}
