package api

import (
	"net/http"
	"sort"
	"strings"

	"deepweb/internal/httpx"
)

// Legacy-surface retirement. The pre-/v1 endpoints (deepsearch's
// /api/search alias, semserver's flat /synonyms-style paths) predate
// the versioned surface and duplicate it exactly; serving both keeps
// two contracts alive for one behavior. Binaries now mount LegacyGone
// by default and only serve the old paths behind an explicit -legacy
// flag, so stragglers get a machine-readable pointer at the
// replacement instead of a silent 404 — the standard deprecation
// endgame: announce (410 + replacement), then delete.

// LegacyGone answers retired legacy paths with a 410 envelope naming
// the /v1 replacement, and anything else under its mount with the
// shared 404 envelope. replacements maps retired path → current path.
func LegacyGone(replacements map[string]string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if repl, ok := replacements[r.URL.Path]; ok {
			msg := r.URL.Path + " was retired; use " + repl
			if r.URL.RawQuery != "" {
				msg += "?" + r.URL.RawQuery
			}
			msg += " (or start the server with -legacy to restore the old path temporarily)"
			httpx.WriteError(w, http.StatusGone, httpx.CodeGone, msg)
			return
		}
		retired := make([]string, 0, len(replacements))
		for p := range replacements {
			retired = append(retired, p)
		}
		sort.Strings(retired)
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
			r.URL.Path+" is not served here (retired legacy paths: "+strings.Join(retired, ", ")+")")
	})
}
