// Package api is the versioned HTTP serving layer: one mux, one JSON
// dialect, one error envelope for everything the system serves over
// HTTP. The paper's premise is that surfaced deep-web content is
// served "like any other page" at front-end scale (§3.2) — so the
// front end should be one coherent surface, not per-binary dialects.
// Both deepsearch and semserver mount this package; each enables the
// endpoint groups its process actually backs.
//
//	GET  /healthz                   liveness + doc count + generation
//	GET  /v1/search                 ranked retrieval (q, k, offset, annotated, host, filter)
//	GET  /v1/semantics/synonyms     §6 semantic services
//	GET  /v1/semantics/autocomplete
//	GET  /v1/semantics/values
//	GET  /v1/semantics/properties
//	GET  /v1/semantics/tables
//	GET  /v1/admin/stats            serving statistics for operators
//	POST /v1/admin/reload           swap in the refreshed snapshot
//
// Every response that depends on index contents carries the snapshot
// generation id in an X-Generation header, so an operator can verify a
// reload actually swapped snapshots with curl -i.
package api

import (
	"net/http"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"

	"deepweb/internal/engine"
	"deepweb/internal/httpx"
	"deepweb/internal/query"
	"deepweb/internal/rescache"
	"deepweb/internal/resilient"
	"deepweb/internal/semserv"
)

// Page-size and pagination ceilings: every request allocates O(k +
// offset) selection state, so untrusted values are clamped, not
// trusted (oversized values are served the cap, matching how search
// engines treat deep paging).
const (
	// MaxK aliases semserv's cap so the whole /v1 surface clamps k at
	// one documented value.
	MaxK      = semserv.MaxK
	MaxOffset = 10000
)

// Stats is the /v1/admin/stats payload: what an operator needs to
// verify a deployment is serving what they think it is. The counters
// (Queries, InflightQueries, Cache) are maintained with atomics and
// read with atomic loads, so no single value is ever torn under load;
// the set is collected lock-free, so fields may be a few requests
// apart from each other — fine for monitoring.
type Stats struct {
	// Docs is the live (searchable) document count.
	Docs int `json:"docs"`
	// Deleted is the tombstoned document count awaiting compaction.
	Deleted int `json:"deleted"`
	// TombstoneRatio is deleted over the full document table.
	TombstoneRatio float64 `json:"tombstone_ratio"`
	// Generation is the serving snapshot's content-derived id (0 =
	// built live). After a reload, a changed Generation is the proof
	// the swap happened.
	Generation uint32 `json:"generation"`
	// Queries counts /v1/search requests since process start —
	// monotonic, malformed requests included (they cost the front end
	// even when they never reach the index).
	Queries uint64 `json:"queries"`
	// InflightQueries is the number of /v1/search requests being
	// served right now.
	InflightQueries int64 `json:"inflight_queries"`
	// Cache reports the serving engine's result-cache counters; absent
	// when no cache is enabled.
	Cache *CacheStats `json:"cache,omitempty"`
	// Fetch reports the resilient fetch stack's counters (retries,
	// timeouts, breaker trips); absent on serving-only engines, which
	// carry no fetch stack.
	Fetch *FetchStats `json:"fetch,omitempty"`
	// LastReload is when the serving engine was last swapped
	// (RFC3339Nano; empty = never reloaded since startup).
	LastReload string `json:"last_reload,omitempty"`
	// Tables is the semantic store's relational table count (semantic
	// deployments only).
	Tables int `json:"tables,omitempty"`
}

// CacheStats is the result cache's counter block on the wire: the raw
// monotonic counters plus the derived hit ratio, so dashboards don't
// re-implement the arithmetic.
type CacheStats struct {
	rescache.Stats
	HitRatio float64 `json:"hit_ratio"`
}

// FetchStats is the fetch stack's counter block on the wire: the
// transport-wide totals, plus any host whose circuit breaker is not
// closed right now — the operator's shortlist of misbehaving origins.
type FetchStats struct {
	resilient.Stats
	OpenBreakers map[string]string `json:"open_breakers,omitempty"`
}

// Options wires a Server to the process's capabilities. Nil fields
// disable their endpoint group; the /v1 surface stays coherent — a
// disabled endpoint answers with the shared 404 envelope.
type Options struct {
	// Engine provides the current serving engine. It is a function, not
	// a value, because reloads swap engines behind an atomic pointer;
	// each request resolves the engine once and keeps it for its whole
	// lifetime. Nil disables /v1/search.
	Engine func() *engine.Engine
	// Semantics backs /v1/semantics/*. Nil disables the group.
	Semantics *semserv.Server
	// Reload swaps in a fresh snapshot (the same function the SIGHUP
	// handler runs). Nil makes POST /v1/admin/reload answer 503 — the
	// process has no snapshot to reload from.
	Reload func() error
	// Stats augments the /v1/admin/stats payload: it receives the base
	// derived from Engine and Semantics and returns what to serve, so a
	// binary can add process-specific fields (LastReload) without
	// re-deriving the rest. Nil serves the derived base as is.
	Stats func(Stats) Stats
}

// Server is the versioned HTTP surface. It implements http.Handler and
// can be mounted whole, or alongside other handlers via its /v1/ and
// /healthz prefixes.
type Server struct {
	opts Options
	mux  *http.ServeMux

	// Serving counters (see Stats): monotonic query count and the
	// in-flight gauge, maintained with atomics so /v1/admin/stats
	// never serves a torn value.
	queries  atomic.Uint64
	inflight atomic.Int64
}

// New assembles the /v1 surface for the given capabilities.
func New(opts Options) *Server {
	s := &Server{opts: opts, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/admin/stats", s.handleStats)
	s.mux.HandleFunc("/v1/admin/reload", s.handleReload)
	if opts.Engine != nil {
		s.mux.HandleFunc("/v1/search", s.handleSearch)
	}
	if opts.Semantics != nil {
		s.mux.HandleFunc("/v1/semantics/synonyms", opts.Semantics.Synonyms)
		s.mux.HandleFunc("/v1/semantics/autocomplete", opts.Semantics.Autocomplete)
		s.mux.HandleFunc("/v1/semantics/values", opts.Semantics.AttrValues)
		s.mux.HandleFunc("/v1/semantics/properties", opts.Semantics.Properties)
		s.mux.HandleFunc("/v1/semantics/tables", opts.Semantics.TableSearch)
	}
	// Everything else under /v1/ is a spelled-out 404, in the envelope,
	// instead of Go's text/plain default.
	s.mux.HandleFunc("/v1/", func(w http.ResponseWriter, r *http.Request) {
		httpx.WriteError(w, http.StatusNotFound, httpx.CodeNotFound,
			r.URL.Path+" is not a /v1 endpoint on this server")
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// engine returns the current serving engine, or nil when this process
// serves no index.
func (s *Server) engine() *engine.Engine {
	if s.opts.Engine == nil {
		return nil
	}
	return s.opts.Engine()
}

// intParam parses an optional integer query parameter leniently: an
// absent, malformed or below-minimum value serves def, and the result
// is clamped to max — one dialect with the semantics endpoints'
// kParam, matching how search engines treat nonsense page sizes.
func intParam(params url.Values, name string, def, minV, maxV int) int {
	n, err := strconv.Atoi(params.Get(name))
	if err != nil || n < minV {
		return def
	}
	return min(n, maxV)
}

// searchResult is one /v1/search hit on the wire.
type searchResult struct {
	DocID  int     `json:"doc_id"`
	URL    string  `json:"url"`
	Title  string  `json:"title"`
	Source string  `json:"source,omitempty"`
	Score  float64 `json:"score"`
}

// searchResponse is the /v1/search payload: the page, the request echo
// that produced it, and the serving metadata. Filters echoes the
// structured predicates applied (explicit filter= params plus any
// parsed out of q), in canonical form; absent when the request carried
// none, so predicate-free responses keep their exact prior shape.
type searchResponse struct {
	Query      string         `json:"query"`
	Filters    []string       `json:"filters,omitempty"`
	K          int            `json:"k"`
	Offset     int            `json:"offset"`
	Total      int            `json:"total"`
	Generation uint32         `json:"generation"`
	TookMS     float64        `json:"took_ms"`
	Results    []searchResult `json:"results"`
}

// GET /v1/search?q=...&k=10&offset=0&annotated=true&host=...&filter=...
//
// Structured predicates arrive two ways, freely mixed:
//
//   - repeatable filter= params ("filter=make:ford&filter=price<10000"),
//     where a malformed predicate is a 400 in the shared envelope —
//     the caller asked for a filter explicitly, so silently dropping
//     it would serve wrong results;
//   - embedded in q itself ("q=used+cars+price<10000"), where a token
//     is a predicate only if it parses cleanly and stays keyword text
//     otherwise — no previously-valid query becomes an error.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	s.queries.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	// X-Cache makes the serving tier's work observable on every
	// /v1/search response, error envelopes included: HIT = served from
	// the result cache (or collapsed onto another request's in-flight
	// scan), MISS = anything else — a fresh index scan, a rejected
	// request, an unavailable engine.
	w.Header().Set("X-Cache", "MISS")
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	params := r.URL.Query()
	q := params.Get("q")
	if q == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest, "missing q")
		return
	}
	k := intParam(params, "k", 10, 1, MaxK)
	offset := intParam(params, "offset", 0, 0, MaxOffset)

	var filters []query.Predicate
	for _, raw := range params["filter"] {
		p, err := query.Parse(raw)
		if err != nil {
			httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest,
				"malformed filter: "+err.Error())
			return
		}
		filters = append(filters, p)
	}
	text, embedded := query.Extract(q)
	filters = append(filters, embedded...)
	if text == "" && len(filters) > 0 {
		// Ranking needs at least one free-text term; a filter-only
		// request has nothing to rank (or paginate) against.
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest,
			"q contains only filters; add at least one keyword term to rank against")
		return
	}

	e := s.engine()
	if e == nil {
		// The Engine func is wired but momentarily has nothing to serve
		// (e.g. an atomic pointer before its first Store).
		httpx.WriteError(w, http.StatusServiceUnavailable, httpx.CodeUnavailable, "no index to search yet")
		return
	}
	resp, err := e.Search(r.Context(), engine.SearchRequest{
		Query:     text,
		K:         k,
		Offset:    offset,
		Annotated: params.Get("annotated") == "true" || params.Get("annotated") == "1",
		Host:      params.Get("host"),
		Filters:   filters,
	})
	if err != nil {
		// The one search error is a canceled/expired request context:
		// the client is gone or out of time.
		httpx.WriteError(w, http.StatusGatewayTimeout, httpx.CodeUnavailable, err.Error())
		return
	}
	out := searchResponse{
		Query:      q,
		K:          k,
		Offset:     offset,
		Total:      resp.Total,
		Generation: resp.Generation,
		TookMS:     float64(resp.Elapsed) / float64(time.Millisecond),
		Results:    make([]searchResult, len(resp.Results)),
	}
	for _, p := range query.Canonical(filters) {
		out.Filters = append(out.Filters, p.String())
	}
	for i, hit := range resp.Results {
		out.Results[i] = searchResult{
			DocID:  hit.DocID,
			URL:    hit.URL,
			Title:  hit.Title,
			Source: hit.Source,
			Score:  hit.Score,
		}
	}
	w.Header().Set("X-Generation", strconv.FormatUint(uint64(resp.Generation), 10))
	if resp.Cached {
		w.Header().Set("X-Cache", "HIT")
	}
	httpx.WriteJSON(w, http.StatusOK, out)
}

// stats assembles the operator statistics: the base derived from the
// configured sources, run through the binary's augment hook if set.
func (s *Server) stats() Stats {
	var st Stats
	st.Queries = s.queries.Load()
	st.InflightQueries = s.inflight.Load()
	if e := s.engine(); e != nil {
		st.Docs = e.Index.Len()
		st.Deleted = e.Index.Deleted()
		st.TombstoneRatio = e.Index.TombstoneRatio()
		st.Generation = e.Generation
		if cs, ok := e.CacheStats(); ok {
			st.Cache = &CacheStats{Stats: cs, HitRatio: cs.HitRatio()}
		}
		if total, hosts, ok := e.FetchStats(); ok {
			fs := &FetchStats{Stats: total}
			for host, hs := range hosts {
				if hs.Breaker != "closed" {
					if fs.OpenBreakers == nil {
						fs.OpenBreakers = make(map[string]string)
					}
					fs.OpenBreakers[host] = hs.Breaker
				}
			}
			st.Fetch = fs
		}
	}
	if s.opts.Semantics != nil {
		st.Tables = len(s.opts.Semantics.Tables)
	}
	if s.opts.Stats != nil {
		st = s.opts.Stats(st)
	}
	return st
}

// GET /v1/admin/stats
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	st := s.stats()
	w.Header().Set("X-Generation", strconv.FormatUint(uint64(st.Generation), 10))
	httpx.WriteJSON(w, http.StatusOK, st)
}

// POST /v1/admin/reload
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodPost) {
		return
	}
	if s.opts.Reload == nil {
		httpx.WriteError(w, http.StatusServiceUnavailable, httpx.CodeUnavailable,
			"reload unavailable: this process is not serving from a reloadable snapshot")
		return
	}
	if err := s.opts.Reload(); err != nil {
		// A failed reload keeps the current engine serving; report the
		// failure without killing the process.
		httpx.WriteError(w, http.StatusInternalServerError, httpx.CodeInternal, err.Error())
		return
	}
	st := s.stats()
	w.Header().Set("X-Generation", strconv.FormatUint(uint64(st.Generation), 10))
	httpx.WriteJSON(w, http.StatusOK, map[string]any{
		"reloaded":   true,
		"docs":       st.Docs,
		"generation": st.Generation,
	})
}

// GET /healthz
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	st := s.stats()
	w.Header().Set("X-Generation", strconv.FormatUint(uint64(st.Generation), 10))
	httpx.WriteJSON(w, http.StatusOK, map[string]any{
		"status":     "ok",
		"docs":       st.Docs,
		"generation": st.Generation,
	})
}
