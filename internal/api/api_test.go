package api

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"deepweb/internal/engine"
	"deepweb/internal/index"
	"deepweb/internal/semserv"
	"deepweb/internal/webgen"
	"deepweb/internal/webtables"
)

// The /v1 surface is a contract: every endpoint's exact JSON shape is
// pinned as a golden file under testdata/ (regenerate with
// `go test ./internal/api -update` after an intentional change).
// Volatile fields (took_ms) are zeroed before comparison.

var update = flag.Bool("update", false, "rewrite golden files")

// testEngine builds a tiny hand-indexed engine: four documents over
// two hosts with fixed text, so scores, ids and tie order are fully
// deterministic and the goldens stay small and readable. The two car
// pages carry surfacing-time annotations so the filter goldens
// exercise annotation resolution (the blog pages have none and fall
// back to text matching).
func testEngine() *engine.Engine {
	e := engine.New(webgen.NewWeb())
	docs := []index.Doc{
		{URL: "http://cars.example/d/0", Title: "used ford focus", Text: "a used ford focus for sale in seattle", Source: "cars-form"},
		{URL: "http://cars.example/d/1", Title: "used honda civic", Text: "a used honda civic for sale in portland", Source: "cars-form"},
		{URL: "http://blog.example/p/0", Title: "road trip diary", Text: "our ford focus drove across the country"},
		{URL: "http://blog.example/p/1", Title: "city guide", Text: "seattle coffee and rain"},
	}
	anns := []map[string]string{
		{"make": "ford", "price": "8500", "year": "2006"},
		{"make": "honda", "price": "11000", "year": "2009"},
		nil,
		nil,
	}
	for i, d := range docs {
		id, _ := e.Index.Add(d)
		if anns[i] != nil {
			e.Index.Annotate(id, anns[i])
		}
	}
	return e
}

func testSemantics() *semserv.Server {
	acs := &webtables.ACSDb{Freq: map[string]int{}, Pair: map[[2]string]int{}}
	for i := 0; i < 20; i++ {
		acs.AddSchema([]string{"make", "model", "price"})
	}
	for i := 0; i < 15; i++ {
		acs.AddSchema([]string{"maker", "model", "price"})
	}
	vals := webtables.NewValueStore()
	vals.AddColumn("city", []string{"seattle", "portland", "seattle"})
	tables := []webtables.RawTable{
		{URL: "http://t.example/1", Headers: []string{"city", "population"}, Rows: [][]string{{"seattle", "700000"}}},
	}
	return semserv.New(acs, vals, tables)
}

func testServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.Engine == nil {
		e := testEngine()
		opts.Engine = func() *engine.Engine { return e }
	}
	if opts.Semantics == nil {
		opts.Semantics = testSemantics()
	}
	return New(opts)
}

// normalize re-encodes a JSON body deterministically, zeroing the
// volatile took_ms field.
func normalize(t *testing.T, body []byte) string {
	t.Helper()
	var v any
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatalf("response is not JSON: %v\n%s", err, body)
	}
	if m, ok := v.(map[string]any); ok {
		if _, ok := m["took_ms"]; ok {
			m["took_ms"] = 0
		}
	}
	out, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return string(out) + "\n"
}

// checkGolden compares a normalized body against testdata/<name>.json.
func checkGolden(t *testing.T, name string, body []byte) {
	t.Helper()
	got := normalize(t, body)
	path := filepath.Join("testdata", name+".json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run `go test ./internal/api -update`): %v", path, err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from its golden contract:\n--- want\n%s--- got\n%s", name, want, got)
	}
}

// do issues one request against the server and returns the recorder.
func do(s *Server, method, target string) *httptest.ResponseRecorder {
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(method, target, nil))
	return rec
}

// Every /v1 endpoint, success and failure, against its golden.
func TestV1ContractGoldens(t *testing.T) {
	reloaded := false
	s := testServer(t, Options{
		Reload: func() error { reloaded = true; return nil },
		Stats: func(Stats) Stats {
			return Stats{
				Docs:           4,
				Deleted:        1,
				TombstoneRatio: 0.2,
				Generation:     3203334458,
				LastReload:     "2026-07-27T00:00:00Z",
				Tables:         1,
			}
		},
	})
	cases := []struct {
		name   string
		method string
		target string
		status int
	}{
		{"search", "GET", "/v1/search?q=ford+focus&k=3", 200},
		{"search_paged", "GET", "/v1/search?q=ford+focus&k=1&offset=1", 200},
		{"search_host", "GET", "/v1/search?q=ford+focus&host=blog.example", 200},
		{"search_k_clamped", "GET", "/v1/search?q=seattle&k=99999999", 200},
		{"search_missing_q", "GET", "/v1/search", 400},
		// Lenient parameter dialect, same as the semantics endpoints:
		// malformed k/offset serve the defaults, not a 400.
		{"search_k_defaulted", "GET", "/v1/search?q=seattle&k=abc", 200},
		{"search_offset_defaulted", "GET", "/v1/search?q=seattle&offset=-2", 200},
		{"search_method", "POST", "/v1/search?q=x", 405},
		// Structured filters: explicit filter= params, the in-query
		// DSL, a range, and the documented 400 for a malformed filter.
		{"search_filtered", "GET", "/v1/search?q=used&filter=make:ford", 200},
		{"search_filter_dsl", "GET", "/v1/search?q=used+price%3C10000", 200},
		{"search_filter_range", "GET", "/v1/search?q=used&filter=year:2005..2008", 200},
		{"search_filter_bad", "GET", "/v1/search?q=used&filter=price%3C%3C10", 400},
		{"search_filter_only", "GET", "/v1/search?q=make:ford", 400},
		{"synonyms", "GET", "/v1/semantics/synonyms?attr=make&k=3", 200},
		{"synonyms_missing_attr", "GET", "/v1/semantics/synonyms", 400},
		{"synonyms_method", "DELETE", "/v1/semantics/synonyms?attr=make", 405},
		{"autocomplete", "GET", "/v1/semantics/autocomplete?attrs=make&k=3", 200},
		{"values", "GET", "/v1/semantics/values?attr=city&k=5", 200},
		{"properties", "GET", "/v1/semantics/properties?entity=seattle&k=5", 200},
		{"tables", "GET", "/v1/semantics/tables?q=population&k=5", 200},
		{"stats", "GET", "/v1/admin/stats", 200},
		{"stats_method", "POST", "/v1/admin/stats", 405},
		{"reload", "POST", "/v1/admin/reload", 200},
		{"reload_method", "GET", "/v1/admin/reload", 405},
		{"healthz", "GET", "/healthz", 200},
		{"not_found", "GET", "/v1/nosuch", 404},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := do(s, c.method, c.target)
			if rec.Code != c.status {
				t.Fatalf("%s %s: status %d, want %d\n%s", c.method, c.target, rec.Code, c.status, rec.Body.String())
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("%s: Content-Type %q", c.target, ct)
			}
			checkGolden(t, c.name, rec.Body.Bytes())
		})
	}
	if !reloaded {
		t.Error("POST /v1/admin/reload never invoked the reload hook")
	}
}

// Responses that depend on index contents carry the generation header.
func TestGenerationHeader(t *testing.T) {
	s := testServer(t, Options{Stats: func(Stats) Stats { return Stats{Generation: 42} }})
	for _, target := range []string{"/v1/search?q=ford", "/v1/admin/stats", "/healthz"} {
		rec := do(s, "GET", target)
		if got := rec.Header().Get("X-Generation"); target == "/v1/search?q=ford" {
			// Search reports the engine's generation (0: built live).
			if got != "0" {
				t.Errorf("%s: X-Generation %q, want 0", target, got)
			}
		} else if got != "42" {
			t.Errorf("%s: X-Generation %q, want 42", target, got)
		}
	}
}

// HEAD is GET-without-body: liveness probes and load balancers use it,
// so every GET endpoint must admit it instead of answering 405.
func TestHEADAdmittedOnGETEndpoints(t *testing.T) {
	s := testServer(t, Options{})
	for _, target := range []string{"/healthz", "/v1/search?q=ford", "/v1/admin/stats", "/v1/semantics/values?attr=city"} {
		if rec := do(s, "HEAD", target); rec.Code != 200 {
			t.Errorf("HEAD %s: status %d, want 200", target, rec.Code)
		}
	}
}

// A process without a snapshot cannot reload; one whose reload fails
// reports it without dying.
func TestReloadUnavailableAndFailing(t *testing.T) {
	s := testServer(t, Options{})
	rec := do(s, "POST", "/v1/admin/reload")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), `"code":"unavailable"`) {
		t.Errorf("nil reload: status %d body %s", rec.Code, rec.Body.String())
	}

	s = testServer(t, Options{Reload: func() error { return errors.New("segment checksum mismatch") }})
	rec = do(s, "POST", "/v1/admin/reload")
	if rec.Code != 500 || !strings.Contains(rec.Body.String(), "segment checksum mismatch") {
		t.Errorf("failing reload: status %d body %s", rec.Code, rec.Body.String())
	}
}

// Without an engine, /v1/search is absent (404 envelope), while the
// rest of the surface still serves — the semserver deployment shape.
func TestSearchDisabledWithoutEngine(t *testing.T) {
	s := New(Options{Semantics: testSemantics()})
	rec := do(s, "GET", "/v1/search?q=x")
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), `"code":"not_found"`) {
		t.Errorf("disabled search: status %d body %s", rec.Code, rec.Body.String())
	}
	if rec := do(s, "GET", "/v1/semantics/values?attr=city"); rec.Code != 200 {
		t.Errorf("semantics broken without engine: %d", rec.Code)
	}
	if rec := do(s, "GET", "/healthz"); rec.Code != 200 {
		t.Errorf("healthz broken without engine: %d", rec.Code)
	}
}

// Derived stats (no Stats override) reflect the engine and store.
func TestDerivedStats(t *testing.T) {
	e := testEngine()
	e.Index.Delete(3)
	s := New(Options{
		Engine:    func() *engine.Engine { return e },
		Semantics: testSemantics(),
	})
	rec := do(s, "GET", "/v1/admin/stats")
	var st Stats
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Docs != 3 || st.Deleted != 1 || st.TombstoneRatio != 0.25 || st.Tables != 1 {
		t.Errorf("derived stats = %+v", st)
	}
	// An engine with a fetch stack serves the fetch block (all-zero
	// counters here: nothing has been fetched, no breaker is open).
	if st.Fetch == nil {
		t.Fatal("stats omit the fetch block for an engine with a fetch stack")
	}
	if st.Fetch.Attempts != 0 || len(st.Fetch.OpenBreakers) != 0 {
		t.Errorf("idle fetch block = %+v", st.Fetch)
	}
}

// The retired legacy surface: known paths answer 410 with the
// replacement (query string preserved), unknown paths the shared 404
// envelope — both in the one JSON dialect.
func TestLegacyGone(t *testing.T) {
	h := LegacyGone(map[string]string{
		"/api/search": "/v1/search",
		"/synonyms":   "/v1/semantics/synonyms",
	})
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=ford&k=3", nil))
	if rec.Code != 410 {
		t.Fatalf("retired path: status %d, want 410\n%s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q", ct)
	}
	body := rec.Body.String()
	if !strings.Contains(body, `"code":"gone"`) || !strings.Contains(body, "/v1/search?q=ford") {
		t.Errorf("410 envelope lacks code/replacement: %s", body)
	}
	checkGolden(t, "legacy_gone", rec.Body.Bytes())

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/nosuch", nil))
	if rec.Code != 404 || !strings.Contains(rec.Body.String(), `"code":"not_found"`) {
		t.Errorf("unknown path: status %d body %s", rec.Code, rec.Body.String())
	}
}

// Filtered pagination over HTTP mirrors the unfiltered contract:
// totals are page-independent and pages tile, with the filter echoed
// canonically however it was spelled.
func TestFilteredSearchOverHTTP(t *testing.T) {
	s := testServer(t, Options{})
	get := func(target string) (resp struct {
		Filters []string          `json:"filters"`
		Total   int               `json:"total"`
		Results []json.RawMessage `json:"results"`
	}) {
		rec := do(s, "GET", target)
		if rec.Code != 200 {
			t.Fatalf("%s: status %d\n%s", target, rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp
	}
	// Both spellings of the same request: identical results and the
	// same canonical filter echo.
	viaParam := get("/v1/search?q=used&filter=price%3C10000&filter=make:ford")
	viaDSL := get("/v1/search?q=used+make:ford+price%3C10000")
	if viaParam.Total != 1 || viaDSL.Total != 1 {
		t.Fatalf("totals: param=%d dsl=%d, want 1", viaParam.Total, viaDSL.Total)
	}
	if len(viaParam.Filters) != 2 || viaParam.Filters[0] != "make:ford" {
		t.Errorf("canonical filter echo = %v", viaParam.Filters)
	}
	if fmt.Sprint(viaParam.Filters) != fmt.Sprint(viaDSL.Filters) {
		t.Errorf("filter echo differs by spelling: %v vs %v", viaParam.Filters, viaDSL.Filters)
	}
	for i := range viaParam.Results {
		if string(viaParam.Results[i]) != string(viaDSL.Results[i]) {
			t.Fatalf("spellings diverge at rank %d", i)
		}
	}
	// The unfiltered query matches more than the filtered one.
	if un := get("/v1/search?q=used"); un.Total <= viaParam.Total {
		t.Errorf("filter did not restrict: unfiltered %d, filtered %d", un.Total, viaParam.Total)
	}
}

// The full pagination contract over HTTP: k echoes clamped, offsets
// tile, totals are page-independent.
func TestSearchPaginationOverHTTP(t *testing.T) {
	s := testServer(t, Options{})
	page := func(k, offset int) (hits []json.RawMessage, total int) {
		rec := do(s, "GET", fmt.Sprintf("/v1/search?q=ford+focus&k=%d&offset=%d", k, offset))
		if rec.Code != 200 {
			t.Fatalf("status %d", rec.Code)
		}
		var resp struct {
			Total   int               `json:"total"`
			Results []json.RawMessage `json:"results"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Results, resp.Total
	}
	all, total := page(1000, 0)
	if total != len(all) || total == 0 {
		t.Fatalf("exhaustive page: %d hits, total %d", len(all), total)
	}
	var tiled []json.RawMessage
	for off := 0; off < total; off++ {
		hits, tot := page(1, off)
		if tot != total {
			t.Fatalf("offset %d: total %d, want %d", off, tot, total)
		}
		tiled = append(tiled, hits...)
	}
	if len(tiled) != len(all) {
		t.Fatalf("tiled %d hits, want %d", len(tiled), len(all))
	}
	for i := range all {
		if string(tiled[i]) != string(all[i]) {
			t.Fatalf("page tiling diverges at rank %d", i)
		}
	}
}
