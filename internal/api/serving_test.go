package api

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"

	"deepweb/internal/engine"
	"deepweb/internal/index"
)

// The serving-tier observability contract: X-Cache on every search
// response, and atomic monotonic counters on /v1/admin/stats.

func cachedTestServer(capacity int) (*Server, *engine.Engine) {
	e := testEngine()
	e.EnableResultCache(capacity)
	return New(Options{Engine: func() *engine.Engine { return e }}), e
}

// X-Cache reports each response's provenance: MISS on the first scan,
// HIT once the entry is resident; an engine without a cache is all
// MISS.
func TestXCacheHeader(t *testing.T) {
	s, _ := cachedTestServer(16)
	if got := do(s, "GET", "/v1/search?q=ford&k=5").Header().Get("X-Cache"); got != "MISS" {
		t.Fatalf("first search X-Cache = %q, want MISS", got)
	}
	if got := do(s, "GET", "/v1/search?q=ford&k=5").Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("second search X-Cache = %q, want HIT", got)
	}
	// Normalization: a differently-spelled same query also hits.
	if got := do(s, "GET", "/v1/search?q=FORD!&k=5").Header().Get("X-Cache"); got != "HIT" {
		t.Fatalf("normalized alias X-Cache = %q, want HIT", got)
	}

	uncached := New(Options{Engine: func() *engine.Engine { e := testEngine(); return e }})
	for i := 0; i < 2; i++ {
		if got := do(uncached, "GET", "/v1/search?q=ford").Header().Get("X-Cache"); got != "MISS" {
			t.Fatalf("uncached engine X-Cache = %q, want MISS", got)
		}
	}

	// The contract is every /v1/search response, error envelopes
	// included: a rejected request and an unavailable engine are MISS.
	if rec := do(s, "GET", "/v1/search"); rec.Code != 400 || rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("malformed request: status %d, X-Cache %q; want 400 MISS", rec.Code, rec.Header().Get("X-Cache"))
	}
	noEngine := New(Options{Engine: func() *engine.Engine { return nil }})
	if rec := do(noEngine, "GET", "/v1/search?q=ford"); rec.Code != 503 || rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("engine unavailable: status %d, X-Cache %q; want 503 MISS", rec.Code, rec.Header().Get("X-Cache"))
	}
}

// The /v1/admin/stats JSON contract for a caching deployment: every
// counter field is present under its stable name, and the numbers are
// consistent with the traffic just served.
func TestStatsJSONContract(t *testing.T) {
	s, _ := cachedTestServer(16)
	const repeats = 4
	for i := 0; i < repeats; i++ {
		if rec := do(s, "GET", "/v1/search?q=ford+focus&k=3"); rec.Code != 200 {
			t.Fatalf("search %d: status %d", i, rec.Code)
		}
	}
	do(s, "GET", "/v1/search") // 400: still counted — it cost the front end

	rec := do(s, "GET", "/v1/admin/stats")
	if rec.Code != 200 {
		t.Fatalf("stats: status %d", rec.Code)
	}
	var m map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"docs", "deleted", "tombstone_ratio", "generation", "queries", "inflight_queries", "cache"} {
		if _, ok := m[key]; !ok {
			t.Errorf("stats payload missing %q: %s", key, rec.Body.String())
		}
	}
	if got := m["queries"].(float64); got != repeats+1 {
		t.Errorf("queries = %v, want %d", got, repeats+1)
	}
	if got := m["inflight_queries"].(float64); got != 0 {
		t.Errorf("inflight_queries = %v at rest, want 0", got)
	}
	cache, ok := m["cache"].(map[string]any)
	if !ok {
		t.Fatalf("cache block missing or malformed: %s", rec.Body.String())
	}
	for _, key := range []string{"hits", "misses", "collapsed", "evictions", "entries", "capacity", "hit_ratio"} {
		if _, ok := cache[key]; !ok {
			t.Errorf("cache block missing %q: %v", key, cache)
		}
	}
	if hits := cache["hits"].(float64); hits != repeats-1 {
		t.Errorf("cache hits = %v, want %d", hits, repeats-1)
	}
	if ratio := cache["hit_ratio"].(float64); ratio <= 0 || ratio >= 1 {
		t.Errorf("hit_ratio = %v, want in (0, 1)", ratio)
	}

	// A cache-less deployment omits the block entirely.
	plain := testServer(t, Options{})
	var st Stats
	if err := json.Unmarshal(do(plain, "GET", "/v1/admin/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache != nil {
		t.Errorf("cache block present without a cache: %+v", st.Cache)
	}
}

// Counters under concurrent load: queries is monotonic across polls,
// inflight settles to zero, and the cache counters account for every
// successful search exactly once. Run with -race: every counter is
// atomic, so this also proves the no-torn-reads claim.
func TestStatsCountersAtomicUnderLoad(t *testing.T) {
	s, e := cachedTestServer(64)
	const workers, perWorker = 8, 150
	var loadWg, pollWg sync.WaitGroup
	for g := 0; g < workers; g++ {
		loadWg.Add(1)
		go func() {
			defer loadWg.Done()
			for i := 0; i < perWorker; i++ {
				q := fmt.Sprintf("ford+q%d", i%7)
				if rec := do(s, "GET", "/v1/search?q="+q+"&k=5"); rec.Code != 200 {
					t.Errorf("search: status %d", rec.Code)
					return
				}
			}
		}()
	}
	// A poller asserting monotonicity while the load runs.
	pollDone := make(chan struct{})
	pollWg.Add(1)
	go func() {
		defer pollWg.Done()
		var last uint64
		for {
			select {
			case <-pollDone:
				return
			default:
			}
			var st Stats
			if err := json.Unmarshal(do(s, "GET", "/v1/admin/stats").Body.Bytes(), &st); err != nil {
				t.Errorf("stats mid-load: %v", err)
				return
			}
			if st.Queries < last {
				t.Errorf("queries went backwards: %d after %d", st.Queries, last)
				return
			}
			last = st.Queries
			if st.InflightQueries < 0 {
				t.Errorf("inflight_queries negative: %d", st.InflightQueries)
				return
			}
			runtime.Gosched()
		}
	}()
	loadWg.Wait()
	close(pollDone)
	pollWg.Wait()

	var st Stats
	if err := json.Unmarshal(do(s, "GET", "/v1/admin/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Queries != workers*perWorker {
		t.Errorf("queries = %d, want %d", st.Queries, workers*perWorker)
	}
	if st.InflightQueries != 0 {
		t.Errorf("inflight_queries = %d at rest, want 0", st.InflightQueries)
	}
	cs, ok := e.CacheStats()
	if !ok {
		t.Fatal("cache stats unavailable")
	}
	if total := cs.Hits + cs.Misses + cs.Collapsed; total != workers*perWorker {
		t.Errorf("cache accounted %d lookups, want %d (hits=%d misses=%d collapsed=%d)",
			total, workers*perWorker, cs.Hits, cs.Misses, cs.Collapsed)
	}
}

// The reload hammer: many goroutines query while the serving engine is
// swapped back and forth (the SIGHUP //v1/admin/reload path: an atomic
// engine pointer, each engine carrying its own result cache). Every
// response must be internally consistent — X-Generation header equal
// to the body's generation, and the generation always one of the two
// engines' — and once the final swap settles, no stale-generation
// response may ever appear again. Run with -race.
func TestReloadRaceServesConsistentGeneration(t *testing.T) {
	// Two engines with distinct, non-zero, content-derived generations.
	e1 := testEngine()
	e2 := testEngine()
	e2.Index.Add(index.Doc{URL: "http://cars.example/d/9", Title: "new arrival ford", Text: "a fresh ford focus listing"})
	e1.EnableResultCache(64)
	e2.EnableResultCache(64)
	if err := e1.Save(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if err := e2.Save(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	g1, g2 := e1.Generation, e2.Generation
	if g1 == 0 || g2 == 0 || g1 == g2 {
		t.Fatalf("generations not distinct and non-zero: %d, %d", g1, g2)
	}

	var current atomic.Pointer[engine.Engine]
	current.Store(e1)
	s := New(Options{Engine: func() *engine.Engine { return current.Load() }})

	stop := make(chan struct{})
	var hammerWg, swapWg sync.WaitGroup
	swapWg.Add(1)
	go func() { // the reloader, swapping as fast as it can
		defer swapWg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				current.Store(e2)
			} else {
				current.Store(e1)
			}
			runtime.Gosched()
		}
	}()
	checkResponse := func(tag string) uint32 {
		rec := do(s, "GET", "/v1/search?q=ford&k=5")
		if rec.Code != 200 {
			t.Errorf("%s: status %d", tag, rec.Code)
			return 0
		}
		var body struct {
			Generation uint32 `json:"generation"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
			t.Errorf("%s: %v", tag, err)
			return 0
		}
		if hdr := rec.Header().Get("X-Generation"); hdr != strconv.FormatUint(uint64(body.Generation), 10) {
			t.Errorf("%s: X-Generation %s disagrees with body generation %d — torn engine view", tag, hdr, body.Generation)
		}
		if body.Generation != g1 && body.Generation != g2 {
			t.Errorf("%s: generation %d is neither serving engine's (%d, %d)", tag, body.Generation, g1, g2)
		}
		if xc := rec.Header().Get("X-Cache"); xc != "HIT" && xc != "MISS" {
			t.Errorf("%s: X-Cache %q", tag, xc)
		}
		return body.Generation
	}
	for gr := 0; gr < 8; gr++ {
		hammerWg.Add(1)
		go func() {
			defer hammerWg.Done()
			for i := 0; i < 200; i++ {
				checkResponse("mid-swap")
			}
		}()
	}
	// Let the hammer run against live swapping, then stop the reloader
	// and pin the final engine: from here on, serving the old
	// generation would mean a cache entry crossed the swap.
	hammerWg.Wait()
	close(stop)
	swapWg.Wait()
	current.Store(e2)
	for i := 0; i < 100; i++ {
		if gen := checkResponse("post-swap"); gen != 0 && gen != g2 {
			t.Fatalf("request %d after the swap completed served stale generation %d, want %d", i, gen, g2)
		}
	}
}
