package engine

import (
	"strconv"
	"strings"

	"deepweb/internal/index"
	"deepweb/internal/query"
	"deepweb/internal/rescache"
	"deepweb/internal/textutil"
)

// Result caching: the serving tier's answer to repeated-query traffic.
// Web query load is heavily skewed (the §3.2 long-tail curve: a small
// head of queries carries half the traffic), so the same searches
// arrive over and over while the index between refreshes is immutable.
// An enabled engine routes Search through a bounded rescache keyed by
//
//	(Generation, mutation epoch, normalized query, k, offset, host,
//	 annotated, canonical filters)
//
// — every input that can change the answer. Correctness falls out of
// the key, not of invalidation traffic:
//
//   - A snapshot reload swaps in a new *Engine (deepsearch's atomic
//     pointer), and the cache lives on the engine, so engine and cache
//     swap together by construction; the new engine's Generation also
//     differs, so even a shared external cache could never cross the
//     boundary.
//   - An in-place mutation (Surface commit, Refresh, Compact) bumps the
//     engine's mutation epoch, so every key minted before it becomes
//     unreachable and ages out of the LRU. Queries racing a mutation may
//     cache a transient index state, exactly as the uncached path would
//     have served it — and the epoch bump at the end of the mutating
//     pass retires those entries, so no pre-pass or mid-pass result is
//     ever served after the pass completes.
//
// The query is normalized through the index's own term pipeline
// (tokenize, stopword, stem), so "Used FORD!!" and "used ford" share
// an entry — they are the same query to BM25. Annotated requests
// additionally fold in the raw tokenized query: annotation-vocabulary
// matching (annStore.valuesMentioned) runs over unstemmed tokens, so
// stem-colliding queries like "honda civic" and "honda civics" are the
// same query to BM25 but not to annotated ranking, and must not share
// an entry.
//
// Responses are deep-copied on every cache boundary crossing (see
// rescache), so callers can never alias the cached Results slice.
// Memory bound: Capacity entries × (one key string + k Results of a
// few short strings each) — a 4096-entry cache of k=10 pages is a few
// MB.

// EnableResultCache routes this engine's Search through a bounded
// result cache of the given capacity (entries). capacity <= 0 disables
// caching. Enable before serving traffic; the switch itself is not
// synchronized with in-flight searches.
//
// Once a cache is armed, every index mutation must go through an
// Engine method (IndexSurfaceWeb, Surface commits, Refresh, Compact):
// those bump the mutation epoch that retires cached entries. Mutating
// the exported Index directly bypasses the bump, and with no TTL the
// cache would serve pre-mutation results indefinitely.
func (e *Engine) EnableResultCache(capacity int) {
	if capacity <= 0 {
		e.cache = nil
		return
	}
	e.cache = rescache.New(capacity, 0, cloneSearchResponse)
}

// EnableCacheAdmission arms second-chance admission on an enabled
// result cache: a query's first miss is served but not cached, so the
// long tail's one-off queries stop churning the LRU out from under the
// head. slots sizes the doorkeeper's recent-key memory (<= 0 picks a
// default of 8x cache capacity). No-op when no cache is enabled; call
// after EnableResultCache and before serving traffic.
func (e *Engine) EnableCacheAdmission(slots int) {
	e.cache.EnableDoorkeeper(slots)
}

// CacheStats reports the result cache's counters; ok is false when no
// cache is enabled.
func (e *Engine) CacheStats() (st rescache.Stats, ok bool) {
	if e.cache == nil {
		return rescache.Stats{}, false
	}
	return e.cache.Stats(), true
}

// bumpEpoch retires every cached search result minted before this
// point. Called at the end of each mutating step so post-mutation
// queries can never be answered from pre-mutation state.
func (e *Engine) bumpEpoch() { e.epoch.Add(1) }

// cloneSearchResponse deep-copies a response so no two cache callers
// share the Results slice (index.Result holds only value types and
// immutable strings, so copying the elements is a deep copy).
func cloneSearchResponse(r SearchResponse) SearchResponse {
	out := r
	if r.Results != nil {
		out.Results = append([]index.Result(nil), r.Results...)
	}
	return out
}

// searchCacheKey folds every answer-changing input into one opaque
// string: serving identity (generation + epoch), pagination and filter
// options, and the normalized query terms.
func (e *Engine) searchCacheKey(req SearchRequest) string {
	var b strings.Builder
	b.Grow(48 + len(req.Query) + len(req.Host))
	b.WriteString(strconv.FormatUint(uint64(e.Generation), 10))
	b.WriteByte('\x00')
	b.WriteString(strconv.FormatUint(e.epoch.Load(), 10))
	b.WriteByte('\x00')
	b.WriteString(strconv.Itoa(req.K))
	b.WriteByte('\x00')
	b.WriteString(strconv.Itoa(req.Offset))
	b.WriteByte('\x00')
	if req.Annotated {
		b.WriteByte('a')
	}
	b.WriteByte('\x00')
	b.WriteString(req.Host)
	b.WriteByte('\x00')
	// Structured filters change the answer, so they are part of the
	// key — in canonical (sorted, deduplicated) serialization, so
	// permuted or repeated predicate lists share the entry they ought
	// to, and filtered queries can never alias unfiltered ones.
	b.WriteString(query.Key(req.Filters))
	b.WriteByte('\x00')
	for i, term := range textutil.StemmedTokens(req.Query) {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(term)
	}
	if req.Annotated {
		// Annotated ranking matches annotation vocabulary against the
		// raw tokenized query, which is not a function of the stemmed
		// terms — fold the raw tokens in so stem-colliding queries
		// can't alias each other's entries.
		b.WriteByte('\x00')
		for i, term := range textutil.Tokenize(req.Query) {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(term)
		}
	}
	return b.String()
}
