package engine

import (
	"context"
	"math"
	"math/rand"
	"net/http"
	"reflect"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
)

// refreshWorldCfg is shared by both arms of every equivalence test so
// the two worlds are byte-identical before churn.
var refreshWorldCfg = webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 50}

// churnSubset deterministically mutates every third site (by host
// order), leaving the rest untouched, so a refresh has both changed
// sites to re-surface and unchanged sites to skip.
func churnSubset(web *webgen.Web, seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	churned := 0
	for i, s := range web.Sites() {
		if i%3 != 0 {
			continue
		}
		webgen.ChurnSite(s, 6, rng)
		churned++
	}
	return churned
}

// freshEngine builds and fully surfaces a world on the parallel path.
func freshEngine(t *testing.T, shards int) *Engine {
	t.Helper()
	e, err := Build(refreshWorldCfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Index = index.NewSharded(shards)
	e.Workers = 4
	if e.IndexSurfaceWeb(context.Background()) == 0 {
		t.Fatal("surface-web crawl indexed nothing")
	}
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		t.Fatal(err)
	}
	return e
}

// urlScores flattens a full-corpus search (k = live corpus size) into
// URL → score-bits, the id-free view of a result set.
func urlScores(t *testing.T, ix *index.Index, q string) map[string]uint64 {
	t.Helper()
	out := map[string]uint64{}
	for _, r := range ix.Search(q, ix.Len()+1) {
		if _, dup := out[r.URL]; dup {
			t.Fatalf("Search(%q) returned URL %q twice", q, r.URL)
		}
		out[r.URL] = math.Float64bits(r.Score)
	}
	return out
}

// The acceptance bar of the freshness pipeline, in three tiers.
//
// Tier 1 (uncompacted): after churning N sites and Refreshing, the
// live corpus — URL set, per-URL score bits, live doc count, per-host
// results/stats/coverage — is identical to a from-scratch Surface
// of the churned world. Doc ids differ (the refreshed index appended
// re-surfaced documents after tombstones), so results are compared by
// URL.
//
// Tier 2 (snapshot): a Save/Load round trip of the refreshed, still
// tombstoned engine reproduces its Search output bit-for-bit — ids,
// scores, tie order — which is what pins the tombstone persistence.
//
// Tier 3 (compacted): Compact renumbers into canonical URL order, so
// after compacting BOTH engines their Search outputs match
// reflect.DeepEqual exactly: same ids, same score bits, same tie
// order. Run with -race; both arms surface on 4 workers.
func TestRefreshMatchesFromScratch(t *testing.T) {
	for _, shards := range []int{1, 4, index.DefaultShards} {
		// Arm 1: surface, churn, refresh incrementally.
		refreshed := freshEngine(t, shards)
		refreshed.CompactRatio = 0 // keep tombstones; tier 3 compacts explicitly
		churned := churnSubset(refreshed.Web, 99)
		st, err := refreshed.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
		if err != nil {
			t.Fatalf("shards=%d: refresh: %v", shards, err)
		}
		if st.SitesChanged == 0 || st.SitesChanged > churned {
			t.Fatalf("shards=%d: %d of %d churned sites refreshed", shards, st.SitesChanged, churned)
		}
		if st.SitesChecked != len(refreshed.Web.Sites()) {
			t.Errorf("shards=%d: checked %d of %d sites", shards, st.SitesChecked, len(refreshed.Web.Sites()))
		}
		if st.DocsDeleted == 0 || st.DocsAdded == 0 || st.SurfacePages == 0 {
			t.Errorf("shards=%d: degenerate refresh: %+v", shards, st)
		}
		if refreshed.Index.Deleted() != st.DocsDeleted {
			t.Errorf("shards=%d: %d tombstones for %d deletions", shards, refreshed.Index.Deleted(), st.DocsDeleted)
		}

		// Arm 2: churn the same way, then surface from scratch.
		scratch, err := Build(refreshWorldCfg)
		if err != nil {
			t.Fatal(err)
		}
		scratch.Index = index.NewSharded(shards)
		scratch.Workers = 4
		churnSubset(scratch.Web, 99)
		if scratch.IndexSurfaceWeb(context.Background()) == 0 {
			t.Fatal("surface-web crawl indexed nothing")
		}
		if _, err := scratch.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
			t.Fatal(err)
		}

		// Tier 1: identical live corpus and metrics, compared id-free.
		if a, b := refreshed.Index.Len(), scratch.Index.Len(); a != b {
			t.Fatalf("shards=%d: live docs %d vs scratch %d", shards, a, b)
		}
		if !reflect.DeepEqual(refreshed.Index.DocsBySource(), scratch.Index.DocsBySource()) {
			t.Errorf("shards=%d: per-source counts differ", shards)
		}
		if !reflect.DeepEqual(refreshed.IngestStats, scratch.IngestStats) {
			t.Errorf("shards=%d: ingest stats differ:\n  refreshed %v\n  scratch %v", shards, refreshed.IngestStats, scratch.IngestStats)
		}
		if !reflect.DeepEqual(refreshed.OfflineRequests, scratch.OfflineRequests) {
			t.Errorf("shards=%d: offline requests differ:\n  refreshed %v\n  scratch %v", shards, refreshed.OfflineRequests, scratch.OfflineRequests)
		}
		if !reflect.DeepEqual(refreshed.SiteSignatures, scratch.SiteSignatures) {
			t.Errorf("shards=%d: site signatures differ", shards)
		}
		for host, res := range scratch.Results {
			got := refreshed.Results[host]
			if got == nil || !reflect.DeepEqual(got.URLs, res.URLs) {
				t.Errorf("shards=%d: %s: surfaced URLs differ", shards, host)
			}
		}
		if a, b := refreshed.MeanCoverage(), scratch.MeanCoverage(); a != b {
			t.Errorf("shards=%d: coverage %v vs %v", shards, a, b)
		}
		for _, q := range persistQueries {
			if a, b := urlScores(t, refreshed.Index, q), urlScores(t, scratch.Index, q); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: Search(%q) live corpora differ (%d vs %d URLs)", shards, q, len(a), len(b))
			}
		}

		// Tier 2: the tombstoned engine round-trips through a snapshot
		// bit-for-bit, ids and tie order included.
		dir := t.TempDir()
		if err := refreshed.Save(dir); err != nil {
			t.Fatalf("shards=%d: save: %v", shards, err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatalf("shards=%d: load: %v", shards, err)
		}
		if loaded.Index.Deleted() != refreshed.Index.Deleted() {
			t.Errorf("shards=%d: tombstones %d became %d across snapshot", shards, refreshed.Index.Deleted(), loaded.Index.Deleted())
		}
		if !reflect.DeepEqual(loaded.SiteSignatures, refreshed.SiteSignatures) {
			t.Errorf("shards=%d: site signatures lost across snapshot", shards)
		}
		for _, q := range persistQueries {
			if a, b := refreshed.Index.Search(q, 10), loaded.Index.Search(q, 10); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: Search(%q) differs across snapshot:\n  live   %v\n  loaded %v", shards, q, a, b)
			}
			if a, b := refreshed.Index.AnnotatedSearch(q, 10), loaded.Index.AnnotatedSearch(q, 10); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: AnnotatedSearch(%q) differs across snapshot", shards, q)
			}
		}

		// Tier 3: compaction is a normal form — both engines land on
		// identical ids, scores and tie order. (Engine.Compact, not
		// Index.Compact: the engine must re-derive its host tracking
		// after the renumbering.)
		if got := refreshed.Compact(); got != st.DocsDeleted {
			t.Errorf("shards=%d: compact reclaimed %d of %d tombstones", shards, got, st.DocsDeleted)
		}
		scratch.Compact()
		if refreshed.Index.Deleted() != 0 {
			t.Errorf("shards=%d: tombstones survived compact", shards)
		}
		for _, q := range persistQueries {
			a, b := refreshed.Index.Search(q, 10), scratch.Index.Search(q, 10)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: post-compact Search(%q) differs:\n  refreshed %v\n  scratch   %v", shards, q, a, b)
				continue
			}
			for i := range a {
				if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
					t.Errorf("shards=%d: post-compact Search(%q) hit %d: score bits differ", shards, q, i)
				}
			}
			if a, b := refreshed.Index.AnnotatedSearch(q, 10), scratch.Index.AnnotatedSearch(q, 10); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: post-compact AnnotatedSearch(%q) differs", shards, q)
			}
		}
	}
}

// The deepcrawl -refresh path: persist a surfaced world, rebuild the
// world from config, churn it, reattach the snapshot with LoadWith and
// refresh. The refreshed snapshot must match a from-scratch surface of
// the churned world after both compact to canonical form.
func TestLoadWithRefreshAgainstSnapshot(t *testing.T) {
	orig := freshEngine(t, 4)
	dir := t.TempDir()
	if err := orig.Save(dir); err != nil {
		t.Fatal(err)
	}

	web2, err := webgen.BuildWorld(refreshWorldCfg)
	if err != nil {
		t.Fatal(err)
	}
	churnSubset(web2, 4242)
	e, err := LoadWith(web2, dir)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	e.CompactRatio = 0
	st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChanged == 0 {
		t.Fatalf("nothing refreshed: %+v", st)
	}

	scratch, err := Build(refreshWorldCfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch.Index = index.NewSharded(4)
	scratch.Workers = 4
	churnSubset(scratch.Web, 4242)
	scratch.IndexSurfaceWeb(context.Background())
	if _, err := scratch.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		t.Fatal(err)
	}

	e.Compact()
	scratch.Compact()
	for _, q := range persistQueries {
		if a, b := e.Index.Search(q, 10), scratch.Index.Search(q, 10); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) differs:\n  refreshed %v\n  scratch   %v", q, a, b)
		}
	}
}

// Refreshing an unchanged world is a no-op: nothing deleted, nothing
// added, no site re-surfaced.
func TestRefreshUnchangedWorldNoOp(t *testing.T) {
	e := freshEngine(t, 4)
	docs := e.Index.Len()
	st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChanged != 0 || st.DocsDeleted != 0 || st.DocsAdded != 0 {
		t.Fatalf("no-op refresh did work: %+v", st)
	}
	if e.Index.Len() != docs || e.Index.Deleted() != 0 {
		t.Fatalf("no-op refresh mutated the index: %d docs, %d tombstones", e.Index.Len(), e.Index.Deleted())
	}
}

// A host filter restricts both checking and re-surfacing.
func TestRefreshHostFilter(t *testing.T) {
	e := freshEngine(t, 4)
	e.CompactRatio = 0
	churnSubset(e.Web, 7) // churns sites 0, 3, 6 … by host order
	hosts := []string{e.Web.Sites()[0].Spec.Host}
	st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3, Hosts: hosts})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChecked != 1 {
		t.Fatalf("checked %d sites, want 1", st.SitesChecked)
	}
	if st.SitesChanged != 1 {
		t.Fatalf("refreshed %d sites, want 1", st.SitesChanged)
	}
}

// A Refresh pass that fails mid-pipeline must be recoverable: the
// failing site's surfaced docs are retired, but its crawled
// surface-web pages survive (stale, not gone), and a retry after the
// fault clears converges on the same corpus as a from-scratch surface.
func TestRefreshFailureThenRetryConverges(t *testing.T) {
	e := freshEngine(t, 4)
	e.CompactRatio = 0
	site := e.Web.Sites()[0]
	host := site.Spec.Host
	rng := rand.New(rand.NewSource(55))
	webgen.ChurnSite(site, 6, rng)

	// Poison the churned host so its re-surfacing fails mid-refresh.
	// The failure is contained: the pass completes, classifying the
	// site as transiently failed in the per-site report.
	e.Web.AddHandler(host, http.RedirectHandler("http://"+host+"/", http.StatusFound))
	broken, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatalf("partial refresh failure aborted the pass: %v", err)
	}
	if rep := broken.Sites[host]; rep.Status != SiteFailedTransient {
		t.Fatalf("poisoned site reported %s, want %s", rep.Status, SiteFailedTransient)
	}
	if !broken.Degraded {
		t.Error("refresh with a failed site is not marked Degraded")
	}
	// Surface-web pages of the failed site must still be live.
	if !e.Index.Has("http://" + host + "/") {
		t.Fatal("failed refresh dropped the site's homepage from the index")
	}

	// Fault clears; the retry re-surfaces the site (its signature is
	// still unrecorded) and swaps the surface pages.
	e.Web.AddHandler(host, site)
	st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChanged != 1 || st.SurfacePages == 0 {
		t.Fatalf("retry did not recover the site: %+v", st)
	}

	scratch, err := Build(refreshWorldCfg)
	if err != nil {
		t.Fatal(err)
	}
	scratch.Index = index.NewSharded(4)
	scratch.Workers = 4
	webgen.ChurnSite(scratch.Web.Sites()[0], 6, rand.New(rand.NewSource(55)))
	scratch.IndexSurfaceWeb(context.Background())
	if _, err := scratch.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		t.Fatal(err)
	}
	e.Compact()
	scratch.Compact()
	for _, q := range persistQueries {
		if a, b := e.Index.Search(q, 10), scratch.Index.Search(q, 10); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) differs after recovery:\n  refreshed %v\n  scratch   %v", q, a, b)
		}
	}
}

// Past the tombstone threshold, Refresh compacts automatically and the
// engine's host tracking survives the renumbering (a second refresh
// still works).
func TestRefreshAutoCompacts(t *testing.T) {
	e := freshEngine(t, 4)
	e.CompactRatio = 0.01 // any churn at all triggers compaction
	churnSubset(e.Web, 99)
	st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !st.Compacted {
		t.Fatalf("refresh did not compact: %+v", st)
	}
	if e.Index.Deleted() != 0 {
		t.Fatalf("%d tombstones after compaction", e.Index.Deleted())
	}
	// The renumbered engine must still refresh correctly.
	churnSubset(e.Web, 100)
	st2, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st2.SitesChanged == 0 {
		t.Fatalf("post-compact refresh found nothing: %+v", st2)
	}
	if got := e.Index.Search("used ford focus", 5); len(got) == 0 {
		t.Fatal("post-compact refreshed index answers nothing")
	}
}
