package engine

import (
	"context"
	"fmt"
	"os"
	"sort"
	"sync"
	"sync/atomic"

	"deepweb/internal/index"
	"deepweb/internal/store"
)

// Bulk ingestion: the paths that let a million-document world enter
// the engine under a bounded memory budget. Two modes share one
// streaming source abstraction:
//
//   - BulkIngest commits batches into a live engine's index through
//     the same ordered commit point the surfacing pipeline uses —
//     tokenization parallelized across the engine's Workers, doc ids
//     assigned in stream order, one table lock per batch instead of
//     per document.
//
//   - BulkBuild never builds an index at all. It streams documents
//     straight to a snapshot directory: the docs segment through
//     store.DocsWriter, postings through an in-RAM accumulator that
//     spills sorted runs to disk every SpillDocs documents and k-way
//     merges them into the final per-shard segments. Peak memory is
//     the spill window plus one shard's merged postings — independent
//     of corpus size. The merged output is byte-identical to
//     Save after BulkIngest of the same stream **except** for the
//     term→shard assignment: the in-RAM index shards by a per-process
//     random maphash seed, the disk build by stable FNV-1a. Scores,
//     ids and tie order are still bit-identical after Load, because
//     scoring merges across shards (property-tested).
//
// Sharding by FNV-1a also makes the build reproducible: the same
// stream yields byte-identical snapshot directories regardless of
// worker count, batch size, or spill budget.

// BulkSource streams documents in a deterministic order. Next returns
// the next document, its annotations (nil for none), and ok=false when
// the stream is exhausted. bulkgen.Source satisfies this.
type BulkSource interface {
	Next() (d index.Doc, anns map[string]string, ok bool)
}

// DefaultBulkBatch is the per-commit batch size bulk ingestion uses
// when BulkOptions.Batch is zero.
const DefaultBulkBatch = 4096

// DefaultSpillDocs is the spill window (documents per on-disk run
// flush) used when BulkBuildOptions.SpillDocs is zero.
const DefaultSpillDocs = 1 << 16

// BulkOptions configures BulkIngest.
type BulkOptions struct {
	// Batch is how many documents are prepared and committed per
	// ordered commit (default DefaultBulkBatch).
	Batch int
}

// BulkBuildOptions configures BulkBuild.
type BulkBuildOptions struct {
	// Docs is the exact stream length; the docs segment header needs
	// it up front. Required.
	Docs int
	// Shards is the postings-shard count of the snapshot (default
	// index.DefaultShards).
	Shards int
	// Batch is the tokenization batch size (default DefaultBulkBatch).
	Batch int
	// SpillDocs bounds the in-RAM posting accumulator: every SpillDocs
	// documents, all shards flush sorted runs to disk (default
	// DefaultSpillDocs). Smaller = less RAM, more runs to merge.
	SpillDocs int
	// Workers parallelizes tokenization and the final shard merges
	// (default 1).
	Workers int
}

// BulkStats reports one bulk run.
type BulkStats struct {
	Docs       int   // documents ingested (BulkIngest: newly added)
	Duplicates int   // BulkIngest only: URLs already present, skipped
	Runs       int   // BulkBuild only: spill-run files written
	Postings   int64 // term postings produced
}

// NewEmpty returns a web-less engine over an empty index: the entry
// point for programmatic ingestion (BulkIngest) and serving without a
// virtual web. Surfacing, coverage and Refresh need a web — attach one
// with New or LoadWith instead if you need them.
func NewEmpty() *Engine { return newEngine() }

// BulkIngest streams src into the live index in batches. Doc ids are
// assigned in stream order (the ordered commit point, amortized per
// batch), so the resulting index is bit-identical to adding the same
// documents one by one. A canceled ctx stops between batches; documents
// committed before cancellation stay (and the epoch still bumps).
func (e *Engine) BulkIngest(ctx context.Context, src BulkSource, opts BulkOptions) (BulkStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = DefaultBulkBatch
	}
	var stats BulkStats
	docs := make([]index.Doc, 0, batch)
	anns := make([]map[string]string, 0, batch)
	defer e.bumpEpoch()
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		docs, anns = docs[:0], anns[:0]
		for len(docs) < batch {
			d, a, ok := src.Next()
			if !ok {
				break
			}
			docs = append(docs, d)
			anns = append(anns, a)
		}
		if len(docs) == 0 {
			return stats, nil
		}
		ps := prepareAll(e.Workers, docs)
		ids, added := e.Index.AddPreparedBatch(ps)
		for i := range ps {
			if !added[i] {
				stats.Duplicates++
				continue
			}
			stats.Docs++
			stats.Postings += int64(len(ps[i].Terms()))
			if len(anns[i]) > 0 {
				e.Index.Annotate(ids[i], anns[i])
			}
			e.trackDoc(docs[i].URL, ids[i])
		}
	}
}

// prepareAll tokenizes docs on up to workers goroutines, preserving
// order: ps[i] is always Prepare(docs[i]).
func prepareAll(workers int, docs []index.Doc) []*index.Prepared {
	ps := make([]*index.Prepared, len(docs))
	if workers < 1 {
		workers = 1
	}
	if workers > len(docs) {
		workers = len(docs)
	}
	if workers <= 1 {
		for i, d := range docs {
			ps[i] = index.Prepare(d)
		}
		return ps
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(docs) {
					return
				}
				ps[i] = index.Prepare(docs[i])
			}
		}()
	}
	wg.Wait()
	return ps
}

// BulkBuild streams src into a snapshot directory at dir without ever
// holding the corpus in memory; the result Loads exactly like a
// directory written by Save. opts.Docs must match the stream length —
// a short or long stream is an error, as is a duplicate URL (bulk
// sources generate unique URLs by construction; dedup would force
// keeping all URLs in RAM). On error the partial build's temp files
// and spill runs are swept; a stale docs/postings segment from an
// earlier completed build may remain, exactly as an interrupted Save
// would leave one.
func BulkBuild(ctx context.Context, src BulkSource, dir string, opts BulkBuildOptions) (BulkStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var stats BulkStats
	if opts.Docs <= 0 {
		return stats, fmt.Errorf("engine: bulk build: Docs must be the exact stream length, got %d", opts.Docs)
	}
	shards := opts.Shards
	if shards <= 0 {
		shards = index.DefaultShards
	}
	spill := opts.SpillDocs
	if spill <= 0 {
		spill = DefaultSpillDocs
	}
	batch := opts.Batch
	if batch <= 0 {
		batch = DefaultBulkBatch
	}
	if batch > spill {
		batch = spill
	}
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return stats, err
	}
	// Crash hygiene, as in Save: sweep a previous crashed writer's
	// temp files and a previous crashed build's spill runs.
	if err := store.CleanTmp(dir); err != nil {
		return stats, fmt.Errorf("engine: bulk build: %w", err)
	}
	if err := store.CleanSpills(dir); err != nil {
		return stats, fmt.Errorf("engine: bulk build: %w", err)
	}

	dw, err := store.NewDocsWriter(store.DocsPath(dir), shards, opts.Docs)
	if err != nil {
		return stats, fmt.Errorf("engine: bulk build: %w", err)
	}
	fail := func(err error) (BulkStats, error) {
		dw.Abort()
		store.CleanSpills(dir)
		return stats, err
	}

	// Posting accumulator: term → ascending postings, sharded by
	// stable FNV-1a so every run of the same stream spills and merges
	// identically.
	acc := make([]map[string][]index.Posting, shards)
	for si := range acc {
		acc[si] = map[string][]index.Posting{}
	}
	flushes, window := 0, 0
	flushRuns := func(docsSoFar int) error {
		wrote := false
		for si, m := range acc {
			if len(m) == 0 {
				continue
			}
			terms := make([]index.TermPostings, 0, len(m))
			for t, ps := range m {
				terms = append(terms, index.TermPostings{Term: t, Postings: ps})
			}
			sort.Slice(terms, func(i, j int) bool { return terms[i].Term < terms[j].Term })
			if err := store.WriteSpillRun(dir, flushes, shards, si, docsSoFar, terms); err != nil {
				return err
			}
			stats.Runs++
			wrote = true
			acc[si] = map[string][]index.Posting{}
		}
		if wrote {
			flushes++
		}
		window = 0
		return nil
	}

	seen := make(map[uint64]struct{}, opts.Docs)
	docID := 0
	docs := make([]index.Doc, 0, batch)
	anns := make([]map[string]string, 0, batch)
	for {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		docs, anns = docs[:0], anns[:0]
		for len(docs) < batch {
			d, a, ok := src.Next()
			if !ok {
				break
			}
			docs = append(docs, d)
			anns = append(anns, a)
		}
		if len(docs) == 0 {
			break
		}
		if docID+len(docs) > opts.Docs {
			return fail(fmt.Errorf("engine: bulk build: stream longer than the declared %d docs", opts.Docs))
		}
		ps := prepareAll(workers, docs)
		for i, p := range ps {
			h := fnv64a(docs[i].URL)
			if _, dup := seen[h]; dup {
				return fail(fmt.Errorf("engine: bulk build: duplicate (or hash-colliding) URL %q", docs[i].URL))
			}
			seen[h] = struct{}{}
			if err := dw.Add(docs[i], p.DocLen(), anns[i]); err != nil {
				return fail(fmt.Errorf("engine: bulk build: %w", err))
			}
			terms, tfs := p.Terms(), p.TermFreqs()
			for j, t := range terms {
				si := int(fnv64a(t) % uint64(shards))
				acc[si][t] = append(acc[si][t], index.Posting{Doc: int32(docID), TF: tfs[j]})
			}
			stats.Postings += int64(len(terms))
			docID++
			window++
			if window >= spill {
				if err := flushRuns(docID); err != nil {
					return fail(fmt.Errorf("engine: bulk build: %w", err))
				}
			}
		}
	}
	if docID != opts.Docs {
		return fail(fmt.Errorf("engine: bulk build: stream ended at %d of the declared %d docs", docID, opts.Docs))
	}
	if err := flushRuns(docID); err != nil {
		return fail(fmt.Errorf("engine: bulk build: %w", err))
	}
	snapID, err := dw.Close()
	if err != nil {
		store.CleanSpills(dir)
		return stats, fmt.Errorf("engine: bulk build: %w", err)
	}

	// Merge each shard's sorted runs into its final postings segment.
	// Within a term, concatenating the runs in flush order yields
	// ascending doc ids — flushes happen in doc order — so the merged
	// segment is independent of where the spill boundaries fell.
	err = forEachShardN(workers, shards, func(si int) error {
		paths, err := store.SpillRuns(dir, si)
		if err != nil {
			return err
		}
		runs := make([][]index.TermPostings, 0, len(paths))
		for _, p := range paths {
			terms, h, err := store.ReadSpillRun(p)
			if err != nil {
				return err
			}
			if h.Shards != uint32(shards) || h.ShardID != uint32(si) {
				return fmt.Errorf("%s: run header (shards=%d id=%d) disagrees with build (shards=%d id=%d): %w",
					p, h.Shards, h.ShardID, shards, si, store.ErrCorrupt)
			}
			runs = append(runs, terms)
		}
		return store.WritePostings(store.PostingsPath(dir, si), shards, si, opts.Docs, snapID, mergeRuns(runs))
	})
	if err != nil {
		store.CleanSpills(dir)
		return stats, fmt.Errorf("engine: bulk build merge: %w", err)
	}
	if err := store.CleanSpills(dir); err != nil {
		return stats, fmt.Errorf("engine: bulk build: %w", err)
	}
	// An empty meta segment, exactly as Save writes for an engine with
	// no refresh signatures: the directory stays Load-complete and
	// byte-identical to the in-RAM path's output.
	if err := store.WriteMeta(store.MetaPath(dir), &store.MetaSegment{}); err != nil {
		return stats, fmt.Errorf("engine: bulk build meta: %w", err)
	}
	stats.Docs = docID
	return stats, nil
}

// mergeRuns k-way merges per-run sorted term lists into one sorted
// list, concatenating a term's postings across runs in run (= doc-id)
// order. Linear scan over run heads: run counts are dozens, not
// thousands, and the real cost is the postings append.
func mergeRuns(runs [][]index.TermPostings) []index.TermPostings {
	heads := make([]int, len(runs))
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]index.TermPostings, 0, total)
	for {
		best := ""
		found := false
		for ri, r := range runs {
			if heads[ri] < len(r) {
				if t := r[heads[ri]].Term; !found || t < best {
					best, found = t, true
				}
			}
		}
		if !found {
			return out
		}
		var ps []index.Posting
		for ri, r := range runs {
			if heads[ri] < len(r) && r[heads[ri]].Term == best {
				ps = append(ps, r[heads[ri]].Postings...)
				heads[ri]++
			}
		}
		out = append(out, index.TermPostings{Term: best, Postings: ps})
	}
}

// fnv64a is the stable term→shard hash of the disk build (the in-RAM
// index uses a per-process maphash seed instead, so its shard layout
// is deliberately not stable across processes).
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
