package engine

import (
	"context"
	"testing"

	"deepweb/internal/query"
)

// The acceptance bar of the structured-filter path: a filtered search
// is exactly the brute-force filter of the unfiltered ranking — same
// documents, bit-identical score bits, exact Total, tiling pagination
// — across shard counts, on a cold engine, through the snapshot
// boundary, and through the result cache. Run with -race.

// filterCases pairs queries with predicate sets that resolve against
// the surfaced corpus's real annotations (make/minprice/maxprice/
// city/year from the form bindings) and its text tokens.
func filterCases(t *testing.T) []struct {
	q     string
	preds []query.Predicate
} {
	t.Helper()
	return []struct {
		q     string
		preds []query.Predicate
	}{
		{"used ford focus", []query.Predicate{query.Eq("make", "ford")}},
		{"used ford focus", []query.Predicate{mustPred(t, "price<9000")}},
		{"used ford focus", []query.Predicate{mustPred(t, "year:2004..2007")}},
		{"homes in seattle", []query.Predicate{query.Eq("city", "seattle")}},
		{"used ford focus", []query.Predicate{query.Eq("make", "ford"), mustPred(t, "price<12000")}},
		{"nurse jobs", []query.Predicate{mustPred(t, "salary>=40000")}},
		{"used ford focus", []query.Predicate{query.Eq("make", "zzz-no-such-make")}},
	}
}

func mustPred(t *testing.T, s string) query.Predicate {
	t.Helper()
	p, err := query.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bruteFilter replays the matcher over an unfiltered ranking the slow,
// obviously-correct way: look up each hit's annotations and document
// row and keep the survivors in rank order.
func bruteFilter(e *Engine, preds []query.Predicate, unfiltered SearchResponse) []SearchResponseResult {
	m := query.NewMatcher(preds)
	var out []SearchResponseResult
	for _, r := range unfiltered.Results {
		d := e.Index.Doc(r.DocID)
		if m.Match(e.Index.AnnotationsOf(r.DocID), d.Title, d.Text) {
			out = append(out, SearchResponseResult{r.DocID, r.Score})
		}
	}
	return out
}

// SearchResponseResult is the (id, score-bits) projection the
// equivalence assertions compare on.
type SearchResponseResult struct {
	DocID int
	Score float64
}

func project(resp SearchResponse) []SearchResponseResult {
	out := make([]SearchResponseResult, len(resp.Results))
	for i, r := range resp.Results {
		out[i] = SearchResponseResult{r.DocID, r.Score}
	}
	return out
}

func assertSameRanking(t *testing.T, ctxMsg string, got, want []SearchResponseResult) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d hits, want %d", ctxMsg, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d: %+v, want %+v (score bits must be identical)", ctxMsg, i, got[i], want[i])
		}
	}
}

func TestFilteredSearchEqualsBruteForce(t *testing.T) {
	const exhaustive = 10000
	ctx := context.Background()
	for _, shards := range []int{1, 4, 16} {
		cold := surfacedEngine(t, shards)

		dir := t.TempDir()
		if err := cold.Save(dir); err != nil {
			t.Fatalf("shards=%d: save: %v", shards, err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatalf("shards=%d: load: %v", shards, err)
		}

		cached := surfacedEngine(t, shards)
		cached.EnableResultCache(256)

		nontrivial := false
		for name, e := range map[string]*Engine{"cold": cold, "snapshot": loaded, "cached": cached} {
			for _, c := range filterCases(t) {
				msg := name + " " + c.q + " | " + query.Key(c.preds)
				unfiltered, err := e.Search(ctx, SearchRequest{Query: c.q, K: exhaustive})
				if err != nil {
					t.Fatalf("shards=%d %s: unfiltered: %v", shards, msg, err)
				}
				want := bruteFilter(e, c.preds, unfiltered)
				if n := len(want); n > 0 && n < unfiltered.Total {
					nontrivial = true
				}

				filtered, err := e.Search(ctx, SearchRequest{Query: c.q, K: exhaustive, Filters: c.preds})
				if err != nil {
					t.Fatalf("shards=%d %s: filtered: %v", shards, msg, err)
				}
				if filtered.Total != len(want) {
					t.Fatalf("shards=%d %s: Total %d, want %d", shards, msg, filtered.Total, len(want))
				}
				assertSameRanking(t, msg, project(filtered), want)

				// Pagination tiles the same canonical filtered ordering.
				var tiled []SearchResponseResult
				for offset := 0; offset < filtered.Total; offset += 3 {
					page, err := e.Search(ctx, SearchRequest{Query: c.q, K: 3, Offset: offset, Filters: c.preds})
					if err != nil {
						t.Fatalf("shards=%d %s: page offset %d: %v", shards, msg, offset, err)
					}
					if page.Total != filtered.Total {
						t.Fatalf("shards=%d %s: page total %d, want %d", shards, msg, page.Total, filtered.Total)
					}
					tiled = append(tiled, project(page)...)
				}
				assertSameRanking(t, msg+" (tiled)", tiled, want)
			}
		}
		if !nontrivial {
			t.Fatalf("shards=%d: no filter case produced a proper non-empty subset; the property test is vacuous", shards)
		}

		// The cached engine has now filled entries: a repeat of every
		// filtered case must be a hit and stay bit-identical to the cold
		// engine's truth.
		for _, c := range filterCases(t) {
			req := SearchRequest{Query: c.q, K: exhaustive, Filters: c.preds}
			want, err := cold.Search(ctx, req)
			if err != nil {
				t.Fatal(err)
			}
			got, err := cached.Search(ctx, req)
			if err != nil {
				t.Fatalf("shards=%d: cached repeat: %v", shards, err)
			}
			if !got.Cached {
				t.Fatalf("shards=%d: filtered repeat of %q not served from cache", shards, c.q)
			}
			if got.Total != want.Total {
				t.Fatalf("shards=%d: cached filtered total %d, want %d", shards, got.Total, want.Total)
			}
			assertSameRanking(t, "cached "+c.q, project(got), project(want))
		}
	}
}

// Filters are part of the cache key (mirror of
// TestCacheKeySeparatesAnnotatedStemCollisions): a filtered request
// must never share an entry with its unfiltered spelling or with a
// different filter, while order- and duplicate-variant spellings of
// the same filter must share one.
func TestCacheKeySeparatesFilters(t *testing.T) {
	e := surfacedEngine(t, 1)
	plain := SearchRequest{Query: "used ford focus", K: 10}
	ford := SearchRequest{Query: "used ford focus", K: 10,
		Filters: []query.Predicate{query.Eq("make", "ford")}}
	honda := SearchRequest{Query: "used ford focus", K: 10,
		Filters: []query.Predicate{query.Eq("make", "honda")}}
	if e.searchCacheKey(plain) == e.searchCacheKey(ford) {
		t.Fatal("filtered and unfiltered queries share a cache key")
	}
	if e.searchCacheKey(ford) == e.searchCacheKey(honda) {
		t.Fatal("distinct filters share a cache key")
	}

	cheap := mustPred(t, "price<10000")
	ab := SearchRequest{Query: "used ford focus", K: 10,
		Filters: []query.Predicate{query.Eq("make", "ford"), cheap}}
	ba := SearchRequest{Query: "used ford focus", K: 10,
		Filters: []query.Predicate{cheap, query.Eq("make", "ford")}}
	dup := SearchRequest{Query: "used ford focus", K: 10,
		Filters: []query.Predicate{cheap, query.Eq("make", "ford"), cheap}}
	if e.searchCacheKey(ab) != e.searchCacheKey(ba) {
		t.Fatal("permuted filter lists got distinct keys; they are the same filter")
	}
	if e.searchCacheKey(ab) != e.searchCacheKey(dup) {
		t.Fatal("duplicated predicates changed the key; canonicalization must dedupe")
	}

	// An in-query DSL spelling and an explicit Filters spelling of the
	// same request are the same query end to end.
	rest, preds := query.Extract("used ford focus price<10000 make:ford")
	viaDSL := SearchRequest{Query: rest, K: 10, Filters: preds}
	if e.searchCacheKey(viaDSL) != e.searchCacheKey(ab) {
		t.Fatal("in-query DSL and explicit filters key differently")
	}
}
