package engine

import (
	"context"
	"fmt"
	"os"

	"deepweb/internal/semserv"
	"deepweb/internal/store"
	"deepweb/internal/webgen"
	"deepweb/internal/webtables"
	"deepweb/internal/webx"
)

// SemanticStore is the §6 aggregate-semantics side of the façade: the
// stores built by deep-crawling the world and pooling its HTML tables.
type SemanticStore struct {
	PagesCrawled int
	RawTables    int
	// Tables is the quality-filtered relational subset.
	Tables []webtables.RawTable
	ACS    *webtables.ACSDb
	Values *webtables.ValueStore
}

// BuildSemantics deep-crawls the world — following query links so
// record pages (with tables) are reached, the post-surfacing state of
// the index — and aggregates every HTML table into an ACSDb and a value
// store. maxPages bounds the crawl (0 = unlimited); a canceled ctx
// stops the crawl and builds the stores from the pages fetched so far.
func (e *Engine) BuildSemantics(ctx context.Context, maxPages int) *SemanticStore {
	c := &webx.Crawler{Fetcher: e.Fetch, FollowQuery: true, MaxPages: maxPages}
	pages := c.Crawl(ctx, "http://"+webgen.HubHost+"/")
	raw := webtables.ExtractFromPages(pages)
	good := webtables.QualityFilter(raw)
	vals := webtables.NewValueStore()
	vals.AddTables(good)
	return &SemanticStore{
		PagesCrawled: len(pages),
		RawTables:    len(raw),
		Tables:       good,
		ACS:          webtables.BuildACSDb(good),
		Values:       vals,
	}
}

// Server wraps the store in the four-service HTTP server (§6).
func (s *SemanticStore) Server() *semserv.Server {
	return semserv.New(s.ACS, s.Values, s.Tables)
}

// Save writes the semantic store's tables segment into a snapshot
// directory (alongside, or independent of, an index snapshot). Only
// the filtered raw tables are persisted — the ACSDb and value store
// are cheap deterministic aggregations LoadSemantics rebuilds.
func (s *SemanticStore) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	err := store.WriteTables(store.TablesPath(dir), &store.TablesSegment{
		PagesCrawled: s.PagesCrawled,
		RawTables:    s.RawTables,
		Tables:       s.Tables,
	})
	if err != nil {
		return fmt.Errorf("engine: save tables: %w", err)
	}
	return nil
}

// LoadSemantics rebuilds a SemanticStore from a snapshot directory's
// tables segment — the warm-start path that replaces BuildSemantics's
// deep crawl. The ACSDb and value store come out identical to the
// saved store's because both are pure functions of the table set.
func LoadSemantics(dir string) (*SemanticStore, error) {
	seg, err := store.ReadTables(store.TablesPath(dir))
	if err != nil {
		return nil, fmt.Errorf("engine: load tables: %w", err)
	}
	vals := webtables.NewValueStore()
	vals.AddTables(seg.Tables)
	return &SemanticStore{
		PagesCrawled: seg.PagesCrawled,
		RawTables:    seg.RawTables,
		Tables:       seg.Tables,
		ACS:          webtables.BuildACSDb(seg.Tables),
		Values:       vals,
	}, nil
}
