package engine

import (
	"deepweb/internal/semserv"
	"deepweb/internal/webgen"
	"deepweb/internal/webtables"
	"deepweb/internal/webx"
)

// SemanticStore is the §6 aggregate-semantics side of the façade: the
// stores built by deep-crawling the world and pooling its HTML tables.
type SemanticStore struct {
	PagesCrawled int
	RawTables    int
	// Tables is the quality-filtered relational subset.
	Tables []webtables.RawTable
	ACS    *webtables.ACSDb
	Values *webtables.ValueStore
}

// BuildSemantics deep-crawls the world — following query links so
// record pages (with tables) are reached, the post-surfacing state of
// the index — and aggregates every HTML table into an ACSDb and a value
// store. maxPages bounds the crawl (0 = unlimited).
func (e *Engine) BuildSemantics(maxPages int) *SemanticStore {
	c := &webx.Crawler{Fetcher: e.Fetch, FollowQuery: true, MaxPages: maxPages}
	pages := c.Crawl("http://" + webgen.HubHost + "/")
	raw := webtables.ExtractFromPages(pages)
	good := webtables.QualityFilter(raw)
	vals := webtables.NewValueStore()
	vals.AddTables(good)
	return &SemanticStore{
		PagesCrawled: len(pages),
		RawTables:    len(raw),
		Tables:       good,
		ACS:          webtables.BuildACSDb(good),
		Values:       vals,
	}
}

// Server wraps the store in the four-service HTTP server (§6).
func (s *SemanticStore) Server() *semserv.Server {
	return semserv.New(s.ACS, s.Values, s.Tables)
}
