package engine

import (
	"context"
	"math/rand"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/webgen"
)

// BenchmarkSnapshotSave / BenchmarkSnapshotLoad measure the two halves
// of the warm-start path over a surfaced multi-site world. Load is the
// number that matters in production: it is the serving binary's whole
// startup cost, and BenchmarkColdSurface alongside it is what that
// startup used to cost.
func BenchmarkSnapshotSave(b *testing.B) {
	e := surfacedEngine(b, 16)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Save(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	e := surfacedEngine(b, 16)
	dir := b.TempDir()
	if err := e.Save(dir); err != nil {
		b.Fatal(err)
	}
	prev := DefaultWorkers
	DefaultWorkers = 4
	defer func() { DefaultWorkers = prev }()
	docs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := Load(dir)
		if err != nil {
			b.Fatal(err)
		}
		docs = loaded.Index.Len()
	}
	b.ReportMetric(float64(docs), "docs")
}

// BenchmarkRefresh measures one incremental freshness pass: churn a
// third of the sites, detect the change by signature, retire the
// changed sites' documents and re-surface only them. BenchmarkColdSurface
// is the number it replaces — a full re-crawl of the world — so the
// pair in CI keeps the incremental path's advantage visible and gates
// delete/refresh regressions like the other hot paths.
func BenchmarkRefresh(b *testing.B) {
	e := surfacedEngine(b, 16)
	changed, deleted, added := 0, 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Churn outside the timer: the benchmark is the refresh, not
		// the synthetic mutation.
		for j, s := range e.Web.Sites() {
			if j%3 == 0 {
				webgen.ChurnSite(s, 5, benchRNG(int64(i)))
			}
		}
		b.StartTimer()
		st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
		if err != nil {
			b.Fatal(err)
		}
		changed += st.SitesChanged
		deleted += st.DocsDeleted
		added += st.DocsAdded
	}
	b.ReportMetric(float64(changed)/float64(b.N), "sites-refreshed")
	b.ReportMetric(float64(deleted)/float64(b.N), "docs-retired")
	b.ReportMetric(float64(added)/float64(b.N), "docs-added")
}

func benchRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkColdSurface is the re-crawl baseline BenchmarkSnapshotLoad
// replaces: build nothing, surface the same world from scratch.
func BenchmarkColdSurface(b *testing.B) {
	web, err := webgen.BuildWorld(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		b.Fatal(err)
	}
	docs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(web)
		e.Workers = 4
		e.IndexSurfaceWeb(context.Background())
		if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
			b.Fatal(err)
		}
		docs = e.Index.Len()
	}
	b.ReportMetric(float64(docs), "docs")
}
