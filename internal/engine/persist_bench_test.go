package engine

import (
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/webgen"
)

// BenchmarkSnapshotSave / BenchmarkSnapshotLoad measure the two halves
// of the warm-start path over a surfaced multi-site world. Load is the
// number that matters in production: it is the serving binary's whole
// startup cost, and BenchmarkColdSurface alongside it is what that
// startup used to cost.
func BenchmarkSnapshotSave(b *testing.B) {
	e := surfacedEngine(b, 16)
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Save(dir); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSnapshotLoad(b *testing.B) {
	e := surfacedEngine(b, 16)
	dir := b.TempDir()
	if err := e.Save(dir); err != nil {
		b.Fatal(err)
	}
	prev := DefaultWorkers
	DefaultWorkers = 4
	defer func() { DefaultWorkers = prev }()
	docs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		loaded, err := Load(dir)
		if err != nil {
			b.Fatal(err)
		}
		docs = loaded.Index.Len()
	}
	b.ReportMetric(float64(docs), "docs")
}

// BenchmarkColdSurface is the re-crawl baseline BenchmarkSnapshotLoad
// replaces: build nothing, surface the same world from scratch.
func BenchmarkColdSurface(b *testing.B) {
	web, err := webgen.BuildWorld(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		b.Fatal(err)
	}
	docs := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(web)
		e.Workers = 4
		e.IndexSurfaceWeb()
		if err := e.SurfaceAll(core.DefaultConfig(), 3); err != nil {
			b.Fatal(err)
		}
		docs = e.Index.Len()
	}
	b.ReportMetric(float64(docs), "docs")
}
