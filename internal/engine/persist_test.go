package engine

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/store"
	"deepweb/internal/webgen"
)

// surfacedEngine builds and surfaces a world whose index uses the
// given posting-shard count.
func surfacedEngine(t testing.TB, shards int) *Engine {
	t.Helper()
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		t.Fatal(err)
	}
	e.Index = index.NewSharded(shards)
	e.Workers = 4
	if e.IndexSurfaceWeb(context.Background()) == 0 {
		t.Fatal("surface-web crawl indexed nothing")
	}
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		t.Fatal(err)
	}
	return e
}

var persistQueries = []string{
	"used ford focus", "homes in seattle", "nurse jobs",
	"history books", "thai recipes", "turing award professor",
	"ford ford focus", "the of and", "zzz-no-such-term",
}

// The acceptance bar of the snapshot layer: for a surfaced world,
// Search from a loaded snapshot is bit-identical to the live index —
// ids, scores (to the last float bit), tie order — across shard
// counts, with encode and decode running on the parallel workers path.
// Run with -race.
func TestSaveLoadSearchBitIdentical(t *testing.T) {
	for _, shards := range []int{1, 4, index.DefaultShards} {
		live := surfacedEngine(t, shards)
		dir := t.TempDir()
		if err := live.Save(dir); err != nil {
			t.Fatalf("shards=%d: save: %v", shards, err)
		}

		prev := DefaultWorkers
		DefaultWorkers = 4
		loaded, err := Load(dir)
		DefaultWorkers = prev
		if err != nil {
			t.Fatalf("shards=%d: load: %v", shards, err)
		}

		if live.Index.Len() != loaded.Index.Len() {
			t.Fatalf("shards=%d: %d docs became %d", shards, live.Index.Len(), loaded.Index.Len())
		}
		for id := 0; id < live.Index.Len(); id++ {
			if live.Index.Doc(id) != loaded.Index.Doc(id) {
				t.Fatalf("shards=%d: doc %d differs", shards, id)
			}
			if !reflect.DeepEqual(live.Index.AnnotationsOf(id), loaded.Index.AnnotationsOf(id)) {
				t.Fatalf("shards=%d: annotations of doc %d differ", shards, id)
			}
		}
		if !reflect.DeepEqual(live.Index.DocsBySource(), loaded.Index.DocsBySource()) {
			t.Errorf("shards=%d: per-source counts differ", shards)
		}
		for _, q := range persistQueries {
			a, b := live.Index.Search(q, 10), loaded.Index.Search(q, 10)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: Search(%q) differs:\n  live   %v\n  loaded %v", shards, q, a, b)
				continue
			}
			for i := range a {
				if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
					t.Errorf("shards=%d: Search(%q) hit %d: score bits differ", shards, q, i)
				}
			}
			if a, b := live.Index.AnnotatedSearch(q, 10), loaded.Index.AnnotatedSearch(q, 10); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: AnnotatedSearch(%q) differs", shards, q)
			}
		}
	}
}

// Saving over an existing snapshot must leave a readable snapshot, and
// a snapshot saved by a 1-worker engine must be byte-identical to one
// saved by a parallel engine (segment bytes are deterministic).
func TestSaveDeterministicAcrossWorkers(t *testing.T) {
	e := surfacedEngine(t, 4)
	seq, par := t.TempDir(), t.TempDir()
	e.Workers = 1
	if err := e.Save(seq); err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	if err := e.Save(par); err != nil {
		t.Fatal(err)
	}
	names := []string{"docs.seg"}
	for si := 0; si < e.Index.NumShards(); si++ {
		names = append(names, filepath.Base(store.PostingsPath("", si)))
	}
	for _, name := range names {
		a, err := os.ReadFile(filepath.Join(seq, name))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(par, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%s differs between 1-worker and 4-worker saves", name)
		}
	}
}

// A damaged snapshot directory must fail the load with a diagnosable
// error — the serving binary exits at startup instead of serving a
// silently wrong index.
func TestLoadRejectsDamagedSnapshot(t *testing.T) {
	e := surfacedEngine(t, 4)
	save := func(t *testing.T) string {
		dir := t.TempDir()
		if err := e.Save(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("missing directory", func(t *testing.T) {
		if _, err := Load(filepath.Join(t.TempDir(), "nope")); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("want not-exist, got %v", err)
		}
	})
	t.Run("missing postings segment", func(t *testing.T) {
		dir := save(t)
		if err := os.Remove(store.PostingsPath(dir, 2)); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("want not-exist, got %v", err)
		}
	})
	t.Run("truncated postings segment", func(t *testing.T) {
		dir := save(t)
		path := store.PostingsPath(dir, 1)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("want ErrCorrupt, got %v", err)
		}
	})
	t.Run("postings from a different generation", func(t *testing.T) {
		// Rewrite one postings segment with its own decoded contents but
		// a perturbed snapshot id — the shape a crash mid-save leaves
		// behind (old-generation postings under a new docs segment).
		dir := save(t)
		path := store.PostingsPath(dir, 0)
		terms, ph, err := store.ReadPostings(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := store.WritePostings(path, int(ph.Shards), 0, int(ph.DocCount), ph.SnapID+1, terms); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, store.ErrCorrupt) {
			t.Fatalf("mixed-generation snapshot loaded: %v", err)
		}
	})
	t.Run("segments from different snapshots", func(t *testing.T) {
		dir := save(t)
		other := surfacedEngine(t, 8)
		otherDir := t.TempDir()
		if err := other.Save(otherDir); err != nil {
			t.Fatal(err)
		}
		// A docs segment claiming 8 shards over 4-shard postings files.
		if err := os.Rename(store.DocsPath(otherDir), store.DocsPath(dir)); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); err == nil {
			t.Fatal("mixed-snapshot load succeeded")
		}
	})
}

// Load edge cases: an empty directory, a snapshot without the optional
// semantics segment, and a version-skewed (v1) snapshot must each fail
// — or degrade — cleanly, never panic or misread.
func TestLoadEdgeCases(t *testing.T) {
	t.Run("empty directory", func(t *testing.T) {
		// The directory exists but holds no segments: "no snapshot
		// here", distinguishable from corruption.
		if _, err := Load(t.TempDir()); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("want not-exist, got %v", err)
		}
	})
	t.Run("missing semantics segment", func(t *testing.T) {
		// Engine.Save writes no tables segment; the index must load
		// anyway (the segment is optional) while LoadSemantics reports
		// the absence cleanly.
		e := surfacedEngine(t, 4)
		dir := t.TempDir()
		if err := e.Save(dir); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatalf("index-only snapshot rejected: %v", err)
		}
		if loaded.Index.Len() != e.Index.Len() {
			t.Fatalf("loaded %d of %d docs", loaded.Index.Len(), e.Index.Len())
		}
		if _, err := LoadSemantics(dir); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("missing tables segment: want not-exist, got %v", err)
		}
	})
	t.Run("missing meta segment", func(t *testing.T) {
		// A snapshot stripped of refresh metadata still serves; it just
		// carries no site signatures.
		e := surfacedEngine(t, 4)
		dir := t.TempDir()
		if err := e.Save(dir); err != nil {
			t.Fatal(err)
		}
		if err := os.Remove(store.MetaPath(dir)); err != nil {
			t.Fatal(err)
		}
		loaded, err := Load(dir)
		if err != nil {
			t.Fatalf("meta-less snapshot rejected: %v", err)
		}
		if len(loaded.SiteSignatures) != 0 {
			t.Fatalf("signatures from nowhere: %v", loaded.SiteSignatures)
		}
	})
	t.Run("v1 version skew", func(t *testing.T) {
		// A v1-era segment (version field 1, CRCs resealed) must come
		// back as a clean ErrVersion from the whole-engine Load.
		e := surfacedEngine(t, 4)
		dir := t.TempDir()
		if err := e.Save(dir); err != nil {
			t.Fatal(err)
		}
		path := store.DocsPath(dir)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint16(raw[4:6], 1)
		binary.LittleEndian.PutUint32(raw[36:40], crc32.Checksum(raw[44:], crc32.MakeTable(crc32.Castagnoli)))
		binary.LittleEndian.PutUint32(raw[40:44], crc32.Checksum(raw[0:40], crc32.MakeTable(crc32.Castagnoli)))
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(dir); !errors.Is(err, store.ErrVersion) {
			t.Fatalf("v1 docs segment: want ErrVersion, got %v", err)
		}
	})
}

// The semantic store round-trips through its tables segment: the
// rebuilt ACSDb and value store are identical because both are pure
// functions of the persisted tables.
func TestSemanticsSaveLoad(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 40})
	if err != nil {
		t.Fatal(err)
	}
	sem := e.BuildSemantics(context.Background(), 2000)
	dir := t.TempDir()
	if err := sem.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSemantics(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, sem) {
		t.Fatalf("semantic store round trip differs:\n got %+v\nwant %+v", got, sem)
	}
	if got.Server() == nil {
		t.Fatal("loaded store has no server")
	}
}

// Save sweeps a crashed predecessor's *.tmp droppings from the target
// directory before writing, so they can neither accumulate nor be
// mistaken for live segments.
func TestSaveSweepsStaleTmp(t *testing.T) {
	e := surfacedEngine(t, 4)
	dir := t.TempDir()
	stale := filepath.Join(dir, "docs.seg.999.tmp")
	if err := os.WriteFile(stale, []byte("crashed writer"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := e.Save(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale tmp survived Save: %v", err)
	}
	if _, err := Load(dir); err != nil {
		t.Errorf("snapshot unreadable after sweep: %v", err)
	}
}
