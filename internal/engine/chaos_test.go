package engine

import (
	"context"
	"reflect"
	"testing"
	"time"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/resilient"
	"deepweb/internal/webgen"
)

// chaosOpts are the resilient defaults with the backoff delays shrunk
// to test scale — real jitter schedule, microsecond waits.
func chaosOpts() resilient.Options {
	o := resilient.Defaults()
	o.BaseDelay = 100 * time.Microsecond
	o.MaxDelay = time.Millisecond
	return o
}

// stormOver profiles every second host with a decaying flap — the
// first 4 requests fail, with the failure mode rotating through the
// whole retryable taxonomy (5xx, 429, timeout, reset, truncation) —
// and returns the armed Chaos transport plus the flapped hosts.
// FailFirst faults are count-bounded, so a retrying fetch stack plus
// refresh healing must eventually outlast them; probabilistic faults
// never drain, which is why they have no place in a convergence test.
// Garbling is also excluded: a garbled 200 is indistinguishable from
// content at the transport layer, so it cannot heal bit-identically.
func stormOver(web *webgen.Web, seed int64) (*webgen.Chaos, []string) {
	storm := webgen.NewChaos(web, seed)
	kinds := []webgen.FaultKind{
		webgen.Fault503, webgen.Fault429, webgen.FaultTimeout,
		webgen.FaultReset, webgen.FaultTruncate,
	}
	var flapped []string
	for i, site := range web.Sites() {
		if i%2 != 0 {
			continue
		}
		host := site.Spec.Host
		// FailFirst 4 stays under the breaker threshold (5), so the
		// breaker arms but never opens: the flap is exactly the shape
		// the retry/refresh stack is specified to ride out.
		storm.SetProfile(host, webgen.FaultProfile{FailFirst: 4, FailWith: kinds[(i/2)%len(kinds)]})
		flapped = append(flapped, host)
	}
	return storm, flapped
}

// The convergence property the whole resilience stack exists for: a
// surfacing pass under deterministic chaos (every retryable fault
// kind, injected as decaying per-host flaps), followed by at most
// three Refresh passes, converges on a corpus bit-identical to a
// fault-free run of the same world — same URL set, same score bits,
// same live doc count, same refresh signatures. Transiently failed
// and degraded sites leave no signature behind, which is exactly what
// makes the next Refresh re-drive them. Run with -race; shard count
// must not matter.
func TestChaosSurfaceConvergesToFaultFree(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		// Reference arm: the same world, no weather.
		ref, err := Build(refreshWorldCfg)
		if err != nil {
			t.Fatal(err)
		}
		ref.Index = index.NewSharded(shards)
		ref.Workers = 4
		if _, err := ref.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
			t.Fatalf("shards=%d: fault-free surface: %v", shards, err)
		}

		// Chaos arm: identical world behind a fault-injecting transport.
		e, err := Build(refreshWorldCfg)
		if err != nil {
			t.Fatal(err)
		}
		e.Index = index.NewSharded(shards)
		e.Workers = 4
		e.CompactRatio = 0 // compaction is explicit, at the comparison point
		storm, flapped := stormOver(e.Web, 1234)
		e.UseTransport(storm)
		e.SetResilience(chaosOpts())

		resp, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3})
		if err != nil {
			t.Fatalf("shards=%d: chaos surface aborted: %v", shards, err)
		}
		if storm.TotalInjected() == 0 {
			t.Fatal("storm injected nothing; the test exercises nothing")
		}
		if !resp.Degraded {
			t.Fatalf("shards=%d: chaos surface reports Degraded=false with %d faults injected", shards, storm.TotalInjected())
		}
		// Every flapped host must be accounted for — either it burned
		// retries on the way to OK/degraded, or it failed transiently.
		for _, host := range flapped {
			rep := resp.Sites[host]
			if rep.Status == SiteOK && rep.Retries == 0 {
				t.Errorf("shards=%d: flapped host %s reports a clean pass", shards, host)
			}
			if rep.Status == SiteFailedPermanent {
				t.Errorf("shards=%d: flapped host %s classified permanent: %s", shards, host, rep.Err)
			}
			if rep.Status != SiteOK {
				if _, ok := e.SiteSignatures[host]; ok {
					t.Errorf("shards=%d: troubled host %s recorded a signature; refresh will never heal it", shards, host)
				}
			}
		}
		total, _, ok := e.FetchStats()
		if !ok || total.Retries == 0 {
			t.Fatalf("shards=%d: fetch stack reports no retries under chaos (ok=%v, %+v)", shards, ok, total)
		}

		// Self-healing: each Refresh re-drives the signature-less sites;
		// the flaps decay, so a bounded number of passes must converge.
		healed := false
		for pass := 1; pass <= 3; pass++ {
			st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
			if err != nil {
				t.Fatalf("shards=%d: healing refresh %d: %v", shards, pass, err)
			}
			if !st.Degraded && st.SitesChanged == 0 {
				healed = true
				break
			}
		}
		if !healed {
			t.Fatalf("shards=%d: corpus did not converge within 3 refreshes", shards)
		}

		// Bit-identical equivalence after canonicalizing both arms.
		ref.Compact()
		e.Compact()
		if got, want := e.Index.Len(), ref.Index.Len(); got != want {
			t.Errorf("shards=%d: healed corpus has %d docs, fault-free has %d", shards, got, want)
		}
		if !reflect.DeepEqual(e.SiteSignatures, ref.SiteSignatures) {
			t.Errorf("shards=%d: healed signatures differ from fault-free", shards)
		}
		for _, q := range persistQueries {
			if a, b := urlScores(t, e.Index, q), urlScores(t, ref.Index, q); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: Search(%q) differs after healing:\n  chaos     %v\n  fault-free %v", shards, q, a, b)
			}
		}
	}
}

// With retries disabled the same storm must degrade, not abort: the
// pass completes with a nil error, the flapped sites are classified
// transient failures, and the healthy remainder commits normally.
func TestChaosWithoutRetriesDegradesGracefully(t *testing.T) {
	e, err := Build(refreshWorldCfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	storm, flapped := stormOver(e.Web, 1234)
	e.UseTransport(storm)
	opts := chaosOpts()
	opts.MaxAttempts = 1 // retries off
	e.SetResilience(opts)

	resp, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatalf("partial failure aborted the pass: %v", err)
	}
	if !resp.Degraded {
		t.Fatal("retry-less chaos surface not marked Degraded")
	}
	failed := 0
	for _, host := range flapped {
		rep := resp.Sites[host]
		if rep.Retries != 0 {
			t.Errorf("host %s retried %d times with MaxAttempts=1", host, rep.Retries)
		}
		if rep.Status == SiteFailedTransient {
			failed++
			if _, committed := e.Results[host]; committed {
				t.Errorf("failed host %s committed a result", host)
			}
		}
	}
	if failed == 0 {
		t.Fatal("no flapped site failed; the storm did not bind")
	}
	// The unflapped half of the world must have surfaced normally.
	if len(e.Results) == 0 {
		t.Fatal("no healthy site committed around the failures")
	}
	for host, rep := range resp.Sites {
		if rep.Status == SiteOK && rep.Err != "" {
			t.Errorf("OK host %s carries error text %q", host, rep.Err)
		}
	}
}

// Garbled-but-delivered content is the fault retries cannot see: the
// transport succeeds, the payload is corrupt. The pipeline must take
// whatever it can parse and finish without a panic or an abort.
func TestChaosGarbleDegradesGracefully(t *testing.T) {
	e, err := Build(refreshWorldCfg)
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	storm := webgen.NewChaos(e.Web, 7)
	garbled := e.Web.Sites()[0].Spec.Host
	storm.SetProfile(garbled, webgen.FaultProfile{P: map[webgen.FaultKind]float64{webgen.FaultGarble: 1}})
	e.UseTransport(storm)
	e.SetResilience(chaosOpts())

	resp, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatalf("garbled host aborted the pass: %v", err)
	}
	if storm.Injected(garbled) == 0 {
		t.Fatal("garbler injected nothing")
	}
	if _, ok := resp.Sites[garbled]; !ok {
		t.Fatalf("no report for garbled host %s", garbled)
	}
	// The rest of the world is untouched and must surface clean.
	clean := 0
	for host, rep := range resp.Sites {
		if host != garbled && rep.Status == SiteOK {
			clean++
		}
	}
	if clean == 0 {
		t.Fatal("no clean site surfaced around the garbled one")
	}
}
