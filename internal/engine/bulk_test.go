package engine

import (
	"bytes"
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"deepweb/internal/bulkgen"
	"deepweb/internal/index"
	"deepweb/internal/query"
)

func bulkWorld(t *testing.T, seed int64, docs, sites int) *bulkgen.World {
	t.Helper()
	w, err := bulkgen.NewWorld(bulkgen.Spec{Seed: seed, Docs: docs, Sites: sites, BlockSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

var bulkQueries = []SearchRequest{
	{Query: "ford focus", K: 10},
	{Query: "condition excellent austin", K: 25},
	{Query: "engineer seattle", K: 10, Offset: 5},
	{Query: "environmental quality notice", K: 10},
	{Query: "house portland", K: 10, Annotated: true},
	{Query: "used toyota", K: 10, Filters: []query.Predicate{query.Eq("make", "toyota")}},
	{Query: "italian", K: 15},
}

// requireSameResponses asserts bit-identical serving behavior: same
// totals, ids, float score bits and tie order on every probe.
func requireSameResponses(t *testing.T, label string, a, b *Engine) {
	t.Helper()
	for _, req := range bulkQueries {
		ra, err := a.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: search A %q: %v", label, req.Query, err)
		}
		rb, err := b.Search(context.Background(), req)
		if err != nil {
			t.Fatalf("%s: search B %q: %v", label, req.Query, err)
		}
		if ra.Total != rb.Total {
			t.Fatalf("%s: query %q: totals %d vs %d", label, req.Query, ra.Total, rb.Total)
		}
		if len(ra.Results) != len(rb.Results) {
			t.Fatalf("%s: query %q: %d vs %d results", label, req.Query, len(ra.Results), len(rb.Results))
		}
		for i := range ra.Results {
			x, y := ra.Results[i], rb.Results[i]
			if x.DocID != y.DocID || x.URL != y.URL ||
				math.Float64bits(x.Score) != math.Float64bits(y.Score) {
				t.Fatalf("%s: query %q: result %d differs:\n  A: %+v\n  B: %+v", label, req.Query, i, x, y)
			}
		}
	}
}

// The tentpole property: a spill-to-disk build Loads into an engine
// that serves bit-identically to BulkIngest-then-Save of the same
// stream, across shard counts — run under -race in CI.
func TestBulkBuildEquivalentToRAMBuild(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			world := bulkWorld(t, 99, 3000, 5)

			ramDir := t.TempDir()
			ram := NewEmpty()
			ram.Index = index.NewSharded(shards)
			ram.Workers = 4
			stats, err := ram.BulkIngest(context.Background(), world.Source(4), BulkOptions{Batch: 512})
			if err != nil {
				t.Fatal(err)
			}
			if stats.Docs != 3000 || stats.Duplicates != 0 {
				t.Fatalf("ingest stats: %+v", stats)
			}
			if err := ram.Save(ramDir); err != nil {
				t.Fatal(err)
			}

			spillDir := t.TempDir()
			bstats, err := BulkBuild(context.Background(), world.Source(4), spillDir, BulkBuildOptions{
				Docs: 3000, Shards: shards, Batch: 300, SpillDocs: 500, Workers: 4,
			})
			if err != nil {
				t.Fatal(err)
			}
			if bstats.Docs != 3000 || bstats.Runs == 0 {
				t.Fatalf("build stats: %+v (expected multiple spill flushes)", bstats)
			}
			if runsLeft(t, spillDir) != 0 {
				t.Fatal("spill runs leaked after merge")
			}

			// The docs segments are byte-identical (same stream, same
			// id order, same snapshot id). Postings segments differ in
			// shard layout by design: maphash (per-process) vs FNV-1a.
			da, _ := os.ReadFile(filepath.Join(ramDir, "docs.seg"))
			db, _ := os.ReadFile(filepath.Join(spillDir, "docs.seg"))
			if !bytes.Equal(da, db) {
				t.Fatalf("docs segments differ (%d vs %d bytes)", len(da), len(db))
			}

			ea, err := Load(ramDir)
			if err != nil {
				t.Fatal(err)
			}
			eb, err := Load(spillDir)
			if err != nil {
				t.Fatal(err)
			}
			if ea.Generation != eb.Generation {
				t.Fatalf("generations differ: %08x vs %08x", ea.Generation, eb.Generation)
			}
			requireSameResponses(t, "load", ea, eb)

			// Live RAM engine vs loaded spill build agree too.
			requireSameResponses(t, "live-vs-spill", ram, eb)
		})
	}
}

// Refresh-then-compact after a bulk load: delete the same URL set on
// both arms, compact, and the normal forms must still serve
// bit-identically.
func TestBulkBuildCompactEquivalence(t *testing.T) {
	world := bulkWorld(t, 7, 2000, 4)

	ram := NewEmpty()
	ram.Workers = 4
	if _, err := ram.BulkIngest(context.Background(), world.Source(2), BulkOptions{}); err != nil {
		t.Fatal(err)
	}

	spillDir := t.TempDir()
	if _, err := BulkBuild(context.Background(), world.Source(8), spillDir, BulkBuildOptions{
		Docs: 2000, SpillDocs: 300, Workers: 2,
	}); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(spillDir)
	if err != nil {
		t.Fatal(err)
	}

	// Delete every 7th document on both engines — ids coincide because
	// both arms assigned them in stream order. (Compact below bumps
	// both epochs before any search runs.)
	docs, _, _ := ram.Index.ExportDocs()
	for i := 0; i < len(docs); i += 7 {
		if !ram.Index.Delete(i) || !loaded.Index.Delete(i) {
			t.Fatalf("delete doc %d failed", i)
		}
	}
	if got, want := ram.Compact(), loaded.Compact(); got != want {
		t.Fatalf("compact reclaimed %d vs %d", got, want)
	}
	requireSameResponses(t, "post-compact", ram, loaded)
}

// Reproducibility: the snapshot directory is byte-identical however
// the build was parallelized or budgeted.
func TestBulkBuildByteIdenticalAcrossBudgets(t *testing.T) {
	world := bulkWorld(t, 1234, 1500, 3)
	configs := []BulkBuildOptions{
		{Docs: 1500, Shards: 4, Batch: 64, SpillDocs: 200, Workers: 1},
		{Docs: 1500, Shards: 4, Batch: 1024, SpillDocs: 999, Workers: 4},
		{Docs: 1500, Shards: 4, Batch: 512, SpillDocs: 1 << 20, Workers: 16},
	}
	var ref map[string][]byte
	for ci, opts := range configs {
		dir := t.TempDir()
		if _, err := BulkBuild(context.Background(), world.Source(opts.Workers), dir, opts); err != nil {
			t.Fatal(err)
		}
		files := map[string][]byte{}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, ent := range ents {
			b, err := os.ReadFile(filepath.Join(dir, ent.Name()))
			if err != nil {
				t.Fatal(err)
			}
			files[ent.Name()] = b
		}
		if ref == nil {
			ref = files
			continue
		}
		if len(files) != len(ref) {
			t.Fatalf("config %d: %d files, ref has %d", ci, len(files), len(ref))
		}
		for name, b := range files {
			if !bytes.Equal(b, ref[name]) {
				t.Fatalf("config %d: %s differs from reference build", ci, name)
			}
		}
	}
}

func TestBulkBuildStreamLengthMismatch(t *testing.T) {
	world := bulkWorld(t, 5, 100, 2)
	dir := t.TempDir()
	if _, err := BulkBuild(context.Background(), world.Source(1), dir, BulkBuildOptions{Docs: 150}); err == nil {
		t.Fatal("short stream accepted")
	}
	if _, err := BulkBuild(context.Background(), world.Source(1), dir, BulkBuildOptions{Docs: 40}); err == nil {
		t.Fatal("long stream accepted")
	}
	if runsLeft(t, dir) != 0 {
		t.Fatal("failed builds leaked spill runs")
	}
	if _, err := os.Stat(filepath.Join(dir, "docs.seg")); !os.IsNotExist(err) {
		t.Fatal("failed build left a docs segment")
	}
}

func TestBulkIngestCancel(t *testing.T) {
	world := bulkWorld(t, 6, 5000, 2)
	src := world.Source(2)
	defer src.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEmpty()
	if _, err := e.BulkIngest(ctx, src, BulkOptions{Batch: 100}); err == nil {
		t.Fatal("canceled ingest reported success")
	}
}

func TestBulkIngestDeduplicates(t *testing.T) {
	world := bulkWorld(t, 8, 200, 1)
	e := NewEmpty()
	if _, err := e.BulkIngest(context.Background(), world.Source(1), BulkOptions{}); err != nil {
		t.Fatal(err)
	}
	stats, err := e.BulkIngest(context.Background(), world.Source(1), BulkOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Docs != 0 || stats.Duplicates != 200 {
		t.Fatalf("re-ingest stats: %+v", stats)
	}
}

func runsLeft(t *testing.T, dir string) int {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "spill-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	return len(paths)
}
