package engine

import (
	"deepweb/internal/index"
)

// stagedSink implements core.DocSink by buffering documents instead of
// inserting them. The fetch stage runs concurrently across sites; the
// expensive tokenization happens here, in the worker, via
// index.Prepare. Insertion — and therefore doc-id assignment — waits
// for the engine's ordered commit point.
//
// Dedup semantics match direct insertion: Has consults the shared index
// (pages the surface-web crawl indexed before surfacing began) plus the
// sink's own buffer. Sites cannot collide across sinks — every URL a
// site's ingestion touches is on the site's own host — so buffered
// results are independent of how workers interleave.
type stagedSink struct {
	global *index.Index
	ids    map[string]int // URL → position in docs
	docs   []*index.Prepared
	anns   []map[string]string // parallel to docs; nil when unannotated
}

func newStagedSink(global *index.Index) *stagedSink {
	return &stagedSink{global: global, ids: map[string]int{}}
}

// Has reports whether the URL is in the buffer or the shared index.
func (s *stagedSink) Has(url string) bool {
	if _, ok := s.ids[url]; ok {
		return true
	}
	return s.global.Has(url)
}

// Add buffers a prepared document, deduplicating by URL.
func (s *stagedSink) Add(d index.Doc) (id int, added bool) {
	if existing, ok := s.ids[d.URL]; ok {
		return existing, false
	}
	id = len(s.docs)
	s.ids[d.URL] = id
	s.docs = append(s.docs, index.Prepare(d))
	s.anns = append(s.anns, nil)
	return id, true
}

// Annotate attaches annotations to a buffered document.
func (s *stagedSink) Annotate(docID int, anns map[string]string) {
	if docID < 0 || docID >= len(s.anns) || len(anns) == 0 {
		return
	}
	if s.anns[docID] == nil {
		s.anns[docID] = map[string]string{}
	}
	for k, v := range anns {
		s.anns[docID][k] = v
	}
}

// commit drains the buffer into the shared index in arrival order and
// returns the ids of the documents newly indexed. Called from the
// engine's single committer, so ids come out identical for any worker
// count.
//
//deepvet:epoch -- only called from Engine.commitOutcome, which bumps after every commit
func (s *stagedSink) commit() []int {
	ids, added := s.global.AddPreparedBatch(s.docs)
	var indexed []int
	for i := range s.docs {
		if !added[i] {
			continue
		}
		indexed = append(indexed, ids[i])
		if len(s.anns[i]) > 0 {
			s.global.Annotate(ids[i], s.anns[i])
		}
	}
	s.docs, s.anns, s.ids = nil, nil, nil
	return indexed
}
