package engine

import (
	"context"
	"fmt"
	"strings"
	"time"

	"deepweb/internal/index"
	"deepweb/internal/query"
)

// Serving-side API: one request/response pair every consumer of ranked
// retrieval — binaries, the /v1 HTTP layer, experiments — goes
// through, instead of each caller hand-rolling positional Index calls
// and its own JSON dialect. Ranking is exactly the index's: for the
// zero options (Offset 0, no Host, Annotated false) the result slice
// is bit-identical to index.Search — same ids, same float score bits,
// same tie order.

// SearchRequest is one ranked retrieval over the engine's index.
type SearchRequest struct {
	// Query is the free-text query.
	Query string
	// K is the page size. K <= 0 returns an empty response, matching
	// index.Search; HTTP layers apply their own defaults first.
	K int
	// Offset skips that many ranked hits before the page starts.
	Offset int
	// Annotated ranks with the §5.1 surfacing-time annotations
	// (index.AnnotatedSearch semantics) instead of plain BM25.
	Annotated bool
	// Host restricts hits to documents on one host ("" = all). The
	// total reflects the restriction.
	Host string
	// Filters are structured predicates (internal/query) every hit
	// must satisfy: admission runs after BM25 scoring and before
	// selection, so kept documents score bit-identically to an
	// unfiltered search and Total counts exactly the matching live
	// documents. Predicates resolve against the document's §5.1
	// annotations first, then typed tokens from its text; order and
	// duplicates are irrelevant (the cache keys their canonical form).
	Filters []query.Predicate
}

// SearchResponse carries the page plus the serving metadata every
// caller was previously recomputing for itself.
type SearchResponse struct {
	// Results is the ranked page [Offset, Offset+K).
	Results []index.Result
	// Total is how many live documents matched the query (after the
	// Host restriction), independent of pagination.
	Total int
	// Elapsed is the retrieval wall-clock.
	Elapsed time.Duration
	// Generation is the engine's snapshot generation id (0 = built
	// live, never snapshot).
	Generation uint32
	// Cached reports that this response was served from the result
	// cache (or collapsed onto another request's in-flight scan)
	// instead of a fresh index scan. Results/Total/Generation are
	// bit-identical either way; Elapsed is the cache path's own
	// wall-clock.
	Cached bool
}

// Search answers req against the engine's index. The context cancels
// scoring between query terms; a canceled search returns ctx.Err().
//
// With a result cache enabled (EnableResultCache) the repeated-query
// hot path is O(copy): identical requests against an unchanged index
// are answered from the cache, and concurrent identical misses
// collapse into one scan. Responses are bit-identical to the uncached
// path — same ids, same float score bits, same tie order, same Total —
// and every caller gets a private copy of the Results slice.
func (e *Engine) Search(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if e.cache == nil {
		return e.searchUncached(ctx, req)
	}
	start := time.Now()
	resp, cached, err := e.cache.Do(ctx, e.searchCacheKey(req), func() (SearchResponse, error) {
		return e.searchUncached(ctx, req)
	})
	if err != nil {
		return SearchResponse{}, err
	}
	if cached {
		resp.Cached = true
		resp.Elapsed = time.Since(start)
	}
	return resp, nil
}

// searchUncached is the always-scan path behind Search.
func (e *Engine) searchUncached(ctx context.Context, req SearchRequest) (SearchResponse, error) {
	start := time.Now()
	// The predicate-free, host-free path keeps keep == nil: topK's
	// branch-free selection loop is the benchmarked hot path and must
	// not grow a closure call per hit.
	var keep func(id int, d index.Doc) bool
	if m := query.NewMatcher(req.Filters); m != nil || req.Host != "" {
		host, ix := req.Host, e.Index
		keep = func(id int, d index.Doc) bool {
			if host != "" && !urlOnHost(d.URL, host) {
				return false
			}
			return m.Match(ix.AnnotationsOf(id), d.Title, d.Text)
		}
	}
	var (
		hits  []index.Result
		total int
		err   error
	)
	if req.Annotated {
		hits, total, err = e.Index.AnnotatedTopK(ctx, req.Query, req.K, req.Offset, keep)
	} else {
		hits, total, err = e.Index.TopK(ctx, req.Query, req.K, req.Offset, keep)
	}
	if err != nil {
		return SearchResponse{}, fmt.Errorf("engine: search: %w", err)
	}
	return SearchResponse{
		Results:    hits,
		Total:      total,
		Elapsed:    time.Since(start),
		Generation: e.Generation,
	}, nil
}

// urlOnHost reports whether rawURL's authority equals host, without
// allocating: the filter runs once per matched document per query,
// under the index read lock, so url.Parse is off the table.
func urlOnHost(rawURL, host string) bool {
	i := strings.Index(rawURL, "://")
	if i < 0 {
		return false
	}
	rest := rawURL[i+3:]
	if !strings.HasPrefix(rest, host) {
		return false
	}
	if len(rest) == len(host) {
		return true
	}
	switch rest[len(host)] {
	case '/', '?', '#':
		return true
	}
	return false
}
