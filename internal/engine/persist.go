package engine

import (
	"fmt"
	"os"
	"sync"

	"deepweb/internal/index"
	"deepweb/internal/store"
	"deepweb/internal/textutil"
	"deepweb/internal/webgen"
)

// Persistence: Save writes the engine's index (documents, postings,
// annotations) as a snapshot directory; Load rebuilds a serving engine
// from one. The paper's economics depend on this split — surfacing is
// an expensive offline pass, serving is the ordinary index answering
// live traffic — and a snapshot is the artifact that crosses the
// boundary. Load restores Search and AnnotatedSearch bit-for-bit: same
// ids, same scores, same tie order.
//
// Both directions parallelize per shard on the engine's Workers
// budget: Save encodes shard segments concurrently, Load decodes and
// re-hashes them concurrently (index.ImportTerms is shard-locked).

// Save writes the index to dir as one docs segment (including
// tombstones, so a mutated index round-trips id-for-id), one postings
// segment per shard, and a meta segment carrying the per-site content
// signatures Refresh diffs against. Existing segments in dir are
// overwritten atomically; a concurrent reader of the old snapshot is
// undisturbed. Save must not run concurrently with Refresh or Compact.
func (e *Engine) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Crash hygiene: a writer that died mid-Save leaves *.tmp files
	// behind (segments are written to a temp name, then renamed), and
	// a bulk build that died mid-merge leaves spill-*.run files.
	// Sweep both before writing so they cannot accumulate or be
	// mistaken for live data.
	if err := store.CleanTmp(dir); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	if err := store.CleanSpills(dir); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	ix := e.Index
	docs, lens, dead := ix.ExportDocs()
	var deadIDs []int
	for id, d := range dead {
		if d {
			deadIDs = append(deadIDs, id)
		}
	}
	shards := ix.NumShards()
	snapID, err := store.WriteDocs(store.DocsPath(dir), shards, &store.DocsSegment{
		Docs: docs,
		Lens: lens,
		Anns: ix.ExportAnnotations(),
		Dead: deadIDs,
	})
	if err != nil {
		return fmt.Errorf("engine: save docs: %w", err)
	}
	err = e.forEachShard(shards, func(si int) error {
		return store.WritePostings(store.PostingsPath(dir, si), shards, si, len(docs), snapID, ix.ExportShard(si))
	})
	if err != nil {
		return fmt.Errorf("engine: save postings: %w", err)
	}
	meta := &store.MetaSegment{Sites: make([]store.SiteMeta, 0, len(e.SiteSignatures))}
	for host, sig := range e.SiteSignatures {
		meta.Sites = append(meta.Sites, store.SiteMeta{Host: host, Signature: uint64(sig)})
	}
	if err := store.WriteMeta(store.MetaPath(dir), meta); err != nil {
		return fmt.Errorf("engine: save meta: %w", err)
	}
	// The engine's contents now correspond to the written snapshot:
	// adopt its content-derived generation id (served by Search and the
	// /v1 layer's generation headers).
	e.Generation = snapID
	return nil
}

// Load reads a snapshot directory written by Save and returns a
// serving engine: its Index answers queries exactly as the saved one
// did — tombstones, live statistics and tie order included — but it
// carries no virtual web (Web and Fetch are nil), so surfacing,
// coverage and Refresh are off the table; use LoadWith to reattach a
// world. Decoding parallelizes with DefaultWorkers.
//
//deepvet:epoch -- populates a brand-new engine before any cache can be armed; the snapshot's Generation id keys the cache instead
func Load(dir string) (*Engine, error) {
	seg, hdr, err := store.ReadDocs(store.DocsPath(dir))
	if err != nil {
		return nil, fmt.Errorf("engine: load docs: %w", err)
	}
	dead := make([]bool, len(seg.Docs))
	for _, id := range seg.Dead {
		dead[id] = true
	}
	ix := index.NewSharded(int(hdr.Shards))
	if err := ix.ImportDocs(seg.Docs, seg.Lens, dead); err != nil {
		return nil, fmt.Errorf("engine: load: %w", err)
	}
	e := newEngine()
	e.Index = ix
	e.Generation = hdr.SnapID
	err = e.forEachShard(int(hdr.Shards), func(si int) error {
		terms, ph, err := store.ReadPostings(store.PostingsPath(dir, si))
		if err != nil {
			return err
		}
		if ph.Shards != hdr.Shards || ph.ShardID != uint32(si) || ph.DocCount != hdr.DocCount || ph.SnapID != hdr.SnapID {
			return fmt.Errorf("%s: header (shards=%d id=%d docs=%d snap=%08x) disagrees with docs segment (shards=%d id=%d docs=%d snap=%08x) — segments from different snapshot generations?: %w",
				store.PostingsPath(dir, si), ph.Shards, ph.ShardID, ph.DocCount, ph.SnapID,
				hdr.Shards, si, hdr.DocCount, hdr.SnapID, store.ErrCorrupt)
		}
		return ix.ImportTerms(terms)
	})
	if err != nil {
		return nil, fmt.Errorf("engine: load postings: %w", err)
	}
	for id, anns := range seg.Anns {
		if !dead[id] {
			ix.Annotate(id, anns)
		}
	}
	// Refresh metadata is optional: a directory without it still
	// serves; it just makes every site look changed to Refresh.
	meta, err := store.ReadMeta(store.MetaPath(dir))
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("engine: load meta: %w", err)
	}
	if meta != nil {
		for _, s := range meta.Sites {
			e.SiteSignatures[s.Host] = textutil.Signature(s.Signature)
		}
	}
	e.rebuildHostDocs()
	return e, nil
}

// LoadWith loads a snapshot and attaches it to a virtual web, giving
// back an engine that can serve *and* refresh: the index and refresh
// metadata come from the snapshot, the web provides the live (possibly
// churned) sites to diff against. This is the `deepcrawl -refresh`
// path: rebuild the world, apply the delta, refresh the snapshot.
func LoadWith(web *webgen.Web, dir string) (*Engine, error) {
	e, err := Load(dir)
	if err != nil {
		return nil, err
	}
	e.Web = web
	e.UseTransport(web)
	return e, nil
}

// forEachShard runs fn over every shard id on up to e.Workers
// goroutines and returns the first error (by shard order).
func (e *Engine) forEachShard(shards int, fn func(si int) error) error {
	return forEachShardN(e.Workers, shards, fn)
}

// forEachShardN is the engine-independent form, shared with the bulk
// build (which has no Engine while it streams to disk).
func forEachShardN(workers, shards int, fn func(si int) error) error {
	if workers < 1 {
		workers = 1
	}
	if workers > shards {
		workers = shards
	}
	errs := make([]error, shards)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range jobs {
				errs[si] = fn(si)
			}
		}()
	}
	for si := 0; si < shards; si++ {
		jobs <- si
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
