package engine

import (
	"fmt"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
)

// Refresh: the freshness half of the paper's economics. Surfacing is
// an expensive offline pass, but the underlying databases churn —
// listings appear, change and vanish — and re-surfacing the whole web
// to chase a few changed sites wastes exactly the analysis budget the
// paper works to minimize. Refresh re-surfaces only the sites whose
// backing content actually moved, detected by comparing each site's
// current table signature against the one recorded when it was last
// surfaced (SiteSignatures, persisted in the snapshot meta segment).
//
// For each changed site it retires the site's old documents (surfaced
// result pages and crawled surface-web pages alike) through the
// index's tombstone path, re-runs the full per-site pipeline on the
// worker pool, and commits through the same ordered commit point as
// SurfaceAll — so Results, IngestStats, OfflineRequests, coverage and
// per-source accounting come out exactly as a from-scratch surface of
// the changed site would produce. When tombstones pile past
// CompactRatio, the index is compacted (and doc ids renumbered into
// canonical URL order).

// RefreshStats summarizes one Refresh pass.
type RefreshStats struct {
	SitesChecked int // sites whose signature was recomputed
	SitesChanged int // sites re-surfaced because it moved
	DocsDeleted  int // documents tombstoned
	DocsAdded    int // documents newly committed
	SurfacePages int // previously crawled surface-web pages refetched
	Compacted    bool
}

// Refresh re-surfaces the sites in hosts (nil = every site) whose
// content changed since they were last surfaced. A host with no
// recorded signature counts as changed. The engine must carry a
// virtual web (built or attached via LoadWith); a Load-ed engine
// without one cannot refresh.
func (e *Engine) Refresh(cfg core.Config, followNext int, hosts []string) (RefreshStats, error) {
	var st RefreshStats
	if e.Web == nil {
		return st, fmt.Errorf("engine: refresh: no web attached (use LoadWith)")
	}
	var want map[string]bool
	if hosts != nil {
		want = make(map[string]bool, len(hosts))
		for _, h := range hosts {
			want[h] = true
		}
	}

	// Detect churn site by site, in host order.
	var changed []*webgen.Site
	for _, site := range e.Web.Sites() {
		host := site.Spec.Host
		if want != nil && !want[host] {
			continue
		}
		st.SitesChecked++
		sig := site.TableSignature()
		if old, ok := e.SiteSignatures[host]; ok && old == sig {
			continue
		}
		changed = append(changed, site)
	}
	if len(changed) == 0 {
		return st, nil
	}
	st.SitesChanged = len(changed)

	// Retire the changed sites' *surfaced* documents before any worker
	// fetches: the sinks' dedup consults the shared index, and a stale
	// entry would make re-ingestion skip the very pages being
	// refreshed. Crawled surface-web pages (Source == "") are NOT
	// retired here — they cannot collide with surfaced URLs (the crawl
	// never follows query URLs), and deferring their delete+refetch to
	// the commit step keeps a failed pass recoverable: if a site's
	// pipeline errors, its surface pages are merely stale, not gone,
	// and the still-mismatched signature re-drives them next Refresh.
	for _, site := range changed {
		host := site.Spec.Host
		var surfaceIDs []int
		for _, id := range e.hostDocs[host] {
			if e.Index.Doc(id).Source == "" {
				surfaceIDs = append(surfaceIDs, id)
				continue
			}
			if e.Index.Delete(id) {
				st.DocsDeleted++
			}
		}
		e.hostDocs[host] = surfaceIDs
	}

	// Re-surface on the shared pipeline. At each site's commit point
	// the old surface-web pages are swapped for freshly fetched ones
	// before the sink drains, mirroring a from-scratch run where the
	// crawl indexes them ahead of surfacing.
	err := e.surfacePipeline(changed, cfg, followNext, core.IngestFilter{}, func(out *siteOutcome) {
		oldSurface := e.hostDocs[out.host]
		e.hostDocs[out.host] = nil
		for _, id := range oldSurface {
			u := e.Index.Doc(id).URL
			if e.Index.Delete(id) {
				st.DocsDeleted++
			}
			page, err := e.Fetch.Get(u)
			if err != nil || page.Status != 200 {
				continue // the page vanished; its tombstone stands
			}
			if nid, added := e.Index.Add(index.Doc{URL: u, Title: page.Title(), Text: page.Text()}); added {
				e.trackDoc(u, nid)
				st.SurfacePages++
				st.DocsAdded++
			}
		}
		e.commitOutcome(out)
		st.DocsAdded += out.stats.Indexed
	})
	if err != nil {
		return st, err
	}

	if e.CompactRatio > 0 && e.Index.TombstoneRatio() >= e.CompactRatio {
		e.Compact()
		st.Compacted = true
	}
	return st, nil
}

// Compact compacts the index (dropping tombstones and renumbering doc
// ids into canonical URL order) and re-derives the engine's host
// bookkeeping. Always compact an engine-held index through this method
// — a bare Index.Compact() leaves the engine tracking pre-renumbering
// ids, and a later Refresh would retire the wrong documents.
func (e *Engine) Compact() int {
	reclaimed := e.Index.Compact()
	e.rebuildHostDocs()
	return reclaimed
}

// rebuildHostDocs re-derives the host → doc-id map from the live
// document table; needed after Compact renumbers ids and after Load.
func (e *Engine) rebuildHostDocs() {
	e.hostDocs = map[string][]int{}
	e.Index.ForEachLive(func(id int, d index.Doc) {
		e.trackDoc(d.URL, id)
	})
}
