package engine

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/resilient"
	"deepweb/internal/webgen"
)

// Refresh: the freshness half of the paper's economics. Surfacing is
// an expensive offline pass, but the underlying databases churn —
// listings appear, change and vanish — and re-surfacing the whole web
// to chase a few changed sites wastes exactly the analysis budget the
// paper works to minimize. Refresh re-surfaces only the sites whose
// backing content actually moved, detected by comparing each site's
// current table signature against the one recorded when it was last
// surfaced (SiteSignatures, persisted in the snapshot meta segment).
//
// For each changed site it retires the site's old documents (surfaced
// result pages and crawled surface-web pages alike) through the
// index's tombstone path, re-runs the full per-site pipeline on the
// worker pool, and commits through the same ordered commit point as
// Surface — so Results, IngestStats, OfflineRequests, coverage and
// per-source accounting come out exactly as a from-scratch surface of
// the changed site would produce. When tombstones pile past
// CompactRatio, the index is compacted (and doc ids renumbered into
// canonical URL order).

// RefreshStats summarizes one Refresh pass.
type RefreshStats struct {
	SitesChecked int // sites whose signature was recomputed
	SitesChanged int // sites re-surfaced because it moved
	DocsDeleted  int // documents tombstoned
	DocsAdded    int // documents newly committed
	SurfacePages int // previously crawled surface-web pages refetched
	Compacted    bool
}

// RefreshResponse reports one Refresh pass: the aggregate stats, the
// per-site outcomes of the re-surfaced (changed) sites, and a Degraded
// flag set when any of them is not OK. Failed and degraded sites keep
// no signature, so the next Refresh re-drives them — calling Refresh
// until Degraded is false converges the index to the fault-free corpus
// as long as the faults themselves subside.
type RefreshResponse struct {
	RefreshStats
	Sites    map[string]SiteReport
	Degraded bool
}

// RefreshRequest configures one Refresh pass. Config and FollowNext
// mean what they mean on SurfaceRequest; the remaining fields are the
// freshness/cost trade the crawl-scheduling literature frames —
// which sites to check, how much of the original analysis budget a
// re-surface may spend, and how hard a single host may be hit.
type RefreshRequest struct {
	// Config drives the re-surfacing analysis, subject to
	// BudgetFraction below.
	Config core.Config
	// FollowNext is the per-URL paging depth at re-ingestion time.
	FollowNext int
	// Hosts restricts the signature check to these sites; nil checks
	// every site. A listed host with no recorded signature counts as
	// changed.
	Hosts []string
	// Filter re-applies the §5.2 admission band to re-fetched pages, so
	// a filtered world refreshes under the band it was built with.
	Filter core.IngestFilter
	// BudgetFraction scales Config.ProbeBudget for the re-surface: a
	// changed site is already mostly known, so refreshing it should
	// cost a fraction of first-time analysis. 0 means the full budget;
	// otherwise it must lie in (0, 1]. A site that exhausts its scaled
	// budget mid-analysis is treated like a capped one: its signature
	// is not recorded, so the next Refresh re-drives it rather than
	// committing the shrunken corpus as fully refreshed.
	BudgetFraction float64
	// PerHostCap bounds the total requests Refresh may issue against
	// any one host (probes, page fetches and surface-page refetches
	// alike) — the politeness cap that keeps refreshing a big site from
	// hammering it. Past the cap the host answers 429 locally and the
	// site completes with partial results; a truncated site's signature
	// is NOT recorded, so the next Refresh re-drives it and the index
	// converges once budget allows. 0 means uncapped.
	PerHostCap int
}

// Refresh re-surfaces the sites whose content changed since they were
// last surfaced, per req. The engine must carry a virtual web (built
// or attached via LoadWith); a Load-ed engine without one cannot
// refresh. The context cancels the pass exactly as it cancels Surface:
// committed sites stay committed, and ctx.Err() is returned.
func (e *Engine) Refresh(ctx context.Context, req RefreshRequest) (RefreshResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var resp RefreshResponse
	st := &resp.RefreshStats
	if e.Web == nil {
		return resp, fmt.Errorf("engine: refresh: no web attached (use LoadWith)")
	}
	cfg := req.Config
	if req.BudgetFraction < 0 || req.BudgetFraction > 1 {
		return resp, fmt.Errorf("engine: refresh: BudgetFraction %v outside [0, 1] (0 = full budget)", req.BudgetFraction)
	}
	if req.BudgetFraction > 0 {
		if cfg.ProbeBudget = int(float64(cfg.ProbeBudget) * req.BudgetFraction); cfg.ProbeBudget < 1 {
			cfg.ProbeBudget = 1
		}
	}
	fetch := e.Fetch
	runRT := e.rt
	var capped *hostCapTransport
	if req.PerHostCap > 0 {
		// The cap sits *under* the resilient layer, so retries count
		// against it: the cap bounds real request pressure on the host,
		// and a retry is real pressure. Its locally-served 429s carry
		// NoRetryHeader, so the retry loop hands them straight back
		// instead of backing off against our own politeness limiter.
		capped = &hostCapTransport{
			rt:      e.base,
			cap:     req.PerHostCap,
			n:       map[string]int{},
			refused: map[string]bool{},
		}
		runRT = resilient.NewTransport(capped, e.ropts)
		fetch = e.newFetcher(runRT)
	}
	var want map[string]bool
	if req.Hosts != nil {
		want = make(map[string]bool, len(req.Hosts))
		for _, h := range req.Hosts {
			want[h] = true
		}
	}

	// Detect churn site by site, in host order.
	var changed []*webgen.Site
	for _, site := range e.Web.Sites() {
		host := site.Spec.Host
		if want != nil && !want[host] {
			continue
		}
		st.SitesChecked++
		sig := site.TableSignature()
		if old, ok := e.SiteSignatures[host]; ok && old == sig {
			continue
		}
		changed = append(changed, site)
	}
	if len(changed) == 0 {
		return resp, nil
	}
	st.SitesChanged = len(changed)

	// Retire the changed sites' *surfaced* documents before any worker
	// fetches: the sinks' dedup consults the shared index, and a stale
	// entry would make re-ingestion skip the very pages being
	// refreshed. Crawled surface-web pages (Source == "") are NOT
	// retired here — they cannot collide with surfaced URLs (the crawl
	// never follows query URLs), and deferring their delete+refetch to
	// the commit step keeps a failed pass recoverable: if a site's
	// pipeline errors, its surface pages are merely stale, not gone,
	// and the still-mismatched signature re-drives them next Refresh.
	for _, site := range changed {
		host := site.Spec.Host
		var surfaceIDs []int
		for _, id := range e.hostDocs[host] {
			if e.Index.Doc(id).Source == "" {
				surfaceIDs = append(surfaceIDs, id)
				continue
			}
			if e.Index.Delete(id) {
				st.DocsDeleted++
			}
		}
		e.hostDocs[host] = surfaceIDs
		// Retiring a site's documents is a visible mutation: stop the
		// result cache from serving its pre-retire rankings.
		e.bumpEpoch()
	}

	// Re-surface on the shared pipeline. At each site's commit point
	// the old surface-web pages are swapped for freshly fetched ones
	// before the sink drains, mirroring a from-scratch run where the
	// crawl indexes them ahead of surfacing. Refetches go through the
	// same (possibly capped) fetcher as the workers' traffic, so
	// PerHostCap covers every request of the pass.
	reports, err := e.surfacePipeline(ctx, changed, pipelineRun{
		cfg:        cfg,
		followNext: req.FollowNext,
		filt:       req.Filter,
		fetch:      fetch,
		rt:         runRT,
		commit: func(out *siteOutcome) {
			oldSurface := e.hostDocs[out.host]
			e.hostDocs[out.host] = nil
			for _, id := range oldSurface {
				u := e.Index.Doc(id).URL
				if e.Index.Delete(id) {
					st.DocsDeleted++
				}
				page, ferr := fetch.GetCtx(ctx, u)
				if ferr != nil || page.Status != 200 {
					// Distinguish "the page is gone" (a definitive
					// non-retryable status: its tombstone stands) from
					// "the fetch failed transiently" — the latter must
					// mark the site degraded, or a flaky refetch would
					// silently lose a surface page the world still has.
					transientLoss := ferr != nil && resilient.ClassOf(ferr) == resilient.ClassTransient ||
						ferr == nil && resilient.RetryableStatus(page.Status)
					if transientLoss && out.report.Status == SiteOK {
						out.report.Status = SiteDegraded
					}
					continue
				}
				if nid, added := e.Index.Add(index.Doc{URL: u, Title: page.Title(), Text: page.Text()}); added {
					e.trackDoc(u, nid)
					st.SurfacePages++
					st.DocsAdded++
				}
			}
			e.commitOutcome(out)
			st.DocsAdded += out.stats.Indexed
			// A site whose pass was truncated — by the politeness cap,
			// or by exhausting a deliberately reduced probe budget — is
			// incomplete: leave it with no recorded signature (= always
			// changed), so the next Refresh re-drives it and the index
			// converges on the full re-surface once budget allows.
			truncated := capped != nil && capped.refusedAny(out.host)
			if req.BudgetFraction > 0 && req.BudgetFraction < 1 &&
				out.res != nil && out.res.ProbesUsed >= cfg.ProbeBudget {
				truncated = true
			}
			if truncated {
				delete(e.SiteSignatures, out.host)
			}
		},
	})
	resp.Sites = reports
	resp.Degraded = anyNotOK(reports)
	if err != nil {
		return resp, err
	}

	if e.CompactRatio > 0 && e.Index.TombstoneRatio() >= e.CompactRatio {
		e.Compact()
		st.Compacted = true
	}
	return resp, nil
}

// Compact compacts the index (dropping tombstones and renumbering doc
// ids into canonical URL order) and re-derives the engine's host
// bookkeeping. Always compact an engine-held index through this method
// — a bare Index.Compact() leaves the engine tracking pre-renumbering
// ids, and a later Refresh would retire the wrong documents.
func (e *Engine) Compact() int {
	reclaimed := e.Index.Compact()
	e.rebuildHostDocs()
	// Compaction renumbers doc ids; cached pages carry the old ids.
	e.bumpEpoch()
	return reclaimed
}

// rebuildHostDocs re-derives the host → doc-id map from the live
// document table; needed after Compact renumbers ids and after Load.
func (e *Engine) rebuildHostDocs() {
	e.hostDocs = map[string][]int{}
	e.Index.ForEachLive(func(id int, d index.Doc) {
		e.trackDoc(d.URL, id)
	})
}

// hostCapTransport enforces RefreshRequest.PerHostCap: at most cap
// requests per host reach the underlying transport during one Refresh
// pass; every request past the cap is answered locally with 429 Too
// Many Requests. The probe and ingest layers already treat a non-200
// as a per-submission failure, so a capped site degrades to partial
// results instead of aborting the pass — and the host never sees the
// excess traffic, which is the point of a politeness cap.
type hostCapTransport struct {
	rt  http.RoundTripper
	cap int

	mu      sync.Mutex
	n       map[string]int  // per-host requests forwarded so far
	refused map[string]bool // hosts that have had a request refused
}

// refusedAny reports whether the cap ever refused a request to host —
// i.e. the host's refresh pass is incomplete.
func (t *hostCapTransport) refusedAny(host string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.refused[host]
}

func (t *hostCapTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	t.mu.Lock()
	over := t.n[host] >= t.cap
	if !over {
		t.n[host]++
	} else {
		t.refused[host] = true
	}
	t.mu.Unlock()
	if over {
		return &http.Response{
			Status:     "429 Too Many Requests",
			StatusCode: http.StatusTooManyRequests,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{resilient.NoRetryHeader: []string{"politeness-cap"}},
			Body:       io.NopCloser(strings.NewReader("per-host refresh cap reached")),
			Request:    req,
		}, nil
	}
	return t.rt.RoundTrip(req)
}
