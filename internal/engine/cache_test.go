package engine

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/webgen"
)

// cacheRequests is the request matrix the cache property tests sweep:
// pagination, host filtering, annotated ranking, query normalization
// aliases, and no-hit queries.
var cacheRequests = []SearchRequest{
	{Query: "used ford focus", K: 10},
	{Query: "  Used   FORD focus!! ", K: 10}, // normalizes to the one above
	{Query: "used ford focus", K: 3, Offset: 2},
	{Query: "seattle", K: 100},
	{Query: "seattle", K: 5, Host: "realestate-00.example"},
	{Query: "homes in seattle", K: 10, Annotated: true},
	// Stem-collides with the query above ("homes"/"home",
	// "seattle"/"seattles" conflate under Stem) but tokenizes
	// differently, so annotated vocabulary matching may disagree — the
	// two must not share a cache entry.
	{Query: "home in seattles", K: 10, Annotated: true},
	{Query: "zzz-no-such-term", K: 10},
	{Query: "the of and", K: 10}, // all stopwords: empty normalized query
}

// assertBitIdentical fails unless got and want agree on everything the
// caller can observe except Elapsed/Cached: results (to the score
// bit), Total and Generation.
func assertBitIdentical(t *testing.T, ctxMsg string, got, want SearchResponse) {
	t.Helper()
	if got.Total != want.Total || got.Generation != want.Generation {
		t.Fatalf("%s: total/generation (%d, %d), want (%d, %d)",
			ctxMsg, got.Total, got.Generation, want.Total, want.Generation)
	}
	if len(got.Results) != len(want.Results) {
		t.Fatalf("%s: %d results, want %d", ctxMsg, len(got.Results), len(want.Results))
	}
	for i := range want.Results {
		g, w := got.Results[i], want.Results[i]
		if g.DocID != w.DocID || g.URL != w.URL || g.Title != w.Title || g.Source != w.Source {
			t.Fatalf("%s: rank %d differs: %+v vs %+v", ctxMsg, i, g, w)
		}
		if math.Float64bits(g.Score) != math.Float64bits(w.Score) {
			t.Fatalf("%s: rank %d score bits differ: %v vs %v", ctxMsg, i, g.Score, w.Score)
		}
	}
}

// The cache acceptance bar: cached responses are bit-identical to
// uncached ones — across shard counts, on hits and misses, through a
// churn+Refresh (the epoch/generation keying must retire stale
// entries), and with no aliasing between callers. A reference engine
// built and mutated identically (everything here is deterministic)
// provides the uncached truth at every step.
func TestCachedSearchBitIdenticalToUncached(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		ref := surfacedEngine(t, shards)
		cached := surfacedEngine(t, shards)
		cached.EnableResultCache(256)

		check := func(phase string) {
			t.Helper()
			// Keys already resident this phase: normalization aliases
			// ("Used FORD!!") hit entries their canonical form filled.
			seen := map[string]bool{}
			for _, req := range cacheRequests {
				want, err := ref.Search(context.Background(), req)
				if err != nil {
					t.Fatalf("shards=%d %s: ref %q: %v", shards, phase, req.Query, err)
				}
				key := cached.searchCacheKey(req)
				// Twice: a miss (fills) then a hit (serves the copy) —
				// and a mutation phase boundary must have made every
				// first pass a genuine miss again.
				for pass, wantCached := range []bool{seen[key], true} {
					got, err := cached.Search(context.Background(), req)
					if err != nil {
						t.Fatalf("shards=%d %s: cached %q pass %d: %v", shards, phase, req.Query, pass, err)
					}
					if got.Cached != wantCached {
						t.Fatalf("shards=%d %s: %q pass %d: Cached=%v, want %v",
							shards, phase, req.Query, pass, got.Cached, wantCached)
					}
					assertBitIdentical(t, phase+" "+req.Query, got, want)
					// Mutating the returned page must never leak into the
					// cache (deep-copy contract).
					for i := range got.Results {
						got.Results[i].Score = -1
						got.Results[i].URL = "poisoned"
					}
				}
				seen[key] = true
			}
		}

		check("cold")

		// Churn both worlds identically and refresh both engines: the
		// cached engine's epoch keying must retire every stale entry.
		webgen.Churn(ref.Web, 8, 99)
		webgen.Churn(cached.Web, 8, 99)
		for name, e := range map[string]*Engine{"ref": ref, "cached": cached} {
			st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
			if err != nil {
				t.Fatalf("shards=%d: refresh %s: %v", shards, name, err)
			}
			if st.SitesChanged == 0 {
				t.Fatalf("shards=%d: churn changed no sites; refresh invalidation unexercised", shards)
			}
		}
		check("post-refresh")

		// Compact must likewise retire cached pages (ids renumber).
		ref.Compact()
		cached.Compact()
		check("post-compact")

		if st, ok := cached.CacheStats(); !ok || st.Hits == 0 || st.Misses == 0 {
			t.Fatalf("shards=%d: cache never exercised: %+v (ok=%v)", shards, st, ok)
		}
	}
}

// Generation keying across the snapshot boundary: saving adopts the
// snapshot's generation, which changes every cache key — and a loaded
// engine starts with a cold cache of its own.
func TestCacheKeyChangesWithGeneration(t *testing.T) {
	e := surfacedEngine(t, 4)
	e.EnableResultCache(64)
	req := SearchRequest{Query: "used ford focus", K: 5}
	ctx := context.Background()

	if _, err := e.Search(ctx, req); err != nil {
		t.Fatal(err)
	}
	warm, err := e.Search(ctx, req)
	if err != nil || !warm.Cached {
		t.Fatalf("second search not served from cache (err=%v)", err)
	}
	key := e.searchCacheKey(req)
	if err := e.Save(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	if e.Generation == 0 {
		t.Fatal("Save left generation 0")
	}
	if after := e.searchCacheKey(req); after == key {
		t.Fatal("cache key unchanged across a generation change")
	}
	// The response under the new key is still bit-identical (the index
	// didn't change, only its identity did).
	cold, err := e.Search(ctx, req)
	if err != nil || cold.Cached {
		t.Fatalf("post-save search served a stale-generation entry (cached=%v err=%v)", cold.Cached, err)
	}
	assertBitIdentical(t, "post-save", cold, SearchResponse{
		Results: warm.Results, Total: warm.Total, Generation: e.Generation,
	})
}

// Annotated ranking is not a pure function of the stemmed query:
// annotation-vocabulary matching (annStore.valuesMentioned) runs over
// the raw tokenized query, so spellings that stem-collide must not
// share a cache entry when Annotated — and must share one when plain,
// because they are the same query to BM25.
func TestCacheKeySeparatesAnnotatedStemCollisions(t *testing.T) {
	e := surfacedEngine(t, 1)
	a := SearchRequest{Query: "homes in seattle", K: 10}
	b := SearchRequest{Query: "home in seattles", K: 10}
	if e.searchCacheKey(a) != e.searchCacheKey(b) {
		t.Fatal("stem-colliding plain queries got distinct keys; they are the same query to BM25")
	}
	a.Annotated, b.Annotated = true, true
	if e.searchCacheKey(a) == e.searchCacheKey(b) {
		t.Fatal("stem-colliding annotated queries share a key; annotated ranking sees raw tokens")
	}
}

// Concurrent identical queries collapse into few scans, every caller
// gets the same bit-identical page, and -race stays quiet.
func TestConcurrentCachedSearches(t *testing.T) {
	e := surfacedEngine(t, 4)
	e.EnableResultCache(64)
	ctx := context.Background()
	want, err := e.Search(ctx, SearchRequest{Query: "used ford focus", K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				got, err := e.Search(ctx, SearchRequest{Query: "used ford focus", K: 10})
				if err != nil {
					t.Errorf("concurrent search: %v", err)
					return
				}
				if !reflect.DeepEqual(got.Results, want.Results) {
					t.Error("concurrent cached search diverged from the uncontended answer")
					return
				}
			}
		}()
	}
	wg.Wait()
	st, ok := e.CacheStats()
	if !ok || st.Hits == 0 {
		t.Fatalf("no cache hits under concurrent identical load: %+v", st)
	}
	if st.Misses > 2 {
		t.Errorf("%d scans for one repeated query; singleflight not collapsing", st.Misses)
	}
}
