package engine

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"deepweb/internal/bulkgen"
	"deepweb/internal/memwatch"
)

// The ingest scaling ladder: docs/sec and peak heap at 10k and 100k
// documents (1M behind INGEST_FULL=1, mirrored by `make ingest-full` —
// minutes, not benchstat material). BenchmarkBulkIngest measures the
// in-RAM batched path; BenchmarkBulkBuild the spill-to-disk snapshot
// build whose peak memory must stay flat as the corpus grows.

func ladderRungs(b *testing.B) []int {
	rungs := []int{10_000, 100_000}
	if os.Getenv("INGEST_FULL") != "" {
		rungs = append(rungs, 1_000_000)
	}
	return rungs
}

func benchWorld(b *testing.B, docs int) *bulkgen.World {
	b.Helper()
	w, err := bulkgen.NewWorld(bulkgen.Spec{Seed: 42, Docs: docs, Sites: 12})
	if err != nil {
		b.Fatal(err)
	}
	return w
}

func reportLadder(b *testing.B, docs int, elapsed time.Duration, peak uint64) {
	b.ReportMetric(float64(docs)/elapsed.Seconds(), "docs/s")
	b.ReportMetric(memwatch.PeakMB(peak), "peakMB")
}

func BenchmarkBulkIngest(b *testing.B) {
	for _, docs := range ladderRungs(b) {
		b.Run(fmt.Sprintf("docs=%dk", docs/1000), func(b *testing.B) {
			world := benchWorld(b, docs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				e := NewEmpty()
				e.Workers = 8
				w := memwatch.Start(5 * time.Millisecond)
				start := time.Now()
				stats, err := e.BulkIngest(context.Background(), world.Source(8), BulkOptions{})
				elapsed := time.Since(start)
				peak := w.Stop()
				if err != nil || stats.Docs != docs {
					b.Fatalf("ingest: %v (stats %+v)", err, stats)
				}
				reportLadder(b, docs, elapsed, peak)
			}
		})
	}
}

func BenchmarkBulkBuild(b *testing.B) {
	for _, docs := range ladderRungs(b) {
		b.Run(fmt.Sprintf("docs=%dk", docs/1000), func(b *testing.B) {
			world := benchWorld(b, docs)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				dir := b.TempDir()
				w := memwatch.Start(5 * time.Millisecond)
				start := time.Now()
				stats, err := BulkBuild(context.Background(), world.Source(8), dir, BulkBuildOptions{
					Docs:    docs,
					Workers: 8,
				})
				elapsed := time.Since(start)
				peak := w.Stop()
				if err != nil || stats.Docs != docs {
					b.Fatalf("build: %v (stats %+v)", err, stats)
				}
				reportLadder(b, docs, elapsed, peak)
			}
		})
	}
}
