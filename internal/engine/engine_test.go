package engine

import (
	"context"
	"fmt"
	"net/http"
	"reflect"
	"sync"
	"testing"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
)

// buildEngine surfaces a fresh multi-site world with the given worker
// count. Each call regenerates the world from the same seed so the two
// arms share nothing.
func buildEngine(t testing.TB, workers int) *Engine {
	t.Helper()
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = workers
	if n := e.IndexSurfaceWeb(context.Background()); n == 0 {
		t.Fatal("surface-web crawl indexed nothing")
	}
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
		t.Fatal(err)
	}
	return e
}

// The acceptance bar of this refactor: parallel surfacing must be
// bit-identical to sequential — same document set, same doc-id order,
// same search results, same experiment metrics. Run with -race.
func TestSurfaceDeterministicAcrossWorkers(t *testing.T) {
	seq := buildEngine(t, 1)
	par := buildEngine(t, 4)

	if len(seq.Web.Sites()) < 8 {
		t.Fatalf("world too small to exercise the pool: %d sites", len(seq.Web.Sites()))
	}

	// Identical index contents in identical doc-id order.
	if seq.Index.Len() != par.Index.Len() {
		t.Fatalf("index sizes differ: %d vs %d", seq.Index.Len(), par.Index.Len())
	}
	for id := 0; id < seq.Index.Len(); id++ {
		a, b := seq.Index.Doc(id), par.Index.Doc(id)
		if a != b {
			t.Fatalf("doc %d differs:\n  seq %+v\n  par %+v", id, a, b)
		}
		if !reflect.DeepEqual(seq.Index.AnnotationsOf(id), par.Index.AnnotationsOf(id)) {
			t.Fatalf("annotations of doc %d differ", id)
		}
	}

	// Identical experiment metrics.
	if !reflect.DeepEqual(seq.OfflineRequests, par.OfflineRequests) {
		t.Errorf("offline request counts differ:\n  seq %v\n  par %v", seq.OfflineRequests, par.OfflineRequests)
	}
	if !reflect.DeepEqual(seq.IngestStats, par.IngestStats) {
		t.Errorf("ingest stats differ:\n  seq %v\n  par %v", seq.IngestStats, par.IngestStats)
	}
	if a, b := seq.MeanCoverage(), par.MeanCoverage(); a != b {
		t.Errorf("mean coverage differs: %v vs %v", a, b)
	}
	if a, b := seq.Index.DocsBySource(), par.Index.DocsBySource(); !reflect.DeepEqual(a, b) {
		t.Errorf("per-source doc counts differ:\n  seq %v\n  par %v", a, b)
	}
	for host, sres := range seq.Results {
		pres := par.Results[host]
		if pres == nil {
			t.Fatalf("host %s missing from parallel results", host)
		}
		if !reflect.DeepEqual(sres.URLs, pres.URLs) {
			t.Errorf("%s: surfaced URL lists differ (%d vs %d)", host, len(sres.URLs), len(pres.URLs))
		}
		if sres.ProbesUsed != pres.ProbesUsed {
			t.Errorf("%s: probes used differ: %d vs %d", host, sres.ProbesUsed, pres.ProbesUsed)
		}
	}

	// Identical ranked results, plain and annotated.
	for _, q := range []string{
		"used ford focus", "homes in seattle", "nurse jobs",
		"history books", "thai recipes", "turing award professor",
	} {
		if a, b := seq.Index.Search(q, 10), par.Index.Search(q, 10); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) differs:\n  seq %v\n  par %v", q, a, b)
		}
		if a, b := seq.Index.AnnotatedSearch(q, 10), par.Index.AnnotatedSearch(q, 10); !reflect.DeepEqual(a, b) {
			t.Errorf("AnnotatedSearch(%q) differs", q)
		}
	}
}

// On a surfaced world, concurrent searches (which share the index's
// pooled dense accumulators) must return exactly what a quiet
// sequential search returns, query after query. Run with -race; this
// is the engine-level guard on the accumulator rewrite.
func TestSearchStableUnderConcurrentQueries(t *testing.T) {
	e := buildEngine(t, 4)
	queries := []string{
		"used ford focus", "homes in seattle", "nurse jobs",
		"history books", "thai recipes", "turing award professor",
		"ford ford focus", "the of and", "zzz-no-such-term",
	}
	want := make([][]index.Result, len(queries))
	for i, q := range queries {
		want[i] = e.Index.Search(q, 10)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				qi := (g + i) % len(queries)
				got := e.Index.Search(queries[qi], 10)
				if !reflect.DeepEqual(got, want[qi]) {
					t.Errorf("goroutine %d: Search(%q) diverged under concurrency", g, queries[qi])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// Worker counts beyond the site count, and the Workers=0 default, are
// clamped rather than misbehaving.
func TestSurfaceWorkerClamping(t *testing.T) {
	for _, workers := range []int{0, 64} {
		e, err := Build(webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 20})
		if err != nil {
			t.Fatal(err)
		}
		e.Workers = workers
		if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 0}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(e.Results) != len(e.Web.Sites()) {
			t.Errorf("workers=%d: %d results for %d sites", workers, len(e.Results), len(e.Web.Sites()))
		}
	}
}

// An empty world is a no-op, not a hang.
func TestSurfaceEmptyWorld(t *testing.T) {
	e := New(webgen.NewWeb())
	e.Workers = 4
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 0}); err != nil {
		t.Fatal(err)
	}
	if e.Index.Len() != 0 {
		t.Error("empty world indexed documents")
	}
}

// The filtered variant applies the §5.2 admission band at fetch time
// in the workers (rejected pages never reach the sink), and the
// per-host stats surface it.
func TestSurfaceFilteredRejects(t *testing.T) {
	run := func(filt core.IngestFilter) (indexed, rejected int) {
		e, err := Build(webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 40})
		if err != nil {
			t.Fatal(err)
		}
		e.Workers = 4
		if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 0, Filter: filt}); err != nil {
			t.Fatal(err)
		}
		for _, st := range e.IngestStats {
			indexed += st.Indexed
			rejected += st.Rejected
		}
		return indexed, rejected
	}
	plainIndexed, plainRejected := run(core.IngestFilter{})
	bandIndexed, bandRejected := run(core.IngestFilter{MinItems: 1, MaxItems: 3})
	if plainRejected != 0 {
		t.Errorf("unfiltered run rejected %d pages", plainRejected)
	}
	if bandRejected == 0 || bandIndexed >= plainIndexed {
		t.Errorf("admission band had no effect: indexed %d vs %d, rejected %d",
			bandIndexed, plainIndexed, bandRejected)
	}
}

// A site that fails mid-surfacing still has its analysis traffic
// metered: the requests were really issued against the host (§3.2
// accounting), so OfflineRequests must record them even though the
// site commits no result. The failure no longer aborts the pass — it
// is classified into the per-site report and the response is Degraded.
func TestOfflineRequestsRecordedForFailedSite(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 3, SitesPerDom: 1, RowsPerSite: 20})
	if err != nil {
		t.Fatal(err)
	}
	// First host in commit order, so the failure is deterministic and
	// no other site's outcome depends on cancellation timing.
	bad := e.Web.Sites()[0].Spec.Host
	// A redirect loop makes the http.Client itself error (10-hop cap),
	// the only way a fault-free virtual-web fetch fails.
	e.Web.AddHandler(bad, http.RedirectHandler("http://"+bad+"/", http.StatusFound))
	e.Workers = 2
	resp, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 0})
	if err != nil {
		t.Fatalf("partial failure aborted the pass: %v", err)
	}
	rep, ok := resp.Sites[bad]
	if !ok {
		t.Fatalf("no report for failed site %s", bad)
	}
	if rep.Status != SiteFailedTransient {
		t.Fatalf("failed site %s reported %s, want %s", bad, rep.Status, SiteFailedTransient)
	}
	if rep.Err == "" {
		t.Errorf("failed site's report carries no error text")
	}
	if !resp.Degraded {
		t.Error("response with a failed site is not marked Degraded")
	}
	if got := e.OfflineRequests[bad]; got == 0 {
		t.Fatalf("failed site %s issued requests but metered 0", bad)
	}
	if _, committed := e.Results[bad]; committed {
		t.Fatalf("failed site %s committed a result", bad)
	}
	// The other sites must have surfaced normally around the failure.
	if len(e.Results) == 0 {
		t.Fatal("no healthy site committed around the failure")
	}
	for host, rep := range resp.Sites {
		if host != bad && rep.Status != SiteOK {
			t.Errorf("healthy site %s reported %s", host, rep.Status)
		}
	}
}

// BuildSemantics produces working stores behind the façade.
func TestBuildSemantics(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 40})
	if err != nil {
		t.Fatal(err)
	}
	sem := e.BuildSemantics(context.Background(), 2000)
	if sem.PagesCrawled == 0 || len(sem.Tables) == 0 {
		t.Fatalf("semantic crawl found nothing: %+v", sem)
	}
	if len(sem.Tables) > sem.RawTables {
		t.Fatalf("quality filter grew the table set: %d > %d", len(sem.Tables), sem.RawTables)
	}
	if sem.ACS == nil || sem.ACS.Schemas == 0 {
		t.Error("ACSDb empty")
	}
	if sem.Server() == nil {
		t.Error("no server")
	}
}

// FormOf parses the form of every GET site.
func TestFormOf(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 20})
	if err != nil {
		t.Fatal(err)
	}
	for _, site := range e.Web.Sites() {
		f, err := FormOf(context.Background(), e.Fetch, site)
		if err != nil {
			t.Fatalf("%s: %v", site.Spec.Host, err)
		}
		if f == nil || len(f.Inputs) == 0 {
			t.Errorf("%s: degenerate form %+v", site.Spec.Host, f)
		}
	}
}

func ExampleEngine_Surface() {
	e, err := Build(webgen.WorldConfig{Seed: 42, SitesPerDom: 1, RowsPerSite: 30})
	if err != nil {
		panic(err)
	}
	e.Workers = 4
	e.IndexSurfaceWeb(context.Background())
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 1}); err != nil {
		panic(err)
	}
	fmt.Println(len(e.Results) == len(e.Web.Sites()))
	// Output: true
}
