// Package engine is the orchestration layer: one façade over the whole
// surfacing stack (webgen world → webx fetching → core analysis/probing
// → index ingestion) so binaries, examples and experiments stop
// hand-rolling the same wiring.
//
// Its centerpiece is a staged, bounded-concurrency surfacing pipeline.
// The paper's system is explicitly an offline, web-scale process —
// millions of forms analyzed and probed — so each site flows through
//
//	discovery → form analysis/probing → URL generation → fetch → ingest
//
// on a pool of Workers goroutines, one site per worker at a time. All
// stages up to and including fetch parallelize freely (each site talks
// only to its own host); ingestion commits at a single ordered point,
// in site order, so document ids, index contents and every experiment
// metric are identical whatever the worker count or interleaving.
package engine

import (
	"context"
	"fmt"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"

	"deepweb/internal/core"
	"deepweb/internal/coverage"
	"deepweb/internal/form"
	"deepweb/internal/index"
	"deepweb/internal/rescache"
	"deepweb/internal/resilient"
	"deepweb/internal/textutil"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

// Engine bundles a virtual internet with the machinery every caller
// needs: a fetcher, a search index, and per-site surfacing results.
type Engine struct {
	Web   *webgen.Web
	Fetch *webx.Fetcher
	Index *index.Index

	// Workers bounds how many sites Surface analyzes, probes and
	// fetches concurrently. 0 or 1 runs sequentially. Results are
	// identical for every value; Workers only buys wall-clock.
	Workers int

	// Generation identifies the snapshot this engine's index contents
	// correspond to: set by Load from the snapshot header, refreshed by
	// Save from the newly written segment's content hash. 0 means the
	// index was built live and has never crossed a snapshot boundary.
	Generation uint32

	// Results holds each site's surfacing outcome, keyed by host.
	Results map[string]*core.Result
	// OfflineRequests is each host's request count during surfacing
	// analysis + ingestion — the one-time "off-line analysis" load.
	// It meters traffic actually issued, so failed sites appear too;
	// on an aborted run, sites cancelled before doing any work do not.
	OfflineRequests map[string]int
	// IngestStats aggregates ingestion accounting per host.
	IngestStats map[string]core.IngestStats
	// SiteSignatures records each surfaced site's backing-table content
	// signature at surfacing time — the baseline Refresh diffs against.
	SiteSignatures map[string]textutil.Signature
	// CompactRatio is the tombstone fraction above which Refresh
	// compacts the index after committing. <= 0 disables automatic
	// compaction; compact manually with Engine.Compact, which keeps
	// the engine's host bookkeeping in sync with the renumbered ids
	// (a bare Index.Compact would not).
	CompactRatio float64

	// hostDocs tracks the live doc ids each host contributed (surfaced
	// pages and crawled surface-web pages alike), so Refresh can retire
	// a churned site's documents without scanning the whole index.
	hostDocs map[string][]int

	// cache is the serving-tier result cache (nil = disabled; see
	// EnableResultCache and cache.go). epoch counts index mutations —
	// it is part of every cache key, so bumping it retires all entries
	// minted before the mutation.
	cache *rescache.Cache[SearchResponse]
	epoch atomic.Uint64

	// base is the transport under the resilient layer — the virtual web
	// itself, or a chaos/proxy wrapper installed with UseTransport. rt
	// is the resilient retry/breaker transport built over it; every
	// fetch the engine issues flows through rt, and its per-host
	// counters are what per-site outcome reports are computed from.
	base  http.RoundTripper
	rt    *resilient.Transport
	ropts resilient.Options
}

// DefaultFetchTimeout bounds each logical fetch (all attempts plus
// backoff) issued by an engine's fetcher.
const DefaultFetchTimeout = 30 * time.Second

// DefaultCompactRatio is the CompactRatio new engines start with.
const DefaultCompactRatio = 0.5

// DefaultWorkers is the Workers value new engines start with.
// Binaries raise it (before building worlds) to parallelize every
// pipeline they run; results are identical either way.
var DefaultWorkers = 1

// New wraps an existing virtual internet.
func New(web *webgen.Web) *Engine {
	e := newEngine()
	e.Web = web
	e.UseTransport(web)
	return e
}

// newEngine builds the web-less shell shared by New and Load.
func newEngine() *Engine {
	return &Engine{
		Index:           index.New(),
		Workers:         DefaultWorkers,
		Results:         map[string]*core.Result{},
		OfflineRequests: map[string]int{},
		IngestStats:     map[string]core.IngestStats{},
		SiteSignatures:  map[string]textutil.Signature{},
		CompactRatio:    DefaultCompactRatio,
		hostDocs:        map[string][]int{},
		ropts:           resilient.Defaults(),
	}
}

// UseTransport replaces the transport fetch traffic flows through —
// normally the virtual web itself; tests and `deepcrawl -chaos`
// interpose a webgen.Chaos here — and rebuilds the resilient fetch
// stack over it.
func (e *Engine) UseTransport(rt http.RoundTripper) {
	e.base = rt
	e.rebuildFetch()
}

// SetResilience replaces the retry/backoff/breaker options and rebuilds
// the fetch stack (counters reset). Call before surfacing, not during.
func (e *Engine) SetResilience(opts resilient.Options) {
	e.ropts = opts
	if e.base != nil {
		e.rebuildFetch()
	}
}

func (e *Engine) rebuildFetch() {
	e.rt = resilient.NewTransport(e.base, e.ropts)
	e.Fetch = e.newFetcher(e.rt)
}

// newFetcher builds a fetcher over rt with the engine's per-fetch
// deadline and body cap applied.
func (e *Engine) newFetcher(rt http.RoundTripper) *webx.Fetcher {
	f := webx.NewFetcher(rt)
	f.Timeout = DefaultFetchTimeout
	f.MaxBodyBytes = e.ropts.MaxBodyBytes
	return f
}

// FetchStats reports the resilient fetch stack's cumulative counters
// and per-host breaker states; ok is false for a snapshot-only engine
// that has no fetch stack (Load without a web).
func (e *Engine) FetchStats() (total resilient.Stats, hosts map[string]resilient.HostStats, ok bool) {
	if e.rt == nil {
		return resilient.Stats{}, nil, false
	}
	return e.rt.Stats(), e.rt.AllHostStats(), true
}

// Build generates a world from the config and wraps it.
func Build(cfg webgen.WorldConfig) (*Engine, error) {
	web, err := webgen.BuildWorld(cfg)
	if err != nil {
		return nil, err
	}
	return New(web), nil
}

// IndexSurfaceWeb crawls the pre-surfacing web (no query URLs) and
// indexes it — the baseline a search engine has before deep-web
// surfacing. A canceled ctx stops the crawl; pages fetched before the
// cancellation are still indexed (and the epoch still bumps).
func (e *Engine) IndexSurfaceWeb(ctx context.Context) int {
	c := &webx.Crawler{Fetcher: e.Fetch}
	n := 0
	for _, p := range c.Crawl(ctx, "http://"+webgen.HubHost+"/") {
		if id, added := e.Index.Add(index.Doc{URL: p.URL, Title: p.Title(), Text: p.Text()}); added {
			n++
			e.trackDoc(p.URL, id)
		}
	}
	e.bumpEpoch()
	return n
}

// trackDoc records a newly indexed doc id under its URL's host.
func (e *Engine) trackDoc(rawURL string, id int) {
	if u, err := url.Parse(rawURL); err == nil && u.Host != "" {
		e.hostDocs[u.Host] = append(e.hostDocs[u.Host], id)
	}
}

// SurfaceRequest configures one Surface pass over the world's sites.
// The zero Filter surfaces unfiltered; set it to apply the §5.2
// index-admission band to fetched pages.
type SurfaceRequest struct {
	// Config drives form analysis and probing (budgets, thresholds).
	Config core.Config
	// FollowNext walks up to this many "next page" continuations per
	// surfaced URL at ingestion time.
	FollowNext int
	// Filter is the §5.2 index-admission criterion; the zero value
	// admits every fetched page.
	Filter core.IngestFilter
}

// SiteStatus is a surfaced site's outcome class.
type SiteStatus int

const (
	// SiteOK: the site surfaced cleanly; its results and signature are
	// committed.
	SiteOK SiteStatus = iota
	// SiteDegraded: the site committed, but some fetches failed even
	// after retries (partial corpus). Its signature is left unrecorded
	// so the next Refresh re-drives the whole site and heals it.
	SiteDegraded
	// SiteFailedTransient: the site failed with a retryable class of
	// error (timeouts, 5xx, open circuit); nothing committed, signature
	// unrecorded — the next Refresh retries it from scratch.
	SiteFailedTransient
	// SiteFailedPermanent: the site failed definitively (4xx homepage,
	// oversized body); retrying cannot help.
	SiteFailedPermanent
)

func (s SiteStatus) String() string {
	switch s {
	case SiteDegraded:
		return "degraded"
	case SiteFailedTransient:
		return "failed-transient"
	case SiteFailedPermanent:
		return "failed-permanent"
	default:
		return "ok"
	}
}

// SiteReport is one site's per-pass outcome: its status plus the fetch
// stack's counter deltas attributed to it (the engine's one-site =
// one-worker = one-host contract makes the attribution exact).
type SiteReport struct {
	Host              string     `json:"host"`
	Status            SiteStatus `json:"-"`
	StatusText        string     `json:"status"`
	Attempts          uint64     `json:"attempts"`
	Retries           uint64     `json:"retries"`
	Timeouts          uint64     `json:"timeouts,omitempty"`
	TransientFailures uint64     `json:"transient_failures,omitempty"`
	PermanentFailures uint64     `json:"permanent_failures,omitempty"`
	Err               string     `json:"error,omitempty"`
}

// SurfaceResponse reports a Surface pass: per-site outcomes keyed by
// host, and a top-level Degraded flag set when any site is not OK.
type SurfaceResponse struct {
	Sites    map[string]SiteReport
	Degraded bool
}

// anyNotOK reports whether any site's outcome calls for attention.
func anyNotOK(reports map[string]SiteReport) bool {
	for _, r := range reports {
		if r.Status != SiteOK {
			return true
		}
	}
	return false
}

// Surface runs the surfacing pipeline over every site and ingests the
// emitted URLs, attributing each document to its site's form.
//
// Failure semantics: a site that fails is *reported*, not fatal — the
// pass continues, the response carries per-site outcomes, and the
// returned error is nil. Transiently-failed and degraded sites leave no
// signature, so the next Refresh re-drives and heals them. Only the
// context canceling the run returns an error: in-flight sites abort
// between probe submissions, unstarted sites are skipped, the
// ordered-commit loop drains cleanly, and the context's error is
// returned. Sites already committed stay committed — cancellation never
// corrupts the index.
func (e *Engine) Surface(ctx context.Context, req SurfaceRequest) (SurfaceResponse, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reports, err := e.surfacePipeline(ctx, e.Web.Sites(), pipelineRun{
		cfg:        req.Config,
		followNext: req.FollowNext,
		filt:       req.Filter,
		fetch:      e.Fetch,
		rt:         e.rt,
		commit:     e.commitOutcome,
	})
	return SurfaceResponse{Sites: reports, Degraded: anyNotOK(reports)}, err
}

// siteOutcome is everything one site's pipeline pass produced, parked
// until the ordered commit point reaches its position.
type siteOutcome struct {
	pos      int
	host     string
	res      *core.Result
	sink     *stagedSink
	stats    core.IngestStats
	sig      textutil.Signature
	requests int
	report   SiteReport
	err      error
}

// pipelineRun is one surfacing pass's wiring: the analysis config, the
// ingestion knobs, the fetcher the workers issue traffic through (the
// engine's own, or a politeness-capped wrapper during Refresh), the
// resilient transport under that fetcher (for per-site counter deltas),
// and the commit hook the ordered drain invokes per successful site.
type pipelineRun struct {
	cfg        core.Config
	followNext int
	filt       core.IngestFilter
	fetch      *webx.Fetcher
	rt         *resilient.Transport
	commit     func(*siteOutcome)
}

// surfacePipeline runs the staged pipeline over the given sites and
// drains outcomes through run.commit at the single ordered commit
// point, returning a per-site outcome report keyed by host.
//
// Concurrency contract: a site is handled end-to-end by one worker, and
// every request it issues targets the site's own host, so per-host
// request counts — and the resilient transport's per-host counter
// deltas — are exact. Fetched documents buffer in a stagedSink; the
// commit loop drains outcomes in site order, assigning doc ids and
// inserting postings.
//
// Failure semantics: a failed site is classified (transient vs.
// permanent) and reported, and the pass continues — one bad site must
// not shrink the rest of the corpus. A transiently-failed or degraded
// site leaves no signature, so the next Refresh sees it as changed and
// re-drives it (self-healing). Only run-context cancellation aborts:
// sites earlier in the order are still committed (matching sequential
// semantics) and the context's error is returned. Request metering is
// recorded for every site that did work — the traffic really hit the
// hosts (§3.2 accounting) — but only committed results are ever
// worker-timing-independent on an aborted run.
//
// Cancellation drains cleanly: every dispatched job yields exactly one
// outcome (a canceled worker reports ctx.Err() instead of surfacing),
// so the ordered loop always receives len(sites) outcomes and the
// WaitGroup always settles — no goroutine leaks, no deadlock.
func (e *Engine) surfacePipeline(ctx context.Context, sites []*webgen.Site, run pipelineRun) (map[string]SiteReport, error) {
	reports := make(map[string]SiteReport, len(sites))
	if len(sites) == 0 {
		return reports, ctx.Err()
	}
	workers := e.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > len(sites) {
		workers = len(sites)
	}

	jobs := make(chan int)
	outcomes := make(chan *siteOutcome, len(sites))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pos := range jobs {
				if err := ctx.Err(); err != nil {
					outcomes <- &siteOutcome{pos: pos, host: sites[pos].Spec.Host, err: err}
					continue
				}
				out := e.surfaceOne(ctx, sites[pos], run)
				out.pos = pos
				outcomes <- out
			}
		}()
	}
	go func() {
		for pos := range sites {
			jobs <- pos
		}
		close(jobs)
	}()

	// Ordered commit: park outcomes until their position is next.
	parked := make(map[int]*siteOutcome, len(sites))
	next := 0
	var firstErr error
	for received := 0; received < len(sites); received++ {
		o := <-outcomes
		parked[o.pos] = o
		for out, ok := parked[next]; ok; out, ok = parked[next] {
			delete(parked, next)
			next++
			if out.requests > 0 {
				e.OfflineRequests[out.host] = out.requests
			}
			if firstErr != nil {
				continue
			}
			if out.err != nil {
				// Discriminate abort from failure via the run context,
				// not the error value: per-fetch timeouts also surface
				// deadline errors, but only the run context ending
				// means the caller wants out.
				if ctx.Err() != nil {
					firstErr = fmt.Errorf("surface %s: %w", out.host, out.err)
					continue
				}
				rep := out.report
				rep.Err = out.err.Error()
				if resilient.ClassOf(out.err) == resilient.ClassPermanent {
					rep.Status = SiteFailedPermanent
				} else {
					rep.Status = SiteFailedTransient
					// Whatever signature a prior pass recorded no longer
					// reflects an intact corpus entry; drop it so the
					// next Refresh re-drives this site.
					delete(e.SiteSignatures, out.host)
				}
				rep.StatusText = rep.Status.String()
				reports[out.host] = rep
				continue
			}
			run.commit(out)
			if out.report.Status == SiteDegraded {
				// Committed, but with fetch losses: leave the signature
				// unrecorded so the next Refresh heals the gaps.
				delete(e.SiteSignatures, out.host)
			}
			out.report.StatusText = out.report.Status.String()
			reports[out.host] = out.report
		}
	}
	wg.Wait()
	return reports, firstErr
}

// commitOutcome is the standard bookkeeping for one successfully
// surfaced site: drain its sink into the index and record its result,
// stats, content signature and doc ids.
func (e *Engine) commitOutcome(out *siteOutcome) {
	e.Results[out.host] = out.res
	ids := out.sink.commit()
	out.stats.Indexed = len(ids)
	e.IngestStats[out.host] = out.stats
	e.SiteSignatures[out.host] = out.sig
	e.hostDocs[out.host] = append(e.hostDocs[out.host], ids...)
	// Each commit is a visible index mutation: retire cached results so
	// no query answered after this point sees pre-commit state.
	e.bumpEpoch()
}

// surfaceOne runs the per-site stages: discovery + form analysis +
// probing + URL generation (core.Surfacer), then fetch of every emitted
// URL into a buffering sink. No shared index state is written. The
// request delta is measured even on failure — the traffic was issued —
// and the resilient transport's per-host counter delta becomes the
// site's outcome report.
func (e *Engine) surfaceOne(ctx context.Context, site *webgen.Site, run pipelineRun) *siteOutcome {
	host := site.Spec.Host
	before := e.Web.Requests(host)
	var fsBefore resilient.HostStats
	if run.rt != nil {
		fsBefore = run.rt.HostStats(host)
	}
	mkReport := func() SiteReport {
		rep := SiteReport{Host: host}
		if run.rt != nil {
			fs := run.rt.HostStats(host)
			rep.Attempts = fs.Attempts - fsBefore.Attempts
			rep.Retries = fs.Retries - fsBefore.Retries
			rep.Timeouts = fs.Timeouts - fsBefore.Timeouts
			rep.TransientFailures = fs.TransientFailures - fsBefore.TransientFailures
			rep.PermanentFailures = fs.PermanentFailures - fsBefore.PermanentFailures
		}
		return rep
	}
	s := core.NewSurfacer(run.fetch, run.cfg)
	res, err := s.SurfaceSite(ctx, site.HomeURL())
	if err != nil {
		return &siteOutcome{host: host, err: err, requests: e.Web.Requests(host) - before, report: mkReport()}
	}
	source := host
	if res.Analysis.Form != nil {
		source = res.Analysis.Form.ID
	}
	sink := newStagedSink(e.Index)
	stats := core.IngestURLsFiltered(ctx, run.fetch, sink, source, res.URLs, run.followNext, run.filt)
	requests := e.Web.Requests(host) - before
	// Ingestion swallows cancellation (its partial stats are still
	// real); the pipeline must not — a site whose fetches were cut
	// short may not be committed as complete.
	if err := ctx.Err(); err != nil {
		return &siteOutcome{host: host, err: err, requests: requests, report: mkReport()}
	}
	rep := mkReport()
	if rep.TransientFailures > 0 {
		// Some logical fetches failed even after retries: the committed
		// corpus for this site has holes.
		rep.Status = SiteDegraded
	}
	return &siteOutcome{
		host:     host,
		res:      res,
		sink:     sink,
		stats:    stats,
		sig:      site.TableSignature(),
		requests: requests,
		report:   rep,
	}
}

// SiteCoverage returns ground-truth coverage of one surfaced site.
func (e *Engine) SiteCoverage(host string) coverage.Exact {
	site := e.Web.Site(host)
	res := e.Results[host]
	if site == nil || res == nil {
		return coverage.Exact{}
	}
	return coverage.ExactOf(site, res.URLs)
}

// SiteDistinctSets counts the distinct ground-truth result sets among
// one surfaced site's URLs — how many genuinely different pages the
// emitted templates retrieve, per the site's oracle.
func (e *Engine) SiteDistinctSets(host string) int {
	site := e.Web.Site(host)
	res := e.Results[host]
	if site == nil || res == nil {
		return 0
	}
	return coverage.DistinctResultSets(site, res.URLs)
}

// MeanCoverage averages exact coverage over surfaceable (GET) sites.
func (e *Engine) MeanCoverage() float64 {
	var sum float64
	n := 0
	for _, site := range e.Web.Sites() {
		if site.Spec.Method != "get" {
			continue
		}
		sum += e.SiteCoverage(site.Spec.Host).Fraction()
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FormOf fetches and parses a site's search form — the mediator
// registration path shared by experiments and examples.
func FormOf(ctx context.Context, fetch *webx.Fetcher, site *webgen.Site) (*form.Form, error) {
	page, err := fetch.GetCtx(ctx, site.FormURL())
	if err != nil {
		return nil, err
	}
	decls := page.Forms()
	if len(decls) == 0 {
		return nil, fmt.Errorf("no form on %s", site.FormURL())
	}
	base, err := url.Parse(page.URL)
	if err != nil {
		return nil, err
	}
	return form.FromDecl(base, decls[0], 0)
}
