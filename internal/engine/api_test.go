package engine

import (
	"context"
	"errors"
	"math"
	"net/http"
	"net/url"
	"reflect"
	"testing"
	"time"

	"deepweb/internal/core"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
)

// The acceptance bar of the API redesign: Search(ctx, SearchRequest{
// Query, K}) must be bit-identical to the pre-redesign positional
// Index.Search(q, k) — same ids, same float score bits, same tie order
// — across shard counts, on a cold-built engine and on a
// snapshot-loaded one.
func TestSearchBitIdenticalToIndexSearch(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		cold := surfacedEngine(t, shards)

		dir := t.TempDir()
		if err := cold.Save(dir); err != nil {
			t.Fatalf("shards=%d: save: %v", shards, err)
		}
		prev := DefaultWorkers
		DefaultWorkers = 4
		loaded, err := Load(dir)
		DefaultWorkers = prev
		if err != nil {
			t.Fatalf("shards=%d: load: %v", shards, err)
		}

		for name, e := range map[string]*Engine{"cold": cold, "loaded": loaded} {
			for _, q := range persistQueries {
				for _, k := range []int{1, 3, 10, 100} {
					want := e.Index.Search(q, k)
					resp, err := e.Search(context.Background(), SearchRequest{Query: q, K: k})
					if err != nil {
						t.Fatalf("shards=%d %s: Search(%q,%d): %v", shards, name, q, k, err)
					}
					if !reflect.DeepEqual(resp.Results, want) {
						t.Fatalf("shards=%d %s: Search(%q,%d) differs from Index.Search", shards, name, q, k)
					}
					for i := range want {
						if math.Float64bits(resp.Results[i].Score) != math.Float64bits(want[i].Score) {
							t.Fatalf("shards=%d %s: score bits differ at rank %d of %q", shards, name, i, q)
						}
					}
					if resp.Total < len(want) {
						t.Fatalf("shards=%d %s: total %d < page size %d", shards, name, resp.Total, len(want))
					}
					// Annotated path too.
					wantAnn := e.Index.AnnotatedSearch(q, k)
					respAnn, err := e.Search(context.Background(), SearchRequest{Query: q, K: k, Annotated: true})
					if err != nil || !reflect.DeepEqual(respAnn.Results, wantAnn) {
						t.Fatalf("shards=%d %s: annotated Search(%q,%d) differs (err=%v)", shards, name, q, k, err)
					}
				}
			}
			if name == "cold" && e.Generation == 0 {
				t.Errorf("shards=%d: cold engine generation 0 after Save (should adopt the written snapshot's id)", shards)
			}
			if name == "loaded" && e.Generation == 0 {
				t.Errorf("shards=%d: loaded engine reports generation 0", shards)
			}
		}
		if cold.Generation != loaded.Generation {
			t.Errorf("shards=%d: generations diverge across the snapshot boundary: %d vs %d",
				shards, cold.Generation, loaded.Generation)
		}
	}
}

// Host restriction and pagination through the engine API: pages tile
// the full ranking, and a Host filter admits only that host's
// documents without disturbing relative order.
func TestSearchHostFilterAndPagination(t *testing.T) {
	e := surfacedEngine(t, 4)
	q := "used ford focus"
	full, err := e.Search(context.Background(), SearchRequest{Query: q, K: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Results) == 0 {
		t.Fatal("no hits for the paging query")
	}
	if full.Total != len(full.Results) {
		t.Fatalf("total %d != exhaustive page %d", full.Total, len(full.Results))
	}
	var paged []index.Result
	for offset := 0; offset < full.Total; offset += 3 {
		page, err := e.Search(context.Background(), SearchRequest{Query: q, K: 3, Offset: offset})
		if err != nil {
			t.Fatal(err)
		}
		if page.Total != full.Total {
			t.Fatalf("offset %d: total %d, want %d", offset, page.Total, full.Total)
		}
		paged = append(paged, page.Results...)
	}
	if !reflect.DeepEqual(paged, full.Results) {
		t.Fatal("pages do not tile the full ranking")
	}

	// A multi-host query: every site's pages mention their city terms,
	// so "seattle" crosses hosts. Restrict to the top hit's host and
	// check the restricted ranking against the post-filtered full one.
	q = "seattle"
	full, err = e.Search(context.Background(), SearchRequest{Query: q, K: 100000})
	if err != nil || len(full.Results) == 0 {
		t.Fatalf("no hits for the host-filter query (err=%v)", err)
	}
	host := hostOf(t, full.Results[0].URL)
	restricted, err := e.Search(context.Background(), SearchRequest{Query: q, K: 100000, Host: host})
	if err != nil {
		t.Fatal(err)
	}
	var fromFull []index.Result
	for _, hit := range full.Results {
		if hostOf(t, hit.URL) == host {
			fromFull = append(fromFull, hit)
		}
	}
	if restricted.Total != len(fromFull) || !reflect.DeepEqual(restricted.Results, fromFull) {
		t.Fatalf("host-restricted ranking disagrees with post-filtered full ranking (%d vs %d hits)",
			restricted.Total, len(fromFull))
	}
	if restricted.Total == full.Total {
		t.Logf("note: every %q hit lives on %s; restriction not strict in this world", q, host)
	}

	// A host with no documents answers an empty page with a zero total.
	none, err := e.Search(context.Background(), SearchRequest{Query: q, K: 10, Host: "nosuch.example"})
	if err != nil || none.Total != 0 || len(none.Results) != 0 {
		t.Fatalf("unknown host: total=%d hits=%d err=%v", none.Total, len(none.Results), err)
	}
}

func hostOf(t *testing.T, raw string) string {
	t.Helper()
	u, err := url.Parse(raw)
	if err != nil {
		t.Fatalf("bad URL %q: %v", raw, err)
	}
	return u.Host
}

// A canceled context must abort a mid-flight Surface promptly — the
// prober checks the context before every submission — and the
// ordered-commit pipeline must drain cleanly instead of deadlocking.
// The cancellation fires from inside the world's own traffic, so the
// run is canceled while genuinely mid-flight. Run with -race.
func TestSurfaceCanceledContextAborts(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// The first site (in commit order) cancels the run on its first
	// request, then serves normally: every worker's next probe check
	// sees the canceled context.
	first := e.Web.Sites()[0]
	e.Web.AddHandler(first.Spec.Host, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cancel()
		first.ServeHTTP(w, r)
	}))

	start := time.Now()
	_, err = e.Surface(ctx, SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3})
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Surface returned %v, want context.Canceled", err)
	}
	// "Promptly": the whole abort, pipeline drain included, takes a
	// bounded moment, not a full surfacing pass (which needs tens of
	// seconds of probe traffic at this world size when sequential).
	if elapsed > 10*time.Second {
		t.Fatalf("canceled Surface took %v", elapsed)
	}
	// The canceling site is first in commit order, so nothing commits.
	if len(e.Results) != 0 {
		t.Fatalf("%d sites committed after a cancellation at position 0", len(e.Results))
	}
	// The engine is still consistent and usable.
	if _, err := e.Search(context.Background(), SearchRequest{Query: "ford", K: 5}); err != nil {
		t.Fatalf("engine unusable after canceled Surface: %v", err)
	}
}

// A canceled context surfaces through Search as its error.
func TestSearchCanceledContext(t *testing.T) {
	e := surfacedEngine(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Search(ctx, SearchRequest{Query: "used ford focus", K: 10}); !errors.Is(err, context.Canceled) {
		t.Fatalf("Search returned %v, want context.Canceled", err)
	}
}

// Refresh must honor PerHostCap: the politeness cap bounds every
// host's request count for the whole pass, asserted with the virtual
// web's per-host request counters.
func TestRefreshPerHostCap(t *testing.T) {
	const cap = 40
	run := func(capped bool) (*Engine, map[string]int, RefreshResponse) {
		e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
		if err != nil {
			t.Fatal(err)
		}
		e.Workers = 4
		e.IndexSurfaceWeb(context.Background())
		if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 3}); err != nil {
			t.Fatal(err)
		}
		webgen.Churn(e.Web, 8, 99)
		before := map[string]int{}
		for _, site := range e.Web.Sites() {
			before[site.Spec.Host] = e.Web.Requests(site.Spec.Host)
		}
		req := RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3}
		if capped {
			req.PerHostCap = cap
		}
		st, err := e.Refresh(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		delta := map[string]int{}
		for host, n := range before {
			delta[host] = e.Web.Requests(host) - n
		}
		return e, delta, st
	}

	_, uncapped, st := run(false)
	if st.SitesChanged == 0 {
		t.Fatal("churn changed no sites; the test exercises nothing")
	}
	maxUncapped := 0
	for _, n := range uncapped {
		maxUncapped = max(maxUncapped, n)
	}
	if maxUncapped <= cap {
		t.Fatalf("uncapped refresh peaked at %d requests/host; cap %d would not bind", maxUncapped, cap)
	}

	capped, capDelta, st := run(true)
	if st.SitesChanged == 0 {
		t.Fatal("capped refresh saw no changed sites")
	}
	truncated := 0
	for host, n := range capDelta {
		if n > cap {
			t.Errorf("host %s got %d requests during capped refresh, cap %d", host, n, cap)
		}
		// A host the cap truncated must be left looking stale (no
		// recorded signature), not committed as fully refreshed.
		if n >= cap {
			truncated++
			if _, ok := capped.SiteSignatures[host]; ok {
				t.Errorf("host %s was truncated by the cap yet its signature was recorded", host)
			}
		}
	}
	if truncated == 0 {
		t.Fatal("no host reached the cap; the truncation path went unexercised")
	}

	// Convergence: the next uncapped Refresh re-drives the truncated
	// sites; once healed, a further Refresh finds nothing to do.
	heal, err := capped.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if heal.SitesChanged < truncated {
		t.Errorf("healing refresh re-drove %d sites, want at least the %d truncated ones", heal.SitesChanged, truncated)
	}
	again, err := capped.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if again.SitesChanged != 0 {
		t.Errorf("post-heal refresh still re-drove %d sites", again.SitesChanged)
	}
}

// BudgetFraction scales the per-site probe budget: a half-budget
// refresh must spend at most half the configured probes per site, and
// an out-of-range fraction is rejected.
func TestRefreshBudgetFraction(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	cfg := core.DefaultConfig()
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: cfg, FollowNext: 3}); err != nil {
		t.Fatal(err)
	}
	webgen.Churn(e.Web, 8, 3)

	if _, err := e.Refresh(context.Background(), RefreshRequest{Config: cfg, BudgetFraction: 1.5}); err == nil {
		t.Fatal("BudgetFraction 1.5 accepted")
	}
	if _, err := e.Refresh(context.Background(), RefreshRequest{Config: cfg, BudgetFraction: -0.1}); err == nil {
		t.Fatal("BudgetFraction -0.1 accepted")
	}

	st, err := e.Refresh(context.Background(), RefreshRequest{Config: cfg, FollowNext: 3, BudgetFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChanged == 0 {
		t.Fatal("churn changed no sites")
	}
	half := cfg.ProbeBudget / 2
	for host, res := range e.Results {
		if res.ProbesUsed > half {
			t.Errorf("host %s spent %d probes; half budget is %d", host, res.ProbesUsed, half)
		}
	}

	// Starvation: a fraction small enough that sites run the scaled
	// budget dry mid-analysis. Those sites must be left stale (no
	// recorded signature) — not committed as refreshed with a shrunken
	// corpus — so a later full-budget Refresh heals them.
	webgen.Churn(e.Web, 8, 4)
	tiny := 0.03 // 600 * 0.03 = 18 probes: exhausted before ISIT finishes
	st, err = e.Refresh(context.Background(), RefreshRequest{Config: cfg, FollowNext: 3, BudgetFraction: tiny})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChanged == 0 {
		t.Fatal("second churn changed no sites")
	}
	scaled := int(float64(cfg.ProbeBudget) * tiny)
	starved := 0
	for host, res := range e.Results {
		if res.ProbesUsed < scaled {
			continue
		}
		starved++
		if _, recorded := e.SiteSignatures[host]; recorded {
			t.Errorf("host %s exhausted its reduced budget yet its signature was recorded", host)
		}
	}
	if starved == 0 {
		t.Fatal("no site exhausted the starving budget; the staleness path went unexercised")
	}
	heal, err := e.Refresh(context.Background(), RefreshRequest{Config: cfg, FollowNext: 3})
	if err != nil {
		t.Fatal(err)
	}
	if heal.SitesChanged < starved {
		t.Errorf("healing refresh re-drove %d sites, want at least the %d starved ones", heal.SitesChanged, starved)
	}
	if again, err := e.Refresh(context.Background(), RefreshRequest{Config: cfg, FollowNext: 3}); err != nil || again.SitesChanged != 0 {
		t.Errorf("post-heal refresh: changed=%d err=%v, want 0/nil", again.SitesChanged, err)
	}
}

// Filtered refresh: the §5.2 admission band plumbs through
// RefreshRequest.Filter, so re-ingested pages outside the band are
// rejected exactly as a filtered Surface would reject them.
func TestRefreshFiltered(t *testing.T) {
	e, err := Build(webgen.WorldConfig{Seed: 7, SitesPerDom: 1, RowsPerSite: 60})
	if err != nil {
		t.Fatal(err)
	}
	e.Workers = 4
	filt := core.IngestFilter{MinItems: 1, MaxItems: 3}
	if _, err := e.Surface(context.Background(), SurfaceRequest{Config: core.DefaultConfig(), FollowNext: 0, Filter: filt}); err != nil {
		t.Fatal(err)
	}
	webgen.Churn(e.Web, 8, 5)
	st, err := e.Refresh(context.Background(), RefreshRequest{Config: core.DefaultConfig(), Filter: filt})
	if err != nil {
		t.Fatal(err)
	}
	if st.SitesChanged == 0 {
		t.Fatal("churn changed no sites")
	}
	rejected := 0
	for _, ist := range e.IngestStats {
		rejected += ist.Rejected
	}
	if rejected == 0 {
		t.Fatal("admission band rejected nothing during refresh; filter not plumbed")
	}
}
