// Package workload models search-engine query traffic for the long-tail
// experiment (E1). The paper's measurement — "pages surfaced … from the
// top 10,000 forms accounted for only 50% of deep-web results, while
// even the top 100,000 forms only accounted for 85%" — is a statement
// about the cumulative impact distribution of forms under power-law
// query traffic. This package regenerates that distribution two ways:
// analytically at paper scale, and measured end-to-end at laptop scale
// by attributing index hits back to the forms that surfaced them.
package workload

import (
	"math"
	"sort"

	"deepweb/internal/dist"
)

// FormImpact is the analytic model: nForms forms whose per-form impact
// (number of queries they answer) follows Zipf with exponent s. It
// returns the impact weights by rank.
func FormImpact(s float64, nForms int) []float64 {
	return dist.ZipfWeights(s, nForms)
}

// SharesAt returns the cumulative impact share of the top-k forms for
// each k, under the analytic model.
func SharesAt(weights []float64, tops []int) []float64 {
	return dist.CumulativeShare(weights, tops)
}

// CalibrateExponent finds the Zipf exponent s for which the top-k1
// forms of nForms hold approximately the target share, by bisection on
// the analytic CDF. It is how the experiment recovers the paper's
// implied traffic skew from its two published points.
func CalibrateExponent(nForms, k1 int, share1 float64) float64 {
	lo, hi := 0.01, 2.5
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		s := SharesAt(FormImpact(mid, nForms), []int{k1})[0]
		if s < share1 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// SampleImpacts draws perQuery form assignments from the Zipf model and
// returns observed per-form impact counts — the sampled (rather than
// analytic) arm, which adds realistic noise.
func SampleImpacts(seed int64, s float64, nForms, queries int) []float64 {
	z := dist.NewZipf(seed, s, uint64(nForms))
	counts := make([]float64, nForms)
	for i := 0; i < queries; i++ {
		counts[z.Next()]++
	}
	return counts
}

// Query is one synthetic search query for the measured arm.
type Query struct {
	Text string
	// Tail marks queries about rare, deep-web-only content (the long
	// tail); head queries have surface-web answers too.
	Tail bool
}

// Mix builds a query stream with the given tail fraction from head and
// tail pools, deterministically interleaved.
func Mix(head, tail []string, tailFrac float64, n int) []Query {
	if n <= 0 || (len(head) == 0 && len(tail) == 0) {
		return nil
	}
	out := make([]Query, 0, n)
	acc := 0.0
	hi, ti := 0, 0
	for i := 0; i < n; i++ {
		acc += tailFrac
		if (acc >= 1 || len(head) == 0) && len(tail) > 0 {
			acc -= 1
			out = append(out, Query{Text: tail[ti%len(tail)], Tail: true})
			ti++
		} else {
			out = append(out, Query{Text: head[hi%len(head)], Tail: false})
			hi++
		}
	}
	return out
}

// GiniCoefficient summarizes impact concentration in [0,1]; the paper's
// long-tail claim corresponds to high but not extreme concentration.
func GiniCoefficient(values []float64) float64 {
	n := len(values)
	if n == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	var cum, sum float64
	for _, v := range sorted {
		sum += v
	}
	if sum == 0 {
		return 0
	}
	var lorenz float64
	for _, v := range sorted {
		cum += v
		lorenz += cum
	}
	// G = 1 - 2 * (area under Lorenz curve)
	return 1 - (2*lorenz-sum)/(float64(n)*sum)
}

// PaperShares are the two published data points of §3.2.
var PaperShares = struct {
	Top10kOf200k  float64
	Top100kOf200k float64
}{0.50, 0.85}

// AbsErr is a tiny helper for experiment reporting.
func AbsErr(got, want float64) float64 { return math.Abs(got - want) }
