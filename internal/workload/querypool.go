package workload

import (
	"fmt"
	"math/rand"

	"deepweb/internal/core"
	"deepweb/internal/datagen"
	"deepweb/internal/dist"
)

// Query-pool side of the workload model: where workload.go models which
// *forms* power-law traffic lands on (E1's analytic arm), this file
// produces the concrete query strings a load generator replays against
// the serving tier. The strings are built from the same datagen
// vocabularies the synthetic web is generated from, so head-of-pool
// queries actually hit surfaced documents rather than scoring zero.

// queryTemplates are the shapes QueryPool cycles through, mirroring the
// verticals of the synthetic web (vehicles, real estate, jobs, recipes,
// library). Each is a function of a seeded rng so the combinatorial
// space stays large enough to fill big pools without repeats.
var queryTemplates = []func(r *rand.Rand) string{
	func(r *rand.Rand) string {
		mi := r.Intn(len(datagen.CarMakes))
		return fmt.Sprintf("used %s %s", datagen.CarMakes[mi],
			datagen.CarModels[mi][r.Intn(len(datagen.CarModels[mi]))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("homes in %s", datagen.USCities[r.Intn(len(datagen.USCities))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("%s jobs in %s",
			datagen.JobTitles[r.Intn(len(datagen.JobTitles))],
			datagen.USCities[r.Intn(len(datagen.USCities))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("%s %s recipe",
			datagen.Cuisines[r.Intn(len(datagen.Cuisines))],
			datagen.Dishes[r.Intn(len(datagen.Dishes))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("%s books", datagen.BookSubjects[r.Intn(len(datagen.BookSubjects))])
	},
	func(r *rand.Rand) string {
		mi := r.Intn(len(datagen.CarMakes))
		return fmt.Sprintf("%s %s %s in %s",
			datagen.NoteWords[r.Intn(len(datagen.NoteWords))],
			datagen.CarMakes[mi],
			datagen.CarModels[mi][r.Intn(len(datagen.CarModels[mi]))],
			datagen.USCities[r.Intn(len(datagen.USCities))])
	},
}

// QueryPool returns n distinct query strings, deterministic in seed.
// Index order is the pool's popularity rank order (rank 0 first); a
// Zipfian sampler over indices therefore concentrates traffic on the
// pool's head exactly as search traffic concentrates on head queries.
func QueryPool(seed int64, n int) []string {
	if n <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	pool := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(pool) < n; i++ {
		q := queryTemplates[i%len(queryTemplates)](r)
		if seen[q] {
			continue
		}
		seen[q] = true
		pool = append(pool, q)
	}
	return pool
}

// filteredQueryTemplates are the filtered-query shapes
// QueryPoolFiltered splices in: a keyword query plus one typed
// predicate in the in-query DSL of internal/query ("price<9900",
// "year:1990..2000"), so the same string drives both /v1/search?q=
// and an in-process query.Extract + engine.Search. price() and year()
// draw from the core typed-value ladders.
var filteredQueryTemplates = []func(r *rand.Rand, price, year func() string) string{
	func(r *rand.Rand, price, _ func() string) string {
		return fmt.Sprintf("used %s price<%s",
			datagen.CarMakes[r.Intn(len(datagen.CarMakes))], price())
	},
	func(r *rand.Rand, price, _ func() string) string {
		return fmt.Sprintf("homes in %s price<%s",
			datagen.USCities[r.Intn(len(datagen.USCities))], price())
	},
	func(r *rand.Rand, _, year func() string) string {
		y1, y2 := year(), year()
		if y1 > y2 { // 4-digit years order lexically
			y1, y2 = y2, y1
		}
		return fmt.Sprintf("%s books year:%s..%s",
			datagen.BookSubjects[r.Intn(len(datagen.BookSubjects))], y1, y2)
	},
	func(r *rand.Rand, price, _ func() string) string {
		return fmt.Sprintf("%s jobs salary>=%s",
			datagen.JobTitles[r.Intn(len(datagen.JobTitles))], price())
	},
	func(r *rand.Rand, _, year func() string) string {
		mi := r.Intn(len(datagen.CarMakes))
		return fmt.Sprintf("used %s %s year>%s", datagen.CarMakes[mi],
			datagen.CarModels[mi][r.Intn(len(datagen.CarModels[mi]))], year())
	},
}

// QueryPoolFiltered is QueryPool with a fraction frac of the pool
// replaced by filtered queries: keywords plus one typed predicate whose
// value is drawn Zipfian from the core typed-value ladders, so filter
// values are head-heavy the way real structured traffic is. frac = 0
// returns exactly QueryPool(seed, n), keeping existing BENCH_load
// artifacts comparable. Replacements spread evenly across popularity
// ranks, so filtered traffic shows up at the head and the tail alike.
func QueryPoolFiltered(seed int64, n int, frac float64) []string {
	pool := QueryPool(seed, n)
	nf := int(frac*float64(n) + 0.5)
	if nf <= 0 || len(pool) == 0 {
		return pool
	}
	if nf > n {
		nf = n
	}
	r := rand.New(rand.NewSource(seed + 1))
	prices := core.TypedValues(core.TypePrice, 12)
	years := core.TypedValues(core.TypeDate, 12)
	zPrice := dist.NewZipf(seed+2, 1.05, uint64(len(prices)))
	zYear := dist.NewZipf(seed+3, 1.05, uint64(len(years)))
	price := func() string { return prices[zPrice.Next()] }
	year := func() string { return years[zYear.Next()] }
	seen := make(map[string]bool, n)
	for _, q := range pool {
		seen[q] = true
	}
	for i := 0; i < nf; i++ {
		var q string
		for t := i; ; t++ {
			q = filteredQueryTemplates[t%len(filteredQueryTemplates)](r, price, year)
			if !seen[q] {
				break
			}
		}
		seen[q] = true
		pool[i*n/nf] = q
	}
	return pool
}

// Sampler draws queries from a pool under Zipfian popularity: the
// pool's head ranks dominate, the tail appears rarely — the traffic
// shape of §3.2 pointed at the serving tier instead of at forms.
//
// A Sampler is NOT safe for concurrent use (it owns a single rng
// stream); give each load-generating worker its own, seeded
// distinctly, so workers draw independent streams deterministically.
type Sampler struct {
	pool []string
	z    *dist.Zipf
}

// NewSampler builds a Zipfian sampler over pool with exponent s
// (s = 0 is uniform; larger s concentrates harder on the head).
func NewSampler(seed int64, s float64, pool []string) *Sampler {
	return &Sampler{pool: pool, z: dist.NewZipf(seed, s, uint64(len(pool)))}
}

// Next draws one query.
func (s *Sampler) Next() string { return s.pool[s.z.Next()] }
