package workload

import (
	"fmt"
	"math/rand"

	"deepweb/internal/datagen"
	"deepweb/internal/dist"
)

// Query-pool side of the workload model: where workload.go models which
// *forms* power-law traffic lands on (E1's analytic arm), this file
// produces the concrete query strings a load generator replays against
// the serving tier. The strings are built from the same datagen
// vocabularies the synthetic web is generated from, so head-of-pool
// queries actually hit surfaced documents rather than scoring zero.

// queryTemplates are the shapes QueryPool cycles through, mirroring the
// verticals of the synthetic web (vehicles, real estate, jobs, recipes,
// library). Each is a function of a seeded rng so the combinatorial
// space stays large enough to fill big pools without repeats.
var queryTemplates = []func(r *rand.Rand) string{
	func(r *rand.Rand) string {
		mi := r.Intn(len(datagen.CarMakes))
		return fmt.Sprintf("used %s %s", datagen.CarMakes[mi],
			datagen.CarModels[mi][r.Intn(len(datagen.CarModels[mi]))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("homes in %s", datagen.USCities[r.Intn(len(datagen.USCities))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("%s jobs in %s",
			datagen.JobTitles[r.Intn(len(datagen.JobTitles))],
			datagen.USCities[r.Intn(len(datagen.USCities))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("%s %s recipe",
			datagen.Cuisines[r.Intn(len(datagen.Cuisines))],
			datagen.Dishes[r.Intn(len(datagen.Dishes))])
	},
	func(r *rand.Rand) string {
		return fmt.Sprintf("%s books", datagen.BookSubjects[r.Intn(len(datagen.BookSubjects))])
	},
	func(r *rand.Rand) string {
		mi := r.Intn(len(datagen.CarMakes))
		return fmt.Sprintf("%s %s %s in %s",
			datagen.NoteWords[r.Intn(len(datagen.NoteWords))],
			datagen.CarMakes[mi],
			datagen.CarModels[mi][r.Intn(len(datagen.CarModels[mi]))],
			datagen.USCities[r.Intn(len(datagen.USCities))])
	},
}

// QueryPool returns n distinct query strings, deterministic in seed.
// Index order is the pool's popularity rank order (rank 0 first); a
// Zipfian sampler over indices therefore concentrates traffic on the
// pool's head exactly as search traffic concentrates on head queries.
func QueryPool(seed int64, n int) []string {
	if n <= 0 {
		return nil
	}
	r := rand.New(rand.NewSource(seed))
	pool := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i := 0; len(pool) < n; i++ {
		q := queryTemplates[i%len(queryTemplates)](r)
		if seen[q] {
			continue
		}
		seen[q] = true
		pool = append(pool, q)
	}
	return pool
}

// Sampler draws queries from a pool under Zipfian popularity: the
// pool's head ranks dominate, the tail appears rarely — the traffic
// shape of §3.2 pointed at the serving tier instead of at forms.
//
// A Sampler is NOT safe for concurrent use (it owns a single rng
// stream); give each load-generating worker its own, seeded
// distinctly, so workers draw independent streams deterministically.
type Sampler struct {
	pool []string
	z    *dist.Zipf
}

// NewSampler builds a Zipfian sampler over pool with exponent s
// (s = 0 is uniform; larger s concentrates harder on the head).
func NewSampler(seed int64, s float64, pool []string) *Sampler {
	return &Sampler{pool: pool, z: dist.NewZipf(seed, s, uint64(len(pool)))}
}

// Next draws one query.
func (s *Sampler) Next() string { return s.pool[s.z.Next()] }
