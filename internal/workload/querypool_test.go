package workload

import (
	"reflect"
	"strings"
	"testing"

	"deepweb/internal/query"
)

func TestQueryPoolDeterministicAndDistinct(t *testing.T) {
	a := QueryPool(7, 500)
	b := QueryPool(7, 500)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different pools")
	}
	if len(a) != 500 {
		t.Fatalf("pool size %d, want 500", len(a))
	}
	seen := map[string]bool{}
	for _, q := range a {
		if seen[q] {
			t.Fatalf("duplicate query %q", q)
		}
		seen[q] = true
		if strings.TrimSpace(q) == "" {
			t.Fatal("empty query in pool")
		}
	}
	if c := QueryPool(8, 500); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical pools")
	}
	if QueryPool(7, 0) != nil {
		t.Fatal("n=0 should return nil")
	}
}

func TestQueryPoolFiltered(t *testing.T) {
	// frac = 0 is the old pool exactly: BENCH_load artifacts produced
	// before the flag existed stay comparable.
	if !reflect.DeepEqual(QueryPoolFiltered(7, 500, 0), QueryPool(7, 500)) {
		t.Fatal("frac=0 diverged from QueryPool")
	}
	a := QueryPoolFiltered(7, 500, 0.25)
	if !reflect.DeepEqual(a, QueryPoolFiltered(7, 500, 0.25)) {
		t.Fatal("same seed produced different filtered pools")
	}
	filtered, seen := 0, map[string]bool{}
	for _, q := range a {
		if seen[q] {
			t.Fatalf("duplicate query %q", q)
		}
		seen[q] = true
		text, preds := query.Extract(q)
		if strings.TrimSpace(text) == "" {
			t.Fatalf("query %q has no keyword text", q)
		}
		if len(preds) > 0 {
			filtered++
		}
	}
	// 0.25 * 500 = 125 replacements; every replacement carries exactly
	// the predicates its template wrote, and base templates carry none.
	if filtered != 125 {
		t.Fatalf("filtered queries = %d, want 125", filtered)
	}
	// Replacements spread across ranks: some in the head, some in the tail.
	if _, preds := query.Extract(a[0]); len(preds) == 0 {
		t.Error("rank 0 should carry a filter (spread starts at the head)")
	}
	headHalf := 0
	for _, q := range a[:250] {
		if _, preds := query.Extract(q); len(preds) > 0 {
			headHalf++
		}
	}
	if headHalf == 0 || headHalf == filtered {
		t.Errorf("filtered queries not spread: %d of %d in the head half", headHalf, filtered)
	}
}

func TestSamplerZipfianSkew(t *testing.T) {
	pool := QueryPool(7, 100)
	s := NewSampler(1, 1.1, pool)
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[s.Next()]++
	}
	// The head query must dominate a mid-pool one decisively under
	// s = 1.1 (analytically ~50×; leave slack for sampling noise).
	head, mid := counts[pool[0]], counts[pool[50]]
	if head == 0 || head < 10*mid {
		t.Fatalf("no Zipfian skew: head %d draws vs rank-50 %d", head, mid)
	}
	// Determinism: same seed, same stream.
	s1, s2 := NewSampler(3, 1.1, pool), NewSampler(3, 1.1, pool)
	for i := 0; i < 100; i++ {
		if a, b := s1.Next(), s2.Next(); a != b {
			t.Fatalf("draw %d diverged: %q vs %q", i, a, b)
		}
	}
}
