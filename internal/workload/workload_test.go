package workload

import (
	"math"
	"testing"
)

func TestCalibrateRecoversPaperShares(t *testing.T) {
	// The paper's two data points — top 10k of (assumed) 200k forms
	// hold 50%, top 100k hold 85% — are jointly consistent with a
	// single Zipf exponent. Calibrate on the first and check the
	// second falls out.
	const nForms = 200000
	s := CalibrateExponent(nForms, 10000, PaperShares.Top10kOf200k)
	shares := SharesAt(FormImpact(s, nForms), []int{10000, 100000})
	if math.Abs(shares[0]-0.50) > 0.01 {
		t.Errorf("calibrated top-10k share = %.3f, want 0.50", shares[0])
	}
	if math.Abs(shares[1]-PaperShares.Top100kOf200k) > 0.05 {
		t.Errorf("top-100k share = %.3f, want ≈ 0.85 (paper)", shares[1])
	}
	if s < 0.3 || s > 1.5 {
		t.Errorf("calibrated exponent %v implausible", s)
	}
}

func TestSampleImpactsMatchesAnalytic(t *testing.T) {
	const nForms = 2000
	s := 0.9
	counts := SampleImpacts(3, s, nForms, 400000)
	sampled := SharesAt(counts, []int{100})
	analytic := SharesAt(FormImpact(s, nForms), []int{100})
	if math.Abs(sampled[0]-analytic[0]) > 0.05 {
		t.Errorf("sampled top-100 share %.3f vs analytic %.3f", sampled[0], analytic[0])
	}
}

func TestMixTailFraction(t *testing.T) {
	head := []string{"h1", "h2"}
	tail := []string{"t1", "t2", "t3"}
	qs := Mix(head, tail, 0.3, 1000)
	if len(qs) != 1000 {
		t.Fatalf("len = %d", len(qs))
	}
	nTail := 0
	for _, q := range qs {
		if q.Tail {
			nTail++
		}
	}
	if math.Abs(float64(nTail)/1000-0.3) > 0.02 {
		t.Errorf("tail fraction = %.3f, want 0.30", float64(nTail)/1000)
	}
}

func TestMixEdgeCases(t *testing.T) {
	if Mix(nil, nil, 0.5, 10) != nil {
		t.Error("no pools should give nil")
	}
	qs := Mix(nil, []string{"t"}, 0.0, 5)
	for _, q := range qs {
		if !q.Tail {
			t.Error("empty head pool must fall back to tail")
		}
	}
	if Mix([]string{"h"}, nil, 1.0, 3)[0].Tail {
		t.Error("empty tail pool must fall back to head")
	}
}

func TestGiniCoefficient(t *testing.T) {
	if g := GiniCoefficient([]float64{1, 1, 1, 1}); math.Abs(g) > 1e-9 {
		t.Errorf("uniform gini = %v, want 0", g)
	}
	g := GiniCoefficient([]float64{0, 0, 0, 100})
	if g < 0.7 {
		t.Errorf("concentrated gini = %v, want high", g)
	}
	if GiniCoefficient(nil) != 0 || GiniCoefficient([]float64{0, 0}) != 0 {
		t.Error("degenerate gini should be 0")
	}
	// Zipf traffic is in between.
	z := GiniCoefficient(FormImpact(0.9, 1000))
	if z < 0.3 || z > 0.95 {
		t.Errorf("zipf gini = %v", z)
	}
}

func TestAbsErr(t *testing.T) {
	if AbsErr(0.5, 0.85) != 0.35 || AbsErr(0.85, 0.5) != 0.35 {
		t.Error("AbsErr wrong")
	}
}
