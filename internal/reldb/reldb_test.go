package reldb

import (
	"reflect"
	"testing"
	"testing/quick"
)

func carsTable(t *testing.T) *Table {
	t.Helper()
	tbl, err := NewTable("cars", []Column{
		{"make", KindString},
		{"model", KindString},
		{"year", KindInt},
		{"price", KindInt},
		{"notes", KindText},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := []Row{
		{S("ford"), S("focus"), I(1993), I(2500), T("clean title, runs great")},
		{S("ford"), S("escort"), I(1997), I(1800), T("needs new tires")},
		{S("honda"), S("civic"), I(1993), I(3100), T("better mileage than the ford focus")},
		{S("honda"), S("accord"), I(2001), I(5200), T("one owner")},
		{S("toyota"), S("corolla"), I(1999), I(4100), T("reliable commuter")},
	}
	for _, r := range rows {
		if err := tbl.Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestNewTableRejectsDuplicateColumns(t *testing.T) {
	_, err := NewTable("bad", []Column{{"x", KindInt}, {"x", KindString}})
	if err == nil {
		t.Fatal("want error for duplicate column")
	}
}

func TestInsertValidation(t *testing.T) {
	tbl := MustNewTable("t", []Column{{"a", KindInt}})
	if err := tbl.Insert(Row{S("nope")}); err == nil {
		t.Error("want kind mismatch error")
	}
	if err := tbl.Insert(Row{I(1), I(2)}); err == nil {
		t.Error("want arity error")
	}
	if err := tbl.Insert(Row{I(1)}); err != nil {
		t.Errorf("valid insert failed: %v", err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len = %d, want 1", tbl.Len())
	}
}

func TestSelectEq(t *testing.T) {
	tbl := carsTable(t)
	got := tbl.Select(Eq("make", S("ford")))
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Select(make=ford) = %v, want [0 1]", got)
	}
	// Case-insensitive.
	got = tbl.Select(Eq("make", S("FORD")))
	if len(got) != 2 {
		t.Errorf("case-insensitive Eq got %v", got)
	}
}

func TestSelectConjunction(t *testing.T) {
	tbl := carsTable(t)
	got := tbl.Select(Eq("make", S("honda")), Eq("year", I(1993)))
	if !reflect.DeepEqual(got, []int{2}) {
		t.Errorf("conjunctive select = %v, want [2]", got)
	}
}

func TestSelectRange(t *testing.T) {
	tbl := carsTable(t)
	got := tbl.Select(Range("price", 2000, 4500))
	if !reflect.DeepEqual(got, []int{0, 2, 4}) {
		t.Errorf("price range = %v, want [0 2 4]", got)
	}
	got = tbl.Select(Range("price", OpenLow, 2000))
	if !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("open-low range = %v, want [1]", got)
	}
	got = tbl.Select(Range("price", 5000, OpenHigh))
	if !reflect.DeepEqual(got, []int{3}) {
		t.Errorf("open-high range = %v, want [3]", got)
	}
}

func TestSelectContains(t *testing.T) {
	tbl := carsTable(t)
	// The "ford focus" keyword query matches the Honda Civic row too —
	// the paper's §5.1 lost-semantics example, kept here as ground truth.
	got := tbl.Select(ContainsAll("ford", "focus"))
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("ContainsAll(ford,focus) = %v, want [0 2]", got)
	}
	got = tbl.Select(ContainsAll("1993"))
	if !reflect.DeepEqual(got, []int{0, 2}) {
		t.Errorf("ContainsAll(1993) = %v, want [0 2]", got)
	}
}

func TestTruePredicate(t *testing.T) {
	tbl := carsTable(t)
	if got := len(tbl.Select(True)); got != tbl.Len() {
		t.Errorf("True matched %d rows, want %d", got, tbl.Len())
	}
}

func TestCountAgreesWithSelect(t *testing.T) {
	tbl := carsTable(t)
	preds := []Pred{Eq("make", S("ford"))}
	if c, s := tbl.Count(preds...), len(tbl.Select(preds...)); c != s {
		t.Errorf("Count=%d, len(Select)=%d", c, s)
	}
}

func TestDistinctStrings(t *testing.T) {
	tbl := carsTable(t)
	got := tbl.DistinctStrings("make")
	want := []string{"ford", "honda", "toyota"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DistinctStrings = %v, want %v", got, want)
	}
	if tbl.DistinctStrings("nosuch") != nil {
		t.Error("unknown column should give nil")
	}
}

func TestDistinctInts(t *testing.T) {
	tbl := carsTable(t)
	got := tbl.DistinctInts("year")
	want := []int64{1993, 1997, 1999, 2001}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DistinctInts = %v, want %v", got, want)
	}
}

func TestMinMaxInt(t *testing.T) {
	tbl := carsTable(t)
	min, max, ok := tbl.MinMaxInt("price")
	if !ok || min != 1800 || max != 5200 {
		t.Errorf("MinMaxInt = %d,%d,%v; want 1800,5200,true", min, max, ok)
	}
	if _, _, ok := tbl.MinMaxInt("nosuch"); ok {
		t.Error("unknown column should not be ok")
	}
	empty := MustNewTable("e", []Column{{"x", KindInt}})
	if _, _, ok := empty.MinMaxInt("x"); ok {
		t.Error("empty table should not be ok")
	}
}

func TestRowText(t *testing.T) {
	tbl := carsTable(t)
	got := tbl.RowText(0)
	want := "ford focus 1993 2500 clean title, runs great"
	if got != want {
		t.Errorf("RowText = %q, want %q", got, want)
	}
}

func TestValueString(t *testing.T) {
	if I(42).String() != "42" || S("x").String() != "x" || T("y z").String() != "y z" {
		t.Error("Value.String misrendered")
	}
}

func TestValueEqual(t *testing.T) {
	if !I(1).Equal(I(1)) || I(1).Equal(I(2)) || I(1).Equal(S("1")) {
		t.Error("Value.Equal wrong")
	}
}

func TestKindString(t *testing.T) {
	if KindString.String() != "string" || KindInt.String() != "int" || KindText.String() != "text" {
		t.Error("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

// Property: Select with a range predicate returns exactly the rows whose
// value lies in the range, and the result is sorted.
func TestSelectRangeProperty(t *testing.T) {
	f := func(vals []int16, lo16, hi16 int16) bool {
		tbl := MustNewTable("p", []Column{{"v", KindInt}})
		for _, v := range vals {
			tbl.MustInsert(Row{I(int64(v))})
		}
		lo, hi := int64(lo16), int64(hi16)
		got := tbl.Select(Range("v", lo, hi))
		prev := -1
		for _, i := range got {
			if i <= prev {
				return false // not strictly increasing
			}
			prev = i
			v := tbl.Row(i)[0].Int
			if v < lo || v > hi {
				return false
			}
		}
		// Completeness: every in-range row is present.
		want := 0
		for _, v := range vals {
			if int64(v) >= lo && int64(v) <= hi {
				want++
			}
		}
		return len(got) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: conjunction is order-independent.
func TestSelectConjunctionCommutes(t *testing.T) {
	tbl := carsTable(t)
	f := func(lo, hi int16) bool {
		p1 := []Pred{Eq("make", S("ford")), Range("price", int64(lo), int64(hi))}
		p2 := []Pred{Range("price", int64(lo), int64(hi)), Eq("make", S("ford"))}
		return reflect.DeepEqual(tbl.Select(p1...), tbl.Select(p2...))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
