package reldb

import (
	"math"
	"strings"
)

// Pred is a predicate over a row. Predicates compose conjunctively in
// Select, mirroring what an HTML form submission expresses: every bound
// input constrains the result set, unbound inputs do not.
type Pred interface {
	// Match reports whether the row satisfies the predicate.
	Match(t *Table, r Row) bool
}

// eqPred matches rows whose column equals a value (case-insensitive for
// string/text columns, as form back-ends invariably are).
type eqPred struct {
	col string
	val Value
}

func (p eqPred) Match(t *Table, r Row) bool {
	i := t.ColIndex(p.col)
	if i < 0 {
		return false
	}
	v := r[i]
	if v.Kind == KindInt {
		return p.val.Kind == KindInt && v.Int == p.val.Int
	}
	return strings.EqualFold(v.Str, p.val.Str)
}

// Eq matches rows where col equals val.
func Eq(col string, val Value) Pred { return eqPred{col, val} }

// rangePred matches rows whose int column lies in [lo,hi].
type rangePred struct {
	col    string
	lo, hi int64
}

func (p rangePred) Match(t *Table, r Row) bool {
	i := t.ColIndex(p.col)
	if i < 0 || r[i].Kind != KindInt {
		return false
	}
	return r[i].Int >= p.lo && r[i].Int <= p.hi
}

// Range matches rows where lo ≤ col ≤ hi. Use OpenLow/OpenHigh for
// half-open ranges, which is what a form with only one of min/max filled
// submits.
func Range(col string, lo, hi int64) Pred { return rangePred{col, lo, hi} }

// OpenLow is the sentinel lower bound for a range with no minimum.
const OpenLow = math.MinInt64

// OpenHigh is the sentinel upper bound for a range with no maximum.
const OpenHigh = math.MaxInt64

// containsPred matches rows where every keyword occurs somewhere in the
// row's text rendering — the semantics of a site "search box" (§4.1).
type containsPred struct {
	keywords []string
}

func (p containsPred) Match(t *Table, r Row) bool {
	if len(p.keywords) == 0 {
		return true
	}
	var b strings.Builder
	for j, v := range r {
		if j > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(strings.ToLower(v.String()))
	}
	text := b.String()
	for _, kw := range p.keywords {
		if !strings.Contains(text, strings.ToLower(kw)) {
			return false
		}
	}
	return true
}

// ContainsAll matches rows containing every keyword in their text
// rendering, case-insensitively.
func ContainsAll(keywords ...string) Pred { return containsPred{keywords} }

// containsInPred restricts keyword matching to named columns — the
// semantics of a search box that queries titles/descriptions but not
// the catalog label.
type containsInPred struct {
	cols     []string
	keywords []string
}

func (p containsInPred) Match(t *Table, r Row) bool {
	if len(p.keywords) == 0 {
		return true
	}
	var b strings.Builder
	for _, col := range p.cols {
		if i := t.ColIndex(col); i >= 0 {
			b.WriteString(strings.ToLower(r[i].String()))
			b.WriteByte(' ')
		}
	}
	text := b.String()
	for _, kw := range p.keywords {
		if !strings.Contains(text, strings.ToLower(kw)) {
			return false
		}
	}
	return true
}

// ContainsAllIn matches rows whose named columns jointly contain every
// keyword, case-insensitively.
func ContainsAllIn(cols []string, keywords ...string) Pred {
	return containsInPred{cols: cols, keywords: keywords}
}

// True is the empty predicate; it matches every row. A form submitted
// with all inputs blank selects everything (sites typically reject this;
// the site generator models that separately).
var True Pred = containsPred{}

// Select returns the indices of rows satisfying all preds, in table
// order. Returning indices rather than rows keeps result identity stable
// for coverage accounting.
func (t *Table) Select(preds ...Pred) []int {
	var out []int
	for i, r := range t.rows {
		ok := true
		for _, p := range preds {
			if !p.Match(t, r) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	return out
}

// Count returns the number of rows satisfying all preds without
// materializing indices.
func (t *Table) Count(preds ...Pred) int {
	n := 0
	for _, r := range t.rows {
		ok := true
		for _, p := range preds {
			if !p.Match(t, r) {
				ok = false
				break
			}
		}
		if ok {
			n++
		}
	}
	return n
}
