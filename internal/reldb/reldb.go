// Package reldb implements the small in-memory relational store that
// backs every synthetic deep-web site in this reproduction. A form
// submission against a site becomes a conjunctive query over one of these
// tables; the ground truth it provides (exact row sets per query) is what
// the live web never offers and what lets the experiments measure true
// coverage (paper §5.2).
//
// The engine is intentionally minimal — typed columns, conjunctive
// selection with equality / range / keyword predicates, deterministic row
// order — because the paper's algorithms only ever see sites through
// HTML, and the store exists to generate that HTML and to score it.
package reldb

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind is the type of a column.
type Kind uint8

// Column kinds. Text columns hold free text searched by keyword;
// String columns hold categorical values matched by equality; Int
// columns hold numerics matched by equality or range.
const (
	KindString Kind = iota
	KindInt
	KindText
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindInt:
		return "int"
	case KindText:
		return "text"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Column describes one attribute of a table.
type Column struct {
	Name string
	Kind Kind
}

// Value is a dynamically-typed cell. Exactly one of Str/Int is
// meaningful, per Kind.
type Value struct {
	Kind Kind
	Str  string
	Int  int64
}

// S constructs a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I constructs an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// T constructs a free-text value.
func T(s string) Value { return Value{Kind: KindText, Str: s} }

// String renders the value the way the site generator prints it into
// HTML, so signatures computed over rendered pages line up with
// signatures computed over rows.
func (v Value) String() string {
	if v.Kind == KindInt {
		return strconv.FormatInt(v.Int, 10)
	}
	return v.Str
}

// Equal reports deep equality of two values.
func (v Value) Equal(o Value) bool {
	return v.Kind == o.Kind && v.Str == o.Str && v.Int == o.Int
}

// Row is one tuple, positionally aligned with the table's columns.
type Row []Value

// Table is a mutable relation: rows are appended at load and may later
// be updated, deleted or inserted to simulate content churn. Row ids
// are positional — a Delete shifts every later row down by one — which
// matches how the site generator addresses records (/record?id=N): the
// synthetic web re-renders from current table state on every request,
// so mutations are visible immediately and ground-truth oracles always
// describe the mutated site.
type Table struct {
	Name    string
	Columns []Column
	rows    []Row
	colIdx  map[string]int
}

// NewTable creates an empty table with the given schema. Column names
// must be unique.
func NewTable(name string, cols []Column) (*Table, error) {
	idx := make(map[string]int, len(cols))
	for i, c := range cols {
		if _, dup := idx[c.Name]; dup {
			return nil, fmt.Errorf("reldb: duplicate column %q in table %q", c.Name, name)
		}
		idx[c.Name] = i
	}
	return &Table{Name: name, Columns: cols, colIdx: idx}, nil
}

// MustNewTable is NewTable that panics on schema errors; for generators
// with static schemas.
func MustNewTable(name string, cols []Column) *Table {
	t, err := NewTable(name, cols)
	if err != nil {
		panic(err)
	}
	return t
}

// Insert appends a row after validating arity and kinds.
func (t *Table) Insert(r Row) error {
	if err := t.validate(r); err != nil {
		return err
	}
	t.rows = append(t.rows, r)
	return nil
}

// MustInsert is Insert that panics on error; for generators whose rows
// are constructed against the same static schema.
func (t *Table) MustInsert(r Row) {
	if err := t.Insert(r); err != nil {
		panic(err)
	}
}

// validate checks a row against the schema.
func (t *Table) validate(r Row) error {
	if len(r) != len(t.Columns) {
		return fmt.Errorf("reldb: row arity %d != schema arity %d in %q", len(r), len(t.Columns), t.Name)
	}
	for i, v := range r {
		if v.Kind != t.Columns[i].Kind {
			return fmt.Errorf("reldb: column %q wants %v, got %v", t.Columns[i].Name, t.Columns[i].Kind, v.Kind)
		}
	}
	return nil
}

// Update replaces row i after validating arity and kinds — one record
// changing in place (a price drop, a listing edit).
func (t *Table) Update(i int, r Row) error {
	if i < 0 || i >= len(t.rows) {
		return fmt.Errorf("reldb: update row %d of %d in %q", i, len(t.rows), t.Name)
	}
	if err := t.validate(r); err != nil {
		return err
	}
	t.rows[i] = r
	return nil
}

// Delete removes row i; every later row shifts down one id — a record
// disappearing from the site. The id reuse this implies is safe because
// nothing downstream holds row ids across mutations: pages are
// re-rendered and oracles re-evaluated from current state.
func (t *Table) Delete(i int) error {
	if i < 0 || i >= len(t.rows) {
		return fmt.Errorf("reldb: delete row %d of %d in %q", i, len(t.rows), t.Name)
	}
	t.rows = append(t.rows[:i], t.rows[i+1:]...)
	return nil
}

// Len returns the number of rows.
func (t *Table) Len() int { return len(t.rows) }

// Row returns row i. The returned slice must not be mutated.
func (t *Table) Row(i int) Row { return t.rows[i] }

// ColIndex returns the position of the named column, or -1.
func (t *Table) ColIndex(name string) int {
	if i, ok := t.colIdx[name]; ok {
		return i
	}
	return -1
}

// DistinctStrings returns the sorted distinct values of a string column.
// It is how the site generator populates select menus, and how tests
// obtain ground-truth value domains.
func (t *Table) DistinctStrings(col string) []string {
	i := t.ColIndex(col)
	if i < 0 {
		return nil
	}
	set := map[string]struct{}{}
	for _, r := range t.rows {
		set[r[i].Str] = struct{}{}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// DistinctInts returns the sorted distinct values of an int column.
func (t *Table) DistinctInts(col string) []int64 {
	i := t.ColIndex(col)
	if i < 0 {
		return nil
	}
	set := map[int64]struct{}{}
	for _, r := range t.rows {
		set[r[i].Int] = struct{}{}
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// MinMaxInt returns the extrema of an int column; ok is false for an
// unknown column or empty table.
func (t *Table) MinMaxInt(col string) (min, max int64, ok bool) {
	i := t.ColIndex(col)
	if i < 0 || len(t.rows) == 0 {
		return 0, 0, false
	}
	min, max = t.rows[0][i].Int, t.rows[0][i].Int
	for _, r := range t.rows[1:] {
		v := r[i].Int
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return min, max, true
}

// RowText renders a row as a flat text string (column values joined by
// spaces); it is the record text the site generator prints and the unit
// the IR index and signatures operate on.
func (t *Table) RowText(i int) string {
	var b strings.Builder
	for j, v := range t.rows[i] {
		if j > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.String())
	}
	return b.String()
}
