package webgen

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"

	"deepweb/internal/htmlx"
)

// HubHost is the virtual host of the hub page linking every site's
// homepage — the crawler's seed, standing in for "the rest of the web"
// that links to deep-web sites.
const HubHost = "hub.example"

// Web is a virtual internet: a set of Sites addressable by host name,
// dispatched in-process. It implements http.RoundTripper so the crawler
// and the surfacing engine use an ordinary *http.Client against it, and
// it counts requests per host — the measurement behind the site-load
// experiment (E2).
type Web struct {
	mu       sync.Mutex
	sites    map[string]*Site
	handlers map[string]http.Handler
	reqs     map[string]int
}

// NewWeb returns an empty virtual internet.
func NewWeb() *Web {
	return &Web{sites: map[string]*Site{}, handlers: map[string]http.Handler{}, reqs: map[string]int{}}
}

// AddSite registers a site under its spec's host.
func (w *Web) AddSite(s *Site) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.sites[s.Spec.Host] = s
	w.handlers[s.Spec.Host] = s
}

// AddHandler registers an arbitrary handler under a host — the hook for
// hostile/degenerate sites in failure-injection tests.
func (w *Web) AddHandler(host string, h http.Handler) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.handlers[host] = h
}

// Site returns the registered site for host, or nil.
func (w *Web) Site(host string) *Site {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.sites[host]
}

// Sites returns all registered sites sorted by host.
func (w *Web) Sites() []*Site {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]*Site, 0, len(w.sites))
	for _, s := range w.sites {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Spec.Host < out[j].Spec.Host })
	return out
}

// RoundTrip implements http.RoundTripper, serving the request from the
// owning site (or the hub) without touching the network.
func (w *Web) RoundTrip(req *http.Request) (*http.Response, error) {
	w.mu.Lock()
	w.reqs[req.URL.Host]++
	handler := w.handlers[req.URL.Host]
	w.mu.Unlock()

	rec := httptest.NewRecorder()
	switch {
	case req.URL.Host == HubHost:
		w.serveHub(rec)
	case handler != nil:
		// Rebuild the request so handlers see path+query the usual way.
		inner := req.Clone(req.Context())
		inner.RequestURI = ""
		handler.ServeHTTP(rec, inner)
	default:
		http.NotFound(rec, req)
	}
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

func (w *Web) serveHub(rw http.ResponseWriter) {
	w.mu.Lock()
	hosts := make([]string, 0, len(w.sites))
	for h := range w.sites {
		hosts = append(hosts, h)
	}
	w.mu.Unlock()
	sort.Strings(hosts)
	var b strings.Builder
	b.WriteString("<h1>directory of sites</h1><ul>")
	for _, h := range hosts {
		fmt.Fprintf(&b, `<li><a href="http://%s/">%s</a></li>`, h, htmlx.EscapeText(h))
	}
	b.WriteString("</ul>")
	writeHTML(rw, "site directory", b.String())
}

// Client returns an *http.Client whose transport is this virtual
// internet.
func (w *Web) Client() *http.Client {
	return &http.Client{Transport: w}
}

// Requests returns the number of requests served for host since the last
// ResetCounts.
func (w *Web) Requests(host string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.reqs[host]
}

// TotalRequests sums request counts across hosts.
func (w *Web) TotalRequests() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := 0
	for _, n := range w.reqs {
		total += n
	}
	return total
}

// ResetCounts zeroes the per-host request counters.
func (w *Web) ResetCounts() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.reqs = map[string]int{}
}

// ReadBody drains and closes an http.Response body; every fetch path
// funnels through it so tests exercise one implementation.
func ReadBody(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(b), nil
}
