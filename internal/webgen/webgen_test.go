package webgen

import (
	"net/url"
	"strconv"
	"strings"
	"testing"

	"deepweb/internal/htmlx"
	"deepweb/internal/reldb"
	"deepweb/internal/textutil"
)

func buildTestSite(t *testing.T, domain string, rows int) *Site {
	t.Helper()
	s, err := BuildSite(domain, 0, 42, rows)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func get(t *testing.T, w *Web, u string) string {
	t.Helper()
	resp, err := w.Client().Get(u)
	if err != nil {
		t.Fatalf("GET %s: %v", u, err)
	}
	body, err := ReadBody(resp)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestSiteHomepageLinksFormAndSeeds(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "usedcars", 100)
	w.AddSite(s)
	body := get(t, w, s.HomeURL())
	doc := htmlx.Parse(body)
	base, _ := url.Parse(s.HomeURL())
	links := htmlx.ExtractLinks(doc, base)
	foundForm, records := false, 0
	for _, l := range links {
		if strings.HasSuffix(l, "/search") {
			foundForm = true
		}
		if strings.Contains(l, "/record?id=") {
			records++
		}
	}
	if !foundForm {
		t.Error("homepage does not link the form")
	}
	if records != s.Spec.SeedRecords {
		t.Errorf("homepage links %d records, want %d", records, s.Spec.SeedRecords)
	}
}

func TestFormPageParsesBack(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "usedcars", 100)
	w.AddSite(s)
	body := get(t, w, s.FormURL())
	forms := htmlx.ExtractForms(htmlx.Parse(body))
	if len(forms) != 1 {
		t.Fatalf("want 1 form, got %d", len(forms))
	}
	f := forms[0]
	if f.Method != "get" || f.Action != "/results" {
		t.Errorf("form meta wrong: %+v", f)
	}
	names := map[string]string{}
	for _, in := range f.Inputs {
		names[in.Name] = in.Kind
	}
	if names["make"] != "select" || names["minprice"] != "text" || names["zip"] != "text" {
		t.Errorf("inputs wrong: %v", names)
	}
	// The select must offer the table's distinct makes plus an "any".
	for _, in := range f.Inputs {
		if in.Name == "make" {
			if len(in.Options) < 3 {
				t.Errorf("make select has %d options", len(in.Options))
			}
			if in.Options[0].Label != "any" {
				t.Errorf("first option = %+v, want the empty 'any'", in.Options[0])
			}
		}
	}
}

func TestResultsMatchGroundTruth(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "usedcars", 200)
	w.AddSite(s)
	mk := s.Table.DistinctStrings("make")[0]
	params := url.Values{"make": {mk}}
	truth := s.MatchingRows(params)
	body := get(t, w, "http://"+s.Spec.Host+"/results?"+params.Encode())
	if !strings.Contains(body, "results found") {
		t.Fatalf("no result count in page: %s", body[:120])
	}
	// Count of record links across all pages must equal ground truth.
	total := 0
	next := "http://" + s.Spec.Host + "/results?" + params.Encode()
	for next != "" {
		page := get(t, w, next)
		doc := htmlx.Parse(page)
		base, _ := url.Parse(next)
		next = ""
		for _, l := range htmlx.ExtractLinks(doc, base) {
			if strings.Contains(l, "/record?id=") {
				total++
			} else if strings.Contains(l, "start=") {
				next = l
			}
		}
	}
	if total != len(truth) {
		t.Errorf("paged record links = %d, ground truth = %d", total, len(truth))
	}
}

func TestEmptySubmissionRejected(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "usedcars", 50)
	w.AddSite(s)
	body := get(t, w, "http://"+s.Spec.Host+"/results")
	if !strings.Contains(body, "please enter a search") {
		t.Errorf("empty submission not rejected: %s", body[:160])
	}
	if rows := s.MatchingRows(url.Values{}); rows != nil {
		t.Errorf("oracle returned %d rows for empty submission", len(rows))
	}
}

func TestInvalidNumericInput(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "usedcars", 50)
	w.AddSite(s)
	body := get(t, w, "http://"+s.Spec.Host+"/results?minprice=banana")
	if !strings.Contains(body, "invalid input") {
		t.Errorf("bad numeric input not flagged: %s", body[:160])
	}
}

func TestRangeSemantics(t *testing.T) {
	s := buildTestSite(t, "usedcars", 300)
	lo, hi := int64(2000), int64(8000)
	got := s.MatchingRows(url.Values{"minprice": {"2000"}, "maxprice": {"8000"}})
	want := s.Table.Select(reldb.Range("price", lo, hi))
	if len(got) != len(want) {
		t.Errorf("range query rows = %d, want %d", len(got), len(want))
	}
	// Inverted range selects nothing.
	if rows := s.MatchingRows(url.Values{"minprice": {"8000"}, "maxprice": {"2000"}}); len(rows) != 0 {
		t.Errorf("inverted range returned %d rows", len(rows))
	}
}

func TestKeywordSearchBox(t *testing.T) {
	s := buildTestSite(t, "library", 200)
	rows := s.MatchingRows(url.Values{"q": {"history"}})
	if len(rows) == 0 {
		t.Fatal("keyword search found nothing for a common subject")
	}
	for _, id := range rows {
		if !strings.Contains(strings.ToLower(s.Table.RowText(id)), "history") {
			t.Fatalf("row %d does not contain keyword", id)
		}
	}
}

// RowSetSignature is the ground-truth counterpart of the surfacer's
// result-page fingerprints: independent of row order and duplication,
// and distinct for distinct record sets.
func TestRowSetSignatureGroundTruth(t *testing.T) {
	s := buildTestSite(t, "usedcars", 200)
	makes := s.Table.DistinctStrings("make")
	if len(makes) < 2 {
		t.Fatal("need at least two makes")
	}
	a := s.MatchingRows(url.Values{"make": {makes[0]}})
	b := s.MatchingRows(url.Values{"make": {makes[1]}})
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("empty ground-truth result sets")
	}

	// Order and duplication do not change the fingerprint.
	perm := append([]int(nil), a...)
	for i, j := 0, len(perm)-1; i < j; i, j = i+1, j-1 {
		perm[i], perm[j] = perm[j], perm[i]
	}
	perm = append(perm, a[0], a[len(a)-1])
	if s.RowSetSignature(a) != s.RowSetSignature(perm) {
		t.Error("signature depends on row order/duplication")
	}

	// Different record sets sign differently.
	if s.RowSetSignature(a) == s.RowSetSignature(b) {
		t.Errorf("result sets for make=%q and make=%q collide", makes[0], makes[1])
	}

	// The streamed fingerprint equals signing the concatenated content
	// token sets directly.
	var toks []string
	seen := map[int]bool{}
	for _, id := range a {
		if seen[id] {
			continue
		}
		seen[id] = true
		toks = append(toks, textutil.ContentTokens(s.Table.RowText(id))...)
	}
	if got, want := textutil.SignatureOfTokens(toks), s.RowSetSignature(a); got != want {
		t.Errorf("SignatureOfTokens = %v, RowSetSignature = %v", got, want)
	}
}

func TestRecordPageHasTable(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "stores", 20)
	w.AddSite(s)
	body := get(t, w, "http://"+s.Spec.Host+"/record?id=0")
	tables := htmlx.ExtractTables(htmlx.Parse(body))
	if len(tables) != 1 {
		t.Fatalf("record page has %d tables", len(tables))
	}
	if len(tables[0].Headers) != len(s.Table.Columns) {
		t.Errorf("record table headers = %v", tables[0].Headers)
	}
}

func TestRecordPageChainsToNext(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "stores", 5)
	w.AddSite(s)
	body := get(t, w, "http://"+s.Spec.Host+"/record?id=3")
	if !strings.Contains(body, "/record?id=4") {
		t.Error("record page missing next-record link")
	}
	last := get(t, w, "http://"+s.Spec.Host+"/record?id=4")
	if strings.Contains(last, "/record?id=5") {
		t.Error("last record should not link beyond table")
	}
}

func TestRecordPage404(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "stores", 5)
	w.AddSite(s)
	resp, err := w.Client().Get("http://" + s.Spec.Host + "/record?id=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestPostSiteRefusesNothingButIsPost(t *testing.T) {
	s := buildTestSite(t, "govdocs", 50)
	p := AsPost(s)
	if p.Spec.Method != "post" || !strings.HasPrefix(p.Spec.Host, "post-") {
		t.Errorf("AsPost spec wrong: %+v", p.Spec)
	}
	w := NewWeb()
	w.AddSite(p)
	body := get(t, w, p.FormURL())
	forms := htmlx.ExtractForms(htmlx.Parse(body))
	if forms[0].Method != "post" {
		t.Errorf("rendered method = %q", forms[0].Method)
	}
	// POST submission works.
	resp, err := w.Client().Post("http://"+p.Spec.Host+"/results", "application/x-www-form-urlencoded",
		strings.NewReader("topic="+url.QueryEscape(p.Table.DistinctStrings("topic")[0])))
	if err != nil {
		t.Fatal(err)
	}
	bodyStr, _ := ReadBody(resp)
	if !strings.Contains(bodyStr, "results found") {
		t.Error("POST submission did not return results")
	}
}

func TestWebRequestAccounting(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "recipes", 30)
	w.AddSite(s)
	w.ResetCounts()
	get(t, w, s.HomeURL())
	get(t, w, s.FormURL())
	if got := w.Requests(s.Spec.Host); got != 2 {
		t.Errorf("Requests = %d, want 2", got)
	}
	if got := w.TotalRequests(); got != 2 {
		t.Errorf("TotalRequests = %d, want 2", got)
	}
	w.ResetCounts()
	if w.TotalRequests() != 0 {
		t.Error("ResetCounts did not zero")
	}
}

func TestHubLinksAllSites(t *testing.T) {
	web, err := BuildWorld(WorldConfig{Seed: 1, SitesPerDom: 2, RowsPerSite: 20})
	if err != nil {
		t.Fatal(err)
	}
	body := get(t, web, "http://"+HubHost+"/")
	doc := htmlx.Parse(body)
	base, _ := url.Parse("http://" + HubHost + "/")
	links := htmlx.ExtractLinks(doc, base)
	if want := len(Domains) * 2; len(links) != want {
		t.Errorf("hub links %d sites, want %d", len(links), want)
	}
}

func TestBuildWorldPostFraction(t *testing.T) {
	web, err := BuildWorld(WorldConfig{Seed: 1, SitesPerDom: 2, RowsPerSite: 10, PostFraction: 3})
	if err != nil {
		t.Fatal(err)
	}
	posts := 0
	for _, s := range web.Sites() {
		if s.Spec.Method == "post" {
			posts++
		}
	}
	if posts == 0 {
		t.Error("no POST sites generated")
	}
}

func TestUnknownHost404(t *testing.T) {
	w := NewWeb()
	resp, err := w.Client().Get("http://nosuch.example/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("status = %d, want 404", resp.StatusCode)
	}
}

func TestUnknownDomainError(t *testing.T) {
	if _, err := BuildSite("nosuch", 0, 1, 10); err == nil {
		t.Error("want error for unknown domain")
	}
}

func TestRangePairsGroundTruth(t *testing.T) {
	s := buildTestSite(t, "usedcars", 10)
	pairs := s.Spec.RangePairs()
	if len(pairs) != 1 || pairs[0] != [2]string{"minprice", "maxprice"} {
		t.Errorf("RangePairs = %v", pairs)
	}
	typed := s.Spec.TypedInputs()
	if typed["zip"] != "zipcode" || typed["minprice"] != "price" {
		t.Errorf("TypedInputs = %v", typed)
	}
	if s.Spec.HasSearchBox() {
		t.Error("usedcars should have no search box")
	}
	lib := buildTestSite(t, "library", 10)
	if !lib.Spec.HasSearchBox() {
		t.Error("library should have a search box")
	}
}

func TestAllDomainsBuildAndServe(t *testing.T) {
	w := NewWeb()
	for _, dom := range Domains {
		s, err := BuildSite(dom, 0, 7, 30)
		if err != nil {
			t.Fatalf("%s: %v", dom, err)
		}
		w.AddSite(s)
		body := get(t, w, s.FormURL())
		forms := htmlx.ExtractForms(htmlx.Parse(body))
		if len(forms) != 1 {
			t.Errorf("%s: form page has %d forms", dom, len(forms))
		}
	}
}

// Row mutations are visible on the very next request — pages are
// rendered from current table state — and the ground-truth oracle
// follows along.
func TestSiteMutationVisibleImmediately(t *testing.T) {
	w := NewWeb()
	s := buildTestSite(t, "usedcars", 20)
	w.AddSite(s)
	n := s.Table.Len()

	clone := append(reldb.Row(nil), s.Table.Row(0)...)
	if err := s.InsertRow(clone); err != nil {
		t.Fatal(err)
	}
	if s.Table.Len() != n+1 {
		t.Fatalf("insert: %d rows, want %d", s.Table.Len(), n+1)
	}
	lastRecord := get(t, w, "http://"+s.Spec.Host+"/record?id="+strconv.Itoa(n))
	if !strings.Contains(lastRecord, s.Table.Row(0)[0].String()) {
		t.Error("inserted record not served")
	}

	if err := s.DeleteRow(n); err != nil {
		t.Fatal(err)
	}
	if s.Table.Len() != n {
		t.Fatalf("delete: %d rows, want %d", s.Table.Len(), n)
	}

	updated := append(reldb.Row(nil), s.Table.Row(1)...)
	if err := s.UpdateRow(3, updated); err != nil {
		t.Fatal(err)
	}
	if !s.Table.Row(3)[0].Equal(updated[0]) {
		t.Error("update not applied")
	}

	if err := s.UpdateRow(999, updated); err == nil {
		t.Error("out-of-range update accepted")
	}
	if err := s.DeleteRow(-1); err == nil {
		t.Error("out-of-range delete accepted")
	}
	if err := s.InsertRow(reldb.Row{reldb.S("wrong arity")}); err == nil {
		t.Error("bad-arity insert accepted")
	}
}

// TableSignature must move under every mutation kind — including the
// ones the set-semantics RowSetSignature is blind to (deleting one of
// two identical rows, reordering) — and must be a pure function of
// table content, so two identically built-and-churned sites agree.
func TestTableSignatureSensitivity(t *testing.T) {
	fresh := func() *Site { return buildTestSite(t, "usedcars", 20) }

	s := fresh()
	base := s.TableSignature()
	if base != fresh().TableSignature() {
		t.Fatal("signature differs between identical sites")
	}

	s.UpdateRow(5, append(reldb.Row(nil), s.Table.Row(6)...))
	if s.TableSignature() == base {
		t.Error("update did not move the signature")
	}

	s = fresh()
	s.DeleteRow(0)
	if s.TableSignature() == base {
		t.Error("delete did not move the signature")
	}

	// The set-blind case: duplicate a row, sign, then delete one copy.
	s = fresh()
	s.InsertRow(append(reldb.Row(nil), s.Table.Row(0)...))
	dup := s.TableSignature()
	s.DeleteRow(s.Table.Len() - 1)
	if s.TableSignature() == dup {
		t.Error("deleting one of two identical rows did not move the signature")
	}
	if s.TableSignature() != base {
		t.Error("undoing the duplication did not restore the signature")
	}
}

// Churn with one seed is deterministic across identically built worlds
// — the property the refresh pipeline's scratch-equivalence rests on.
func TestChurnDeterministic(t *testing.T) {
	build := func() *Web {
		w, err := BuildWorld(WorldConfig{Seed: 11, SitesPerDom: 1, RowsPerSite: 30})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	a, b, pristine := build(), build(), build()
	Churn(a, 8, 77)
	Churn(b, 8, 77)
	moved := 0
	for i, sa := range a.Sites() {
		if sa.TableSignature() != b.Sites()[i].TableSignature() {
			t.Errorf("%s: churned tables diverged", sa.Spec.Host)
		}
		if sa.TableSignature() != pristine.Sites()[i].TableSignature() {
			moved++
		}
	}
	if moved == 0 {
		t.Error("churn mutated nothing")
	}
}
