// Package webgen generates the synthetic deep web the experiments run
// against: sites backed by reldb tables, each serving a homepage, an
// HTML search form, result pages with paging, and per-record detail
// pages, over an in-process virtual internet (no sockets).
//
// Each site carries ground-truth metadata (which column backs which
// input, what type an input is, which input pairs form a range) that the
// paper's algorithms must *rediscover* from HTML alone; experiments
// score them against this truth.
package webgen

import "fmt"

// Op is the query semantics of one form input, as implemented by the
// site's back end.
type Op uint8

// Input operations.
const (
	// OpEq filters rows whose column equals the submitted value.
	OpEq Op = iota
	// OpRangeMin filters rows whose int column is ≥ the value.
	OpRangeMin
	// OpRangeMax filters rows whose int column is ≤ the value.
	OpRangeMax
	// OpKeyword filters rows containing all submitted words anywhere in
	// their text (a site "search box", §4.1).
	OpKeyword
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "eq"
	case OpRangeMin:
		return "rangemin"
	case OpRangeMax:
		return "rangemax"
	case OpKeyword:
		return "keyword"
	default:
		return fmt.Sprintf("op(%d)", uint8(o))
	}
}

// Control is the HTML control rendered for an input.
type Control uint8

// Control kinds.
const (
	ControlText Control = iota
	ControlSelect
)

// InputSpec declares one input of a site's search form.
type InputSpec struct {
	Name    string // HTML input name
	Label   string // rendered <label>
	Column  string // backing table column ("" for OpKeyword = all columns)
	Control Control
	Op      Op
	// TypeHint is ground truth for the typed-input experiments (E5):
	// "zipcode", "city", "price", "date", or "" for untyped.
	TypeHint string
	// MaxOptions caps rendered select options (0 = all distinct values).
	MaxOptions int
	// KeywordCols restricts an OpKeyword input to named columns; empty
	// means the whole row (a catalog site searches titles and
	// descriptions, not its own catalog label).
	KeywordCols []string
}

// SiteSpec declares a whole site.
type SiteSpec struct {
	Host   string // virtual host name, e.g. "usedcars-00.example"
	Domain string // vertical this site belongs to, e.g. "usedcars"
	Title  string
	Method string // "get" or "post" — POST sites are unreachable to the surfacer (§3.2)
	// PageSize is results per page; further results are behind "next"
	// links. It drives the indexability experiment (E9).
	PageSize int
	// RequireBound rejects submissions with no bound inputs (most real
	// sites refuse an empty search).
	RequireBound bool
	// SeedRecords is how many record pages the homepage links directly
	// (the "already indexed pages" seed keywords are drawn from, §4.1).
	SeedRecords int
	Inputs      []InputSpec
	// HeaderAliases renames columns when record tables are rendered
	// (display only; forms and queries are unaffected). Different sites
	// of one vertical naming the same column differently is what gives
	// the §6 synonym service something to find.
	HeaderAliases map[string]string
}

// headerName returns the rendered header for a column.
func (s SiteSpec) headerName(col string) string {
	if alias, ok := s.HeaderAliases[col]; ok {
		return alias
	}
	return col
}

// RangePairs returns the ground-truth (min,max) input-name pairs of the
// form: inputs with OpRangeMin/OpRangeMax over the same column.
func (s SiteSpec) RangePairs() [][2]string {
	var out [][2]string
	for _, a := range s.Inputs {
		if a.Op != OpRangeMin {
			continue
		}
		for _, b := range s.Inputs {
			if b.Op == OpRangeMax && b.Column == a.Column {
				out = append(out, [2]string{a.Name, b.Name})
			}
		}
	}
	return out
}

// TypedInputs returns ground-truth input name → type hint for inputs
// carrying a type.
func (s SiteSpec) TypedInputs() map[string]string {
	out := map[string]string{}
	for _, in := range s.Inputs {
		if in.TypeHint != "" {
			out[in.Name] = in.TypeHint
		}
	}
	return out
}

// HasSearchBox reports whether any input is a keyword search box.
func (s SiteSpec) HasSearchBox() bool {
	for _, in := range s.Inputs {
		if in.Op == OpKeyword {
			return true
		}
	}
	return false
}
