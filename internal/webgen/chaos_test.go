package webgen

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
)

// plainRT answers every request with 200 and a fixed body.
type plainRT struct{ body string }

func (p *plainRT) RoundTrip(req *http.Request) (*http.Response, error) {
	return &http.Response{
		StatusCode: 200,
		Header:     http.Header{},
		Body:       io.NopCloser(strings.NewReader(p.body)),
		Request:    req,
	}, nil
}

func chaosGet(t *testing.T, c *Chaos, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.RoundTrip(req)
}

// outcomeOf reduces a roundtrip to a comparable label.
func outcomeOf(resp *http.Response, err error) string {
	if err != nil {
		return "err"
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.Status + "|" + string(body)
}

// TestChaosDeterministicAcrossInterleavings pins the property the
// convergence test relies on: per-host fault streams depend only on
// (seed, host, per-host request ordinal), never on how requests from
// different hosts interleave globally.
func TestChaosDeterministicAcrossInterleavings(t *testing.T) {
	hosts := []string{"a.example", "b.example", "c.example"}
	build := func() *Chaos {
		c := NewChaos(&plainRT{body: "0123456789abcdef"}, 42)
		for _, h := range hosts {
			c.SetProfile(h, FaultProfile{
				FailFirst: 2,
				FailWith:  Fault503,
				P:         map[FaultKind]float64{Fault503: 0.3, FaultReset: 0.2, FaultTruncate: 0.2},
			})
		}
		return c
	}

	const perHost = 20
	// Order 1: host-major. Order 2: round-robin.
	run := func(c *Chaos, roundRobin bool) map[string][]string {
		out := make(map[string][]string)
		if roundRobin {
			for i := 0; i < perHost; i++ {
				for _, h := range hosts {
					out[h] = append(out[h], outcomeOf(chaosGet(t, c, "http://"+h+"/p")))
				}
			}
		} else {
			for _, h := range hosts {
				for i := 0; i < perHost; i++ {
					out[h] = append(out[h], outcomeOf(chaosGet(t, c, "http://"+h+"/p")))
				}
			}
		}
		return out
	}

	seq := run(build(), false)
	rr := run(build(), true)
	for _, h := range hosts {
		for i := range seq[h] {
			if seq[h][i] != rr[h][i] {
				t.Fatalf("host %s request %d: outcome %q (host-major) != %q (round-robin)", h, i, seq[h][i], rr[h][i])
			}
		}
	}
}

func TestChaosFlapRecovers(t *testing.T) {
	c := NewChaos(&plainRT{body: "fine"}, 1)
	c.SetProfile("a.example", FaultProfile{FailFirst: 3, FailWith: Fault503})
	for i := 1; i <= 3; i++ {
		resp, err := chaosGet(t, c, "http://a.example/")
		if err != nil || resp.StatusCode != 503 {
			t.Fatalf("request %d: resp=%v err=%v, want injected 503 during flap window", i, resp, err)
		}
		resp.Body.Close()
	}
	resp, err := chaosGet(t, c, "http://a.example/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("post-flap request: resp=%v err=%v, want recovery", resp, err)
	}
	resp.Body.Close()
	if got := c.Injected("a.example"); got != 3 {
		t.Fatalf("Injected = %d, want 3", got)
	}
}

func TestChaosFaultKinds(t *testing.T) {
	inner := &plainRT{body: "0123456789abcdef"}

	kind := func(k FaultKind) *Chaos {
		c := NewChaos(inner, 7)
		c.SetProfile("a.example", FaultProfile{FailFirst: 1, FailWith: k})
		return c
	}

	if resp, err := chaosGet(t, kind(Fault429), "http://a.example/"); err != nil || resp.StatusCode != 429 {
		t.Fatalf("429 fault: resp=%v err=%v", resp, err)
	}

	if _, err := chaosGet(t, kind(FaultTimeout), "http://a.example/"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout fault err = %v, want wrapped deadline-exceeded", err)
	}

	_, err := chaosGet(t, kind(FaultReset), "http://a.example/")
	var op *net.OpError
	if !errors.As(err, &op) {
		t.Fatalf("reset fault err = %v, want *net.OpError", err)
	}

	resp, err := chaosGet(t, kind(FaultTruncate), "http://a.example/")
	if err != nil {
		t.Fatalf("truncate fault must fail on body read, not on roundtrip: %v", err)
	}
	body, rerr := io.ReadAll(resp.Body)
	if !errors.Is(rerr, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated body read err = %v, want unexpected EOF", rerr)
	}
	if len(body) != 8 {
		t.Fatalf("truncated body delivered %d bytes of 16, want half", len(body))
	}

	resp, err = chaosGet(t, kind(FaultGarble), "http://a.example/")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("garble fault: resp=%v err=%v, want a clean 200", resp, err)
	}
	body, _ = io.ReadAll(resp.Body)
	if string(body) == "0123456789abcdef" || len(body) != 16 {
		t.Fatalf("garbled body = %q, want same length, different content", body)
	}
}

func TestChaosUnprofiledHostPassesThrough(t *testing.T) {
	c := NewChaos(&plainRT{body: "clean"}, 9)
	c.SetProfile("a.example", FaultProfile{FailFirst: 100, FailWith: Fault503})
	for i := 0; i < 5; i++ {
		resp, err := chaosGet(t, c, "http://other.example/")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("unprofiled host: resp=%v err=%v, want untouched passthrough", resp, err)
		}
		resp.Body.Close()
	}
	if got := c.Injected("other.example"); got != 0 {
		t.Fatalf("Injected(other) = %d, want 0", got)
	}
}

func TestApplyDefaultProfilesCoversArchetypes(t *testing.T) {
	hosts := make([]string, 16)
	for i := range hosts {
		hosts[i] = string(rune('a'+i)) + ".example"
	}
	c := NewChaos(&plainRT{body: "x"}, 3)
	c.ApplyDefaultProfiles(hosts)
	profiled := 0
	for _, h := range hosts {
		c.mu.Lock()
		_, ok := c.profiles[h]
		c.mu.Unlock()
		if ok {
			profiled++
		}
	}
	// One host per cycle of 8 (slot 7) stays healthy: 14 of 16 profiled.
	if profiled != 14 {
		t.Fatalf("profiled = %d of 16, want 14 (every 8th host healthy)", profiled)
	}
}
