package webgen

import (
	"fmt"
	"sort"

	"deepweb/internal/datagen"
	"deepweb/internal/reldb"
)

// Domains lists the verticals the generator can build, mirroring the
// paper's examples: classifieds (§3.1), store locators and government
// portals (§3.2/§4.1), library text databases (§4.1), the
// database-selection media site (§4.2) and faculty bios (§3.2's
// fortuitous-query example).
var Domains = []string{
	"usedcars", "realestate", "jobs", "library", "govdocs",
	"stores", "media", "faculty", "recipes",
}

// BuildSite constructs site number idx of a domain with a backing table
// of n rows. Hosts are "<domain>-<idx>.example". The spec's ground-truth
// labels (TypeHint, range pairs) describe the site's true back end.
func BuildSite(domain string, idx int, seed int64, n int) (*Site, error) {
	host := fmt.Sprintf("%s-%02d.example", domain, idx)
	var (
		table *reldb.Table
		spec  SiteSpec
	)
	switch domain {
	case "usedcars":
		table = datagen.UsedCars(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "quality used cars " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "make", Label: "Make", Column: "make", Control: ControlSelect, Op: OpEq},
				{Name: "model", Label: "Model", Column: "model", Control: ControlText, Op: OpEq},
				{Name: "minprice", Label: "Min Price", Column: "price", Control: ControlText, Op: OpRangeMin, TypeHint: "price"},
				{Name: "maxprice", Label: "Max Price", Column: "price", Control: ControlText, Op: OpRangeMax, TypeHint: "price"},
				{Name: "zip", Label: "Zip Code", Column: "zip", Control: ControlText, Op: OpEq, TypeHint: "zipcode"},
			},
		}
	case "realestate":
		table = datagen.RealEstate(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "homes and rentals " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "city", Label: "City", Column: "city", Control: ControlText, Op: OpEq, TypeHint: "city"},
				{Name: "type", Label: "Property Type", Column: "type", Control: ControlSelect, Op: OpEq},
				{Name: "bedrooms", Label: "Bedrooms", Column: "bedrooms", Control: ControlSelect, Op: OpEq},
				{Name: "minprice", Label: "Price From", Column: "price", Control: ControlText, Op: OpRangeMin, TypeHint: "price"},
				{Name: "maxprice", Label: "Price To", Column: "price", Control: ControlText, Op: OpRangeMax, TypeHint: "price"},
			},
		}
	case "jobs":
		table = datagen.Jobs(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "job listings " + host,
			Method: "get", PageSize: 15, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "title", Label: "Job Title", Column: "title", Control: ControlSelect, Op: OpEq},
				{Name: "state", Label: "State", Column: "state", Control: ControlSelect, Op: OpEq},
				{Name: "city", Label: "City", Column: "city", Control: ControlText, Op: OpEq, TypeHint: "city"},
				{Name: "minsalary", Label: "Salary From", Column: "salary", Control: ControlText, Op: OpRangeMin, TypeHint: "price"},
				{Name: "maxsalary", Label: "Salary To", Column: "salary", Control: ControlText, Op: OpRangeMax, TypeHint: "price"},
			},
		}
	case "library":
		table = datagen.Library(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "public library catalog " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "q", Label: "Keywords", Control: ControlText, Op: OpKeyword},
				{Name: "subject", Label: "Subject", Column: "subject", Control: ControlSelect, Op: OpEq},
				{Name: "year", Label: "Year", Column: "year", Control: ControlText, Op: OpEq, TypeHint: "date"},
			},
		}
	case "govdocs":
		table = datagen.GovDocs(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "public records portal " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "agency", Label: "Agency", Column: "agency", Control: ControlSelect, Op: OpEq},
				{Name: "topic", Label: "Topic", Column: "topic", Control: ControlSelect, Op: OpEq},
				{Name: "year", Label: "Year", Column: "year", Control: ControlText, Op: OpEq, TypeHint: "date"},
				{Name: "q", Label: "Search", Control: ControlText, Op: OpKeyword},
			},
		}
	case "stores":
		table = datagen.Stores(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "store locator " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "zip", Label: "Zip Code", Column: "zip", Control: ControlText, Op: OpEq, TypeHint: "zipcode"},
				{Name: "state", Label: "State", Column: "state", Control: ControlSelect, Op: OpEq},
			},
		}
	case "media":
		table = datagen.MediaCatalog(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "media superstore " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "category", Label: "Catalog", Column: "category", Control: ControlSelect, Op: OpEq},
				{Name: "q", Label: "Search", Control: ControlText, Op: OpKeyword,
					KeywordCols: []string{"title", "description"}},
			},
		}
	case "faculty":
		table = datagen.Faculty(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "university directory " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 3,
			Inputs: []InputSpec{
				{Name: "department", Label: "Department", Column: "department", Control: ControlSelect, Op: OpEq},
			},
		}
	case "recipes":
		table = datagen.Recipes(seed, n)
		spec = SiteSpec{
			Host: host, Domain: domain, Title: "recipe box " + host,
			Method: "get", PageSize: 10, RequireBound: true, SeedRecords: 5,
			Inputs: []InputSpec{
				{Name: "cuisine", Label: "Cuisine", Column: "cuisine", Control: ControlSelect, Op: OpEq},
				{Name: "dish", Label: "Dish", Column: "dish", Control: ControlText, Op: OpEq},
				{Name: "maxminutes", Label: "Max Minutes", Column: "minutes", Control: ControlText, Op: OpRangeMax},
			},
		}
	default:
		return nil, fmt.Errorf("webgen: unknown domain %q", domain)
	}
	// Odd-indexed sites render some record-table columns under alias
	// headers: same data, different attribute names across sites of a
	// vertical — the raw material of the §6 synonym service (E11).
	if idx%2 == 1 {
		spec.HeaderAliases = headerAliases[domain]
	}
	return NewSite(spec, table), nil
}

// headerAliases lists per-domain display aliases for odd-indexed sites.
var headerAliases = map[string]map[string]string{
	"usedcars":   {"make": "maker", "price": "asking price"},
	"realestate": {"type": "property kind", "price": "list price"},
	"jobs":       {"title": "position", "salary": "pay"},
	"library":    {"author": "writer", "subject": "topic"},
	"govdocs":    {"agency": "office"},
	"stores":     {"zip": "postal code"},
	"media":      {"category": "section"},
	"faculty":    {"department": "dept"},
	"recipes":    {"cuisine": "style", "minutes": "cook time"},
}

// AliasPairs returns the ground-truth (canonical, alias) attribute
// pairs the generator plants, sorted, for scoring synonym discovery.
func AliasPairs() [][2]string {
	var out [][2]string
	for _, m := range headerAliases {
		for canon, alias := range m {
			out = append(out, [2]string{canon, alias})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// AsPost returns a copy of the site whose form uses the POST method —
// identical content, unreachable to the surfacer (experiment E12).
func AsPost(s *Site) *Site {
	spec := s.Spec
	spec.Method = "post"
	spec.Host = "post-" + spec.Host
	spec.Title = spec.Title + " (post)"
	return NewSite(spec, s.Table)
}

// WorldConfig sizes a generated virtual internet.
type WorldConfig struct {
	Seed         int64
	SitesPerDom  int // sites per domain
	RowsPerSite  int // backing rows per site
	PostFraction int // one in PostFraction sites is POST (0 = none)
}

// BuildWorld generates a full multi-domain virtual internet plus the hub
// page that links every homepage.
func BuildWorld(cfg WorldConfig) (*Web, error) {
	web := NewWeb()
	k := 0
	for _, dom := range Domains {
		for i := 0; i < cfg.SitesPerDom; i++ {
			site, err := BuildSite(dom, i, cfg.Seed+int64(k)*7919, cfg.RowsPerSite)
			if err != nil {
				return nil, err
			}
			k++
			if cfg.PostFraction > 0 && k%cfg.PostFraction == 0 {
				site = AsPost(site)
			}
			web.AddSite(site)
		}
	}
	return web, nil
}
