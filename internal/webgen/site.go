package webgen

import (
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"

	"deepweb/internal/htmlx"
	"deepweb/internal/reldb"
	"deepweb/internal/textutil"
)

// Site is one synthetic deep-web site: a spec plus its backing table.
// It implements http.Handler with four routes:
//
//	/            homepage: description, form link, seed record links
//	/search      the HTML form
//	/results     form submissions (GET query or POST body)
//	/record?id=N one page per database row
type Site struct {
	Spec  SiteSpec
	Table *reldb.Table
}

// NewSite pairs a spec with its table.
func NewSite(spec SiteSpec, table *reldb.Table) *Site {
	return &Site{Spec: spec, Table: table}
}

// ServeHTTP implements http.Handler.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case "/", "":
		s.serveHome(w)
	case "/search":
		s.serveForm(w)
	case "/results":
		s.serveResults(w, r)
	case "/record":
		s.serveRecord(w, r)
	default:
		http.NotFound(w, r)
	}
}

func (s *Site) serveHome(w http.ResponseWriter) {
	var b strings.Builder
	page := func() { writeHTML(w, s.Spec.Title, b.String()) }
	fmt.Fprintf(&b, "<h1>%s</h1>", htmlx.EscapeText(s.Spec.Title))
	fmt.Fprintf(&b, "<p>welcome to %s, your source for %s listings</p>",
		htmlx.EscapeText(s.Spec.Host), htmlx.EscapeText(s.Spec.Domain))
	b.WriteString(`<p><a href="/search">search our database</a></p><ul>`)
	n := s.Spec.SeedRecords
	if n > s.Table.Len() {
		n = s.Table.Len()
	}
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, `<li><a href="/record?id=%d">%s</a></li>`,
			i, htmlx.EscapeText(s.Table.RowText(i)))
	}
	b.WriteString("</ul>")
	page()
}

func (s *Site) serveForm(w http.ResponseWriter) {
	var b strings.Builder
	fmt.Fprintf(&b, "<h1>%s — search</h1>", htmlx.EscapeText(s.Spec.Title))
	fmt.Fprintf(&b, `<form action="/results" method="%s">`, s.Spec.Method)
	for _, in := range s.Spec.Inputs {
		fmt.Fprintf(&b, `<label for="%s">%s</label>`,
			htmlx.EscapeAttr(in.Name), htmlx.EscapeText(in.Label))
		switch in.Control {
		case ControlSelect:
			fmt.Fprintf(&b, `<select name="%s"><option value="">any</option>`, htmlx.EscapeAttr(in.Name))
			for _, v := range s.selectOptions(in) {
				fmt.Fprintf(&b, `<option value="%s">%s</option>`,
					htmlx.EscapeAttr(v), htmlx.EscapeText(v))
			}
			b.WriteString("</select>")
		default:
			fmt.Fprintf(&b, `<input type="text" name="%s">`, htmlx.EscapeAttr(in.Name))
		}
	}
	b.WriteString(`<input type="submit" value="Search"></form>`)
	writeHTML(w, s.Spec.Title+" search", b.String())
}

// selectOptions lists the values a select menu offers: the distinct
// values of the backing column, capped at MaxOptions.
func (s *Site) selectOptions(in InputSpec) []string {
	var vals []string
	idx := s.Table.ColIndex(in.Column)
	if idx < 0 {
		return nil
	}
	if s.Table.Columns[idx].Kind == reldb.KindInt {
		for _, v := range s.Table.DistinctInts(in.Column) {
			vals = append(vals, strconv.FormatInt(v, 10))
		}
	} else {
		vals = s.Table.DistinctStrings(in.Column)
	}
	if in.MaxOptions > 0 && len(vals) > in.MaxOptions {
		vals = vals[:in.MaxOptions]
	}
	return vals
}

func (s *Site) serveResults(w http.ResponseWriter, r *http.Request) {
	if err := r.ParseForm(); err != nil {
		http.Error(w, "bad form", http.StatusBadRequest)
		return
	}
	// A GET site ignores POSTed bodies and vice versa only in exotic
	// setups; accept r.Form (merged) like common CGI stacks.
	params := r.Form
	preds, bound, badInput := s.predsFrom(params)
	var b strings.Builder
	fmt.Fprintf(&b, "<h1>%s — results</h1>", htmlx.EscapeText(s.Spec.Title))
	switch {
	case s.Spec.RequireBound && bound == 0:
		b.WriteString("<p>please enter a search term</p>")
	case badInput:
		b.WriteString("<p>invalid input, please check your query</p>")
	default:
		rows := s.Table.Select(preds...)
		fmt.Fprintf(&b, "<p>%d results found</p>", len(rows))
		start := 0
		if v := params.Get("start"); v != "" {
			if n, err := strconv.Atoi(v); err == nil && n >= 0 {
				start = n
			}
		}
		end := start + s.Spec.PageSize
		if s.Spec.PageSize <= 0 || end > len(rows) {
			end = len(rows)
		}
		b.WriteString("<ul>")
		for _, id := range rows[start:min(end, len(rows))] {
			fmt.Fprintf(&b, `<li><a href="/record?id=%d">%s</a></li>`,
				id, htmlx.EscapeText(s.Table.RowText(id)))
		}
		b.WriteString("</ul>")
		if end < len(rows) {
			next := cloneValues(params)
			next.Set("start", strconv.Itoa(end))
			fmt.Fprintf(&b, `<p><a href="/results?%s">next page</a></p>`, next.Encode())
		}
	}
	writeHTML(w, s.Spec.Title+" results", b.String())
}

func (s *Site) serveRecord(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.URL.Query().Get("id"))
	if err != nil || id < 0 || id >= s.Table.Len() {
		http.NotFound(w, r)
		return
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<h1>%s — record %d</h1>", htmlx.EscapeText(s.Spec.Title), id)
	b.WriteString("<table><tr>")
	for _, c := range s.Table.Columns {
		fmt.Fprintf(&b, "<th>%s</th>", htmlx.EscapeText(s.Spec.headerName(c.Name)))
	}
	b.WriteString("</tr><tr>")
	for _, v := range s.Table.Row(id) {
		fmt.Fprintf(&b, "<td>%s</td>", htmlx.EscapeText(v.String()))
	}
	b.WriteString("</tr></table>")
	if id+1 < s.Table.Len() {
		fmt.Fprintf(&b, `<p><a href="/record?id=%d">next record</a></p>`, id+1)
	}
	writeHTML(w, fmt.Sprintf("%s record %d", s.Spec.Title, id), b.String())
}

// predsFrom converts submitted parameters to predicates. bound counts
// inputs that carried a non-empty value; badInput reports an unparsable
// numeric value (the site answers those with an error page, which the
// surfacer's signature analysis must learn to discard).
func (s *Site) predsFrom(params url.Values) (preds []reldb.Pred, bound int, badInput bool) {
	for _, in := range s.Spec.Inputs {
		raw := strings.TrimSpace(params.Get(in.Name))
		if raw == "" {
			continue
		}
		bound++
		switch in.Op {
		case OpKeyword:
			if len(in.KeywordCols) > 0 {
				preds = append(preds, reldb.ContainsAllIn(in.KeywordCols, strings.Fields(raw)...))
			} else {
				preds = append(preds, reldb.ContainsAll(strings.Fields(raw)...))
			}
			continue
		}
		idx := s.Table.ColIndex(in.Column)
		if idx < 0 {
			badInput = true
			continue
		}
		isInt := s.Table.Columns[idx].Kind == reldb.KindInt
		switch in.Op {
		case OpEq:
			if isInt {
				n, err := strconv.ParseInt(raw, 10, 64)
				if err != nil {
					badInput = true
					continue
				}
				preds = append(preds, reldb.Eq(in.Column, reldb.I(n)))
			} else {
				preds = append(preds, reldb.Eq(in.Column, reldb.S(raw)))
			}
		case OpRangeMin, OpRangeMax:
			n, err := strconv.ParseInt(raw, 10, 64)
			if err != nil {
				badInput = true
				continue
			}
			if in.Op == OpRangeMin {
				preds = append(preds, reldb.Range(in.Column, n, reldb.OpenHigh))
			} else {
				preds = append(preds, reldb.Range(in.Column, reldb.OpenLow, n))
			}
		}
	}
	return preds, bound, badInput
}

// MatchingRows is the ground-truth oracle: the row ids a submission with
// these parameters retrieves (ignoring paging). Experiments use it to
// compute exact coverage; the serving path uses identical logic.
func (s *Site) MatchingRows(params url.Values) []int {
	preds, bound, bad := s.predsFrom(params)
	if (s.Spec.RequireBound && bound == 0) || bad {
		return nil
	}
	return s.Table.Select(preds...)
}

// RowSetSignature is the ground-truth content fingerprint of a result
// set: the signature of the content tokens of the given rows, streamed
// through one accumulator without concatenating row texts. Like the
// surfacer's page signatures it is independent of row order and
// duplication, so experiments can compare "which distinct record sets
// exist" against what probing observed.
func (s *Site) RowSetSignature(rowIDs []int) textutil.Signature {
	var (
		tz textutil.Tokenizer
		sg textutil.Signer
	)
	sg.Reset()
	for _, id := range rowIDs {
		tz.SignContent(&sg, s.Table.RowText(id))
	}
	return sg.Sum()
}

// InsertRow appends a record to the site's backing table — new content
// appearing on the site. The next request sees it.
func (s *Site) InsertRow(r reldb.Row) error { return s.Table.Insert(r) }

// UpdateRow replaces record i in place — existing content changing.
func (s *Site) UpdateRow(i int, r reldb.Row) error { return s.Table.Update(i, r) }

// DeleteRow removes record i (later records shift down one id) —
// content disappearing from the site.
func (s *Site) DeleteRow(i int) error { return s.Table.Delete(i) }

// TableSignature fingerprints the site's entire backing table,
// sensitive to row order and multiplicity. It deliberately does NOT
// reuse the surfacing signature semantics: RowSetSignature collapses
// order and duplicates because probed result *sets* should, but served
// pages are order- and count-sensitive (result counts, paging layout,
// record numbering), so a churn detector built on the set signature
// would miss mutations — deleting one of two identical rows, or
// reordering — that visibly change every page. The hash (FNV-1a over
// rendered row texts with separators) is seed-free, so it is stable
// across processes and can be persisted in snapshots.
func (s *Site) TableSignature() textutil.Signature {
	h := fnv.New64a()
	for i, n := 0, s.Table.Len(); i < n; i++ {
		io.WriteString(h, s.Table.RowText(i))
		h.Write([]byte{0})
	}
	return textutil.Signature(h.Sum64())
}

// FormURL returns the absolute URL of the site's search form page.
func (s *Site) FormURL() string { return "http://" + s.Spec.Host + "/search" }

// HomeURL returns the absolute URL of the site's homepage.
func (s *Site) HomeURL() string { return "http://" + s.Spec.Host + "/" }

func writeHTML(w http.ResponseWriter, title, body string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, "<!DOCTYPE html><html><head><title>%s</title></head><body>%s</body></html>",
		htmlx.EscapeText(title), body)
}

func cloneValues(v url.Values) url.Values {
	out := make(url.Values, len(v))
	for k, vs := range v {
		out[k] = append([]string(nil), vs...)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
