package webgen

import (
	"bytes"
	"context"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sync"
	"syscall"
	"time"
)

// Chaos fault injection: the virtual internet's bad weather. The
// paper's crawler ran against millions of real sites — slow, flaky,
// rate-limiting, connection-dropping, garbage-emitting — so the
// virtual web can simulate the same failure modes, deterministically.
//
// Chaos wraps any RoundTripper (normally *Web) and injects faults per
// host according to a FaultProfile. Determinism is the whole point:
// each host gets its own RNG seeded from (seed XOR hash(host)) and its
// own request ordinal, and the engine's pipeline guarantees one site =
// one worker with every request targeting the site's own host — so the
// exact same faults hit the exact same requests regardless of worker
// count or scheduling. That is what lets a property test demand
// bit-identical convergence between a chaos run and a fault-free run.

// FaultKind enumerates the injectable failure modes.
type FaultKind int

const (
	// FaultNone passes the request through untouched.
	FaultNone FaultKind = iota
	// Fault503 answers 503 Service Unavailable without reaching the site.
	Fault503
	// Fault429 answers 429 Too Many Requests without reaching the site.
	Fault429
	// FaultTimeout fails the request with a deadline-exceeded error, as
	// a dead-slow server would (returned immediately so tests stay fast).
	FaultTimeout
	// FaultReset fails the request with a connection-reset error.
	FaultReset
	// FaultTruncate serves the real response cut off mid-body: half the
	// bytes, then an unexpected-EOF read error.
	FaultTruncate
	// FaultGarble serves the real response with the body deterministically
	// mangled — valid transport, corrupt content.
	FaultGarble
)

func (k FaultKind) String() string {
	switch k {
	case Fault503:
		return "503"
	case Fault429:
		return "429"
	case FaultTimeout:
		return "timeout"
	case FaultReset:
		return "reset"
	case FaultTruncate:
		return "truncate"
	case FaultGarble:
		return "garble"
	default:
		return "none"
	}
}

// faultOrder fixes the iteration order for probability draws — map
// iteration order must never influence which fault fires.
var faultOrder = []FaultKind{Fault503, Fault429, FaultTimeout, FaultReset, FaultTruncate, FaultGarble}

// FaultProfile describes one host's misbehavior. FailFirst/FailWith is
// the flap schedule: the first FailFirst requests fail with FailWith
// (defaulting to 503), then the host recovers — the shape retry loops
// and refresh healing are built for, because it is guaranteed to end.
// P adds steady-state trouble: per-kind probabilities (summing ≤ 1)
// drawn once per request after the flap window. Latency is added to
// every request, honoring the request context.
type FaultProfile struct {
	Latency   time.Duration
	FailFirst int
	FailWith  FaultKind
	P         map[FaultKind]float64
}

// chaosHost is one host's deterministic fault state.
type chaosHost struct {
	rng      *rand.Rand
	ordinal  int
	injected int
}

// Chaos is a deterministic fault-injecting RoundTripper. Configure
// per-host profiles with SetProfile (hosts without one pass through),
// then put it between the resilient transport and the web.
type Chaos struct {
	inner http.RoundTripper
	seed  int64

	mu       sync.Mutex
	profiles map[string]FaultProfile
	hosts    map[string]*chaosHost
}

// NewChaos wraps inner with fault injection derived from seed.
func NewChaos(inner http.RoundTripper, seed int64) *Chaos {
	return &Chaos{
		inner:    inner,
		seed:     seed,
		profiles: make(map[string]FaultProfile),
		hosts:    make(map[string]*chaosHost),
	}
}

// SetProfile installs (or replaces) a host's fault profile.
func (c *Chaos) SetProfile(host string, p FaultProfile) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.profiles[host] = p
}

// Injected reports how many faults have been injected against host.
func (c *Chaos) Injected(host string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if h := c.hosts[host]; h != nil {
		return h.injected
	}
	return 0
}

// TotalInjected reports the fault count across all hosts.
func (c *Chaos) TotalInjected() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, h := range c.hosts {
		n += h.injected
	}
	return n
}

// hostSeed mixes the chaos seed with the host name so each host's
// fault stream is independent but reproducible.
func hostSeed(seed int64, host string) int64 {
	f := fnv.New64a()
	io.WriteString(f, host) //nolint:errcheck // fnv never errors
	return seed ^ int64(f.Sum64())
}

// decide picks the fault for the next request to host, advancing that
// host's deterministic state. Called under c.mu.
func (c *Chaos) decide(host string, prof FaultProfile) FaultKind {
	h := c.hosts[host]
	if h == nil {
		h = &chaosHost{rng: rand.New(rand.NewSource(hostSeed(c.seed, host)))}
		c.hosts[host] = h
	}
	h.ordinal++
	kind := FaultNone
	if h.ordinal <= prof.FailFirst {
		kind = prof.FailWith
		if kind == FaultNone {
			kind = Fault503
		}
	} else if len(prof.P) > 0 {
		// Exactly one draw per request past the flap window, consumed in
		// a fixed kind order — the draw count per ordinal is what keeps
		// the stream reproducible.
		draw := h.rng.Float64()
		acc := 0.0
		for _, k := range faultOrder {
			p := prof.P[k]
			if p <= 0 {
				continue
			}
			acc += p
			if draw < acc {
				kind = k
				break
			}
		}
	}
	if kind != FaultNone {
		h.injected++
	}
	return kind
}

// RoundTrip injects the decided fault (if any) and otherwise forwards
// to the wrapped transport.
func (c *Chaos) RoundTrip(req *http.Request) (*http.Response, error) {
	host := req.URL.Host
	c.mu.Lock()
	prof, ok := c.profiles[host]
	if !ok {
		c.mu.Unlock()
		return c.inner.RoundTrip(req)
	}
	kind := c.decide(host, prof)
	c.mu.Unlock()

	if prof.Latency > 0 {
		timer := time.NewTimer(prof.Latency)
		select {
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		case <-timer.C:
		}
	}

	switch kind {
	case Fault503:
		return chaosResponse(req, 503, "chaos: injected 503"), nil
	case Fault429:
		return chaosResponse(req, 429, "chaos: injected 429"), nil
	case FaultTimeout:
		return nil, fmt.Errorf("chaos: %s: injected timeout: %w", host, context.DeadlineExceeded)
	case FaultReset:
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: syscall.ECONNRESET}
	case FaultTruncate:
		resp, err := c.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return truncateResponse(resp)
	case FaultGarble:
		resp, err := c.inner.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		return garbleResponse(resp)
	default:
		return c.inner.RoundTrip(req)
	}
}

// chaosResponse builds a synthetic error response.
func chaosResponse(req *http.Request, status int, body string) *http.Response {
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
		Body:       io.NopCloser(bytes.NewReader([]byte(body))),
		Request:    req,
	}
}

// truncatedReader serves its bytes, then fails like a dropped
// connection instead of reporting a clean EOF.
type truncatedReader struct {
	r io.Reader
}

func (t *truncatedReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *truncatedReader) Close() error { return nil }

// truncateResponse swaps the body for its first half followed by an
// unexpected-EOF read error.
func truncateResponse(resp *http.Response) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	resp.Body = &truncatedReader{r: bytes.NewReader(body[:len(body)/2])}
	resp.ContentLength = -1
	return resp, nil
}

// garbleResponse deterministically mangles the body: every 7th byte is
// clobbered. The transport succeeds; the content is corrupt — the one
// fault class retries cannot detect, which is why it lives in
// graceful-degradation tests rather than convergence ones.
func garbleResponse(resp *http.Response) (*http.Response, error) {
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(body); i += 7 {
		body[i] = '#'
	}
	resp.Body = io.NopCloser(bytes.NewReader(body))
	resp.ContentLength = int64(len(body))
	return resp, nil
}

// ApplyDefaultProfiles spreads a fixed cycle of misbehavior archetypes
// over hosts (every 8th host stays healthy) — the stock weather for
// `deepcrawl -chaos` and smoke tests.
func (c *Chaos) ApplyDefaultProfiles(hosts []string) {
	for i, host := range hosts {
		switch i % 8 {
		case 0: // flapper: down for 4 requests, then fine
			c.SetProfile(host, FaultProfile{FailFirst: 4, FailWith: Fault503})
		case 1: // flaky backend
			c.SetProfile(host, FaultProfile{P: map[FaultKind]float64{Fault503: 0.2}})
		case 2: // rate limiter
			c.SetProfile(host, FaultProfile{P: map[FaultKind]float64{Fault429: 0.3}})
		case 3: // connection resetter
			c.SetProfile(host, FaultProfile{P: map[FaultKind]float64{FaultReset: 0.15}})
		case 4: // slow, sometimes dead slow
			c.SetProfile(host, FaultProfile{Latency: time.Millisecond, P: map[FaultKind]float64{FaultTimeout: 0.05}})
		case 5: // truncator
			c.SetProfile(host, FaultProfile{P: map[FaultKind]float64{FaultTruncate: 0.15}})
		case 6: // garbler
			c.SetProfile(host, FaultProfile{P: map[FaultKind]float64{FaultGarble: 0.1}})
		case 7: // healthy — someone has to be
		}
	}
}
