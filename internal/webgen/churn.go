package webgen

import (
	"math/rand"

	"deepweb/internal/reldb"
)

// Churn: deterministic content mutation for freshness experiments. The
// paper stresses that deep-web content changes under the crawler —
// surfaced pages go stale — so the synthetic web needs a way to age.
// Churn applies a reproducible mix of row updates, deletes and inserts
// so two worlds built from the same config and churned with the same
// seed end up byte-identical, which is what lets the refresh pipeline
// be property-tested against a from-scratch surface of the mutated
// world.

// Churn mutates every site in the web: n random row mutations per
// site, drawn from one seeded stream. Sites are visited in host order,
// so the result is a pure function of (web state, n, seed).
func Churn(w *Web, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, s := range w.Sites() {
		ChurnSite(s, n, rng)
	}
}

// ChurnSite applies n random mutations to one site's table: updates
// (one cell takes another row's value for that column, so the column's
// value domain is preserved), deletes, and inserts (a near-clone of an
// existing row with one cell borrowed from another). All three go
// through the validated reldb mutation API.
func ChurnSite(s *Site, n int, rng *rand.Rand) {
	t := s.Table
	for k := 0; k < n; k++ {
		if t.Len() == 0 {
			return
		}
		switch op := rng.Intn(4); {
		case op == 0 && t.Len() > 1:
			// Delete, but never empty the table: a site with no records
			// is a dead site, not a churned one.
			t.Delete(rng.Intn(t.Len()))
		case op == 1:
			t.Insert(crossRow(t, rng))
		default:
			t.Update(rng.Intn(t.Len()), crossRow(t, rng))
		}
	}
}

// crossRow builds a valid row by cloning a random row and replacing one
// cell with the same column's value from another random row.
func crossRow(t *reldb.Table, rng *rand.Rand) reldb.Row {
	src := t.Row(rng.Intn(t.Len()))
	row := append(reldb.Row(nil), src...)
	donor := t.Row(rng.Intn(t.Len()))
	col := rng.Intn(len(row))
	row[col] = donor[col]
	return row
}
