// Package cliutil holds the few lines every binary's main shares:
// startup flag validation that fails loudly with a usage error instead
// of letting a nonsensical value surface as an obscure failure deep in
// the stack.
package cliutil

import (
	"flag"
	"fmt"
	"os"
)

// IntFlag names one integer flag value to validate.
type IntFlag struct {
	Name  string
	Value int
}

// RequirePositive exits with a usage error (status 2) if any flag is
// < 1. Flags are checked in the order given, so the first offender in
// declaration order is the one reported.
func RequirePositive(prog string, flags ...IntFlag) {
	for _, f := range flags {
		if f.Value < 1 {
			fmt.Fprintf(os.Stderr, "%s: %s must be >= 1 (got %d)\n\n", prog, f.Name, f.Value)
			flag.Usage()
			os.Exit(2)
		}
	}
}
