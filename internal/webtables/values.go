package webtables

import "sort"

// ValueStore aggregates attribute → value-set evidence from table
// columns (and, via AddColumn, from form select menus): §6's "given a
// name of an attribute, return a set of values for its column", the
// service that can "automatically fill out forms in order to surface
// deep-web content" (exercised by experiment E11).
type ValueStore struct {
	vals map[string]map[string]int // attr -> value -> support count
}

// NewValueStore returns an empty store.
func NewValueStore() *ValueStore {
	return &ValueStore{vals: map[string]map[string]int{}}
}

// AddTables folds every (header, column values) pair of the tables in.
func (v *ValueStore) AddTables(ts []RawTable) {
	for _, t := range ts {
		for c, h := range t.Headers {
			for _, row := range t.Rows {
				if c < len(row) {
					v.AddColumn(h, []string{row[c]})
				}
			}
		}
	}
}

// AddColumn adds observed values for an attribute (e.g. a select
// menu's options observed under an input name).
func (v *ValueStore) AddColumn(attr string, values []string) {
	attr = normalizeAttr(attr)
	if attr == "" {
		return
	}
	m := v.vals[attr]
	if m == nil {
		m = map[string]int{}
		v.vals[attr] = m
	}
	for _, val := range values {
		val = normalizeAttr(val)
		if val != "" {
			m[val]++
		}
	}
}

// Values returns up to k values for the attribute, by descending
// support then name; nil when the attribute is unknown.
func (v *ValueStore) Values(attr string, k int) []string {
	m := v.vals[normalizeAttr(attr)]
	if len(m) == 0 || k <= 0 {
		return nil
	}
	type sv struct {
		val string
		n   int
	}
	all := make([]sv, 0, len(m))
	for val, n := range m {
		all = append(all, sv{val, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].val < all[j].val
	})
	if k < len(all) {
		all = all[:k]
	}
	out := make([]string, len(all))
	for i, x := range all {
		out[i] = x.val
	}
	return out
}

// Attrs returns the known attribute names, sorted.
func (v *ValueStore) Attrs() []string {
	out := make([]string, 0, len(v.vals))
	for a := range v.vals {
		out = append(out, a)
	}
	sort.Strings(out)
	return out
}

// PropertiesOf implements §6's entity-properties service: given an
// entity string, return the attributes of schemas whose tables contain
// the entity as a cell value, ranked by how often.
func PropertiesOf(ts []RawTable, entity string, k int) []Scored {
	entity = normalizeAttr(entity)
	counts := map[string]int{}
	for _, t := range ts {
		found := false
		for _, row := range t.Rows {
			for _, cell := range row {
				if normalizeAttr(cell) == entity {
					found = true
					break
				}
			}
			if found {
				break
			}
		}
		if found {
			for _, h := range t.Headers {
				counts[h]++
			}
		}
	}
	var out []Scored
	for h, n := range counts {
		out = append(out, Scored{h, float64(n)})
	}
	sortScored(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}
