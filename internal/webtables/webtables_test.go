package webtables

import (
	"reflect"
	"testing"

	"deepweb/internal/htmlx"
	"deepweb/internal/webx"
)

func pageOf(url, html string) *webx.Page {
	return &webx.Page{URL: url, Status: 200, HTML: html, Doc: htmlx.Parse(html)}
}

func TestExtractAndFilter(t *testing.T) {
	pages := []*webx.Page{
		pageOf("http://a.example/x", `
			<table><tr><th>Make</th><th>Price</th></tr>
			<tr><td>ford</td><td>2500</td></tr>
			<tr><td>honda</td><td>3100</td></tr></table>
			<table><tr><td>layout</td></tr></table>`),
		pageOf("http://b.example/y", `
			<table><tr><th>City</th><th>Zip</th></tr>
			<tr><td>seattle</td><td>98101</td></tr></table>`),
	}
	raw := ExtractFromPages(pages)
	if len(raw) != 3 {
		t.Fatalf("extracted %d tables, want 3", len(raw))
	}
	good := QualityFilter(raw)
	if len(good) != 2 {
		t.Fatalf("filtered to %d, want 2", len(good))
	}
	if !reflect.DeepEqual(good[0].Headers, []string{"make", "price"}) {
		t.Errorf("headers = %v", good[0].Headers)
	}
}

func TestQualityFilterRejectsRaggedAndHeaderless(t *testing.T) {
	raw := []RawTable{
		{Headers: []string{"a", "b"}, Rows: [][]string{{"1", "2"}, {"3"}}}, // ragged
		{Headers: nil, Rows: [][]string{{"1", "2"}}},                       // headerless
		{Headers: []string{"a", ""}, Rows: [][]string{{"1", "2"}}},         // empty header
		{Headers: []string{"a", "b"}, Rows: nil},                           // no data
		{Headers: []string{"a", "b"}, Rows: [][]string{{"1", "2"}}},        // good
	}
	good := QualityFilter(raw)
	if len(good) != 1 {
		t.Fatalf("filtered to %d, want 1", len(good))
	}
}

func buildCorpusACS() *ACSDb {
	a := &ACSDb{Freq: map[string]int{}, Pair: map[[2]string]int{}}
	// Car-ish schemas: make+model+price and maker+model+price never
	// co-occur ("make" vs "maker"), sharing context {model, price}.
	for i := 0; i < 20; i++ {
		a.AddSchema([]string{"make", "model", "price"})
	}
	for i := 0; i < 15; i++ {
		a.AddSchema([]string{"maker", "model", "price"})
	}
	for i := 0; i < 10; i++ {
		a.AddSchema([]string{"make", "model", "year"})
	}
	for i := 0; i < 5; i++ {
		a.AddSchema([]string{"city", "state", "zip"})
	}
	return a
}

func TestACSDbCounts(t *testing.T) {
	a := buildCorpusACS()
	if a.Schemas != 50 {
		t.Errorf("Schemas = %d", a.Schemas)
	}
	if a.Freq["make"] != 30 || a.Freq["maker"] != 15 {
		t.Errorf("Freq = %v", a.Freq)
	}
	if a.CoOccur("make", "model") != 30 || a.CoOccur("make", "maker") != 0 {
		t.Errorf("CoOccur wrong")
	}
	if a.CoOccur("model", "make") != 30 {
		t.Error("CoOccur not symmetric")
	}
}

func TestAddSchemaDedupes(t *testing.T) {
	a := &ACSDb{Freq: map[string]int{}, Pair: map[[2]string]int{}}
	a.AddSchema([]string{"x", "x", "y", ""})
	if a.Freq["x"] != 1 || a.Freq[""] != 0 {
		t.Errorf("Freq = %v", a.Freq)
	}
	if a.CoOccur("x", "y") != 1 {
		t.Error("pair missing")
	}
}

func TestSchemaAutocomplete(t *testing.T) {
	a := buildCorpusACS()
	got := a.SchemaAutocomplete([]string{"make"}, 3)
	if len(got) == 0 || got[0].Name != "model" {
		t.Fatalf("autocomplete(make) = %+v, want model first", got)
	}
	// given attrs are never suggested back
	for _, s := range got {
		if s.Name == "make" {
			t.Error("suggested the given attribute")
		}
	}
	if a.SchemaAutocomplete(nil, 3) != nil {
		t.Error("empty given should return nil")
	}
}

func TestSynonyms(t *testing.T) {
	a := buildCorpusACS()
	got := a.Synonyms("make", 3)
	if len(got) == 0 || got[0].Name != "maker" {
		t.Fatalf("Synonyms(make) = %+v, want maker first", got)
	}
	// model co-occurs with make constantly: not a synonym.
	for _, s := range got {
		if s.Name == "model" || s.Name == "price" {
			t.Errorf("co-occurring attr offered as synonym: %+v", s)
		}
	}
	if a.Synonyms("nosuch", 3) != nil {
		t.Error("unknown attr should return nil")
	}
}

func TestValueStore(t *testing.T) {
	v := NewValueStore()
	v.AddColumn("Make", []string{"ford", "honda", "ford"})
	v.AddColumn("make", []string{"toyota"})
	got := v.Values("MAKE", 10)
	if len(got) != 3 || got[0] != "ford" {
		t.Errorf("Values = %v", got)
	}
	if v.Values("nosuch", 5) != nil {
		t.Error("unknown attr should give nil")
	}
	if got := v.Values("make", 1); len(got) != 1 {
		t.Errorf("k-cap ignored: %v", got)
	}
	if attrs := v.Attrs(); len(attrs) != 1 || attrs[0] != "make" {
		t.Errorf("Attrs = %v", attrs)
	}
}

func TestValueStoreFromTables(t *testing.T) {
	v := NewValueStore()
	v.AddTables([]RawTable{{
		Headers: []string{"city", "zip"},
		Rows:    [][]string{{"seattle", "98101"}, {"portland", "97201"}},
	}})
	cities := v.Values("city", 10)
	if len(cities) != 2 {
		t.Errorf("cities = %v", cities)
	}
}

func TestPropertiesOf(t *testing.T) {
	ts := []RawTable{
		{Headers: []string{"city", "state", "population"}, Rows: [][]string{{"seattle", "wa", "700000"}}},
		{Headers: []string{"city", "mayor"}, Rows: [][]string{{"seattle", "someone"}}},
		{Headers: []string{"dish", "cuisine"}, Rows: [][]string{{"tacos", "mexican"}}},
	}
	props := PropertiesOf(ts, "Seattle", 10)
	if len(props) == 0 || props[0].Name != "city" {
		t.Fatalf("props = %+v", props)
	}
	names := map[string]bool{}
	for _, p := range props {
		names[p.Name] = true
	}
	if !names["mayor"] || !names["population"] || names["cuisine"] {
		t.Errorf("properties wrong: %v", names)
	}
}

func TestSearchTablesHeaderBeatsCell(t *testing.T) {
	ts := []RawTable{
		{URL: "header-hit", Headers: []string{"price", "make"},
			Rows: [][]string{{"2500", "ford"}}},
		{URL: "cell-hit", Headers: []string{"a", "b"},
			Rows: [][]string{{"price", "x"}, {"y", "z"}}},
	}
	hits := SearchTables(ts, "price", 10)
	if len(hits) != 2 {
		t.Fatalf("hits = %d, want 2", len(hits))
	}
	if hits[0].Table.URL != "header-hit" {
		t.Errorf("header match should rank first: %+v", hits[0].Table.URL)
	}
	if hits[0].Score <= hits[1].Score {
		t.Error("header weight not applied")
	}
}

func TestSearchTablesMultiTerm(t *testing.T) {
	ts := []RawTable{
		{URL: "both", Headers: []string{"make", "price"}, Rows: [][]string{{"ford", "2500"}}},
		{URL: "one", Headers: []string{"make", "year"}, Rows: [][]string{{"ford", "1993"}}},
	}
	hits := SearchTables(ts, "make price", 10)
	if hits[0].Table.URL != "both" {
		t.Errorf("two-term match should win: %v", hits[0].Table.URL)
	}
}

func TestSearchTablesEdgeCases(t *testing.T) {
	ts := []RawTable{{Headers: []string{"a"}, Rows: [][]string{{"b"}}}}
	if got := SearchTables(ts, "", 5); got != nil {
		t.Error("empty query should return nil")
	}
	if got := SearchTables(ts, "the of", 5); got != nil {
		t.Error("stopword query should return nil")
	}
	if got := SearchTables(ts, "zzz", 5); len(got) != 0 {
		t.Error("no-match query should return empty")
	}
	if got := SearchTables(ts, "a", 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestSearchTablesRowCapPerTerm(t *testing.T) {
	// A row matching a term in several cells counts once.
	ts := []RawTable{{URL: "t", Headers: []string{"x", "y"},
		Rows: [][]string{{"ford", "ford"}}}}
	hits := SearchTables(ts, "ford", 1)
	if hits[0].Score != cellWeight {
		t.Errorf("score = %v, want %v", hits[0].Score, cellWeight)
	}
}
