package webtables

import (
	"sort"
	"strings"

	"deepweb/internal/textutil"
)

// Table search (§2): "A variation on this task is the search for
// structured data collections (i.e., return pages that contain HTML
// tables …). Such a search may be invoked when one is collecting data
// for a mashup or to conduct a more detailed study." WebTables ranked
// tables by matching query terms against schema and content, weighting
// header hits above cell hits; SearchTables follows that scheme.

// TableHit is one ranked table.
type TableHit struct {
	Table *RawTable
	Score float64
}

// Header hits dominate cell hits: a query term naming a column is far
// stronger evidence the table is *about* the term than an incidental
// cell occurrence.
const (
	headerWeight = 5.0
	cellWeight   = 1.0
)

// SearchTables ranks tables against a keyword query. Every query term
// contributes headerWeight per matching header and cellWeight per
// matching row (capped at one count per row, so long tables don't win
// on bulk). Tables matching no term are omitted; ties break on fewer
// rows (smaller, denser tables first) then extraction order.
func SearchTables(ts []RawTable, query string, k int) []TableHit {
	terms := textutil.ContentTokens(query) // ContentTokens lower-cases
	if len(terms) == 0 || k <= 0 {
		return nil
	}
	var hits []TableHit
	for i := range ts {
		t := &ts[i]
		var score float64
		for _, term := range terms {
			for _, h := range t.Headers {
				if strings.Contains(h, term) {
					score += headerWeight
				}
			}
			for _, row := range t.Rows {
				matched := false
				for _, cell := range row {
					if strings.Contains(strings.ToLower(cell), term) {
						matched = true
						break
					}
				}
				if matched {
					score += cellWeight
				}
			}
		}
		if score > 0 {
			hits = append(hits, TableHit{Table: t, Score: score})
		}
	}
	sort.SliceStable(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return len(hits[i].Table.Rows) < len(hits[j].Table.Rows)
	})
	if k < len(hits) {
		hits = hits[:k]
	}
	return hits
}
