// Package webtables is the aggregation substrate of §6: it extracts
// HTML tables from a crawled corpus, filters the relational-quality
// ones (the WebTables project of reference [3]), and builds the
// attribute-correlation statistics database (ACSDb) that powers the
// semantic services — synonym suggestion, schema auto-complete,
// attribute values, and entity properties.
package webtables

import (
	"sort"
	"strings"

	"deepweb/internal/htmlx"
	"deepweb/internal/webx"
)

// RawTable is one extracted HTML table with provenance.
type RawTable struct {
	URL     string
	Headers []string // normalized lower-case attribute names
	Rows    [][]string
}

// ExtractFromPages pulls every table out of the pages.
func ExtractFromPages(pages []*webx.Page) []RawTable {
	var out []RawTable
	for _, p := range pages {
		for _, t := range htmlx.ExtractTables(p.Doc) {
			rt := RawTable{URL: p.URL, Rows: t.Rows}
			for _, h := range t.Headers {
				rt.Headers = append(rt.Headers, normalizeAttr(h))
			}
			out = append(out, rt)
		}
	}
	return out
}

func normalizeAttr(h string) string {
	return strings.Join(strings.Fields(strings.ToLower(h)), " ")
}

// QualityFilter keeps tables that look relational: a header row, at
// least two columns, at least one data row, and consistent row arity.
// (WebTables found ~1.1% of raw HTML tables are high-quality relations;
// the filter is what separates layout tables from data.)
func QualityFilter(ts []RawTable) []RawTable {
	var out []RawTable
	for _, t := range ts {
		if len(t.Headers) < 2 || len(t.Rows) < 1 {
			continue
		}
		ok := true
		for _, r := range t.Rows {
			if len(r) != len(t.Headers) {
				ok = false
				break
			}
		}
		if hasEmptyHeader(t.Headers) {
			ok = false
		}
		if ok {
			out = append(out, t)
		}
	}
	return out
}

func hasEmptyHeader(hs []string) bool {
	for _, h := range hs {
		if h == "" {
			return true
		}
	}
	return false
}

// ACSDb holds attribute correlation statistics over a corpus of
// schemas: how often each attribute appears and how often pairs
// co-occur (reference [3]'s core structure).
type ACSDb struct {
	Schemas int
	Freq    map[string]int
	Pair    map[[2]string]int
}

// BuildACSDb accumulates statistics over the filtered tables' schemas.
func BuildACSDb(ts []RawTable) *ACSDb {
	a := &ACSDb{Freq: map[string]int{}, Pair: map[[2]string]int{}}
	for _, t := range ts {
		a.AddSchema(t.Headers)
	}
	return a
}

// AddSchema folds one schema (set of attribute names) into the stats.
// Duplicate names within a schema count once.
func (a *ACSDb) AddSchema(attrs []string) {
	uniq := dedupe(attrs)
	a.Schemas++
	for _, x := range uniq {
		a.Freq[x]++
	}
	for i := 0; i < len(uniq); i++ {
		for j := i + 1; j < len(uniq); j++ {
			a.Pair[pairKey(uniq[i], uniq[j])]++
		}
	}
}

func pairKey(x, y string) [2]string {
	if x > y {
		x, y = y, x
	}
	return [2]string{x, y}
}

func dedupe(xs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, x := range xs {
		if x != "" && !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	return out
}

// CoOccur returns how many schemas contain both attributes.
func (a *ACSDb) CoOccur(x, y string) int { return a.Pair[pairKey(x, y)] }

// pCond is P(x | given): co-occurrence over given's frequency.
func (a *ACSDb) pCond(x, given string) float64 {
	f := a.Freq[given]
	if f == 0 {
		return 0
	}
	return float64(a.CoOccur(x, given)) / float64(f)
}

// Scored pairs an item with a score for ranked service responses.
type Scored struct {
	Name  string
	Score float64
}

// SchemaAutocomplete returns up to k attributes that database designers
// most often combine with the given ones (§6: "akin to a schema
// auto-complete"), ranked by mean conditional probability against the
// given set.
func (a *ACSDb) SchemaAutocomplete(given []string, k int) []Scored {
	giv := dedupe(given)
	if len(giv) == 0 || k <= 0 {
		return nil
	}
	in := map[string]bool{}
	for _, g := range giv {
		in[g] = true
	}
	var out []Scored
	for cand := range a.Freq {
		if in[cand] {
			continue
		}
		var s float64
		for _, g := range giv {
			s += a.pCond(cand, g)
		}
		s /= float64(len(giv))
		if s > 0 {
			out = append(out, Scored{cand, s})
		}
	}
	sortScored(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// Synonyms returns attributes likely synonymous with attr (§6's schema-
// matching component): candidates that essentially never co-occur with
// attr (synonyms don't appear twice in one schema) but share its
// context — they co-occur with the same other attributes. Ranked by
// context overlap.
func (a *ACSDb) Synonyms(attr string, k int) []Scored {
	attr = normalizeAttr(attr)
	if a.Freq[attr] == 0 || k <= 0 {
		return nil
	}
	ctx := a.contextOf(attr)
	var out []Scored
	for cand := range a.Freq {
		if cand == attr {
			continue
		}
		// Appears together with attr → not a synonym.
		if float64(a.CoOccur(attr, cand)) > 0.05*float64(min(a.Freq[attr], a.Freq[cand])) {
			continue
		}
		cctx := a.contextOf(cand)
		score := contextOverlap(ctx, cctx)
		if score > 0 {
			out = append(out, Scored{cand, score})
		}
	}
	sortScored(out)
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// contextOf returns P(z|attr) over co-occurring attributes z.
func (a *ACSDb) contextOf(attr string) map[string]float64 {
	out := map[string]float64{}
	for pk, n := range a.Pair {
		var other string
		switch attr {
		case pk[0]:
			other = pk[1]
		case pk[1]:
			other = pk[0]
		default:
			continue
		}
		out[other] = float64(n) / float64(a.Freq[attr])
	}
	return out
}

func contextOverlap(a, b map[string]float64) float64 {
	var s float64
	for z, pa := range a {
		if pb, ok := b[z]; ok {
			if pa < pb {
				s += pa
			} else {
				s += pb
			}
		}
	}
	return s
}

func sortScored(xs []Scored) {
	sort.Slice(xs, func(i, j int) bool {
		if xs[i].Score != xs[j].Score {
			return xs[i].Score > xs[j].Score
		}
		return xs[i].Name < xs[j].Name
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
