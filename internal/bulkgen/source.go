package bulkgen

import (
	"sync"

	"deepweb/internal/index"
)

// Source streams a world's documents in canonical block order while a
// worker pool generates blocks ahead of the consumer. Because every
// block is generated from its own derived RNG stream, the emitted
// sequence is byte-identical for any worker count — only the wall-clock
// changes. At most workers+1 blocks are in memory at once, so a
// million-row world streams in a few MB regardless of corpus size.
//
// Next is not safe for concurrent use (one consumer); the internal
// workers are. Call Close to release the pool when abandoning the
// stream early; a fully drained Source needs no Close.
type Source struct {
	stop     chan struct{}
	stopOnce sync.Once
	order    chan chan []Doc
	cur      []Doc
	pos      int
}

type blockJob struct {
	ref BlockRef
	res chan []Doc
}

// Source starts a generation pool with the given number of workers
// (min 1) and returns the streaming consumer side.
func (w *World) Source(workers int) *Source {
	if workers < 1 {
		workers = 1
	}
	s := &Source{
		stop:  make(chan struct{}),
		order: make(chan chan []Doc, workers),
	}
	jobs := make(chan blockJob)
	for i := 0; i < workers; i++ {
		go func() {
			for job := range jobs {
				job.res <- w.GenBlock(job.ref, nil)
			}
		}()
	}
	// The dispatcher publishes per-block result channels into order
	// before handing the block to a worker: consumers see blocks in
	// canonical order no matter which worker finishes first, and the
	// buffered order channel is the lookahead bound.
	go func() {
		defer close(jobs)
		defer close(s.order)
		for _, ref := range w.Blocks() {
			res := make(chan []Doc, 1)
			select {
			case s.order <- res:
			case <-s.stop:
				return
			}
			select {
			case jobs <- blockJob{ref: ref, res: res}:
			case <-s.stop:
				return
			}
		}
	}()
	return s
}

// Next returns the next document in canonical order, its annotations,
// and true; ok=false means the stream is exhausted. The signature
// matches engine.BulkSource, so a *Source plugs straight into
// engine.BulkIngest / engine.BulkBuild.
func (s *Source) Next() (index.Doc, map[string]string, bool) {
	for s.pos >= len(s.cur) {
		res, ok := <-s.order
		if !ok {
			return index.Doc{}, nil, false
		}
		s.cur = <-res
		s.pos = 0
	}
	d := s.cur[s.pos]
	s.pos++
	return d.Doc, d.Anns, true
}

// Close stops the generation pool. Only needed when abandoning a
// stream before Next has returned ok=false; always safe to call.
func (s *Source) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
}
