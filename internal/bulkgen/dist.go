package bulkgen

import (
	"math"
	"math/rand"
	"strings"

	"deepweb/internal/datagen"
)

// newZipf builds a Zipf sampler over [0,n) with skew s (>1). The head
// of the vocabulary list is the popular end, matching datagen.zipfIdx.
// A nil sampler means n<=1: zidx then always returns 0.
func newZipf(r *rand.Rand, s float64, n int) *rand.Zipf {
	if n <= 1 {
		return nil
	}
	return rand.NewZipf(r, s, 1, uint64(n-1))
}

func zidx(z *rand.Zipf) int {
	if z == nil {
		return 0
	}
	return int(z.Uint64())
}

// ladder draws a normal value snapped to a step grid and clamped to
// [min,max] — how real classified columns look: prices cluster around
// a mean but only ever appear in round increments.
type ladder struct {
	mean, sigma float64
	step        int
	min, max    int
}

func (l ladder) draw(r *rand.Rand) int {
	v := r.NormFloat64()*l.sigma + l.mean
	n := int(math.Round(v/float64(l.step))) * l.step
	if n < l.min {
		n = l.min
	}
	if n > l.max {
		n = l.max
	}
	return n
}

// Long-tail vocabulary, shared by every site in every world: composed
// syllable words synthesized by index arithmetic (no RNG), so word i is
// the same string everywhere and corpus-wide document frequencies are
// meaningful. With ~10k words under a near-1 Zipf exponent, a few are
// almost stopwords and thousands appear in only a handful of documents
// even at 10⁶ rows — the df shape BM25 idf is designed around.
var (
	tailOnsets = []string{
		"ba", "ce", "di", "fo", "gu", "ha", "je", "ki", "lo", "mu",
		"na", "pe", "qui", "ro", "su", "ta", "ve", "wi", "xo", "za",
		"bre", "cla", "dri", "fle", "gra",
	}
	tailMids = []string{
		"la", "men", "ri", "sto", "ven", "dor", "fin", "gal", "hem", "jin",
		"kor", "lum", "nar", "pol", "rus", "sel", "tor", "vel", "wen", "zan",
	}
	tailEnds = []string{
		"to", "ce", "dia", "fer", "gon", "hil", "ium", "kel", "lor", "mus",
		"nex", "per", "ron", "sis", "tal", "ver", "wick", "zen", "by", "dale",
	}
)

// tailVocabSize is the number of distinct long-tail words (10,000).
const tailVocabSize = 25 * 20 * 20

// tailWord returns long-tail word i (mod tailVocabSize), deterministically.
func tailWord(i int) string {
	i %= tailVocabSize
	if i < 0 {
		i += tailVocabSize
	}
	o := i % len(tailOnsets)
	i /= len(tailOnsets)
	m := i % len(tailMids)
	e := i / len(tailMids)
	return tailOnsets[o] + tailMids[m] + tailEnds[e]
}

// notes samples free-text phrases: a Zipf-skewed head drawn from the
// shared datagen.NoteWords list plus a near-flat Zipf over the
// synthesized long tail.
type notes struct {
	r    *rand.Rand
	head *rand.Zipf
	tail *rand.Zipf
}

func newNotes(r *rand.Rand) *notes {
	return &notes{
		r:    r,
		head: newZipf(r, 1.3, len(datagen.NoteWords)),
		tail: newZipf(r, 1.07, tailVocabSize),
	}
}

func (n *notes) phrase(nHead, nTail int) string {
	parts := make([]string, 0, nHead+nTail)
	for i := 0; i < nHead; i++ {
		parts = append(parts, datagen.NoteWords[zidx(n.head)])
	}
	for i := 0; i < nTail; i++ {
		parts = append(parts, tailWord(zidx(n.tail)))
	}
	return strings.Join(parts, " ")
}
