// Package bulkgen generates million-row synthetic deep-web worlds.
//
// It is the bulk counterpart of webgen/datagen: where those build a few
// hundred rows per site behind live HTTP forms, bulkgen produces raw
// surfaced *documents* at 10⁶ scale, streamed block by block so a
// million-row world never materializes in memory. The value model
// follows the related data-load generators (schema- and
// distribution-aware columns, worker pools): per-column distributions
// are Zipfian over the shared datagen vocabularies (head-heavy, like
// real classifieds), numeric columns are normal draws snapped to a
// price/year/mileage ladder, and correlated pairs (make→model,
// city→zip, city→state, cuisine→dish) hold across every generated row.
//
// Determinism discipline matches webgen.Chaos: every block of rows is
// generated from its own seeded RNG derived as
//
//	siteSeed  = Spec.Seed ^ fnv64a(host)
//	blockSeed = siteSeed + block*7919
//
// so the stream is byte-identical for any worker count and any
// consumption order — the property the spill-build relies on and the
// tests pin.
//
// Cross-site vocabulary sharing is deliberate: all sites of a vertical
// draw from the same datagen lists and all sites share one synthesized
// long-tail vocabulary, so corpus-wide document frequencies behave like
// a real crawl (a handful of very common terms, a long tail of rare
// ones) and BM25's idf term has something realistic to chew on.
package bulkgen

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"deepweb/internal/datagen"
	"deepweb/internal/index"
	"deepweb/internal/reldb"
)

// Doc is one generated record: the index document plus its §5.1-style
// typed annotations (column → rendered value), exactly what the
// surfacing pipeline would have recovered from a form binding.
type Doc struct {
	Doc  index.Doc
	Anns map[string]string
}

// Spec configures a bulk world. The zero value is not valid: Docs must
// be positive. Seed fully determines the generated corpus.
type Spec struct {
	Seed  int64
	Docs  int // total documents across all sites (required)
	Sites int // number of sites, cycling the verticals (default: one per vertical)

	// BlockSize is the generation granularity: rows are produced in
	// blocks of this many, each from its own derived RNG stream.
	// Smaller blocks mean finer-grained parallelism and a smaller
	// streaming footprint. Default 1024.
	BlockSize int
}

// World is a fully specified (but not materialized) bulk corpus.
// Methods are safe for concurrent use: generation state lives in
// per-call RNGs, never in the World.
type World struct {
	spec  Spec
	sites []site
}

type site struct {
	host string
	vert *vertical
	rows int   // rows on this site
	seed int64 // Spec.Seed ^ fnv64a(host)
}

// BlockRef names one block of one site; the unit of parallel generation.
type BlockRef struct {
	Site  int
	Block int
}

// NewWorld validates spec, applies defaults, and lays out sites.
func NewWorld(spec Spec) (*World, error) {
	if spec.Docs <= 0 {
		return nil, fmt.Errorf("bulkgen: Spec.Docs must be positive, got %d", spec.Docs)
	}
	if spec.Sites <= 0 {
		spec.Sites = len(verticals)
	}
	if spec.Sites > spec.Docs {
		spec.Sites = spec.Docs
	}
	if spec.BlockSize <= 0 {
		spec.BlockSize = 1024
	}
	w := &World{spec: spec}
	per, extra := spec.Docs/spec.Sites, spec.Docs%spec.Sites
	for si := 0; si < spec.Sites; si++ {
		v := &verticals[si%len(verticals)]
		host := fmt.Sprintf("bulk-%s-%03d.example", v.name, si)
		rows := per
		if si < extra {
			rows++
		}
		w.sites = append(w.sites, site{host: host, vert: v, rows: rows, seed: spec.Seed ^ int64(fnv64a(host))})
	}
	return w, nil
}

// NumDocs returns the total document count (= Spec.Docs).
func (w *World) NumDocs() int { return w.spec.Docs }

// NumSites returns the number of generated sites.
func (w *World) NumSites() int { return len(w.sites) }

// Host returns site si's hostname.
func (w *World) Host(si int) string { return w.sites[si].host }

// Blocks enumerates every block in canonical order (site-major, then
// block): the order Source streams documents in.
func (w *World) Blocks() []BlockRef {
	var refs []BlockRef
	for si, st := range w.sites {
		for b := 0; b*w.spec.BlockSize < st.rows; b++ {
			refs = append(refs, BlockRef{Site: si, Block: b})
		}
	}
	return refs
}

// GenBlock generates one block of documents, appending to dst (which
// may be nil). It is pure: the same ref always yields the same bytes,
// regardless of which other blocks have been generated or by whom.
func (w *World) GenBlock(ref BlockRef, dst []Doc) []Doc {
	st := w.sites[ref.Site]
	r := rand.New(rand.NewSource(st.seed + int64(ref.Block)*7919))
	gen := st.vert.gen(r)
	lo := ref.Block * w.spec.BlockSize
	hi := lo + w.spec.BlockSize
	if hi > st.rows {
		hi = st.rows
	}
	for i := lo; i < hi; i++ {
		row, title := gen(i)
		dst = append(dst, renderDoc(st.host, st.vert, i, row, title))
	}
	return dst
}

// renderDoc turns a typed row into the flat document the index ingests:
// RowText-style "value value ..." body prefixed by "col value" pairs so
// keyword probes hit column names too, plus one annotation per column.
func renderDoc(host string, v *vertical, rowIdx int, row reldb.Row, title string) Doc {
	var b strings.Builder
	anns := make(map[string]string, len(row))
	for i, val := range row {
		s := val.String()
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(v.cols[i].Name)
		b.WriteByte(' ')
		b.WriteString(s)
		anns[v.cols[i].Name] = s
	}
	return Doc{
		Doc: index.Doc{
			URL:    fmt.Sprintf("http://%s/record?id=%d", host, rowIdx),
			Title:  title,
			Text:   b.String(),
			Source: host,
		},
		Anns: anns,
	}
}

// rowGen produces the typed row and title for one row index. The
// closure owns per-block samplers; draws per row happen in a fixed
// order, which is what makes blocks reproducible.
type rowGen func(rowIdx int) (reldb.Row, string)

type vertical struct {
	name string
	cols []reldb.Column
	gen  func(r *rand.Rand) rowGen
}

func scol(n string) reldb.Column { return reldb.Column{Name: n, Kind: reldb.KindString} }
func icol(n string) reldb.Column { return reldb.Column{Name: n, Kind: reldb.KindInt} }
func tcol(n string) reldb.Column { return reldb.Column{Name: n, Kind: reldb.KindText} }

// verticals are the bulk counterparts of the datagen domains: same
// shared vocabularies (so cross-site df statistics line up), same
// correlated columns, but distribution-driven and unbounded in row
// count.
var verticals = []vertical{
	{
		name: "usedcars",
		cols: []reldb.Column{
			scol("make"), scol("model"), icol("year"), icol("price"),
			icol("mileage"), scol("city"), icol("zip"), tcol("notes"),
		},
		gen: func(r *rand.Rand) rowGen {
			mk := newZipf(r, 1.2, len(datagen.CarMakes))
			city := newZipf(r, 1.3, len(datagen.USCities))
			note := newNotes(r)
			year := ladder{mean: 2002, sigma: 4, step: 1, min: 1990, max: 2009}
			price := ladder{mean: 9500, sigma: 5500, step: 250, min: 500, max: 24750}
			miles := ladder{mean: 90000, sigma: 45000, step: 1000, min: 5000, max: 200000}
			return func(i int) (reldb.Row, string) {
				m := zidx(mk)
				models := datagen.CarModels[m]
				c := zidx(city)
				row := reldb.Row{
					reldb.S(datagen.CarMakes[m]),
					reldb.S(models[r.Intn(len(models))]),
					reldb.I(int64(year.draw(r))),
					reldb.I(int64(price.draw(r))),
					reldb.I(int64(miles.draw(r))),
					reldb.S(datagen.USCities[c]),
					reldb.I(int64(datagen.ZipForCity(c, i))),
					reldb.T(note.phrase(2, 3)),
				}
				title := "used " + row[0].Str + " " + row[1].Str + " " + strconv.FormatInt(row[2].Int, 10)
				return row, title
			}
		},
	},
	{
		name: "realestate",
		cols: []reldb.Column{
			scol("city"), scol("state"), scol("type"), icol("zip"),
			icol("bedrooms"), icol("price"), tcol("notes"),
		},
		gen: func(r *rand.Rand) rowGen {
			types := []string{"house", "condo", "apartment", "townhouse", "loft"}
			city := newZipf(r, 1.3, len(datagen.USCities))
			typ := newZipf(r, 1.2, len(types))
			note := newNotes(r)
			beds := ladder{mean: 3, sigma: 1.2, step: 1, min: 1, max: 6}
			price := ladder{mean: 320000, sigma: 180000, step: 5000, min: 50000, max: 1000000}
			return func(i int) (reldb.Row, string) {
				c := zidx(city)
				row := reldb.Row{
					reldb.S(datagen.USCities[c]),
					reldb.S(datagen.USStates[c]),
					reldb.S(types[zidx(typ)]),
					reldb.I(int64(datagen.ZipForCity(c, i))),
					reldb.I(int64(beds.draw(r))),
					reldb.I(int64(price.draw(r))),
					reldb.T(note.phrase(2, 4)),
				}
				title := row[2].Str + " in " + row[0].Str + " " + row[1].Str
				return row, title
			}
		},
	},
	{
		name: "jobs",
		cols: []reldb.Column{
			scol("title"), scol("company"), scol("city"), scol("state"),
			icol("salary"), tcol("description"),
		},
		gen: func(r *rand.Rand) rowGen {
			jt := newZipf(r, 1.2, len(datagen.JobTitles))
			co := newZipf(r, 1.3, len(datagen.Companies))
			city := newZipf(r, 1.3, len(datagen.USCities))
			note := newNotes(r)
			salary := ladder{mean: 62000, sigma: 18000, step: 1000, min: 25000, max: 175000}
			return func(i int) (reldb.Row, string) {
				c := zidx(city)
				row := reldb.Row{
					reldb.S(datagen.JobTitles[zidx(jt)]),
					reldb.S(datagen.Companies[zidx(co)]),
					reldb.S(datagen.USCities[c]),
					reldb.S(datagen.USStates[c]),
					reldb.I(int64(salary.draw(r))),
					reldb.T(note.phrase(1, 5)),
				}
				title := row[0].Str + " at " + row[1].Str
				return row, title
			}
		},
	},
	{
		name: "govdocs",
		cols: []reldb.Column{
			scol("agency"), scol("topic"), icol("year"), icol("docno"), tcol("body"),
		},
		gen: func(r *rand.Rand) rowGen {
			ag := newZipf(r, 1.2, len(datagen.Agencies))
			tp := newZipf(r, 1.2, len(datagen.GovTopics))
			note := newNotes(r)
			year := ladder{mean: 2002, sigma: 3, step: 1, min: 1995, max: 2008}
			return func(i int) (reldb.Row, string) {
				row := reldb.Row{
					reldb.S(datagen.Agencies[zidx(ag)]),
					reldb.S(datagen.GovTopics[zidx(tp)]),
					reldb.I(int64(year.draw(r))),
					reldb.I(int64(i)),
					reldb.T(note.phrase(1, 6)),
				}
				title := row[0].Str + " notice " + strconv.Itoa(i) + " regarding " + row[1].Str
				return row, title
			}
		},
	},
	{
		name: "library",
		cols: []reldb.Column{
			scol("subject"), scol("author"), icol("year"), tcol("summary"),
		},
		gen: func(r *rand.Rand) rowGen {
			sub := newZipf(r, 1.2, len(datagen.BookSubjects))
			note := newNotes(r)
			year := ladder{mean: 1975, sigma: 25, step: 1, min: 1900, max: 2008}
			return func(i int) (reldb.Row, string) {
				author := datagen.FirstNames[r.Intn(len(datagen.FirstNames))] +
					" " + datagen.LastNames[r.Intn(len(datagen.LastNames))]
				row := reldb.Row{
					reldb.S(datagen.BookSubjects[zidx(sub)]),
					reldb.S(author),
					reldb.I(int64(year.draw(r))),
					reldb.T(note.phrase(2, 4)),
				}
				title := "the " + tailWord(i) + " of " + row[0].Str
				return row, title
			}
		},
	},
	{
		name: "recipes",
		cols: []reldb.Column{
			scol("cuisine"), scol("dish"), icol("minutes"), tcol("steps"),
		},
		gen: func(r *rand.Rand) rowGen {
			di := newZipf(r, 1.2, len(datagen.Dishes))
			note := newNotes(r)
			mins := ladder{mean: 45, sigma: 25, step: 5, min: 10, max: 180}
			return func(i int) (reldb.Row, string) {
				// dish → cuisine by index arithmetic, the same
				// correlation rule datagen.Recipes uses.
				d := zidx(di)
				row := reldb.Row{
					reldb.S(datagen.Cuisines[d%len(datagen.Cuisines)]),
					reldb.S(datagen.Dishes[d]),
					reldb.I(int64(mins.draw(r))),
					reldb.T(note.phrase(2, 4)),
				}
				title := row[0].Str + " " + row[1].Str
				return row, title
			}
		},
	},
}

// fnv64a matches the webgen host-seed derivation (hostSeed there is
// seed ^ fnv64a(host)); duplicated rather than exported to keep the
// packages decoupled.
func fnv64a(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}
