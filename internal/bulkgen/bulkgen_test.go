package bulkgen

import (
	"fmt"
	"strings"
	"testing"

	"deepweb/internal/datagen"
	"deepweb/internal/index"
)

func drain(t *testing.T, src *Source) []Doc {
	t.Helper()
	var out []Doc
	for {
		d, anns, ok := src.Next()
		if !ok {
			return out
		}
		out = append(out, Doc{Doc: d, Anns: anns})
	}
}

func docsEqual(a, b Doc) bool {
	if a.Doc != b.Doc || len(a.Anns) != len(b.Anns) {
		return false
	}
	for k, v := range a.Anns {
		if b.Anns[k] != v {
			return false
		}
	}
	return true
}

// The determinism contract the spill-build relies on: the same seed
// yields a byte-identical document stream for any worker count.
func TestSourceDeterministicAcrossWorkers(t *testing.T) {
	spec := Spec{Seed: 42, Docs: 5000, Sites: 7, BlockSize: 256}
	var ref []Doc
	for _, workers := range []int{1, 4, 16} {
		w, err := NewWorld(spec)
		if err != nil {
			t.Fatal(err)
		}
		got := drain(t, w.Source(workers))
		if len(got) != spec.Docs {
			t.Fatalf("workers=%d: got %d docs, want %d", workers, len(got), spec.Docs)
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if !docsEqual(ref[i], got[i]) {
				t.Fatalf("workers=%d: doc %d differs:\n  ref: %+v\n  got: %+v", workers, i, ref[i], got[i])
			}
		}
	}
}

func TestGenBlockPureAndSeedSensitive(t *testing.T) {
	w, err := NewWorld(Spec{Seed: 7, Docs: 2000, Sites: 3, BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	ref := BlockRef{Site: 1, Block: 2}
	a := w.GenBlock(ref, nil)
	b := w.GenBlock(ref, nil)
	if len(a) != len(b) || len(a) == 0 {
		t.Fatalf("block lengths differ or empty: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !docsEqual(a[i], b[i]) {
			t.Fatalf("GenBlock not pure at row %d", i)
		}
	}
	w2, err := NewWorld(Spec{Seed: 8, Docs: 2000, Sites: 3, BlockSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	c := w2.GenBlock(ref, nil)
	same := 0
	for i := range a {
		if docsEqual(a[i], c[i]) {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced an identical block")
	}
}

func TestWorldLayout(t *testing.T) {
	w, err := NewWorld(Spec{Seed: 1, Docs: 10, Sites: 3, BlockSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	// 10 docs over 3 sites: 4+3+3.
	total := 0
	urls := map[string]bool{}
	for _, d := range drain(t, w.Source(2)) {
		total++
		if urls[d.Doc.URL] {
			t.Fatalf("duplicate URL %q", d.Doc.URL)
		}
		urls[d.Doc.URL] = true
		if d.Doc.Source == "" || !strings.HasPrefix(d.Doc.URL, "http://"+d.Doc.Source) {
			t.Fatalf("URL %q not on its source host %q", d.Doc.URL, d.Doc.Source)
		}
		if d.Doc.Title == "" || d.Doc.Text == "" {
			t.Fatalf("empty title or text: %+v", d)
		}
		if len(d.Anns) == 0 {
			t.Fatalf("doc %q has no annotations", d.Doc.URL)
		}
	}
	if total != 10 {
		t.Fatalf("got %d docs, want 10", total)
	}
	if _, err := NewWorld(Spec{Seed: 1}); err == nil {
		t.Fatal("NewWorld accepted Docs=0")
	}
}

// Zipf head-heaviness: the most common make must dominate a uniform
// share, and correlated columns must stay aligned.
func TestDistributionsSkewedAndCorrelated(t *testing.T) {
	w, err := NewWorld(Spec{Seed: 11, Docs: 4000, Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, d := range drain(t, w.Source(4)) {
		mk, model := d.Anns["make"], d.Anns["model"]
		if mk == "" || model == "" {
			t.Fatalf("usedcars doc missing make/model: %v", d.Anns)
		}
		counts[mk]++
		if !modelBelongsToMake(mk, model) {
			t.Fatalf("model %q not a %s model", model, mk)
		}
	}
	best, total := 0, 0
	for _, c := range counts {
		total += c
		if c > best {
			best = c
		}
	}
	if best*len(counts) < 2*total {
		t.Fatalf("head make has %d/%d across %d makes — not Zipf-skewed", best, total, len(counts))
	}
}

func modelBelongsToMake(mk, model string) bool {
	for i, m := range datagen.CarMakes {
		if m == mk {
			for _, cand := range datagen.CarModels[i] {
				if cand == model {
					return true
				}
			}
			return false
		}
	}
	return false
}

func TestTailWordStable(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < tailVocabSize; i += 997 {
		word := tailWord(i)
		if word != tailWord(i) {
			t.Fatalf("tailWord(%d) unstable", i)
		}
		if seen[word] {
			t.Fatalf("tailWord collision at %d: %q", i, word)
		}
		seen[word] = true
	}
	if got := tailWord(3 + tailVocabSize); got != tailWord(3) {
		t.Fatalf("tailWord wrap mismatch: %q vs %q", got, tailWord(3))
	}
}

// Ensure the source closes cleanly when abandoned mid-stream.
func TestSourceCloseEarly(t *testing.T) {
	w, err := NewWorld(Spec{Seed: 3, Docs: 100000, Sites: 4, BlockSize: 512})
	if err != nil {
		t.Fatal(err)
	}
	src := w.Source(8)
	for i := 0; i < 10; i++ {
		if _, _, ok := src.Next(); !ok {
			t.Fatal("stream ended too early")
		}
	}
	src.Close()
	src.Close() // idempotent
}

func ExampleWorld_Source() {
	w, _ := NewWorld(Spec{Seed: 1, Docs: 3, Sites: 1})
	src := w.Source(2)
	var d index.Doc
	n := 0
	for {
		doc, _, ok := src.Next()
		if !ok {
			break
		}
		d = doc
		n++
	}
	fmt.Println(n, d.Source)
	// Output: 3 bulk-usedcars-000.example
}
