package semserv

import (
	"encoding/json"

	"net/http/httptest"
	"strings"
	"testing"

	"deepweb/internal/webtables"
)

func testServer() *Server {
	acs := &webtables.ACSDb{Freq: map[string]int{}, Pair: map[[2]string]int{}}
	for i := 0; i < 20; i++ {
		acs.AddSchema([]string{"make", "model", "price"})
	}
	for i := 0; i < 15; i++ {
		acs.AddSchema([]string{"maker", "model", "price"})
	}
	vals := webtables.NewValueStore()
	vals.AddColumn("city", []string{"seattle", "portland", "seattle"})
	tables := []webtables.RawTable{
		{Headers: []string{"city", "population"}, Rows: [][]string{{"seattle", "700000"}}},
	}
	return New(acs, vals, tables)
}

func getJSON(t *testing.T, s *Server, path string, out any) int {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code == 200 {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("bad JSON from %s: %v", path, err)
		}
	}
	return rec.Code
}

func TestSynonymsEndpoint(t *testing.T) {
	s := testServer()
	var items []ScoredItem
	if code := getJSON(t, s, "/synonyms?attr=make", &items); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(items) == 0 || items[0].Name != "maker" {
		t.Errorf("synonyms = %+v", items)
	}
}

// An attacker-sized k must be clamped, not trusted: every top-k
// handler allocates O(k) state per request.
func TestKParamClamped(t *testing.T) {
	s := testServer()
	for _, path := range []string{
		"/synonyms?attr=make&k=100000000",
		"/autocomplete?attrs=make&k=100000000",
		"/values?attr=city&k=100000000",
		"/properties?entity=seattle&k=100000000",
		"/tablesearch?q=city&k=100000000",
	} {
		var out json.RawMessage
		if code := getJSON(t, s, path, &out); code != 200 {
			t.Errorf("%s: status %d", path, code)
		}
	}
	req := httptest.NewRequest("GET", "/values?attr=city&k=2147483647", nil)
	if got := kParam(req); got != MaxK {
		t.Errorf("kParam(max int32) = %d, want %d", got, MaxK)
	}
	req = httptest.NewRequest("GET", "/values?attr=city&k=5", nil)
	if got := kParam(req); got != 5 {
		t.Errorf("kParam(5) = %d, clamp must not touch sane values", got)
	}
}

func TestAutocompleteEndpoint(t *testing.T) {
	s := testServer()
	var items []ScoredItem
	if code := getJSON(t, s, "/autocomplete?attrs=make&k=2", &items); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(items) == 0 || items[0].Name != "model" {
		t.Errorf("autocomplete = %+v", items)
	}
	if len(items) > 2 {
		t.Errorf("k ignored: %d items", len(items))
	}
}

func TestValuesEndpoint(t *testing.T) {
	s := testServer()
	var vals []string
	if code := getJSON(t, s, "/values?attr=city", &vals); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(vals) != 2 || vals[0] != "seattle" {
		t.Errorf("values = %v", vals)
	}
	// Unknown attr → empty list, not error.
	if code := getJSON(t, s, "/values?attr=nosuch", &vals); code != 200 {
		t.Errorf("unknown attr status %d", code)
	}
	if len(vals) != 0 {
		t.Errorf("unknown attr values = %v", vals)
	}
}

func TestPropertiesEndpoint(t *testing.T) {
	s := testServer()
	var items []ScoredItem
	if code := getJSON(t, s, "/properties?entity=seattle", &items); code != 200 {
		t.Fatalf("status %d", code)
	}
	names := map[string]bool{}
	for _, it := range items {
		names[it.Name] = true
	}
	if !names["population"] {
		t.Errorf("properties = %+v", items)
	}
}

func TestMissingParams(t *testing.T) {
	s := testServer()
	for _, path := range []string{"/synonyms", "/autocomplete", "/values", "/properties"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != 400 {
			t.Errorf("%s without params: status %d, want 400", path, rec.Code)
		}
	}
}

func TestKDefaultsAndBounds(t *testing.T) {
	s := testServer()
	var items []ScoredItem
	getJSON(t, s, "/synonyms?attr=make&k=0", &items)   // bad k → default
	getJSON(t, s, "/synonyms?attr=make&k=abc", &items) // non-numeric → default
}

func TestTableSearchEndpoint(t *testing.T) {
	s := testServer()
	var hits []map[string]any
	if code := getJSON(t, s, "/tablesearch?q=population&k=5", &hits); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(hits) != 1 || hits[0]["url"] != "http://x" && hits[0]["rows"].(float64) != 1 {
		t.Errorf("hits = %v", hits)
	}
	req := httptest.NewRequest("GET", "/tablesearch", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Errorf("missing q: status %d, want 400", rec.Code)
	}
}

// Every handler must reject non-GET verbs with 405, an Allow header
// and the shared error envelope — previously a POST to any endpoint
// answered 200 as if it were a GET.
func TestNonGETRejectedWithEnvelope(t *testing.T) {
	s := testServer()
	for _, path := range []string{
		"/synonyms?attr=make",
		"/autocomplete?attrs=make",
		"/values?attr=city",
		"/properties?entity=seattle",
		"/tablesearch?q=population",
	} {
		for _, method := range []string{"POST", "PUT", "DELETE"} {
			req := httptest.NewRequest(method, path, nil)
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != 405 {
				t.Errorf("%s %s: status %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != "GET" {
				t.Errorf("%s %s: Allow %q, want GET", method, path, allow)
			}
			var env struct {
				Error struct {
					Code    string `json:"code"`
					Message string `json:"message"`
				} `json:"error"`
			}
			if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
				t.Fatalf("%s %s: body %q is not the JSON envelope: %v", method, path, rec.Body.String(), err)
			}
			if env.Error.Code != "method_not_allowed" || env.Error.Message == "" {
				t.Errorf("%s %s: envelope %+v", method, path, env)
			}
		}
	}
}

// Errors come out as the shared envelope, not bare text.
func TestBadRequestUsesEnvelope(t *testing.T) {
	s := testServer()
	req := httptest.NewRequest("GET", "/synonyms", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 400 {
		t.Fatalf("status %d, want 400", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type %q, want application/json", ct)
	}
	if !strings.Contains(rec.Body.String(), `"code":"bad_request"`) {
		t.Errorf("body %q lacks the envelope code", rec.Body.String())
	}
}
