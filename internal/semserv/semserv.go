// Package semserv is the §6 "semantic server": an HTTP JSON service
// exposing what aggregated web structure knows — attribute synonyms,
// schema auto-complete, attribute values, and entity properties — for
// use by schema matchers, form fillers, information extractors and
// query expanders.
//
// Every handler speaks the shared wire discipline of internal/httpx:
// GET only (anything else is 405 with the JSON error envelope),
// envelope-shaped errors, buffered JSON writes. The handlers are
// exported so the versioned /v1 layer (internal/api) can mount them
// under its own paths; the Server's own mux keeps the legacy flat
// paths (/synonyms, …) serving the same bytes.
package semserv

import (
	"net/http"
	"strconv"
	"strings"

	"deepweb/internal/httpx"
	"deepweb/internal/webtables"
)

// Server wraps the aggregated artifacts behind HTTP endpoints:
//
//	GET /synonyms?attr=make&k=5
//	GET /autocomplete?attrs=make,model&k=5
//	GET /values?attr=city&k=10
//	GET /properties?entity=seattle&k=10
//	GET /tablesearch?q=population&k=5
type Server struct {
	ACS    *webtables.ACSDb
	Values *webtables.ValueStore
	Tables []webtables.RawTable
	mux    *http.ServeMux
}

// New assembles a server over the aggregate structures.
func New(acs *webtables.ACSDb, vals *webtables.ValueStore, tables []webtables.RawTable) *Server {
	s := &Server{ACS: acs, Values: vals, Tables: tables, mux: http.NewServeMux()}
	s.mux.HandleFunc("/synonyms", s.Synonyms)
	s.mux.HandleFunc("/autocomplete", s.Autocomplete)
	s.mux.HandleFunc("/values", s.AttrValues)
	s.mux.HandleFunc("/properties", s.Properties)
	s.mux.HandleFunc("/tablesearch", s.TableSearch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// MaxK caps the k query parameter. Every top-k handler allocates and
// sorts O(k) state, so an unclamped k from untrusted input
// (?k=100000000) is a one-request memory bomb; requests beyond the cap
// are served the cap, not an error, matching how search engines treat
// oversized page sizes.
const MaxK = 1000

func kParam(r *http.Request) int {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 {
		return 10
	}
	return min(k, MaxK)
}

// ScoredItem is one JSON response entry.
type ScoredItem struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func toItems(xs []webtables.Scored) []ScoredItem {
	out := make([]ScoredItem, len(xs))
	for i, x := range xs {
		out[i] = ScoredItem{x.Name, x.Score}
	}
	return out
}

// Synonyms answers GET ?attr=X&k=N with the attribute's synonyms.
func (s *Server) Synonyms(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest, "missing attr")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, toItems(s.ACS.Synonyms(attr, kParam(r))))
}

// Autocomplete answers GET ?attrs=a,b&k=N with schema completions.
func (s *Server) Autocomplete(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	raw := r.URL.Query().Get("attrs")
	if raw == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest, "missing attrs")
		return
	}
	attrs := strings.Split(raw, ",")
	httpx.WriteJSON(w, http.StatusOK, toItems(s.ACS.SchemaAutocomplete(attrs, kParam(r))))
}

// AttrValues answers GET ?attr=X&k=N with the attribute's value list.
func (s *Server) AttrValues(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest, "missing attr")
		return
	}
	vals := s.Values.Values(attr, kParam(r))
	if vals == nil {
		vals = []string{}
	}
	httpx.WriteJSON(w, http.StatusOK, vals)
}

// Properties answers GET ?entity=X&k=N with the entity's properties.
func (s *Server) Properties(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest, "missing entity")
		return
	}
	httpx.WriteJSON(w, http.StatusOK, toItems(webtables.PropertiesOf(s.Tables, entity, kParam(r))))
}

// tableHitJSON is the table-search response entry: enough of the table
// to judge relevance, plus provenance.
type tableHitJSON struct {
	URL     string   `json:"url"`
	Headers []string `json:"headers"`
	Rows    int      `json:"rows"`
	Score   float64  `json:"score"`
}

// TableSearch answers GET ?q=X&k=N with ranked relational tables.
func (s *Server) TableSearch(w http.ResponseWriter, r *http.Request) {
	if !httpx.RequireMethod(w, r, http.MethodGet) {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		httpx.WriteError(w, http.StatusBadRequest, httpx.CodeBadRequest, "missing q")
		return
	}
	hits := webtables.SearchTables(s.Tables, q, kParam(r))
	out := make([]tableHitJSON, len(hits))
	for i, h := range hits {
		out[i] = tableHitJSON{
			URL:     h.Table.URL,
			Headers: h.Table.Headers,
			Rows:    len(h.Table.Rows),
			Score:   h.Score,
		}
	}
	httpx.WriteJSON(w, http.StatusOK, out)
}
