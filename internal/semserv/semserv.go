// Package semserv is the §6 "semantic server": an HTTP JSON service
// exposing what aggregated web structure knows — attribute synonyms,
// schema auto-complete, attribute values, and entity properties — for
// use by schema matchers, form fillers, information extractors and
// query expanders.
package semserv

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"

	"deepweb/internal/webtables"
)

// Server wraps the aggregated artifacts behind HTTP endpoints:
//
//	GET /synonyms?attr=make&k=5
//	GET /autocomplete?attrs=make,model&k=5
//	GET /values?attr=city&k=10
//	GET /properties?entity=seattle&k=10
type Server struct {
	ACS    *webtables.ACSDb
	Values *webtables.ValueStore
	Tables []webtables.RawTable
	mux    *http.ServeMux
}

// New assembles a server over the aggregate structures.
func New(acs *webtables.ACSDb, vals *webtables.ValueStore, tables []webtables.RawTable) *Server {
	s := &Server{ACS: acs, Values: vals, Tables: tables, mux: http.NewServeMux()}
	s.mux.HandleFunc("/synonyms", s.handleSynonyms)
	s.mux.HandleFunc("/autocomplete", s.handleAutocomplete)
	s.mux.HandleFunc("/values", s.handleValues)
	s.mux.HandleFunc("/properties", s.handleProperties)
	s.mux.HandleFunc("/tablesearch", s.handleTableSearch)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// MaxK caps the k query parameter. Every top-k handler allocates and
// sorts O(k) state, so an unclamped k from untrusted input
// (?k=100000000) is a one-request memory bomb; requests beyond the cap
// are served the cap, not an error, matching how search engines treat
// oversized page sizes.
const MaxK = 1000

func kParam(r *http.Request) int {
	k, err := strconv.Atoi(r.URL.Query().Get("k"))
	if err != nil || k <= 0 {
		return 10
	}
	return min(k, MaxK)
}

// writeJSON encodes v into a buffer first so an encoding failure (an
// unmarshalable score such as NaN, for instance) can still become a 500
// instead of a silently truncated 200, and reports the error to the
// caller.
func writeJSON(w http.ResponseWriter, v any) error {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(v); err != nil {
		http.Error(w, "encoding response: "+err.Error(), http.StatusInternalServerError)
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	_, err := w.Write(buf.Bytes())
	return err
}

// ScoredItem is one JSON response entry.
type ScoredItem struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

func toItems(xs []webtables.Scored) []ScoredItem {
	out := make([]ScoredItem, len(xs))
	for i, x := range xs {
		out[i] = ScoredItem{x.Name, x.Score}
	}
	return out
}

func (s *Server) handleSynonyms(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		http.Error(w, "missing attr", http.StatusBadRequest)
		return
	}
	writeJSON(w, toItems(s.ACS.Synonyms(attr, kParam(r))))
}

func (s *Server) handleAutocomplete(w http.ResponseWriter, r *http.Request) {
	raw := r.URL.Query().Get("attrs")
	if raw == "" {
		http.Error(w, "missing attrs", http.StatusBadRequest)
		return
	}
	attrs := strings.Split(raw, ",")
	writeJSON(w, toItems(s.ACS.SchemaAutocomplete(attrs, kParam(r))))
}

func (s *Server) handleValues(w http.ResponseWriter, r *http.Request) {
	attr := r.URL.Query().Get("attr")
	if attr == "" {
		http.Error(w, "missing attr", http.StatusBadRequest)
		return
	}
	vals := s.Values.Values(attr, kParam(r))
	if vals == nil {
		vals = []string{}
	}
	writeJSON(w, vals)
}

func (s *Server) handleProperties(w http.ResponseWriter, r *http.Request) {
	entity := r.URL.Query().Get("entity")
	if entity == "" {
		http.Error(w, "missing entity", http.StatusBadRequest)
		return
	}
	writeJSON(w, toItems(webtables.PropertiesOf(s.Tables, entity, kParam(r))))
}

// tableHitJSON is the /tablesearch response entry: enough of the table
// to judge relevance, plus provenance.
type tableHitJSON struct {
	URL     string   `json:"url"`
	Headers []string `json:"headers"`
	Rows    int      `json:"rows"`
	Score   float64  `json:"score"`
}

func (s *Server) handleTableSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		http.Error(w, "missing q", http.StatusBadRequest)
		return
	}
	hits := webtables.SearchTables(s.Tables, q, kParam(r))
	out := make([]tableHitJSON, len(hits))
	for i, h := range hits {
		out[i] = tableHitJSON{
			URL:     h.Table.URL,
			Headers: h.Table.Headers,
			Rows:    len(h.Table.Rows),
			Score:   h.Score,
		}
	}
	writeJSON(w, out)
}
