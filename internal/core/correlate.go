package core

import (
	"strings"

	"deepweb/internal/form"
)

// Correlated-input analysis (§4.2). Two patterns matter in practice:
//
// Ranges: pairs of inputs bounding one numeric property (min-price /
// max-price). Treating them independently "might generate 120 URLs,
// many for invalid ranges"; fusing them yields "the 10 URLs that each
// retrieve results in different price ranges".
//
// Database selection: a select menu choosing which catalog a paired
// text box searches; good keywords differ per catalog.
//
// The paper proposes mining input-name/value/position patterns from
// large form collections; the patterns below are exactly the min/max,
// from/to, low/high naming conventions that mining recovers.

// rangeMarkers are the (lowSide, highSide) marker word pairs recognized
// in input names and labels.
var rangeMarkers = [][2]string{
	{"min", "max"},
	{"from", "to"},
	{"low", "high"},
	{"start", "end"},
	{"least", "most"},
}

// RangePair is a detected range correlation: two inputs bounding the
// same property.
type RangePair struct {
	MinInput string
	MaxInput string
	// Stem is the shared property name after stripping markers, e.g.
	// "price" for minprice/maxprice.
	Stem string
	// Type is the hypothesized data type of the axis ("" if unknown).
	Type string
}

// DetectRanges finds range pairs among a form's text boxes by the
// mined naming patterns: the two names must reduce to the same stem
// after removing a marker pair, with the markers on the correct sides.
// Select menus never participate (range endpoints are typed by users).
func DetectRanges(f *form.Form) []RangePair {
	boxes := textBoxes(f)
	var out []RangePair
	used := map[string]bool{}
	for _, a := range boxes {
		if used[a.Name] {
			continue
		}
		for _, b := range boxes {
			if a.Name == b.Name || used[a.Name] || used[b.Name] {
				continue
			}
			for _, m := range rangeMarkers {
				sa, oka := stripMarker(a.Name, a.Label, m[0])
				sb, okb := stripMarker(b.Name, b.Label, m[1])
				if oka && okb && sa != "" && sa == sb {
					typ := HypothesizeType(sa, a.Label)
					out = append(out, RangePair{MinInput: a.Name, MaxInput: b.Name, Stem: sa, Type: typ})
					used[a.Name], used[b.Name] = true, true
				}
			}
		}
	}
	return out
}

// stripMarker removes the marker word from an input's name (or, failing
// that, checks the label) and returns the remaining stem. "minprice" →
// ("price", true) for marker "min"; "price from" labels work too.
func stripMarker(name, label, marker string) (string, bool) {
	n := strings.ToLower(name)
	if strings.HasPrefix(n, marker) {
		return trimSep(strings.TrimPrefix(n, marker)), true
	}
	if strings.HasSuffix(n, marker) {
		return trimSep(strings.TrimSuffix(n, marker)), true
	}
	l := strings.ToLower(label)
	if l != "" && strings.Contains(l, marker) {
		stem := trimSep(strings.ReplaceAll(l, marker, " "))
		stem = strings.Join(strings.Fields(stem), " ")
		if stem != "" {
			return stem, true
		}
	}
	return "", false
}

func trimSep(s string) string {
	return strings.Trim(s, "-_ .")
}

// DBSelection is a detected database-selection correlation: the select
// menu names the catalog, the text box carries keywords, and each
// catalog needs its own keyword set.
type DBSelection struct {
	SelectInput string
	TextInput   string
	// Options are the catalog values the select offers.
	Options []string
}

// DetectDBSelection spots the §4.2 database-selection pattern
// syntactically: a form with exactly one select menu and exactly one
// text box that is a search box (no recognized type and a generic
// name). Confirmation — whether per-catalog keyword sets actually
// differ — is behavioural and happens during probing (the surfacer
// compares per-option keyword harvests).
func DetectDBSelection(f *form.Form) *DBSelection {
	var selects, boxes []form.Input
	for _, in := range f.Bindable() {
		switch in.Kind {
		case form.SelectMenu:
			selects = append(selects, in)
		case form.TextBox:
			boxes = append(boxes, in)
		}
	}
	if len(selects) != 1 || len(boxes) != 1 {
		return nil
	}
	box := boxes[0]
	if HypothesizeType(box.Name, box.Label) != "" {
		return nil // a typed box is not a keyword box
	}
	if !looksLikeSearchBox(box.Name, box.Label) {
		return nil
	}
	return &DBSelection{
		SelectInput: selects[0].Name,
		TextInput:   box.Name,
		Options:     selects[0].Options,
	}
}

// searchBoxNames are the generic names sites give free-keyword inputs.
var searchBoxNames = []string{
	"q", "query", "search", "keyword", "keywords", "terms", "text", "find",
}

func looksLikeSearchBox(name, label string) bool {
	n := strings.ToLower(name)
	for _, s := range searchBoxNames {
		if n == s || strings.Contains(n, s) {
			return true
		}
	}
	l := strings.ToLower(label)
	return strings.Contains(l, "search") || strings.Contains(l, "keyword")
}

func textBoxes(f *form.Form) []form.Input {
	var out []form.Input
	for _, in := range f.Bindable() {
		if in.Kind == form.TextBox {
			out = append(out, in)
		}
	}
	return out
}
