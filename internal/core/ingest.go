package core

import (
	"context"
	"net/url"
	"strings"

	"deepweb/internal/index"
	"deepweb/internal/webx"
)

// Ingestion: surfaced URLs become ordinary index documents (§3.2 — "the
// URLs resulting from these submissions are generated off-line and
// indexed in a search engine like any other HTML page"). The only
// deep-web-specific bit is the Source attribution carried for impact
// accounting; ranking never sees it.

// DocSink is where ingestion delivers documents. *index.Index satisfies
// it directly; the engine's concurrent pipeline substitutes a buffering
// sink so fetched documents can be committed — and doc ids assigned — at
// a single ordered point regardless of worker interleaving.
type DocSink interface {
	// Has reports whether the URL is already present (ingestion skips it).
	Has(url string) bool
	// Add inserts a document, returning its id and whether it was new.
	Add(d index.Doc) (id int, added bool)
	// Annotate attaches surfacing-time annotations to an added document.
	Annotate(docID int, anns map[string]string)
}

// IngestStats reports one ingestion run.
type IngestStats struct {
	Fetched   int // URLs fetched (including paging continuations)
	Indexed   int // documents newly added
	EmptyPage int // fetched pages with no result items (indexed anyway)
	Rejected  int // pages outside the admission band (filtered runs)
	Errors    int
}

// IngestFilter is the §5.2 index-admission criterion: a surfaced page
// is a good index candidate only when its result count sits in
// [MinItems, MaxItems]. Zero values disable the respective bound.
type IngestFilter struct {
	MinItems int
	MaxItems int
}

func (fl IngestFilter) admits(items int) bool {
	if fl.MaxItems > 0 && items > fl.MaxItems {
		return false
	}
	if fl.MinItems > 0 && items < fl.MinItems {
		return false
	}
	return true
}

// IngestURLs fetches each surfaced URL and inserts it into the index
// with the given source attribution. followNext > 0 additionally walks
// up to that many "next page" continuations per URL — the index-refresh
// crawling the paper says discovers more content over time. A canceled
// context stops between fetches; the stats cover the work done so far.
func IngestURLs(ctx context.Context, f *webx.Fetcher, ix DocSink, source string, urls []string, followNext int) IngestStats {
	return IngestURLsFiltered(ctx, f, ix, source, urls, followNext, IngestFilter{})
}

// IngestURLsFiltered is IngestURLs with the §5.2 admission criterion
// applied per fetched page ("the pages we extract should neither have
// too many results on a single surfaced page nor too few").
func IngestURLsFiltered(ctx context.Context, f *webx.Fetcher, ix DocSink, source string, urls []string, followNext int, filt IngestFilter) IngestStats {
	if ctx == nil {
		ctx = context.Background()
	}
	var st IngestStats
	for _, u := range urls {
		if ctx.Err() != nil {
			break
		}
		st.ingestOne(ctx, f, ix, source, u, followNext, filt)
	}
	return st
}

func (st *IngestStats) ingestOne(ctx context.Context, f *webx.Fetcher, ix DocSink, source, u string, followNext int, filt IngestFilter) {
	cur := u
	for hop := 0; ; hop++ {
		if ctx.Err() != nil || ix.Has(cur) {
			return
		}
		page, err := f.GetCtx(ctx, cur)
		if err != nil || page.Status != 200 {
			st.Errors++
			return
		}
		st.Fetched++
		items := countItems(page)
		if items == 0 {
			st.EmptyPage++
		}
		if !filt.admits(items) {
			st.Rejected++
		} else if id, added := ix.Add(index.Doc{
			URL:    cur,
			Title:  page.Title(),
			Text:   page.Text(),
			Source: source,
		}); added {
			st.Indexed++
			// §5.1: the inputs filled to generate this page are known
			// — keep them as annotations the index can exploit.
			ix.Annotate(id, bindingAnnotations(cur))
		}
		if hop >= followNext {
			return
		}
		next := nextPageLink(page)
		if next == "" {
			return
		}
		cur = next
	}
}

// bindingAnnotations recovers the form binding from a surfaced URL's
// query string: every non-empty parameter except paging controls is an
// (input, value) pair the surfacer chose.
func bindingAnnotations(raw string) map[string]string {
	u, err := url.Parse(raw)
	if err != nil {
		return nil
	}
	out := map[string]string{}
	for key, vals := range u.Query() {
		switch key {
		case "start", "offset", "page":
			continue
		}
		if len(vals) > 0 && vals[0] != "" {
			out[key] = vals[0]
		}
	}
	return out
}

// nextPageLink finds a paging continuation: a link whose query contains
// a start/offset/page parameter pointing back at the same path.
func nextPageLink(p *webx.Page) string {
	for _, l := range p.Links() {
		if strings.Contains(l, "start=") || strings.Contains(l, "offset=") || strings.Contains(l, "page=") {
			return l
		}
	}
	return ""
}
