package core

import (
	"context"
	"errors"
	"net/url"
	"sort"

	"deepweb/internal/form"
	"deepweb/internal/textutil"
)

// Incremental Search for Informative Templates (ISIT, per the PVLDB'08
// algorithms this paper builds on). A query template is a choice of
// dimensions to bind; a template is informative when the result pages
// its submissions retrieve are sufficiently distinct from one another —
// i.e. the bound inputs actually partition the underlying database
// rather than being ignored or producing errors. Search starts from
// single-dimension templates and extends only informative ones, which
// is what keeps generated URLs proportional to the database rather than
// to the cross-product query space (§3.2).

// runISIT evaluates templates over the analysis' dimensions, fills in
// res.Reports, and emits URLs for the informative ones.
func (s *Surfacer) runISIT(ctx context.Context, res *Result) {
	dims := res.Analysis.Dimensions
	if len(dims) == 0 {
		return
	}
	type tmpl struct {
		sel  []int // dimension indices, ascending
		eval TemplateEval
	}
	var informative []tmpl

	evalSel := func(sel []int) (TemplateEval, bool) {
		return s.evalTemplate(ctx, res.Analysis.Form, dims, sel)
	}

	report := func(sel []int, eval TemplateEval, ok bool) int {
		names := make([]string, len(sel))
		for i, d := range sel {
			names[i] = dims[d].Name
		}
		res.Reports = append(res.Reports, TemplateReport{Dims: names, Eval: eval, Informative: ok})
		return len(res.Reports) - 1
	}

	// Level 1: singletons.
	for d := range dims {
		eval, budgetOK := evalSel([]int{d})
		ok := budgetOK && s.informative(eval)
		report([]int{d}, eval, ok)
		if ok {
			informative = append(informative, tmpl{sel: []int{d}, eval: eval})
		}
	}

	// Levels 2..MaxTemplateSize: extend informative templates with a
	// higher-indexed dimension (canonical order avoids duplicates).
	frontier := informative
	for size := 2; size <= s.Cfg.MaxTemplateSize; size++ {
		var next []tmpl
		for _, t := range frontier {
			last := t.sel[len(t.sel)-1]
			for d := last + 1; d < len(dims); d++ {
				sel := append(append([]int(nil), t.sel...), d)
				eval, budgetOK := evalSel(sel)
				// An extension must stay informative; under
				// StrictExtension it must also add distinctions over
				// its parent — otherwise the extra input is noise
				// multiplying URLs.
				ok := budgetOK && s.informative(eval)
				if ok && s.Cfg.StrictExtension {
					ok = eval.Distinct > t.eval.Distinct
				}
				report(sel, eval, ok)
				if ok {
					next = append(next, tmpl{sel: sel, eval: eval})
				}
			}
		}
		informative = append(informative, next...)
		frontier = next
	}

	// Emission: smaller templates first (they dominate coverage per
	// URL), then by evaluated distinctness.
	sort.SliceStable(informative, func(i, j int) bool {
		if len(informative[i].sel) != len(informative[j].sel) {
			return len(informative[i].sel) < len(informative[j].sel)
		}
		return informative[i].eval.Distinct > informative[j].eval.Distinct
	})
	seen := map[string]bool{}
	for _, t := range informative {
		if s.Cfg.Indexability && !s.indexable(t.eval) {
			continue
		}
		count := 0
		for _, b := range enumerate(dims, t.sel) {
			if len(res.URLs) >= s.Cfg.URLBudget {
				break
			}
			u := res.Analysis.Form.SubmitURL(b)
			if u == "" || seen[u] {
				continue
			}
			seen[u] = true
			res.URLs = append(res.URLs, u)
			count++
		}
		// Mark the matching report emitted.
		for i := range res.Reports {
			if sameSel(res.Reports[i].Dims, dims, t.sel) {
				res.Reports[i].Emitted = count > 0
				res.Reports[i].URLCount = count
			}
		}
	}
}

// informative applies the distinctness test.
func (s *Surfacer) informative(e TemplateEval) bool {
	if e.Sampled == 0 {
		return false
	}
	if e.Distinct < 2 && e.Sampled > 1 {
		return false
	}
	// A template whose sampled pages are all empty retrieves nothing.
	if e.ZeroPages == e.Sampled {
		return false
	}
	return e.DistinctRatio() >= s.Cfg.InformativenessThreshold
}

// indexable applies the §5.2 emission criterion: average items per
// sampled page within the target band.
func (s *Surfacer) indexable(e TemplateEval) bool {
	if e.AvgItems > float64(s.Cfg.TargetResultsMax) {
		return false
	}
	// Below the minimum only if essentially every page was empty.
	nonZero := e.Sampled - e.ZeroPages
	return nonZero > 0 && float64(e.Sampled-e.ZeroPages) >= 0.1*float64(e.Sampled)*float64(s.Cfg.TargetResultsMin)
}

// evalTemplate probes a deterministic sample of the template's
// submissions. The bool result is false only when the probe budget ran
// out mid-evaluation or the run was canceled — the two conditions that
// should end the whole template search. An unprobeable binding (POST
// form) aborts just this template's evaluation with budgetOK=true, and
// a transient fetch failure skips just that submission, so neither
// starves the remaining templates of probes they are still entitled
// to.
func (s *Surfacer) evalTemplate(ctx context.Context, f *form.Form, dims []Dimension, sel []int) (TemplateEval, bool) {
	all := enumerate(dims, sel)
	if len(all) == 0 {
		return TemplateEval{}, true
	}
	sample := sampleBindings(all, s.Cfg.SampleSize)
	var eval TemplateEval
	s.sigbuf = s.sigbuf[:0]
	totalItems := 0
	for _, b := range sample {
		obs, err := s.prober.probe(ctx, f, b)
		if stopProbing(err) {
			return eval, false
		}
		if errors.Is(err, errUnprobeable) {
			// Form-level condition: no binding of this template can be
			// submitted. Report it uninformative (Sampled stays 0 for a
			// fresh template), not budget-starved.
			return TemplateEval{}, true
		}
		if err != nil {
			continue // this one submission failed; sample the rest
		}
		eval.Sampled++
		s.sigbuf = append(s.sigbuf, obs.sig)
		totalItems += obs.items
		if obs.items == 0 {
			eval.ZeroPages++
		}
	}
	eval.Distinct = textutil.DistinctSignatures(s.sigbuf)
	if eval.Sampled > 0 {
		eval.AvgItems = float64(totalItems) / float64(eval.Sampled)
	}
	return eval, true
}

// enumerate lists every binding of the selected dimensions, in
// lexicographic value order — the template's full URL space.
func enumerate(dims []Dimension, sel []int) []form.Binding {
	total := 1
	for _, d := range sel {
		total *= len(dims[d].Values)
		if total > 1<<20 { // hard safety cap; budget trims later anyway
			total = 1 << 20
			break
		}
	}
	out := make([]form.Binding, 0, total)
	idx := make([]int, len(sel))
	for {
		b := form.Binding{}
		for i, d := range sel {
			dim := dims[d]
			row := dim.Values[idx[i]]
			for j, input := range dim.Inputs {
				b[input] = row[j]
			}
		}
		out = append(out, b)
		if len(out) >= total {
			break
		}
		// Odometer increment.
		k := len(sel) - 1
		for k >= 0 {
			idx[k]++
			if idx[k] < len(dims[sel[k]].Values) {
				break
			}
			idx[k] = 0
			k--
		}
		if k < 0 {
			break
		}
	}
	return out
}

// sampleBindings picks up to k bindings evenly spaced across the
// enumeration — deterministic, spread over the value space.
func sampleBindings(all []form.Binding, k int) []form.Binding {
	if len(all) <= k {
		return all
	}
	out := make([]form.Binding, 0, k)
	step := float64(len(all)) / float64(k)
	for i := 0; i < k; i++ {
		out = append(out, all[int(float64(i)*step)])
	}
	return out
}

func sameSel(names []string, dims []Dimension, sel []int) bool {
	if len(names) != len(sel) {
		return false
	}
	for i, d := range sel {
		if names[i] != dims[d].Name {
			return false
		}
	}
	return true
}

func mustParse(raw string) *url.URL {
	u, err := url.Parse(raw)
	if err != nil {
		return nil
	}
	return u
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
