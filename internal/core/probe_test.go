package core

import (
	"context"
	"errors"
	"net/http"
	"net/url"
	"testing"

	"deepweb/internal/form"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

// testForms returns a GET form served by a real site and a POST twin
// of it, plus the fetcher to probe them with.
func testForms(t *testing.T) (*webx.Fetcher, *form.Form, *form.Form) {
	t.Helper()
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, 42, 30)
	if err != nil {
		t.Fatal(err)
	}
	web.AddSite(site)
	f := webx.NewFetcher(web)
	page, err := f.GetCtx(context.Background(), site.FormURL())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := url.Parse(page.URL)
	getForm, err := form.FromDecl(base, page.Forms()[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	postForm := *getForm
	postForm.Method = "post"
	return f, getForm, &postForm
}

// The three probe failures carry three distinct signals; collapsing
// them is the bug this file regression-tests (an unprobeable POST
// binding or one failed fetch must not read as "budget exhausted").
func TestProbeDistinguishesFailures(t *testing.T) {
	f, getForm, postForm := testForms(t)
	b := form.Binding{"make": "ford"}

	p := &prober{fetch: f, budget: 0}
	if _, err := p.probe(context.Background(), getForm, b); !errors.Is(err, errBudget) {
		t.Errorf("exhausted budget: got %v, want errBudget", err)
	}

	p = &prober{fetch: f, budget: 10}
	if _, err := p.probe(context.Background(), postForm, b); !errors.Is(err, errUnprobeable) {
		t.Errorf("POST form: got %v, want errUnprobeable", err)
	}
	if p.used != 0 {
		t.Errorf("unprobeable binding consumed %d budget", p.used)
	}

	if obs, err := p.probe(context.Background(), getForm, b); err != nil || obs.items == 0 {
		t.Errorf("healthy probe: obs=%+v err=%v", obs, err)
	}
}

// evalTemplate on an unprobeable form must report "uninformative",
// not "budget exhausted": budgetOK=true lets ISIT keep evaluating the
// remaining templates.
func TestEvalTemplateUnprobeableIsNotBudgetExhaustion(t *testing.T) {
	f, _, postForm := testForms(t)
	s := NewSurfacer(f, DefaultConfig())
	s.prober = &prober{fetch: f, budget: 100}
	dims := []Dimension{{Name: "make", Inputs: []string{"make"}, Values: [][]string{{"ford"}, {"honda"}}}}

	eval, budgetOK := s.evalTemplate(context.Background(), postForm, dims, []int{0})
	if !budgetOK {
		t.Fatal("unprobeable template reported as budget exhaustion")
	}
	if eval.Sampled != 0 || s.informative(eval) {
		t.Fatalf("unprobeable template evaluated informative: %+v", eval)
	}
	if s.prober.used != 0 {
		t.Fatalf("unprobeable template consumed %d budget", s.prober.used)
	}

	// And with the budget genuinely gone, the old signal still fires.
	s.prober = &prober{fetch: f, budget: 0}
	if _, budgetOK := s.evalTemplate(context.Background(), postForm, dims, []int{0}); budgetOK {
		t.Fatal("exhausted budget not reported")
	}
}

// A transiently failing submission skips just that sample: the rest of
// the template's sample is still probed and evaluated.
func TestEvalTemplateSkipsFailedFetches(t *testing.T) {
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, 42, 30)
	if err != nil {
		t.Fatal(err)
	}
	web.AddSite(site)
	// Wrap the site: submissions for one make redirect-loop (a client
	// error), everything else is served normally.
	web.AddHandler(site.Spec.Host, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/results" && r.URL.Query().Get("make") == "poison" {
			http.Redirect(w, r, r.URL.String(), http.StatusFound)
			return
		}
		site.ServeHTTP(w, r)
	}))
	f := webx.NewFetcher(web)
	page, err := f.GetCtx(context.Background(), site.FormURL())
	if err != nil {
		t.Fatal(err)
	}
	base, _ := url.Parse(page.URL)
	fm, err := form.FromDecl(base, page.Forms()[0], 0)
	if err != nil {
		t.Fatal(err)
	}

	s := NewSurfacer(f, DefaultConfig())
	s.prober = &prober{fetch: f, budget: 100}
	makes := site.Table.DistinctStrings("make")
	if len(makes) > 9 {
		// Keep the whole template inside one evaluation sample
		// (SampleSize) so the poisoned binding is guaranteed probed.
		makes = makes[:9]
	}
	vals := [][]string{{"poison"}}
	for _, m := range makes {
		vals = append(vals, []string{m})
	}
	dims := []Dimension{{Name: "make", Inputs: []string{"make"}, Values: vals}}

	eval, budgetOK := s.evalTemplate(context.Background(), fm, dims, []int{0})
	if !budgetOK {
		t.Fatal("one failed fetch reported as budget exhaustion")
	}
	if eval.Sampled != len(makes) {
		t.Fatalf("sampled %d of %d healthy submissions", eval.Sampled, len(makes))
	}
}
