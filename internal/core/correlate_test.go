package core

import (
	"net/url"
	"testing"

	"deepweb/internal/form"
	"deepweb/internal/htmlx"
)

func formFromHTML(t *testing.T, html string) *form.Form {
	t.Helper()
	doc := htmlx.Parse(html)
	decls := htmlx.ExtractForms(doc)
	if len(decls) == 0 {
		t.Fatal("no form")
	}
	base, _ := url.Parse("http://site.example/search")
	f, err := form.FromDecl(base, decls[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDetectRangesMinMax(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<input type="text" name="minprice"><input type="text" name="maxprice">
		<input type="text" name="zip"></form>`)
	pairs := DetectRanges(f)
	if len(pairs) != 1 {
		t.Fatalf("got %d pairs: %+v", len(pairs), pairs)
	}
	p := pairs[0]
	if p.MinInput != "minprice" || p.MaxInput != "maxprice" || p.Stem != "price" || p.Type != TypePrice {
		t.Errorf("pair = %+v", p)
	}
}

func TestDetectRangesFromTo(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<input type="text" name="year_from"><input type="text" name="year_to"></form>`)
	pairs := DetectRanges(f)
	if len(pairs) != 1 || pairs[0].Stem != "year" || pairs[0].Type != TypeDate {
		t.Fatalf("pairs = %+v", pairs)
	}
	if pairs[0].MinInput != "year_from" {
		t.Errorf("low side = %s", pairs[0].MinInput)
	}
}

func TestDetectRangesViaLabels(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<label for="a">Salary From</label><input type="text" name="a">
		<label for="b">Salary To</label><input type="text" name="b"></form>`)
	pairs := DetectRanges(f)
	if len(pairs) != 1 {
		t.Fatalf("label-based detection failed: %+v", pairs)
	}
	if pairs[0].MinInput != "a" || pairs[0].MaxInput != "b" {
		t.Errorf("pair = %+v", pairs[0])
	}
}

func TestDetectRangesNoFalsePositives(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<input type="text" name="city"><input type="text" name="model">
		<input type="text" name="q"></form>`)
	if pairs := DetectRanges(f); len(pairs) != 0 {
		t.Errorf("false positives: %+v", pairs)
	}
}

func TestDetectRangesDifferentStemsNotPaired(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<input type="text" name="minprice"><input type="text" name="maxyear"></form>`)
	if pairs := DetectRanges(f); len(pairs) != 0 {
		t.Errorf("mismatched stems paired: %+v", pairs)
	}
}

func TestDetectRangesSelectsExcluded(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<select name="minprice"><option>1</option></select>
		<input type="text" name="maxprice"></form>`)
	if pairs := DetectRanges(f); len(pairs) != 0 {
		t.Errorf("select participated in range: %+v", pairs)
	}
}

func TestDetectDBSelection(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<select name="category"><option value="">any</option><option value="movies">movies</option>
		<option value="music">music</option></select>
		<input type="text" name="q"></form>`)
	db := DetectDBSelection(f)
	if db == nil {
		t.Fatal("db-selection not detected")
	}
	if db.SelectInput != "category" || db.TextInput != "q" || len(db.Options) != 2 {
		t.Errorf("db = %+v", db)
	}
}

func TestDetectDBSelectionRejectsTypedBox(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<select name="state"><option value="wa">wa</option></select>
		<input type="text" name="zip"></form>`)
	if db := DetectDBSelection(f); db != nil {
		t.Errorf("typed box misdetected as db-selection: %+v", db)
	}
}

func TestDetectDBSelectionNeedsExactlyOneOfEach(t *testing.T) {
	f := formFromHTML(t, `<form action="/r">
		<select name="a"><option value="1">1</option></select>
		<select name="b"><option value="2">2</option></select>
		<input type="text" name="q"></form>`)
	if db := DetectDBSelection(f); db != nil {
		t.Errorf("two selects accepted: %+v", db)
	}
}

func TestLooksLikeSearchBox(t *testing.T) {
	cases := map[string]bool{"q": true, "query": true, "keywords": true, "search_terms": true}
	for n, want := range cases {
		if got := looksLikeSearchBox(n, ""); got != want {
			t.Errorf("looksLikeSearchBox(%q) = %v", n, got)
		}
	}
	if looksLikeSearchBox("model", "Model") {
		t.Error("model should not look like a search box")
	}
	if !looksLikeSearchBox("x", "Search our catalog") {
		t.Error("label signal ignored")
	}
}

func TestStripMarker(t *testing.T) {
	if s, ok := stripMarker("minprice", "", "min"); !ok || s != "price" {
		t.Errorf("minprice: %q %v", s, ok)
	}
	if s, ok := stripMarker("price_from", "", "from"); !ok || s != "price" {
		t.Errorf("price_from: %q %v", s, ok)
	}
	if _, ok := stripMarker("price", "", "min"); ok {
		t.Error("no marker should not match")
	}
}
