package core

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"deepweb/internal/form"
	"deepweb/internal/htmlx"
	"deepweb/internal/textutil"
	"deepweb/internal/webx"
)

// observation is what one probe of a form teaches the surfacer: a
// content fingerprint of the result page and a structural estimate of
// how many result items it showed. Items are counted as list entries —
// a site-agnostic proxy; the engine never parses site-specific markup.
type observation struct {
	sig   textutil.Signature
	items int
	text  string
}

// prober issues form submissions against a fetch budget. All analysis
// traffic — the "off-line analysis" load of §3.2 — flows through here,
// so experiments can meter it, and cancellation is enforced here, so a
// canceled surfacing run stops within one probe round-trip. The
// context arrives per probe call (never stored — see ctxflow): the
// prober is pure budget state, the caller owns the request lifetime.
type prober struct {
	fetch  *webx.Fetcher
	budget int
	used   int
}

// The three ways a probe can fail mean three different things to the
// template search, so they must stay distinguishable: an exhausted
// budget ends the whole analysis (settle for what is learned so far),
// an unprobeable binding condemns only its template (the form cannot
// be submitted by URL — no budget was spent), and a transient fetch
// failure condemns only that one submission. Collapsing them into one
// boolean — the bug this fixes — made ISIT read a POST-only template
// or a single failed fetch as "budget empty" and abandon the remaining
// templates of a form that still had budget to spend.
var (
	// errBudget: the probe budget is exhausted.
	errBudget = errors.New("core: probe budget exhausted")
	// errUnprobeable: the binding has no submission URL (POST form).
	errUnprobeable = errors.New("core: binding not probeable by URL")
)

// stopProbing reports whether a probe error ends all further probing
// for the site: the budget ran out, or the surfacing context was
// canceled. Unprobeable bindings and transient fetch failures are NOT
// stop conditions — they condemn one template or one submission.
func stopProbing(err error) bool {
	return errors.Is(err, errBudget) ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// probe issues one form submission. A nil error carries a valid
// observation; otherwise the error is errBudget, errUnprobeable, the
// context's cancellation error, or a wrapped fetch/HTTP failure (check
// with errors.Is).
func (p *prober) probe(ctx context.Context, f *form.Form, b form.Binding) (observation, error) {
	if err := ctx.Err(); err != nil {
		return observation{}, err
	}
	if p.used >= p.budget {
		return observation{}, errBudget
	}
	u := f.SubmitURL(b)
	if u == "" {
		return observation{}, errUnprobeable
	}
	p.used++
	page, err := p.fetch.GetCtx(ctx, u)
	if err != nil {
		return observation{}, fmt.Errorf("core: probe: %w", err)
	}
	if page.Status != 200 {
		return observation{}, fmt.Errorf("core: probe %s: status %d", u, page.Status)
	}
	return observe(page), nil
}

// observe fingerprints a fetched page.
func observe(page *webx.Page) observation {
	text := page.Text()
	return observation{
		sig:   textutil.SignatureOf(text),
		items: countItems(page),
		text:  text,
	}
}

// countItems estimates results-per-page structurally: the number of
// list items (or table rows, whichever dominates) on the page. Result
// listings overwhelmingly render as repeated list/row elements; the
// count only needs to be comparable across pages of the same site.
func countItems(page *webx.Page) int {
	li := len(htmlx.Find(page.Doc, "li"))
	tr := len(htmlx.Find(page.Doc, "tr"))
	if tr > li {
		return tr
	}
	return li
}

// SeedKeywords ranks the content words of the site's already-indexed
// pages (homepage and form page — what a crawler has before surfacing)
// by frequency and returns the top n as probe seeds (§4.1: "candidate
// seed keywords by selecting the words that are most characteristic of
// the already indexed web pages from the form site").
func SeedKeywords(pageTexts []string, n int) []string {
	var tz textutil.Tokenizer
	var toks []string
	tf := textutil.TermVector{}
	for _, t := range pageTexts {
		toks = tz.ContentTokensInto(toks[:0], t)
		for _, tok := range toks {
			tf[tok]++
		}
	}
	top := tf.TopTerms(n)
	out := make([]string, len(top))
	for i, w := range top {
		out[i] = w.Term
	}
	return out
}

// keywordInfo records a productive probe keyword.
type keywordInfo struct {
	kw    string
	sig   textutil.Signature
	items int
}

// ProbeKeywords runs the §4.1 iterative-probing loop standalone against
// one text input and returns the selected keywords. It exists for
// experiments that study probing in isolation (E6); SurfaceSite uses
// the same loop internally. A canceled context stops the loop between
// probe submissions and returns the keywords selected so far.
func ProbeKeywords(ctx context.Context, f *webx.Fetcher, fm *form.Form, input string, seeds []string, cfg Config) []string {
	if ctx == nil {
		ctx = context.Background()
	}
	s := NewSurfacer(f, cfg)
	s.prober = &prober{fetch: f, budget: cfg.ProbeBudget}
	kws := s.probeSearchBox(ctx, fm, input, form.Binding{}, seeds)
	out := make([]string, len(kws))
	for i, k := range kws {
		out[i] = k.kw
	}
	return out
}

// probeSearchBox runs the iterative probing loop of §4.1 for one text
// input: probe seed keywords, harvest new candidate words from result
// pages, iterate, then select a diverse subset (keywords whose result
// pages are mutually distinct).
//
// fixed holds other inputs constant during probing — the hook the
// database-selection handler uses to build per-catalog keyword sets.
func (s *Surfacer) probeSearchBox(ctx context.Context, f *form.Form, inputName string, fixed form.Binding, seeds []string) []keywordInfo {
	var (
		productive []keywordInfo
		tried      = map[string]bool{}
		pool       = append([]string(nil), seeds...)
	)
	perRound := s.Cfg.MaxValuesPerInput
	for round := 0; round <= s.Cfg.ProbeRounds && len(pool) > 0; round++ {
		harvest := textutil.TermVector{}
		probed := 0
		for _, kw := range pool {
			if tried[kw] || probed >= perRound {
				continue
			}
			tried[kw] = true
			probed++
			b := fixed.Clone()
			b[inputName] = kw
			obs, err := s.prober.probe(ctx, f, b)
			if stopProbing(err) || errors.Is(err, errUnprobeable) {
				// No budget left, run canceled, or the input can never
				// be probed: further keywords cannot fare better.
				break
			}
			if err != nil {
				continue // one submission failed; the next may not
			}
			if obs.items > 0 {
				productive = append(productive, keywordInfo{kw: kw, sig: obs.sig, items: obs.items})
				s.toks = s.tz.ContentTokensInto(s.toks[:0], obs.text)
				for _, tok := range s.toks {
					if !tried[tok] {
						harvest[tok]++
					}
				}
			}
		}
		next := harvest.TopTerms(perRound)
		pool = pool[:0]
		for _, w := range next {
			pool = append(pool, w.Term)
		}
	}
	return selectDiverse(productive, s.Cfg.MaxValuesPerInput)
}

// selectDiverse keeps up to k keywords preferring ones that surface
// result pages not already covered — the paper's "selecting the ones
// that ensure diversity of result pages".
func selectDiverse(kws []keywordInfo, k int) []keywordInfo {
	// Stable order: by items descending, then keyword, so selection is
	// deterministic.
	sorted := append([]keywordInfo(nil), kws...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].items != sorted[j].items {
			return sorted[i].items > sorted[j].items
		}
		return sorted[i].kw < sorted[j].kw
	})
	seen := map[textutil.Signature]bool{}
	var out, dup []keywordInfo
	for _, kw := range sorted {
		if !seen[kw.sig] {
			seen[kw.sig] = true
			out = append(out, kw)
		} else {
			dup = append(dup, kw)
		}
	}
	// Fill remaining slots with duplicates-by-signature if there is
	// room; they still contribute result items.
	for _, kw := range dup {
		if len(out) >= k {
			break
		}
		out = append(out, kw)
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}
