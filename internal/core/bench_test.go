package core

import (
	"context"
	"net/url"
	"testing"

	"deepweb/internal/form"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

func BenchmarkSurfaceSite(b *testing.B) {
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("usedcars", 0, 42, 300)
	if err != nil {
		b.Fatal(err)
	}
	web.AddSite(site)
	fetch := webx.NewFetcher(web)
	b.ReportAllocs()
	b.ResetTimer()
	var urls int
	for i := 0; i < b.N; i++ {
		s := NewSurfacer(fetch, DefaultConfig())
		res, err := s.SurfaceSite(context.Background(), site.HomeURL())
		if err != nil {
			b.Fatal(err)
		}
		urls = len(res.URLs)
	}
	b.ReportMetric(float64(urls), "urls")
}

func BenchmarkIngestURLs(b *testing.B) {
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("library", 0, 42, 300)
	if err != nil {
		b.Fatal(err)
	}
	web.AddSite(site)
	fetch := webx.NewFetcher(web)
	s := NewSurfacer(fetch, DefaultConfig())
	res, err := s.SurfaceSite(context.Background(), site.HomeURL())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix := index.New()
		IngestURLs(context.Background(), fetch, ix, "f", res.URLs, 2)
	}
}

func BenchmarkDetectRanges(b *testing.B) {
	web := webgen.NewWeb()
	site, _ := webgen.BuildSite("usedcars", 0, 42, 50)
	web.AddSite(site)
	fetch := webx.NewFetcher(web)
	page, err := fetch.GetCtx(context.Background(), site.FormURL())
	if err != nil {
		b.Fatal(err)
	}
	f, err := formOfBench(page)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DetectRanges(f)
	}
}

// formOfBench parses the first form of a fetched page.
func formOfBench(p *webx.Page) (*form.Form, error) {
	base, err := url.Parse(p.URL)
	if err != nil {
		return nil, err
	}
	return form.FromDecl(base, p.Forms()[0], 0)
}
