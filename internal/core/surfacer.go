package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"

	"deepweb/internal/form"
	"deepweb/internal/resilient"
	"deepweb/internal/textutil"
	"deepweb/internal/webx"
)

// Dimension is one axis of the query space after correlation analysis:
// a single input with candidate values, or a fused pair (range min+max,
// or database-selector + keyword box) whose values bind both inputs at
// once.
type Dimension struct {
	Name   string     // display name, e.g. "make" or "minprice+maxprice"
	Inputs []string   // 1 or 2 input names
	Values [][]string // each entry aligned with Inputs
}

// TemplateEval summarizes probing a sample of one template's
// submissions.
type TemplateEval struct {
	Sampled   int     // submissions probed
	Distinct  int     // distinct result-page signatures
	ZeroPages int     // pages with no result items
	AvgItems  float64 // mean items per sampled page
}

// DistinctRatio is the informativeness statistic: distinct signatures
// over sampled submissions.
func (e TemplateEval) DistinctRatio() float64 {
	if e.Sampled == 0 {
		return 0
	}
	return float64(e.Distinct) / float64(e.Sampled)
}

// TemplateReport records the decision made about one candidate
// template.
type TemplateReport struct {
	Dims        []string // dimension names bound by the template
	Eval        TemplateEval
	Informative bool
	Emitted     bool // passed indexability + budget and produced URLs
	URLCount    int
}

// Analysis is everything the engine inferred about one form before URL
// generation.
type Analysis struct {
	Form        *form.Form
	PostOnly    bool // the site only offers POST forms: not surfaceable (§3.2)
	Seeds       []string
	TypedInputs map[string]string // input name → confirmed type
	RangePairs  []RangePair
	DBSel       *DBSelection
	Dimensions  []Dimension
}

// Result is the output of surfacing one site.
type Result struct {
	Analysis   Analysis
	Reports    []TemplateReport
	URLs       []string
	ProbesUsed int
}

// Surfacer runs the pipeline. Create one per site or reuse across
// sites; it is not safe for concurrent use.
type Surfacer struct {
	Fetch  *webx.Fetcher
	Cfg    Config
	prober *prober

	// Reusable text-pipeline scratch: every result page the prober
	// harvests keywords from is tokenized through here, so one site's
	// whole analysis shares a single arena and intern table.
	tz     textutil.Tokenizer
	toks   []string
	sigbuf []textutil.Signature
}

// NewSurfacer wires a surfacer to a fetcher.
func NewSurfacer(f *webx.Fetcher, cfg Config) *Surfacer {
	return &Surfacer{Fetch: f, Cfg: cfg}
}

// SurfaceSite analyzes the site whose homepage is at homeURL and
// returns the URLs to insert into the index. It discovers the form by
// following same-host links from the homepage, exactly as a crawler
// that has already indexed the site's surface pages would.
//
// The context cancels the analysis between probe submissions: a
// canceled run stops issuing traffic within one probe round-trip and
// returns ctx.Err() instead of a partial result.
func (s *Surfacer) SurfaceSite(ctx context.Context, homeURL string) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.prober = &prober{fetch: s.Fetch, budget: s.Cfg.ProbeBudget}
	res := &Result{}

	f, seedTexts, err := s.findForm(ctx, homeURL)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if f == nil {
		res.Analysis.PostOnly = true
		res.ProbesUsed = s.prober.used
		return res, nil
	}
	res.Analysis.Form = f
	res.Analysis.Seeds = SeedKeywords(seedTexts, s.Cfg.SeedKeywords)

	s.buildDimensions(ctx, &res.Analysis)
	s.runISIT(ctx, res)
	res.ProbesUsed = s.prober.used
	// Probing loops treat cancellation like budget exhaustion (settle
	// for what is learned); the caller must see the abort, not a
	// partial result it might commit as complete.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// findForm fetches the homepage, then same-host non-query links, until
// it finds a GET form with bindable inputs. It returns nil (no error)
// when only POST forms exist. The collected page texts double as the
// seed corpus.
func (s *Surfacer) findForm(ctx context.Context, homeURL string) (*form.Form, []string, error) {
	home, err := s.Fetch.GetCtx(ctx, homeURL)
	if err != nil {
		return nil, nil, fmt.Errorf("core: fetch homepage: %w", err)
	}
	if home.Status != 200 {
		// A failing homepage condemns the whole site for this pass, and
		// its class decides what happens next: a transient status (5xx,
		// 429) leaves the site unrecorded so the next refresh heals it;
		// a permanent one records a definitive failure. Without this
		// check a 503 error page would be parsed as a form-less homepage
		// and committed as an empty-but-done site.
		return nil, nil, fmt.Errorf("core: fetch homepage: %w",
			resilient.StatusError(mustParse(homeURL).Host, home.Status))
	}
	s.prober.used++
	texts := []string{home.Text()}
	pages := []*webx.Page{home}
	for _, l := range home.Links() {
		if strings.Contains(l, "?") || !sameHost(l, homeURL) {
			continue
		}
		if s.prober.used >= s.prober.budget || ctx.Err() != nil {
			break
		}
		p, err := s.Fetch.GetCtx(ctx, l)
		if err != nil || p.Status != 200 {
			continue
		}
		s.prober.used++
		texts = append(texts, p.Text())
		pages = append(pages, p)
	}
	sawPost := false
	for _, p := range pages {
		base := mustParse(p.URL)
		for i, decl := range p.Forms() {
			f, err := form.FromDecl(base, decl, i)
			if err != nil {
				continue
			}
			if f.Method != "get" {
				sawPost = true
				continue
			}
			if len(f.Bindable()) > 0 {
				return f, texts, nil
			}
		}
	}
	_ = sawPost
	return nil, texts, nil
}

// buildDimensions turns the form's inputs into query dimensions,
// applying typed-input recognition and correlation fusion per config.
func (s *Surfacer) buildDimensions(ctx context.Context, a *Analysis) {
	f := a.Form
	a.TypedInputs = map[string]string{}

	// Correlation analysis first: inputs consumed by a fused dimension
	// are excluded from independent treatment.
	fused := map[string]bool{}
	if s.Cfg.RangeAware {
		a.RangePairs = DetectRanges(f)
		for _, rp := range a.RangePairs {
			pairs := RangeValuePairs(rp.Type, 10)
			vals := make([][]string, len(pairs))
			for i, p := range pairs {
				vals[i] = []string{p[0], p[1]}
			}
			a.Dimensions = append(a.Dimensions, Dimension{
				Name:   rp.MinInput + "+" + rp.MaxInput,
				Inputs: []string{rp.MinInput, rp.MaxInput},
				Values: vals,
			})
			fused[rp.MinInput], fused[rp.MaxInput] = true, true
			if rp.Type != "" {
				a.TypedInputs[rp.MinInput] = rp.Type
				a.TypedInputs[rp.MaxInput] = rp.Type
			}
		}
	}
	if s.Cfg.PerDBKeywords {
		if db := DetectDBSelection(f); db != nil {
			if dim, ok := s.dbSelectionDimension(ctx, f, db); ok {
				a.DBSel = db
				a.Dimensions = append(a.Dimensions, dim)
				fused[db.SelectInput], fused[db.TextInput] = true, true
			}
		}
	}

	for _, in := range f.Bindable() {
		if fused[in.Name] {
			continue
		}
		switch in.Kind {
		case form.SelectMenu:
			vals := in.Options
			if len(vals) > s.Cfg.MaxValuesPerInput {
				vals = vals[:s.Cfg.MaxValuesPerInput]
			}
			a.Dimensions = append(a.Dimensions, singleDim(in.Name, vals))
		case form.TextBox:
			if s.Cfg.TypedInputs {
				if typ := HypothesizeType(in.Name, in.Label); typ != "" {
					if vals, ok := s.confirmType(ctx, f, in.Name, typ); ok {
						a.TypedInputs[in.Name] = typ
						a.Dimensions = append(a.Dimensions, singleDim(in.Name, vals))
						continue
					}
				}
			}
			kws := s.probeSearchBox(ctx, f, in.Name, form.Binding{}, a.Seeds)
			if len(kws) > 0 {
				vals := make([]string, len(kws))
				for i, k := range kws {
					vals[i] = k.kw
				}
				a.Dimensions = append(a.Dimensions, singleDim(in.Name, vals))
			}
		}
	}
	// Deterministic dimension order by name.
	sort.Slice(a.Dimensions, func(i, j int) bool { return a.Dimensions[i].Name < a.Dimensions[j].Name })
}

// confirmType validates a type hypothesis behaviourally: some sampled
// typed values must actually retrieve results. Returns the value list
// to use on success.
func (s *Surfacer) confirmType(ctx context.Context, f *form.Form, inputName, typ string) ([]string, bool) {
	vals := TypedValues(typ, s.Cfg.MaxValuesPerInput)
	hits := 0
	for i, v := range vals {
		if i >= 10 { // sample at most 10 values for confirmation
			break
		}
		obs, err := s.prober.probe(ctx, f, form.Binding{inputName: v})
		if stopProbing(err) || errors.Is(err, errUnprobeable) {
			break
		}
		if err != nil {
			continue // transient failure: try the next value
		}
		if obs.items > 0 {
			hits++
		}
	}
	return vals, hits > 0
}

// dbSelectionDimension builds the fused (catalog, keyword) dimension:
// per-option iterative probing yields per-catalog keyword sets (§4.2).
// It reports ok=false when the per-option keyword sets are essentially
// identical — then the select is not a database selector and the inputs
// are better treated independently.
func (s *Surfacer) dbSelectionDimension(ctx context.Context, f *form.Form, db *DBSelection) (Dimension, bool) {
	opts := db.Options
	if len(opts) > 6 {
		opts = opts[:6]
	}
	perOpt := make([][]keywordInfo, len(opts))
	kwSets := make([]map[string]bool, len(opts))
	// Per-option seeds come from probing the option alone: the option's
	// own result pages are the best description of its catalog.
	for i, opt := range opts {
		obs, err := s.prober.probe(ctx, f, form.Binding{db.SelectInput: opt})
		seeds := []string{}
		if err == nil && obs.items > 0 {
			tv := textutil.TermVector{}
			s.toks = s.tz.ContentTokensInto(s.toks[:0], obs.text)
			for _, tok := range s.toks {
				tv[tok]++
			}
			for _, w := range tv.TopTerms(s.Cfg.SeedKeywords) {
				seeds = append(seeds, w.Term)
			}
		}
		kws := s.probeSearchBox(ctx, f, db.TextInput, form.Binding{db.SelectInput: opt}, seeds)
		perOpt[i] = kws
		kwSets[i] = map[string]bool{}
		for _, k := range kws {
			kwSets[i][k.kw] = true
		}
	}
	// Confirmation: mean pairwise Jaccard of keyword sets must be low.
	if j := meanJaccard(kwSets); j > 0.5 {
		return Dimension{}, false
	}
	dim := Dimension{
		Name:   db.SelectInput + "+" + db.TextInput,
		Inputs: []string{db.SelectInput, db.TextInput},
	}
	perOptCap := s.Cfg.MaxValuesPerInput / max(1, len(opts))
	if perOptCap < 1 {
		perOptCap = 1
	}
	for i, opt := range opts {
		for k, kw := range perOpt[i] {
			if k >= perOptCap {
				break
			}
			dim.Values = append(dim.Values, []string{opt, kw.kw})
		}
	}
	return dim, len(dim.Values) > 0
}

func meanJaccard(sets []map[string]bool) float64 {
	var sum float64
	var n int
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			inter, union := 0, 0
			for k := range sets[i] {
				if sets[j][k] {
					inter++
				}
			}
			union = len(sets[i]) + len(sets[j]) - inter
			if union > 0 {
				sum += float64(inter) / float64(union)
				n++
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func singleDim(name string, vals []string) Dimension {
	out := Dimension{Name: name, Inputs: []string{name}}
	for _, v := range vals {
		out.Values = append(out.Values, []string{v})
	}
	return out
}

func sameHost(u, ref string) bool {
	a, b := mustParse(u), mustParse(ref)
	if a == nil || b == nil {
		return false
	}
	return a.Host == b.Host
}
