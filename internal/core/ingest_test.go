package core

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"deepweb/internal/index"
	"deepweb/internal/resilient"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

func surfacedLibrary(t *testing.T) (*webgen.Web, *webx.Fetcher, *Result) {
	t.Helper()
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("library", 0, 42, 200)
	if err != nil {
		t.Fatal(err)
	}
	web.AddSite(site)
	fetch := webx.NewFetcher(web)
	s := NewSurfacer(fetch, DefaultConfig())
	res, err := s.SurfaceSite(context.Background(), site.HomeURL())
	if err != nil {
		t.Fatal(err)
	}
	return web, fetch, res
}

func TestIngestFilterAdmits(t *testing.T) {
	cases := []struct {
		filt  IngestFilter
		items int
		want  bool
	}{
		{IngestFilter{}, 0, true},
		{IngestFilter{}, 10000, true},
		{IngestFilter{MinItems: 1}, 0, false},
		{IngestFilter{MinItems: 1}, 1, true},
		{IngestFilter{MaxItems: 50}, 51, false},
		{IngestFilter{MaxItems: 50}, 50, true},
		{IngestFilter{MinItems: 2, MaxItems: 5}, 3, true},
		{IngestFilter{MinItems: 2, MaxItems: 5}, 1, false},
		{IngestFilter{MinItems: 2, MaxItems: 5}, 6, false},
	}
	for _, c := range cases {
		if got := c.filt.admits(c.items); got != c.want {
			t.Errorf("admits(%+v, %d) = %v, want %v", c.filt, c.items, got, c.want)
		}
	}
}

func TestIngestFilteredRejects(t *testing.T) {
	_, fetch, res := surfacedLibrary(t)
	plain := index.New()
	stPlain := IngestURLs(context.Background(), fetch, plain, "f", res.URLs, 0)
	strict := index.New()
	stStrict := IngestURLsFiltered(context.Background(), fetch, strict, "f", res.URLs, 0, IngestFilter{MinItems: 1, MaxItems: 3})
	if stStrict.Rejected == 0 {
		t.Error("tight band rejected nothing")
	}
	if stStrict.Indexed >= stPlain.Indexed {
		t.Errorf("filtered indexed %d ≥ plain %d", stStrict.Indexed, stPlain.Indexed)
	}
	if stStrict.Indexed+stStrict.Rejected != stStrict.Fetched {
		t.Errorf("accounting off: %+v", stStrict)
	}
}

func TestIngestAnnotatesFromBinding(t *testing.T) {
	_, fetch, res := surfacedLibrary(t)
	ix := index.New()
	IngestURLs(context.Background(), fetch, ix, "f", res.URLs, 0)
	annotated := 0
	for id := 0; id < ix.Len(); id++ {
		anns := ix.AnnotationsOf(id)
		if len(anns) == 0 {
			continue
		}
		annotated++
		if v, ok := anns["start"]; ok {
			t.Fatalf("paging param leaked into annotations: start=%q", v)
		}
	}
	if annotated == 0 {
		t.Error("no ingested documents carry binding annotations")
	}
}

func TestBindingAnnotations(t *testing.T) {
	got := bindingAnnotations("http://h.example/results?make=ford&model=&start=10&zip=98101")
	if got["make"] != "ford" || got["zip"] != "98101" {
		t.Errorf("annotations = %v", got)
	}
	if _, ok := got["model"]; ok {
		t.Error("empty param annotated")
	}
	if _, ok := got["start"]; ok {
		t.Error("paging param annotated")
	}
	if bindingAnnotations("://bad") != nil {
		t.Error("bad URL should give nil")
	}
}

func TestIngestErrorURLs(t *testing.T) {
	web := webgen.NewWeb() // empty internet: every URL 404s
	fetch := webx.NewFetcher(web)
	ix := index.New()
	st := IngestURLs(context.Background(), fetch, ix, "f", []string{"http://nosuch.example/results?q=x"}, 0)
	if st.Errors != 1 || st.Indexed != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSurfaceSiteNoFormIsPostOnly(t *testing.T) {
	// A host that exists but serves no forms at all.
	web := webgen.NewWeb()
	site, _ := webgen.BuildSite("stores", 0, 1, 10)
	web.AddSite(site)
	fetch := webx.NewFetcher(web)
	s := NewSurfacer(fetch, DefaultConfig())
	// Surface the *record* page as if it were a homepage: no form there
	// and no same-host non-query links to one.
	res, err := s.SurfaceSite(context.Background(), "http://"+site.Spec.Host+"/record?id=0")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Analysis.PostOnly || len(res.URLs) != 0 {
		t.Errorf("formless start should yield no URLs: %+v", res.Analysis)
	}
}

func TestSurfaceSiteUnreachableHomepage(t *testing.T) {
	// A 404 homepage is a definitive answer: the surfacer must fail the
	// site with a permanent-classified error (not parse the error page
	// as a form-less homepage, and not call it transient — nothing will
	// heal a host that does not exist).
	web := webgen.NewWeb()
	fetch := webx.NewFetcher(web)
	s := NewSurfacer(fetch, DefaultConfig())
	_, err := s.SurfaceSite(context.Background(), "http://nosuch.example/")
	if err == nil {
		t.Fatal("404 homepage should fail the site")
	}
	if !errors.Is(err, resilient.ErrPermanent) {
		t.Fatalf("404 homepage err = %v, want permanent classification", err)
	}
}

func TestSurfaceSiteMalformedHTML(t *testing.T) {
	// A site whose pages are tag soup must not break analysis.
	web := webgen.NewWeb()
	web.AddHandler("soup.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, `<html><body><form action="/r"><select name="x"><option value="1">`)
		fmt.Fprint(w, `<li><a href="/a">x</a><table><tr><td>y`)
		fmt.Fprint(w, `<<<>>> &unknown; <p <p <input name=`)
	}))
	fetch := webx.NewFetcher(web)
	s := NewSurfacer(fetch, DefaultConfig())
	res, err := s.SurfaceSite(context.Background(), "http://soup.example/")
	if err != nil {
		t.Fatalf("surfacer failed on tag soup: %v", err)
	}
	// The soup form has one select with one option; whatever the
	// engine emits must at least not crash or loop.
	if res.ProbesUsed > DefaultConfig().ProbeBudget+5 {
		t.Errorf("budget exceeded on soup site: %d", res.ProbesUsed)
	}
}

func TestNaiveConfigDisablesSemantics(t *testing.T) {
	c := NaiveConfig()
	if c.TypedInputs || c.RangeAware || c.PerDBKeywords || c.Indexability || c.StrictExtension {
		t.Errorf("naive config leaves semantics on: %+v", c)
	}
	d := DefaultConfig()
	if !d.TypedInputs || !d.RangeAware || !d.PerDBKeywords || !d.Indexability || !d.StrictExtension {
		t.Errorf("default config missing semantics: %+v", d)
	}
}

func TestProbeKeywordsStandalone(t *testing.T) {
	web := webgen.NewWeb()
	site, _ := webgen.BuildSite("library", 0, 42, 150)
	web.AddSite(site)
	fetch := webx.NewFetcher(web)
	page, err := fetch.GetCtx(context.Background(), site.FormURL())
	if err != nil {
		t.Fatal(err)
	}
	f, err := formOfBench(page)
	if err != nil {
		t.Fatal(err)
	}
	home, _ := fetch.GetCtx(context.Background(), site.HomeURL())
	seeds := SeedKeywords([]string{home.Text()}, 10)
	kws := ProbeKeywords(context.Background(), fetch, f, "q", seeds, DefaultConfig())
	if len(kws) == 0 {
		t.Fatal("standalone probing found nothing")
	}
	for _, kw := range kws {
		if strings.TrimSpace(kw) == "" {
			t.Error("empty keyword returned")
		}
	}
}
