package core

import (
	"strconv"
	"testing"
	"testing/quick"
)

func TestHypothesizeType(t *testing.T) {
	cases := []struct {
		name, label, want string
	}{
		{"zip", "", TypeZip},
		{"zipcode", "Zip Code", TypeZip},
		{"postal_code", "", TypeZip},
		{"city", "", TypeCity},
		{"hometown", "Town", TypeCity},
		{"minprice", "", TypePrice},
		{"salary_from", "", TypePrice},
		{"maxcost", "", TypePrice},
		{"year", "", TypeDate},
		{"pubdate", "", TypeDate},
		{"q", "", ""},
		{"model", "Model", ""},
		{"", "Zip Code", TypeZip}, // label-only signal
	}
	for _, c := range cases {
		if got := HypothesizeType(c.name, c.label); got != c.want {
			t.Errorf("HypothesizeType(%q,%q) = %q, want %q", c.name, c.label, got, c.want)
		}
	}
}

func TestTypedValuesZip(t *testing.T) {
	vals := TypedValues(TypeZip, 60)
	if len(vals) != 60 {
		t.Fatalf("got %d zips", len(vals))
	}
	seen := map[string]bool{}
	for _, v := range vals {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1000 || n > 99999 {
			t.Errorf("bad zip %q", v)
		}
		if seen[v] {
			t.Errorf("duplicate zip %q", v)
		}
		seen[v] = true
	}
}

func TestTypedValuesCity(t *testing.T) {
	vals := TypedValues(TypeCity, 10)
	if len(vals) != 10 || vals[0] != "seattle" {
		t.Errorf("cities = %v", vals)
	}
	// Request beyond vocabulary truncates rather than repeating.
	all := TypedValues(TypeCity, 10000)
	seen := map[string]bool{}
	for _, v := range all {
		if seen[v] {
			t.Fatalf("duplicate city %q", v)
		}
		seen[v] = true
	}
}

func TestTypedValuesPriceMonotone(t *testing.T) {
	vals := TypedValues(TypePrice, 10)
	prev := -1
	for _, v := range vals {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad price %q", v)
		}
		if n <= prev {
			t.Fatalf("prices not strictly increasing: %v", vals)
		}
		prev = n
	}
}

func TestTypedValuesDate(t *testing.T) {
	vals := TypedValues(TypeDate, 12)
	for _, v := range vals {
		n, _ := strconv.Atoi(v)
		if n < 1900 || n > 2008 {
			t.Errorf("year %q out of range", v)
		}
	}
	if vals[0] != "1900" || vals[len(vals)-1] != "2008" {
		t.Errorf("year spread endpoints: %v", vals)
	}
}

func TestTypedValuesUnknown(t *testing.T) {
	if TypedValues("nosuchtype", 5) != nil {
		t.Error("unknown type should give nil")
	}
}

func TestRangeValuePairsContiguous(t *testing.T) {
	for _, typ := range []string{TypePrice, TypeDate, ""} {
		pairs := RangeValuePairs(typ, 10)
		if len(pairs) != 10 {
			t.Fatalf("%s: %d pairs, want 10", typ, len(pairs))
		}
		for i, p := range pairs {
			lo, err1 := strconv.Atoi(p[0])
			hi, err2 := strconv.Atoi(p[1])
			if err1 != nil || err2 != nil || lo >= hi {
				t.Fatalf("%s pair %d invalid: %v", typ, i, p)
			}
			if i > 0 && pairs[i-1][1] != p[0] {
				t.Fatalf("%s pairs not contiguous at %d: %v then %v", typ, i, pairs[i-1], p)
			}
		}
	}
}

// Property: every RangeValuePairs output covers an interval with no
// gaps, for any pair count.
func TestRangeValuePairsProperty(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8)%20 + 1
		pairs := RangeValuePairs(TypePrice, n)
		if len(pairs) != n {
			return false
		}
		for i := 1; i < len(pairs); i++ {
			if pairs[i-1][1] != pairs[i][0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
