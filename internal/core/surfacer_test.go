package core

import (
	"context"
	"net/url"
	"strings"
	"testing"

	"deepweb/internal/form"
	"deepweb/internal/index"
	"deepweb/internal/webgen"
	"deepweb/internal/webx"
)

// surfaceDomain builds one site of the domain, surfaces it, and returns
// everything the assertions need.
func surfaceDomain(t *testing.T, domain string, rows int, cfg Config) (*webgen.Web, *webgen.Site, *Result) {
	t.Helper()
	web := webgen.NewWeb()
	site, err := webgen.BuildSite(domain, 0, 42, rows)
	if err != nil {
		t.Fatal(err)
	}
	web.AddSite(site)
	s := NewSurfacer(webx.NewFetcher(web), cfg)
	res, err := s.SurfaceSite(context.Background(), site.HomeURL())
	if err != nil {
		t.Fatal(err)
	}
	return web, site, res
}

// coverageOf returns the fraction of the site's rows retrievable via
// the surfaced URLs (ground-truth oracle).
func coverageOf(t *testing.T, site *webgen.Site, urls []string) float64 {
	t.Helper()
	covered := map[int]bool{}
	for _, u := range urls {
		parsed, err := url.Parse(u)
		if err != nil {
			t.Fatalf("bad surfaced URL %q: %v", u, err)
		}
		for _, id := range site.MatchingRows(parsed.Query()) {
			covered[id] = true
		}
	}
	return float64(len(covered)) / float64(site.Table.Len())
}

func TestSurfaceUsedCars(t *testing.T) {
	_, site, res := surfaceDomain(t, "usedcars", 300, DefaultConfig())
	a := res.Analysis
	if a.PostOnly {
		t.Fatal("GET site reported PostOnly")
	}
	if a.Form == nil || a.Form.Site != site.Spec.Host {
		t.Fatalf("form discovery failed: %+v", a.Form)
	}
	// Typed inputs: zip and the price range endpoints.
	if a.TypedInputs["minprice"] != TypePrice || a.TypedInputs["maxprice"] != TypePrice {
		t.Errorf("price range not typed: %v", a.TypedInputs)
	}
	// Range pair fused.
	if len(a.RangePairs) != 1 || a.RangePairs[0].Stem != "price" {
		t.Fatalf("range pairs = %+v", a.RangePairs)
	}
	for _, d := range a.Dimensions {
		if d.Name == "minprice" || d.Name == "maxprice" {
			t.Errorf("range endpoint surfaced independently: %s", d.Name)
		}
	}
	if len(res.URLs) == 0 {
		t.Fatal("no URLs emitted")
	}
	if cov := coverageOf(t, site, res.URLs); cov < 0.8 {
		t.Errorf("coverage = %.2f, want ≥ 0.8", cov)
	}
}

func TestSurfaceUsedCarsSelectDimension(t *testing.T) {
	_, site, res := surfaceDomain(t, "usedcars", 300, DefaultConfig())
	var makeDim *Dimension
	for i := range res.Analysis.Dimensions {
		if res.Analysis.Dimensions[i].Name == "make" {
			makeDim = &res.Analysis.Dimensions[i]
		}
	}
	if makeDim == nil {
		t.Fatal("make select not a dimension")
	}
	want := site.Table.DistinctStrings("make")
	if len(makeDim.Values) != len(want) {
		t.Errorf("make values = %d, want %d", len(makeDim.Values), len(want))
	}
}

func TestSurfaceLibrarySearchBox(t *testing.T) {
	_, site, res := surfaceDomain(t, "library", 300, DefaultConfig())
	var qDim *Dimension
	for i := range res.Analysis.Dimensions {
		if res.Analysis.Dimensions[i].Name == "q" {
			qDim = &res.Analysis.Dimensions[i]
		}
	}
	if qDim == nil {
		t.Fatal("search box produced no dimension")
	}
	if len(qDim.Values) < 5 {
		t.Errorf("iterative probing found only %d keywords", len(qDim.Values))
	}
	if cov := coverageOf(t, site, res.URLs); cov < 0.5 {
		t.Errorf("library coverage = %.2f, want ≥ 0.5", cov)
	}
}

func TestSurfaceMediaDBSelection(t *testing.T) {
	_, _, res := surfaceDomain(t, "media", 400, DefaultConfig())
	if res.Analysis.DBSel == nil {
		t.Fatal("database-selection pattern not detected")
	}
	var fused *Dimension
	for i := range res.Analysis.Dimensions {
		if strings.Contains(res.Analysis.Dimensions[i].Name, "+") {
			fused = &res.Analysis.Dimensions[i]
		}
	}
	if fused == nil {
		t.Fatal("no fused catalog+keyword dimension")
	}
	// The fused dimension must carry (option, keyword) pairs spanning
	// multiple catalogs.
	cats := map[string]bool{}
	for _, v := range fused.Values {
		cats[v[0]] = true
	}
	if len(cats) < 3 {
		t.Errorf("fused dimension spans %d catalogs, want ≥ 3", len(cats))
	}
}

func TestSurfacePostOnly(t *testing.T) {
	web := webgen.NewWeb()
	site, err := webgen.BuildSite("govdocs", 0, 7, 50)
	if err != nil {
		t.Fatal(err)
	}
	post := webgen.AsPost(site)
	web.AddSite(post)
	s := NewSurfacer(webx.NewFetcher(web), DefaultConfig())
	res, err := s.SurfaceSite(context.Background(), post.HomeURL())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Analysis.PostOnly {
		t.Error("POST-only site not flagged")
	}
	if len(res.URLs) != 0 {
		t.Errorf("POST site surfaced %d URLs", len(res.URLs))
	}
}

func TestSurfaceRespectsURLBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.URLBudget = 15
	_, _, res := surfaceDomain(t, "usedcars", 300, cfg)
	if len(res.URLs) > 15 {
		t.Errorf("URL budget violated: %d", len(res.URLs))
	}
}

func TestSurfaceRespectsProbeBudget(t *testing.T) {
	web := webgen.NewWeb()
	site, _ := webgen.BuildSite("usedcars", 0, 42, 300)
	web.AddSite(site)
	cfg := DefaultConfig()
	cfg.ProbeBudget = 40
	web.ResetCounts()
	s := NewSurfacer(webx.NewFetcher(web), cfg)
	if _, err := s.SurfaceSite(context.Background(), site.HomeURL()); err != nil {
		t.Fatal(err)
	}
	// Analysis traffic (all requests; nothing else ran) must respect
	// the budget within the slack of the final in-flight sample.
	if got := web.Requests(site.Spec.Host); got > 40+5 {
		t.Errorf("probe budget 40 but %d requests", got)
	}
}

func TestSurfaceURLsAreCanonicalAndUnique(t *testing.T) {
	_, _, res := surfaceDomain(t, "usedcars", 200, DefaultConfig())
	seen := map[string]bool{}
	for _, u := range res.URLs {
		if seen[u] {
			t.Fatalf("duplicate URL %s", u)
		}
		seen[u] = true
		if !strings.Contains(u, "/results?") {
			t.Fatalf("URL not a form submission: %s", u)
		}
	}
}

func TestNaiveVsRangeAwareURLCounts(t *testing.T) {
	// The §4.2 arithmetic: 2 range inputs with ~10 values each surface
	// ~10 URLs fused but ~100+ as independent inputs.
	aware := DefaultConfig()
	naive := DefaultConfig()
	naive.RangeAware = false

	_, _, resAware := surfaceDomain(t, "realestate", 300, aware)
	_, _, resNaive := surfaceDomain(t, "realestate", 300, naive)

	priceURLs := func(res *Result) int {
		n := 0
		for _, u := range res.URLs {
			parsed, _ := url.Parse(u)
			q := parsed.Query()
			if q.Get("minprice") != "" || q.Get("maxprice") != "" {
				n++
			}
		}
		return n
	}
	na, aw := priceURLs(resNaive), priceURLs(resAware)
	if aw == 0 || na == 0 {
		t.Fatalf("price URLs: aware=%d naive=%d", aw, na)
	}
	if na < 3*aw {
		t.Errorf("naive (%d) should generate ≫ range-aware (%d) price URLs", na, aw)
	}
}

func TestIngestSurfacedURLs(t *testing.T) {
	web, site, res := surfaceDomain(t, "faculty", 200, DefaultConfig())
	ix := index.New()
	st := IngestURLs(context.Background(), webx.NewFetcher(web), ix, res.Analysis.Form.ID, res.URLs, 3)
	if st.Indexed == 0 {
		t.Fatal("nothing indexed")
	}
	if st.Indexed != ix.Len() {
		t.Errorf("Indexed=%d but index has %d", st.Indexed, ix.Len())
	}
	// A department query must now hit a surfaced page of this site.
	dept := site.Table.DistinctStrings("department")[0]
	hits := ix.Search(dept, 5)
	if len(hits) == 0 {
		t.Fatalf("no hits for surfaced department %q", dept)
	}
	if hits[0].Source != res.Analysis.Form.ID {
		t.Errorf("hit not attributed to form: %+v", hits[0])
	}
}

func TestIngestFollowsPaging(t *testing.T) {
	web, site, res := surfaceDomain(t, "usedcars", 400, DefaultConfig())
	ix := index.New()
	// followNext=0: page-1 docs only.
	st0 := IngestURLs(context.Background(), webx.NewFetcher(web), ix, "f", res.URLs, 0)
	ix2 := index.New()
	st2 := IngestURLs(context.Background(), webx.NewFetcher(web), ix2, "f", res.URLs, 5)
	if st2.Indexed <= st0.Indexed {
		t.Errorf("paging follow added nothing: %d vs %d", st2.Indexed, st0.Indexed)
	}
	_ = site
}

func TestEnumerateOdometer(t *testing.T) {
	dims := []Dimension{
		{Name: "a", Inputs: []string{"a"}, Values: [][]string{{"1"}, {"2"}}},
		{Name: "b", Inputs: []string{"b"}, Values: [][]string{{"x"}, {"y"}, {"z"}}},
	}
	bs := enumerate(dims, []int{0, 1})
	if len(bs) != 6 {
		t.Fatalf("enumerate = %d bindings, want 6", len(bs))
	}
	if bs[0]["a"] != "1" || bs[0]["b"] != "x" || bs[5]["a"] != "2" || bs[5]["b"] != "z" {
		t.Errorf("order wrong: first=%v last=%v", bs[0], bs[5])
	}
}

func TestEnumerateFusedDimension(t *testing.T) {
	dims := []Dimension{{
		Name: "min+max", Inputs: []string{"min", "max"},
		Values: [][]string{{"0", "10"}, {"10", "20"}},
	}}
	bs := enumerate(dims, []int{0})
	if len(bs) != 2 {
		t.Fatalf("got %d bindings", len(bs))
	}
	if bs[0]["min"] != "0" || bs[0]["max"] != "10" {
		t.Errorf("fused binding wrong: %v", bs[0])
	}
}

func TestSampleBindingsSpread(t *testing.T) {
	all := make([]form.Binding, 100)
	for i := range all {
		all[i] = form.Binding{"i": string(rune('a' + i%26))}
	}
	s := sampleBindings(all, 10)
	if len(s) != 10 {
		t.Fatalf("sample size %d", len(s))
	}
	small := sampleBindings(all[:3], 10)
	if len(small) != 3 {
		t.Errorf("undersized input should pass through, got %d", len(small))
	}
}

func TestSeedKeywords(t *testing.T) {
	texts := []string{
		"quality used cars for sale",
		"used cars and trucks, cars cars cars",
	}
	kws := SeedKeywords(texts, 3)
	if len(kws) != 3 || kws[0] != "cars" {
		t.Errorf("SeedKeywords = %v", kws)
	}
}

func TestSelectDiverse(t *testing.T) {
	kws := []keywordInfo{
		{kw: "a", sig: 1, items: 10},
		{kw: "b", sig: 1, items: 9}, // same page as a
		{kw: "c", sig: 2, items: 5},
		{kw: "d", sig: 3, items: 1},
	}
	got := selectDiverse(kws, 3)
	if len(got) != 3 {
		t.Fatalf("got %d", len(got))
	}
	if got[0].kw != "a" || got[1].kw != "c" || got[2].kw != "d" {
		t.Errorf("diversity selection wrong: %+v", got)
	}
	// With room, the duplicate is appended.
	got4 := selectDiverse(kws, 4)
	if len(got4) != 4 || got4[3].kw != "b" {
		t.Errorf("fill-up wrong: %+v", got4)
	}
}

func TestInformativeEdgeCases(t *testing.T) {
	s := NewSurfacer(nil, DefaultConfig())
	if s.informative(TemplateEval{}) {
		t.Error("empty eval informative")
	}
	if s.informative(TemplateEval{Sampled: 10, Distinct: 1, ZeroPages: 0}) {
		t.Error("all-same-signature informative")
	}
	if s.informative(TemplateEval{Sampled: 10, Distinct: 10, ZeroPages: 10}) {
		t.Error("all-empty-pages informative")
	}
	if !s.informative(TemplateEval{Sampled: 10, Distinct: 8, ZeroPages: 1, AvgItems: 5}) {
		t.Error("clearly informative template rejected")
	}
	if !s.informative(TemplateEval{Sampled: 1, Distinct: 1}) {
		t.Error("single-URL template should be informative")
	}
}
