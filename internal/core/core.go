// Package core implements the paper's primary contribution: the
// deep-web surfacing engine (Madhavan et al., CIDR 2009 §3.2–§5;
// algorithms per PVLDB 2008). Given nothing but the URL of a page with
// an HTML form, it
//
//  1. classifies each text input as a search box, a typed box (zip code,
//     city, price, date — §4.1) or a plain categorical box;
//  2. finds candidate values per input: select-menu options, typed-value
//     vocabularies, seed keywords from the site's already-indexed pages
//     refined by iterative probing (§4.1);
//  3. detects correlated inputs — range pairs and database-selection
//     pairs (§4.2) — and fuses each into a single query dimension;
//  4. searches for informative query templates by probing samples of
//     submissions and fingerprinting result pages (the informativeness
//     test / incremental search of PVLDB'08);
//  5. emits the submission URLs of informative templates, subject to an
//     indexability criterion (§5.2: neither too many nor too few results
//     per surfaced page) and a URL budget.
//
// Every step that the paper ablates is behind a Config switch so the
// benchmarks can run both arms.
package core

// Config tunes the surfacing engine. The zero value is not useful; start
// from DefaultConfig.
type Config struct {
	// MaxValuesPerInput caps candidate values kept per input dimension.
	MaxValuesPerInput int
	// MaxTemplateSize caps how many dimensions a query template binds.
	// The paper's system found little value beyond 3; 2 is the default
	// because our forms are small.
	MaxTemplateSize int
	// SampleSize is how many submissions are probed to evaluate one
	// template's informativeness.
	SampleSize int
	// InformativenessThreshold is the minimum fraction of distinct
	// result-page signatures among sampled submissions for a template
	// to count as informative.
	InformativenessThreshold float64
	// ProbeBudget caps total HTTP fetches spent analyzing one form.
	ProbeBudget int
	// URLBudget caps URLs emitted per form.
	URLBudget int
	// SeedKeywords is how many seed keywords are drawn from the site's
	// indexed pages to start iterative probing.
	SeedKeywords int
	// ProbeRounds is the number of iterative-probing refinement rounds
	// for search boxes.
	ProbeRounds int

	// TypedInputs enables typed-box recognition (§4.1). Off, every text
	// box is treated as a search/categorical box.
	TypedInputs bool
	// RangeAware enables range-pair fusion (§4.2). Off, min/max inputs
	// are surfaced independently — the paper's 120-vs-10-URL example.
	RangeAware bool
	// PerDBKeywords enables database-selection handling (§4.2): per-
	// select-option keyword sets for the paired search box.
	PerDBKeywords bool
	// StrictExtension requires a template extension to produce *more*
	// distinct result pages than its parent before it is kept (the
	// PVLDB'08 incremental-search rule). Off, an extension is kept
	// whenever it passes the bare informativeness threshold — which is
	// how a naive surfacer ends up emitting the min×max cross product
	// (§4.2's 120-URL example).
	StrictExtension bool
	// Indexability enables the §5.2 emission filter: templates whose
	// sampled pages average more than TargetResultsMax items or yield
	// almost only empty pages are not emitted.
	Indexability bool
	// TargetResultsMin/Max bound acceptable results-per-page when
	// Indexability is on.
	TargetResultsMin int
	TargetResultsMax int
}

// DefaultConfig returns the configuration used by the headline
// experiments: everything on, budgets sized for laptop-scale sites.
func DefaultConfig() Config {
	return Config{
		MaxValuesPerInput:        25,
		MaxTemplateSize:          2,
		SampleSize:               10,
		InformativenessThreshold: 0.2,
		ProbeBudget:              600,
		URLBudget:                3000,
		SeedKeywords:             12,
		ProbeRounds:              3,
		TypedInputs:              true,
		RangeAware:               true,
		PerDBKeywords:            true,
		StrictExtension:          true,
		Indexability:             true,
		TargetResultsMin:         1,
		TargetResultsMax:         100,
	}
}

// NaiveConfig returns the ablation arm: no semantics at all — no typed
// inputs, no correlations, no indexability filter. It is the strawman
// the paper's §4 examples are measured against.
func NaiveConfig() Config {
	c := DefaultConfig()
	c.TypedInputs = false
	c.RangeAware = false
	c.PerDBKeywords = false
	c.StrictExtension = false
	c.Indexability = false
	return c
}
