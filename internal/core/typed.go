package core

import (
	"math"
	"strconv"
	"strings"
)

// Typed-input support (§4.1). The paper's point: the surfacer does not
// need to know what a form is *about* — only that a given text box
// accepts, say, zip codes. Types are hypothesized from input names and
// labels (the cheap, high-precision signal the paper reports) and then
// validated by probing: a hypothesized type is confirmed only if typed
// sample values actually retrieve results.

// TypeZip .. TypeDate name the common input data types the paper calls
// out ("US zip codes, city names, dates and prices").
const (
	TypeZip   = "zipcode"
	TypeCity  = "city"
	TypePrice = "price"
	TypeDate  = "date"
)

// typePatterns maps a type to the lower-case substrings of an input
// name/label that suggest it. Order matters: first hit wins, and price
// is checked before date so "price from" beats the "from" of a date
// range heuristic elsewhere.
var typePatterns = []struct {
	typ  string
	pats []string
}{
	{TypeZip, []string{"zip", "postal"}},
	{TypeCity, []string{"city", "town"}},
	{TypePrice, []string{"price", "salary", "cost", "fee", "amount", "wage"}},
	{TypeDate, []string{"year", "date", "yr"}},
}

// HypothesizeType guesses the data type of a text input from its name
// and label, returning "" when nothing matches. This is only the
// hypothesis half; the surfacer confirms it by probing (§4.1 reports
// such typed inputs "can be identified with high accuracy" — the
// accuracy comes from the validation step).
func HypothesizeType(name, label string) string {
	hay := strings.ToLower(name + " " + label)
	for _, tp := range typePatterns {
		for _, p := range tp.pats {
			if strings.Contains(hay, p) {
				return tp.typ
			}
		}
	}
	return ""
}

// TypedValues returns up to n candidate values for a recognized type.
// These vocabularies stand in for the cross-form aggregate knowledge the
// paper's semantic services provide (§6): zip codes and city names mined
// from millions of forms, price ladders, plausible years.
func TypedValues(typ string, n int) []string {
	switch typ {
	case TypeZip:
		return sampleZips(n)
	case TypeCity:
		return sampleCities(n)
	case TypePrice:
		return priceLadder(n)
	case TypeDate:
		return yearSpread(n)
	default:
		return nil
	}
}

// RangeValuePairs returns (lo,hi) value pairs for a fused numeric range
// dimension of the given type: consecutive rungs of the type's ladder,
// which jointly cover the whole axis without overlap — the "10 URLs that
// each retrieve results in different price ranges" of §4.2.
func RangeValuePairs(typ string, n int) [][2]string {
	var rungs []string
	switch typ {
	case TypePrice:
		rungs = priceLadder(n + 1)
	case TypeDate:
		rungs = yearSpread(n + 1)
	default:
		// A numeric range of unknown flavor gets a generic geometric
		// ladder.
		rungs = genericLadder(n + 1)
	}
	pairs := make([][2]string, 0, len(rungs)-1)
	for i := 0; i+1 < len(rungs); i++ {
		pairs = append(pairs, [2]string{rungs[i], rungs[i+1]})
	}
	return pairs
}

// builtinZips and builtinCities are small shared vocabularies; in the
// real system these come from aggregating select menus across millions
// of forms (§6's value service). They are intentionally *not* read from
// any site's backing table.
var builtinCities = []string{
	"seattle", "portland", "san francisco", "los angeles", "san diego",
	"phoenix", "denver", "dallas", "houston", "austin",
	"chicago", "detroit", "minneapolis", "st louis", "kansas city",
	"atlanta", "miami", "orlando", "charlotte", "nashville",
	"boston", "new york", "philadelphia", "pittsburgh", "baltimore",
	"washington", "richmond", "raleigh", "columbus", "cleveland",
	"cincinnati", "indianapolis", "milwaukee", "memphis", "new orleans",
	"oklahoma city", "salt lake city", "las vegas", "sacramento", "fresno",
	"tucson", "albuquerque", "omaha", "tulsa", "wichita",
	"boise", "spokane", "anchorage", "honolulu", "tampa",
}

var builtinZipBases = []int{
	98100, 97200, 94100, 90000, 92100, 85000, 80200, 75200, 77000, 78700,
	60600, 48200, 55400, 63100, 64100, 30300, 33100, 32800, 28200, 37200,
	2100, 10000, 19100, 15200, 21200, 20000, 23200, 27600, 43200, 44100,
	45200, 46200, 53200, 38100, 70100, 73100, 84100, 89100, 95800, 93700,
	85700, 87100, 68100, 74100, 67200, 83700, 99200, 99500, 96800, 33600,
}

func sampleZips(n int) []string {
	out := make([]string, 0, n)
	for i := 0; len(out) < n; i++ {
		base := builtinZipBases[i%len(builtinZipBases)]
		out = append(out, strconv.Itoa(base+i/len(builtinZipBases)))
	}
	return out
}

func sampleCities(n int) []string {
	if n > len(builtinCities) {
		n = len(builtinCities)
	}
	return append([]string(nil), builtinCities[:n]...)
}

// priceLadder returns n price points spanning $250 to ~$1M roughly
// geometrically; consecutive points make sensible range buckets.
func priceLadder(n int) []string {
	if n < 2 {
		n = 2
	}
	out := make([]string, 0, n)
	lo, hi := 250.0, 1000000.0
	ratio := math.Pow(hi/lo, 1/float64(n-1))
	v := lo
	for i := 0; i < n; i++ {
		out = append(out, strconv.Itoa(int(round100(v))))
		v *= ratio
	}
	return out
}

// yearSpread returns n years spanning 1900..2008 evenly.
func yearSpread(n int) []string {
	if n < 2 {
		n = 2
	}
	out := make([]string, 0, n)
	lo, hi := 1900, 2008
	for i := 0; i < n; i++ {
		out = append(out, strconv.Itoa(lo+(hi-lo)*i/(n-1)))
	}
	return out
}

func genericLadder(n int) []string {
	if n < 2 {
		n = 2
	}
	out := make([]string, 0, n)
	v := 1
	for i := 0; i < n; i++ {
		out = append(out, strconv.Itoa(v))
		v *= 4
	}
	return out
}

func round100(v float64) float64 {
	if v < 1000 {
		return float64(int(v/50) * 50)
	}
	return float64(int(v/100) * 100)
}
