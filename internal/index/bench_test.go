package index

import (
	"fmt"
	"testing"
)

func benchIndex(n int) *Index {
	ix := New()
	for i := 0; i < n; i++ {
		ix.Add(Doc{
			URL:   fmt.Sprintf("http://site-%d.example/page", i),
			Title: fmt.Sprintf("listing %d", i),
			Text: fmt.Sprintf("ford focus %d for sale in seattle, price %d, clean title, low miles, record %d",
				1990+i%20, 500+i*13%25000, i),
		})
	}
	return ix
}

func BenchmarkIndexAdd(b *testing.B) {
	b.ReportAllocs()
	ix := New()
	for i := 0; i < b.N; i++ {
		ix.Add(Doc{
			URL:  fmt.Sprintf("u%d", i),
			Text: "ford focus 1993 for sale in seattle clean title low miles",
		})
	}
}

func BenchmarkSearch(b *testing.B) {
	ix := benchIndex(5000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("ford focus seattle", 10)
	}
}

// BenchmarkSearchWithTombstones is BenchmarkSearch over the same
// corpus with 30% of it deleted: the price of the tombstone-aware
// scoring pass (live-df counting plus the per-posting skip). Diffed in
// CI against BenchmarkSearch so delete-path regressions gate PRs.
func BenchmarkSearchWithTombstones(b *testing.B) {
	ix := benchIndex(5000)
	for i := 0; i < 5000; i += 3 {
		ix.Delete(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("ford focus seattle", 10)
	}
}

func BenchmarkAnnotatedSearch(b *testing.B) {
	ix := benchIndex(5000)
	for i := 0; i < 5000; i++ {
		ix.Annotate(i, map[string]string{"make": []string{"ford", "honda", "toyota"}[i%3]})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.AnnotatedSearch("ford focus seattle", 10)
	}
}
