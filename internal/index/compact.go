package index

import "sort"

// Compaction. Delete leaves tombstones: dead rows in the document
// table and dead entries in posting lists that every query pays to
// skip. Compact rewrites the index to hold only live documents — and,
// deliberately, does more than garbage-collect: it renumbers the live
// documents in URL order (URLs are unique, so the order is total).
//
// Renumbering makes compaction a normal form: two indexes holding the
// same live corpus — however they got there, build-once or
// build-delete-rebuild in any interleaving — compact to states whose
// Search output is bit-identical, ids and tie order included. That is
// the property the freshness pipeline is tested against (refresh a
// churned world incrementally, surface the same world from scratch,
// compact both, compare). The cost is that doc ids are not stable
// across a Compact; callers holding ids across it (there are none in
// this codebase — ids live inside one query or one snapshot
// generation) must re-resolve by URL.

// Compact rewrites the document table and every posting list, dropping
// tombstones and renumbering live documents in URL order. It returns
// the number of documents reclaimed. Compact must not run concurrently
// with writers (Add/AddPrepared/Delete/Annotate); concurrent Searches
// are safe — they serialize against the table lock and see either the
// old or the new state in full.
func (ix *Index) Compact() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()

	reclaimed := ix.numDead
	// Live ids in URL order become the new identity space.
	order := make([]int32, 0, len(ix.docs)-ix.numDead)
	for id := range ix.docs {
		if !ix.dead[id] {
			order = append(order, int32(id))
		}
	}
	sort.Slice(order, func(i, j int) bool {
		return ix.docs[order[i]].URL < ix.docs[order[j]].URL
	})
	newID := make([]int32, len(ix.docs))
	for i := range newID {
		newID[i] = -1
	}
	for to, from := range order {
		newID[from] = int32(to)
	}

	// Rebuild the document table in the new order.
	docs := make([]Doc, len(order))
	lens := make([]int, len(order))
	byURL := make(map[string]int, len(order))
	totalLen := 0
	for to, from := range order {
		docs[to] = ix.docs[from]
		lens[to] = ix.lens[from]
		byURL[docs[to].URL] = to
		totalLen += lens[to]
	}
	ix.docs, ix.lens, ix.byURL, ix.totalLen = docs, lens, byURL, totalLen
	ix.dead = make([]bool, len(docs))
	ix.numDead, ix.deadLen = 0, 0
	// bySource already excludes deleted docs (Delete decrements it).

	// Rewrite postings: drop dead entries, remap survivors, restore
	// ascending-id order under the new numbering.
	for _, sh := range ix.shards {
		sh.mu.Lock()
		for term, plist := range sh.postings {
			kept := plist[:0]
			for _, p := range plist {
				if id := newID[p.doc]; id >= 0 {
					kept = append(kept, posting{doc: id, tf: p.tf})
				}
			}
			if len(kept) == 0 {
				delete(sh.postings, term)
				continue
			}
			sort.Slice(kept, func(i, j int) bool { return kept[i].doc < kept[j].doc })
			sh.postings[term] = kept
		}
		sh.mu.Unlock()
	}

	ix.annotations().remap(newID)
	return reclaimed
}
