package index

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// twinCorpora builds two indexes over the same documents; skip marks
// ids (by insertion position) to leave out of the second one. The
// first index then Deletes those ids, so the pair must be search-
// equivalent: tombstoning a document must equal never having added it,
// down to the score bits.
func twinCorpora(shards int, n int, skip map[int]bool) (full, without *Index) {
	full, without = NewSharded(shards), NewSharded(shards)
	for i := 0; i < n; i++ {
		d := Doc{
			URL:    fmt.Sprintf("http://cars.example/p%d", i),
			Title:  fmt.Sprintf("used car %d ford focus", i),
			Text:   fmt.Sprintf("great ford focus number %d in seattle, price %d", i, 1000+i),
			Source: fmt.Sprintf("form-%d", i%3),
		}
		id, _ := full.Add(d)
		full.Annotate(id, map[string]string{"make": "ford"})
		if !skip[i] {
			wid, _ := without.Add(d)
			without.Annotate(wid, map[string]string{"make": "ford"})
		}
	}
	for i := range skip {
		if !full.Delete(i) {
			panic("delete failed")
		}
	}
	return full, without
}

var deleteQueries = []string{"ford focus", "seattle price", "used car 7", "number 13", "absent-term"}

// Deleted documents must stop existing for every observable quantity:
// live count, URL lookup, per-source counts, df, and — the hard part —
// BM25 scores, which must come out bit-identical to an index that
// never held the deleted documents (live N, avgdl and df feed the
// formula, not the raw table).
func TestDeleteEqualsNeverAdded(t *testing.T) {
	skip := map[int]bool{3: true, 7: true, 8: true, 20: true, 39: true}
	for _, shards := range []int{1, 4, DefaultShards} {
		full, without := twinCorpora(shards, 40, skip)
		if full.Len() != without.Len() {
			t.Fatalf("shards=%d: live %d vs %d", shards, full.Len(), without.Len())
		}
		if full.Deleted() != len(skip) {
			t.Fatalf("shards=%d: Deleted()=%d, want %d", shards, full.Deleted(), len(skip))
		}
		if full.Has("http://cars.example/p7") {
			t.Error("deleted URL still present")
		}
		if !reflect.DeepEqual(full.DocsBySource(), without.DocsBySource()) {
			t.Errorf("shards=%d: per-source counts differ:\n  %v\n  %v", shards, full.DocsBySource(), without.DocsBySource())
		}
		for _, q := range deleteQueries {
			if a, b := full.DF(q), without.DF(q); a != b {
				t.Errorf("shards=%d: DF(%q) %d vs %d", shards, q, a, b)
			}
			a, b := full.Search(q, 50), without.Search(q, 50)
			if len(a) != len(b) {
				t.Errorf("shards=%d: Search(%q) %d vs %d hits", shards, q, len(a), len(b))
				continue
			}
			for i := range a {
				if a[i].URL != b[i].URL || math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
					t.Errorf("shards=%d: Search(%q) hit %d: %v vs %v", shards, q, i, a[i], b[i])
				}
			}
		}
	}
}

func TestDeleteEdgeCases(t *testing.T) {
	ix := New()
	id, _ := ix.Add(Doc{URL: "http://a.example/x", Title: "one doc", Text: "alpha beta"})
	if ix.Delete(-1) || ix.Delete(99) {
		t.Error("out-of-range delete succeeded")
	}
	if !ix.Delete(id) {
		t.Fatal("delete failed")
	}
	if ix.Delete(id) {
		t.Error("double delete succeeded")
	}
	if ix.Len() != 0 {
		t.Errorf("live count %d after deleting the only doc", ix.Len())
	}
	if got := ix.Search("alpha", 10); got != nil {
		t.Errorf("empty live corpus answered %v", got)
	}
	// The URL is free again; the re-added doc is a fresh id.
	id2, added := ix.Add(Doc{URL: "http://a.example/x", Title: "one doc", Text: "alpha beta gamma"})
	if !added || id2 == id {
		t.Fatalf("re-add after delete: id=%d added=%v", id2, added)
	}
	if got := ix.Search("gamma", 10); len(got) != 1 || got[0].DocID != id2 {
		t.Errorf("re-added doc not served: %v", got)
	}
}

// Deleting a document releases its annotation vocabulary: a value that
// survives only on dead documents must stop steering AnnotatedSearch.
func TestDeleteReleasesAnnotations(t *testing.T) {
	ix := New()
	civic, _ := ix.Add(Doc{URL: "http://a.example/civic", Title: "honda civic", Text: "a honda civic listing that mentions the ford focus"})
	ix.Annotate(civic, map[string]string{"make": "honda"})
	ford, _ := ix.Add(Doc{URL: "http://a.example/focus", Title: "ford focus", Text: "a ford focus listing"})
	ix.Annotate(ford, map[string]string{"make": "ford"})

	// While both live, the honda page is demoted for a ford query.
	res := ix.AnnotatedSearch("ford focus", 10)
	if len(res) != 2 || res[0].DocID != ford {
		t.Fatalf("annotated ranking wrong: %v", res)
	}
	if ix.AnnotationsOf(civic) == nil {
		t.Fatal("missing annotations")
	}

	ix.Delete(ford)
	if ix.AnnotationsOf(ford) != nil {
		t.Error("deleted doc kept annotations")
	}
	// "ford" is no longer a known value of make (its only supporter is
	// gone), so the surviving civic page is served un-demoted.
	res = ix.AnnotatedSearch("ford focus", 10)
	if len(res) != 1 || res[0].DocID != civic {
		t.Fatalf("post-delete ranking wrong: %v", res)
	}
	plain := ix.Search("ford focus", 10)
	if math.Float64bits(res[0].Score) != math.Float64bits(plain[0].Score) {
		t.Errorf("stale vocabulary still adjusts scores: %v vs %v", res[0].Score, plain[0].Score)
	}
}

// Compact is a normal form: whatever insertion/deletion history led to
// a live corpus, compacting renumbers into canonical URL order — so a
// churned-then-compacted index and a built-clean-then-compacted index
// agree on ids, scores and tie order exactly.
func TestCompactCanonicalizes(t *testing.T) {
	skip := map[int]bool{0: true, 11: true, 25: true}
	for _, shards := range []int{1, 4, DefaultShards} {
		full, without := twinCorpora(shards, 30, skip)
		if got := full.Compact(); got != len(skip) {
			t.Fatalf("shards=%d: reclaimed %d, want %d", shards, got, len(skip))
		}
		without.Compact()
		if full.Deleted() != 0 || full.TombstoneRatio() != 0 {
			t.Errorf("shards=%d: tombstones survived compact", shards)
		}
		if full.Len() != without.Len() {
			t.Fatalf("shards=%d: live %d vs %d", shards, full.Len(), without.Len())
		}
		for id := 0; id < full.Len(); id++ {
			if full.Doc(id) != without.Doc(id) {
				t.Fatalf("shards=%d: doc %d differs: %+v vs %+v", shards, id, full.Doc(id), without.Doc(id))
			}
			if !reflect.DeepEqual(full.AnnotationsOf(id), without.AnnotationsOf(id)) {
				t.Fatalf("shards=%d: annotations of doc %d differ", shards, id)
			}
		}
		for _, q := range deleteQueries {
			a, b := full.Search(q, 10), without.Search(q, 10)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: post-compact Search(%q) differs:\n  %v\n  %v", shards, q, a, b)
			}
			if a, b := full.AnnotatedSearch(q, 10), without.AnnotatedSearch(q, 10); !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: post-compact AnnotatedSearch(%q) differs", shards, q)
			}
		}
	}
}

// A tombstoned index transplants through the export/import surface
// with ids intact: snapshots of mutated indexes round-trip.
func TestTransplantPreservesTombstones(t *testing.T) {
	skip := map[int]bool{2: true, 17: true}
	full, _ := twinCorpora(4, 20, skip)
	dst := transplant(t, full, 8)
	if dst.Deleted() != len(skip) {
		t.Fatalf("Deleted()=%d across transplant, want %d", dst.Deleted(), len(skip))
	}
	for _, q := range deleteQueries {
		if a, b := full.Search(q, 20), dst.Search(q, 20); !reflect.DeepEqual(a, b) {
			t.Errorf("Search(%q) differs across transplant:\n  %v\n  %v", q, a, b)
		}
	}
}
