// Package index is the IR substrate: an inverted index with BM25
// ranking. Surfaced deep-web pages are inserted "like any other HTML
// page" (paper §3.2) — the index neither knows nor cares that a document
// came from a form submission, which is precisely the surfacing
// approach's architectural bet. Attribution (which form produced which
// document) is carried as opaque metadata so experiments can credit
// impact back to forms (E1).
package index

import (
	"math"
	"sort"
	"sync"

	"deepweb/internal/textutil"
)

// Doc is a document to index.
type Doc struct {
	URL    string
	Title  string
	Text   string
	Source string // opaque attribution, e.g. the form ID that surfaced it
}

// Result is one ranked hit.
type Result struct {
	DocID  int
	URL    string
	Title  string
	Source string
	Score  float64
}

type posting struct {
	doc int32
	tf  int32
}

// Index is an in-memory inverted index with BM25 scoring. It is safe
// for concurrent use.
type Index struct {
	mu       sync.RWMutex
	docs     []Doc
	lens     []int
	byURL    map[string]int
	postings map[string][]posting
	totalLen int

	annOnce sync.Once
	ann     *annStore
}

// BM25 constants; the standard values.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// New returns an empty index.
func New() *Index {
	return &Index{byURL: map[string]int{}, postings: map[string][]posting{}}
}

// Add indexes a document and returns its id. A URL already present is
// not re-indexed (the crawler and the surfacer may both submit the same
// page); the existing id is returned with added=false.
func (ix *Index) Add(d Doc) (id int, added bool) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if existing, ok := ix.byURL[d.URL]; ok {
		return existing, false
	}
	id = len(ix.docs)
	ix.docs = append(ix.docs, d)
	ix.byURL[d.URL] = id

	// Title terms count twice: cheap field boost.
	terms := termsOf(d.Title)
	terms = append(terms, termsOf(d.Title)...)
	terms = append(terms, termsOf(d.Text)...)
	tf := map[string]int32{}
	for _, t := range terms {
		tf[t]++
	}
	for t, f := range tf {
		ix.postings[t] = append(ix.postings[t], posting{doc: int32(id), tf: f})
	}
	ix.lens = append(ix.lens, len(terms))
	ix.totalLen += len(terms)
	return id, true
}

// termsOf is the single tokenization pipeline for documents and queries:
// tokenize, drop stopwords, stem.
func termsOf(s string) []string {
	toks := textutil.Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if textutil.IsStopword(t) {
			continue
		}
		out = append(out, textutil.Stem(t))
	}
	return out
}

// Len returns the number of documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Has reports whether a URL is already indexed.
func (ix *Index) Has(url string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.byURL[url]
	return ok
}

// Doc returns the indexed document with the given id.
func (ix *Index) Doc(id int) Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[id]
}

// DF returns the document frequency of a (raw) term after the standard
// pipeline is applied to it.
func (ix *Index) DF(term string) int {
	ts := termsOf(term)
	if len(ts) == 0 {
		return 0
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.postings[ts[0]])
}

// Search returns the top-k BM25 hits for a free-text query. Ties break
// by ascending doc id so results are deterministic.
func (ix *Index) Search(query string, k int) []Result {
	qterms := termsOf(query)
	if len(qterms) == 0 || k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.docs)
	if n == 0 {
		return nil
	}
	avgdl := float64(ix.totalLen) / float64(n)
	if avgdl == 0 {
		avgdl = 1
	}
	scores := map[int32]float64{}
	seen := map[string]bool{}
	for _, t := range qterms {
		if seen[t] {
			continue
		}
		seen[t] = true
		plist := ix.postings[t]
		if len(plist) == 0 {
			continue
		}
		idf := idf(n, len(plist))
		for _, p := range plist {
			dl := float64(ix.lens[p.doc])
			tf := float64(p.tf)
			scores[p.doc] += idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgdl))
		}
	}
	out := make([]Result, 0, len(scores))
	for d, s := range scores {
		doc := ix.docs[d]
		out = append(out, Result{DocID: int(d), URL: doc.URL, Title: doc.Title, Source: doc.Source, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// idf is the BM25 idf with the +1 smoothing that keeps it positive.
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// DocsBySource counts indexed documents per source attribution; used by
// impact accounting.
func (ix *Index) DocsBySource() map[string]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := map[string]int{}
	for _, d := range ix.docs {
		if d.Source != "" {
			out[d.Source]++
		}
	}
	return out
}
