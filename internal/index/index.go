// Package index is the IR substrate: an inverted index with BM25
// ranking. Surfaced deep-web pages are inserted "like any other HTML
// page" (paper §3.2) — the index neither knows nor cares that a document
// came from a form submission, which is precisely the surfacing
// approach's architectural bet. Attribution (which form produced which
// document) is carried as opaque metadata so experiments can credit
// impact back to forms (E1).
//
// Layout: the document table (ids, lengths, URL dedup) sits behind one
// lock, while postings are sharded by term hash with per-shard locks, so
// concurrent writers contend only on the brief id-assignment step and on
// the shards their terms actually hash to. Queries merge across shards.
// The expensive half of an insert — tokenization and term counting — is
// exposed separately as Prepare, so a concurrent ingest pipeline can
// analyze documents in parallel and commit them at an ordered point,
// keeping doc-id assignment deterministic.
package index

import (
	"hash/maphash"
	"math"
	"sort"
	"sync"

	"deepweb/internal/textutil"
)

// Doc is a document to index.
type Doc struct {
	URL    string
	Title  string
	Text   string
	Source string // opaque attribution, e.g. the form ID that surfaced it
}

// Result is one ranked hit.
type Result struct {
	DocID  int
	URL    string
	Title  string
	Source string
	Score  float64
}

type posting struct {
	doc int32
	tf  int32
}

// shard is one slice of the term space.
type shard struct {
	mu       sync.RWMutex
	postings map[string][]posting
}

// Index is an in-memory inverted index with BM25 scoring. It is safe
// for concurrent use; a document being added becomes searchable
// term-by-term and is fully visible once Add returns.
type Index struct {
	mu       sync.RWMutex // guards the document table below
	docs     []Doc
	lens     []int
	byURL    map[string]int
	totalLen int

	shards []*shard
	seed   maphash.Seed

	annOnce sync.Once
	ann     *annStore
}

// BM25 constants; the standard values.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// DefaultShards is the posting-shard count used by New.
const DefaultShards = 16

// New returns an empty index with DefaultShards posting shards.
func New() *Index { return NewSharded(DefaultShards) }

// NewSharded returns an empty index with n posting shards (n < 1 is
// treated as 1).
func NewSharded(n int) *Index {
	if n < 1 {
		n = 1
	}
	ix := &Index{
		byURL:  map[string]int{},
		shards: make([]*shard, n),
		seed:   maphash.MakeSeed(),
	}
	for i := range ix.shards {
		ix.shards[i] = &shard{postings: map[string][]posting{}}
	}
	return ix
}

// shardFor hashes a term to its posting shard.
func (ix *Index) shardFor(term string) *shard {
	return ix.shards[maphash.String(ix.seed, term)%uint64(len(ix.shards))]
}

// Prepared is a tokenized document ready to commit: the expensive part
// of an insert (tokenize, stopword, stem, count) done up front, with no
// index lock held. Workers prepare documents concurrently; doc ids are
// assigned only when AddPrepared runs.
type Prepared struct {
	doc Doc
	tf  map[string]int32
	dl  int // document length in terms
}

// Prepare tokenizes a document for a later AddPrepared. It touches no
// shared state.
func Prepare(d Doc) *Prepared {
	// Title terms count twice: cheap field boost.
	title := termsOf(d.Title)
	terms := make([]string, 0, 2*len(title))
	terms = append(terms, title...)
	terms = append(terms, title...)
	terms = append(terms, termsOf(d.Text)...)
	tf := make(map[string]int32, len(terms))
	for _, t := range terms {
		tf[t]++
	}
	return &Prepared{doc: d, tf: tf, dl: len(terms)}
}

// Add indexes a document and returns its id. A URL already present is
// not re-indexed (the crawler and the surfacer may both submit the same
// page); the existing id is returned with added=false.
func (ix *Index) Add(d Doc) (id int, added bool) {
	return ix.AddPrepared(Prepare(d))
}

// AddPrepared commits a prepared document: the id is assigned under the
// document-table lock (the ordered commit point), then postings are
// inserted shard by shard.
func (ix *Index) AddPrepared(p *Prepared) (id int, added bool) {
	ix.mu.Lock()
	if existing, ok := ix.byURL[p.doc.URL]; ok {
		ix.mu.Unlock()
		return existing, false
	}
	id = len(ix.docs)
	ix.docs = append(ix.docs, p.doc)
	ix.byURL[p.doc.URL] = id
	ix.lens = append(ix.lens, p.dl)
	ix.totalLen += p.dl
	ix.mu.Unlock()

	// Group the doc's terms per shard so each shard is locked once.
	perShard := make(map[*shard][]string, len(ix.shards))
	for t := range p.tf {
		sh := ix.shardFor(t)
		perShard[sh] = append(perShard[sh], t)
	}
	for sh, terms := range perShard {
		sh.mu.Lock()
		for _, t := range terms {
			sh.postings[t] = append(sh.postings[t], posting{doc: int32(id), tf: p.tf[t]})
		}
		sh.mu.Unlock()
	}
	return id, true
}

// termsOf is the single tokenization pipeline for documents and queries:
// tokenize, drop stopwords, stem.
func termsOf(s string) []string {
	toks := textutil.Tokenize(s)
	out := toks[:0]
	for _, t := range toks {
		if textutil.IsStopword(t) {
			continue
		}
		out = append(out, textutil.Stem(t))
	}
	return out
}

// Len returns the number of documents.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs)
}

// Has reports whether a URL is already indexed.
func (ix *Index) Has(url string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.byURL[url]
	return ok
}

// Doc returns the indexed document with the given id.
func (ix *Index) Doc(id int) Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[id]
}

// plist returns the posting list for an already-normalized term. The
// returned slice is a snapshot header: entries written before the read
// are immutable, so it is safe to iterate after the shard lock drops.
func (ix *Index) plist(term string) []posting {
	sh := ix.shardFor(term)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.postings[term]
}

// DF returns the document frequency of a (raw) term after the standard
// pipeline is applied to it.
func (ix *Index) DF(term string) int {
	ts := termsOf(term)
	if len(ts) == 0 {
		return 0
	}
	return len(ix.plist(ts[0]))
}

// Search returns the top-k BM25 hits for a free-text query, merging
// posting lists across shards. Ties break by ascending doc id so
// results are deterministic.
func (ix *Index) Search(query string, k int) []Result {
	qterms := termsOf(query)
	if len(qterms) == 0 || k <= 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.docs)
	if n == 0 {
		return nil
	}
	avgdl := float64(ix.totalLen) / float64(n)
	if avgdl == 0 {
		avgdl = 1
	}
	scores := map[int32]float64{}
	seen := map[string]bool{}
	for _, t := range qterms {
		if seen[t] {
			continue
		}
		seen[t] = true
		plist := ix.plist(t)
		if len(plist) == 0 {
			continue
		}
		idf := idf(n, len(plist))
		for _, p := range plist {
			// Postings never reference rows beyond this query's table
			// snapshot: AddPrepared publishes the doc row under the table
			// lock (held read-side for this whole query) before touching
			// any shard.
			dl := float64(ix.lens[p.doc])
			tf := float64(p.tf)
			scores[p.doc] += idf * tf * (bm25K1 + 1) / (tf + bm25K1*(1-bm25B+bm25B*dl/avgdl))
		}
	}
	out := make([]Result, 0, len(scores))
	for d, s := range scores {
		doc := ix.docs[d]
		out = append(out, Result{DocID: int(d), URL: doc.URL, Title: doc.Title, Source: doc.Source, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// idf is the BM25 idf with the +1 smoothing that keeps it positive.
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// DocsBySource counts indexed documents per source attribution; used by
// impact accounting.
func (ix *Index) DocsBySource() map[string]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := map[string]int{}
	for _, d := range ix.docs {
		if d.Source != "" {
			out[d.Source]++
		}
	}
	return out
}
