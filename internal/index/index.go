// Package index is the IR substrate: an inverted index with BM25
// ranking. Surfaced deep-web pages are inserted "like any other HTML
// page" (paper §3.2) — the index neither knows nor cares that a document
// came from a form submission, which is precisely the surfacing
// approach's architectural bet. Attribution (which form produced which
// document) is carried as opaque metadata so experiments can credit
// impact back to forms (E1).
//
// Layout: the document table (ids, lengths, URL dedup, per-source
// counters) sits behind one lock, while postings are sharded by term
// hash with per-shard locks, so concurrent writers contend only on the
// brief id-assignment step and on the shards their terms actually hash
// to. Queries merge across shards. The expensive half of an insert —
// tokenization and term counting — is exposed separately as Prepare, so
// a concurrent ingest pipeline can analyze documents in parallel and
// commit them at an ordered point, keeping doc-id assignment
// deterministic.
//
// Both halves run allocation-consciously: Prepare draws its tokenizer,
// term buffer and counting map from a pool and emits a compact
// term/frequency pair list; Search scores into a pooled dense
// accumulator indexed by doc id (reset via a touched list, not a
// sweep) and selects the top k with a bounded heap instead of sorting
// every scored document.
package index

import (
	"context"
	"hash/maphash"
	"math"
	"sync"

	"deepweb/internal/textutil"
)

// Doc is a document to index.
type Doc struct {
	URL    string
	Title  string
	Text   string
	Source string // opaque attribution, e.g. the form ID that surfaced it
}

// Result is one ranked hit.
type Result struct {
	DocID  int
	URL    string
	Title  string
	Source string
	Score  float64
}

type posting struct {
	doc int32
	tf  int32
}

// shard is one slice of the term space.
type shard struct {
	mu       sync.RWMutex
	postings map[string][]posting
}

// Index is an in-memory inverted index with BM25 scoring. It is safe
// for concurrent use; a document being added becomes searchable
// term-by-term and is fully visible once Add returns.
type Index struct {
	mu       sync.RWMutex // guards the document table below
	docs     []Doc
	lens     []int
	byURL    map[string]int
	bySource map[string]int
	totalLen int

	// Tombstones: Delete marks a document dead instead of rewriting
	// postings. dead is parallel to docs; numDead and deadLen keep the
	// live document count and live total length O(1), so BM25's N and
	// avgdl always reflect the live corpus. Postings still reference
	// dead ids until Compact rewrites them; Search skips them.
	dead    []bool
	numDead int
	deadLen int

	shards []*shard
	seed   maphash.Seed

	annOnce sync.Once
	ann     *annStore
}

// BM25 constants; the standard values.
const (
	bm25K1 = 1.2
	bm25B  = 0.75
)

// DefaultShards is the posting-shard count used by New.
const DefaultShards = 16

// New returns an empty index with DefaultShards posting shards.
func New() *Index { return NewSharded(DefaultShards) }

// NewSharded returns an empty index with n posting shards (n < 1 is
// treated as 1).
func NewSharded(n int) *Index {
	if n < 1 {
		n = 1
	}
	ix := &Index{
		byURL:    map[string]int{},
		bySource: map[string]int{},
		shards:   make([]*shard, n),
		seed:     maphash.MakeSeed(),
	}
	for i := range ix.shards {
		ix.shards[i] = &shard{postings: map[string][]posting{}}
	}
	return ix
}

// shardFor hashes a term to its posting shard.
func (ix *Index) shardFor(term string) *shard {
	return ix.shards[maphash.String(ix.seed, term)%uint64(len(ix.shards))]
}

// Prepared is a tokenized document ready to commit: the expensive part
// of an insert (tokenize, stopword, stem, count) done up front, with no
// index lock held. Workers prepare documents concurrently; doc ids are
// assigned only when AddPrepared runs. The term list is a compact
// parallel pair of slices — unique terms with their frequencies — so a
// buffered document costs two allocations, not a map.
type Prepared struct {
	doc   Doc
	terms []string
	tfs   []int32
	dl    int // document length in terms
}

// prepScratch is the reusable state one Prepare call needs: the
// tokenizer (with its arena and intern table), a token buffer and a
// counting map, all recycled through prepPool so steady-state Prepare
// allocates only the compact Prepared itself.
type prepScratch struct {
	tz   textutil.Tokenizer
	toks []string
	tf   map[string]int32
}

var prepPool = sync.Pool{New: func() any {
	return &prepScratch{tf: make(map[string]int32, 64)}
}}

// Prepare tokenizes a document for a later AddPrepared. It touches no
// shared state.
func Prepare(d Doc) *Prepared {
	ps := prepPool.Get().(*prepScratch)
	// Title terms count twice: cheap field boost.
	toks := ps.tz.StemmedTokensInto(ps.toks[:0], d.Title)
	nTitle := len(toks)
	toks = ps.tz.StemmedTokensInto(toks, d.Text)
	clear(ps.tf)
	for i, t := range toks {
		if i < nTitle {
			ps.tf[t] += 2
		} else {
			ps.tf[t]++
		}
	}
	p := &Prepared{
		doc:   d,
		terms: make([]string, 0, len(ps.tf)),
		tfs:   make([]int32, 0, len(ps.tf)),
		dl:    len(toks) + nTitle,
	}
	for t, n := range ps.tf {
		p.terms = append(p.terms, t)
		p.tfs = append(p.tfs, n)
	}
	ps.toks = toks[:0]
	prepPool.Put(ps)
	return p
}

// Add indexes a document and returns its id. A URL already present is
// not re-indexed (the crawler and the surfacer may both submit the same
// page); the existing id is returned with added=false.
func (ix *Index) Add(d Doc) (id int, added bool) {
	return ix.AddPrepared(Prepare(d))
}

// addScratch carries the per-term shard assignments across the posting
// insertion loop.
type addScratch struct {
	shard []uint32
}

var addPool = sync.Pool{New: func() any { return new(addScratch) }}

// AddPrepared commits a prepared document: the id is assigned under the
// document-table lock (the ordered commit point), then postings are
// inserted shard by shard, each shard locked at most once.
func (ix *Index) AddPrepared(p *Prepared) (id int, added bool) {
	ix.mu.Lock()
	if existing, ok := ix.byURL[p.doc.URL]; ok {
		ix.mu.Unlock()
		return existing, false
	}
	id = len(ix.docs)
	ix.docs = append(ix.docs, p.doc)
	ix.byURL[p.doc.URL] = id
	ix.lens = append(ix.lens, p.dl)
	ix.dead = append(ix.dead, false)
	ix.totalLen += p.dl
	if p.doc.Source != "" {
		ix.bySource[p.doc.Source]++
	}
	ix.mu.Unlock()

	if len(ix.shards) == 1 {
		sh := ix.shards[0]
		sh.mu.Lock()
		for i, t := range p.terms {
			sh.postings[t] = append(sh.postings[t], posting{doc: int32(id), tf: p.tfs[i]})
		}
		sh.mu.Unlock()
		return id, true
	}

	// Assign terms to shards once, then visit only the shards hit.
	sc := addPool.Get().(*addScratch)
	sc.shard = sc.shard[:0]
	var hit uint64 // bitmask of touched shards (all indexes < 64 in practice)
	for _, t := range p.terms {
		si := uint32(maphash.String(ix.seed, t) % uint64(len(ix.shards)))
		sc.shard = append(sc.shard, si)
		if si < 64 {
			hit |= 1 << si
		}
	}
	for si, sh := range ix.shards {
		if si < 64 && hit&(1<<uint(si)) == 0 {
			continue
		}
		locked := false
		for j, t := range p.terms {
			if sc.shard[j] != uint32(si) {
				continue
			}
			if !locked {
				sh.mu.Lock()
				locked = true
			}
			sh.postings[t] = append(sh.postings[t], posting{doc: int32(id), tf: p.tfs[j]})
		}
		if locked {
			sh.mu.Unlock()
		}
	}
	addPool.Put(sc)
	return id, true
}

// Delete tombstones a document: it stops answering queries and
// contributing to BM25 statistics immediately, its URL becomes free for
// re-insertion, and its annotations are dropped. Postings are left in
// place (Search skips them) until Compact reclaims the space. Returns
// false for an unknown or already-deleted id.
func (ix *Index) Delete(id int) bool {
	ix.mu.Lock()
	if id < 0 || id >= len(ix.docs) || ix.dead[id] {
		ix.mu.Unlock()
		return false
	}
	ix.dead[id] = true
	ix.numDead++
	ix.deadLen += ix.lens[id]
	d := ix.docs[id]
	// byURL points at the live holder of a URL; guard against a stale
	// mapping in case the URL was re-added after an earlier delete.
	if cur, ok := ix.byURL[d.URL]; ok && cur == id {
		delete(ix.byURL, d.URL)
	}
	if d.Source != "" {
		if ix.bySource[d.Source]--; ix.bySource[d.Source] == 0 {
			delete(ix.bySource, d.Source)
		}
	}
	ix.mu.Unlock()
	ix.annotations().deleteDoc(id)
	return true
}

// Len returns the number of live (searchable) documents: tombstoned
// documents are excluded.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.docs) - ix.numDead
}

// Deleted returns the number of tombstoned documents awaiting Compact.
func (ix *Index) Deleted() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.numDead
}

// TombstoneRatio is deleted documents over the full document table —
// the statistic compaction policies threshold on.
func (ix *Index) TombstoneRatio() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if len(ix.docs) == 0 {
		return 0
	}
	return float64(ix.numDead) / float64(len(ix.docs))
}

// Has reports whether a URL is already indexed.
func (ix *Index) Has(url string) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.byURL[url]
	return ok
}

// Doc returns the indexed document with the given id.
func (ix *Index) Doc(id int) Doc {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.docs[id]
}

// plist returns the posting list for an already-normalized term. The
// returned slice is a snapshot header: entries written before the read
// are immutable, so it is safe to iterate after the shard lock drops.
func (ix *Index) plist(term string) []posting {
	sh := ix.shardFor(term)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.postings[term]
}

// DF returns the live document frequency of a (raw) term after the
// standard pipeline is applied to it; tombstoned documents don't count.
func (ix *Index) DF(term string) int {
	sc := searchPool.Get().(*searchScratch)
	qterms := sc.tz.StemmedTokensInto(sc.qterms[:0], term)
	df := 0
	if len(qterms) > 0 {
		ix.mu.RLock()
		df = ix.liveDFLocked(ix.plist(qterms[0]))
		ix.mu.RUnlock()
	}
	sc.qterms = qterms[:0]
	searchPool.Put(sc)
	return df
}

// liveDFLocked counts the live postings in a list. The caller holds
// ix.mu read-side; with no tombstones it is O(1).
func (ix *Index) liveDFLocked(plist []posting) int {
	if ix.numDead == 0 {
		return len(plist)
	}
	df := 0
	for _, p := range plist {
		if !ix.dead[p.doc] {
			df++
		}
	}
	return df
}

// searchScratch is the reusable state of one Search call: the query
// tokenizer, the dense score accumulator (indexed by doc id, reset via
// the touched list so cost tracks postings scanned, not corpus size)
// and the bounded top-k heap.
type searchScratch struct {
	tz      textutil.Tokenizer
	qterms  []string
	scores  []float64
	touched []int32
	heap    []heapEntry
}

type heapEntry struct {
	score float64
	doc   int32
}

var searchPool = sync.Pool{New: func() any { return new(searchScratch) }}

// Search returns the top-k BM25 hits for a free-text query, merging
// posting lists across shards. Ties break by ascending doc id so
// results are deterministic. Tombstoned documents neither match nor
// influence scoring: N, avgdl and df all describe the live corpus.
func (ix *Index) Search(query string, k int) []Result {
	hits, _, _ := ix.topK(nil, query, k, 0, nil)
	return hits
}

// TopK is the serving-layer generalization of Search: the same scoring
// path plus pagination (skip offset hits), an optional per-document
// admission filter (called with the document's id and row, so filters
// can consult id-keyed side stores like AnnotationsOf), the total live
// hit count, and cooperative cancellation between query terms. With
// keep == nil and offset == 0 the result slice is bit-identical to
// Search(query, k) — same ids, same float score bits, same tie order —
// with the hit total riding along. A canceled context returns
// ctx.Err() with no results.
func (ix *Index) TopK(ctx context.Context, query string, k, offset int, keep func(id int, d Doc) bool) ([]Result, int, error) {
	return ix.topK(ctx, query, k, offset, keep)
}

// ctxErr is the nil-tolerant cancellation probe: internal callers on
// the legacy always-complete paths pass a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// abandonSearch is the cold bail-out of a canceled query: the pooled
// accumulator must go back clean, so the touched entries are zeroed
// before the scratch is released. Split out of topK to keep the hot
// scoring loop small.
func abandonSearch(sc *searchScratch, scores []float64, touched []int32, err error) error {
	for _, d := range touched {
		scores[d] = 0
	}
	sc.touched = touched[:0]
	return err
}

// topK is the one scoring implementation behind Search, TopK and the
// annotated variants.
func (ix *Index) topK(ctx context.Context, query string, k, offset int, keep func(id int, d Doc) bool) ([]Result, int, error) {
	if k <= 0 {
		return nil, 0, ctxErr(ctx)
	}
	if offset < 0 {
		offset = 0
	}
	sc := searchPool.Get().(*searchScratch)
	defer searchPool.Put(sc)
	qterms := sc.tz.StemmedTokensInto(sc.qterms[:0], query)
	sc.qterms = qterms[:0]
	if len(qterms) == 0 {
		return nil, 0, ctxErr(ctx)
	}

	ix.mu.RLock()
	defer ix.mu.RUnlock()
	tableN := len(ix.docs)
	live := tableN - ix.numDead
	if live == 0 {
		return nil, 0, ctxErr(ctx)
	}
	// Every BM25 statistic reads the *live* corpus — document count,
	// average length, per-term document frequency — so scores after a
	// Delete are bit-identical to an index that never held the deleted
	// documents.
	avgdl := float64(ix.totalLen-ix.deadLen) / float64(live)
	if avgdl == 0 {
		avgdl = 1
	}
	// The accumulator is indexed by doc id, so it spans the full table
	// including tombstoned rows.
	if cap(sc.scores) < tableN {
		sc.scores = make([]float64, tableN)
	} else {
		sc.scores = sc.scores[:tableN]
	}
	scores := sc.scores
	touched := sc.touched[:0]

	// Length-normalization constants hoisted out of the posting loops:
	// denominator = tf + c0 + c1*dl.
	c0 := bm25K1 * (1 - bm25B)
	c1 := bm25K1 * bm25B / avgdl
	dead, hasDead := ix.dead, ix.numDead > 0
	cancelable := ctx != nil
	for qi, t := range qterms {
		// Cancellation point: once per query term, so a canceled search
		// stops scoring within one posting-list scan. The legacy paths
		// pass a nil context and skip the check entirely.
		if cancelable {
			if err := ctx.Err(); err != nil {
				return nil, 0, abandonSearch(sc, scores, touched, err)
			}
		}
		dup := false
		for _, prev := range qterms[:qi] {
			if prev == t {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		plist := ix.plist(t)
		df := len(plist)
		if hasDead {
			df = ix.liveDFLocked(plist)
		}
		if df == 0 {
			continue
		}
		w := idf(live, df) * (bm25K1 + 1)
		if hasDead {
			// Tombstone-aware pass: dead postings contribute nothing.
			for _, p := range plist {
				if dead[p.doc] {
					continue
				}
				s := scores[p.doc]
				if s == 0 {
					touched = append(touched, p.doc)
				}
				tf := float64(p.tf)
				scores[p.doc] = s + w*tf/(tf+c0+c1*float64(ix.lens[p.doc]))
			}
			continue
		}
		for _, p := range plist {
			// Postings never reference rows beyond this query's table
			// snapshot: AddPrepared publishes the doc row under the table
			// lock (held read-side for this whole query) before touching
			// any shard.
			s := scores[p.doc]
			if s == 0 {
				// BM25 contributions are strictly positive, so zero
				// means "first touch" and doubles as the reset marker.
				touched = append(touched, p.doc)
			}
			tf := float64(p.tf)
			scores[p.doc] = s + w*tf/(tf+c0+c1*float64(ix.lens[p.doc]))
		}
	}
	sc.touched = touched

	// Bounded top-(offset+k) selection; the heap root is the weakest
	// kept hit. The filter admits documents here — after scoring, before
	// selection — so pagination and the hit total both describe the
	// filtered result set. The unfiltered loop is kept branch-free (the
	// overwhelmingly common serving path): its total is just the
	// touched count.
	kk := k + offset
	if kk < k { // offset overflowed int
		kk = int(^uint(0) >> 1)
	}
	var total int
	h := sc.heap[:0]
	if keep == nil {
		total = len(touched)
		for _, d := range touched {
			s := scores[d]
			scores[d] = 0 // reset while draining: accumulator is clean for reuse
			if len(h) < kk {
				h = append(h, heapEntry{score: s, doc: d})
				siftUp(h)
			} else if beats(s, d, h[0]) {
				h[0] = heapEntry{score: s, doc: d}
				siftDown(h)
			}
		}
	} else {
		for _, d := range touched {
			s := scores[d]
			scores[d] = 0
			if !keep(int(d), ix.docs[d]) {
				continue
			}
			total++
			if len(h) < kk {
				h = append(h, heapEntry{score: s, doc: d})
				siftUp(h)
			} else if beats(s, d, h[0]) {
				h[0] = heapEntry{score: s, doc: d}
				siftDown(h)
			}
		}
	}
	sc.heap = h[:0]

	out := make([]Result, len(h))
	for m := len(h); m > 0; m-- {
		e := h[0]
		h[0] = h[m-1]
		h = h[:m-1]
		siftDown(h)
		doc := ix.docs[e.doc]
		out[m-1] = Result{DocID: int(e.doc), URL: doc.URL, Title: doc.Title, Source: doc.Source, Score: e.score}
	}
	return pageOf(out, k, offset), total, nil
}

// beats reports whether a hit with the given score and doc id ranks
// strictly ahead of e (higher score first, then ascending doc id).
func beats(score float64, doc int32, e heapEntry) bool {
	if score != e.score {
		return score > e.score
	}
	return doc < e.doc
}

// weaker is the heap order: the weakest hit sits at the root.
func weaker(a, b heapEntry) bool {
	if a.score != b.score {
		return a.score < b.score
	}
	return a.doc > b.doc
}

// siftUp restores the heap property after appending to h.
func siftUp(h []heapEntry) {
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !weaker(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

// siftDown restores the heap property after replacing h[0].
func siftDown(h []heapEntry) {
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < len(h) && weaker(h[l], h[min]) {
			min = l
		}
		if r < len(h) && weaker(h[r], h[min]) {
			min = r
		}
		if min == i {
			return
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// idf is the BM25 idf with the +1 smoothing that keeps it positive.
func idf(n, df int) float64 {
	return math.Log(1 + (float64(n)-float64(df)+0.5)/(float64(df)+0.5))
}

// DocsBySource reports indexed documents per source attribution; used
// by impact accounting. The counters are maintained incrementally at
// insert time, so this is O(sources), not O(documents).
func (ix *Index) DocsBySource() map[string]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[string]int, len(ix.bySource))
	for s, n := range ix.bySource {
		out[s] = n
	}
	return out
}
