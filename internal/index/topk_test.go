package index

import (
	"context"
	"fmt"
	"math"
	"net/url"
	"reflect"
	"strings"
	"testing"
)

// topkCorpus builds a small mixed-host corpus with enough shared terms
// that queries match many documents.
func topkCorpus(t testing.TB, shards int) *Index {
	t.Helper()
	ix := NewSharded(shards)
	for i := 0; i < 60; i++ {
		host := fmt.Sprintf("h%d.example", i%3)
		ix.Add(Doc{
			URL:   fmt.Sprintf("http://%s/doc/%d", host, i),
			Title: fmt.Sprintf("ford focus listing %d", i),
			Text:  fmt.Sprintf("a used ford focus number %d for sale in seattle", i),
		})
	}
	return ix
}

// TopK with zero options must be Search, bit for bit, with the hit
// total riding along.
func TestTopKZeroOptionsIsSearch(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		ix := topkCorpus(t, shards)
		for _, q := range []string{"ford focus", "seattle", "nosuchterm", ""} {
			for _, k := range []int{1, 5, 100} {
				want := ix.Search(q, k)
				got, total, err := ix.TopK(context.Background(), q, k, 0, nil)
				if err != nil {
					t.Fatalf("shards=%d TopK(%q,%d): %v", shards, q, k, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d TopK(%q,%d) != Search", shards, q, k)
				}
				for i := range got {
					if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
						t.Fatalf("shards=%d score bits differ at rank %d", shards, i)
					}
				}
				if q == "ford focus" && total == 0 {
					t.Fatalf("shards=%d: total = 0 for a matching query", shards)
				}
			}
		}
	}
}

// Pages must tile: TopK(q, k, offset) is Search(q, offset+k)[offset:],
// and total is page-independent.
func TestTopKPagination(t *testing.T) {
	ix := topkCorpus(t, 4)
	q := "ford focus seattle"
	full := ix.Search(q, 1000)
	wantTotal := len(full)
	for _, k := range []int{1, 7, 25} {
		var paged []Result
		for offset := 0; offset < wantTotal+k; offset += k {
			page, total, err := ix.TopK(context.Background(), q, k, offset, nil)
			if err != nil {
				t.Fatal(err)
			}
			if total != wantTotal {
				t.Fatalf("k=%d offset=%d: total %d, want %d", k, offset, total, wantTotal)
			}
			paged = append(paged, page...)
		}
		if !reflect.DeepEqual(paged, full) {
			t.Fatalf("k=%d: concatenated pages differ from the full ranking", k)
		}
	}
	// Past-the-end page: empty, same total.
	page, total, err := ix.TopK(context.Background(), q, 10, wantTotal+5, nil)
	if err != nil || page != nil || total != wantTotal {
		t.Fatalf("past-the-end page = %v total=%d err=%v", page, total, err)
	}
}

// The admission filter restricts both the page and the total.
func TestTopKFilter(t *testing.T) {
	ix := topkCorpus(t, 4)
	q := "ford focus"
	keep := func(_ int, d Doc) bool {
		u, err := url.Parse(d.URL)
		return err == nil && u.Host == "h1.example"
	}
	hits, total, err := ix.TopK(context.Background(), q, 1000, 0, keep)
	if err != nil {
		t.Fatal(err)
	}
	if total != 20 || len(hits) != 20 {
		t.Fatalf("filtered total=%d hits=%d, want 20/20", total, len(hits))
	}
	for _, h := range hits {
		if u, _ := url.Parse(h.URL); u.Host != "h1.example" {
			t.Fatalf("filter leaked %s", h.URL)
		}
	}
	// The filtered ranking preserves the relative order of the full one.
	var fromFull []Result
	for _, h := range ix.Search(q, 1000) {
		if keep(h.DocID, Doc{URL: h.URL}) {
			fromFull = append(fromFull, h)
		}
	}
	if !reflect.DeepEqual(hits, fromFull) {
		t.Fatal("filtered ranking disagrees with post-filtered full ranking")
	}
}

// The admission filter receives the document id (not just the row), so
// id-keyed side stores like AnnotationsOf can drive admission.
func TestTopKFilterSeesDocID(t *testing.T) {
	ix := topkCorpus(t, 4)
	hits, total, err := ix.TopK(context.Background(), "ford focus", 1000, 0,
		func(id int, d Doc) bool {
			// The corpus numbers URLs by insertion order, so the id and
			// its row must agree.
			if want := fmt.Sprintf("/doc/%d", id); !strings.HasSuffix(d.URL, want) {
				t.Fatalf("filter id %d does not match its row %s", id, d.URL)
			}
			return id%2 == 0
		})
	if err != nil {
		t.Fatal(err)
	}
	if total != 30 || len(hits) != 30 {
		t.Fatalf("id-filtered total=%d hits=%d, want 30/30", total, len(hits))
	}
	for _, h := range hits {
		if h.DocID%2 != 0 {
			t.Fatalf("filter leaked doc %d", h.DocID)
		}
	}
}

// A canceled context aborts scoring with its error — and must leave
// the pooled accumulator clean, so the next query on the same scratch
// is unpolluted.
func TestTopKCanceledContext(t *testing.T) {
	ix := topkCorpus(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hits, total, err := ix.TopK(ctx, "ford focus seattle", 10, 0, nil)
	if err == nil || hits != nil || total != 0 {
		t.Fatalf("canceled TopK = (%v, %d, %v), want (nil, 0, ctx.Err())", hits, total, err)
	}
	want := ix.Search("ford focus seattle", 10)
	for i := 0; i < 20; i++ {
		got, _, err := ix.TopK(context.Background(), "ford focus seattle", 10, 0, nil)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d after canceled query diverged (err=%v)", i, err)
		}
	}
}

// AnnotatedTopK with zero options must match AnnotatedSearch exactly,
// and its pages must tile like the plain ones.
func TestAnnotatedTopKMatchesAnnotatedSearch(t *testing.T) {
	ix := topkCorpus(t, 4)
	for i := 0; i < 60; i += 2 {
		ix.Annotate(i, map[string]string{"make": "ford"})
	}
	q := "ford focus"
	for _, k := range []int{1, 5, 30} {
		want := ix.AnnotatedSearch(q, k)
		got, total, err := ix.AnnotatedTopK(context.Background(), q, k, 0, nil)
		if err != nil || !reflect.DeepEqual(got, want) {
			t.Fatalf("k=%d: AnnotatedTopK != AnnotatedSearch (err=%v)", k, err)
		}
		if total == 0 {
			t.Fatalf("k=%d: zero total", k)
		}
	}
	full, _, _ := ix.AnnotatedTopK(context.Background(), q, 1000, 0, nil)
	var paged []Result
	for offset := 0; offset < len(full); offset += 7 {
		page, _, err := ix.AnnotatedTopK(context.Background(), q, 7, offset, nil)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, page...)
	}
	if !reflect.DeepEqual(paged, full) {
		t.Fatal("annotated pages do not tile the full annotated ranking")
	}
}

// Annotated pages must tile even when the hit set crosses the re-rank
// depth: the ordering (re-ranked prefix + base-ordered tail) is
// canonical, so pages cut at any k/offset agree with the exhaustive
// page.
func TestAnnotatedTopKTilesAcrossRerankDepth(t *testing.T) {
	ix := NewSharded(4)
	for i := 0; i < 300; i++ {
		id, _ := ix.Add(Doc{
			URL:   fmt.Sprintf("http://h%d.example/doc/%d", i%3, i),
			Title: fmt.Sprintf("ford focus listing %d", i),
			Text:  fmt.Sprintf("a used ford focus number %d for sale in seattle", i),
		})
		if i%2 == 0 {
			ix.Annotate(id, map[string]string{"make": "ford"})
		} else {
			ix.Annotate(id, map[string]string{"make": "honda"})
		}
	}
	q := "ford focus seattle"
	full, total, err := ix.AnnotatedTopK(context.Background(), q, 1000, 0, nil)
	if err != nil || total <= rerankDepth {
		t.Fatalf("corpus does not cross the re-rank depth: total=%d err=%v", total, err)
	}
	for _, k := range []int{3, 10, 64} {
		var paged []Result
		for offset := 0; offset < total; offset += k {
			page, tot, err := ix.AnnotatedTopK(context.Background(), q, k, offset, nil)
			if err != nil || tot != total {
				t.Fatalf("k=%d offset=%d: total %d err %v", k, offset, tot, err)
			}
			paged = append(paged, page...)
		}
		if !reflect.DeepEqual(paged, full) {
			t.Fatalf("k=%d: annotated pages do not tile across the re-rank depth", k)
		}
	}
}
