package index

import (
	"strings"
	"sync"

	"deepweb/internal/textutil"
)

// Annotation support (§5.1). When a deep-web page is surfaced, the
// engine knows exactly which inputs it filled to generate the page —
// structure that a plain IR index throws away. The paper's "used ford
// focus 1993" example shows the cost: a surfaced Honda Civic listing
// page whose text happens to mention the Ford Focus can outrank real
// Ford pages. Annotations keep the surfacing-time binding attached to
// the document, and AnnotatedSearch exploits it: a query token that is
// a known value of an annotated attribute demotes documents whose
// annotation *contradicts* it and boosts documents whose annotation
// confirms it.

// annStore carries annotations parallel to docs.
type annStore struct {
	mu    sync.RWMutex
	anns  map[int]map[string]string // docID -> attr -> value
	vocab map[string]map[string]int // attr -> value -> support
}

func (ix *Index) annotations() *annStore {
	ix.annOnce.Do(func() {
		ix.ann = &annStore{
			anns:  map[int]map[string]string{},
			vocab: map[string]map[string]int{},
		}
	})
	return ix.ann
}

// Annotate attaches attribute=value annotations to an indexed document
// (typically the form binding that surfaced it). Values are stored
// lower-cased; empty values are ignored.
func (ix *Index) Annotate(docID int, anns map[string]string) {
	st := ix.annotations()
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.anns[docID]
	if m == nil {
		m = map[string]string{}
		st.anns[docID] = m
	}
	for attr, v := range anns {
		attr = strings.ToLower(strings.TrimSpace(attr))
		v = strings.ToLower(strings.TrimSpace(v))
		if attr == "" || v == "" {
			continue
		}
		m[attr] = v
		vv := st.vocab[attr]
		if vv == nil {
			vv = map[string]int{}
			st.vocab[attr] = vv
		}
		vv[v]++
	}
}

// deleteDoc drops a deleted document's annotations and releases its
// vocabulary support, so a value that survives only on dead documents
// stops steering AnnotatedSearch.
func (st *annStore) deleteDoc(docID int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for attr, v := range st.anns[docID] {
		if vv := st.vocab[attr]; vv != nil {
			if vv[v]--; vv[v] <= 0 {
				delete(vv, v)
			}
			if len(vv) == 0 {
				delete(st.vocab, attr)
			}
		}
	}
	delete(st.anns, docID)
}

// remap renumbers annotations through newID (-1 drops a document);
// Compact calls it after renumbering the document table.
func (st *annStore) remap(newID []int32) {
	st.mu.Lock()
	defer st.mu.Unlock()
	anns := make(map[int]map[string]string, len(st.anns))
	for id, m := range st.anns {
		if id >= 0 && id < len(newID) && newID[id] >= 0 {
			anns[int(newID[id])] = m
		}
	}
	st.anns = anns
}

// AnnotationsOf returns a document's annotations (nil if none).
func (ix *Index) AnnotationsOf(docID int) map[string]string {
	st := ix.annotations()
	st.mu.RLock()
	defer st.mu.RUnlock()
	src := st.anns[docID]
	if src == nil {
		return nil
	}
	out := make(map[string]string, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Annotation-aware scoring factors. Demotion is strong: a contradicted
// annotation means the page's records are about something else
// entirely, however good the term statistics look.
const (
	annBoost  = 1.25
	annDemote = 0.10
)

// AnnotatedSearch is Search plus §5.1 annotation exploitation. For
// every attribute whose value vocabulary intersects the query, a
// document annotated with a *different* value of that attribute is
// demoted, and one annotated with the mentioned value is boosted.
// Unannotated documents are untouched, so the method degrades to plain
// BM25 when no annotations exist.
func (ix *Index) AnnotatedSearch(query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	// Over-fetch so demotions cannot empty the cut.
	base := ix.Search(query, k*5+10)
	if len(base) == 0 {
		return base
	}
	st := ix.annotations()
	st.mu.RLock()
	defer st.mu.RUnlock()

	q := " " + strings.Join(textutil.Tokenize(query), " ") + " "
	// queryValues[attr] = the value of attr the query mentions, if any.
	queryValues := map[string]string{}
	for attr, values := range st.vocab {
		for v := range values {
			if strings.Contains(q, " "+v+" ") {
				// Prefer the longest mentioned value (multi-word values
				// like "santa fe" beat their substrings).
				if len(v) > len(queryValues[attr]) {
					queryValues[attr] = v
				}
			}
		}
	}
	if len(queryValues) == 0 {
		if k < len(base) {
			base = base[:k]
		}
		return base
	}
	for i := range base {
		anns := st.anns[base[i].DocID]
		if anns == nil {
			continue
		}
		for attr, want := range queryValues {
			have, ok := anns[attr]
			if !ok {
				continue
			}
			if have == want {
				base[i].Score *= annBoost
			} else {
				base[i].Score *= annDemote
			}
		}
	}
	// Stable re-rank by adjusted score.
	sortResults(base)
	if k < len(base) {
		base = base[:k]
	}
	return base
}

func sortResults(rs []Result) {
	// insertion sort is fine at the over-fetch sizes involved and keeps
	// the tie-break (doc id) stable.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			if rs[j-1].Score > rs[j].Score ||
				(rs[j-1].Score == rs[j].Score && rs[j-1].DocID < rs[j].DocID) {
				break
			}
			rs[j-1], rs[j] = rs[j], rs[j-1]
		}
	}
}
