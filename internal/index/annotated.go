package index

import (
	"context"
	"sort"
	"strings"
	"sync"

	"deepweb/internal/textutil"
)

// Annotation support (§5.1). When a deep-web page is surfaced, the
// engine knows exactly which inputs it filled to generate the page —
// structure that a plain IR index throws away. The paper's "used ford
// focus 1993" example shows the cost: a surfaced Honda Civic listing
// page whose text happens to mention the Ford Focus can outrank real
// Ford pages. Annotations keep the surfacing-time binding attached to
// the document, and AnnotatedSearch exploits it: a query token that is
// a known value of an annotated attribute demotes documents whose
// annotation *contradicts* it and boosts documents whose annotation
// confirms it.

// annStore carries annotations parallel to docs.
type annStore struct {
	mu    sync.RWMutex
	anns  map[int]map[string]string // docID -> attr -> value
	vocab map[string]map[string]int // attr -> value -> support
}

func (ix *Index) annotations() *annStore {
	ix.annOnce.Do(func() {
		ix.ann = &annStore{
			anns:  map[int]map[string]string{},
			vocab: map[string]map[string]int{},
		}
	})
	return ix.ann
}

// Annotate attaches attribute=value annotations to an indexed document
// (typically the form binding that surfaced it). Values are stored
// lower-cased; empty values are ignored.
func (ix *Index) Annotate(docID int, anns map[string]string) {
	st := ix.annotations()
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.anns[docID]
	if m == nil {
		m = map[string]string{}
		st.anns[docID] = m
	}
	for attr, v := range anns {
		attr = strings.ToLower(strings.TrimSpace(attr))
		v = strings.ToLower(strings.TrimSpace(v))
		if attr == "" || v == "" {
			continue
		}
		m[attr] = v
		vv := st.vocab[attr]
		if vv == nil {
			vv = map[string]int{}
			st.vocab[attr] = vv
		}
		vv[v]++
	}
}

// deleteDoc drops a deleted document's annotations and releases its
// vocabulary support, so a value that survives only on dead documents
// stops steering AnnotatedSearch.
func (st *annStore) deleteDoc(docID int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for attr, v := range st.anns[docID] {
		if vv := st.vocab[attr]; vv != nil {
			if vv[v]--; vv[v] <= 0 {
				delete(vv, v)
			}
			if len(vv) == 0 {
				delete(st.vocab, attr)
			}
		}
	}
	delete(st.anns, docID)
}

// remap renumbers annotations through newID (-1 drops a document);
// Compact calls it after renumbering the document table.
func (st *annStore) remap(newID []int32) {
	st.mu.Lock()
	defer st.mu.Unlock()
	anns := make(map[int]map[string]string, len(st.anns))
	for id, m := range st.anns {
		if id >= 0 && id < len(newID) && newID[id] >= 0 {
			anns[int(newID[id])] = m
		}
	}
	st.anns = anns
}

// AnnotationsOf returns a document's annotations (nil if none).
func (ix *Index) AnnotationsOf(docID int) map[string]string {
	st := ix.annotations()
	st.mu.RLock()
	defer st.mu.RUnlock()
	src := st.anns[docID]
	if src == nil {
		return nil
	}
	out := make(map[string]string, len(src))
	for k, v := range src {
		out[k] = v
	}
	return out
}

// Annotation-aware scoring factors. Demotion is strong: a contradicted
// annotation means the page's records are about something else
// entirely, however good the term statistics look.
const (
	annBoost  = 1.25
	annDemote = 0.10
)

// rerankDepth is how deep into the base BM25 ranking annotation
// adjustments reach. Documents ranked deeper keep their plain BM25
// order — the usual re-rank-depth trade: bounded per-query cost and a
// canonical ordering (so pagination tiles exactly), at the price of a
// boost never lifting a document from beyond the depth.
const rerankDepth = 200

// AnnotatedSearch is Search plus §5.1 annotation exploitation. For
// every attribute whose value vocabulary intersects the query, a
// document annotated with a *different* value of that attribute is
// demoted, and one annotated with the mentioned value is boosted.
// Unannotated documents are untouched, so the method degrades to plain
// BM25 when no annotations exist.
func (ix *Index) AnnotatedSearch(query string, k int) []Result {
	hits, _, _ := ix.annotatedTopK(nil, query, k, 0, nil)
	return hits
}

// AnnotatedTopK is to AnnotatedSearch what TopK is to Search:
// pagination, an optional admission filter, the total live hit count
// and cancellation, with the same annotation-adjusted ranking. Pages
// tile exactly: every request slices the same canonical ordering (the
// base top-rerankDepth re-ranked once, plain BM25 order beyond it).
// The total counts every live document the query matched (after the
// filter), not just the re-ranked prefix.
func (ix *Index) AnnotatedTopK(ctx context.Context, query string, k, offset int, keep func(id int, d Doc) bool) ([]Result, int, error) {
	return ix.annotatedTopK(ctx, query, k, offset, keep)
}

func (ix *Index) annotatedTopK(ctx context.Context, query string, k, offset int, keep func(id int, d Doc) bool) ([]Result, int, error) {
	if k <= 0 {
		return nil, 0, ctxErr(ctx)
	}
	if offset < 0 {
		offset = 0
	}
	st := ix.annotations()
	queryValues := st.valuesMentioned(query)
	if len(queryValues) == 0 {
		// No annotation vocabulary intersects the query: degrade to the
		// plain BM25 page, with no over-fetch at all.
		return ix.topK(ctx, query, k, offset, keep)
	}

	// Re-ranking must page against one canonical adjusted ordering — a
	// pure function of (query, corpus) — or pages would not tile: a
	// window that varies with the request re-ranks each page against a
	// different candidate list, repeating or dropping boosted docs
	// across pages. The canonical ordering is the standard re-rank-
	// depth construction: the base top-rerankDepth is adjusted and
	// re-sorted once, everything deeper keeps its base (plain BM25)
	// order. Every page, whatever its k and offset, is a slice of that
	// one ordering, and the cost is bounded by the depth, not by the
	// hit count.
	const maxInt = int(^uint(0) >> 1)
	need := k + offset
	if need < k {
		need = maxInt
	}
	fetch := need
	if fetch < rerankDepth {
		fetch = rerankDepth
	}
	base, total, err := ix.topK(ctx, query, fetch, 0, keep)
	if err != nil || len(base) == 0 {
		return base, total, err
	}
	head := base
	if len(head) > rerankDepth {
		head = head[:rerankDepth]
	}
	st.adjust(head, queryValues)
	sortResults(head)
	return pageOf(base, k, offset), total, nil
}

// valuesMentioned returns, per annotation attribute, the longest
// attribute value the query mentions (multi-word values like "santa
// fe" beat their substrings); empty when the query touches no
// annotation vocabulary.
func (st *annStore) valuesMentioned(query string) map[string]string {
	st.mu.RLock()
	defer st.mu.RUnlock()
	q := " " + strings.Join(textutil.Tokenize(query), " ") + " "
	queryValues := map[string]string{}
	for attr, values := range st.vocab {
		for v := range values {
			if strings.Contains(q, " "+v+" ") {
				if len(v) > len(queryValues[attr]) {
					queryValues[attr] = v
				}
			}
		}
	}
	return queryValues
}

// adjust applies the §5.1 boost/demote factors to a ranked page in
// place.
func (st *annStore) adjust(rs []Result, queryValues map[string]string) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	for i := range rs {
		anns := st.anns[rs[i].DocID]
		if anns == nil {
			continue
		}
		for attr, want := range queryValues {
			have, ok := anns[attr]
			if !ok {
				continue
			}
			if have == want {
				rs[i].Score *= annBoost
			} else {
				rs[i].Score *= annDemote
			}
		}
	}
}

// pageOf cuts the k-sized page at offset out of a ranked slice.
func pageOf(rs []Result, k, offset int) []Result {
	if offset > 0 {
		if offset >= len(rs) {
			return nil
		}
		rs = rs[offset:]
	}
	if k < len(rs) {
		rs = rs[:k]
	}
	return rs
}

func sortResults(rs []Result) {
	// The key (score desc, doc id asc) is total — no two entries share
	// a doc id — so an unstable sort is deterministic here, and O(n
	// log n) keeps full-hit-set re-ranking cheap.
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Score != rs[j].Score {
			return rs[i].Score > rs[j].Score
		}
		return rs[i].DocID < rs[j].DocID
	})
}
