package index

import (
	"fmt"
	"sync"
	"testing"
)

// Sharding must be invisible: any shard count yields identical search
// results for the same insertion order.
func TestShardCountInvariant(t *testing.T) {
	build := func(n int) *Index {
		ix := NewSharded(n)
		for i := 0; i < 60; i++ {
			ix.Add(Doc{
				URL:   fmt.Sprintf("u%d", i),
				Title: fmt.Sprintf("listing %d", i),
				Text: fmt.Sprintf("ford focus %d for sale in seattle price %d record %d",
					1990+i%20, 500+i*13%25000, i),
			})
		}
		return ix
	}
	ref := build(1)
	for _, shards := range []int{2, 7, 16} {
		ix := build(shards)
		for _, q := range []string{"ford focus", "seattle price", "record 7", "listing"} {
			want := ref.Search(q, 10)
			got := ix.Search(q, 10)
			if len(got) != len(want) {
				t.Fatalf("shards=%d q=%q: %d hits, want %d", shards, q, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("shards=%d q=%q hit %d: %+v want %+v", shards, q, i, got[i], want[i])
				}
			}
		}
		if ref.DF("ford") != ix.DF("ford") {
			t.Errorf("shards=%d: DF diverged", shards)
		}
	}
}

// Prepare/AddPrepared must be equivalent to Add, including duplicate
// handling.
func TestAddPreparedMatchesAdd(t *testing.T) {
	a, b := New(), New()
	docs := []Doc{
		{URL: "u1", Title: "used cars", Text: "ford focus for sale"},
		{URL: "u2", Title: "recipes", Text: "lasagna with ricotta"},
		{URL: "u1", Title: "dup", Text: "should not reindex"},
	}
	for _, d := range docs {
		idA, addedA := a.Add(d)
		idB, addedB := b.AddPrepared(Prepare(d))
		if idA != idB || addedA != addedB {
			t.Fatalf("Add(%q)=(%d,%v) but AddPrepared=(%d,%v)", d.URL, idA, addedA, idB, addedB)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	for _, q := range []string{"ford focus", "ricotta", "reindex"} {
		ra, rb := a.Search(q, 5), b.Search(q, 5)
		if len(ra) != len(rb) {
			t.Fatalf("q=%q: %d vs %d hits", q, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Errorf("q=%q hit %d: %+v vs %+v", q, i, ra[i], rb[i])
			}
		}
	}
}

// Hammer concurrent AddPrepared + Search across goroutines; run with
// -race. Content (not ids) must come out complete regardless of
// interleaving.
func TestConcurrentAddPrepared(t *testing.T) {
	ix := New()
	const writers, perWriter = 8, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				p := Prepare(Doc{
					URL:  fmt.Sprintf("w%d-u%d", w, i),
					Text: fmt.Sprintf("pelican writer%02d item%02d shared vocabulary", w, i),
				})
				ix.AddPrepared(p)
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		ix.Search("pelican shared", 5)
	}
	wg.Wait()
	if got := ix.Len(); got != writers*perWriter {
		t.Fatalf("Len = %d, want %d", got, writers*perWriter)
	}
	if df := ix.DF("pelican"); df != writers*perWriter {
		t.Errorf("DF(pelican) = %d, want %d", df, writers*perWriter)
	}
	// Every document must be fully searchable by its unique term pair.
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i += 7 {
			q := fmt.Sprintf("writer%02d item%02d", w, i)
			found := false
			for _, r := range ix.Search(q, 10) {
				if r.URL == fmt.Sprintf("w%d-u%d", w, i) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("doc w%d-u%d not retrievable", w, i)
			}
		}
	}
}

func BenchmarkAddPreparedParallel(b *testing.B) {
	ix := New()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p := Prepare(Doc{
				URL:  fmt.Sprintf("u-%p-%d", &i, i),
				Text: "ford focus 1993 for sale in seattle clean title low miles",
			})
			ix.AddPrepared(p)
			i++
		}
	})
}
