package index

import (
	"fmt"
	"sort"
)

// Snapshot support. The index's internals — the sharded posting maps,
// the document table, the annotation store — stay private; this file is
// the narrow export/import surface the snapshot codec (internal/store)
// works through. Export hands out copies or short-lived views; import
// rebuilds an index from decoded segments without re-running the text
// pipeline, which is what makes warm starts cheap.
//
// Shard assignment is seeded per process (maphash), so a term's shard
// at save time says nothing about its shard after a load. Export
// therefore walks shards only as a way to partition work; import
// re-hashes every term under the loading index's own seed. Search
// merges across shards, so results are independent of the layout —
// ImportDocs + ImportTerms reproduce Search bit-for-bit because every
// quantity BM25 reads (doc count, lengths, total length, tf, df) is
// restored exactly.

// Posting is the exported view of one posting-list entry.
type Posting struct {
	Doc int32 // document id
	TF  int32 // term frequency (title terms pre-counted double)
}

// TermPostings is one term's full posting list, in insertion (doc-id)
// order.
type TermPostings struct {
	Term     string
	Postings []Posting
}

// NumShards returns the posting-shard count.
func (ix *Index) NumShards() int { return len(ix.shards) }

// ExportShard returns shard si's terms with their posting lists, terms
// sorted, postings in stored order. The slices are fresh copies — the
// caller may encode them after the call returns, concurrently with
// writers.
func (ix *Index) ExportShard(si int) []TermPostings {
	sh := ix.shards[si]
	sh.mu.RLock()
	out := make([]TermPostings, 0, len(sh.postings))
	for term, plist := range sh.postings {
		ps := make([]Posting, len(plist))
		for i, p := range plist {
			ps[i] = Posting{Doc: p.doc, TF: p.tf}
		}
		out = append(out, TermPostings{Term: term, Postings: ps})
	}
	sh.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Term < out[j].Term })
	return out
}

// ExportDocs returns copies of the document table, the per-document
// term lengths and the tombstone flags, all indexed by doc id. A dead
// entry is a deleted document whose postings have not been compacted
// away yet; persisting it keeps doc ids — and therefore Search tie
// order — stable across a snapshot round trip of a mutated index.
func (ix *Index) ExportDocs() (docs []Doc, lens []int, dead []bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	docs = make([]Doc, len(ix.docs))
	copy(docs, ix.docs)
	lens = make([]int, len(ix.lens))
	copy(lens, ix.lens)
	dead = make([]bool, len(ix.dead))
	copy(dead, ix.dead)
	return docs, lens, dead
}

// ExportAnnotations returns a copy of every document's annotations
// (empty map when none exist).
func (ix *Index) ExportAnnotations() map[int]map[string]string {
	st := ix.annotations()
	st.mu.RLock()
	defer st.mu.RUnlock()
	out := make(map[int]map[string]string, len(st.anns))
	for id, m := range st.anns {
		cp := make(map[string]string, len(m))
		for k, v := range m {
			cp[k] = v
		}
		out[id] = cp
	}
	return out
}

// ForEachLive calls fn for every live document in ascending id order,
// under the table read lock — the copy-free way to walk the corpus.
// fn must not call back into the index.
func (ix *Index) ForEachLive(fn func(id int, d Doc)) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	for id, d := range ix.docs {
		if !ix.dead[id] {
			fn(id, d)
		}
	}
}

// ImportDocs installs a decoded document table into an empty index,
// rebuilding the URL and source lookup structures and the live-corpus
// counters BM25 reads. dead marks tombstoned rows (nil = none): they
// get no URL or source entry and are subtracted from the live totals,
// exactly the state Delete leaves behind. It refuses a non-empty
// index: snapshots restore whole worlds, they do not merge into live
// ones.
func (ix *Index) ImportDocs(docs []Doc, lens []int, dead []bool) error {
	if len(docs) != len(lens) {
		return fmt.Errorf("index: import: %d docs but %d lengths", len(docs), len(lens))
	}
	if dead == nil {
		dead = make([]bool, len(docs))
	}
	if len(dead) != len(docs) {
		return fmt.Errorf("index: import: %d docs but %d tombstone flags", len(docs), len(dead))
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if len(ix.docs) != 0 {
		return fmt.Errorf("index: import into non-empty index (%d docs)", len(ix.docs))
	}
	ix.docs = docs
	ix.lens = lens
	ix.dead = dead
	for id, d := range docs {
		ix.totalLen += lens[id]
		if dead[id] {
			ix.numDead++
			ix.deadLen += lens[id]
			continue
		}
		if prev, dup := ix.byURL[d.URL]; dup {
			return fmt.Errorf("index: import: duplicate URL %q (docs %d and %d)", d.URL, prev, id)
		}
		ix.byURL[d.URL] = id
		if d.Source != "" {
			ix.bySource[d.Source]++
		}
	}
	return nil
}

// ImportTerms installs decoded posting lists, hashing each term to its
// shard under this index's seed. Lists are installed as-is (stored
// order preserved); a term may be imported at most once per index.
// Safe to call concurrently — a loader decodes segments in parallel.
func (ix *Index) ImportTerms(terms []TermPostings) error {
	for _, tp := range terms {
		sh := ix.shardFor(tp.Term)
		plist := make([]posting, len(tp.Postings))
		for i, p := range tp.Postings {
			plist[i] = posting{doc: p.Doc, tf: p.TF}
		}
		sh.mu.Lock()
		_, dup := sh.postings[tp.Term]
		if !dup {
			sh.postings[tp.Term] = plist
		}
		sh.mu.Unlock()
		if dup {
			return fmt.Errorf("index: import: term %q imported twice", tp.Term)
		}
	}
	return nil
}
