package index

import (
	"fmt"
	"testing"
)

func batchDocs(n int) []Doc {
	docs := make([]Doc, n)
	for i := range docs {
		docs[i] = Doc{
			URL:    fmt.Sprintf("http://s%d.example/r?id=%d", i%3, i),
			Title:  fmt.Sprintf("doc %d ford", i),
			Text:   fmt.Sprintf("used ford focus %d excellent condition austin texas", i),
			Source: fmt.Sprintf("s%d.example", i%3),
		}
	}
	return docs
}

// Batch commits must leave the index in exactly the state sequential
// AddPrepared commits produce: same exported shards, docs, and stats.
func TestAddPreparedBatchEquivalentToSequential(t *testing.T) {
	for _, shards := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			docs := batchDocs(100)
			// A duplicate URL inside the batch and one already present.
			docs[50].URL = docs[10].URL
			seq := NewSharded(shards)
			seqPre, _ := seq.Add(Doc{URL: "pre.example", Title: "pre", Text: "existing doc"})
			var wantIDs []int
			var wantAdded []bool
			for _, d := range docs {
				id, ok := seq.AddPrepared(Prepare(d))
				wantIDs = append(wantIDs, id)
				wantAdded = append(wantAdded, ok)
			}

			bat := NewSharded(shards)
			batPre, _ := bat.Add(Doc{URL: "pre.example", Title: "pre", Text: "existing doc"})
			if batPre != seqPre {
				t.Fatal("setup mismatch")
			}
			ps := make([]*Prepared, len(docs))
			for i, d := range docs {
				ps[i] = Prepare(d)
			}
			ids, added := bat.AddPreparedBatch(ps)
			for i := range docs {
				if ids[i] != wantIDs[i] || added[i] != wantAdded[i] {
					t.Fatalf("doc %d: batch (%d,%v), sequential (%d,%v)", i, ids[i], added[i], wantIDs[i], wantAdded[i])
				}
			}

			// Whole-index equivalence: exported docs and every shard's
			// sorted term/postings dump must match. Shard layout is
			// seed-dependent per index, so compare the union of shards.
			sd, sl, _ := seq.ExportDocs()
			bd, bl, _ := bat.ExportDocs()
			if len(sd) != len(bd) {
				t.Fatalf("doc counts differ: %d vs %d", len(sd), len(bd))
			}
			for i := range sd {
				if sd[i] != bd[i] || sl[i] != bl[i] {
					t.Fatalf("doc %d differs", i)
				}
			}
			if got, want := dumpTerms(bat, shards), dumpTerms(seq, shards); got != want {
				t.Fatalf("postings differ:\nbatch: %.300s\nseq:   %.300s", got, want)
			}

			// Ranking equivalence on a few probes.
			for _, q := range []string{"ford", "focus excellent", "austin"} {
				a := seq.Search(q, 10)
				b := bat.Search(q, 10)
				if len(a) != len(b) {
					t.Fatalf("query %q: %d vs %d results", q, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("query %q result %d: %+v vs %+v", q, i, a[i], b[i])
					}
				}
			}
		})
	}
}

// dumpTerms renders every term's posting list (terms sorted across all
// shards) so two indexes can be compared independent of shard layout.
func dumpTerms(ix *Index, shards int) string {
	all := map[string][]Posting{}
	for si := 0; si < shards; si++ {
		for _, tp := range ix.ExportShard(si) {
			all[tp.Term] = append(all[tp.Term], tp.Postings...)
		}
	}
	keys := make([]string, 0, len(all))
	for k := range all {
		keys = append(keys, k)
	}
	sortStrings(keys)
	out := ""
	for _, k := range keys {
		out += k
		for _, p := range all[k] {
			out += fmt.Sprintf(" %d:%d", p.Doc, p.TF)
		}
		out += "\n"
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func TestAddPreparedBatchEmpty(t *testing.T) {
	ix := New()
	ids, added := ix.AddPreparedBatch(nil)
	if len(ids) != 0 || len(added) != 0 {
		t.Fatal("empty batch produced output")
	}
}

func TestPreparedAccessors(t *testing.T) {
	p := Prepare(Doc{URL: "u", Title: "ford focus", Text: "ford excellent"})
	if p.Doc().URL != "u" {
		t.Fatal("Doc accessor")
	}
	// Title tokens count twice in dl: 2 title + 2 text + 2 = 6.
	if p.DocLen() != 6 {
		t.Fatalf("DocLen = %d, want 6", p.DocLen())
	}
	terms, tfs := p.Terms(), p.TermFreqs()
	if len(terms) != len(tfs) || len(terms) == 0 {
		t.Fatalf("terms/tfs mismatch: %v %v", terms, tfs)
	}
	var fordTF int32
	for i, tm := range terms {
		if tm == "ford" {
			fordTF = tfs[i]
		}
	}
	if fordTF != 3 { // 2 (title) + 1 (text)
		t.Fatalf("ford tf = %d, want 3", fordTF)
	}
}
