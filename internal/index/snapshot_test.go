package index

import (
	"fmt"
	"math"
	"reflect"
	"testing"
)

// smallCorpus indexes a deterministic toy corpus with annotations.
func smallCorpus(shards int) *Index {
	ix := NewSharded(shards)
	for i := 0; i < 40; i++ {
		id, _ := ix.Add(Doc{
			URL:    fmt.Sprintf("http://cars.example/p%d", i),
			Title:  fmt.Sprintf("used car %d ford focus", i),
			Text:   fmt.Sprintf("great ford focus number %d in seattle, price %d", i, 1000+i),
			Source: fmt.Sprintf("form-%d", i%3),
		})
		if i%2 == 0 {
			ix.Annotate(id, map[string]string{"make": "ford", "model": "focus"})
		}
	}
	return ix
}

// transplant exports every snapshot surface of src and imports it into
// a fresh index with the given shard count.
func transplant(t *testing.T, src *Index, shards int) *Index {
	t.Helper()
	docs, lens, dead := src.ExportDocs()
	dst := NewSharded(shards)
	if err := dst.ImportDocs(docs, lens, dead); err != nil {
		t.Fatal(err)
	}
	for si := 0; si < src.NumShards(); si++ {
		if err := dst.ImportTerms(src.ExportShard(si)); err != nil {
			t.Fatal(err)
		}
	}
	for id, anns := range src.ExportAnnotations() {
		dst.Annotate(id, anns)
	}
	return dst
}

// Export → import must reproduce queries exactly, whatever the shard
// counts on either side: shard layout is a concurrency detail, not an
// observable property.
func TestSnapshotTransplantExactness(t *testing.T) {
	src := smallCorpus(DefaultShards)
	for _, shards := range []int{1, 4, DefaultShards, 32} {
		dst := transplant(t, src, shards)
		if src.Len() != dst.Len() {
			t.Fatalf("shards=%d: %d docs became %d", shards, src.Len(), dst.Len())
		}
		for id := 0; id < src.Len(); id++ {
			if src.Doc(id) != dst.Doc(id) {
				t.Fatalf("shards=%d: doc %d differs", shards, id)
			}
			if !reflect.DeepEqual(src.AnnotationsOf(id), dst.AnnotationsOf(id)) {
				t.Fatalf("shards=%d: annotations of doc %d differ", shards, id)
			}
		}
		if !reflect.DeepEqual(src.DocsBySource(), dst.DocsBySource()) {
			t.Errorf("shards=%d: per-source counts differ", shards)
		}
		for _, q := range []string{"ford focus", "seattle price", "used car 7", "absent-term"} {
			a, b := src.Search(q, 10), dst.Search(q, 10)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("shards=%d: Search(%q) differs:\n  src %v\n  dst %v", shards, q, a, b)
			}
			for i := range a {
				if math.Float64bits(a[i].Score) != math.Float64bits(b[i].Score) {
					t.Errorf("shards=%d: Search(%q) hit %d: score bits differ", shards, q, i)
				}
			}
			if !reflect.DeepEqual(src.AnnotatedSearch(q, 10), dst.AnnotatedSearch(q, 10)) {
				t.Errorf("shards=%d: AnnotatedSearch(%q) differs", shards, q)
			}
			if src.DF(q) != dst.DF(q) {
				t.Errorf("shards=%d: DF(%q) differs", shards, q)
			}
		}
	}
}

// ExportShard hands out copies: mutating them must not corrupt the
// index, and terms arrive sorted for deterministic segment bytes.
func TestExportShardIsolatedAndSorted(t *testing.T) {
	ix := smallCorpus(4)
	for si := 0; si < ix.NumShards(); si++ {
		terms := ix.ExportShard(si)
		for i := range terms {
			if i > 0 && terms[i-1].Term >= terms[i].Term {
				t.Fatalf("shard %d: terms out of order: %q then %q", si, terms[i-1].Term, terms[i].Term)
			}
			for j := range terms[i].Postings {
				terms[i].Postings[j] = Posting{Doc: -1, TF: -1}
			}
		}
	}
	if got := ix.Search("ford focus", 5); len(got) == 0 {
		t.Fatal("index corrupted by mutating an exported shard")
	}
}

// The import surface refuses the states that would corrupt an index
// silently.
func TestImportRejectsBadState(t *testing.T) {
	if err := NewSharded(2).ImportDocs([]Doc{{URL: "u"}}, []int{1, 2}, nil); err == nil {
		t.Error("mismatched docs/lens accepted")
	}
	if err := NewSharded(2).ImportDocs([]Doc{{URL: "u"}}, []int{1}, []bool{true, false}); err == nil {
		t.Error("mismatched docs/dead accepted")
	}
	ix := smallCorpus(2)
	docs, lens, dead := ix.ExportDocs()
	if err := ix.ImportDocs(docs, lens, dead); err == nil {
		t.Error("import into non-empty index accepted")
	}
	if err := NewSharded(2).ImportDocs([]Doc{{URL: "u"}, {URL: "u"}}, []int{1, 1}, nil); err == nil {
		t.Error("duplicate URL accepted")
	}
	// A dead and a live doc may share a URL — that is exactly the state
	// a delete-then-re-add leaves — but two live docs may not.
	if err := NewSharded(2).ImportDocs([]Doc{{URL: "u"}, {URL: "u"}}, []int{1, 1}, []bool{true, false}); err != nil {
		t.Errorf("tombstoned duplicate URL rejected: %v", err)
	}
	fresh := NewSharded(2)
	tp := []TermPostings{{Term: "dup", Postings: []Posting{{Doc: 0, TF: 1}}}}
	if err := fresh.ImportTerms(tp); err != nil {
		t.Fatal(err)
	}
	if err := fresh.ImportTerms(tp); err == nil {
		t.Error("double term import accepted")
	}
}
