package index

import (
	"testing"
)

func annotatedIndex() *Index {
	ix := New()
	// A real Ford Focus listings page…
	id1, _ := ix.Add(Doc{URL: "ford-page", Text: "ford focus 1993 clean title low miles ford focus wagon"})
	ix.Annotate(id1, map[string]string{"make": "ford"})
	// …and the §5.1 decoy: a Honda page whose text mentions the Focus.
	id2, _ := ix.Add(Doc{URL: "honda-page", Text: "honda civic 1993 better mileage than the ford focus"})
	ix.Annotate(id2, map[string]string{"make": "honda"})
	// An unannotated surface-web page.
	ix.Add(Doc{URL: "blog", Text: "my old ford focus 1993 road trip story"})
	return ix
}

func TestAnnotateAndLookup(t *testing.T) {
	ix := annotatedIndex()
	anns := ix.AnnotationsOf(0)
	if anns["make"] != "ford" {
		t.Errorf("AnnotationsOf(0) = %v", anns)
	}
	if ix.AnnotationsOf(2) != nil {
		t.Error("unannotated doc should give nil")
	}
	// Returned map is a copy.
	anns["make"] = "mutated"
	if ix.AnnotationsOf(0)["make"] != "ford" {
		t.Error("AnnotationsOf leaked internal state")
	}
}

func TestAnnotateIgnoresEmpty(t *testing.T) {
	ix := New()
	id, _ := ix.Add(Doc{URL: "u", Text: "x y"})
	ix.Annotate(id, map[string]string{"": "v", "attr": "", "ok": "Val"})
	anns := ix.AnnotationsOf(id)
	if len(anns) != 1 || anns["ok"] != "val" {
		t.Errorf("anns = %v", anns)
	}
}

func TestAnnotatedSearchDemotesContradiction(t *testing.T) {
	ix := annotatedIndex()
	// Plain search: decoy competes on equal terms.
	plain := ix.Search("ford focus 1993", 3)
	if len(plain) != 3 {
		t.Fatalf("plain hits = %d", len(plain))
	}
	// Annotated search: the honda page is demoted below both others.
	ann := ix.AnnotatedSearch("ford focus 1993", 3)
	if len(ann) != 3 {
		t.Fatalf("annotated hits = %d", len(ann))
	}
	if ann[len(ann)-1].URL != "honda-page" {
		t.Errorf("contradicted page not last: %+v", ann)
	}
	if ann[0].URL == "honda-page" {
		t.Error("contradicted page ranked first")
	}
}

func TestAnnotatedSearchBoostsConfirmation(t *testing.T) {
	ix := annotatedIndex()
	ann := ix.AnnotatedSearch("honda civic", 3)
	if len(ann) == 0 || ann[0].URL != "honda-page" {
		t.Errorf("confirmed page not first: %+v", ann)
	}
}

func TestAnnotatedSearchNoVocabularyMatchIsPlain(t *testing.T) {
	ix := annotatedIndex()
	plain := ix.Search("road trip story", 3)
	ann := ix.AnnotatedSearch("road trip story", 3)
	if len(plain) != len(ann) {
		t.Fatalf("lengths differ: %d vs %d", len(plain), len(ann))
	}
	for i := range plain {
		if plain[i].URL != ann[i].URL {
			t.Errorf("rank %d differs without annotation signal", i)
		}
	}
}

func TestAnnotatedSearchUnannotatedUntouched(t *testing.T) {
	ix := annotatedIndex()
	ann := ix.AnnotatedSearch("ford focus 1993", 3)
	for _, hit := range ann {
		if hit.URL == "blog" && hit.Score <= 0 {
			t.Error("unannotated doc score altered")
		}
	}
}

func TestAnnotatedSearchEdgeCases(t *testing.T) {
	ix := New()
	if got := ix.AnnotatedSearch("anything", 5); got != nil {
		t.Error("empty index should return nil")
	}
	ix.Add(Doc{URL: "u", Text: "hello"})
	if got := ix.AnnotatedSearch("hello", 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestAnnotatedSearchMultiWordValue(t *testing.T) {
	ix := New()
	id1, _ := ix.Add(Doc{URL: "sf", Text: "listings in san francisco bay area"})
	ix.Annotate(id1, map[string]string{"city": "san francisco"})
	id2, _ := ix.Add(Doc{URL: "sd", Text: "san diego listings mention san francisco once"})
	ix.Annotate(id2, map[string]string{"city": "san diego"})
	ann := ix.AnnotatedSearch("homes san francisco", 2)
	if len(ann) == 0 || ann[0].URL != "sf" {
		t.Errorf("multi-word value handling wrong: %+v", ann)
	}
}
