package index

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestAddAndSearch(t *testing.T) {
	ix := New()
	ix.Add(Doc{URL: "u1", Title: "used cars", Text: "ford focus 1993 for sale, clean title"})
	ix.Add(Doc{URL: "u2", Title: "recipes", Text: "lasagna with ricotta and basil"})
	ix.Add(Doc{URL: "u3", Title: "used cars", Text: "honda civic 1999, better mileage than the ford focus"})

	res := ix.Search("ford focus", 10)
	if len(res) != 2 {
		t.Fatalf("got %d results, want 2", len(res))
	}
	if res[0].URL != "u1" {
		t.Errorf("top hit = %s, want u1 (both query terms, shorter doc)", res[0].URL)
	}
}

func TestSearchRanksExactDocHigher(t *testing.T) {
	ix := New()
	ix.Add(Doc{URL: "exact", Title: "", Text: "zipcode lookup service"})
	ix.Add(Doc{URL: "partial", Title: "", Text: "zipcode appears here among many many other completely unrelated words about gardening and plumbing"})
	res := ix.Search("zipcode lookup", 2)
	if res[0].URL != "exact" {
		t.Errorf("length normalization failed: top = %s", res[0].URL)
	}
}

func TestDuplicateURLNotReindexed(t *testing.T) {
	ix := New()
	id1, added1 := ix.Add(Doc{URL: "u", Text: "alpha"})
	id2, added2 := ix.Add(Doc{URL: "u", Text: "beta"})
	if !added1 || added2 || id1 != id2 {
		t.Errorf("dup handling wrong: %d/%v then %d/%v", id1, added1, id2, added2)
	}
	if ix.Len() != 1 {
		t.Errorf("Len = %d, want 1", ix.Len())
	}
	// Content of the duplicate must not have been indexed.
	if res := ix.Search("beta", 1); len(res) != 0 {
		t.Error("duplicate's text leaked into the index")
	}
}

func TestSearchEmptyAndUnknown(t *testing.T) {
	ix := New()
	if res := ix.Search("anything", 5); res != nil {
		t.Error("empty index should return nil")
	}
	ix.Add(Doc{URL: "u", Text: "hello world"})
	if res := ix.Search("", 5); res != nil {
		t.Error("empty query should return nil")
	}
	if res := ix.Search("the of and", 5); res != nil {
		t.Error("all-stopword query should return nil")
	}
	if res := ix.Search("zzzzunknown", 5); len(res) != 0 {
		t.Error("unknown term should return no hits")
	}
	if res := ix.Search("hello", 0); res != nil {
		t.Error("k=0 should return nil")
	}
}

func TestStemmingConflatesForms(t *testing.T) {
	ix := New()
	ix.Add(Doc{URL: "u", Text: "listings of apartments"})
	if res := ix.Search("apartment listing", 1); len(res) != 1 {
		t.Error("stemming failed to conflate plural/singular")
	}
}

func TestTitleBoost(t *testing.T) {
	ix := New()
	ix.Add(Doc{URL: "title-hit", Title: "marathon results", Text: "other content entirely"})
	ix.Add(Doc{URL: "body-hit", Title: "something", Text: "marathon results mentioned once in passing text"})
	res := ix.Search("marathon results", 2)
	if len(res) != 2 || res[0].URL != "title-hit" {
		t.Errorf("title boost failed: %+v", res)
	}
}

func TestDFAndHas(t *testing.T) {
	ix := New()
	ix.Add(Doc{URL: "a", Text: "carrot"})
	ix.Add(Doc{URL: "b", Text: "carrot potato"})
	if df := ix.DF("carrot"); df != 2 {
		t.Errorf("DF(carrot) = %d, want 2", df)
	}
	if df := ix.DF("carrots"); df != 2 {
		t.Errorf("DF(carrots) should stem to carrot, got %d", df)
	}
	if df := ix.DF(""); df != 0 {
		t.Errorf("DF(empty) = %d", df)
	}
	if !ix.Has("a") || ix.Has("zzz") {
		t.Error("Has wrong")
	}
}

func TestDocsBySource(t *testing.T) {
	ix := New()
	ix.Add(Doc{URL: "1", Text: "x", Source: "form-a"})
	ix.Add(Doc{URL: "2", Text: "y", Source: "form-a"})
	ix.Add(Doc{URL: "3", Text: "z", Source: "form-b"})
	ix.Add(Doc{URL: "4", Text: "w"})
	got := ix.DocsBySource()
	if got["form-a"] != 2 || got["form-b"] != 1 || len(got) != 2 {
		t.Errorf("DocsBySource = %v", got)
	}
}

func TestSearchDeterministicTieBreak(t *testing.T) {
	ix := New()
	// Identical docs at different URLs score identically.
	ix.Add(Doc{URL: "first", Text: "unique pelican"})
	ix.Add(Doc{URL: "second", Text: "unique pelican"})
	res := ix.Search("pelican", 2)
	if res[0].URL != "first" || res[1].URL != "second" {
		t.Errorf("tie-break not by doc id: %+v", res)
	}
}

func TestSearchKTruncation(t *testing.T) {
	ix := New()
	for i := 0; i < 20; i++ {
		ix.Add(Doc{URL: fmt.Sprintf("u%d", i), Text: "shared term pelican"})
	}
	if res := ix.Search("pelican", 5); len(res) != 5 {
		t.Errorf("k truncation: got %d", len(res))
	}
}

func TestConcurrentAddSearch(t *testing.T) {
	ix := New()
	done := make(chan bool)
	go func() {
		for i := 0; i < 200; i++ {
			ix.Add(Doc{URL: fmt.Sprintf("u%d", i), Text: fmt.Sprintf("doc number %d pelican", i)})
		}
		done <- true
	}()
	for i := 0; i < 200; i++ {
		ix.Search("pelican", 3)
	}
	<-done
	if ix.Len() != 200 {
		t.Errorf("Len = %d", ix.Len())
	}
}

// Property: searching for a word known to be in exactly one document
// finds that document at rank 1.
func TestSearchPropertyFindsUniqueToken(t *testing.T) {
	ix := New()
	for i := 0; i < 50; i++ {
		ix.Add(Doc{URL: fmt.Sprintf("u%d", i), Text: fmt.Sprintf("filler words plus unique%dtoken here", i)})
	}
	f := func(pick uint8) bool {
		i := int(pick) % 50
		res := ix.Search(fmt.Sprintf("unique%dtoken", i), 1)
		return len(res) == 1 && res[0].URL == fmt.Sprintf("u%d", i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: scores are positive and sorted descending.
func TestSearchPropertySorted(t *testing.T) {
	ix := New()
	words := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < 40; i++ {
		text := ""
		for j, w := range words {
			if i%(j+2) == 0 {
				text += w + " "
			}
		}
		ix.Add(Doc{URL: fmt.Sprintf("u%d", i), Text: text})
	}
	f := func(q1, q2 uint8) bool {
		q := words[int(q1)%len(words)] + " " + words[int(q2)%len(words)]
		res := ix.Search(q, 40)
		prev := 1e18
		for _, r := range res {
			if r.Score <= 0 || r.Score > prev+1e-9 {
				return false
			}
			prev = r.Score
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
