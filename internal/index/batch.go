package index

import "hash/maphash"

// Batch commit: the bulk-ingest counterpart of AddPrepared. One pass
// under the document-table lock assigns every id (the same ordered
// commit point, amortized over the batch), then postings are bucketed
// by shard in doc order and each shard is locked once per batch
// instead of once per document. The final index state is identical to
// committing the same prepared documents one by one, in order —
// including duplicate-URL handling, posting order within a term, and
// therefore scores and tie-breaks (pinned by test).

// AddPreparedBatch commits prepared documents in order. ids[i] is the
// doc id of ps[i]; added[i] is false when ps[i]'s URL was already
// present (including earlier in the same batch — first occurrence
// wins, matching sequential commits), in which case ids[i] is the
// existing document's id.
func (ix *Index) AddPreparedBatch(ps []*Prepared) (ids []int, added []bool) {
	ids = make([]int, len(ps))
	added = make([]bool, len(ps))
	if len(ps) == 0 {
		return ids, added
	}

	ix.mu.Lock()
	for i, p := range ps {
		if existing, ok := ix.byURL[p.doc.URL]; ok {
			ids[i] = existing
			continue
		}
		id := len(ix.docs)
		ix.docs = append(ix.docs, p.doc)
		ix.byURL[p.doc.URL] = id
		ix.lens = append(ix.lens, p.dl)
		ix.dead = append(ix.dead, false)
		ix.totalLen += p.dl
		if p.doc.Source != "" {
			ix.bySource[p.doc.Source]++
		}
		ids[i] = id
		added[i] = true
	}
	ix.mu.Unlock()

	type termPosting struct {
		term string
		p    posting
	}
	buckets := make([][]termPosting, len(ix.shards))
	for i, p := range ps {
		if !added[i] {
			continue
		}
		for j, t := range p.terms {
			si := 0
			if len(ix.shards) > 1 {
				si = int(maphash.String(ix.seed, t) % uint64(len(ix.shards)))
			}
			buckets[si] = append(buckets[si], termPosting{term: t, p: posting{doc: int32(ids[i]), tf: p.tfs[j]}})
		}
	}
	for si, b := range buckets {
		if len(b) == 0 {
			continue
		}
		sh := ix.shards[si]
		sh.mu.Lock()
		for _, e := range b {
			sh.postings[e.term] = append(sh.postings[e.term], e.p)
		}
		sh.mu.Unlock()
	}
	return ids, added
}

// Accessors for the prepared document's analysis, for builders (the
// spill-to-disk bulk build) that index outside this package's locks.
// The returned slices are the Prepared's own backing arrays: read,
// don't mutate.

// Doc returns the document as submitted.
func (p *Prepared) Doc() Doc { return p.doc }

// DocLen returns the BM25 document length (title terms counted twice).
func (p *Prepared) DocLen() int { return p.dl }

// Terms returns the unique terms, parallel to TermFreqs.
func (p *Prepared) Terms() []string { return p.terms }

// TermFreqs returns per-term frequencies, parallel to Terms.
func (p *Prepared) TermFreqs() []int32 { return p.tfs }
