package index

import (
	"fmt"
	"sort"
	"sync"
	"testing"

	"deepweb/internal/textutil"
)

// searchReference is the pre-rewrite Search shape — a map score
// accumulator and a full sort — kept as an executable specification.
// It uses the same hoisted arithmetic as the production path, so the
// dense-accumulator + bounded-heap implementation must reproduce its
// results bit for bit, score included.
func searchReference(ix *Index, query string, k int) []Result {
	if k <= 0 {
		return nil
	}
	var tz textutil.Tokenizer
	qterms := tz.StemmedTokensInto(nil, query)
	if len(qterms) == 0 {
		return nil
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n := len(ix.docs)
	if n == 0 {
		return nil
	}
	avgdl := float64(ix.totalLen) / float64(n)
	if avgdl == 0 {
		avgdl = 1
	}
	c0 := bm25K1 * (1 - bm25B)
	c1 := bm25K1 * bm25B / avgdl
	scores := map[int32]float64{}
	seen := map[string]bool{}
	for _, t := range qterms {
		if seen[t] {
			continue
		}
		seen[t] = true
		plist := ix.plist(t)
		if len(plist) == 0 {
			continue
		}
		w := idf(n, len(plist)) * (bm25K1 + 1)
		for _, p := range plist {
			tf := float64(p.tf)
			scores[p.doc] += w * tf / (tf + c0 + c1*float64(ix.lens[p.doc]))
		}
	}
	out := make([]Result, 0, len(scores))
	for d, s := range scores {
		doc := ix.docs[d]
		out = append(out, Result{DocID: int(d), URL: doc.URL, Title: doc.Title, Source: doc.Source, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].DocID < out[j].DocID
	})
	if k < len(out) {
		out = out[:k]
	}
	return out
}

// accumulatorCorpus builds a corpus with heavy term sharing, duplicate
// scores (identical docs at different ids) and varying lengths — the
// shapes that stress top-k tie-breaking.
func accumulatorCorpus(n int) *Index {
	ix := New()
	for i := 0; i < n; i++ {
		ix.Add(Doc{
			URL:    fmt.Sprintf("http://site-%d.example/page", i),
			Title:  fmt.Sprintf("listing %d", i%7),
			Source: fmt.Sprintf("form-%d", i%5),
			Text: fmt.Sprintf("ford focus %d for sale in seattle, price %d, clean title, low miles, record %d",
				1990+i%20, 500+i*13%25000, i%11),
		})
	}
	return ix
}

var accumulatorQueries = []string{
	"ford focus seattle",
	"listing",
	"record 7 price",
	"clean title low miles",
	"ford ford focus focus", // duplicate query terms
	"nonexistent zebra",
	"the of and", // all stopwords
	"",
	"seattle 1993",
}

// The dense-accumulator/bounded-heap Search must equal the map/sort
// reference for every query and cut-off, including scores.
func TestSearchMatchesReferenceAccumulator(t *testing.T) {
	ix := accumulatorCorpus(500)
	for _, q := range accumulatorQueries {
		for _, k := range []int{0, 1, 3, 10, 499, 500, 2000} {
			got := ix.Search(q, k)
			want := searchReference(ix, q, k)
			if len(got) != len(want) {
				t.Fatalf("q=%q k=%d: %d hits, want %d", q, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("q=%q k=%d hit %d:\n  got  %+v\n  want %+v", q, k, i, got[i], want[i])
				}
			}
		}
	}
}

// Concurrent searches (pooled scratch reuse) racing concurrent inserts
// must stay consistent with the reference taken after quiescence, and
// must be clean under -race. Mid-flight result sets cannot be compared
// (the corpus is moving), so each goroutine only checks invariants:
// scores strictly ordered, no duplicate docs.
func TestSearchConcurrentWithWritesRace(t *testing.T) {
	ix := accumulatorCorpus(200)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ix.Add(Doc{
					URL:  fmt.Sprintf("http://w%d.example/p%d", w, i),
					Text: fmt.Sprintf("ford focus %d seattle writer %d", i%30, w),
				})
			}
		}(w)
	}
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				q := accumulatorQueries[i%len(accumulatorQueries)]
				res := ix.Search(q, 10)
				seen := map[int]bool{}
				for j, hit := range res {
					if seen[hit.DocID] {
						t.Errorf("q=%q: doc %d appears twice", q, hit.DocID)
					}
					seen[hit.DocID] = true
					if j > 0 && (res[j-1].Score < hit.Score ||
						(res[j-1].Score == hit.Score && res[j-1].DocID > hit.DocID)) {
						t.Errorf("q=%q: hits %d,%d out of order", q, j-1, j)
					}
				}
			}
		}()
	}
	// Let the readers finish, then stop the writers and verify the
	// final index against the reference.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	closeOnce := sync.OnceFunc(func() { close(stop) })
	for i := 0; i < 8; i++ {
		ix.Search("ford focus", 5)
	}
	closeOnce()
	<-done

	for _, q := range accumulatorQueries {
		got := ix.Search(q, 25)
		want := searchReference(ix, q, 25)
		if len(got) != len(want) {
			t.Fatalf("post-quiescence q=%q: %d hits, want %d", q, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("post-quiescence q=%q hit %d: %+v want %+v", q, i, got[i], want[i])
			}
		}
	}
}

// DocsBySource is maintained incrementally; it must match a full scan
// of the document table, and duplicate URLs must not double-count.
func TestDocsBySourceIncremental(t *testing.T) {
	ix := New()
	for i := 0; i < 40; i++ {
		ix.Add(Doc{
			URL:    fmt.Sprintf("u%d", i%30), // 10 duplicate URLs
			Source: fmt.Sprintf("form-%d", i%3),
			Text:   "ford focus",
		})
	}
	ix.Add(Doc{URL: "unattributed", Text: "no source"})
	scan := map[string]int{}
	for id := 0; id < ix.Len(); id++ {
		if d := ix.Doc(id); d.Source != "" {
			scan[d.Source]++
		}
	}
	got := ix.DocsBySource()
	if len(got) != len(scan) {
		t.Fatalf("DocsBySource = %v, scan = %v", got, scan)
	}
	for s, n := range scan {
		if got[s] != n {
			t.Errorf("DocsBySource[%s] = %d, scan %d", s, got[s], n)
		}
	}
	// The returned map is a copy: mutating it must not corrupt state.
	got["form-0"] = 999
	if ix.DocsBySource()["form-0"] == 999 {
		t.Error("DocsBySource returned internal state")
	}
}
