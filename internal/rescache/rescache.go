// Package rescache is the serving tier's result cache: an N-way
// sharded, bounded LRU keyed by opaque strings, fronted by
// singleflight so concurrent identical misses collapse into one
// expensive fill instead of a stampede.
//
// The paper's economics make every surfaced page a query-time
// liability: surfacing is offline, but the resulting index answers
// ordinary search traffic, and web query traffic is heavily skewed —
// the same head queries arrive over and over (§3.2's long-tail curve
// is exactly the statement that a small head carries half the load).
// Re-running BM25 scoring for a query the index answered microseconds
// ago is pure waste; this cache turns the repeated-query hot path into
// O(copy).
//
// Consistency is delegated to the key: callers fold every input that
// can change the answer — the engine's snapshot generation and
// mutation epoch, the normalized query, pagination, filters — into the
// key string, so a mutated index simply stops producing the old keys
// and stale entries age out of the LRU without any invalidation
// traffic. There is deliberately no Delete/Flush: an entry is correct
// for its key forever; it just stops being asked for.
//
// Aliasing safety: the cache never hands two callers the same value.
// Every stored value is cloned on the way out (and on the way in, so
// the filling caller cannot mutate the cached copy after the fact).
// Callers may therefore append to / sort / annotate what they get
// back.
package rescache

import (
	"context"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count New uses for shards <= 0. Sixteen
// ways is enough that cache-lock contention disappears behind the
// index's own read path at any realistic core count.
const DefaultShards = 16

// Stats is one atomic-ish snapshot of the cache's counters. Each
// counter is read atomically (no torn single values); the set is
// collected without a global lock, so the fields may be a few
// operations apart from each other under load — fine for monitoring,
// which is their job. All counters are monotonic over the cache's
// lifetime except Entries, which is the current resident count.
type Stats struct {
	// Hits counts lookups answered from a resident entry.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that ran the fill (singleflight leaders).
	Misses uint64 `json:"misses"`
	// Collapsed counts lookups that piggybacked on another caller's
	// in-flight fill instead of scanning themselves — the stampedes
	// that did not happen.
	Collapsed uint64 `json:"collapsed"`
	// Evictions counts entries dropped by the LRU bound.
	Evictions uint64 `json:"evictions"`
	// Admitted counts fills the doorkeeper let into the LRU (zero
	// unless EnableDoorkeeper armed admission control).
	Admitted uint64 `json:"admitted"`
	// Rejected counts fills the doorkeeper turned away on first sight.
	Rejected uint64 `json:"rejected"`
	// Entries is the current resident entry count.
	Entries int `json:"entries"`
	// Capacity is the configured bound.
	Capacity int `json:"capacity"`
}

// HitRatio is hits over lookups served from cache or fill, in [0, 1].
func (s Stats) HitRatio() float64 {
	total := s.Hits + s.Misses + s.Collapsed
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Collapsed) / float64(total)
}

// entry is one resident value on a shard's intrusive LRU list.
type entry[V any] struct {
	key        string
	val        V
	prev, next *entry[V]
}

// flight is one in-progress fill; followers wait on done.
type flight[V any] struct {
	done chan struct{}
	val  V
	ok   bool // val is valid (fill succeeded)
}

// shard is one slice of the key space: a map index over an intrusive
// doubly-linked LRU ring, plus the in-flight fill table.
type shard[V any] struct {
	mu       sync.Mutex
	entries  map[string]*entry[V]
	inflight map[string]*flight[V]
	// head is most recent, tail least; nil when empty.
	head, tail *entry[V]
	cap        int
	// door is the second-chance admission filter: slot i remembers the
	// hash of the last once-seen key that mapped there. nil means
	// admission control is off and every fill is cached.
	door []uint64
}

// Cache is a sharded bounded LRU with singleflight fills. The zero
// value is not usable; construct with New. A nil *Cache is a valid
// no-op cache: Do runs the fill directly.
type Cache[V any] struct {
	shards   []shard[V]
	seed     maphash.Seed
	clone    func(V) V
	capTotal int

	hits      atomic.Uint64
	misses    atomic.Uint64
	collapsed atomic.Uint64
	evictions atomic.Uint64
	admitted  atomic.Uint64
	rejected  atomic.Uint64
	entries   atomic.Int64
}

// New builds a cache bounded to capacity entries spread over nShards
// shards (DefaultShards when nShards <= 0; capacity must be >= 1).
// clone deep-copies a value so no two callers alias cached state; nil
// means values are safe to share as-is (immutable).
func New[V any](capacity, nShards int, clone func(V) V) *Cache[V] {
	if capacity < 1 {
		capacity = 1
	}
	if nShards <= 0 {
		nShards = DefaultShards
	}
	if nShards > capacity {
		nShards = capacity
	}
	if clone == nil {
		clone = func(v V) V { return v }
	}
	c := &Cache[V]{
		shards:   make([]shard[V], nShards),
		seed:     maphash.MakeSeed(),
		clone:    clone,
		capTotal: capacity,
	}
	// Spread capacity exactly: the first capacity%nShards shards take
	// one extra entry, so the per-shard bounds sum to the configured
	// total (nShards <= capacity guarantees every shard holds >= 1).
	per, extra := capacity/nShards, capacity%nShards
	for i := range c.shards {
		cp := per
		if i < extra {
			cp++
		}
		c.shards[i] = shard[V]{
			entries:  make(map[string]*entry[V], cp),
			inflight: map[string]*flight[V]{},
			cap:      cp,
		}
	}
	return c
}

// EnableDoorkeeper arms second-chance admission control: a fill is
// cached only the second time its key's hash is seen, so a one-off
// query (the long tail is mostly one-offs) cannot evict a resident
// head entry just to be itself evicted before it repeats. slots is the
// total recent-key memory across shards; <= 0 picks 8x capacity,
// plenty for the filter's job of telling "seen recently" from "never
// seen". Off by default; call once before serving traffic — the
// per-slot memory is eight bytes, and a false "seen" from a slot
// collision merely admits a key one fill early.
func (c *Cache[V]) EnableDoorkeeper(slots int) {
	if c == nil {
		return
	}
	if slots <= 0 {
		slots = 8 * c.capTotal
	}
	per := slots / len(c.shards)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.door = make([]uint64, per)
		sh.mu.Unlock()
	}
}

// Capacity is the total entry bound, exactly as configured.
func (c *Cache[V]) Capacity() int {
	if c == nil {
		return 0
	}
	return c.capTotal
}

// Stats snapshots the counters.
func (c *Cache[V]) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Evictions: c.evictions.Load(),
		Admitted:  c.admitted.Load(),
		Rejected:  c.rejected.Load(),
		Entries:   int(c.entries.Load()),
		Capacity:  c.Capacity(),
	}
}

// Do answers key from the cache, or computes it with fill. The bool
// reports whether the value came from cached/collapsed state (true) or
// from this caller's own fill (false). fill errors are returned to the
// filling caller only and nothing is cached; followers of a failed
// fill re-attempt (each under its own ctx), so one canceled request
// never poisons its neighbors. ctx bounds only the wait for another
// caller's in-flight fill — fill itself is responsible for honoring
// its own context.
func (c *Cache[V]) Do(ctx context.Context, key string, fill func() (V, error)) (V, bool, error) {
	if c == nil {
		v, err := fill()
		return v, false, err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	h := maphash.String(c.seed, key)
	sh := &c.shards[h%uint64(len(c.shards))]
	for {
		if err := ctx.Err(); err != nil {
			var zero V
			return zero, false, err
		}
		sh.mu.Lock()
		if e, ok := sh.entries[key]; ok {
			sh.moveToFront(e)
			v := c.clone(e.val)
			sh.mu.Unlock()
			c.hits.Add(1)
			return v, true, nil
		}
		if f, ok := sh.inflight[key]; ok {
			sh.mu.Unlock()
			c.collapsed.Add(1)
			select {
			case <-f.done:
			case <-ctx.Done():
				var zero V
				return zero, false, ctx.Err()
			}
			if f.ok {
				// The flight's value is immutable once done closes;
				// clone without re-taking the shard lock.
				return c.clone(f.val), true, nil
			}
			// The leader failed (its context died, most likely). Loop
			// and try again as a fresh caller rather than inheriting
			// an error that was never ours.
			continue
		}
		f := &flight[V]{done: make(chan struct{})}
		sh.inflight[key] = f
		sh.mu.Unlock()
		break
	}
	// This caller is the singleflight leader.
	c.misses.Add(1)
	v, err := c.leadFill(sh, key, h, fill)
	return v, false, err
}

// leadFill runs fill as the leader for key (hashed to h), publishes
// the result to followers, and installs it in the shard on success —
// unless an armed doorkeeper turns the key away on first sight.
func (c *Cache[V]) leadFill(sh *shard[V], key string, h uint64, fill func() (V, error)) (V, error) {
	v, err := fill()
	sh.mu.Lock()
	f := sh.inflight[key]
	delete(sh.inflight, key)
	if err == nil {
		f.val = c.clone(v) // cache owns its own copy; leader keeps v
		f.ok = true
		if _, resident := sh.entries[key]; !resident && sh.admit(c, h) {
			e := &entry[V]{key: key, val: f.val}
			sh.entries[key] = e
			sh.pushFront(e)
			c.entries.Add(1)
			if len(sh.entries) > sh.cap {
				evicted := sh.popTail()
				delete(sh.entries, evicted.key)
				c.entries.Add(-1)
				c.evictions.Add(1)
			}
		}
	}
	sh.mu.Unlock()
	close(f.done)
	return v, err
}

// admit applies the second-chance doorkeeper to key hash h; true means
// install the entry. Always true when the doorkeeper is off. Rejected
// fills still publish their value to singleflight followers — the
// doorkeeper only withholds residency. Caller holds mu.
//
// The slot index uses the high hash bits because the low bits already
// picked the shard: reusing them would fold each shard's keys onto a
// fraction of its door.
func (sh *shard[V]) admit(c *Cache[V], h uint64) bool {
	if sh.door == nil {
		return true
	}
	slot := (h >> 32) % uint64(len(sh.door))
	if sh.door[slot] == h {
		c.admitted.Add(1)
		return true
	}
	sh.door[slot] = h
	c.rejected.Add(1)
	return false
}

// pushFront links e as the most-recently-used entry. Caller holds mu.
func (sh *shard[V]) pushFront(e *entry[V]) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// moveToFront marks e most recently used. Caller holds mu.
func (sh *shard[V]) moveToFront(e *entry[V]) {
	if sh.head == e {
		return
	}
	// Unlink (e is not head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	sh.pushFront(e)
}

// popTail unlinks and returns the least-recently-used entry. Caller
// holds mu and guarantees the list is non-empty.
func (sh *shard[V]) popTail() *entry[V] {
	e := sh.tail
	sh.tail = e.prev
	if sh.tail != nil {
		sh.tail.next = nil
	} else {
		sh.head = nil
	}
	e.prev, e.next = nil, nil
	return e
}
